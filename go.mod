module mmr

go 1.22
