// Package faults describes fault-injection plans for the multi-router
// network: deterministic, RNG-seeded schedules of link and router
// failures/restorations plus per-link flit impairment probabilities.
// Real switch fabrics treat component failure as a first-class design
// input (Tiny Tera's port cards, Autonet's reconfiguration protocol);
// this package gives the simulator the same vocabulary. A Plan is pure
// data — the network layer interprets it, tears down the connections a
// fault breaks and re-establishes them on surviving paths.
//
// Plans are deterministic: scheduled events are explicit, and stochastic
// failures (MTBF/MTTR) are expanded into an explicit event schedule by
// Generate using a seeded RNG, so a (plan, seed) pair always reproduces
// the same fault sequence.
package faults

import (
	"fmt"
	"sort"

	"mmr/internal/sim"
	"mmr/internal/topology"
)

// Kind classifies a fault event.
type Kind int

const (
	// LinkDown fails the link at (Node, Port); flits in flight on it are
	// lost and connections crossing it break.
	LinkDown Kind = iota
	// LinkUp restores a previously failed link.
	LinkUp
	// RouterDown fails a whole router: every link at Node goes down.
	RouterDown
	// RouterUp restores a failed router's links.
	RouterUp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case RouterDown:
		return "router-down"
	case RouterUp:
		return "router-up"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault transition.
type Event struct {
	Cycle int64
	Kind  Kind
	Node  int
	Port  int // meaningful for link events only
}

// Impairment attaches per-flit loss and corruption probabilities to the
// directed link leaving Node through Port. Dropped flits are detected by
// the receiver (CRC) and discarded with their credit returned; corrupted
// flits are delivered and counted.
type Impairment struct {
	Node, Port  int
	DropProb    float64
	CorruptProb float64
}

// Plan is a reproducible fault schedule. Zero value: no faults.
type Plan struct {
	Seed   uint64  // seeds stochastic expansion and datapath impairment draws
	Events []Event // explicit transitions, any order; sorted on Apply

	Impairments []Impairment

	// Stochastic link failures: every link fails with exponential
	// inter-failure times of mean MTBF cycles and is repaired after an
	// exponential MTTR-mean downtime. Zero MTBF disables.
	MTBF, MTTR float64
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed uint64) *Plan { return &Plan{Seed: seed} }

// FailLinkAt schedules the link at (node, port) to fail at the given cycle.
func (p *Plan) FailLinkAt(cycle int64, node, port int) *Plan {
	p.Events = append(p.Events, Event{Cycle: cycle, Kind: LinkDown, Node: node, Port: port})
	return p
}

// RestoreLinkAt schedules the link at (node, port) to come back at cycle.
func (p *Plan) RestoreLinkAt(cycle int64, node, port int) *Plan {
	p.Events = append(p.Events, Event{Cycle: cycle, Kind: LinkUp, Node: node, Port: port})
	return p
}

// FailRouterAt schedules every link of node to fail at the given cycle.
func (p *Plan) FailRouterAt(cycle int64, node int) *Plan {
	p.Events = append(p.Events, Event{Cycle: cycle, Kind: RouterDown, Node: node})
	return p
}

// RestoreRouterAt schedules node's links to come back at the given cycle.
func (p *Plan) RestoreRouterAt(cycle int64, node int) *Plan {
	p.Events = append(p.Events, Event{Cycle: cycle, Kind: RouterUp, Node: node})
	return p
}

// Impair sets drop/corrupt probabilities on the directed link leaving
// (node, port).
func (p *Plan) Impair(node, port int, drop, corrupt float64) *Plan {
	p.Impairments = append(p.Impairments, Impairment{Node: node, Port: port, DropProb: drop, CorruptProb: corrupt})
	return p
}

// WithMTBF enables stochastic link churn with the given mean cycles
// between failures and mean repair time.
func (p *Plan) WithMTBF(mtbf, mttr float64) *Plan {
	p.MTBF, p.MTTR = mtbf, mttr
	return p
}

// Validate checks the plan against a topology: events must name wired
// ports and valid nodes, probabilities must lie in [0,1], and stochastic
// parameters must be non-negative.
func (p *Plan) Validate(t *topology.Topology) error {
	for _, e := range p.Events {
		if e.Node < 0 || e.Node >= t.Nodes {
			return fmt.Errorf("faults: event %+v names node outside [0,%d)", e, t.Nodes)
		}
		if e.Kind == LinkDown || e.Kind == LinkUp {
			if e.Port < 0 || e.Port >= t.Ports {
				return fmt.Errorf("faults: event %+v names port outside [0,%d)", e, t.Ports)
			}
			if t.Wired(e.Node, e.Port) < 0 {
				return fmt.Errorf("faults: event %+v targets an unwired port", e)
			}
		}
		if e.Cycle < 0 {
			return fmt.Errorf("faults: event %+v scheduled before cycle 0", e)
		}
	}
	for _, im := range p.Impairments {
		if im.Node < 0 || im.Node >= t.Nodes || im.Port < 0 || im.Port >= t.Ports {
			return fmt.Errorf("faults: impairment %+v out of range", im)
		}
		if t.Wired(im.Node, im.Port) < 0 {
			return fmt.Errorf("faults: impairment %+v targets an unwired port", im)
		}
		if im.DropProb < 0 || im.DropProb > 1 || im.CorruptProb < 0 || im.CorruptProb > 1 {
			return fmt.Errorf("faults: impairment %+v probability outside [0,1]", im)
		}
	}
	if p.MTBF < 0 || p.MTTR < 0 {
		return fmt.Errorf("faults: negative MTBF/MTTR (%.1f/%.1f)", p.MTBF, p.MTTR)
	}
	return nil
}

// Schedule returns the plan's complete, time-sorted event list over
// [0, horizon): the explicit events plus the stochastic MTBF/MTTR churn
// expanded per link with an RNG derived from the plan seed. Expansion is
// deterministic — the same plan, topology and horizon always yield the
// same schedule. Events at equal cycles keep a stable order (links before
// routers, then by node/port).
func (p *Plan) Schedule(t *topology.Topology, horizon int64) []Event {
	events := make([]Event, 0, len(p.Events))
	for _, e := range p.Events {
		if e.Cycle < horizon {
			events = append(events, e)
		}
	}
	if p.MTBF > 0 {
		rng := sim.NewRNG(p.Seed ^ 0xfa017ed)
		// Walk the links in wiring order so the draw sequence is stable.
		for _, l := range t.Links {
			at := int64(rng.Exp(p.MTBF))
			for at < horizon {
				events = append(events, Event{Cycle: at, Kind: LinkDown, Node: l.A, Port: l.APort})
				repair := at + 1 + int64(rng.Exp(p.MTTR))
				if repair >= horizon {
					break
				}
				events = append(events, Event{Cycle: repair, Kind: LinkUp, Node: l.A, Port: l.APort})
				at = repair + 1 + int64(rng.Exp(p.MTBF))
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Port < b.Port
	})
	return events
}

// FailRegionAt schedules a regional outage — the kind a shared power
// feed or cable bundle causes: every router within radius hops of
// center (BFS over wired links) goes down at cycle and, when downtime
// is positive, comes back downtime cycles later. Radius 0 fails only
// the center. The region is derived from the topology's wiring, not
// its current link state, so the same call always produces the same
// schedule.
func (p *Plan) FailRegionAt(t *topology.Topology, center, radius int, cycle, downtime int64) *Plan {
	if center < 0 || center >= t.Nodes {
		return p
	}
	dist := make([]int, t.Nodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[center] = 0
	queue := []int{center}
	region := []int{center}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if dist[node] == radius {
			continue
		}
		for port := 0; port < t.Ports; port++ {
			peer := t.Wired(node, port)
			if peer < 0 || dist[peer] >= 0 {
				continue
			}
			dist[peer] = dist[node] + 1
			queue = append(queue, peer)
			region = append(region, peer)
		}
	}
	for _, node := range region {
		p.FailRouterAt(cycle, node)
		if downtime > 0 {
			p.RestoreRouterAt(cycle+downtime, node)
		}
	}
	return p
}

// RandomLinkFailures appends count link failures at cycles uniformly
// spread over [start, start+window), each picking a distinct random link,
// with restoration after the given downtime (0 = permanent). The draws
// come from an RNG derived from the plan seed, so the same seed always
// injures the same links at the same cycles.
func (p *Plan) RandomLinkFailures(t *topology.Topology, count int, start, window, downtime int64) *Plan {
	if count <= 0 || len(t.Links) == 0 {
		return p
	}
	rng := sim.NewRNG(p.Seed ^ 0x11ca61e)
	perm := rng.Perm(len(t.Links))
	if count > len(perm) {
		count = len(perm)
	}
	for i := 0; i < count; i++ {
		l := t.Links[perm[i]]
		at := start
		if window > 1 {
			at += int64(rng.Intn(int(window)))
		}
		p.FailLinkAt(at, l.A, l.APort)
		if downtime > 0 {
			p.RestoreLinkAt(at+downtime, l.A, l.APort)
		}
	}
	return p
}
