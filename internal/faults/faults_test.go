package faults

import (
	"reflect"
	"testing"

	"mmr/internal/sim"
	"mmr/internal/topology"
)

func TestPlanBuilderAndValidate(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	p := NewPlan(7).
		FailLinkAt(100, 0, 0).
		RestoreLinkAt(200, 0, 0).
		FailRouterAt(300, 4).
		RestoreRouterAt(400, 4).
		Impair(1, 0, 0.01, 0.001)
	if err := p.Validate(tp); err != nil {
		t.Fatal(err)
	}
	bad := []*Plan{
		NewPlan(1).FailLinkAt(10, -1, 0),
		NewPlan(1).FailLinkAt(10, 0, 9),
		NewPlan(1).FailLinkAt(10, 0, 1),  // unwired port on node 0 of a mesh corner
		NewPlan(1).FailLinkAt(-5, 0, 0),  // before cycle 0
		NewPlan(1).FailRouterAt(10, 99),  // node out of range
		NewPlan(1).Impair(0, 0, 1.5, 0),  // probability > 1
		NewPlan(1).Impair(0, 1, 0.1, 0),  // unwired port
		NewPlan(1).WithMTBF(-1, 10),
	}
	for i, bp := range bad {
		if err := bp.Validate(tp); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestScheduleSortsAndTruncates(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	p := NewPlan(1).
		RestoreLinkAt(50, 0, 0).
		FailLinkAt(10, 0, 0).
		FailRouterAt(10, 2).
		FailLinkAt(999, 1, 0) // beyond the horizon
	ev := p.Schedule(tp, 500)
	if len(ev) != 3 {
		t.Fatalf("schedule has %d events, want 3", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Cycle < ev[i-1].Cycle {
			t.Fatalf("schedule not sorted: %+v", ev)
		}
	}
	// Equal-cycle tie: link events order before router events.
	if ev[0].Kind != LinkDown || ev[1].Kind != RouterDown {
		t.Fatalf("tie order wrong: %+v", ev[:2])
	}
}

func TestStochasticScheduleDeterministic(t *testing.T) {
	rng := sim.NewRNG(3)
	tp, err := topology.Irregular(12, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) []Event {
		return NewPlan(seed).WithMTBF(5_000, 500).Schedule(tp, 100_000)
	}
	a, b := mk(42), mk(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("stochastic plan produced no events over 20 MTBFs of horizon")
	}
	c := mk(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Per-link sanity: transitions alternate down/up in time order.
	state := map[[2]int]Kind{}
	for _, e := range a {
		if e.Kind != LinkDown && e.Kind != LinkUp {
			t.Fatalf("stochastic schedule produced %v", e.Kind)
		}
		key := [2]int{e.Node, e.Port}
		if prev, ok := state[key]; ok && prev == e.Kind {
			t.Fatalf("link %v transitioned %v twice in a row", key, e.Kind)
		}
		state[key] = e.Kind
	}
}

func TestRandomLinkFailuresDeterministicAndDistinct(t *testing.T) {
	tp, _ := topology.Mesh(4, 4, 4)
	mk := func(seed uint64) []Event {
		return NewPlan(seed).RandomLinkFailures(tp, 5, 1000, 2000, 800).Schedule(tp, 1_000_000)
	}
	a, b := mk(9), mk(9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different failures")
	}
	downs := map[[2]int]bool{}
	nd, nu := 0, 0
	for _, e := range a {
		switch e.Kind {
		case LinkDown:
			nd++
			key := [2]int{e.Node, e.Port}
			if downs[key] {
				t.Fatalf("link %v failed twice", key)
			}
			downs[key] = true
			if e.Cycle < 1000 || e.Cycle >= 3000 {
				t.Fatalf("failure outside window: %+v", e)
			}
		case LinkUp:
			nu++
		}
	}
	if nd != 5 || nu != 5 {
		t.Fatalf("got %d failures, %d restores; want 5 each", nd, nu)
	}
	// Requesting more failures than links clamps.
	ev := NewPlan(1).RandomLinkFailures(tp, 10_000, 0, 1, 0).Schedule(tp, 1_000_000)
	if len(ev) != len(tp.Links) {
		t.Fatalf("clamp failed: %d events for %d links", len(ev), len(tp.Links))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		LinkDown: "link-down", LinkUp: "link-up",
		RouterDown: "router-down", RouterUp: "router-up",
		Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestFailRegionAt(t *testing.T) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Radius 1 around node 5 (x=1,y=1): itself plus its 4 mesh neighbors.
	p := NewPlan(7).FailRegionAt(tp, 5, 1, 1000, 500)
	if err := p.Validate(tp); err != nil {
		t.Fatal(err)
	}
	downs := map[int]bool{}
	ups := map[int]bool{}
	for _, e := range p.Schedule(tp, 10_000) {
		switch e.Kind {
		case RouterDown:
			if e.Cycle != 1000 {
				t.Fatalf("outage not simultaneous: %+v", e)
			}
			downs[e.Node] = true
		case RouterUp:
			if e.Cycle != 1500 {
				t.Fatalf("repair not at downtime: %+v", e)
			}
			ups[e.Node] = true
		}
	}
	wantRegion := map[int]bool{5: true, 1: true, 4: true, 6: true, 9: true}
	if len(downs) != len(wantRegion) || len(ups) != len(wantRegion) {
		t.Fatalf("region covered %d downs / %d ups, want %d", len(downs), len(ups), len(wantRegion))
	}
	for node := range wantRegion {
		if !downs[node] || !ups[node] {
			t.Fatalf("node %d missing from the outage", node)
		}
	}
	// Radius 0: only the center; no restore when downtime is 0.
	ev := NewPlan(7).FailRegionAt(tp, 0, 0, 10, 0).Schedule(tp, 100)
	if len(ev) != 1 || ev[0].Kind != RouterDown || ev[0].Node != 0 {
		t.Fatalf("radius-0 region: %+v", ev)
	}
	// Out-of-range center is a no-op.
	if ev := NewPlan(7).FailRegionAt(tp, 99, 1, 10, 0).Schedule(tp, 100); len(ev) != 0 {
		t.Fatalf("out-of-range center scheduled events: %+v", ev)
	}
}
