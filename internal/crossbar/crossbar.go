// Package crossbar models the MMR's internal switch: a multiplexed
// crossbar with as many ports as physical links (§3.3). Virtual channels
// share crossbar ports, so the switch must be reconfigured — at the cost
// of one dead cycle — whenever the set of input→output assignments
// changes (§3.4). Output buffering is unnecessary: switch outputs connect
// directly to output links.
package crossbar

import "fmt"

// Organization enumerates the crossbar organizations the paper compares
// (§3.3, after Dally's taxonomy).
type Organization int

// Crossbar organizations, from cheapest to most expensive in silicon.
const (
	// Multiplexed: one crossbar port per physical link; VCs multiplex onto
	// ports. The MMR's choice.
	Multiplexed Organization = iota
	// PartiallyDemultiplexed: one input port per virtual channel, one
	// output port per link.
	PartiallyDemultiplexed
	// FullyDemultiplexed: one port per virtual channel on both sides.
	FullyDemultiplexed
)

// String implements fmt.Stringer.
func (o Organization) String() string {
	switch o {
	case Multiplexed:
		return "multiplexed"
	case PartiallyDemultiplexed:
		return "partially-demultiplexed"
	case FullyDemultiplexed:
		return "fully-demultiplexed"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// RelativeArea returns the crosspoint count of an organization for n links
// with v virtual channels per link, normalized so the multiplexed design
// is n². The paper's claim is that the multiplexed crossbar "reduces
// silicon area by V and V², respectively, with respect to a partially
// multiplexed and a fully de-multiplexed crossbar".
func RelativeArea(o Organization, n, v int) int64 {
	base := int64(n) * int64(n)
	switch o {
	case Multiplexed:
		return base
	case PartiallyDemultiplexed:
		return base * int64(v)
	case FullyDemultiplexed:
		return base * int64(v) * int64(v)
	default:
		return 0
	}
}

// Unconnected marks a crossbar port with no assignment.
const Unconnected = -1

// Crossbar is an N×N multiplexed switch. A configuration is a partial
// matching between input ports and output ports; setting a new
// configuration models the one-cycle reconfiguration the paper describes.
type Crossbar struct {
	n       int
	inToOut []int
	outToIn []int
	seen    []bool // scratch for Configure validation, reused every cycle

	reconfigs   int64 // completed reconfigurations
	transmitted int64 // flits moved
}

// New returns an unconfigured n×n crossbar.
func New(n int) *Crossbar {
	if n < 1 {
		panic(fmt.Sprintf("crossbar: invalid size %d", n))
	}
	c := &Crossbar{n: n, inToOut: make([]int, n), outToIn: make([]int, n), seen: make([]bool, n)}
	c.Clear()
	return c
}

// Size returns the port count.
func (c *Crossbar) Size() int { return c.n }

// Clear disconnects every port.
func (c *Crossbar) Clear() {
	for i := 0; i < c.n; i++ {
		c.inToOut[i] = Unconnected
		c.outToIn[i] = Unconnected
	}
}

// Configure installs a new matching given as out[i] = output port for
// input i (or Unconnected). It validates that no output is claimed twice
// and counts one reconfiguration. The caller models the dead cycle.
func (c *Crossbar) Configure(out []int) error {
	if len(out) != c.n {
		return fmt.Errorf("crossbar: configuration has %d entries, want %d", len(out), c.n)
	}
	// Validate before mutating so a bad configuration leaves the previous
	// one intact.
	for i := range c.seen {
		c.seen[i] = false
	}
	for in, o := range out {
		if o == Unconnected {
			continue
		}
		if o < 0 || o >= c.n {
			return fmt.Errorf("crossbar: input %d mapped to invalid output %d", in, o)
		}
		if c.seen[o] {
			return fmt.Errorf("crossbar: output %d claimed by two inputs", o)
		}
		c.seen[o] = true
	}
	c.Clear()
	for in, o := range out {
		if o != Unconnected {
			c.inToOut[in] = o
			c.outToIn[o] = in
		}
	}
	c.reconfigs++
	return nil
}

// OutputFor returns the output port input in drives, or Unconnected.
func (c *Crossbar) OutputFor(in int) int { return c.inToOut[in] }

// InputFor returns the input port driving output out, or Unconnected.
func (c *Crossbar) InputFor(out int) int { return c.outToIn[out] }

// Connected reports whether input in currently drives output out.
func (c *Crossbar) Connected(in, out int) bool {
	return in >= 0 && in < c.n && c.inToOut[in] == out
}

// Transmit records the transfer of one flit from input in through its
// configured output and returns that output. It panics if in is not
// connected — the scheduler must never transmit through an open switch.
func (c *Crossbar) Transmit(in int) int {
	o := c.inToOut[in]
	if o == Unconnected {
		panic(fmt.Sprintf("crossbar: transmit on unconnected input %d", in))
	}
	c.transmitted++
	return o
}

// Reconfigurations returns how many configurations have been installed.
func (c *Crossbar) Reconfigurations() int64 { return c.reconfigs }

// Transmitted returns the total flits moved through the switch.
func (c *Crossbar) Transmitted() int64 { return c.transmitted }

// Utilization returns transmitted flits divided by the switch capacity
// over the given number of flit cycles (n flits per cycle).
func (c *Crossbar) Utilization(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.transmitted) / (float64(c.n) * float64(cycles))
}
