package crossbar

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRelativeArea(t *testing.T) {
	// §3.3: multiplexed saves V and V² vs partially and fully demuxed.
	n, v := 8, 256
	mux := RelativeArea(Multiplexed, n, v)
	part := RelativeArea(PartiallyDemultiplexed, n, v)
	full := RelativeArea(FullyDemultiplexed, n, v)
	if mux != 64 {
		t.Fatalf("multiplexed area = %d, want 64", mux)
	}
	if part != mux*int64(v) {
		t.Fatalf("partial = %d, want %d", part, mux*int64(v))
	}
	if full != mux*int64(v)*int64(v) {
		t.Fatalf("full = %d, want %d", full, mux*int64(v)*int64(v))
	}
	if RelativeArea(Organization(99), n, v) != 0 {
		t.Fatal("unknown organization should report 0")
	}
}

func TestOrganizationString(t *testing.T) {
	if Multiplexed.String() != "multiplexed" ||
		!strings.Contains(PartiallyDemultiplexed.String(), "partially") ||
		!strings.Contains(FullyDemultiplexed.String(), "fully") {
		t.Fatal("organization strings wrong")
	}
	if !strings.Contains(Organization(42).String(), "42") {
		t.Fatal("unknown organization string should include value")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestConfigureAndQuery(t *testing.T) {
	c := New(4)
	if err := c.Configure([]int{2, Unconnected, 0, 3}); err != nil {
		t.Fatal(err)
	}
	if c.OutputFor(0) != 2 || c.OutputFor(1) != Unconnected || c.OutputFor(2) != 0 || c.OutputFor(3) != 3 {
		t.Fatal("forward mapping wrong")
	}
	if c.InputFor(2) != 0 || c.InputFor(0) != 2 || c.InputFor(3) != 3 || c.InputFor(1) != Unconnected {
		t.Fatal("reverse mapping wrong")
	}
	if !c.Connected(0, 2) || c.Connected(1, 0) || c.Connected(-1, 0) {
		t.Fatal("Connected wrong")
	}
	if c.Reconfigurations() != 1 {
		t.Fatalf("reconfigs = %d, want 1", c.Reconfigurations())
	}
}

func TestConfigureRejectsConflicts(t *testing.T) {
	c := New(3)
	if err := c.Configure([]int{0, 0, Unconnected}); err == nil {
		t.Fatal("duplicate output accepted")
	}
	if err := c.Configure([]int{5, Unconnected, Unconnected}); err == nil {
		t.Fatal("out-of-range output accepted")
	}
	if err := c.Configure([]int{0, 1}); err == nil {
		t.Fatal("short configuration accepted")
	}
}

func TestBadConfigurePreservesPrevious(t *testing.T) {
	c := New(2)
	if err := c.Configure([]int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Configure([]int{0, 0}); err == nil {
		t.Fatal("conflict accepted")
	}
	if c.OutputFor(0) != 1 || c.OutputFor(1) != 0 {
		t.Fatal("failed configure clobbered the active matching")
	}
}

func TestTransmit(t *testing.T) {
	c := New(2)
	c.Configure([]int{1, Unconnected})
	if out := c.Transmit(0); out != 1 {
		t.Fatalf("Transmit(0) = %d, want 1", out)
	}
	if c.Transmitted() != 1 {
		t.Fatal("transmit count wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("transmit on unconnected input did not panic")
		}
	}()
	c.Transmit(1)
}

func TestUtilization(t *testing.T) {
	c := New(4)
	c.Configure([]int{0, 1, 2, 3})
	for i := 0; i < 4; i++ {
		c.Transmit(i)
	}
	if u := c.Utilization(2); u != 0.5 { // 4 flits / (4 ports × 2 cycles)
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if c.Utilization(0) != 0 {
		t.Fatal("zero-cycle utilization should be 0")
	}
}

// Property: any valid partial matching round-trips through
// Configure/OutputFor/InputFor consistently.
func TestConfigureProperty(t *testing.T) {
	f := func(raw [6]int8) bool {
		c := New(6)
		out := make([]int, 6)
		used := make(map[int]bool)
		for i, r := range raw {
			o := int(r)
			if o < 0 || o >= 6 || used[o] {
				out[i] = Unconnected
			} else {
				out[i] = o
				used[o] = true
			}
		}
		if err := c.Configure(out); err != nil {
			return false
		}
		for in, o := range out {
			if c.OutputFor(in) != o {
				return false
			}
			if o != Unconnected && c.InputFor(o) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
