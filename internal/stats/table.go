package stats

import (
	"fmt"
	"strings"
)

// Figure is a set of series sharing an x axis — the in-memory form of one
// paper figure. FormatTable renders it the way the paper's plots read:
// one row per x value, one column per curve.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends a named curve and returns it for population.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// FindSeries returns the series with the given name, or nil.
func (f *Figure) FindSeries(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// xValues returns the union of all x values across series, ascending.
func (f *Figure) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for i := 1; i < len(xs); i++ { // insertion sort: xs is tiny and mostly sorted
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

// FormatTable renders the figure as an aligned text table.
func (f *Figure) FormatTable() string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if f.YLabel != "" {
		fmt.Fprintf(&b, "y: %s\n", f.YLabel)
	}
	header := []string{f.XLabel}
	if f.XLabel == "" {
		header[0] = "x"
	}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range f.xValues() {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCSV renders the figure as CSV with a header row.
func (f *Figure) FormatCSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(firstNonEmpty(f.XLabel, "x")))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range f.xValues() {
		b.WriteString(trimFloat(x))
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				b.WriteString(trimFloat(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// FormatAccumCell formats one statistic of an accumulator for table
// output, printing "-" when the accumulator is empty. Accumulator
// getters return 0 with no samples, so an empty accumulator would
// otherwise render as a believable "min 0.00 / max 0.00" row. stat is
// one of "mean", "min", "max", "sd", "p-sd" printed via format (a
// fmt float verb such as "%.2f").
func FormatAccumCell(a *Accumulator, stat, format string) string {
	if a.N() == 0 {
		return "-"
	}
	var v float64
	switch stat {
	case "mean":
		v = a.Mean()
	case "min":
		v = a.Min()
	case "max":
		v = a.Max()
	case "sd":
		v = a.StdDev()
	default:
		panic("stats: unknown accumulator stat " + stat)
	}
	return fmt.Sprintf(format, v)
}

// trimFloat formats a float compactly: integers without a decimal point,
// everything else with up to 4 significant decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}
