package stats

// JitterTracker measures per-connection jitter exactly as §5 defines it:
// "the jitter on a connection is defined as the difference in the delays
// of successive flits on a connection". Each connection remembers the
// delay of its previous flit; the absolute difference to the next flit's
// delay is one jitter sample.
type JitterTracker struct {
	prev     []float64
	seen     []bool
	jitter   Accumulator
	delay    Accumulator
	perConn  []Accumulator
	perDelay []Accumulator
}

// NewJitterTracker returns a tracker for nconns connections.
func NewJitterTracker(nconns int) *JitterTracker {
	return &JitterTracker{
		prev:     make([]float64, nconns),
		seen:     make([]bool, nconns),
		perConn:  make([]Accumulator, nconns),
		perDelay: make([]Accumulator, nconns),
	}
}

// Grow extends the tracker to cover at least nconns connections,
// preserving existing state. Used when connections are admitted
// dynamically. Each slice grows to the target length in one step rather
// than element by element, so repeated admissions cost amortized O(1)
// per connection instead of O(n) appends per call.
func (j *JitterTracker) Grow(nconns int) {
	if len(j.prev) >= nconns {
		return
	}
	j.prev = append(j.prev, make([]float64, nconns-len(j.prev))...)
	j.seen = append(j.seen, make([]bool, nconns-len(j.seen))...)
	j.perConn = append(j.perConn, make([]Accumulator, nconns-len(j.perConn))...)
	j.perDelay = append(j.perDelay, make([]Accumulator, nconns-len(j.perDelay))...)
}

// Record notes that a flit of connection conn experienced the given delay.
// The first flit of a connection establishes a baseline and produces no
// jitter sample (ok is false); afterwards it returns the absolute
// delay difference to the previous flit, so callers can feed the sample
// to observers (e.g. metric histograms) without re-deriving it.
func (j *JitterTracker) Record(conn int, delay float64) (jitter float64, ok bool) {
	j.delay.Add(delay)
	j.perDelay[conn].Add(delay)
	if j.seen[conn] {
		d := delay - j.prev[conn]
		if d < 0 {
			d = -d
		}
		j.jitter.Add(d)
		j.perConn[conn].Add(d)
		jitter, ok = d, true
	}
	j.prev[conn] = delay
	j.seen[conn] = true
	return jitter, ok
}

// Jitter returns the aggregate jitter accumulator across all connections.
func (j *JitterTracker) Jitter() *Accumulator { return &j.jitter }

// Delay returns the aggregate delay accumulator across all connections.
func (j *JitterTracker) Delay() *Accumulator { return &j.delay }

// ConnJitter returns the jitter accumulator for one connection.
func (j *JitterTracker) ConnJitter(conn int) *Accumulator { return &j.perConn[conn] }

// ConnDelay returns the delay accumulator for one connection.
func (j *JitterTracker) ConnDelay(conn int) *Accumulator { return &j.perDelay[conn] }

// NumConns returns how many connections the tracker currently covers.
func (j *JitterTracker) NumConns() int { return len(j.prev) }

// ConnBaseline exports connection conn's previous-flit delay baseline
// for checkpointing.
func (j *JitterTracker) ConnBaseline(conn int) (prev float64, seen bool) {
	return j.prev[conn], j.seen[conn]
}

// RestoreBaseline overwrites connection conn's baseline.
func (j *JitterTracker) RestoreBaseline(conn int, prev float64, seen bool) {
	j.prev[conn] = prev
	j.seen[conn] = seen
}

// Reset clears all statistics but keeps the per-connection baselines, so
// warm-up samples can be discarded without fabricating a jitter spike at
// the measurement boundary.
func (j *JitterTracker) Reset() {
	j.jitter.Reset()
	j.delay.Reset()
	for i := range j.perConn {
		j.perConn[i].Reset()
		j.perDelay[i].Reset()
	}
}

// ResetAll clears statistics and baselines both.
func (j *JitterTracker) ResetAll() {
	j.Reset()
	for i := range j.seen {
		j.seen[i] = false
	}
}
