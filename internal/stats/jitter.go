package stats

// JitterTracker measures per-connection jitter exactly as §5 defines it:
// "the jitter on a connection is defined as the difference in the delays
// of successive flits on a connection". Each connection remembers the
// delay of its previous flit; the absolute difference to the next flit's
// delay is one jitter sample.
type JitterTracker struct {
	prev     []float64
	seen     []bool
	jitter   Accumulator
	delay    Accumulator
	perConn  []Accumulator
	perDelay []Accumulator
}

// NewJitterTracker returns a tracker for nconns connections.
func NewJitterTracker(nconns int) *JitterTracker {
	return &JitterTracker{
		prev:     make([]float64, nconns),
		seen:     make([]bool, nconns),
		perConn:  make([]Accumulator, nconns),
		perDelay: make([]Accumulator, nconns),
	}
}

// Grow extends the tracker to cover at least nconns connections,
// preserving existing state. Used when connections are admitted
// dynamically.
func (j *JitterTracker) Grow(nconns int) {
	for len(j.prev) < nconns {
		j.prev = append(j.prev, 0)
		j.seen = append(j.seen, false)
		j.perConn = append(j.perConn, Accumulator{})
		j.perDelay = append(j.perDelay, Accumulator{})
	}
}

// Record notes that a flit of connection conn experienced the given delay.
// The first flit of a connection establishes a baseline and produces no
// jitter sample.
func (j *JitterTracker) Record(conn int, delay float64) {
	j.delay.Add(delay)
	j.perDelay[conn].Add(delay)
	if j.seen[conn] {
		d := delay - j.prev[conn]
		if d < 0 {
			d = -d
		}
		j.jitter.Add(d)
		j.perConn[conn].Add(d)
	}
	j.prev[conn] = delay
	j.seen[conn] = true
}

// Jitter returns the aggregate jitter accumulator across all connections.
func (j *JitterTracker) Jitter() *Accumulator { return &j.jitter }

// Delay returns the aggregate delay accumulator across all connections.
func (j *JitterTracker) Delay() *Accumulator { return &j.delay }

// ConnJitter returns the jitter accumulator for one connection.
func (j *JitterTracker) ConnJitter(conn int) *Accumulator { return &j.perConn[conn] }

// ConnDelay returns the delay accumulator for one connection.
func (j *JitterTracker) ConnDelay(conn int) *Accumulator { return &j.perDelay[conn] }

// Reset clears all statistics but keeps the per-connection baselines, so
// warm-up samples can be discarded without fabricating a jitter spike at
// the measurement boundary.
func (j *JitterTracker) Reset() {
	j.jitter.Reset()
	j.delay.Reset()
	for i := range j.perConn {
		j.perConn[i].Reset()
		j.perDelay[i].Reset()
	}
}

// ResetAll clears statistics and baselines both.
func (j *JitterTracker) ResetAll() {
	j.Reset()
	for i := range j.seen {
		j.seen[i] = false
	}
}
