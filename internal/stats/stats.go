// Package stats provides the measurement machinery for the MMR
// simulations: streaming moment accumulators, histograms, per-connection
// jitter trackers, and labeled series for regenerating the paper's figures.
//
// Metric definitions follow the paper exactly (§5): delay is the time from
// a flit being ready to transmit through the switch until it actually
// leaves the switch; jitter on a connection is the difference between the
// delays of successive flits on that connection.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming count, mean, variance (Welford), min and
// max without storing samples. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 with <2 samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample. With no samples it returns 0, which
// is indistinguishable from a genuine minimum of 0 — callers that print
// extremes must check N() first (FormatAccumCell does this) rather than
// report a fabricated zero.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples (see Min for the
// empty-accumulator caveat).
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns n*mean, the total of all samples.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Reset discards all recorded samples.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Merge folds other into a, as if a had seen other's samples too.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	n := a.n + other.n
	d := other.mean - a.mean
	mean := a.mean + d*float64(other.n)/float64(n)
	m2 := a.m2 + other.m2 + d*d*float64(a.n)*float64(other.n)/float64(n)
	min, max := a.min, a.max
	if other.min < min {
		min = other.min
	}
	if other.max > max {
		max = other.max
	}
	*a = Accumulator{n: n, mean: mean, m2: m2, min: min, max: max}
}

// AccumulatorState is the full serializable state of an Accumulator.
// All five fields must round-trip for restored statistics to merge and
// extend bit-identically to the uninterrupted run.
type AccumulatorState struct {
	N        int64
	Mean, M2 float64
	Min, Max float64
}

// State exports the accumulator for checkpointing.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
}

// Restore overwrites the accumulator with a previously exported state.
func (a *Accumulator) Restore(st AccumulatorState) {
	a.n, a.mean, a.m2, a.min, a.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// String summarizes the accumulator for debug output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Histogram counts samples in uniform bins over [lo, hi); samples outside
// the range go to under/overflow counters so nothing is silently lost.
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []int64
	under  int64
	over   int64
	total  int64
	acc    Accumulator
}

// NewHistogram returns a histogram with nbins uniform bins spanning
// [lo, hi). It panics on a degenerate range or nbins < 1.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 || !(hi > lo) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(nbins), bins: make([]int64, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	h.acc.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // float edge case at hi boundary
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns the total number of samples including out-of-range ones.
func (h *Histogram) N() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of samples >= hi.
func (h *Histogram) Overflow() int64 { return h.over }

// Mean returns the exact streaming mean (not bin-quantized).
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Quantile returns an estimate of the q-quantile (0<=q<=1) by linear
// interpolation within bins. Out-of-range mass is pinned to the range
// edges. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.acc.Min()
	}
	if q >= 1 {
		return h.acc.Max()
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.bins {
		if cum+float64(c) >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum += float64(c)
	}
	return h.hi
}

// Point is one (x, y) pair of a plotted series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// AddAccum appends (x, a.Mean()) only when the accumulator holds at
// least one sample; an empty accumulator's mean is a fabricated 0 that
// would plot as a real data point. It reports whether a point was added.
func (s *Series) AddAccum(x float64, a *Accumulator) bool {
	if a.N() == 0 {
		return false
	}
	s.Add(x, a.Mean())
	return true
}

// YAt returns the y value at the given x (exact match) and whether it
// exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Sorted returns a copy of the series with points ordered by x.
func (s *Series) Sorted() *Series {
	c := &Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].X < c.Points[j].X })
	return c
}
