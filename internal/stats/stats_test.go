package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	// Population sd of this classic set is 2; sample variance = 32/7.
	if !almost(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if !almost(a.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v", a.Sum())
	}
	a.Reset()
	if a.N() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(-3)
	if a.Mean() != -3 || a.Min() != -3 || a.Max() != -3 || a.Variance() != 0 {
		t.Fatalf("single-sample stats wrong: %s", a.String())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b, whole Accumulator
	xs := []float64{1, 2, 3, 10, 20, 30, -5}
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() || !almost(a.Mean(), whole.Mean(), 1e-9) ||
		!almost(a.Variance(), whole.Variance(), 1e-9) ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: %s vs %s", a.String(), whole.String())
	}
	var empty Accumulator
	a.Merge(&empty) // merging empty is a no-op
	if a.N() != whole.N() {
		t.Fatal("merging empty changed N")
	}
	var c Accumulator
	c.Merge(&whole) // merging into empty copies
	if c.N() != whole.N() || !almost(c.Mean(), whole.Mean(), 1e-12) {
		t.Fatal("merge into empty wrong")
	}
}

// Property: merging two halves equals accumulating the whole.
func TestMergeProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % (len(xs) + 1)
		var a, b, w Accumulator
		for i, x := range xs {
			w.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		scale := math.Max(1, math.Abs(w.Mean()))
		return a.N() == w.N() && almost(a.Mean(), w.Mean(), 1e-6*scale) &&
			a.Min() == w.Min() && a.Max() == w.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinningAndQuantiles(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9 uniform
	}
	if h.N() != 100 || h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatalf("counts wrong: n=%d u=%d o=%d", h.N(), h.Underflow(), h.Overflow())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 10 {
			t.Fatalf("bin %d = %d, want 10", i, h.Bin(i))
		}
	}
	if q := h.Quantile(0.5); !almost(q, 5, 0.2) {
		t.Fatalf("median = %v, want ~5", q)
	}
	if q := h.Quantile(0.95); !almost(q, 9.5, 0.2) {
		t.Fatalf("p95 = %v, want ~9.5", q)
	}
	if h.Quantile(0) != 0 || !almost(h.Quantile(1), 9.9, 1e-9) {
		t.Fatal("extreme quantiles should be min/max")
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(2)
	h.Add(0.5)
	if h.Underflow() != 1 || h.Overflow() != 1 || h.N() != 3 {
		t.Fatalf("out-of-range accounting wrong: u=%d o=%d n=%d", h.Underflow(), h.Overflow(), h.N())
	}
	if !almost(h.Mean(), (-5+2+0.5)/3, 1e-12) {
		t.Fatalf("Mean should use exact values, got %v", h.Mean())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape did not panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestJitterTracker(t *testing.T) {
	j := NewJitterTracker(2)
	j.Record(0, 5)  // baseline, no jitter sample
	j.Record(0, 8)  // jitter 3
	j.Record(0, 6)  // jitter 2
	j.Record(1, 10) // baseline for conn 1
	j.Record(1, 10) // jitter 0
	if j.Delay().N() != 5 || !almost(j.Delay().Mean(), 39.0/5, 1e-12) {
		t.Fatalf("delay stats wrong: %s", j.Delay().String())
	}
	if j.Jitter().N() != 3 || !almost(j.Jitter().Mean(), 5.0/3, 1e-12) {
		t.Fatalf("jitter stats wrong: %s", j.Jitter().String())
	}
	if j.ConnJitter(0).N() != 2 || !almost(j.ConnJitter(0).Mean(), 2.5, 1e-12) {
		t.Fatalf("per-conn jitter wrong: %s", j.ConnJitter(0).String())
	}
}

func TestJitterTrackerResetKeepsBaseline(t *testing.T) {
	j := NewJitterTracker(1)
	j.Record(0, 100)
	j.Reset() // warm-up discard
	j.Record(0, 101)
	if j.Jitter().N() != 1 || j.Jitter().Mean() != 1 {
		t.Fatalf("baseline lost across Reset: %s", j.Jitter().String())
	}
	j.ResetAll()
	j.Record(0, 7)
	if j.Jitter().N() != 0 {
		t.Fatal("ResetAll should clear baselines")
	}
}

func TestJitterTrackerGrow(t *testing.T) {
	j := NewJitterTracker(1)
	j.Grow(3)
	j.Record(2, 4)
	j.Record(2, 9)
	if j.ConnJitter(2).N() != 1 || j.ConnJitter(2).Mean() != 5 {
		t.Fatal("grown connection not tracked")
	}
}

func TestJitterTrackerGrowPreservesState(t *testing.T) {
	j := NewJitterTracker(1)
	j.Record(0, 10) // baseline for conn 0
	j.Grow(1000)    // no-op growths must not disturb anything either
	j.Grow(500)
	j.Record(0, 13)
	if j.ConnJitter(0).N() != 1 || j.ConnJitter(0).Mean() != 3 {
		t.Fatalf("baseline lost across Grow: %s", j.ConnJitter(0).String())
	}
	j.Record(999, 1)
	j.Record(999, 2)
	if j.ConnJitter(999).N() != 1 {
		t.Fatal("last grown connection not tracked")
	}
}

func TestJitterTrackerRecordReturn(t *testing.T) {
	j := NewJitterTracker(1)
	if _, ok := j.Record(0, 5); ok {
		t.Fatal("first flit must not produce a jitter sample")
	}
	jit, ok := j.Record(0, 2)
	if !ok || jit != 3 {
		t.Fatalf("Record returned (%v, %v), want (3, true)", jit, ok)
	}
}

func TestSeriesAddAccum(t *testing.T) {
	var s Series
	var empty, full Accumulator
	full.Add(7)
	if s.AddAccum(1, &empty) {
		t.Fatal("AddAccum added a point for an empty accumulator")
	}
	if !s.AddAccum(2, &full) || len(s.Points) != 1 || s.Points[0].Y != 7 {
		t.Fatalf("AddAccum skipped a real point: %+v", s.Points)
	}
}

func TestFormatAccumCell(t *testing.T) {
	var empty, full Accumulator
	full.Add(1.5)
	full.Add(2.5)
	for _, stat := range []string{"mean", "min", "max", "sd"} {
		if got := FormatAccumCell(&empty, stat, "%.2f"); got != "-" {
			t.Errorf("empty %s cell = %q, want -", stat, got)
		}
	}
	if got := FormatAccumCell(&full, "min", "%.2f"); got != "1.50" {
		t.Errorf("min cell = %q, want 1.50", got)
	}
	if got := FormatAccumCell(&full, "max", "%.2f"); got != "2.50" {
		t.Errorf("max cell = %q, want 2.50", got)
	}
}

func TestSeriesAndFigure(t *testing.T) {
	var fig Figure
	fig.Title = "demo"
	fig.XLabel = "load"
	a := fig.AddSeries("a")
	b := fig.AddSeries("b")
	a.Add(0.1, 1)
	a.Add(0.2, 2)
	b.Add(0.2, 4)
	if s := fig.FindSeries("b"); s != b {
		t.Fatal("FindSeries wrong")
	}
	if fig.FindSeries("zzz") != nil {
		t.Fatal("FindSeries should return nil for unknown")
	}
	if y, ok := a.YAt(0.2); !ok || y != 2 {
		t.Fatal("YAt wrong")
	}
	if _, ok := a.YAt(9); ok {
		t.Fatal("YAt found missing x")
	}
	table := fig.FormatTable()
	if table == "" {
		t.Fatal("empty table")
	}
	csv := fig.FormatCSV()
	want := "load,a,b\n0.1,1,\n0.2,2,4\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSeriesSorted(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	sorted := s.Sorted()
	for i, want := range []float64{1, 2, 3} {
		if sorted.Points[i].X != want {
			t.Fatalf("Sorted order wrong: %v", sorted.Points)
		}
	}
	if s.Points[0].X != 3 {
		t.Fatal("Sorted mutated the original")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.5",
		0.1234: "0.1234",
		0.10:   "0.1",
		-2:     "-2",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b"c`); got != `"a,b""c"` {
		t.Fatalf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Fatalf("csvEscape = %q", got)
	}
}
