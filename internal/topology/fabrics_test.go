package topology

import (
	"testing"

	"mmr/internal/sim"
)

// wiringSignature flattens the full wiring into a comparable string so
// determinism tests can assert byte-identical builds across runs.
func wiringSignature(t *Topology) string {
	sig := make([]byte, 0, len(t.Links)*8)
	for _, l := range t.Links {
		sig = append(sig, byte(l.A), byte(l.A>>8), byte(l.APort),
			byte(l.B), byte(l.B>>8), byte(l.BPort))
	}
	return string(sig)
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		ft, err := FatTree(k)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", k, err)
		}
		if ft.Nodes != FatTreeNodes(k) {
			t.Fatalf("FatTree(%d): %d nodes, want %d", k, ft.Nodes, FatTreeNodes(k))
		}
		if err := ft.Validate(); err != nil {
			t.Fatalf("FatTree(%d) invalid: %v", k, err)
		}
		if !ft.WiredConnected() || !ft.Connected() {
			t.Fatalf("FatTree(%d) not connected", k)
		}
		wantLinks := k * (k / 2) * (k / 2) * 2 // edge↔agg plus agg↔core per pod
		if len(ft.Links) != wantLinks {
			t.Fatalf("FatTree(%d): %d links, want %d", k, len(ft.Links), wantLinks)
		}
		// Degree bounds: edge routers use half their ports (the rest are
		// host-facing and stay unwired), agg and core use all k.
		for p := 0; p < k; p++ {
			for i := 0; i < k/2; i++ {
				if d := ft.Degree(p*k + i); d != k/2 {
					t.Fatalf("FatTree(%d): edge %d degree %d, want %d", k, p*k+i, d, k/2)
				}
				if d := ft.Degree(p*k + k/2 + i); d != k {
					t.Fatalf("FatTree(%d): agg %d degree %d, want %d", k, p*k+k/2+i, d, k)
				}
			}
		}
		for n := k * k; n < ft.Nodes; n++ {
			if d := ft.Degree(n); d != k {
				t.Fatalf("FatTree(%d): core %d degree %d, want %d", k, n, d, k)
			}
		}
		// Regions: one per pod plus the core plane.
		if ft.NumRegions() != k+1 {
			t.Fatalf("FatTree(%d): %d regions, want %d", k, ft.NumRegions(), k+1)
		}
		if ft.Region(0) != 0 || ft.Region(k*k-1) != k-1 || ft.Region(ft.Nodes-1) != k {
			t.Fatalf("FatTree(%d): region assignment wrong", k)
		}
		sh := ft.Shape()
		if sh.Kind != "fattree" || len(sh.Params) != 1 || sh.Params[0] != (ShapeParam{"k", k}) {
			t.Fatalf("FatTree(%d): bad shape %+v", k, sh)
		}
	}
}

func TestFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, -2} {
		if _, err := FatTree(k); err == nil {
			t.Fatalf("FatTree(%d) accepted", k)
		}
	}
}

func TestDragonflyShape(t *testing.T) {
	cases := []struct{ a, p, h int }{{2, 1, 1}, {4, 2, 2}, {6, 3, 3}, {8, 4, 4}}
	for _, c := range cases {
		df, err := Dragonfly(c.a, c.p, c.h)
		if err != nil {
			t.Fatalf("Dragonfly(%d,%d,%d): %v", c.a, c.p, c.h, err)
		}
		g := c.a*c.h + 1
		if df.Nodes != g*c.a || df.Nodes != DragonflyNodes(c.a, c.h) {
			t.Fatalf("Dragonfly(%d,%d,%d): %d nodes, want %d", c.a, c.p, c.h, df.Nodes, g*c.a)
		}
		if err := df.Validate(); err != nil {
			t.Fatalf("Dragonfly(%d,%d,%d) invalid: %v", c.a, c.p, c.h, err)
		}
		if !df.WiredConnected() || !df.Connected() {
			t.Fatalf("Dragonfly(%d,%d,%d) not connected", c.a, c.p, c.h)
		}
		// Balanced dragonfly: every router fully wired — a-1 local links
		// plus h global channels, and one global link per group pair.
		wantLinks := g*c.a*(c.a-1)/2 + g*(g-1)/2
		if len(df.Links) != wantLinks {
			t.Fatalf("Dragonfly(%d,%d,%d): %d links, want %d", c.a, c.p, c.h, len(df.Links), wantLinks)
		}
		for n := 0; n < df.Nodes; n++ {
			if d := df.Degree(n); d != c.a-1+c.h {
				t.Fatalf("Dragonfly(%d,%d,%d): node %d degree %d, want %d", c.a, c.p, c.h, n, d, c.a-1+c.h)
			}
		}
		// Regions: one per group, nodes numbered group-major.
		if df.NumRegions() != g {
			t.Fatalf("Dragonfly(%d,%d,%d): %d regions, want %d", c.a, c.p, c.h, df.NumRegions(), g)
		}
		for n := 0; n < df.Nodes; n++ {
			if df.Region(n) != n/c.a {
				t.Fatalf("Dragonfly(%d,%d,%d): node %d in region %d, want %d", c.a, c.p, c.h, n, df.Region(n), n/c.a)
			}
		}
		// Exactly one global link between every pair of groups.
		pair := map[[2]int]int{}
		for _, l := range df.Links {
			ga, gb := l.A/c.a, l.B/c.a
			if ga != gb {
				if ga > gb {
					ga, gb = gb, ga
				}
				pair[[2]int{ga, gb}]++
			}
		}
		if len(pair) != g*(g-1)/2 {
			t.Fatalf("Dragonfly(%d,%d,%d): %d group pairs linked, want %d", c.a, c.p, c.h, len(pair), g*(g-1)/2)
		}
		for k, v := range pair {
			if v != 1 {
				t.Fatalf("Dragonfly(%d,%d,%d): groups %v joined by %d links", c.a, c.p, c.h, k, v)
			}
		}
	}
}

func TestDragonflyRejectsBadShape(t *testing.T) {
	for _, c := range [][3]int{{1, 1, 1}, {2, 0, 1}, {2, 1, 0}, {0, 1, 1}} {
		if _, err := Dragonfly(c[0], c[1], c[2]); err == nil {
			t.Fatalf("Dragonfly(%d,%d,%d) accepted", c[0], c[1], c[2])
		}
	}
}

// TestGeneratorsDeterministic asserts byte-identical wiring across
// repeated builds — checkpoint compatibility and cross-run determinism
// both hang on this.
func TestGeneratorsDeterministic(t *testing.T) {
	build := map[string]func() (*Topology, error){
		"fattree-8":       func() (*Topology, error) { return FatTree(8) },
		"dragonfly-4-2-2": func() (*Topology, error) { return Dragonfly(4, 2, 2) },
		"mesh-5-3":        func() (*Topology, error) { return Mesh(5, 3, 4) },
		"torus-4-4":       func() (*Topology, error) { return Torus(4, 4, 4) },
		"irregular-24": func() (*Topology, error) {
			rng := sim.NewRNG(99)
			return Irregular(24, 6, 3, rng)
		},
	}
	for name, f := range build {
		a, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := f()
		if err != nil {
			t.Fatalf("%s rebuild: %v", name, err)
		}
		if wiringSignature(a) != wiringSignature(b) {
			t.Fatalf("%s: wiring differs between identical builds", name)
		}
	}
}

func TestShapeDefaults(t *testing.T) {
	// Hand-wired topologies report the zero shape and a single region.
	hw := New(4, 2)
	if err := hw.Connect(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if hw.Shape().Kind != "" || hw.NumRegions() != 1 || hw.Region(3) != 0 {
		t.Fatalf("hand-wired shape not zero: %+v", hw.Shape())
	}
	m, err := Mesh(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shape().Kind != "mesh" || m.NumRegions() != 1 {
		t.Fatalf("mesh shape wrong: %+v", m.Shape())
	}
}
