package topology

// shard.go partitions a topology's node set into shards for the
// network's shard-resident parallel executor (internal/network,
// workers.go). The goal is locality: a good partition keeps most wired
// edges inside one shard, because the executor only needs cross-worker
// synchronization for edges that straddle a shard boundary.
//
// Two strategies cover every topology the generators produce:
//
//   - Plain topologies (mesh, torus, irregular — one region): contiguous
//     node-ID ranges. Mesh and torus builders number nodes row-major, so
//     a contiguous range is a band of whole rows and only the seam rows
//     touch another shard.
//   - Generated fabrics with region metadata (fat tree: pods + core
//     plane; dragonfly: groups): region-aligned grouping. Regions are
//     the fabric's locality units — intra-pod and intra-group edges
//     dominate — so shards are built from whole regions whenever the
//     shard count allows it, and only the sparse inter-region links
//     (core uplinks, global channels) cross shards.

// Partition splits the node set into at most s non-empty shards and
// returns each shard's node IDs in ascending order. Shards are built
// from contiguous runs of the region-major node order (plain node order
// when the topology has a single region), balanced by node count. When
// s does not exceed the region count, every region lands wholly inside
// one shard (region alignment); otherwise regions are cut as evenly as
// the node count allows. s is clamped to [1, Nodes].
func (t *Topology) Partition(s int) [][]int32 {
	if s > t.Nodes {
		s = t.Nodes
	}
	if s < 1 {
		s = 1
	}
	regions := t.NumRegions()
	if regions > 1 && s <= regions {
		return t.partitionByRegion(s, regions)
	}
	order := t.regionOrder(regions)
	shards := make([][]int32, s)
	for i := 0; i < s; i++ {
		lo, hi := i*t.Nodes/s, (i+1)*t.Nodes/s
		shard := make([]int32, hi-lo)
		copy(shard, order[lo:hi])
		sortInt32(shard)
		shards[i] = shard
	}
	return shards
}

// regionOrder returns the node IDs in region-major order (region index
// ascending, node ID ascending inside each region). With one region this
// is plain ascending node order.
func (t *Topology) regionOrder(regions int) []int32 {
	order := make([]int32, 0, t.Nodes)
	if regions <= 1 {
		for id := 0; id < t.Nodes; id++ {
			order = append(order, int32(id))
		}
		return order
	}
	for r := 0; r < regions; r++ {
		for id := 0; id < t.Nodes; id++ {
			if t.Region(id) == r {
				order = append(order, int32(id))
			}
		}
	}
	return order
}

// partitionByRegion groups whole regions into s shards: regions are
// visited in index order and assigned to the current shard until its
// cumulative node count reaches the proportional target, advancing early
// when exactly one region per remaining shard is left (which guarantees
// every shard gets at least one region).
func (t *Topology) partitionByRegion(s, regions int) [][]int32 {
	shards := make([][]int32, s)
	c, cum := 0, 0
	for r := 0; r < regions; r++ {
		var members []int32
		for id := 0; id < t.Nodes; id++ {
			if t.Region(id) == r {
				members = append(members, int32(id))
			}
		}
		shards[c] = append(shards[c], members...)
		cum += len(members)
		switch {
		case c >= s-1:
			// Last shard absorbs the tail.
		case regions-r-1 == s-c-1:
			// One region per remaining shard: must advance.
			c++
		case cum*s >= (c+1)*t.Nodes:
			// Proportional target reached.
			c++
		}
	}
	for i := range shards {
		sortInt32(shards[i])
	}
	return shards
}

// sortInt32 sorts a small int32 slice ascending (insertion sort; shard
// member lists are built once at partition time, not on any hot path).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
