package topology

import (
	"testing"
	"testing/quick"

	"mmr/internal/sim"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad geometry")
		}
	}()
	New(0, 4)
}

func TestConnectAndQueries(t *testing.T) {
	tp := New(3, 4)
	if err := tp.Connect(0, 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if tp.Neighbor(0, 1) != 1 || tp.Neighbor(1, 2) != 0 {
		t.Fatal("neighbor wrong")
	}
	if tp.PeerPort(0, 1) != 2 || tp.PeerPort(1, 2) != 1 {
		t.Fatal("peer port wrong")
	}
	if tp.PortTo(0, 1) != 1 || tp.PortTo(1, 0) != 2 || tp.PortTo(0, 2) != -1 {
		t.Fatal("PortTo wrong")
	}
	if tp.Degree(0) != 1 || tp.Degree(2) != 0 {
		t.Fatal("degree wrong")
	}
	if tp.FreePort(0) != 0 {
		t.Fatal("free port wrong")
	}
	if len(tp.Links) != 1 {
		t.Fatal("link list wrong")
	}
}

func TestConnectErrors(t *testing.T) {
	tp := New(2, 2)
	cases := []struct{ a, ap, b, bp int }{
		{-1, 0, 1, 0}, // bad node
		{0, 5, 1, 0},  // bad port
		{0, 0, 0, 1},  // self link
	}
	for _, c := range cases {
		if err := tp.Connect(c.a, c.ap, c.b, c.bp); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	tp.Connect(0, 0, 1, 0)
	if err := tp.Connect(0, 0, 1, 1); err == nil {
		t.Fatal("double-wired port accepted")
	}
}

func TestConnectedAndDists(t *testing.T) {
	tp := New(4, 4)
	if tp.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	tp.Connect(0, 0, 1, 0)
	tp.Connect(1, 1, 2, 0)
	tp.Connect(2, 1, 3, 0)
	if !tp.Connected() {
		t.Fatal("chain not connected")
	}
	d := tp.ShortestDists(0)
	for i, want := range []int{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestMesh(t *testing.T) {
	tp, err := Mesh(4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Nodes != 12 || !tp.Connected() {
		t.Fatal("mesh malformed")
	}
	// Interior node has degree 4, corner 2.
	if tp.Degree(5) != 4 { // (1,1)
		t.Fatalf("interior degree = %d", tp.Degree(5))
	}
	if tp.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", tp.Degree(0))
	}
	// 2w*h - w - h links in a mesh.
	if want := 2*4*3 - 4 - 3; len(tp.Links) != want {
		t.Fatalf("links = %d, want %d", len(tp.Links), want)
	}
	// Manhattan distance check.
	d := tp.ShortestDists(0)
	if d[11] != 3+2 {
		t.Fatalf("corner-to-corner dist = %d, want 5", d[11])
	}
	if _, err := Mesh(2, 2, 3); err == nil {
		t.Fatal("mesh with 3 ports accepted")
	}
}

func TestTorus(t *testing.T) {
	tp, err := Torus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Connected() {
		t.Fatal("torus not connected")
	}
	// Every node in a torus has degree 4.
	for n := 0; n < tp.Nodes; n++ {
		if tp.Degree(n) != 4 {
			t.Fatalf("node %d degree = %d", n, tp.Degree(n))
		}
	}
	// Wraparound shortens corner-to-corner to 2+2... actually (0,0) to
	// (3,3) is 1+1 via wrap links.
	d := tp.ShortestDists(0)
	if d[15] != 2 {
		t.Fatalf("wrap distance = %d, want 2", d[15])
	}
	if _, err := Torus(2, 4, 4); err == nil {
		t.Fatal("degenerate torus accepted")
	}
}

func TestIrregular(t *testing.T) {
	rng := sim.NewRNG(42)
	tp, err := Irregular(16, 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Connected() {
		t.Fatal("irregular topology not connected")
	}
	for n := 0; n < tp.Nodes; n++ {
		if tp.Degree(n) > 8 {
			t.Fatalf("node %d exceeds port count", n)
		}
	}
	// Link count should approach nodes*avgDegree/2.
	if len(tp.Links) < 16 { // at least the spanning tree + extras
		t.Fatalf("too few links: %d", len(tp.Links))
	}
	if _, err := Irregular(1, 4, 2, rng); err == nil {
		t.Fatal("single-node irregular accepted")
	}
	if _, err := Irregular(8, 4, 9, rng); err == nil {
		t.Fatal("degree above ports accepted")
	}
}

func TestSetLinkUp(t *testing.T) {
	tp := New(3, 4)
	tp.Connect(0, 0, 1, 0)
	tp.Connect(1, 1, 2, 0)
	v := tp.Version()
	if err := tp.SetLinkUp(0, 0, false); err != nil {
		t.Fatal(err)
	}
	if tp.Version() == v {
		t.Fatal("version did not advance on link-state change")
	}
	// Both sides see the link down; raw wiring stays visible.
	if tp.Neighbor(0, 0) != -1 || tp.Neighbor(1, 0) != -1 {
		t.Fatal("down link still visible to Neighbor")
	}
	if tp.PeerPort(0, 0) != -1 || tp.LinkUp(0, 0) || tp.LinkUp(1, 0) {
		t.Fatal("down link state not mirrored")
	}
	if tp.Wired(0, 0) != 1 || tp.WiredPeer(0, 0) != 0 {
		t.Fatal("raw wiring lost when link went down")
	}
	if tp.Connected() {
		t.Fatal("partitioned topology reported connected")
	}
	if d := tp.ShortestDists(0); d[1] != -1 || d[2] != -1 {
		t.Fatalf("dists cross a down link: %v", d)
	}
	if tp.UpLinks() != 1 {
		t.Fatalf("UpLinks = %d, want 1", tp.UpLinks())
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("valid topology failed audit: %v", err)
	}
	// Restore: traversal sees the link again.
	if err := tp.SetLinkUp(1, 0, true); err != nil { // far side works too
		t.Fatal(err)
	}
	if tp.Neighbor(0, 0) != 1 || !tp.Connected() || tp.UpLinks() != 2 {
		t.Fatal("restore did not bring the link back")
	}
	// Idempotent no-op does not bump the version.
	v = tp.Version()
	if err := tp.SetLinkUp(0, 0, true); err != nil || tp.Version() != v {
		t.Fatal("no-op SetLinkUp changed state")
	}
	// Error paths.
	if err := tp.SetLinkUp(0, 3, false); err == nil {
		t.Fatal("unwired port accepted")
	}
	if err := tp.SetLinkUp(-1, 0, false); err == nil || tp.SetLinkUp(0, 9, false) == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestValidateDetectsMalformedWiring(t *testing.T) {
	tp := New(3, 4)
	tp.Connect(0, 0, 1, 0)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate port wiring smuggled into the Links list.
	tp.Links = append(tp.Links, Link{A: 0, B: 2, APort: 0, BPort: 0})
	if err := tp.Validate(); err == nil {
		t.Fatal("duplicate port wiring not detected")
	}
	tp.Links = tp.Links[:1]

	// Asymmetric neighbor table.
	tp2 := New(3, 4)
	tp2.Connect(0, 0, 1, 0)
	tp2.neighbor[1][0] = 2
	if err := tp2.Validate(); err == nil {
		t.Fatal("asymmetric wiring not detected")
	}

	// Wiring present in the tables but missing from Links.
	tp3 := New(3, 4)
	tp3.Connect(0, 0, 1, 0)
	tp3.Links = nil
	if err := tp3.Validate(); err == nil {
		t.Fatal("orphan wiring not detected")
	}

	// Split up/down state across the two sides of one cable.
	tp4 := New(3, 4)
	tp4.Connect(0, 0, 1, 0)
	tp4.linkUp[1][0] = false
	if err := tp4.Validate(); err == nil {
		t.Fatal("split link state not detected")
	}

	// An unwired port marked up.
	tp5 := New(3, 4)
	tp5.linkUp[2][2] = true
	if err := tp5.Validate(); err == nil {
		t.Fatal("unwired-but-up port not detected")
	}
}

// Property: irregular topologies are always connected and respect port
// limits, for any seed.
func TestIrregularProperty(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(seed uint64, n8, deg8 uint8) bool {
		rng.Seed(seed)
		nodes := int(n8)%30 + 2
		ports := 8
		deg := int(deg8)%4 + 1
		tp, err := Irregular(nodes, ports, deg, rng)
		if err != nil {
			return false
		}
		if !tp.Connected() {
			return false
		}
		for n := 0; n < nodes; n++ {
			if tp.Degree(n) > ports {
				return false
			}
		}
		// Symmetry: neighbor relations must be mutual.
		for n := 0; n < nodes; n++ {
			for p := 0; p < ports; p++ {
				m := tp.Neighbor(n, p)
				if m < 0 {
					continue
				}
				q := tp.PeerPort(n, p)
				if tp.Neighbor(m, q) != n || tp.PeerPort(m, q) != p {
					return false
				}
			}
		}
		return tp.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
