package topology

import "testing"

// checkPartition validates the structural invariants every partition
// must satisfy: exact coverage (each node in exactly one shard), no
// empty shards, and ascending member order.
func checkPartition(t *testing.T, tp *Topology, shards [][]int32) {
	t.Helper()
	seen := make([]bool, tp.Nodes)
	for si, shard := range shards {
		if len(shard) == 0 {
			t.Fatalf("shard %d empty", si)
		}
		for i, id := range shard {
			if id < 0 || int(id) >= tp.Nodes {
				t.Fatalf("shard %d: node %d out of range", si, id)
			}
			if seen[id] {
				t.Fatalf("node %d in more than one shard", id)
			}
			seen[id] = true
			if i > 0 && shard[i-1] >= id {
				t.Fatalf("shard %d not ascending at %d", si, i)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("node %d in no shard", id)
		}
	}
}

func TestPartitionMeshContiguous(t *testing.T) {
	tp, err := Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 4, 3} {
		shards := tp.Partition(s)
		if len(shards) != s {
			t.Fatalf("Partition(%d) returned %d shards", s, len(shards))
		}
		checkPartition(t, tp, shards)
		// Plain topologies partition into contiguous node-ID ranges
		// (row-major meshes: bands of whole rows).
		for si, shard := range shards {
			for i := 1; i < len(shard); i++ {
				if shard[i] != shard[i-1]+1 {
					t.Fatalf("s=%d shard %d not contiguous: %v", s, si, shard)
				}
			}
		}
		// Balance: node counts differ by at most one.
		lo, hi := tp.Nodes, 0
		for _, shard := range shards {
			if len(shard) < lo {
				lo = len(shard)
			}
			if len(shard) > hi {
				hi = len(shard)
			}
		}
		if hi-lo > 1 {
			t.Fatalf("s=%d unbalanced: min %d max %d", s, lo, hi)
		}
	}
}

func TestPartitionRegionAligned(t *testing.T) {
	fabrics := []struct {
		name string
		tp   func() (*Topology, error)
	}{
		{"fattree", func() (*Topology, error) { return FatTree(4) }},
		{"dragonfly", func() (*Topology, error) { return Dragonfly(4, 2, 3) }},
	}
	for _, f := range fabrics {
		t.Run(f.name, func(t *testing.T) {
			tp, err := f.tp()
			if err != nil {
				t.Fatal(err)
			}
			regions := tp.NumRegions()
			if regions < 2 {
				t.Fatalf("fabric reports %d regions", regions)
			}
			for s := 2; s <= regions; s++ {
				shards := tp.Partition(s)
				if len(shards) != s {
					t.Fatalf("Partition(%d) returned %d shards", s, len(shards))
				}
				checkPartition(t, tp, shards)
				// Region alignment: every region lands wholly inside one
				// shard when the shard count does not exceed the region
				// count.
				regionShard := make([]int, regions)
				for i := range regionShard {
					regionShard[i] = -1
				}
				for si, shard := range shards {
					for _, id := range shard {
						r := tp.Region(int(id))
						if regionShard[r] == -1 {
							regionShard[r] = si
						} else if regionShard[r] != si {
							t.Fatalf("s=%d region %d split across shards %d and %d",
								s, r, regionShard[r], si)
						}
					}
				}
			}
		})
	}
}

func TestPartitionSplitsRegionsWhenOversubscribed(t *testing.T) {
	tp, err := FatTree(4) // 20 nodes, 5 regions
	if err != nil {
		t.Fatal(err)
	}
	shards := tp.Partition(8)
	if len(shards) != 8 {
		t.Fatalf("Partition(8) returned %d shards", len(shards))
	}
	checkPartition(t, tp, shards)
}

func TestPartitionClamps(t *testing.T) {
	tp, err := Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	one := tp.Partition(0)
	if len(one) != 1 || len(one[0]) != tp.Nodes {
		t.Fatalf("Partition(0) = %d shards, want 1 covering all nodes", len(one))
	}
	max := tp.Partition(1000)
	if len(max) != tp.Nodes {
		t.Fatalf("Partition(1000) = %d shards, want %d singletons", len(max), tp.Nodes)
	}
	checkPartition(t, tp, max)
}
