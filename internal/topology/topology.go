// Package topology describes the interconnect graphs the MMR targets:
// switch-based cluster/LAN fabrics. Besides regular meshes and tori it
// generates the irregular topologies the routing algorithms of §3.5 were
// designed for (networks of workstations wired ad hoc, refs [26,27]).
//
// A topology is a set of nodes (routers) and bidirectional links between
// router ports. Port 0..HostPorts-1 of every router attach to hosts;
// the remaining ports attach to other routers or stay unwired.
package topology

import (
	"fmt"

	"mmr/internal/sim"
)

// Link is one bidirectional cable between two router ports.
type Link struct {
	A, B         int // router IDs
	APort, BPort int // port on each side
}

// Topology is an undirected multigraph of routers.
type Topology struct {
	Nodes int
	Ports int // ports per router available for inter-router wiring
	Links []Link

	// neighbor[n][p] = router reached from node n port p, or -1.
	neighbor [][]int
	// peerPort[n][p] = the port on the neighbor that the cable plugs into.
	peerPort [][]int
}

// New returns an empty topology with the given geometry.
func New(nodes, ports int) *Topology {
	if nodes < 1 || ports < 1 {
		panic(fmt.Sprintf("topology: invalid geometry nodes=%d ports=%d", nodes, ports))
	}
	t := &Topology{Nodes: nodes, Ports: ports}
	t.neighbor = make([][]int, nodes)
	t.peerPort = make([][]int, nodes)
	for n := 0; n < nodes; n++ {
		t.neighbor[n] = make([]int, ports)
		t.peerPort[n] = make([]int, ports)
		for p := 0; p < ports; p++ {
			t.neighbor[n][p] = -1
			t.peerPort[n][p] = -1
		}
	}
	return t
}

// Connect wires port ap of node a to port bp of node b. It returns an
// error if either port is already wired or out of range.
func (t *Topology) Connect(a, ap, b, bp int) error {
	if a < 0 || a >= t.Nodes || b < 0 || b >= t.Nodes {
		return fmt.Errorf("topology: node out of range (%d,%d)", a, b)
	}
	if ap < 0 || ap >= t.Ports || bp < 0 || bp >= t.Ports {
		return fmt.Errorf("topology: port out of range (%d,%d)", ap, bp)
	}
	if a == b {
		return fmt.Errorf("topology: self-link on node %d", a)
	}
	if t.neighbor[a][ap] != -1 || t.neighbor[b][bp] != -1 {
		return fmt.Errorf("topology: port already wired (%d.%d or %d.%d)", a, ap, b, bp)
	}
	t.neighbor[a][ap] = b
	t.peerPort[a][ap] = bp
	t.neighbor[b][bp] = a
	t.peerPort[b][bp] = ap
	t.Links = append(t.Links, Link{A: a, B: b, APort: ap, BPort: bp})
	return nil
}

// Neighbor returns the router on the far side of node n's port p, or -1.
func (t *Topology) Neighbor(n, p int) int { return t.neighbor[n][p] }

// PeerPort returns the far-side port of node n's port p, or -1.
func (t *Topology) PeerPort(n, p int) int { return t.peerPort[n][p] }

// FreePort returns the lowest unwired port of node n, or -1.
func (t *Topology) FreePort(n int) int {
	for p := 0; p < t.Ports; p++ {
		if t.neighbor[n][p] == -1 {
			return p
		}
	}
	return -1
}

// Degree returns the number of wired ports of node n.
func (t *Topology) Degree(n int) int {
	d := 0
	for p := 0; p < t.Ports; p++ {
		if t.neighbor[n][p] != -1 {
			d++
		}
	}
	return d
}

// PortTo returns a port of node n wired to node m, or -1.
func (t *Topology) PortTo(n, m int) int {
	for p := 0; p < t.Ports; p++ {
		if t.neighbor[n][p] == m {
			return p
		}
	}
	return -1
}

// Connected reports whether the wired graph is connected.
func (t *Topology) Connected() bool {
	if t.Nodes == 0 {
		return true
	}
	seen := make([]bool, t.Nodes)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := 0; p < t.Ports; p++ {
			if m := t.neighbor[n][p]; m >= 0 && !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == t.Nodes
}

// ShortestDists returns, for every node, its hop distance from src (-1 if
// unreachable) — the reference for minimal-path routing checks.
func (t *Topology) ShortestDists(src int) []int {
	dist := make([]int, t.Nodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for p := 0; p < t.Ports; p++ {
			if m := t.neighbor[n][p]; m >= 0 && dist[m] < 0 {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// Mesh builds a w×h 2D mesh. Each router needs at least 4 inter-router
// ports.
func Mesh(w, h, ports int) (*Topology, error) {
	if ports < 4 {
		return nil, fmt.Errorf("topology: mesh needs >= 4 ports, got %d", ports)
	}
	t := New(w*h, ports)
	id := func(x, y int) int { return y*w + x }
	// Port convention: 0=east 1=west 2=north 3=south.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := t.Connect(id(x, y), 0, id(x+1, y), 1); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := t.Connect(id(x, y), 3, id(x, y+1), 2); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// Torus builds a w×h 2D torus (wraparound mesh). w and h must be >= 3 so
// wrap links do not collide with mesh links on the same port pair.
func Torus(w, h, ports int) (*Topology, error) {
	if ports < 4 {
		return nil, fmt.Errorf("topology: torus needs >= 4 ports, got %d", ports)
	}
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("topology: torus needs dimensions >= 3, got %dx%d", w, h)
	}
	t, err := Mesh(w, h, ports)
	if err != nil {
		return nil, err
	}
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		if err := t.Connect(id(w-1, y), 0, id(0, y), 1); err != nil {
			return nil, err
		}
	}
	for x := 0; x < w; x++ {
		if err := t.Connect(id(x, h-1), 3, id(x, 0), 2); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Irregular builds a random connected topology in the style of the NOW
// networks of [26,27]: a random spanning tree (guaranteeing connectivity)
// plus extra random links up to the requested average degree, subject to
// port limits.
func Irregular(nodes, ports, avgDegree int, rng *sim.RNG) (*Topology, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("topology: need >= 2 nodes, got %d", nodes)
	}
	if avgDegree < 1 || avgDegree > ports {
		return nil, fmt.Errorf("topology: average degree %d outside [1,%d]", avgDegree, ports)
	}
	t := New(nodes, ports)
	// Random spanning tree: attach each node to a random earlier node
	// that still has a free port (a popular hub can fill up).
	perm := rng.Perm(nodes)
	for i := 1; i < nodes; i++ {
		a := perm[i]
		b := -1
		off := rng.Intn(i)
		for k := 0; k < i; k++ {
			cand := perm[(off+k)%i]
			if t.FreePort(cand) >= 0 {
				b = cand
				break
			}
		}
		if b < 0 {
			return nil, fmt.Errorf("topology: out of ports while building spanning tree")
		}
		if err := t.Connect(a, t.FreePort(a), b, t.FreePort(b)); err != nil {
			return nil, err
		}
	}
	// Extra links to reach the target degree.
	want := nodes * avgDegree / 2
	for tries := 0; len(t.Links) < want && tries < nodes*ports*4; tries++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b || t.PortTo(a, b) >= 0 {
			continue
		}
		ap, bp := t.FreePort(a), t.FreePort(b)
		if ap < 0 || bp < 0 {
			continue
		}
		if err := t.Connect(a, ap, b, bp); err != nil {
			return nil, err
		}
	}
	return t, nil
}
