// Package topology describes the interconnect graphs the MMR targets:
// switch-based cluster/LAN fabrics. Besides regular meshes and tori it
// generates the irregular topologies the routing algorithms of §3.5 were
// designed for (networks of workstations wired ad hoc, refs [26,27]).
//
// A topology is a set of nodes (routers) and bidirectional links between
// router ports. Port 0..HostPorts-1 of every router attach to hosts;
// the remaining ports attach to other routers or stay unwired.
package topology

import (
	"fmt"

	"mmr/internal/sim"
)

// Link is one bidirectional cable between two router ports.
type Link struct {
	A, B         int // router IDs
	APort, BPort int // port on each side
}

// Topology is an undirected multigraph of routers. Every wired link is
// either up or down: routing and traversal helpers (Neighbor, PeerPort,
// Connected, ShortestDists) see only up links, so marking a link down
// makes path computation route around it, while the raw wiring stays
// queryable through Wired/WiredPeer for teardown and restoration.
type Topology struct {
	Nodes int
	Ports int // ports per router available for inter-router wiring
	Links []Link

	// neighbor[n][p] = router reached from node n port p, or -1.
	neighbor [][]int
	// peerPort[n][p] = the port on the neighbor that the cable plugs into.
	peerPort [][]int
	// linkUp[n][p] = the cable at node n port p carries traffic. Unwired
	// ports are never up.
	linkUp [][]bool

	// version increments on every link-state change so routing caches
	// (distance tables, up*/down* orientation) can detect staleness.
	version uint64

	// shape records generator metadata — kind, shape parameters, and a
	// region partition (pods, dragonfly groups) — when the topology came
	// from a named generator. Hand-wired topologies keep the zero value.
	// See fabrics.go for the Shape type and accessors.
	shape Shape
}

// New returns an empty topology with the given geometry.
func New(nodes, ports int) *Topology {
	if nodes < 1 || ports < 1 {
		panic(fmt.Sprintf("topology: invalid geometry nodes=%d ports=%d", nodes, ports))
	}
	t := &Topology{Nodes: nodes, Ports: ports}
	t.neighbor = make([][]int, nodes)
	t.peerPort = make([][]int, nodes)
	t.linkUp = make([][]bool, nodes)
	for n := 0; n < nodes; n++ {
		t.neighbor[n] = make([]int, ports)
		t.peerPort[n] = make([]int, ports)
		t.linkUp[n] = make([]bool, ports)
		for p := 0; p < ports; p++ {
			t.neighbor[n][p] = -1
			t.peerPort[n][p] = -1
		}
	}
	return t
}

// Connect wires port ap of node a to port bp of node b. It returns an
// error if either port is already wired or out of range.
func (t *Topology) Connect(a, ap, b, bp int) error {
	if a < 0 || a >= t.Nodes || b < 0 || b >= t.Nodes {
		return fmt.Errorf("topology: node out of range (%d,%d)", a, b)
	}
	if ap < 0 || ap >= t.Ports || bp < 0 || bp >= t.Ports {
		return fmt.Errorf("topology: port out of range (%d,%d)", ap, bp)
	}
	if a == b {
		return fmt.Errorf("topology: self-link on node %d", a)
	}
	if t.neighbor[a][ap] != -1 || t.neighbor[b][bp] != -1 {
		return fmt.Errorf("topology: port already wired (%d.%d or %d.%d)", a, ap, b, bp)
	}
	t.neighbor[a][ap] = b
	t.peerPort[a][ap] = bp
	t.neighbor[b][bp] = a
	t.peerPort[b][bp] = ap
	t.linkUp[a][ap] = true
	t.linkUp[b][bp] = true
	t.Links = append(t.Links, Link{A: a, B: b, APort: ap, BPort: bp})
	t.version++
	return nil
}

// Neighbor returns the router on the far side of node n's port p, or -1
// when the port is unwired or its link is down.
func (t *Topology) Neighbor(n, p int) int {
	if !t.linkUp[n][p] {
		return -1
	}
	return t.neighbor[n][p]
}

// PeerPort returns the far-side port of node n's port p, or -1 when the
// port is unwired or its link is down.
func (t *Topology) PeerPort(n, p int) int {
	if !t.linkUp[n][p] {
		return -1
	}
	return t.peerPort[n][p]
}

// Wired returns the router wired to node n's port p regardless of link
// state, or -1 for an unwired port. Teardown paths use it so resource
// release never depends on whether the cable is currently up.
func (t *Topology) Wired(n, p int) int { return t.neighbor[n][p] }

// WiredPeer returns the far-side port of node n's port p regardless of
// link state, or -1 for an unwired port.
func (t *Topology) WiredPeer(n, p int) int { return t.peerPort[n][p] }

// LinkUp reports whether the link at node n port p is wired and up.
func (t *Topology) LinkUp(n, p int) bool { return t.linkUp[n][p] }

// SetLinkUp marks the link at node n port p (and its far side) up or
// down. It returns an error for an unwired port and is a no-op when the
// link is already in the requested state.
func (t *Topology) SetLinkUp(n, p int, up bool) error {
	if n < 0 || n >= t.Nodes || p < 0 || p >= t.Ports {
		return fmt.Errorf("topology: port %d.%d out of range", n, p)
	}
	if t.neighbor[n][p] < 0 {
		return fmt.Errorf("topology: port %d.%d is not wired", n, p)
	}
	if t.linkUp[n][p] == up {
		return nil
	}
	m, mp := t.neighbor[n][p], t.peerPort[n][p]
	t.linkUp[n][p] = up
	t.linkUp[m][mp] = up
	t.version++
	return nil
}

// Version returns a counter that increments on every wiring or
// link-state change; routing caches compare it to detect staleness.
func (t *Topology) Version() uint64 { return t.version }

// UpLinks returns how many of the topology's links are currently up.
func (t *Topology) UpLinks() int {
	n := 0
	for _, l := range t.Links {
		if t.linkUp[l.A][l.APort] {
			n++
		}
	}
	return n
}

// Validate audits the wiring invariants: neighbor/peer tables symmetric,
// link state mirrored on both sides, every Links entry consistent with
// the tables, and no port wired twice. It returns the first violation.
func (t *Topology) Validate() error {
	seen := make(map[[2]int]bool, 2*len(t.Links))
	for _, l := range t.Links {
		for _, side := range [2][2]int{{l.A, l.APort}, {l.B, l.BPort}} {
			if seen[side] {
				return fmt.Errorf("topology: port %d.%d wired twice", side[0], side[1])
			}
			seen[side] = true
		}
		if t.neighbor[l.A][l.APort] != l.B || t.peerPort[l.A][l.APort] != l.BPort {
			return fmt.Errorf("topology: link %+v not reflected at %d.%d", l, l.A, l.APort)
		}
		if t.neighbor[l.B][l.BPort] != l.A || t.peerPort[l.B][l.BPort] != l.APort {
			return fmt.Errorf("topology: link %+v not reflected at %d.%d", l, l.B, l.BPort)
		}
		if t.linkUp[l.A][l.APort] != t.linkUp[l.B][l.BPort] {
			return fmt.Errorf("topology: link %+v up/down state split across sides", l)
		}
	}
	for n := 0; n < t.Nodes; n++ {
		for p := 0; p < t.Ports; p++ {
			m := t.neighbor[n][p]
			if m < 0 {
				if t.linkUp[n][p] {
					return fmt.Errorf("topology: unwired port %d.%d marked up", n, p)
				}
				continue
			}
			if !seen[[2]int{n, p}] {
				return fmt.Errorf("topology: port %d.%d wired outside the Links list", n, p)
			}
			mp := t.peerPort[n][p]
			if mp < 0 || mp >= t.Ports || t.neighbor[m][mp] != n || t.peerPort[m][mp] != p {
				return fmt.Errorf("topology: asymmetric wiring at %d.%d", n, p)
			}
		}
	}
	return nil
}

// FreePort returns the lowest unwired port of node n, or -1.
func (t *Topology) FreePort(n int) int {
	for p := 0; p < t.Ports; p++ {
		if t.neighbor[n][p] == -1 {
			return p
		}
	}
	return -1
}

// Degree returns the number of wired ports of node n.
func (t *Topology) Degree(n int) int {
	d := 0
	for p := 0; p < t.Ports; p++ {
		if t.neighbor[n][p] != -1 {
			d++
		}
	}
	return d
}

// PortTo returns a port of node n with an up link to node m, or -1.
func (t *Topology) PortTo(n, m int) int {
	for p := 0; p < t.Ports; p++ {
		if t.Neighbor(n, p) == m {
			return p
		}
	}
	return -1
}

// Connected reports whether the graph of up links is connected.
func (t *Topology) Connected() bool {
	return t.connected(t.Neighbor)
}

// WiredConnected reports whether the static wiring connects every node,
// ignoring live link state. This is the build-time check: a fabric may
// legitimately be constructed while links are down — restoring a
// checkpoint taken mid-outage — as long as the wiring itself is sound.
func (t *Topology) WiredConnected() bool {
	return t.connected(t.Wired)
}

func (t *Topology) connected(peer func(n, p int) int) bool {
	if t.Nodes == 0 {
		return true
	}
	seen := make([]bool, t.Nodes)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := 0; p < t.Ports; p++ {
			if m := peer(n, p); m >= 0 && !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == t.Nodes
}

// ShortestDists returns, for every node, its hop distance from src over
// up links (-1 if unreachable) — the reference for minimal-path routing
// checks.
func (t *Topology) ShortestDists(src int) []int {
	dist := make([]int, t.Nodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for p := 0; p < t.Ports; p++ {
			if m := t.Neighbor(n, p); m >= 0 && dist[m] < 0 {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// Mesh builds a w×h 2D mesh. Each router needs at least 4 inter-router
// ports.
func Mesh(w, h, ports int) (*Topology, error) {
	if ports < 4 {
		return nil, fmt.Errorf("topology: mesh needs >= 4 ports, got %d", ports)
	}
	t := New(w*h, ports)
	id := func(x, y int) int { return y*w + x }
	// Port convention: 0=east 1=west 2=north 3=south.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := t.Connect(id(x, y), 0, id(x+1, y), 1); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := t.Connect(id(x, y), 3, id(x, y+1), 2); err != nil {
					return nil, err
				}
			}
		}
	}
	t.shape = Shape{Kind: "mesh", Params: []ShapeParam{{"w", w}, {"h", h}}, Regions: 1}
	return t, nil
}

// Torus builds a w×h 2D torus (wraparound mesh). w and h must be >= 3 so
// wrap links do not collide with mesh links on the same port pair.
func Torus(w, h, ports int) (*Topology, error) {
	if ports < 4 {
		return nil, fmt.Errorf("topology: torus needs >= 4 ports, got %d", ports)
	}
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("topology: torus needs dimensions >= 3, got %dx%d", w, h)
	}
	t, err := Mesh(w, h, ports)
	if err != nil {
		return nil, err
	}
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		if err := t.Connect(id(w-1, y), 0, id(0, y), 1); err != nil {
			return nil, err
		}
	}
	for x := 0; x < w; x++ {
		if err := t.Connect(id(x, h-1), 3, id(x, 0), 2); err != nil {
			return nil, err
		}
	}
	t.shape = Shape{Kind: "torus", Params: []ShapeParam{{"w", w}, {"h", h}}, Regions: 1}
	return t, nil
}

// Irregular builds a random connected topology in the style of the NOW
// networks of [26,27]: a random spanning tree (guaranteeing connectivity)
// plus extra random links up to the requested average degree, subject to
// port limits.
func Irregular(nodes, ports, avgDegree int, rng *sim.RNG) (*Topology, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("topology: need >= 2 nodes, got %d", nodes)
	}
	if avgDegree < 1 || avgDegree > ports {
		return nil, fmt.Errorf("topology: average degree %d outside [1,%d]", avgDegree, ports)
	}
	t := New(nodes, ports)
	// Random spanning tree: attach each node to a random earlier node
	// that still has a free port (a popular hub can fill up).
	perm := rng.Perm(nodes)
	for i := 1; i < nodes; i++ {
		a := perm[i]
		b := -1
		off := rng.Intn(i)
		for k := 0; k < i; k++ {
			cand := perm[(off+k)%i]
			if t.FreePort(cand) >= 0 {
				b = cand
				break
			}
		}
		if b < 0 {
			return nil, fmt.Errorf("topology: out of ports while building spanning tree")
		}
		if err := t.Connect(a, t.FreePort(a), b, t.FreePort(b)); err != nil {
			return nil, err
		}
	}
	// Extra links to reach the target degree.
	want := nodes * avgDegree / 2
	for tries := 0; len(t.Links) < want && tries < nodes*ports*4; tries++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b || t.PortTo(a, b) >= 0 {
			continue
		}
		ap, bp := t.FreePort(a), t.FreePort(b)
		if ap < 0 || bp < 0 {
			continue
		}
		if err := t.Connect(a, ap, b, bp); err != nil {
			return nil, err
		}
	}
	// Randomized construction: audit the wiring invariants before handing
	// the topology out, so a generator bug cannot produce duplicate port
	// wiring or asymmetric tables that corrupt routing later.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.shape = Shape{Kind: "irregular", Params: []ShapeParam{{"nodes", nodes}, {"degree", avgDegree}}, Regions: 1}
	return t, nil
}
