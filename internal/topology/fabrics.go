// fabrics.go generates the datacenter-scale fabrics the large-network
// experiments run on: k-ary fat trees (folded Clos, Al-Fares numbering)
// and dragonflies (Kim et al. a/p/h parameterization). Both generators
// produce deterministic node numbering — the same parameters always
// yield the same wiring, so checkpoints, golden figures, and cross-run
// determinism checks stay byte-stable — and both attach a Shape record
// describing the build so higher layers (regional admission pre-checks,
// the daemon status report) can reason about structure without
// re-deriving it from the wiring.
package topology

import "fmt"

// ShapeParam is one named generator parameter (k, a, p, h, ...).
type ShapeParam struct {
	Name  string
	Value int
}

// Shape describes how a topology was generated. Kind is the generator
// name ("mesh", "torus", "irregular", "fattree", "dragonfly"); Params
// are its arguments in declaration order; Regions counts the locality
// domains the fabric divides into (fat-tree pods plus the core,
// dragonfly groups; 1 when the generator has no such structure).
// Shape is derived metadata: it does not affect routing or wiring and
// is deliberately excluded from configuration hashes.
type Shape struct {
	Kind    string
	Params  []ShapeParam
	Regions int

	// regionOf[n] = region of node n; nil means "all region 0".
	regionOf []int
}

// Shape returns the generator metadata. Hand-wired topologies report
// the zero Shape (Kind "").
func (t *Topology) Shape() Shape { return t.shape }

// NumRegions returns the number of locality regions (at least 1).
func (t *Topology) NumRegions() int {
	if t.shape.Regions < 1 {
		return 1
	}
	return t.shape.Regions
}

// Region returns the locality region of node n (0 when the topology has
// no region structure). Fat trees place each pod in its own region with
// the core plane in region k; dragonflies use one region per group.
func (t *Topology) Region(n int) int {
	if t.shape.regionOf == nil {
		return 0
	}
	return t.shape.regionOf[n]
}

// FatTreeNodes returns the router count of a k-ary fat tree: k pods of
// k routers plus (k/2)² core routers.
func FatTreeNodes(k int) int { return k*k + (k/2)*(k/2) }

// FatTree builds the k-ary folded-Clos fat tree (k even, ≥ 2): k pods,
// each with k/2 edge and k/2 aggregation routers, and (k/2)² core
// routers. Numbering is deterministic:
//
//	edge(p,i) = p·k + i            i ∈ [0,k/2)
//	agg(p,j)  = p·k + k/2 + j      j ∈ [0,k/2)
//	core(j,c) = k² + j·(k/2) + c   j,c ∈ [0,k/2)
//
// so pods occupy contiguous ID blocks and the core plane sits above
// them. Wiring: edge(p,i) port k/2+j ↔ agg(p,j) port i, and agg(p,j)
// port k/2+c ↔ core(j,c) port p — aggregation router j of every pod
// reaches core row j, the standard rotational striping. Edge ports
// 0..k/2-1 stay unwired: they are the host-facing ports of the real
// fat tree, which this model subsumes into the router's dedicated host
// interface. Regions: pod p is region p; the core plane is region k.
func FatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat tree needs even k >= 2, got %d", k)
	}
	half := k / 2
	t := New(FatTreeNodes(k), k)
	edge := func(p, i int) int { return p*k + i }
	agg := func(p, j int) int { return p*k + half + j }
	core := func(j, c int) int { return k*k + j*half + c }
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				if err := t.Connect(edge(p, i), half+j, agg(p, j), i); err != nil {
					return nil, err
				}
			}
		}
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				if err := t.Connect(agg(p, j), half+c, core(j, c), p); err != nil {
					return nil, err
				}
			}
		}
	}
	region := make([]int, t.Nodes)
	for p := 0; p < k; p++ {
		for r := 0; r < k; r++ {
			region[p*k+r] = p
		}
	}
	for n := k * k; n < t.Nodes; n++ {
		region[n] = k
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.shape = Shape{
		Kind:     "fattree",
		Params:   []ShapeParam{{"k", k}},
		Regions:  k + 1,
		regionOf: region,
	}
	return t, nil
}

// DragonflyNodes returns the router count of a Dragonfly(a,·,h) fabric
// built at its balanced group count g = a·h + 1.
func DragonflyNodes(a, h int) int { return (a*h + 1) * a }

// Dragonfly builds the canonical dragonfly: groups of a routers in a
// full local mesh, h global channels per router, and the balanced group
// count g = a·h + 1 so every group pair is joined by exactly one global
// link. p is the modeled host count per router; it only scales the
// offered load (each router exposes a single aggregate host interface),
// so it is validated and recorded in the Shape but does not change the
// wiring. Numbering: router r of group grp is node grp·a + r. Local
// links use ports 0..a-2 (router r reaches peer s>r on port s-1, and
// s reaches r on port r); global channel c of a group sits on router
// c/h port (a-1)+c%h, and group i's channel toward group j is channel
// j-1 for j>i (j for j<i) — the standard skip-self indexing, so the
// wiring is fully determined by (a,h). Regions: one per group.
func Dragonfly(a, p, h int) (*Topology, error) {
	if a < 2 {
		return nil, fmt.Errorf("topology: dragonfly needs a >= 2 routers per group, got %d", a)
	}
	if h < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs h >= 1 global channels, got %d", h)
	}
	if p < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs p >= 1 hosts per router, got %d", p)
	}
	g := a*h + 1
	t := New(g*a, (a-1)+h)
	node := func(grp, r int) int { return grp*a + r }
	for grp := 0; grp < g; grp++ {
		for r := 0; r < a; r++ {
			for s := r + 1; s < a; s++ {
				if err := t.Connect(node(grp, r), s-1, node(grp, s), r); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 0; i < g; i++ {
		for j := i + 1; j < g; j++ {
			// Channel j-1 of group i (peer j > i skips self) meets
			// channel i of group j (peer i < j).
			ci, cj := j-1, i
			err := t.Connect(
				node(i, ci/h), (a-1)+ci%h,
				node(j, cj/h), (a-1)+cj%h,
			)
			if err != nil {
				return nil, err
			}
		}
	}
	region := make([]int, t.Nodes)
	for n := range region {
		region[n] = n / a
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.shape = Shape{
		Kind:     "dragonfly",
		Params:   []ShapeParam{{"a", a}, {"p", p}, {"h", h}},
		Regions:  g,
		regionOf: region,
	}
	return t, nil
}
