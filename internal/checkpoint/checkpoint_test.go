package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(0xab)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.Int(-7)
	e.F64(3.14159)
	e.F64(math.Inf(-1))
	e.F64(math.Copysign(0, -1))
	e.Bool(true)
	e.Bool(false)
	e.Bytes8([]byte{1, 2, 3})
	e.String("hello, fabric")

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := d.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64 -0 bits = %v", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bool(); got {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bytes8(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes8 = %v", got)
	}
	if got := d.String(); got != "hello, fabric" {
		t.Errorf("String = %q", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // short read
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Subsequent reads must return zeros and not panic.
	if got := d.U32(); got != 0 {
		t.Errorf("U32 after error = %d", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String after error = %q", got)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload := []byte("fabric state goes here")
	data := Seal(0xfeedface, payload)
	ver, hash, got, err := Open(data)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ver != Version {
		t.Errorf("version = %d, want %d", ver, Version)
	}
	if hash != 0xfeedface {
		t.Errorf("hash = %#x", hash)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestSealAtOldVersion(t *testing.T) {
	payload := []byte("older state")
	data := SealAt(MinVersion, 42, payload)
	ver, hash, got, err := Open(data)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ver != MinVersion {
		t.Errorf("version = %d, want %d", ver, MinVersion)
	}
	if hash != 42 || string(got) != string(payload) {
		t.Errorf("hash = %d payload = %q", hash, got)
	}
	// Versions outside the decodable range are a programming error.
	for _, bad := range []uint32{MinVersion - 1, Version + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SealAt(%d) did not panic", bad)
				}
			}()
			SealAt(bad, 0, nil)
		}()
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	payload := []byte("some state")
	data := Seal(7, payload)

	// Truncated.
	if _, _, _, err := Open(data[:len(data)-3]); err == nil {
		t.Error("expected error for truncated file")
	}
	// Short header.
	if _, _, _, err := Open(data[:10]); err == nil {
		t.Error("expected error for short header")
	}
	// Flipped payload byte breaks the CRC.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	if _, _, _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("expected CRC error, got %v", err)
	}
	// Bad magic.
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("expected magic error, got %v", err)
	}
	// Unknown version.
	bad = append([]byte(nil), data...)
	bad[8] = 0xff
	if _, _, _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("expected version error, got %v", err)
	}
	// A version older than MinVersion is refused too.
	bad = append([]byte(nil), data...)
	bad[8] = byte(MinVersion - 1)
	if _, _, _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("expected version error for pre-MinVersion file, got %v", err)
	}
}

func TestWriteFileAtomicAndReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fabric.ckpt")
	payload := []byte("checkpoint one")
	if err := WriteFile(path, 99, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, ver, err := ReadFile(path, 99)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %q", got)
	}
	if ver != Version {
		t.Errorf("version = %d, want %d", ver, Version)
	}
	// Overwrite with a second checkpoint; the rename must replace it.
	if err := WriteFile(path, 99, []byte("checkpoint two")); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, _, err = ReadFile(path, 99)
	if err != nil {
		t.Fatalf("ReadFile after overwrite: %v", err)
	}
	if string(got) != "checkpoint two" {
		t.Errorf("payload = %q", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the checkpoint", len(entries))
	}
	// Hash mismatch rejected.
	if _, _, err := ReadFile(path, 100); err == nil {
		t.Error("expected configuration-hash mismatch error")
	}
}
