// Package checkpoint implements the on-disk format for fabric
// snapshots: a little-endian binary payload wrapped in a versioned,
// checksummed envelope, written atomically (temp file + rename) so a
// crash mid-write can never leave a torn checkpoint behind.
//
// The envelope carries a configuration hash so a checkpoint taken
// under one fabric geometry cannot be restored into an incompatible
// one; the hash deliberately excludes execution-strategy knobs
// (worker count, idle gating) because restores across those must be
// bit-identical.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Version is the current checkpoint format version. Bump it on any
// incompatible payload layout change. Version 4 appended a trailer with
// per-connection tenant owners, tenant admission quotas, and the
// re-promotion bookkeeping (promotion generation, promoted-connection
// counter). Version 3 switched per-connection jitter-tracker records from
// global connection numbering to per-destination slot numbering (the sparse
// tracker layout). Version 2 added best-effort flow owner IDs (and the
// network's ID counter) to the network payload.
const Version uint32 = 4

// MinVersion is the oldest format this build still decodes. Version 3
// payloads are a strict prefix of version 4 (the v4 additions are a
// trailer), so they restore with default tenant state; versions 1 and 2
// predate the sparse tracker layout, which cannot be reconstructed, and
// are refused.
const MinVersion uint32 = 3

// magic identifies a checkpoint file. 8 bytes: "MMRCKPT" + NUL.
var magic = [8]byte{'M', 'M', 'R', 'C', 'K', 'P', 'T', 0}

// Encoder appends primitive values to a growing byte buffer. All
// integers are little-endian and fixed-width so the format is
// platform-independent.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded payload size.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern, preserving NaN payloads and
// signed zeros so restores are bit-exact.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes8 appends a length-prefixed byte slice.
func (e *Encoder) Bytes8(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values back out of a payload. Errors are
// sticky: after the first short read every subsequent call returns the
// zero value, and Err reports the failure, so decode paths need only
// one error check at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("checkpoint: truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes8 reads a length-prefixed byte slice.
func (d *Decoder) Bytes8() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Envelope layout:
//
//	[0:8)   magic "MMRCKPT\0"
//	[8:12)  format version (uint32 LE)
//	[12:20) configuration hash (uint64 LE)
//	[20:28) payload length (uint64 LE)
//	[28:32) CRC32 (IEEE) of payload (uint32 LE)
//	[32:..) payload
const headerLen = 32

// Seal wraps payload in the checkpoint envelope at the current format
// version.
func Seal(configHash uint64, payload []byte) []byte {
	return SealAt(Version, configHash, payload)
}

// SealAt wraps payload in the checkpoint envelope stamped with an
// explicit format version — the compatibility tests use it to write
// files a previous release would have written. The version must be in
// the decodable range.
func SealAt(version uint32, configHash uint64, payload []byte) []byte {
	if version < MinVersion || version > Version {
		panic(fmt.Sprintf("checkpoint: SealAt version %d outside [%d,%d]", version, MinVersion, Version))
	}
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, configHash)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return out
}

// Open validates the envelope of data and returns the format version,
// configuration hash and payload. It rejects bad magic, versions outside
// [MinVersion, Version], truncated files and checksum mismatches.
func Open(data []byte) (version uint32, configHash uint64, payload []byte, err error) {
	if len(data) < headerLen {
		return 0, 0, nil, fmt.Errorf("checkpoint: file too short (%d bytes)", len(data))
	}
	var m [8]byte
	copy(m[:], data[:8])
	if m != magic {
		return 0, 0, nil, fmt.Errorf("checkpoint: bad magic %q", m[:])
	}
	ver := binary.LittleEndian.Uint32(data[8:12])
	if ver < MinVersion || ver > Version {
		return 0, 0, nil, fmt.Errorf("checkpoint: unsupported format version %d (decodable range %d..%d)", ver, MinVersion, Version)
	}
	configHash = binary.LittleEndian.Uint64(data[12:20])
	plen := binary.LittleEndian.Uint64(data[20:28])
	wantCRC := binary.LittleEndian.Uint32(data[28:32])
	if uint64(len(data)-headerLen) != plen {
		return 0, 0, nil, fmt.Errorf("checkpoint: payload length mismatch (header says %d, file has %d)", plen, len(data)-headerLen)
	}
	payload = data[headerLen:]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return 0, 0, nil, fmt.Errorf("checkpoint: CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}
	return ver, configHash, payload, nil
}

// WriteFile atomically writes a sealed checkpoint to path: the bytes
// land in a temp file in the same directory, are fsynced, and are
// renamed over path so concurrent readers see either the old or the
// new checkpoint, never a torn one.
func WriteFile(path string, configHash uint64, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	data := Seal(configHash, payload)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	return nil
}

// ReadFile reads and validates a checkpoint from path, checking the
// configuration hash against wantHash. It returns the payload and the
// format version it was written at, so decoders can apply
// older-version compatibility rules.
func ReadFile(path string, wantHash uint64) ([]byte, uint32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	ver, gotHash, payload, err := Open(data)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if gotHash != wantHash {
		return nil, 0, fmt.Errorf("checkpoint: %s was taken under a different fabric configuration (hash %016x, want %016x)", path, gotHash, wantHash)
	}
	return payload, ver, nil
}
