package sim

import "container/heap"

// Time is simulation time. The single-router engine measures it in flit
// cycles; the network engine measures it in router clock cycles. Both are
// integer ticks — the MMR is a synchronous design (§3.4), so continuous
// time buys nothing.
type Time int64

// Event is a unit of scheduled work. Fire runs when the simulation clock
// reaches the event's deadline.
type Event interface {
	Fire(t Time)
}

// EventFunc adapts an ordinary function to the Event interface.
type EventFunc func(t Time)

// Fire implements Event.
func (f EventFunc) Fire(t Time) { f(t) }

// scheduled pairs an event with its deadline and an insertion sequence
// number. The sequence number makes ordering of same-deadline events
// deterministic (FIFO), which keeps whole simulations reproducible.
type scheduled struct {
	at    Time
	seq   uint64
	event Event
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine is a discrete-event simulation loop: a clock plus a pending-event
// queue. The zero value is ready to use at time 0.
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap
	fired uint64
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules ev to fire at absolute time t. Scheduling in the past
// (t < Now) panics: it is always a model bug, and silently reordering
// events would corrupt causality.
func (e *Engine) At(t Time, ev Event) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.queue, scheduled{at: t, seq: e.seq, event: ev})
}

// After schedules ev to fire delay ticks from now.
func (e *Engine) After(delay Time, ev Event) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, ev)
}

// LastSeq returns the insertion sequence number assigned by the most
// recent At call. Checkpointing uses it to key the durable-event
// journal: re-inserting journal entries in ascending original-sequence
// order after a restore reproduces the engine's FIFO tie-breaking.
func (e *Engine) LastSeq() uint64 { return e.seq }

// SetClock forces the engine's clock and fired-event counter, for
// restoring a checkpointed simulation. It panics if events are pending:
// restore must set the clock before re-inserting journaled events so no
// pending deadline can be stranded in the past.
func (e *Engine) SetClock(t Time, fired uint64) {
	if len(e.queue) != 0 {
		panic("sim: SetClock with pending events")
	}
	e.now = t
	e.fired = fired
}

// NextAt returns the deadline of the earliest pending event. ok is false
// when the queue is empty. The activity-gated network engine uses it to
// fast-forward the clock across event-free gaps.
func (e *Engine) NextAt() (t Time, ok bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step fires the earliest pending event, advancing the clock to its
// deadline. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	s := heap.Pop(&e.queue).(scheduled)
	e.now = s.at
	e.fired++
	s.event.Fire(s.at)
	return true
}

// Run fires events until the queue drains or the clock would pass limit.
// Events scheduled exactly at limit still fire. It returns the number of
// events fired during this call.
func (e *Engine) Run(limit Time) uint64 {
	start := e.fired
	for len(e.queue) > 0 && e.queue[0].at <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.fired - start
}

// RunAll fires events until none remain.
func (e *Engine) RunAll() uint64 {
	start := e.fired
	for e.Step() {
	}
	return e.fired - start
}
