package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, EventFunc(func(Time) { order = append(order, 3) }))
	e.At(10, EventFunc(func(Time) { order = append(order, 1) }))
	e.At(20, EventFunc(func(Time) { order = append(order, 2) }))
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong firing order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, EventFunc(func(Time) { order = append(order, i) }))
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline events not FIFO: %v", order)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, EventFunc(func(Time) {}))
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, EventFunc(func(Time) {}))
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, EventFunc(func(Time) {}))
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i*10, EventFunc(func(Time) { fired++ }))
	}
	n := e.Run(50)
	if n != 5 || fired != 5 {
		t.Fatalf("Run(50) fired %d events, want 5", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50 after Run(50)", e.Now())
	}
	e.RunAll()
	if fired != 10 {
		t.Fatalf("RunAll left events unfired: %d", fired)
	}
}

func TestEngineEventsCanSchedule(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func(t Time)
	tick = func(t Time) {
		ticks = append(ticks, t)
		if t < 50 {
			e.After(10, EventFunc(tick))
		}
	}
	e.At(0, EventFunc(tick))
	e.RunAll()
	if len(ticks) != 6 {
		t.Fatalf("self-scheduling chain fired %d times, want 6 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		if at != Time(i*10) {
			t.Fatalf("tick %d fired at %d", i, at)
		}
	}
}

func TestEngineCounters(t *testing.T) {
	e := NewEngine()
	e.At(1, EventFunc(func(Time) {}))
	e.At(2, EventFunc(func(Time) {}))
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunAll()
	if e.Fired() != 2 || e.Pending() != 0 {
		t.Fatalf("Fired = %d Pending = %d after RunAll", e.Fired(), e.Pending())
	}
}

// Property: however events are inserted, they fire in nondecreasing time
// order, and same-time events fire in insertion order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(deadlines []uint8) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range deadlines {
			i, at := i, Time(d)
			e.At(at, EventFunc(func(now Time) { fired = append(fired, rec{now, i}) }))
		}
		e.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return len(fired) == len(deadlines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
