package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedIndependence(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 1000", same)
	}
}

func TestRNGReseed(t *testing.T) {
	r := NewRNG(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	const mean, draws = 4.0, 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.Exp(mean)
	}
	got := sum / draws
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("Exp mean: got %.3f, want ~%.1f", got, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	f := func(seed uint64) bool {
		r.Seed(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(17)
	p := []int{5, 6, 7, 8, 9}
	r.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Fatalf("shuffle lost elements: %v", p)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// TestStreamRNG: streams are deterministic, and distinct (seed, stream)
// pairs produce distinct sequences — including the stream-0 vs master
// collision case the derivation must avoid.
func TestStreamRNG(t *testing.T) {
	a, b := NewStreamRNG(1, 0), NewStreamRNG(1, 0)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) diverged")
		}
	}
	draw := func(r *RNG) [4]uint64 {
		var v [4]uint64
		for i := range v {
			v[i] = r.Uint64()
		}
		return v
	}
	seen := map[[4]uint64]string{}
	seen[draw(NewRNG(1))] = "master seed 1"
	for stream := uint64(0); stream < 64; stream++ {
		for _, seed := range []uint64{1, 2, 7} {
			k := draw(NewStreamRNG(seed, stream))
			if prev, dup := seen[k]; dup {
				t.Fatalf("stream (seed=%d, stream=%d) collides with %s", seed, stream, prev)
			}
			seen[k] = fmt.Sprintf("(seed=%d, stream=%d)", seed, stream)
		}
	}
}
