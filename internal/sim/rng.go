// Package sim provides the discrete-event simulation substrate used by the
// MMR router and network models: a deterministic pseudo-random number
// generator, a monotonic simulation clock, and a binary-heap event queue.
//
// The paper's evaluation (§5) was produced with a C++ discrete-event
// simulator; this package is the Go equivalent. Determinism matters for
// reproducibility, so the RNG is a self-contained PCG variant whose stream
// is stable across Go releases (unlike math/rand's unspecified sources).
package sim

import "math"

// RNG is a deterministic 64-bit pseudo-random number generator
// (xorshift128+ with a splitmix64-seeded state). It is not safe for
// concurrent use; give each simulation its own instance.
type RNG struct {
	s0, s1    uint64
	gauss     float64
	haveGauss bool
}

// NewRNG returns a generator seeded from seed via splitmix64 so that
// nearby seeds yield uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// NewStreamRNG returns the generator for one of a family of decorrelated
// streams derived from a single master seed. Stream k is seeded with
// seed + (k+1)·φ64 (the splitmix64 golden-ratio increment), then run
// through the usual splitmix64 expansion — so nearby (seed, stream) pairs
// land far apart in the seeding sequence and the streams are mutually
// uncorrelated. The parallel network simulation gives every router node
// its own stream so per-node random decisions are independent of how
// nodes are scheduled across workers.
func NewStreamRNG(seed, stream uint64) *RNG {
	return NewRNG(seed + (stream+1)*0x9e3779b97f4a7c15)
}

// Seed resets the generator state as if freshly constructed with seed.
func (r *RNG) Seed(seed uint64) {
	r.haveGauss = false
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 { // xorshift state must be nonzero
		r.s0 = 1
	}
}

// RNGState is the full serializable state of an RNG: the xorshift128+
// words plus the cached Box-Muller variate. Restoring it reproduces the
// stream bit-for-bit, including a pending second normal draw.
type RNGState struct {
	S0, S1    uint64
	Gauss     float64
	HaveGauss bool
}

// State exports the generator's complete state for checkpointing.
func (r *RNG) State() RNGState {
	return RNGState{S0: r.s0, S1: r.s1, Gauss: r.gauss, HaveGauss: r.haveGauss}
}

// Restore overwrites the generator's state with a previously exported
// snapshot.
func (r *RNG) Restore(st RNGState) {
	r.s0, r.s1 = st.S0, st.S1
	r.gauss, r.haveGauss = st.Gauss, st.HaveGauss
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method keeps the distribution
	// exactly uniform without a modulo bias.
	un := uint64(n)
	threshold := (-un) % un
	for {
		hi, lo := mul64(r.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n integers of a caller-provided slice in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exp returns an exponentially distributed value with the given mean
// (inverse-transform sampling). Used by Poisson best-effort sources.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Float64 never returns 1.0, so 1-u > 0 and Log is finite.
	return -mean * math.Log(1-u)
}

// Norm returns a standard normal variate (Box-Muller). Used for the
// multiplicative size noise of VBR frame generators.
func (r *RNG) Norm() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}
