// Package flow implements the MMR's link-level virtual-channel flow
// control: credit-based backpressure that prevents flits from ever being
// dropped (§1, §4.2). The sender holds one credit per free flit slot in
// the receiver's VCM queue for each virtual channel; transmitting a flit
// consumes a credit and draining the downstream buffer returns one. Small
// flit buffers make credit propagation fast, which is what lets the MMR
// push policing back to the source interface (§4.2).
package flow

import (
	"fmt"

	"mmr/internal/bitvec"
)

// Credits tracks the sender-side credit counters for one physical link's
// virtual channels, mirroring the free space of the downstream VCM.
type Credits struct {
	max    int
	counts []int
	avail  *bitvec.Vector // credit>0, one bit per VC (§4.1 credits_available)
}

// NewCredits returns a tracker for vcs virtual channels, each starting
// with depth credits (the downstream per-VC buffer capacity).
func NewCredits(vcs, depth int) *Credits {
	if vcs < 1 {
		panic(fmt.Sprintf("flow: invalid geometry vcs=%d depth=%d", vcs, depth))
	}
	return NewCreditsBacked(depth, make([]int, vcs))
}

// NewCreditsBacked is NewCredits with caller-provided counter storage —
// the structure-of-arrays form: a router allocates one backing array for
// all its ports and hands each tracker a len(vcs) window, so every credit
// counter the per-cycle scans touch sits in one contiguous block. counts
// is overwritten to the full depth.
func NewCreditsBacked(depth int, counts []int) *Credits {
	if len(counts) < 1 || depth < 1 {
		panic(fmt.Sprintf("flow: invalid geometry vcs=%d depth=%d", len(counts), depth))
	}
	c := &Credits{max: depth, counts: counts, avail: bitvec.New(len(counts))}
	for i := range c.counts {
		c.counts[i] = depth
	}
	c.avail.Fill()
	return c
}

// Available returns the credits held for VC vc.
func (c *Credits) Available(vc int) int { return c.counts[vc] }

// Has reports whether VC vc has at least one credit.
func (c *Credits) Has(vc int) bool { return c.counts[vc] > 0 }

// Vector returns the credits_available status bit vector (read-only).
func (c *Credits) Vector() *bitvec.Vector { return c.avail }

// Consume spends one credit of VC vc before transmitting a flit. It
// reports false — and consumes nothing — if no credit is held; sending
// anyway would overflow the downstream buffer.
func (c *Credits) Consume(vc int) bool {
	if c.counts[vc] == 0 {
		return false
	}
	c.counts[vc]--
	if c.counts[vc] == 0 {
		c.avail.Clear(vc)
	}
	return true
}

// Return gives back one credit for VC vc (the downstream node drained a
// flit). Returning beyond the buffer capacity panics: it means the
// protocol double-counted a slot.
func (c *Credits) Return(vc int) {
	if c.counts[vc] >= c.max {
		panic(fmt.Sprintf("flow: credit overflow on VC %d", vc))
	}
	c.counts[vc]++
	c.avail.Set(vc)
}

// Reset restores VC vc to the full credit count. Connection teardown
// uses it after flushing the downstream buffer: every slot is free
// again, and any credit still in flight for the VC must have been
// purged by the caller or Return will overflow later.
func (c *Credits) Reset(vc int) {
	c.counts[vc] = c.max
	c.avail.Set(vc)
}

// SetAvailable forces VC vc's credit count to n, maintaining the status
// bit vector. Checkpoint restore uses it to reinstate mid-flight credit
// balances; n outside [0, depth] panics as it could never arise from
// the protocol.
func (c *Credits) SetAvailable(vc, n int) {
	if n < 0 || n > c.max {
		panic(fmt.Sprintf("flow: restored credit count %d outside [0,%d]", n, c.max))
	}
	c.counts[vc] = n
	if n > 0 {
		c.avail.Set(vc)
	} else {
		c.avail.Clear(vc)
	}
}

// CreditPipe models the return path's latency: credits issued downstream
// become visible to the sender only after a fixed delay in cycles. The
// zero delay degenerates to immediate visibility.
type CreditPipe struct {
	delay   int64
	pending []creditEvent
}

type creditEvent struct {
	at int64
	vc int
}

// NewCreditPipe returns a pipe with the given propagation delay.
func NewCreditPipe(delay int64) *CreditPipe {
	if delay < 0 {
		delay = 0
	}
	return &CreditPipe{delay: delay}
}

// Send enqueues a credit for VC vc at time now; it becomes deliverable at
// now+delay.
func (p *CreditPipe) Send(now int64, vc int) {
	p.pending = append(p.pending, creditEvent{at: now + p.delay, vc: vc})
}

// Deliver invokes fn for every credit that has arrived by time now, in
// send order, and removes them from the pipe.
func (p *CreditPipe) Deliver(now int64, fn func(vc int)) {
	i := 0
	for ; i < len(p.pending) && p.pending[i].at <= now; i++ {
		fn(p.pending[i].vc)
	}
	if i > 0 {
		p.pending = append(p.pending[:0], p.pending[i:]...)
	}
}

// DeliverTo returns every credit that has arrived by time now directly
// into cr, in send order, and reports how many were delivered. It is the
// closure-free form of Deliver for the per-cycle hot path: the common
// no-credit case is a single comparison.
func (p *CreditPipe) DeliverTo(now int64, cr *Credits) int {
	i := 0
	for ; i < len(p.pending) && p.pending[i].at <= now; i++ {
		cr.Return(p.pending[i].vc)
	}
	if i > 0 {
		p.pending = append(p.pending[:0], p.pending[i:]...)
	}
	return i
}

// InFlight returns the credits still travelling back to the sender.
func (p *CreditPipe) InFlight() int { return len(p.pending) }
