package flow

import (
	"testing"
	"testing/quick"
)

func TestCreditsStartFull(t *testing.T) {
	c := NewCredits(4, 3)
	for vc := 0; vc < 4; vc++ {
		if c.Available(vc) != 3 || !c.Has(vc) || !c.Vector().Test(vc) {
			t.Fatalf("VC %d not initialized full", vc)
		}
	}
}

func TestConsumeReturnCycle(t *testing.T) {
	c := NewCredits(2, 2)
	if !c.Consume(0) || !c.Consume(0) {
		t.Fatal("consume with credits failed")
	}
	if c.Has(0) || c.Vector().Test(0) {
		t.Fatal("exhausted VC still advertises credits")
	}
	if c.Consume(0) {
		t.Fatal("consume with zero credits succeeded")
	}
	c.Return(0)
	if !c.Has(0) || !c.Vector().Test(0) || c.Available(0) != 1 {
		t.Fatal("returned credit not visible")
	}
}

func TestReturnOverflowPanics(t *testing.T) {
	c := NewCredits(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow did not panic")
		}
	}()
	c.Return(0)
}

func TestNewCreditsValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %v accepted", bad)
				}
			}()
			NewCredits(bad[0], bad[1])
		}()
	}
}

// Property: credits never go negative or above depth, and the bit vector
// always equals count>0.
func TestCreditsInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const vcs, depth = 4, 3
		c := NewCredits(vcs, depth)
		for _, op := range ops {
			vc := int(op) % vcs
			if op&0x80 == 0 {
				c.Consume(vc)
			} else if c.Available(vc) < depth {
				c.Return(vc)
			}
			for v := 0; v < vcs; v++ {
				n := c.Available(v)
				if n < 0 || n > depth {
					return false
				}
				if c.Vector().Test(v) != (n > 0) || c.Has(v) != (n > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCreditPipeDelay(t *testing.T) {
	p := NewCreditPipe(5)
	p.Send(10, 2)
	p.Send(11, 3)
	var got []int
	p.Deliver(14, func(vc int) { got = append(got, vc) })
	if len(got) != 0 {
		t.Fatalf("credits delivered early: %v", got)
	}
	p.Deliver(15, func(vc int) { got = append(got, vc) })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("at t=15 want [2], got %v", got)
	}
	p.Deliver(16, func(vc int) { got = append(got, vc) })
	if len(got) != 2 || got[1] != 3 {
		t.Fatalf("at t=16 want [2 3], got %v", got)
	}
	if p.InFlight() != 0 {
		t.Fatalf("in-flight = %d, want 0", p.InFlight())
	}
}

func TestCreditPipeZeroDelay(t *testing.T) {
	p := NewCreditPipe(-7) // negative clamps to immediate
	p.Send(4, 1)
	n := 0
	p.Deliver(4, func(int) { n++ })
	if n != 1 {
		t.Fatal("zero-delay credit not immediately deliverable")
	}
}

func TestCreditPipeOrder(t *testing.T) {
	p := NewCreditPipe(1)
	for vc := 0; vc < 5; vc++ {
		p.Send(0, vc)
	}
	var got []int
	p.Deliver(1, func(vc int) { got = append(got, vc) })
	for i, vc := range got {
		if vc != i {
			t.Fatalf("credits out of order: %v", got)
		}
	}
}

// Property: a sender constrained by Credits+CreditPipe never exceeds the
// receiver's buffer occupancy bound.
func TestEndToEndBackpressureProperty(t *testing.T) {
	f := func(sendPattern []bool, delay8 uint8) bool {
		const depth = 3
		delay := int64(delay8%4) + 1
		c := NewCredits(1, depth)
		pipe := NewCreditPipe(delay)
		occupancy := 0 // receiver buffer fill
		for now := int64(0); now < int64(len(sendPattern)); now++ {
			pipe.Deliver(now, func(int) { c.Return(0) })
			if sendPattern[now] && c.Consume(0) {
				occupancy++
			}
			if occupancy > depth {
				return false
			}
			// Receiver drains one flit per cycle when it has any.
			if occupancy > 0 {
				occupancy--
				pipe.Send(now, 0)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
