package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Sharded counters and gauges are emitted once
// per shard with the shard label (e.g. node="3") appended, so a scraper
// keeps the per-node dimension; histograms are emitted merged, with
// cumulative le buckets.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastHelp := ""
	emitHeader := func(name, help, typ string) {
		if name == lastHelp {
			return
		}
		lastHelp = name
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	}
	withShard := func(labels string, shard int) string {
		if s.ShardLabel == "" || s.NumShards <= 1 {
			return labels
		}
		sl := fmt.Sprintf("%s=%q", s.ShardLabel, strconv.Itoa(shard))
		if labels == "" {
			return sl
		}
		return labels + "," + sl
	}
	series := func(name, labels string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}

	for _, c := range s.Counters {
		emitHeader(c.Name, c.Help, "counter")
		if c.PerShard != nil {
			for si, v := range c.PerShard {
				fmt.Fprintf(&b, "%s %d\n", series(c.Name, withShard(c.Labels, si)), v)
			}
		} else {
			fmt.Fprintf(&b, "%s %d\n", series(c.Name, c.Labels), c.Total)
		}
	}
	for _, g := range s.Gauges {
		emitHeader(g.Name, g.Help, "gauge")
		if g.PerShard != nil {
			for si, v := range g.PerShard {
				fmt.Fprintf(&b, "%s %s\n", series(g.Name, withShard(g.Labels, si)), formatFloat(v))
			}
		} else {
			fmt.Fprintf(&b, "%s %s\n", series(g.Name, g.Labels), formatFloat(g.Total))
		}
	}
	for _, h := range s.Histograms {
		emitHeader(h.Name, h.Help, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			labels := h.Labels
			le := fmt.Sprintf("le=%q", formatFloat(bound))
			if labels != "" {
				le = labels + "," + le
			}
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", h.Name, le, cum)
		}
		inf := `le="+Inf"`
		if h.Labels != "" {
			inf = h.Labels + "," + inf
		}
		fmt.Fprintf(&b, "%s_bucket{%s} %d\n", h.Name, inf, h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.Name, braced(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, braced(h.Labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
