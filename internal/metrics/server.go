package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is the opt-in HTTP observability endpoint: it serves the last
// published snapshot as Prometheus text (/metrics) and JSON
// (/metrics.json), the last published flight-recorder dump (/flight),
// and the standard net/http/pprof profiling handlers (/debug/pprof/).
//
// The simulation loop is single-threaded and the registry's shards are
// not synchronized, so the server never touches live shards: the run
// loop calls Publish between steps with a freshly gathered snapshot, and
// HTTP handlers only ever read the published copy under a lock.
type Server struct {
	mu     sync.RWMutex
	snap   *Snapshot
	flight string

	ln  net.Listener
	srv *http.Server
}

// NewServer returns a server with no snapshot published yet.
func NewServer() *Server { return &Server{} }

// Publish replaces the served snapshot. Call it between simulation
// steps — typically every few thousand cycles and once after the run.
func (s *Server) Publish(snap *Snapshot) {
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// PublishFlight replaces the served flight-recorder dump.
func (s *Server) PublishFlight(dump string) {
	s.mu.Lock()
	s.flight = dump
	s.mu.Unlock()
}

// Handler returns the observability mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.RLock()
		snap := s.snap
		s.mu.RUnlock()
		if snap == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.RLock()
		snap := s.snap
		s.mu.RUnlock()
		if snap == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.RLock()
		dump := s.flight
		s.mu.RUnlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if dump == "" {
			fmt.Fprintln(w, "no flight-recorder dump published")
			return
		}
		fmt.Fprint(w, dump)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts listening on addr (":0" picks a free port) and serves the
// handler on a background goroutine. The bound address is available via
// Addr afterwards.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return nil
}

// Addr returns the bound listen address, or "" before Serve.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}
