// Package metrics is the repository's zero-allocation-on-the-hot-path
// observability layer: a registry of counters, gauges and fixed-bucket
// histograms whose storage is preallocated at registration time and
// addressed by integer handles, so recording a sample from inside the
// flit cycle is a slice increment — no map lookups, no interface calls,
// no allocation.
//
// The registry is sharded the same way the network datapath is (one
// shard per node, each written only by the goroutine stepping that
// node), and shards are merged in ascending shard order when a snapshot
// is taken, so — like the dpStats shards introduced with the parallel
// cycle — every reported aggregate is bit-identical for every worker
// count.
//
// Usage pattern:
//
//	reg := metrics.NewSharded("node")
//	delivered := reg.Counter("mmr_net_flits_delivered_total", "stream flits ejected")
//	delay := reg.Histogram("mmr_net_delay_cycles", "end-to-end delay", metrics.Pow2Buckets(1, 12), "class", "cbr")
//	sh := reg.NewShard() // one per node; registration is closed afterwards
//	...
//	sh.Inc(delivered)    // hot path: zero-alloc
//	sh.Observe(delay, 17)
//	snap := reg.Gather() // between steps only — not synchronized with writers
//
// Gather runs registered collector callbacks first (for gauges computed
// from live state, e.g. VC occupancy), then merges every shard. Gather
// must not race with shard writers: call it between simulation steps.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a handle to a monotonically increasing series.
type Counter int

// Gauge is a handle to a point-in-time series.
type Gauge int

// Histogram is a handle to a fixed-bucket distribution series.
type Histogram int

// series is one registered time series: a family name plus pre-rendered
// labels, so snapshot rendering never re-formats label pairs.
type series struct {
	name   string
	help   string
	labels string // pre-rendered `k="v",k2="v2"` or ""
}

type histDesc struct {
	series
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
}

// Registry holds the metric descriptors and their shards. Register every
// metric first (router/network construction time), then create shards;
// registration after the first NewShard panics, which keeps every shard
// the same shape and the hot-path indexing branch-free.
type Registry struct {
	shardLabel string // label distinguishing shards in output ("" = unsharded)
	counters   []series
	gauges     []series
	hists      []histDesc
	histBase   []int // flattened bucket offset of each histogram
	histLen    int   // total flattened bucket slots per shard
	shards     []*Shard
	collectors []func()
	snapHooks  []func(*Snapshot)
}

// New returns an unsharded registry (a single anonymous shard dimension,
// e.g. one router).
func New() *Registry { return &Registry{} }

// NewSharded returns a registry whose shards are distinguished by the
// given label name in rendered output (e.g. "node").
func NewSharded(shardLabel string) *Registry { return &Registry{shardLabel: shardLabel} }

// renderLabels turns ("k","v","k2","v2") into `k="v",k2="v2"`.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

func (r *Registry) checkOpen() {
	if len(r.shards) > 0 {
		panic("metrics: registration after NewShard")
	}
}

// Counter registers a counter series and returns its handle. Label
// key/value pairs are rendered once at registration.
func (r *Registry) Counter(name, help string, labelKV ...string) Counter {
	r.checkOpen()
	r.counters = append(r.counters, series{name: name, help: help, labels: renderLabels(labelKV)})
	return Counter(len(r.counters) - 1)
}

// Gauge registers a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labelKV ...string) Gauge {
	r.checkOpen()
	r.gauges = append(r.gauges, series{name: name, help: help, labels: renderLabels(labelKV)})
	return Gauge(len(r.gauges) - 1)
}

// Histogram registers a fixed-bucket histogram series. bounds are the
// ascending bucket upper bounds; an overflow (+Inf) bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labelKV ...string) Histogram {
	r.checkOpen()
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending")
		}
	}
	r.hists = append(r.hists, histDesc{
		series: series{name: name, help: help, labels: renderLabels(labelKV)},
		bounds: bounds,
	})
	r.histBase = append(r.histBase, r.histLen)
	r.histLen += len(bounds) + 1
	return Histogram(len(r.hists) - 1)
}

// OnGather registers a collector run at the start of every Gather, for
// gauges computed from live state (occupancy, utilization). Collectors
// run serially in registration order, so anything they compute is
// deterministic.
func (r *Registry) OnGather(f func()) { r.collectors = append(r.collectors, f) }

// OnSnapshot registers a hook run at the end of every Gather, after the
// shard merge, to append already-merged series to the snapshot.
// Ordinary registration freezes once the first shard exists (every
// shard must have the same shape for branch-free hot-path indexing), so
// families whose label sets only emerge at runtime — per-tenant
// telemetry, for instance — cannot pre-register; they maintain their
// own single-writer storage and publish through this hook instead. The
// renderers (Prometheus, JSON) iterate the snapshot generically, so
// appended series need no further plumbing. Hooks run serially in
// registration order.
func (r *Registry) OnSnapshot(f func(*Snapshot)) { r.snapHooks = append(r.snapHooks, f) }

// Pow2Buckets returns n power-of-two bounds starting at lo:
// lo, 2lo, 4lo, ... — the standard latency bucket ladder.
func Pow2Buckets(lo float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = lo * math.Pow(2, float64(i))
	}
	return b
}

// Shard is one writer's slice of every registered series. All methods
// are allocation-free; a shard must only ever be written by one
// goroutine at a time (the network gives each node its own).
type Shard struct {
	reg       *Registry
	id        int
	counters  []int64
	gauges    []float64
	histBuf   []int64 // flattened per-histogram buckets (+overflow slot each)
	histCount []int64
	histSum   []float64
}

// NewShard creates one shard sized to the registered metrics and closes
// the registry for further registration.
func (r *Registry) NewShard() *Shard {
	s := &Shard{
		reg:       r,
		id:        len(r.shards),
		counters:  make([]int64, len(r.counters)),
		gauges:    make([]float64, len(r.gauges)),
		histBuf:   make([]int64, r.histLen),
		histCount: make([]int64, len(r.hists)),
		histSum:   make([]float64, len(r.hists)),
	}
	r.shards = append(r.shards, s)
	return s
}

// NumShards returns the number of shards created so far.
func (r *Registry) NumShards() int { return len(r.shards) }

// Shard returns shard i.
func (r *Registry) Shard(i int) *Shard { return r.shards[i] }

// Inc adds one to a counter.
func (s *Shard) Inc(c Counter) { s.counters[c]++ }

// CounterValue returns the shard's current value of a counter.
func (s *Shard) CounterValue(c Counter) int64 { return s.counters[c] }

// Add adds delta to a counter.
func (s *Shard) Add(c Counter, delta int64) { s.counters[c] += delta }

// Store sets a counter to an absolute value — for counters mirrored at
// gather time from state the simulator already maintains (dpStats,
// scheduler counters), so the hot path is not charged twice for them.
func (s *Shard) Store(c Counter, v int64) { s.counters[c] = v }

// Set sets a gauge.
func (s *Shard) Set(g Gauge, v float64) { s.gauges[g] = v }

// Reset zeroes every series in the shard — the metric analogue of a
// statistics reset at a warmup boundary. Counters mirrored at gather
// time (Store) lose nothing: the next Gather rewrites them from their
// source of truth.
func (s *Shard) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
	for i := range s.gauges {
		s.gauges[i] = 0
	}
	for i := range s.histBuf {
		s.histBuf[i] = 0
	}
	for i := range s.histCount {
		s.histCount[i] = 0
		s.histSum[i] = 0
	}
}

// ExportState returns the shard's live storage slices — counters,
// gauges, flattened histogram buckets, histogram counts and sums — for
// checkpointing. Callers must copy out of them before the shard is
// written again.
func (s *Shard) ExportState() (counters []int64, gauges []float64, histBuf, histCount []int64, histSum []float64) {
	return s.counters, s.gauges, s.histBuf, s.histCount, s.histSum
}

// RestoreState copies previously exported storage into the shard. It
// returns an error on any length mismatch, which means the checkpoint
// was taken under a different metric registration set.
func (s *Shard) RestoreState(counters []int64, gauges []float64, histBuf, histCount []int64, histSum []float64) error {
	if len(counters) != len(s.counters) || len(gauges) != len(s.gauges) ||
		len(histBuf) != len(s.histBuf) || len(histCount) != len(s.histCount) ||
		len(histSum) != len(s.histSum) {
		return fmt.Errorf("metrics: restored shard shape (%d,%d,%d,%d,%d) does not match registry (%d,%d,%d,%d,%d)",
			len(counters), len(gauges), len(histBuf), len(histCount), len(histSum),
			len(s.counters), len(s.gauges), len(s.histBuf), len(s.histCount), len(s.histSum))
	}
	copy(s.counters, counters)
	copy(s.gauges, gauges)
	copy(s.histBuf, histBuf)
	copy(s.histCount, histCount)
	copy(s.histSum, histSum)
	return nil
}

// Observe records one histogram sample: a linear scan over the (small,
// fixed) bound ladder plus three increments. Zero allocations.
func (s *Shard) Observe(h Histogram, v float64) {
	bounds := s.reg.hists[h].bounds
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	s.histBuf[s.reg.histBase[h]+i]++
	s.histCount[h]++
	s.histSum[h] += v
}

// CounterSnap is one counter series in a snapshot.
type CounterSnap struct {
	Name     string  `json:"name"`
	Labels   string  `json:"labels,omitempty"`
	Help     string  `json:"help,omitempty"`
	PerShard []int64 `json:"per_shard,omitempty"`
	Total    int64   `json:"total"`
}

// GaugeSnap is one gauge series in a snapshot. Total is the sum over
// shards; per-port occupancy gauges etc. sum naturally across nodes.
type GaugeSnap struct {
	Name     string    `json:"name"`
	Labels   string    `json:"labels,omitempty"`
	Help     string    `json:"help,omitempty"`
	PerShard []float64 `json:"per_shard,omitempty"`
	Total    float64   `json:"total"`
}

// HistSnap is one histogram series, merged across shards in ascending
// shard order (counts are order-independent; sums are merged in the
// fixed order so the float result is deterministic).
type HistSnap struct {
	Name    string    `json:"name"`
	Labels  string    `json:"labels,omitempty"`
	Help    string    `json:"help,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // per-bound counts plus trailing overflow, non-cumulative
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is an immutable copy of every series, taken between steps.
type Snapshot struct {
	ShardLabel string        `json:"shard_label,omitempty"`
	NumShards  int           `json:"num_shards"`
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Gather runs the collectors and merges every shard in ascending shard
// order into a snapshot. It must not race with shard writers: call it
// between simulation steps (the HTTP server serves the last published
// snapshot, never live shards).
func (r *Registry) Gather() *Snapshot {
	for _, f := range r.collectors {
		f()
	}
	snap := &Snapshot{ShardLabel: r.shardLabel, NumShards: len(r.shards)}
	for i, d := range r.counters {
		cs := CounterSnap{Name: d.name, Labels: d.labels, Help: d.help}
		if len(r.shards) > 1 {
			cs.PerShard = make([]int64, len(r.shards))
		}
		for si, sh := range r.shards {
			v := sh.counters[i]
			if cs.PerShard != nil {
				cs.PerShard[si] = v
			}
			cs.Total += v
		}
		snap.Counters = append(snap.Counters, cs)
	}
	for i, d := range r.gauges {
		gs := GaugeSnap{Name: d.name, Labels: d.labels, Help: d.help}
		if len(r.shards) > 1 {
			gs.PerShard = make([]float64, len(r.shards))
		}
		for si, sh := range r.shards {
			v := sh.gauges[i]
			if gs.PerShard != nil {
				gs.PerShard[si] = v
			}
			gs.Total += v
		}
		snap.Gauges = append(snap.Gauges, gs)
	}
	for i, d := range r.hists {
		hs := HistSnap{
			Name: d.name, Labels: d.labels, Help: d.help,
			Bounds:  d.bounds,
			Buckets: make([]int64, len(d.bounds)+1),
		}
		base := r.histBase[i]
		for _, sh := range r.shards {
			for b := range hs.Buckets {
				hs.Buckets[b] += sh.histBuf[base+b]
			}
			hs.Count += sh.histCount[i]
			hs.Sum += sh.histSum[i]
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	for _, f := range r.snapHooks {
		f(snap)
	}
	return snap
}

// FamilyTotal sums the Total of every counter series with the given
// family name (across label variants) — the natural form for asserting
// "the /metrics page matches the stats snapshot".
func (s *Snapshot) FamilyTotal(name string) int64 {
	var t int64
	for _, c := range s.Counters {
		if c.Name == name {
			t += c.Total
		}
	}
	return t
}

// CounterTotal returns the Total of the single counter series matching
// name and rendered labels exactly ("" matches the unlabeled series).
func (s *Snapshot) CounterTotal(name, labels string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && c.Labels == labels {
			return c.Total, true
		}
	}
	return 0, false
}

// GaugeTotal returns the summed value of the gauge series matching name
// and rendered labels exactly.
func (s *Snapshot) GaugeTotal(name, labels string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && g.Labels == labels {
			return g.Total, true
		}
	}
	return 0, false
}

// FamilyNames returns the sorted distinct family names in the snapshot.
func (s *Snapshot) FamilyNames() []string {
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, c := range s.Counters {
		add(c.Name)
	}
	for _, g := range s.Gauges {
		add(g.Name)
	}
	for _, h := range s.Histograms {
		add(h.Name)
	}
	sort.Strings(names)
	return names
}
