package metrics

import (
	"fmt"
	"io"
)

// Event is one flight-recorder entry: a compact, allocation-free record
// of something notable a router did. The meaning of Code and the A/B/Aux
// operands is defined by the subsystem recording them (the network layer
// keeps its code table next to its instrumentation).
type Event struct {
	Cycle int64
	Code  uint16
	Node  int16
	A, B  int32
	Aux   int64
}

// Recorder is a fixed-size ring of recent events — the flight recorder.
// One recorder per router, written only by whichever goroutine is
// stepping that router, keeps recording single-writer and worker-count
// independent, exactly like the statistics shards. Recording overwrites
// the oldest entry once the ring is full; nothing on the record path
// allocates.
type Recorder struct {
	buf  []Event
	next int   // next write position
	n    int64 // total events ever recorded
}

// NewRecorder returns a recorder holding the most recent size events.
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{buf: make([]Event, size)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Recorder) Record(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.n++
}

// Len returns the number of events currently retained.
func (r *Recorder) Len() int {
	if r.n < int64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded (including those the
// ring has since overwritten).
func (r *Recorder) Total() int64 { return r.n }

// Events appends the retained events to dst, oldest first, and returns
// the extended slice.
func (r *Recorder) Events(dst []Event) []Event {
	k := r.Len()
	start := r.next - k
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < k; i++ {
		dst = append(dst, r.buf[(start+i)%len(r.buf)])
	}
	return dst
}

// Reset discards every retained event but keeps the total count.
func (r *Recorder) Reset() { r.next = 0; r.n = 0 }

// SetTotal forces the total-events counter without touching the
// retained ring. Checkpoint restore replays the retained events through
// Record (which resets the total to the retained count) and then
// reinstates the true lifetime total with SetTotal; ring rotation state
// is unobservable, so the rebuilt recorder behaves identically.
func (r *Recorder) SetTotal(n int64) { r.n = n }

// Dump writes the retained events oldest-first as one line each, using
// name to decode event codes (nil falls back to the numeric code).
func (r *Recorder) Dump(w io.Writer, name func(code uint16) string) {
	for _, ev := range r.Events(nil) {
		code := fmt.Sprintf("code=%d", ev.Code)
		if name != nil {
			code = name(ev.Code)
		}
		fmt.Fprintf(w, "cycle=%-10d node=%-4d %-18s a=%d b=%d aux=%d\n",
			ev.Cycle, ev.Node, code, ev.A, ev.B, ev.Aux)
	}
}
