package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestCounterGaugeShardMerge(t *testing.T) {
	reg := NewSharded("node")
	c := reg.Counter("flits_total", "flits", "port", "0")
	g := reg.Gauge("occupancy", "buffered flits")
	s0, s1 := reg.NewShard(), reg.NewShard()
	s0.Add(c, 3)
	s1.Inc(c)
	s0.Set(g, 2.5)
	s1.Set(g, 1.5)

	snap := reg.Gather()
	if got, _ := snap.CounterTotal("flits_total", `port="0"`); got != 4 {
		t.Errorf("counter total = %d, want 4", got)
	}
	if got := snap.FamilyTotal("flits_total"); got != 4 {
		t.Errorf("family total = %d, want 4", got)
	}
	if got, _ := snap.GaugeTotal("occupancy", ""); got != 4.0 {
		t.Errorf("gauge total = %v, want 4", got)
	}
	if snap.Counters[0].PerShard[1] != 1 {
		t.Errorf("per-shard counter = %d, want 1", snap.Counters[0].PerShard[1])
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := New()
	h := reg.Histogram("delay", "d", []float64{1, 2, 4})
	s := reg.NewShard()
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		s.Observe(h, v)
	}
	snap := reg.Gather()
	hs := snap.Histograms[0]
	// le=1: 0.5, 1 → 2; le=2: 1.5 → 1; le=4: 3 → 1; overflow: 100 → 1.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hs.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (%v)", i, hs.Buckets[i], w, hs.Buckets)
		}
	}
	if hs.Count != 5 || hs.Sum != 106 {
		t.Errorf("count=%d sum=%v, want 5, 106", hs.Count, hs.Sum)
	}
}

// TestHotPathZeroAlloc locks the package's core guarantee: recording on
// a shard allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewSharded("node")
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", Pow2Buckets(1, 10))
	s := reg.NewShard()
	rec := NewRecorder(64)
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(c)
		s.Add(c, 2)
		s.Set(g, 1.0)
		s.Observe(h, 17)
		rec.Record(Event{Cycle: 1, Code: 2, Node: 3, A: 4, B: 5})
	})
	if allocs != 0 {
		t.Errorf("hot path allocates %.2f/op, want 0", allocs)
	}
}

// TestGatherDeterministic: merging shards in ascending order makes the
// float sums bit-identical run to run regardless of how the values were
// produced in parallel (here: same values, repeated gathers).
func TestGatherDeterministic(t *testing.T) {
	reg := NewSharded("node")
	h := reg.Histogram("h", "", []float64{1, 10, 100})
	shards := []*Shard{reg.NewShard(), reg.NewShard(), reg.NewShard()}
	vals := []float64{0.1, 3.7, 55.5, 1e-3, 99.9}
	for i, s := range shards {
		for _, v := range vals {
			s.Observe(h, v*float64(i+1))
		}
	}
	a, b := reg.Gather(), reg.Gather()
	if a.Histograms[0].Sum != b.Histograms[0].Sum {
		t.Errorf("gather sum not stable: %v vs %v", a.Histograms[0].Sum, b.Histograms[0].Sum)
	}
}

func TestRegistrationAfterShardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering after NewShard")
		}
	}()
	reg := New()
	reg.NewShard()
	reg.Counter("late", "")
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 7; i++ {
		r.Record(Event{Cycle: int64(i)})
	}
	evs := r.Events(nil)
	if len(evs) != 4 || r.Total() != 7 {
		t.Fatalf("len=%d total=%d, want 4, 7", len(evs), r.Total())
	}
	for i, ev := range evs {
		if ev.Cycle != int64(3+i) {
			t.Errorf("event %d cycle = %d, want %d (oldest-first)", i, ev.Cycle, 3+i)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	reg := NewSharded("node")
	c := reg.Counter("mmr_test_total", "help text", "port", "2")
	h := reg.Histogram("mmr_delay", "", []float64{1, 2})
	s0, s1 := reg.NewShard(), reg.NewShard()
	s0.Add(c, 5)
	s1.Add(c, 7)
	s0.Observe(h, 1.5)

	var b strings.Builder
	if err := reg.Gather().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mmr_test_total counter",
		`mmr_test_total{port="2",node="0"} 5`,
		`mmr_test_total{port="2",node="1"} 7`,
		`mmr_delay_bucket{le="1"} 0`,
		`mmr_delay_bucket{le="2"} 1`,
		`mmr_delay_bucket{le="+Inf"} 1`,
		"mmr_delay_sum 1.5",
		"mmr_delay_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := New()
	c := reg.Counter("mmr_x_total", "")
	reg.NewShard().Add(c, 9)

	srv := NewServer()
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Publish(reg.Gather())
	srv.PublishFlight("cycle=1 node=0 test a=0 b=0 aux=0\n")

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "mmr_x_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"mmr_x_total"`) {
		t.Errorf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/flight"); !strings.Contains(out, "cycle=1") {
		t.Errorf("/flight missing dump:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
