package router

import (
	"strings"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/traffic"
)

func TestMetricsQuantiles(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	// Two contending full-rate connections on one output: delays spread
	// between 1 and a few cycles.
	r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 600 * traffic.Mbps, In: 0, Out: 3})
	r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 600 * traffic.Mbps, In: 1, Out: 3})
	m := r.Run(2_000, 20_000)
	if m.DelayP50 <= 0 || m.DelayP99 < m.DelayP50 {
		t.Fatalf("quantiles disordered: p50=%v p99=%v", m.DelayP50, m.DelayP99)
	}
	if m.DelayP99 > m.Delay.Max()+1 {
		t.Fatalf("p99 %.1f above max %.0f", m.DelayP99, m.Delay.Max())
	}
	if m.JitterP99 < 0 {
		t.Fatalf("jitter p99 negative: %v", m.JitterP99)
	}
}

func TestMetricsPerClassCounters(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: 0, Out: 1})
	r.Establish(traffic.ConnSpec{Class: flit.ClassVBR, Rate: 20 * traffic.Mbps, PeakRate: 60 * traffic.Mbps, In: 1, Out: 2})
	r.AddBestEffortFlow(2, 3, 0.02)
	r.AddControlFlow(3, 0, 0.01)
	m := r.Run(1_000, 30_000)
	if m.PerClassDelivered[flit.ClassCBR] == 0 ||
		m.PerClassDelivered[flit.ClassVBR] == 0 ||
		m.PerClassDelivered[flit.ClassBestEffort] == 0 ||
		m.PerClassDelivered[flit.ClassControl] == 0 {
		t.Fatalf("some class delivered nothing: %v", m.PerClassDelivered)
	}
	if m.FlitsDelivered != m.PerClassDelivered[flit.ClassCBR]+m.PerClassDelivered[flit.ClassVBR] {
		t.Fatal("FlitsDelivered must count stream classes only")
	}
	if !strings.Contains(m.String(), "delivered") {
		t.Fatal("metrics string malformed")
	}
}

func TestMetricsWarmupDiscard(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: 0, Out: 1})
	m := r.Run(10_000, 1_000)
	// Measurement window only: ~80 flits at 100 Mbps over 1000 cycles,
	// not the ~880 of the whole run.
	want := cfg.Link.FlitsPerCycle(100*traffic.Mbps) * 1000
	if float64(m.FlitsDelivered) > want*1.2 {
		t.Fatalf("warmup leaked into measurement: %d flits, want ~%.0f", m.FlitsDelivered, want)
	}
	if m.Cycles != 1_000 {
		t.Fatalf("measured cycles = %d", m.Cycles)
	}
}
