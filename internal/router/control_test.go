package router

import (
	"math"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/traffic"
)

func TestSetBandwidthChangesRate(t *testing.T) {
	cfg := smallConfig()
	cfg.Admission = AdmitAllocation
	r, _ := New(cfg)
	conn, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps, In: 0, Out: 1})
	if err != nil {
		t.Fatal(err)
	}
	oldAlloc := r.Memory(0).State(conn.VC).Allocated
	r.Run(0, 5000)

	if err := r.SetBandwidth(conn, 120*traffic.Mbps); err != nil {
		t.Fatal(err)
	}
	r.Step() // propagate the control word
	r.Step()
	m := r.Run(0, 20000) // fresh measurement window at the new rate
	// After the command applies, delivery runs at ~120 Mbps.
	want := cfg.Link.FlitsPerCycle(120*traffic.Mbps) * 20000
	if math.Abs(float64(m.FlitsDelivered)-want) > want*0.05 {
		t.Fatalf("delivered %d flits after rate change, want ~%.0f", m.FlitsDelivered, want)
	}
	st := r.Memory(0).State(conn.VC)
	if st.Allocated <= oldAlloc {
		t.Fatal("allocation not grown")
	}
	if conn.Spec.Rate != 120*traffic.Mbps {
		t.Fatal("spec rate not updated")
	}
}

func TestSetBandwidthShrinkReleases(t *testing.T) {
	cfg := smallConfig()
	cfg.Admission = AdmitAllocation
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps, In: 0, Out: 1})
	before := r.Allocator(1).Guaranteed()
	if err := r.SetBandwidth(conn, 10*traffic.Mbps); err != nil {
		t.Fatal(err)
	}
	if r.Allocator(1).Guaranteed() >= before {
		t.Fatal("shrink did not release bandwidth")
	}
	if r.Allocator(1).Connections() != 1 {
		t.Fatal("connection count corrupted by adjustment")
	}
}

func TestSetBandwidthAdmissionRefusal(t *testing.T) {
	cfg := smallConfig()
	cfg.Admission = AdmitAllocation
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: 0, Out: 1})
	// Fill the rest of the output link.
	for {
		if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 200 * traffic.Mbps, In: 1, Out: 1}); err != nil {
			break
		}
	}
	if err := r.SetBandwidth(conn, 1.2*traffic.Gbps); err == nil {
		t.Fatal("growth beyond link capacity accepted")
	}
	if conn.Spec.Rate != 100*traffic.Mbps {
		t.Fatal("refused growth mutated the connection")
	}
}

func TestSetBandwidthRateMode(t *testing.T) {
	cfg := smallConfig() // AdmitRate by default
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: 0, Out: 1})
	if err := r.SetBandwidth(conn, 1.3*traffic.Gbps); err == nil {
		t.Fatal("rate-mode growth beyond link bandwidth accepted")
	}
	if err := r.SetBandwidth(conn, 500*traffic.Mbps); err != nil {
		t.Fatal(err)
	}
}

func TestSetBandwidthErrors(t *testing.T) {
	r, _ := New(smallConfig())
	conn, _ := r.Establish(traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 10 * traffic.Mbps, PeakRate: 30 * traffic.Mbps, In: 0, Out: 1,
	})
	if err := r.SetBandwidth(conn, 20*traffic.Mbps); err == nil {
		t.Fatal("SetBandwidth on VBR accepted")
	}
	cbr, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps, In: 0, Out: 2})
	if err := r.SetBandwidth(cbr, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestSetPriority(t *testing.T) {
	r, _ := New(smallConfig())
	conn, _ := r.Establish(traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 10 * traffic.Mbps, PeakRate: 30 * traffic.Mbps,
		In: 0, Out: 1, Priority: 1,
	})
	if err := r.SetPriority(conn, 5); err != nil {
		t.Fatal(err)
	}
	r.Step() // propagate
	r.Step()
	if got := r.Memory(0).State(conn.VC).BasePriority; got != 5 {
		t.Fatalf("priority = %d, want 5", got)
	}
	cbr, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps, In: 0, Out: 2})
	if err := r.SetPriority(cbr, 3); err == nil {
		t.Fatal("SetPriority on CBR accepted")
	}
}

func TestAbortFrame(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassVBR, Rate: 20 * traffic.Mbps, PeakRate: 60 * traffic.Mbps, In: 0, Out: 1})
	// Build a backlog by injecting directly.
	for i := 0; i < 20; i++ {
		conn.niQueue.Push(&flit.Flit{Conn: conn.ID, Class: flit.ClassVBR})
	}
	r.Step() // some flits enter the VC
	dropped := r.AbortFrame(conn)
	if dropped == 0 {
		t.Fatal("nothing dropped")
	}
	if conn.niQueue.Len() != 0 || r.Memory(0).Len(conn.VC) != 0 {
		t.Fatal("abort left flits queued")
	}
	m := r.Run(0, 1)
	if m.FramesAborted != 1 || m.FlitsDropped != int64(dropped) {
		t.Fatalf("abort accounting wrong: %d/%d", m.FramesAborted, m.FlitsDropped)
	}
}

func TestControlWordPropagationDelay(t *testing.T) {
	r, _ := New(smallConfig())
	conn, _ := r.Establish(traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 10 * traffic.Mbps, PeakRate: 30 * traffic.Mbps, In: 0, Out: 1,
	})
	if err := r.SetPriority(conn, 9); err != nil {
		t.Fatal(err)
	}
	// The command has not applied within the same cycle.
	if r.Memory(0).State(conn.VC).BasePriority == 9 {
		t.Fatal("control word applied instantaneously")
	}
	r.Step()
	r.Step()
	if r.Memory(0).State(conn.VC).BasePriority != 9 {
		t.Fatal("control word never applied")
	}
}

func TestReleaseFreesEverything(t *testing.T) {
	cfg := smallConfig()
	cfg.Admission = AdmitAllocation
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: 0, Out: 1})
	r.Run(0, 5000)
	// Retry until in-flight credits land (at most a couple of cycles).
	var err error
	for i := 0; i < 5; i++ {
		if err = r.Release(conn); err == nil {
			break
		}
		r.Step()
	}
	if err != nil {
		t.Fatal(err)
	}
	if r.Allocator(1).Guaranteed() != 0 || r.Allocator(1).Connections() != 0 {
		t.Fatal("bandwidth not released")
	}
	if r.Memory(0).State(conn.VC).InUse {
		t.Fatal("VC not released")
	}
	if err := r.Release(conn); err == nil {
		t.Fatal("double release accepted")
	}
	// The freed capacity admits a new full-rate connection.
	if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 1.2 * traffic.Gbps, In: 0, Out: 1}); err != nil {
		t.Fatalf("reuse after release failed: %v", err)
	}
}

func TestReleaseVBRAndRateMode(t *testing.T) {
	cfg := smallConfig() // AdmitRate
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 200 * traffic.Mbps, PeakRate: 600 * traffic.Mbps, In: 0, Out: 1,
	})
	r.Run(0, 1000)
	for i := 0; i < 5; i++ {
		if err := r.Release(conn); err == nil {
			break
		}
		r.Step()
	}
	// The whole link is admittable again in rate mode.
	if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 1.2 * traffic.Gbps, In: 0, Out: 1}); err != nil {
		t.Fatalf("rate-mode release incomplete: %v", err)
	}
}

func TestPendingControlOnReleasedConnIgnored(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 10 * traffic.Mbps, PeakRate: 30 * traffic.Mbps, In: 0, Out: 1,
	})
	if err := r.SetPriority(conn, 9); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(conn); err != nil {
		t.Fatal(err)
	}
	// Reuse the VC for a new connection; the stale control word must not
	// touch it.
	c2, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps, In: 0, Out: 2})
	r.Step()
	r.Step()
	if c2.VC == conn.VC && r.Memory(0).State(c2.VC).BasePriority == 9 {
		t.Fatal("stale control word applied to a reused VC")
	}
}
