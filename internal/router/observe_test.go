package router

import (
	"strings"
	"testing"
)

// TestRouterMetricsMatchMeasurement: the gathered registry mirrors the
// measurement snapshot exactly, and the hot-path delay histograms cover
// the same measurement window as the transmitted counters.
func TestRouterMetricsMatchMeasurement(t *testing.T) {
	cfg := PaperConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EstablishWorkload(mustWorkload(t, cfg, 0.5, 7)); err != nil {
		t.Fatal(err)
	}
	r.EnableMetrics() // before Run, so the histograms observe the window
	m := r.Run(2000, 4000)
	snap := r.GatherMetrics()

	if got := snap.FamilyTotal("mmr_router_flits_transmitted_total"); got != totalTransmitted(m) {
		t.Errorf("transmitted = %d, metrics snapshot says %d", totalTransmitted(m), got)
	}
	if got := snap.FamilyTotal("mmr_router_flits_generated_total"); got != m.FlitsGenerated {
		t.Errorf("generated = %d, want %d", got, m.FlitsGenerated)
	}
	if v, ok := snap.GaugeTotal("mmr_router_cycles", ""); !ok || v != float64(m.Cycles) {
		t.Errorf("cycles gauge = %v, want %d", v, m.Cycles)
	}
	if v, ok := snap.GaugeTotal("mmr_router_switch_utilization", ""); !ok || v != m.SwitchUtilization {
		t.Errorf("utilization gauge = %v, want %v", v, m.SwitchUtilization)
	}

	// Delay histograms reset with the measurement window, so their count
	// equals the delivered stream flits and their sum the delay total.
	var count int64
	var sum float64
	for _, h := range snap.Histograms {
		if h.Name == "mmr_router_delay_cycles" && !strings.Contains(h.Labels, "best-effort") && !strings.Contains(h.Labels, "control") {
			count += h.Count
			sum += h.Sum
		}
	}
	if count != m.FlitsDelivered {
		t.Errorf("delay histogram count %d != FlitsDelivered %d", count, m.FlitsDelivered)
	}
	if want := m.Delay.Sum(); sum < want-0.5 || sum > want+0.5 {
		t.Errorf("delay histogram sum %.1f != delay total %.1f", sum, want)
	}
	if snap.FamilyTotal("mmr_router_sched_nominated_total") == 0 {
		t.Error("scheduler nominated nothing on a loaded router")
	}
}

// TestStepZeroAllocWithMetricsEnabled: enabling the registry must not
// cost the hot path its zero-alloc property — the recordDeparture
// histogram observes are bounded bucket scans into preallocated arrays.
func TestStepZeroAllocWithMetricsEnabled(t *testing.T) {
	cfg := PaperConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EstablishWorkload(mustWorkload(t, cfg, 0.8, 5)); err != nil {
		t.Fatal(err)
	}
	r.EnableMetrics()
	r.Run(5_000, 0)
	allocs := testing.AllocsPerRun(500, func() { r.Step() })
	if allocs != 0 {
		t.Errorf("Router.Step with metrics enabled allocates %.2f times per cycle, want 0", allocs)
	}
}

func totalTransmitted(m *Metrics) int64 {
	var t int64
	for _, v := range m.PerClassDelivered {
		t += v
	}
	return t
}
