package router

import (
	"testing"
	"testing/quick"

	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/traffic"
)

// TestRouterFuzzInvariants drives a small router with random interleaved
// operations — establish, step bursts, best-effort flows, bandwidth
// changes, frame aborts — and checks global invariants after every
// operation: flit conservation, bounded buffer occupancy, credit sanity
// and consistent VC bookkeeping. Any panic (flow-control violation,
// double release, conflicting matching) fails the property.
func TestRouterFuzzInvariants(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		cfg := smallConfig()
		cfg.Seed = seed
		r, err := New(cfg)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed ^ 0xabcdef)
		var conns []*Connection
		dropped := int64(0)
		for _, op := range ops {
			switch op % 8 {
			case 0, 1: // establish a CBR connection
				spec := traffic.ConnSpec{
					Class: flit.ClassCBR,
					Rate:  traffic.PaperRates[rng.Intn(len(traffic.PaperRates))],
					In:    rng.Intn(cfg.Ports),
					Out:   rng.Intn(cfg.Ports),
				}
				if c, err := r.Establish(spec); err == nil {
					conns = append(conns, c)
				}
			case 2: // establish a VBR connection
				rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
				spec := traffic.ConnSpec{
					Class: flit.ClassVBR, Rate: rate,
					PeakRate: traffic.Rate(2 * float64(rate)),
					In:       rng.Intn(cfg.Ports),
					Out:      rng.Intn(cfg.Ports),
					Priority: rng.Intn(4),
				}
				if c, err := r.Establish(spec); err == nil {
					conns = append(conns, c)
				}
			case 3: // attach a best-effort flow
				r.AddBestEffortFlow(rng.Intn(cfg.Ports), rng.Intn(cfg.Ports), 0.005)
			case 4: // dynamic bandwidth change
				if len(conns) > 0 {
					c := conns[rng.Intn(len(conns))]
					if c.Spec.Class == flit.ClassCBR {
						r.SetBandwidth(c, traffic.PaperRates[rng.Intn(len(traffic.PaperRates))])
					} else {
						r.SetPriority(c, rng.Intn(8))
					}
				}
			case 5: // abort a frame
				if len(conns) > 0 {
					dropped += int64(r.AbortFrame(conns[rng.Intn(len(conns))]))
				}
			default: // run a burst of cycles
				for i := 0; i < int(op%256); i++ {
					r.Step()
				}
			}
			// Invariants after every operation: every flit or packet ever
			// created is delivered, buffered, queued at an interface, or
			// was explicitly dropped by AbortFrame.
			var buffered, queued int64
			for p := 0; p < cfg.Ports; p++ {
				mem := r.Memory(p)
				occ := mem.Occupied()
				if occ < 0 || occ > cfg.VCM.VirtualChannels*cfg.VCM.Depth {
					return false
				}
				buffered += int64(occ)
			}
			for _, c := range r.Connections() {
				queued += int64(c.niQueue.Len())
			}
			for _, pf := range r.beFlows {
				queued += int64(pf.niQueue.Len())
			}
			for _, pf := range r.ctlFlows {
				queued += int64(pf.niQueue.Len())
			}
			gen := r.m.generated
			for _, n := range r.m.pktGenerated {
				gen += n
			}
			var del int64
			for _, n := range r.m.perClass {
				del += n
			}
			if gen != del+buffered+queued+dropped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterDeterminism: identical seeds must give identical results —
// the reproducibility guarantee every experiment relies on.
func TestRouterDeterminism(t *testing.T) {
	run := func() *Metrics {
		cfg := smallConfig()
		cfg.Seed = 99
		r, _ := New(cfg)
		wl, _ := traffic.Generate(traffic.WorkloadConfig{
			Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
			TargetLoad: 0.7, MaxPortLoad: 1,
		}, sim.NewRNG(7))
		r.EstablishWorkload(wl)
		r.AddBestEffortFlow(0, 2, 0.01)
		return r.Run(2_000, 10_000)
	}
	a, b := run(), run()
	if a.FlitsDelivered != b.FlitsDelivered ||
		a.Delay.Mean() != b.Delay.Mean() ||
		a.Jitter.Mean() != b.Jitter.Mean() ||
		a.PerClassDelivered != b.PerClassDelivered {
		t.Fatalf("same seed, different results:\n%v\n%v", a, b)
	}
}

// TestRouterSeedSensitivity: different seeds must actually change the
// stochastic parts (guards against a pinned RNG).
func TestRouterSeedSensitivity(t *testing.T) {
	run := func(seed uint64) float64 {
		cfg := smallConfig()
		cfg.Seed = seed
		r, _ := New(cfg)
		wl, _ := traffic.Generate(traffic.WorkloadConfig{
			Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
			TargetLoad: 0.8, MaxPortLoad: 1,
		}, sim.NewRNG(seed))
		r.EstablishWorkload(wl)
		return r.Run(2_000, 10_000).Delay.Mean()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical delay — RNG not wired through")
	}
}
