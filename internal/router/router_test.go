package router

import (
	"math"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// smallConfig returns a 4-port router with few VCs for fast tests.
func smallConfig() Config {
	c := PaperConfig()
	c.Ports = 4
	c.VCM = vcm.Config{VirtualChannels: 64, Depth: 4, Banks: 4, PhitsPerFlit: 8, PhitBufferDepth: 8}
	c.K = 2
	c.MaxCandidates = 4
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ports = 1 },
		func(c *Config) { c.Link.Bandwidth = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.MaxCandidates = 0 },
		func(c *Config) { c.Concurrency = 0.5 },
	}
	for i, mutate := range bad {
		c := smallConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(PaperConfig()); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
}

func TestArbiterKindString(t *testing.T) {
	if ArbPriority.String() != "priority" || ArbAutonet.String() != "autonet" || ArbPerfect.String() != "perfect" {
		t.Fatal("arbiter kind strings wrong")
	}
}

func TestEstablishReservesResources(t *testing.T) {
	cfg := smallConfig()
	cfg.Admission = AdmitAllocation
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps, In: 1, Out: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Memory(1).State(conn.VC)
	if !st.InUse || st.Class != flit.ClassCBR || st.Output != 2 {
		t.Fatalf("VC state wrong: %+v", st)
	}
	// 120 Mbps on a 1.24 Gbps link with a 32-cycle round: ceil(120/1240×32)=4.
	if want := r.cfg.Link.CyclesPerRound(120*traffic.Mbps, r.cfg.RoundLen()); st.Allocated != want {
		t.Fatalf("allocation = %d, want %d", st.Allocated, want)
	}
	if r.Allocator(2).Guaranteed() != st.Allocated || r.Allocator(2).Connections() != 1 {
		t.Fatal("output allocator not charged")
	}
	// The biased scheme's aging interval is the guaranteed service
	// interval: roundLen / allocation.
	if want := float64(r.cfg.RoundLen()) / float64(st.Allocated); st.InterArrival != want {
		t.Fatalf("service interval = %v, want %v", st.InterArrival, want)
	}
}

func TestEstablishErrors(t *testing.T) {
	r, _ := New(smallConfig())
	if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps, In: -1, Out: 0}); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassBestEffort, Rate: traffic.Mbps, In: 0, Out: 1}); err == nil {
		t.Fatal("non-stream class accepted")
	}
	// Overload one output link beyond capacity.
	for i := 0; ; i++ {
		_, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 300 * traffic.Mbps, In: i % 4, Out: 3})
		if err != nil {
			if i < 4 {
				t.Fatalf("admission refused too early (%d conns): %v", i, err)
			}
			break
		}
		if i > 100 {
			t.Fatal("admission never refused")
		}
	}
}

func TestEstablishVBR(t *testing.T) {
	cfg := smallConfig()
	cfg.Admission = AdmitAllocation
	r, _ := New(cfg)
	conn, err := r.Establish(traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 20 * traffic.Mbps, PeakRate: 60 * traffic.Mbps,
		In: 0, Out: 1, Priority: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Memory(0).State(conn.VC)
	if st.Peak <= st.Allocated {
		t.Fatalf("VBR peak (%d) must exceed permanent (%d)", st.Peak, st.Allocated)
	}
	if st.BasePriority != 3 {
		t.Fatal("priority not installed")
	}
	if r.Allocator(1).PeakTotal() != st.Peak {
		t.Fatal("peak register not charged")
	}
}

func TestSingleConnectionDelivery(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps, In: 0, Out: 1}); err != nil {
		t.Fatal(err)
	}
	m := r.Run(1000, 10000)
	// 120 Mbps ≈ 0.0968 flits/cycle → ~968 flits in 10k cycles.
	want := cfg.Link.FlitsPerCycle(120*traffic.Mbps) * 10000
	if math.Abs(float64(m.FlitsDelivered)-want) > 3 {
		t.Fatalf("delivered %d flits, want ~%.0f", m.FlitsDelivered, want)
	}
	// Uncontended: every flit leaves one cycle after reaching the head.
	if m.Delay.Mean() != 1 || m.Delay.Max() != 1 {
		t.Fatalf("uncontended delay = %v (max %v), want exactly 1", m.Delay.Mean(), m.Delay.Max())
	}
	if m.Jitter.Mean() != 0 {
		t.Fatalf("uncontended jitter = %v, want 0", m.Jitter.Mean())
	}
}

func TestContendedOutputSharesBandwidth(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	// Two 300 Mbps connections from different inputs to the same output:
	// combined <1.24 Gbps, so both must receive full throughput.
	for in := 0; in < 2; in++ {
		if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 300 * traffic.Mbps, In: in, Out: 3}); err != nil {
			t.Fatal(err)
		}
	}
	m := r.Run(2000, 20000)
	want := 2 * cfg.Link.FlitsPerCycle(300*traffic.Mbps) * 20000
	if math.Abs(float64(m.FlitsDelivered)-want) > 10 {
		t.Fatalf("delivered %d, want ~%.0f", m.FlitsDelivered, want)
	}
	if m.Delay.Mean() > 3 {
		t.Fatalf("light contention delay = %v, want small", m.Delay.Mean())
	}
}

func TestFlitConservation(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	for in := 0; in < 4; in++ {
		for k := 0; k < 3; k++ {
			r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: in, Out: (in + k) % 4})
		}
	}
	m := r.Run(0, 30000)
	buffered := int64(0)
	for p := 0; p < 4; p++ {
		buffered += int64(r.Memory(p).Occupied())
	}
	queued := int64(0)
	for _, c := range r.Connections() {
		queued += int64(c.niQueue.Len())
	}
	if m.FlitsGenerated != m.FlitsDelivered+buffered+queued {
		t.Fatalf("conservation violated: gen=%d del=%d buf=%d queued=%d",
			m.FlitsGenerated, m.FlitsDelivered, buffered, queued)
	}
}

func TestRoundBandwidthEnforcement(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	conn, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps, In: 0, Out: 1})
	// Pre-load the VC far beyond its allocation by injecting a burst
	// directly into the NI queue.
	for i := 0; i < 200; i++ {
		conn.niQueue.Push(&flit.Flit{Conn: conn.ID, Class: flit.ClassCBR, Seq: int64(i)})
	}
	alloc := r.Memory(0).State(conn.VC).Allocated
	roundLen := int64(r.cfg.RoundLen())
	delivered := make(map[int64]int64) // per round
	for r.Now() < 10*roundLen {
		before := r.m.perClass[flit.ClassCBR]
		r.Step()
		if d := r.m.perClass[flit.ClassCBR] - before; d > 0 {
			delivered[(r.Now()-1)/roundLen] += d
		}
	}
	for round, n := range delivered {
		if n > int64(alloc) {
			t.Fatalf("round %d delivered %d flits, allocation %d", round, n, alloc)
		}
	}
	if len(delivered) < 5 {
		t.Fatal("backlogged connection made no steady progress")
	}
}

func TestPerfectSwitchIsLowerBound(t *testing.T) {
	base := smallConfig()
	load := 0.8
	run := func(kind ArbiterKind) *Metrics {
		cfg := base
		cfg.Arbiter = kind
		r, _ := New(cfg)
		w := mustWorkload(t, cfg, load, 7)
		if _, err := r.EstablishWorkload(w); err != nil {
			t.Fatal(err)
		}
		return r.Run(5000, 30000)
	}
	perfect := run(ArbPerfect)
	priority := run(ArbPriority)
	if perfect.Delay.Mean() > priority.Delay.Mean()+1e-9 {
		t.Fatalf("perfect delay %.3f > priority %.3f", perfect.Delay.Mean(), priority.Delay.Mean())
	}
}

func TestBiasedBeatsFixedUnderLoad(t *testing.T) {
	base := smallConfig()
	load := 0.85
	run := func(scheme sched.PriorityScheme) *Metrics {
		cfg := base
		cfg.Scheme = scheme
		cfg.MaxCandidates = 2
		r, _ := New(cfg)
		w := mustWorkload(t, cfg, load, 11)
		if _, err := r.EstablishWorkload(w); err != nil {
			t.Fatal(err)
		}
		return r.Run(10000, 60000)
	}
	biased := run(sched.Biased{})
	fixed := run(sched.Fixed{})
	// §5.2 shape: end-to-end, the biased scheme serves the workload with
	// less latency and far less jitter than static priorities. TotalDelay
	// (creation→departure) is the survivorship-proof comparison — fixed
	// priorities starve some connections, whose waiting would otherwise
	// hide in source queues.
	if biased.TotalDelay.Mean() >= fixed.TotalDelay.Mean() {
		t.Fatalf("§5.2 shape violated: biased total delay %.3f >= fixed %.3f",
			biased.TotalDelay.Mean(), fixed.TotalDelay.Mean())
	}
	if biased.ConnMeanJitter.Mean() >= fixed.ConnMeanJitter.Mean() {
		t.Fatalf("§5.2 shape violated: biased per-connection jitter %.3f >= fixed %.3f",
			biased.ConnMeanJitter.Mean(), fixed.ConnMeanJitter.Mean())
	}
}

func mustWorkload(t *testing.T, cfg Config, load float64, seed uint64) *traffic.Workload {
	t.Helper()
	wcfg := traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: load, MaxPortLoad: 1,
	}
	w, err := traffic.Generate(wcfg, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestUtilizationTracksOfferedLoad(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	w := mustWorkload(t, cfg, 0.6, 3)
	if _, err := r.EstablishWorkload(w); err != nil {
		t.Fatal(err)
	}
	m := r.Run(5000, 40000)
	if math.Abs(m.SwitchUtilization-w.OfferedLoad) > 0.05 {
		t.Fatalf("utilization %.3f vs offered %.3f", m.SwitchUtilization, w.OfferedLoad)
	}
}

func TestControlFastPath(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	if err := r.AddControlFlow(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	m := r.Run(0, 20000)
	if m.PacketsGenerated[flit.ClassControl] == 0 {
		t.Fatal("no control packets generated")
	}
	// With an otherwise idle router nearly every control packet cuts
	// through; only same-cycle arrivals behind another cut-through buffer.
	delivered := m.PerClassDelivered[flit.ClassControl]
	if float64(m.ControlFastPath) < 0.9*float64(delivered) {
		t.Fatalf("fast path %d of %d control packets on an idle router", m.ControlFastPath, delivered)
	}
	if m.ControlLatency.Mean() > 0.5 {
		t.Fatalf("idle-router control latency = %v, want ~0 (cut-through)", m.ControlLatency.Mean())
	}
}

func TestBestEffortDeliveryAndVCRelease(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	if err := r.AddBestEffortFlow(2, 3, 0.05); err != nil {
		t.Fatal(err)
	}
	m := r.Run(0, 20000)
	if m.PerClassDelivered[flit.ClassBestEffort] == 0 {
		t.Fatal("no best-effort packets delivered")
	}
	// All packet VCs must have been released (1-flit packets, idle router).
	if free := r.Memory(2).FreeVCs(); free != cfg.VCM.VirtualChannels {
		t.Fatalf("VCs leaked: %d free of %d", free, cfg.VCM.VirtualChannels)
	}
	if m.BestEffortLatency.Mean() < 1 {
		t.Fatal("buffered best-effort packets cannot be delivered in zero cycles")
	}
}

func TestBestEffortYieldsToStreams(t *testing.T) {
	cfg := smallConfig()
	r, _ := New(cfg)
	// Saturate output 1 with a CBR stream at full link rate from input 0,
	// plus best-effort from input 1 to the same output.
	if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 1.2 * traffic.Gbps, In: 0, Out: 1}); err != nil {
		t.Fatal(err)
	}
	r.AddBestEffortFlow(1, 1, 0.1)
	m := r.Run(2000, 20000)
	// The stream keeps nearly full throughput despite best-effort pressure.
	want := cfg.Link.FlitsPerCycle(1.2*traffic.Gbps) * 20000
	if float64(m.PerClassDelivered[flit.ClassCBR]) < want*0.97 {
		t.Fatalf("CBR delivered %d, want ≥ %.0f (97%% of demand)", m.PerClassDelivered[flit.ClassCBR], want*0.97)
	}
}

func TestAddFlowErrors(t *testing.T) {
	r, _ := New(smallConfig())
	if err := r.AddBestEffortFlow(-1, 0, 0.1); err == nil {
		t.Fatal("bad BE port accepted")
	}
	if err := r.AddControlFlow(0, 99, 0.1); err == nil {
		t.Fatal("bad control port accepted")
	}
}

func TestEstablishWorkload(t *testing.T) {
	cfg := PaperConfig()
	r, _ := New(cfg)
	w := mustWorkload(t, cfg, 0.5, 21)
	n, err := r.EstablishWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(w.Conns) || len(r.Connections()) != n {
		t.Fatalf("established %d of %d", n, len(w.Conns))
	}
}

func TestFixedPriorityAssignments(t *testing.T) {
	// By rate (default): faster connection gets strictly higher priority.
	cfg := smallConfig()
	cfg.Scheme = sched.Fixed{}
	r, _ := New(cfg)
	slow, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps, In: 0, Out: 1})
	fast, _ := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps, In: 0, Out: 2})
	if r.Memory(0).State(fast.VC).BasePriority <= r.Memory(0).State(slow.VC).BasePriority {
		t.Fatal("by-rate priorities not ordered by rate")
	}

	// By index: earlier connection wins regardless of rate.
	cfg.FixedAssign = PriorityByIndex
	r2, _ := New(cfg)
	c0, _ := r2.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps, In: 0, Out: 1})
	c1, _ := r2.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps, In: 0, Out: 2})
	if r2.Memory(0).State(c0.VC).BasePriority <= r2.Memory(0).State(c1.VC).BasePriority {
		t.Fatal("by-index priorities not descending")
	}

	// From spec: the workload's priority field is used untouched.
	cfg.FixedAssign = PriorityFromSpec
	r3, _ := New(cfg)
	c, _ := r3.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps, In: 0, Out: 1, Priority: 42})
	if r3.Memory(0).State(c.VC).BasePriority != 42 {
		t.Fatal("from-spec priority not preserved")
	}
	// Under the biased scheme the spec priority is also preserved.
	cfg.Scheme = sched.Biased{}
	r4, _ := New(cfg)
	cb, _ := r4.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps, In: 0, Out: 1, Priority: 7})
	if r4.Memory(0).State(cb.VC).BasePriority != 7 {
		t.Fatal("biased scheme must not rewrite spec priority")
	}
}

func TestMetricsString(t *testing.T) {
	r, _ := New(smallConfig())
	r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps, In: 0, Out: 1})
	m := r.Run(100, 1000)
	if s := m.String(); s == "" {
		t.Fatal("empty metrics string")
	}
}
