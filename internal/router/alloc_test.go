package router

import (
	"testing"

	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/traffic"
)

// steadyRouter builds the paper's 8×8 router carrying a mixed workload —
// streams at the given load plus control and best-effort packet flows —
// and runs it to steady state so every scratch buffer, ring and free list
// has reached its high-water mark.
func steadyRouter(t testing.TB, load float64, warmup int64) *Router {
	t.Helper()
	cfg := PaperConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := traffic.Generate(traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: load, MaxPortLoad: 1,
	}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EstablishWorkload(wl); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < cfg.Ports; p++ {
		if err := r.AddControlFlow(p, (p+1)%cfg.Ports, 0.01); err != nil {
			t.Fatal(err)
		}
		if err := r.AddBestEffortFlow(p, (p+3)%cfg.Ports, 0.02); err != nil {
			t.Fatal(err)
		}
	}
	r.Run(warmup, 0)
	return r
}

// TestStepZeroAllocSteadyState is the allocation-regression gate: one
// steady-state flit cycle of the paper configuration must not allocate.
// Any change that reintroduces a per-cycle allocation — a closure that
// escapes, a map rebuilt per call, a flit constructed instead of pooled —
// fails here long before it shows up in a profile.
func TestStepZeroAllocSteadyState(t *testing.T) {
	r := steadyRouter(t, 0.8, 5_000)
	allocs := testing.AllocsPerRun(500, func() { r.Step() })
	if allocs != 0 {
		t.Errorf("Router.Step allocates %.2f times per cycle at steady state, want 0", allocs)
	}
}

// TestPoolRecycleBalance runs a long mixed workload and then audits the
// flit pool: every live flit must be reachable from exactly one place (an
// NI queue or a VCM slot — no aliasing from a double-recycle), the
// get/put ledger must equal the live count, and draining everything must
// return the pool to balance. `make check` runs this under -race, so a
// pool shared across goroutines by mistake would be caught here too.
func TestPoolRecycleBalance(t *testing.T) {
	r := steadyRouter(t, 0.9, 0)
	cycles := int64(30_000)
	if testing.Short() {
		cycles = 5_000
	}
	r.Run(0, cycles)

	pool := r.Pool()
	seen := make(map[*flit.Flit]string)
	note := func(f *flit.Flit, where string) {
		if prev, dup := seen[f]; dup {
			t.Fatalf("flit %p reachable twice: %s and %s (recycled while live?)", f, prev, where)
		}
		seen[f] = where
	}
	// Drain destructively: NI queues first, then every VC of every port.
	for _, c := range r.Connections() {
		for c.niQueue.Len() > 0 {
			note(c.niQueue.Pop(), "conn NI queue")
		}
	}
	for _, pf := range r.ctlFlows {
		for pf.niQueue.Len() > 0 {
			note(pf.niQueue.Pop(), "control NI queue")
		}
	}
	for _, pf := range r.beFlows {
		for pf.niQueue.Len() > 0 {
			note(pf.niQueue.Pop(), "best-effort NI queue")
		}
	}
	for p := 0; p < r.cfg.Ports; p++ {
		mem := r.mems[p]
		for vc := 0; vc < mem.NumVCs(); vc++ {
			for mem.Len(vc) > 0 {
				note(mem.Pop(vc), "VCM")
			}
		}
	}
	if got, want := int64(len(seen)), pool.Live(); got != want {
		t.Fatalf("pool ledger out of balance: %d live flits reachable, pool says %d (gets=%d puts=%d)",
			got, want, pool.Gets(), pool.Puts())
	}
	// Retiring everything must zero the ledger — no flit leaked, none
	// double-counted.
	for f := range seen {
		pool.Put(f)
	}
	if pool.Live() != 0 {
		t.Fatalf("pool.Live() = %d after draining everything, want 0", pool.Live())
	}
	if pool.LivePackets() != 0 {
		t.Fatalf("pool.LivePackets() = %d after draining everything, want 0", pool.LivePackets())
	}
}

// TestRecycledFlitNotRetained locks the ownership rule that departure is
// the sink: after a flit leaves the switch, no router structure may still
// reference it. A departed flit is reissued by the pool with new contents,
// so retention would silently corrupt whatever held on.
func TestRecycledFlitNotRetained(t *testing.T) {
	r := steadyRouter(t, 0.8, 2_000)
	pool := r.Pool()
	before := pool.Puts()
	r.Run(0, 1_000)
	if pool.Puts() == before {
		t.Fatal("no flit departed during the measurement window")
	}
	// The pool's free list only holds retired flits; a retired flit still
	// queued anywhere would surface as aliasing in TestPoolRecycleBalance.
	// Here we check the cheap global invariant instead: everything issued
	// is either still queued or parked on the free list.
	queued := int64(0)
	for _, c := range r.Connections() {
		queued += int64(c.niQueue.Len())
	}
	for _, pf := range r.ctlFlows {
		queued += int64(pf.niQueue.Len())
	}
	for _, pf := range r.beFlows {
		queued += int64(pf.niQueue.Len())
	}
	for p := 0; p < r.cfg.Ports; p++ {
		queued += int64(r.mems[p].Occupied())
	}
	if pool.Live() != queued {
		t.Fatalf("pool.Live() = %d but %d flits are queued: a departed flit is retained or leaked",
			pool.Live(), queued)
	}
}
