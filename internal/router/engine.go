package router

import (
	"mmr/internal/crossbar"
	"mmr/internal/flit"
	"mmr/internal/sched"
)

// Step advances the router by one flit cycle (§3.4): credits return,
// sources inject, link schedulers nominate candidates, the switch
// scheduler arbitrates, winning flits traverse the crossbar and the
// output links, and per-round bandwidth accounting rolls over at round
// boundaries. Arbitration for cycle t+1 conceptually overlaps the
// transmission of cycle t in hardware; the software model runs them in
// sequence inside one tick, which preserves the observable timing.
func (r *Router) Step() {
	t := r.now

	// Round boundary: reset per-round service counters (§4.1).
	if t%int64(r.cfg.RoundLen()) == 0 {
		for _, ls := range r.links {
			ls.OnRoundBoundary()
		}
	}

	// Credit return: sinks drained earlier flits.
	for p := range r.pipes {
		r.pipes[p].DeliverTo(t, r.credits[p])
	}

	// In-band management commands whose propagation delay elapsed (§4.3).
	r.applyControls(t)

	// Link scheduling: each input port nominates candidates (§4.3) based
	// on the state at the end of the previous cycle — in hardware,
	// arbitration for cycle t overlaps transmission of cycle t-1.
	for p := 0; p < r.cfg.Ports; p++ {
		r.cands[p] = r.links[p].Candidates(t, r.cands[p][:0])
	}
	// Outputs claimed by an asynchronous control cut-through last cycle
	// are busy during this cycle's arbitration (§3.4).
	r.maskAsyncOutputs()

	// Switch scheduling (§4.4).
	r.arbiter.Schedule(r.cands, r.grants)

	// Transmission: winners cross the switch and leave on output links.
	r.transmit(t)

	// The asynchronous transmissions that blocked this cycle are done.
	for o := range r.outputBusyAsync {
		r.outputBusyAsync[o] = false
	}

	// Injection: sources generate flits into NI queues; NI queues drain
	// into input VCs while buffer space remains (source-side flow
	// control, §4.2). Flits arriving now become schedulable next cycle.
	r.injectStreams(t)
	r.injectPackets(t)

	r.now++
}

// maskAsyncOutputs removes candidates whose output is busy with an
// asynchronous control transmission.
func (r *Router) maskAsyncOutputs() {
	anyBusy := false
	for _, b := range r.outputBusyAsync {
		if b {
			anyBusy = true
			break
		}
	}
	if !anyBusy {
		return
	}
	for p := range r.cands {
		kept := r.cands[p][:0]
		for _, c := range r.cands[p] {
			if !r.outputBusyAsync[c.Output] {
				kept = append(kept, c)
			}
		}
		r.cands[p] = kept
	}
}

// injectStreams ticks every connection source and moves flits from NI
// queues into input virtual channels.
func (r *Router) injectStreams(t int64) {
	for _, c := range r.conns {
		if c.src != nil {
			for n := c.src.Tick(t); n > 0; n-- {
				f := r.pool.Get()
				f.Conn = c.ID
				f.Class = c.Spec.Class
				f.Type = flit.TypeBody
				f.Seq = c.nextSeq
				f.CreatedAt = t
				f.SrcPort = int16(c.Spec.In)
				f.DstPort = int16(c.Spec.Out)
				c.nextSeq++
				c.niQueue.Push(f)
				r.m.generated++
			}
		}
		// Drain the NI queue into the VC while there is room.
		mem := r.mems[c.Spec.In]
		for c.niQueue.Len() > 0 && mem.Free(c.VC) > 0 {
			f := c.niQueue.Pop()
			f.ReadyAt = t // VCM entry
			if mem.Len(c.VC) == 0 {
				// Straight to the head: ready to transmit through the
				// switch — §5's delay reference point.
				f.HeadAt = t
			}
			mem.Push(c.VC, f)
			c.injected++
		}
	}
}

// transmit pops granted flits, moves them through the crossbar model,
// records statistics and returns credits into the pipes.
func (r *Router) transmit(t int64) {
	if !r.arbiter.OutputSharing() {
		// Configure the multiplexed crossbar for this flit cycle; the
		// reconfiguration clock cycle is hidden inside the flit cycle
		// (§3.3-3.4).
		if r.xcfg == nil {
			r.xcfg = make([]int, r.cfg.Ports)
		}
		for in := range r.xcfg {
			r.xcfg[in] = crossbar.Unconnected
			if g := r.grants[in]; g != sched.NoGrant {
				r.xcfg[in] = r.cands[in][g].Output
			}
		}
		if err := r.xbar.Configure(r.xcfg); err != nil {
			panic("router: arbiter produced conflicting matching: " + err.Error())
		}
	}
	for in := 0; in < r.cfg.Ports; in++ {
		g := r.grants[in]
		if g == sched.NoGrant {
			continue
		}
		cand := r.cands[in][g]
		mem := r.mems[in]
		f := mem.Pop(cand.VC)
		if f == nil {
			panic("router: granted VC has no flit")
		}
		if !r.arbiter.OutputSharing() {
			r.xbar.Transmit(in)
		}
		st := mem.State(cand.VC)
		st.Serviced++
		// Sink-side credit: consume on transmit, returned next cycle.
		if r.credits[in].Consume(cand.VC) {
			r.pipes[in].Send(t, cand.VC)
		}
		// The next flit (if any) reaches the head of the VC now.
		if next := mem.Peek(cand.VC); next != nil {
			next.HeadAt = t
		}
		r.m.recordDeparture(t, f, cand)
		if f.Class == flit.ClassControl || f.Class == flit.ClassBestEffort {
			r.finishPacketFlit(in, cand.VC, f)
		} else {
			// Departure is the single-router sink: the flit is fully
			// accounted (metrics copy what they need) and returns to the
			// pool for the next injection.
			r.pool.Put(f)
		}
	}
	r.m.cycleDone(r.cfg.Ports)
}

// Run executes warmup cycles, resets measurement state, then executes
// measure cycles and returns the collected metrics. The paper runs "until
// steady state was reached and statistics gathered over approximately
// 100,000 router cycles" (§5).
func (r *Router) Run(warmup, measure int64) *Metrics {
	for i := int64(0); i < warmup; i++ {
		r.Step()
	}
	r.m.reset()
	for i := int64(0); i < measure; i++ {
		r.Step()
	}
	return r.m.snapshot(r)
}
