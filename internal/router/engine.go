package router

import (
	"mmr/internal/crossbar"
	"mmr/internal/flit"
	"mmr/internal/sched"
	"mmr/internal/traffic"
)

// idleForecastHorizon bounds how far ahead a source forecast looks. A
// forecast returning the horizon means "nothing before then; re-forecast
// there", so the constant only trades forecast loop length against
// wake-up frequency for very-low-rate sources; it never affects results.
const idleForecastHorizon = 4096

// Step advances the router by one flit cycle (§3.4): credits return,
// sources inject, link schedulers nominate candidates, the switch
// scheduler arbitrates, winning flits traverse the crossbar and the
// output links, and per-round bandwidth accounting rolls over at round
// boundaries. Arbitration for cycle t+1 conceptually overlaps the
// transmission of cycle t in hardware; the software model runs them in
// sequence inside one tick, which preserves the observable timing.
func (r *Router) Step() {
	t := r.now

	// Round boundary: reset per-round service counters (§4.1). Lazy —
	// the reset fires on the first cycle actually stepped in each round,
	// so idle cycles elided by Run catch up here. Equivalent to the eager
	// modulo check because per-round counters are frozen and unread while
	// the router is idle and the reset is idempotent across any number of
	// skipped boundaries.
	if round := t / int64(r.cfg.RoundLen()); r.lastRound != round {
		r.lastRound = round
		for _, ls := range r.links {
			ls.OnRoundBoundary()
		}
	}

	// Credit return: sinks drained earlier flits.
	for p := range r.pipes {
		r.pipes[p].DeliverTo(t, r.credits[p])
	}

	// In-band management commands whose propagation delay elapsed (§4.3).
	r.applyControls(t)

	// Link scheduling: each input port nominates candidates (§4.3) based
	// on the state at the end of the previous cycle — in hardware,
	// arbitration for cycle t overlaps transmission of cycle t-1. Ports
	// with zero buffered flits are skipped: Candidates on an empty memory
	// is provably a pure no-op (see sched.LinkScheduler.Active).
	skipIdle := !r.cfg.NoIdleSkip
	for p := 0; p < r.cfg.Ports; p++ {
		if skipIdle && !r.links[p].Active() {
			r.cands[p] = r.cands[p][:0]
			continue
		}
		r.cands[p] = r.links[p].Candidates(t, r.cands[p][:0])
	}
	// Outputs claimed by an asynchronous control cut-through last cycle
	// are busy during this cycle's arbitration (§3.4).
	r.maskAsyncOutputs()

	// Switch scheduling (§4.4).
	r.arbiter.Schedule(r.cands, r.grants)

	// Transmission: winners cross the switch and leave on output links.
	r.transmit(t)

	// The asynchronous transmissions that blocked this cycle are done.
	for o := range r.outputBusyAsync {
		r.outputBusyAsync[o] = false
	}

	// Injection: sources generate flits into NI queues; NI queues drain
	// into input VCs while buffer space remains (source-side flow
	// control, §4.2). Flits arriving now become schedulable next cycle.
	r.injectStreams(t)
	r.injectPackets(t)

	r.now++
}

// maskAsyncOutputs removes candidates whose output is busy with an
// asynchronous control transmission.
func (r *Router) maskAsyncOutputs() {
	anyBusy := false
	for _, b := range r.outputBusyAsync {
		if b {
			anyBusy = true
			break
		}
	}
	if !anyBusy {
		return
	}
	for p := range r.cands {
		kept := r.cands[p][:0]
		for _, c := range r.cands[p] {
			if !r.outputBusyAsync[c.Output] {
				kept = append(kept, c)
			}
		}
		r.cands[p] = kept
	}
}

// injectStreams ticks every connection source and moves flits from NI
// queues into input virtual channels.
//
// Gating contract: sources are stateful and must see every cycle, but Run
// elides cycles where the whole router is provably idle. The catch-up
// loop replays the elided cycles — no-ops by construction, since the
// forecast (c.nextDue) promised no arrivals and gap ticks draw no RNG —
// then ticks the live cycle. The forecast is recomputed only once it
// expires, after the ticks, so it always describes the source's actual
// per-cycle state.
func (r *Router) injectStreams(t int64) {
	for _, c := range r.conns {
		if c.src != nil {
			for ct := c.lastTick + 1; ct <= t; ct++ {
				for n := c.src.Tick(ct); n > 0; n-- {
					f := r.pool.Get()
					f.Conn = c.ID
					f.Class = c.Spec.Class
					f.Type = flit.TypeBody
					f.Seq = c.nextSeq
					f.CreatedAt = ct
					f.SrcPort = int16(c.Spec.In)
					f.DstPort = int16(c.Spec.Out)
					c.nextSeq++
					c.niQueue.Push(f)
					r.m.generated++
				}
			}
			c.lastTick = t
			if !r.cfg.NoIdleSkip && c.nextDue <= t {
				c.nextDue = traffic.ForecastSource(c.src, t, t+idleForecastHorizon)
			}
		}
		// Drain the NI queue into the VC while there is room.
		mem := r.mems[c.Spec.In]
		for c.niQueue.Len() > 0 && mem.Free(c.VC) > 0 {
			f := c.niQueue.Pop()
			f.ReadyAt = t // VCM entry
			if mem.Len(c.VC) == 0 {
				// Straight to the head: ready to transmit through the
				// switch — §5's delay reference point.
				f.HeadAt = t
			}
			mem.Push(c.VC, f)
			c.injected++
		}
	}
}

// transmit pops granted flits, moves them through the crossbar model,
// records statistics and returns credits into the pipes.
func (r *Router) transmit(t int64) {
	if !r.arbiter.OutputSharing() {
		// Configure the multiplexed crossbar for this flit cycle; the
		// reconfiguration clock cycle is hidden inside the flit cycle
		// (§3.3-3.4).
		if r.xcfg == nil {
			r.xcfg = make([]int, r.cfg.Ports)
		}
		for in := range r.xcfg {
			r.xcfg[in] = crossbar.Unconnected
			if g := r.grants[in]; g != sched.NoGrant {
				r.xcfg[in] = r.cands[in][g].Output
			}
		}
		if err := r.xbar.Configure(r.xcfg); err != nil {
			panic("router: arbiter produced conflicting matching: " + err.Error())
		}
	}
	for in := 0; in < r.cfg.Ports; in++ {
		g := r.grants[in]
		if g == sched.NoGrant {
			continue
		}
		cand := r.cands[in][g]
		mem := r.mems[in]
		f := mem.Pop(cand.VC)
		if f == nil {
			panic("router: granted VC has no flit")
		}
		if !r.arbiter.OutputSharing() {
			r.xbar.Transmit(in)
		}
		mem.IncServiced(cand.VC)
		// Sink-side credit: consume on transmit, returned next cycle.
		if r.credits[in].Consume(cand.VC) {
			r.pipes[in].Send(t, cand.VC)
		}
		// The next flit (if any) reaches the head of the VC now.
		if next := mem.Peek(cand.VC); next != nil {
			next.HeadAt = t
		}
		r.m.recordDeparture(t, f, cand)
		if f.Class == flit.ClassControl || f.Class == flit.ClassBestEffort {
			r.finishPacketFlit(in, cand.VC, f)
		} else {
			// Departure is the single-router sink: the flit is fully
			// accounted (metrics copy what they need) and returns to the
			// pool for the next injection.
			r.pool.Put(f)
		}
	}
	r.m.cycleDone(r.cfg.Ports)
}

// Run executes warmup cycles, resets measurement state, then executes
// measure cycles and returns the collected metrics. The paper runs "until
// steady state was reached and statistics gathered over approximately
// 100,000 router cycles" (§5).
func (r *Router) Run(warmup, measure int64) *Metrics {
	r.runCycles(warmup)
	r.m.reset()
	r.runCycles(measure)
	return r.m.snapshot(r)
}

// runCycles advances the router the given number of cycles, eliding
// stretches where the router is provably idle: the clock jumps straight
// to the earliest due traffic source, with skipped cycles credited to the
// cycle counter so utilization and rate figures are identical to stepping
// through them. Step itself always advances exactly one cycle.
func (r *Router) runCycles(cycles int64) {
	limit := r.now + cycles
	for r.now < limit {
		if !r.cfg.NoIdleSkip && r.idle(r.now) {
			next := r.nextWake(r.now, limit)
			r.m.cycles += next - r.now
			r.now = next
			continue
		}
		r.Step()
	}
}

// idle reports whether cycle t can do anything at all: any buffered flit,
// queued NI backlog, credit in flight, pending control word or
// asynchronous cut-through makes the router active, as does any traffic
// source whose forecast says it is due. Everything here is a pure read,
// so the check cannot perturb the simulation.
func (r *Router) idle(t int64) bool {
	if r.occ > 0 {
		return false
	}
	for _, p := range r.pipes {
		if p.InFlight() > 0 {
			return false
		}
	}
	if len(r.pendingCtl) > 0 {
		return false
	}
	for _, b := range r.outputBusyAsync {
		if b {
			return false
		}
	}
	for _, c := range r.conns {
		if c.released || c.src == nil {
			continue
		}
		if c.niQueue.Len() > 0 || c.nextDue <= t {
			return false
		}
	}
	for _, pf := range r.ctlFlows {
		// A queued packet retries VC allocation (an RNG draw) every cycle,
		// so a non-empty NI queue forces activity.
		if pf.niQueue.Len() > 0 || pf.nextDue <= t {
			return false
		}
	}
	for _, pf := range r.beFlows {
		if pf.niQueue.Len() > 0 || pf.nextDue <= t {
			return false
		}
	}
	return true
}

// nextWake returns the earliest cycle in (t, limit] at which a traffic
// source comes due. Called only when idle(t) holds, so sources are the
// only possible wake-up.
func (r *Router) nextWake(t, limit int64) int64 {
	next := limit
	for _, c := range r.conns {
		if !c.released && c.src != nil && c.nextDue < next {
			next = c.nextDue
		}
	}
	for _, pf := range r.ctlFlows {
		if pf.nextDue < next {
			next = pf.nextDue
		}
	}
	for _, pf := range r.beFlows {
		if pf.nextDue < next {
			next = pf.nextDue
		}
	}
	if next <= t {
		next = t + 1
	}
	return next
}
