package router

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// packetFlow is a generator of VCT packets between one input/output port
// pair — control messages or best-effort traffic coexisting with the
// streams (§3.4).
type packetFlow struct {
	kind    flit.PacketKind
	in, out int
	src     traffic.Source
	niQueue flit.Ring // packets waiting for a free VC or fast path

	// Activity gating: last cycle the source was ticked, and the forecast
	// cycle of its next arrival (see pumpPacketFlow).
	lastTick int64
	nextDue  int64
}

// AddBestEffortFlow attaches a Poisson best-effort packet flow producing
// packetsPerCycle single-flit packets on average from input in to output
// out.
func (r *Router) AddBestEffortFlow(in, out int, packetsPerCycle float64) error {
	if err := r.checkPorts(in, out); err != nil {
		return err
	}
	r.beFlows = append(r.beFlows, &packetFlow{
		kind: flit.PacketBestEffort,
		in:   in, out: out,
		src:      traffic.NewBestEffortSource(r.rng, packetsPerCycle),
		lastTick: r.now - 1, nextDue: r.now,
	})
	return nil
}

// AddControlFlow attaches a Poisson control-message flow (probes,
// acknowledgments, management commands) between the given ports.
func (r *Router) AddControlFlow(in, out int, packetsPerCycle float64) error {
	if err := r.checkPorts(in, out); err != nil {
		return err
	}
	r.ctlFlows = append(r.ctlFlows, &packetFlow{
		kind: flit.PacketControl,
		in:   in, out: out,
		src:      traffic.NewBestEffortSource(r.rng, packetsPerCycle),
		lastTick: r.now - 1, nextDue: r.now,
	})
	return nil
}

func (r *Router) checkPorts(in, out int) error {
	if in < 0 || in >= r.cfg.Ports || out < 0 || out >= r.cfg.Ports {
		return fmt.Errorf("router: ports (%d,%d) out of range", in, out)
	}
	return nil
}

// injectPackets generates VCT packets and routes them per §3.4:
//
//   - Control packets are forwarded immediately — bypassing flit-cycle
//     synchronization — when the requested output link is idle; the output
//     is then busy during the next flit cycle's arbitration.
//   - Otherwise (and always, for best-effort packets) a free virtual
//     channel is reserved and the packet is buffered, to be scheduled
//     synchronously with the data streams; control packets buffer at
//     higher precedence than streams, best-effort below them.
//   - With no free VC the packet blocks in the NI queue (at a previous
//     router in the real network).
func (r *Router) injectPackets(t int64) {
	for _, pf := range r.ctlFlows {
		r.pumpPacketFlow(t, pf)
	}
	for _, pf := range r.beFlows {
		r.pumpPacketFlow(t, pf)
	}
}

func (r *Router) pumpPacketFlow(t int64, pf *packetFlow) {
	// Catch-up ticking under the same gating contract as injectStreams;
	// Poisson gap ticks are total no-ops, so the replay loop is cheap.
	for ct := pf.lastTick + 1; ct <= t; ct++ {
		for n := pf.src.Tick(ct); n > 0; n-- {
			r.pktSeq++
			class := flit.ClassBestEffort
			if pf.kind == flit.PacketControl {
				class = flit.ClassControl
			}
			f := r.pool.Get()
			f.Conn = flit.InvalidConn
			f.Class = class
			f.Type = flit.TypeHead
			f.Seq = r.pktSeq
			f.CreatedAt = ct
			f.SrcPort = int16(pf.in)
			f.DstPort = int16(pf.out)
			pk := r.pool.GetPacket()
			pk.ID = r.pktSeq
			pk.Kind = pf.kind
			pk.Size = 1
			pk.CreatedAt = ct
			f.Packet = pk
			pf.niQueue.Push(f)
			r.m.pktGenerated[class]++
		}
	}
	pf.lastTick = t
	if !r.cfg.NoIdleSkip && pf.nextDue <= t {
		pf.nextDue = traffic.ForecastSource(pf.src, t, t+idleForecastHorizon)
	}
	// Drain the NI queue in order, stopping at the first packet that does
	// not fit: all packets of a flow need the same resource (a free VC on
	// the input port), so scanning past a failure cannot succeed and
	// would make a backlogged flow cost O(queue) per cycle.
	for pf.niQueue.Len() > 0 && r.placePacket(t, pf) {
	}
}

// placePacket attempts delivery or buffering of the flow's head packet,
// popping it from the NI queue and reporting success.
func (r *Router) placePacket(t int64, pf *packetFlow) bool {
	f := pf.niQueue.Peek()
	// Control fast path (§3.4): if the requested switch input port and
	// output link are both free this flit cycle (and the output is not
	// already claimed by another cut-through), the packet is forwarded
	// immediately without flit-cycle synchronization; the output is then
	// busy during the next cycle's arbitration.
	if pf.kind == flit.PacketControl && !r.outputBusyAsync[pf.out] && r.portsIdleThisCycle(pf.in, pf.out) {
		r.outputBusyAsync[pf.out] = true
		r.m.recordPacketDelivery(t, f, true)
		pf.niQueue.Pop()
		r.pool.Put(f) // delivered: the cut-through leaves the router now
		return true
	}
	// Buffered path: reserve a free VC on the input port.
	mem := r.mems[pf.in]
	vc := mem.FindFree(r.rng.Intn(mem.NumVCs()))
	if vc < 0 {
		return false // blocked: no free VC (§3.4)
	}
	class := flit.ClassBestEffort
	if pf.kind == flit.PacketControl {
		class = flit.ClassControl
	}
	mem.Reserve(vc, vcm.VCState{
		Conn:   flit.InvalidConn,
		Class:  class,
		Output: pf.out,
	})
	f.ReadyAt = t
	f.HeadAt = t
	pf.niQueue.Pop()
	mem.Push(vc, f)
	return true
}

// portsIdleThisCycle reports whether input in and output out both carried
// no flit during the current flit cycle. For the perfect switch (no
// crossbar state) the fast path is always available.
func (r *Router) portsIdleThisCycle(in, out int) bool {
	if r.arbiter.OutputSharing() {
		return true
	}
	return r.xbar.InputFor(out) < 0 && r.xbar.OutputFor(in) < 0
}

// finishPacketFlit releases the packet's virtual channel once its last
// flit has left (§3.4: "When a control or a best-effort packet is
// completely transmitted, the corresponding virtual channel is released").
func (r *Router) finishPacketFlit(in, vc int, f *flit.Flit) {
	mem := r.mems[in]
	if mem.Len(vc) == 0 {
		mem.Release(vc)
	}
	r.m.recordPacketDelivery(r.now, f, false)
	r.pool.Put(f) // retires the packet payload too
}
