package router

import (
	"fmt"
	"strings"

	"mmr/internal/flit"
	"mmr/internal/metrics"
	"mmr/internal/sched"
	"mmr/internal/stats"
)

// measurement is the router's live statistics state. It is reset at the
// warmup/measurement boundary so steady-state numbers exclude the
// transient (§5).
type measurement struct {
	cycles      int64
	generated   int64
	transmitted int64

	tracker *stats.JitterTracker // stream delay/jitter per §5 definitions

	totalDelay stats.Accumulator // creation→departure, incl. NI queueing
	vcmDelay   stats.Accumulator // VCM entry→departure

	delayHist  *stats.Histogram // head-delay distribution (cycles)
	jitterHist *stats.Histogram // jitter distribution (cycles)
	lastDelay  []float64        // per conn, for jitter histogram samples
	lastSeen   []bool

	perClass     [flit.NumClasses]int64
	pktGenerated [flit.NumClasses]int64
	pktLatency   [flit.NumClasses]stats.Accumulator
	ctlFastPath  int64

	controlWords  int64 // in-band management commands applied (§4.3)
	framesAborted int64
	flitsDropped  int64

	// Observability hooks (observe.go): the router's metric shard and
	// the per-class histogram handles recordDeparture feeds. nil until
	// initMetrics wires them (and in tests constructing measurement
	// directly).
	obs       *metrics.Shard
	obsDelay  [flit.NumClasses]metrics.Histogram
	obsJitter [flit.NumClasses]metrics.Histogram
}

func (m *measurement) init() {
	m.tracker = stats.NewJitterTracker(0)
	m.delayHist = stats.NewHistogram(0, 512, 512)
	m.jitterHist = stats.NewHistogram(0, 256, 512)
}

func (m *measurement) grow(nconns int) {
	m.tracker.Grow(nconns)
	for len(m.lastDelay) < nconns {
		m.lastDelay = append(m.lastDelay, 0)
		m.lastSeen = append(m.lastSeen, false)
	}
}

func (m *measurement) reset() {
	m.cycles = 0
	m.generated = 0
	m.transmitted = 0
	m.tracker.Reset() // keeps per-connection delay baselines (no fake jitter spike)
	m.totalDelay.Reset()
	m.vcmDelay.Reset()
	m.delayHist = stats.NewHistogram(0, 512, 512)
	m.jitterHist = stats.NewHistogram(0, 256, 512)
	for i := range m.perClass {
		m.perClass[i] = 0
		m.pktGenerated[i] = 0
		m.pktLatency[i].Reset()
	}
	m.ctlFastPath = 0
	if m.obs != nil {
		m.obs.Reset() // histograms track the same measurement window
	}
}

func (m *measurement) cycleDone(ports int) { m.cycles++ }

// recordDeparture notes a flit leaving the switch at cycle t. Delay is
// "the difference between the times a flit is ready to be transmitted
// through the switch and the time it actually leaves the switch" (§5):
// the wait at the head of the virtual channel.
func (m *measurement) recordDeparture(t int64, f *flit.Flit, cand sched.Candidate) {
	m.transmitted++
	m.perClass[f.Class]++
	if f.Class.IsStream() {
		delay := float64(t - f.HeadAt)
		m.tracker.Record(int(f.Conn), delay)
		m.vcmDelay.Add(float64(t - f.ReadyAt))
		m.totalDelay.Add(float64(t - f.CreatedAt))
		m.delayHist.Add(delay)
		if m.obs != nil {
			m.obs.Observe(m.obsDelay[f.Class], delay)
		}
		c := int(f.Conn)
		if m.lastSeen[c] {
			d := delay - m.lastDelay[c]
			if d < 0 {
				d = -d
			}
			m.jitterHist.Add(d)
			if m.obs != nil {
				m.obs.Observe(m.obsJitter[f.Class], d)
			}
		}
		m.lastDelay[c] = delay
		m.lastSeen[c] = true
	}
}

// recordPacketDelivery notes a VCT packet completing, either via the
// asynchronous fast path or after synchronous scheduling.
func (m *measurement) recordPacketDelivery(t int64, f *flit.Flit, fastPath bool) {
	m.pktLatency[f.Class].Add(float64(t - f.CreatedAt))
	if fastPath {
		m.ctlFastPath++
		m.perClass[f.Class]++
		m.transmitted++
	}
}

// Metrics is an immutable snapshot of one measurement window.
type Metrics struct {
	Cycles int64

	// FlitsGenerated and FlitsDelivered count stream flits; packets are
	// reported separately.
	FlitsGenerated int64
	FlitsDelivered int64

	// Delay (flit cycles): aggregate over all stream flits.
	Delay stats.Accumulator
	// VCMDelay (flit cycles) measures VCM entry→departure, adding the
	// within-VC queueing ahead of the head slot.
	VCMDelay stats.Accumulator
	// TotalDelay (flit cycles) measures creation→departure, including
	// buffer queueing ahead of the switch — the end-to-end single-router
	// latency a network interface observes.
	TotalDelay stats.Accumulator
	// Jitter (flit cycles): aggregate over all jitter samples, the
	// flit-weighted mean the figures report.
	Jitter stats.Accumulator
	// ConnMeanJitter averages each connection's mean jitter with equal
	// connection weight — the §5.2 discussion notes fast connections sit
	// below the average and slow ones above.
	ConnMeanJitter stats.Accumulator

	// DelayP50/P99 and JitterP99 are distribution quantiles in flit
	// cycles (histogram-estimated).
	DelayP50, DelayP99, JitterP99 float64

	// SwitchUtilization is transmitted flits / (ports × cycles).
	SwitchUtilization float64

	// DelayMicros converts mean delay into microseconds on the configured
	// link (Figure 4's unit).
	DelayMicros float64

	// ConnDelay and ConnJitter are per-connection accumulators indexed by
	// connection ID, for per-rate breakdowns (§5.2 discusses how jitter
	// varies with connection speed).
	ConnDelay  []stats.Accumulator
	ConnJitter []stats.Accumulator

	PerClassDelivered [flit.NumClasses]int64
	PacketsGenerated  [flit.NumClasses]int64
	ControlLatency    stats.Accumulator // cycles, created→delivered
	BestEffortLatency stats.Accumulator
	ControlFastPath   int64

	// Dynamic bandwidth management (§4.3).
	ControlWords  int64 // commands applied
	FramesAborted int64
	FlitsDropped  int64
}

// snapshot builds a Metrics from the live measurement state.
func (m *measurement) snapshot(r *Router) *Metrics {
	out := &Metrics{
		Cycles:            m.cycles,
		FlitsGenerated:    m.generated,
		FlitsDelivered:    m.perClass[flit.ClassCBR] + m.perClass[flit.ClassVBR],
		Delay:             *m.tracker.Delay(),
		VCMDelay:          m.vcmDelay,
		TotalDelay:        m.totalDelay,
		Jitter:            *m.tracker.Jitter(),
		PerClassDelivered: m.perClass,
		PacketsGenerated:  m.pktGenerated,
		ControlLatency:    m.pktLatency[flit.ClassControl],
		BestEffortLatency: m.pktLatency[flit.ClassBestEffort],
		ControlFastPath:   m.ctlFastPath,
		ControlWords:      m.controlWords,
		FramesAborted:     m.framesAborted,
		FlitsDropped:      m.flitsDropped,
	}
	if m.cycles > 0 {
		out.SwitchUtilization = float64(m.transmitted) / (float64(r.cfg.Ports) * float64(m.cycles))
	}
	out.DelayMicros = out.Delay.Mean() * r.cfg.Link.FlitCycleNanos() / 1e3
	out.DelayP50 = m.delayHist.Quantile(0.5)
	out.DelayP99 = m.delayHist.Quantile(0.99)
	out.JitterP99 = m.jitterHist.Quantile(0.99)
	out.ConnDelay = make([]stats.Accumulator, len(r.conns))
	out.ConnJitter = make([]stats.Accumulator, len(r.conns))
	for i := range r.conns {
		out.ConnDelay[i] = *m.tracker.ConnDelay(i)
		out.ConnJitter[i] = *m.tracker.ConnJitter(i)
		if cj := m.tracker.ConnJitter(i); cj.N() > 0 {
			out.ConnMeanJitter.Add(cj.Mean())
		}
	}
	return out
}

// String renders a one-line summary.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d delivered=%d delay=%.3f cyc (%.3f µs) jitter=%.3f cyc util=%.3f",
		m.Cycles, m.FlitsDelivered, m.Delay.Mean(), m.DelayMicros, m.Jitter.Mean(), m.SwitchUtilization)
	return b.String()
}
