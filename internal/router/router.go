// Package router implements the MMR single-chip router (Figure 1 of the
// paper): per-input-link virtual channel memories and link schedulers, a
// multiplexed crossbar, an input-driven switch scheduler, round-based
// bandwidth accounting and credit flow control — driven by a
// cycle-synchronous engine whose tick is one flit cycle (§3.4). This is
// the model behind every figure in §5: CBR/VBR connections feed input
// virtual channels, the link schedulers nominate candidates, the switch
// scheduler sets the crossbar, and delay/jitter are measured exactly as
// the paper defines them.
package router

import (
	"fmt"

	"mmr/internal/admission"
	"mmr/internal/crossbar"
	"mmr/internal/flit"
	"mmr/internal/flow"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// PriorityAssignment selects the static priority given to a connection
// under the fixed scheme.
type PriorityAssignment int

// Static priority assignments.
const (
	// PriorityByRate derives the static priority from the connection's
	// bandwidth — the QoS-class priority whose dynamic counterpart is the
	// biased scheme (which grows priorities at a rate ∝ connection speed,
	// §5.1). Strict priority by rate is stable below saturation: every
	// class sees capacity left by faster classes.
	PriorityByRate PriorityAssignment = iota
	// PriorityByIndex gives earlier-established connections strictly
	// higher priority — an ablation exhibiting classic static-priority
	// starvation.
	PriorityByIndex
	// PriorityFromSpec uses ConnSpec.Priority untouched.
	PriorityFromSpec
)

// String implements fmt.Stringer.
func (p PriorityAssignment) String() string {
	switch p {
	case PriorityByRate:
		return "by-rate"
	case PriorityByIndex:
		return "by-index"
	default:
		return "from-spec"
	}
}

// AdmissionMode selects how Establish tests output-link capacity.
type AdmissionMode int

// Admission modes.
const (
	// AdmitAllocation uses the §4.2 integer cycles/round registers.
	AdmitAllocation AdmissionMode = iota
	// AdmitRate admits on exact connection rates (the §5 experimental
	// assumption).
	AdmitRate
)

// String implements fmt.Stringer.
func (m AdmissionMode) String() string {
	if m == AdmitRate {
		return "rate"
	}
	return "allocation"
}

// ArbiterKind selects the switch scheduling algorithm (§5.1).
type ArbiterKind int

// The four algorithms compared in Figures 3-5.
const (
	ArbPriority ArbiterKind = iota // input-driven grant/accept with priorities
	ArbAutonet                     // Anderson et al. randomized matching (DEC)
	ArbPerfect                     // N× speedup reference switch
	ArbISLIP                       // rotating-pointer iterative matching (ablation A10)
)

// String implements fmt.Stringer.
func (k ArbiterKind) String() string {
	switch k {
	case ArbPriority:
		return "priority"
	case ArbAutonet:
		return "autonet"
	case ArbPerfect:
		return "perfect"
	case ArbISLIP:
		return "islip"
	default:
		return fmt.Sprintf("ArbiterKind(%d)", int(k))
	}
}

// Config assembles a router. The zero value is unusable; call
// PaperConfig or fill every field and let New validate.
type Config struct {
	Ports int          // router radix (8×8 in §5)
	Link  traffic.Link // physical link and flit geometry
	VCM   vcm.Config   // per-input-port buffer organization

	// K is the round-length multiplier: a round is K × VirtualChannels
	// flit cycles (§4.1; K > 1 trades allocation granularity for jitter).
	K int

	// MaxCandidates is the link scheduler candidate count (1-8 in §5).
	MaxCandidates int

	// Scheme is the priority scheme (Biased/Fixed); Selection chooses
	// priority-ranked vs random candidate sets; Arbiter picks the switch
	// scheduling algorithm. The paper's four configurations are:
	//   biased:  Scheme=Biased, Selection=Priority, Arbiter=Priority
	//   fixed:   Scheme=Fixed,  Selection=Priority, Arbiter=Priority
	//   autonet: Selection=Random, Arbiter=Autonet
	//   perfect: Scheme=Biased, Arbiter=Perfect
	Scheme       sched.PriorityScheme
	Selection    sched.Selection
	Arbiter      ArbiterKind
	ArbiterIters int // grant/accept iterations; 0 = until converged

	// BEReservePerRound holds back flit cycles each round for best-effort
	// traffic (§4.2); Concurrency is the VBR concurrency factor.
	BEReservePerRound int
	Concurrency       float64

	// EnforceAllocations applies per-round bandwidth enforcement to
	// stream VCs (§4.3): a VC that has consumed its cycles/round waits
	// for the next round. Disabling it lets backlogged connections catch
	// up with unreserved bandwidth.
	EnforceAllocations bool

	// Admission selects the admission test. AdmitAllocation is the §4.2
	// hardware mechanism (integer flit cycles/round registers); because
	// every connection is rounded up to at least one cycle/round, it
	// over-reserves for slow connections. AdmitRate admits on exact rates
	// — the idealization under which the paper's §5 experiments run up to
	// 95% offered load. Scheduling-time bandwidth enforcement always uses
	// the integer allocation.
	Admission AdmissionMode

	// FixedAssign selects how static priorities are assigned to
	// connections when Scheme is sched.Fixed (§4.4 "static priorities").
	FixedAssign PriorityAssignment

	// NoIdleSkip disables activity gating: every port is scanned and
	// every cycle is stepped even when provably nothing can happen. The
	// gated and ungated engines produce bit-identical results (the
	// equivalence tests pin this); the flag exists as a debugging escape
	// hatch and as the reference side of those tests.
	NoIdleSkip bool

	Seed uint64
}

// PaperConfig returns the §5 experimental setup: an 8×8 router with 256
// virtual channels per input port, 1.24 Gbps links, 128-bit flits and a
// two-round multiplier.
func PaperConfig() Config {
	return Config{
		Ports:              8,
		Link:               traffic.PaperLink,
		VCM:                vcm.PaperConfig(),
		K:                  2,
		MaxCandidates:      8,
		Scheme:             sched.Biased{},
		Selection:          sched.SelectPriority,
		Arbiter:            ArbPriority,
		Concurrency:        2,
		EnforceAllocations: true,
		Admission:          AdmitRate,
		FixedAssign:        PriorityByRate,
		Seed:               1,
	}
}

func (c *Config) validate() error {
	if c.Ports < 2 {
		return fmt.Errorf("router: need at least 2 ports, got %d", c.Ports)
	}
	if c.Link.Bandwidth <= 0 || c.Link.FlitBits <= 0 {
		return fmt.Errorf("router: invalid link %+v", c.Link)
	}
	if c.K < 1 {
		return fmt.Errorf("router: round multiplier K must be >= 1, got %d", c.K)
	}
	if c.MaxCandidates < 1 {
		return fmt.Errorf("router: need at least 1 candidate, got %d", c.MaxCandidates)
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("router: concurrency factor %.2f < 1", c.Concurrency)
	}
	return nil
}

// RoundLen returns the round length in flit cycles.
func (c *Config) RoundLen() int { return c.K * c.VCM.VirtualChannels }

// Connection is one established virtual circuit through the router.
type Connection struct {
	ID   flit.ConnID
	Spec traffic.ConnSpec
	VC   int // input virtual channel

	src      traffic.Source
	niQueue  flit.Ring // network-interface queue (policed injection, §4.2)
	nextSeq  int64
	injected int64
	released bool

	// Activity gating: last cycle the source was ticked, and the forecast
	// cycle of its next arrival (see injectStreams).
	lastTick int64
	nextDue  int64
}

// Router is a single MMR instance.
type Router struct {
	cfg  Config
	rng  *sim.RNG
	now  int64
	pool *flit.Pool // per-router free list; see docs/performance.md

	// lastRound is the last round whose boundary reset ran — lazy round
	// accounting, so idle-skipped cycles catch up on wake (engine.go).
	lastRound int64

	mems    []*vcm.Memory      // one VCM per input port
	credits []*flow.Credits    // sink-side credits per input port VC
	pipes   []*flow.CreditPipe // credit return latency
	links   []*sched.LinkScheduler

	// occ aggregates buffered-flit occupancy across every input port,
	// maintained incrementally by the VCMs (vcm.BindOccupancy), so the
	// per-cycle idle check reads one counter instead of scanning ports.
	occ int64
	alloc   []*admission.LinkAllocator // per output link
	// Rate-based admission accumulators (AdmitRate mode), as a fraction
	// of link bandwidth per output.
	rateGuaranteed []float64
	ratePeak       []float64
	xbar           *crossbar.Crossbar
	arbiter        sched.SwitchScheduler

	conns      []*Connection
	beFlows    []*packetFlow
	ctlFlows   []*packetFlow
	pendingCtl []pendingControl
	pktSeq     int64

	// outputBusyAsync marks outputs occupied by an asynchronous control
	// cut-through that overruns the current flit cycle (§3.4).
	outputBusyAsync []bool

	// scratch
	cands  [][]sched.Candidate
	grants []int
	xcfg   []int

	m       measurement
	om      *routerMetrics // observability layer (observe.go)
	stopped bool
}

// New builds a router from cfg.
func New(cfg Config) (*Router, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sched.Biased{}
	}
	r := &Router{
		cfg:             cfg,
		rng:             sim.NewRNG(cfg.Seed),
		lastRound:       -1,
		pool:            flit.NewPool(),
		mems:            make([]*vcm.Memory, cfg.Ports),
		credits:         make([]*flow.Credits, cfg.Ports),
		pipes:           make([]*flow.CreditPipe, cfg.Ports),
		links:           make([]*sched.LinkScheduler, cfg.Ports),
		alloc:           make([]*admission.LinkAllocator, cfg.Ports),
		rateGuaranteed:  make([]float64, cfg.Ports),
		ratePeak:        make([]float64, cfg.Ports),
		xbar:            crossbar.New(cfg.Ports),
		outputBusyAsync: make([]bool, cfg.Ports),
		cands:           make([][]sched.Candidate, cfg.Ports),
		grants:          make([]int, cfg.Ports),
	}
	// Structure-of-arrays port state: all ports' VC memories, link
	// schedulers and sink-side credit counters are single contiguous
	// allocations (the per-port slices hold interior pointers), so the
	// per-cycle port scans walk adjacent memory.
	memArr := make([]vcm.Memory, cfg.Ports)
	lsArr := make([]sched.LinkScheduler, cfg.Ports)
	credCounts := make([]int, cfg.Ports*cfg.VCM.VirtualChannels)
	vcs := cfg.VCM.VirtualChannels
	for p := 0; p < cfg.Ports; p++ {
		if err := vcm.Init(&memArr[p], cfg.VCM); err != nil {
			return nil, err
		}
		memArr[p].BindOccupancy(&r.occ)
		r.mems[p] = &memArr[p]
		r.credits[p] = flow.NewCreditsBacked(cfg.VCM.Depth, credCounts[p*vcs:(p+1)*vcs:(p+1)*vcs])
		r.pipes[p] = flow.NewCreditPipe(1)
		sched.InitLinkScheduler(&lsArr[p], sched.LinkConfig{
			Input:         p,
			MaxCandidates: cfg.MaxCandidates,
			Outputs:       cfg.Ports,
			Scheme:        cfg.Scheme,
			Selection:     cfg.Selection,
			RNG:           r.rng,
			NoEnforce:     !cfg.EnforceAllocations,
		}, r.mems[p], r.credits[p])
		r.links[p] = &lsArr[p]
		a, err := admission.NewLinkAllocator(cfg.RoundLen(), cfg.BEReservePerRound, cfg.Concurrency)
		if err != nil {
			return nil, err
		}
		r.alloc[p] = a
	}
	switch cfg.Arbiter {
	case ArbAutonet:
		iters := cfg.ArbiterIters
		if iters < 1 {
			iters = 3
		}
		r.arbiter = sched.NewPIMArbiter(r.rng, iters)
	case ArbPerfect:
		r.arbiter = sched.PerfectSwitch{}
	case ArbISLIP:
		iters := cfg.ArbiterIters
		if iters < 1 {
			iters = 3
		}
		r.arbiter = sched.NewISLIPArbiter(iters)
	default:
		r.arbiter = sched.NewPriorityArbiter(cfg.ArbiterIters)
	}
	r.m.init()
	return r, nil
}

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// Now returns the current flit cycle.
func (r *Router) Now() int64 { return r.now }

// Connections returns the established connections.
func (r *Router) Connections() []*Connection { return r.conns }

// Allocator exposes an output link's admission state.
func (r *Router) Allocator(out int) *admission.LinkAllocator { return r.alloc[out] }

// Memory exposes an input port's VCM (primarily for tests and tools).
func (r *Router) Memory(in int) *vcm.Memory { return r.mems[in] }

// Pool exposes the router's flit free list (primarily for tests asserting
// get/put balance and recycling hygiene).
func (r *Router) Pool() *flit.Pool { return r.pool }

// Establish admits and sets up a connection per spec: it reserves an input
// virtual channel, allocates bandwidth at the output link (§4.2), and
// installs the channel mapping and per-VC scheduling state (§3.2, §4.3).
// In the single-router model the EPB probe handshake degenerates to this
// local reservation; the network package implements the full protocol.
func (r *Router) Establish(spec traffic.ConnSpec) (*Connection, error) {
	if spec.In < 0 || spec.In >= r.cfg.Ports || spec.Out < 0 || spec.Out >= r.cfg.Ports {
		return nil, fmt.Errorf("router: ports (%d,%d) out of range", spec.In, spec.Out)
	}
	if !spec.Class.IsStream() {
		return nil, fmt.Errorf("router: Establish is for stream classes, got %v", spec.Class)
	}
	mem := r.mems[spec.In]
	vc := mem.FindFree(r.rng.Intn(mem.NumVCs()))
	if vc < 0 {
		return nil, fmt.Errorf("router: no free virtual channel on input %d", spec.In)
	}
	roundLen := r.cfg.RoundLen()
	alloc := r.cfg.Link.CyclesPerRound(spec.Rate, roundLen)
	peak := alloc
	if spec.Class == flit.ClassVBR {
		peak = r.cfg.Link.CyclesPerRound(spec.PeakRate, roundLen)
		if peak < alloc {
			peak = alloc
		}
	}
	if err := r.admit(spec, alloc, peak); err != nil {
		return nil, err
	}
	id := flit.ConnID(len(r.conns))
	base := spec.Priority
	if _, isFixed := r.cfg.Scheme.(sched.Fixed); isFixed {
		switch r.cfg.FixedAssign {
		case PriorityByRate:
			base = int(spec.Rate / 1000) // Kbps granularity
		case PriorityByIndex:
			base = -int(id)
		}
	}
	// The biased scheme normalizes a head flit's waiting time by the
	// connection's guaranteed service interval — roundLen/allocation, the
	// QoS metric the router holds for the connection (§4.4: priorities
	// grow "at a rate [that] is a function of the QoS metric used for the
	// corresponding connection"). For connections whose allocation is not
	// quantized up this equals the flit inter-arrival time; for very slow
	// connections it caps the aging horizon at one round, keeping their
	// delay (and hence jitter) bounded by the round length rather than by
	// their enormous inter-arrival times.
	interval := float64(roundLen) / float64(alloc)
	mem.Reserve(vc, vcm.VCState{
		Conn:         id,
		Class:        spec.Class,
		Allocated:    alloc,
		Peak:         peak,
		BasePriority: base,
		InterArrival: interval,
		Output:       spec.Out,
	})
	conn := &Connection{ID: id, Spec: spec, VC: vc,
		lastTick: r.now - 1, nextDue: r.now}
	switch spec.Class {
	case flit.ClassCBR:
		conn.src = traffic.NewCBRSource(r.cfg.Link, spec.Rate, r.rng.Float64())
	case flit.ClassVBR:
		conn.src = traffic.NewVBRSource(r.rng, r.cfg.Link, spec.Rate, spec.PeakRate, traffic.DefaultGoP())
	}
	r.conns = append(r.conns, conn)
	r.m.grow(len(r.conns))
	return conn, nil
}

// admit runs the configured admission test and charges the accounting
// registers for a stream connection.
func (r *Router) admit(spec traffic.ConnSpec, alloc, peak int) error {
	switch r.cfg.Admission {
	case AdmitRate:
		const eps = 1e-9
		frac := float64(spec.Rate) / float64(r.cfg.Link.Bandwidth)
		if r.rateGuaranteed[spec.Out]+frac > 1+eps {
			return fmt.Errorf("router: output %d cannot admit %v (rate admission)", spec.Out, spec.Rate)
		}
		if spec.Class == flit.ClassVBR {
			peakFrac := float64(spec.PeakRate) / float64(r.cfg.Link.Bandwidth)
			if peakFrac < frac {
				peakFrac = frac
			}
			if r.ratePeak[spec.Out]+peakFrac > r.cfg.Concurrency+eps {
				return fmt.Errorf("router: output %d cannot admit VBR peak %v (rate admission)", spec.Out, spec.PeakRate)
			}
			r.ratePeak[spec.Out] += peakFrac
		}
		r.rateGuaranteed[spec.Out] += frac
		return nil
	default:
		switch spec.Class {
		case flit.ClassVBR:
			if !r.alloc[spec.Out].AdmitVBR(alloc, peak) {
				return fmt.Errorf("router: output %d cannot admit VBR %v/%v", spec.Out, spec.Rate, spec.PeakRate)
			}
		default:
			if !r.alloc[spec.Out].AdmitCBR(alloc) {
				return fmt.Errorf("router: output %d cannot admit %v CBR", spec.Out, spec.Rate)
			}
		}
		return nil
	}
}

// EstablishWithSource is Establish with a caller-provided flit source —
// e.g. an MPEG-2 frame-size trace played through internal/trace — in
// place of the statistical CBR/VBR generators. The admission demand
// still comes from spec.Rate/PeakRate; the caller is responsible for the
// source respecting them (the router's policing bounds any excess).
func (r *Router) EstablishWithSource(spec traffic.ConnSpec, src traffic.Source) (*Connection, error) {
	conn, err := r.Establish(spec)
	if err != nil {
		return nil, err
	}
	conn.src = src
	return conn, nil
}

// EstablishWorkload establishes every connection of a generated workload,
// returning the count admitted. Workloads built with Generate respect
// per-port bandwidth, so admission failures indicate VC exhaustion.
func (r *Router) EstablishWorkload(w *traffic.Workload) (int, error) {
	n := 0
	for _, spec := range w.Conns {
		if _, err := r.Establish(spec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
