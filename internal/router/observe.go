package router

import (
	"strconv"

	"mmr/internal/flit"
	"mmr/internal/metrics"
)

// observe.go exports the single-router simulation's state as a metric
// registry, mirroring the measurement struct, the link schedulers'
// event counters and the live VCM/allocator state at gather time. The
// only hot-path additions are the per-class delay and jitter histogram
// observes in recordDeparture — a bounded bucket scan and three
// increments per departing stream flit, nothing allocated — so the
// router's zero-alloc and throughput gates hold unchanged.
//
// The registry is lazy: nothing is built until EnableMetrics (or the
// first gather), so router construction — which sweeps pay for on
// every grid cell — stays registry-free. Mirrored families are
// correct whenever the registry is created, since they are copied
// from live state at gather time; only the hot-path delay/jitter
// histograms need EnableMetrics *before* the run to observe it.

// routerMetrics holds the router's metric handles and its one shard.
type routerMetrics struct {
	reg *metrics.Registry
	sh  *metrics.Shard

	classDelay  [flit.NumClasses]metrics.Histogram
	classJitter [flit.NumClasses]metrics.Histogram

	generated   metrics.Counter
	transmitted metrics.Counter
	classDone   [flit.NumClasses]metrics.Counter
	ctlFast     metrics.Counter
	ctlWords    metrics.Counter
	framesAbort metrics.Counter
	dropped     metrics.Counter

	schedNominated metrics.Counter
	schedStalled   metrics.Counter
	schedExhausted metrics.Counter
	schedBoosted   metrics.Counter

	cycles     metrics.Gauge
	util       metrics.Gauge
	vcOccupied []metrics.Gauge
	vcReserved []metrics.Gauge
	guarLoad   []metrics.Gauge
}

func (r *Router) initMetrics() {
	reg := metrics.New()
	om := &routerMetrics{reg: reg}

	delayBuckets := metrics.Pow2Buckets(1, 12)
	jitterBuckets := metrics.Pow2Buckets(1, 9)
	for c := 0; c < flit.NumClasses; c++ {
		cl := flit.Class(c).String()
		om.classDelay[c] = reg.Histogram("mmr_router_delay_cycles",
			"head-of-VC delay by service class", delayBuckets, "class", cl)
		om.classJitter[c] = reg.Histogram("mmr_router_jitter_cycles",
			"delay difference between successive flits of a connection", jitterBuckets, "class", cl)
		om.classDone[c] = reg.Counter("mmr_router_delivered_total",
			"flits transmitted by service class", "class", cl)
	}
	om.generated = reg.Counter("mmr_router_flits_generated_total", "stream flits injected")
	om.transmitted = reg.Counter("mmr_router_flits_transmitted_total", "flits through the switch")
	om.ctlFast = reg.Counter("mmr_router_control_fast_path_total", "control packets cut through asynchronously")
	om.ctlWords = reg.Counter("mmr_router_control_words_total", "in-band management commands applied")
	om.framesAbort = reg.Counter("mmr_router_frames_aborted_total", "frames aborted by bandwidth management")
	om.dropped = reg.Counter("mmr_router_flits_dropped_total", "flits dropped by frame aborts")
	om.schedNominated = reg.Counter("mmr_router_sched_nominated_total", "candidates handed to the switch arbiter")
	om.schedStalled = reg.Counter("mmr_router_sched_credit_stalled_total", "VC-cycles with a flit buffered but no downstream credit")
	om.schedExhausted = reg.Counter("mmr_router_sched_round_exhausted_total", "VC-cycles passed over: per-round allocation consumed")
	om.schedBoosted = reg.Counter("mmr_router_sched_bias_boosted_total", "candidates lifted above base priority by the dynamic bias")
	om.cycles = reg.Gauge("mmr_router_cycles", "flit cycles in the measurement window")
	om.util = reg.Gauge("mmr_router_switch_utilization", "transmitted flits / (ports x cycles)")
	for p := 0; p < r.cfg.Ports; p++ {
		port := strconv.Itoa(p)
		om.vcOccupied = append(om.vcOccupied, reg.Gauge(
			"mmr_router_vc_occupied_flits", "flits buffered per input port", "port", port))
		om.vcReserved = append(om.vcReserved, reg.Gauge(
			"mmr_router_vc_reserved", "virtual channels in use per input port", "port", port))
		om.guarLoad = append(om.guarLoad, reg.Gauge(
			"mmr_router_guaranteed_load", "guaranteed-bandwidth fraction allocated per output port", "port", port))
	}

	om.sh = reg.NewShard()
	r.om = om
	r.m.obs = om.sh
	r.m.obsDelay = om.classDelay
	r.m.obsJitter = om.classJitter
	reg.OnGather(r.collectMetrics)
}

// collectMetrics mirrors the measurement state into the registry; runs
// at the start of every Gather.
func (r *Router) collectMetrics() {
	om := r.om
	sh := om.sh
	m := &r.m
	sh.Store(om.generated, m.generated)
	sh.Store(om.transmitted, m.transmitted)
	for c := 0; c < flit.NumClasses; c++ {
		sh.Store(om.classDone[c], m.perClass[c])
	}
	sh.Store(om.ctlFast, m.ctlFastPath)
	sh.Store(om.ctlWords, m.controlWords)
	sh.Store(om.framesAbort, m.framesAborted)
	sh.Store(om.dropped, m.flitsDropped)

	var nom, stall, exh, boost int64
	for p := 0; p < r.cfg.Ports; p++ {
		lc := r.links[p].Counters()
		nom += lc.Nominated
		stall += lc.CreditStalled
		exh += lc.RoundExhausted
		boost += lc.BiasBoosted
		sh.Set(om.vcOccupied[p], float64(r.mems[p].Occupied()))
		sh.Set(om.vcReserved[p], float64(r.mems[p].ReservedVector().Count()))
		sh.Set(om.guarLoad[p], r.alloc[p].GuaranteedLoad())
	}
	sh.Store(om.schedNominated, nom)
	sh.Store(om.schedStalled, stall)
	sh.Store(om.schedExhausted, exh)
	sh.Store(om.schedBoosted, boost)

	sh.Set(om.cycles, float64(m.cycles))
	if m.cycles > 0 {
		sh.Set(om.util, float64(m.transmitted)/(float64(r.cfg.Ports)*float64(m.cycles)))
	}
}

// EnableMetrics builds the metric registry and wires the hot-path
// histogram observes. Idempotent. Call before Run to have the
// delay/jitter histograms cover the measurement window.
func (r *Router) EnableMetrics() {
	if r.om == nil {
		r.initMetrics()
	}
}

// MetricsRegistry returns the router's metric registry, enabling
// metrics if needed.
func (r *Router) MetricsRegistry() *metrics.Registry {
	r.EnableMetrics()
	return r.om.reg
}

// GatherMetrics snapshots the registry, enabling metrics if needed.
// Call between steps.
func (r *Router) GatherMetrics() *metrics.Snapshot {
	r.EnableMetrics()
	return r.om.reg.Gather()
}
