package router

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/traffic"
)

// control.go implements §4.3's dynamic bandwidth management: "using
// control words along a connection we can dynamically vary the bandwidth
// requirements of a connection ... The response may involve a change in
// data rate, selective dropping of data packets, or injection
// limitation." Commands are encoded in control words that travel in-band
// with the connection's flits (Myrinet-style), taking effect at the
// router after a small propagation delay.

// pendingControl is a command in flight toward the router.
type pendingControl struct {
	applyAt int64
	conn    *Connection
	word    flit.ControlWord
}

// SetBandwidth asks the source interface to change a CBR connection's
// data rate. The command is carried by a control word: admission
// re-checks the delta at the output link, the per-VC allocation and
// aging interval are rewritten, and the source changes rate — all after
// the in-band propagation delay of one flit cycle.
func (r *Router) SetBandwidth(conn *Connection, rate traffic.Rate) error {
	if conn.Spec.Class != flit.ClassCBR {
		return fmt.Errorf("router: SetBandwidth supports CBR connections, got %v", conn.Spec.Class)
	}
	if rate <= 0 {
		return fmt.Errorf("router: invalid rate %v", rate)
	}
	newAlloc := r.cfg.Link.CyclesPerRound(rate, r.cfg.RoundLen())
	oldAlloc := r.mems[conn.Spec.In].State(conn.VC).Allocated
	// Admission on the delta, so shrinking always succeeds and growth is
	// subject to the same §4.2 test as establishment.
	switch r.cfg.Admission {
	case AdmitRate:
		delta := float64(rate-conn.Spec.Rate) / float64(r.cfg.Link.Bandwidth)
		if r.rateGuaranteed[conn.Spec.Out]+delta > 1+1e-9 {
			return fmt.Errorf("router: output %d cannot grow connection %d to %v", conn.Spec.Out, conn.ID, rate)
		}
		r.rateGuaranteed[conn.Spec.Out] += delta
	default:
		if !r.alloc[conn.Spec.Out].AdjustCBR(newAlloc - oldAlloc) {
			return fmt.Errorf("router: output %d cannot grow connection %d to %v", conn.Spec.Out, conn.ID, rate)
		}
	}
	r.pendingCtl = append(r.pendingCtl, pendingControl{
		applyAt: r.now + 1,
		conn:    conn,
		word:    flit.ControlWord{VC: conn.VC, Op: flit.CtlSetBandwidth, Arg: int(rate), Conn: conn.ID},
	})
	return nil
}

// SetPriority changes a VBR connection's static priority via a control
// word (§4.3: the priority "can be dynamically modified by sending
// control words from the network interface").
func (r *Router) SetPriority(conn *Connection, priority int) error {
	if conn.Spec.Class != flit.ClassVBR {
		return fmt.Errorf("router: SetPriority supports VBR connections, got %v", conn.Spec.Class)
	}
	r.pendingCtl = append(r.pendingCtl, pendingControl{
		applyAt: r.now + 1,
		conn:    conn,
		word:    flit.ControlWord{VC: conn.VC, Op: flit.CtlSetPriority, Arg: priority, Conn: conn.ID},
	})
	return nil
}

// AbortFrame drops a connection's queued flits at the source interface
// and in its input VC — the §4.3 response of an interface that sees a
// low-priority video frame making no progress: "less bandwidth is wasted
// in the transmission of a frame that will not meet the deadline." It
// returns the number of flits dropped.
func (r *Router) AbortFrame(conn *Connection) int {
	dropped := 0
	for conn.niQueue.Len() > 0 {
		r.pool.Put(conn.niQueue.Pop())
		dropped++
	}
	mem := r.mems[conn.Spec.In]
	for mem.Len(conn.VC) > 0 {
		r.pool.Put(mem.Pop(conn.VC))
		dropped++
		// The freed slot returns a credit to the source side implicitly
		// (injection checks Free directly); sink credits are untouched
		// because the flits never crossed the switch.
	}
	r.m.framesAborted++
	r.m.flitsDropped += int64(dropped)
	return dropped
}

// Release tears a connection down: injection stops, buffered flits are
// discarded (counted as dropped), the virtual channel is freed and the
// output link's bandwidth registers are decremented (§4.2: the register
// "is decremented when a connection is removed"). The Connection must
// not be used afterwards.
func (r *Router) Release(conn *Connection) error {
	if conn.released {
		return fmt.Errorf("router: connection %d already released", conn.ID)
	}
	// A credit still in flight from the sink would be returned to
	// whatever connection reuses this VC, corrupting flow control; the
	// return path is one cycle, so the caller just steps the router.
	if r.credits[conn.Spec.In].Available(conn.VC) != r.cfg.VCM.Depth {
		return fmt.Errorf("router: connection %d has credits in flight; run a cycle and retry", conn.ID)
	}
	conn.released = true
	r.AbortFrame(conn) // drain NI queue and VC
	conn.src = nil
	mem := r.mems[conn.Spec.In]
	mem.Release(conn.VC)
	roundLen := r.cfg.RoundLen()
	alloc := r.cfg.Link.CyclesPerRound(conn.Spec.Rate, roundLen)
	switch r.cfg.Admission {
	case AdmitRate:
		r.rateGuaranteed[conn.Spec.Out] -= float64(conn.Spec.Rate) / float64(r.cfg.Link.Bandwidth)
		if conn.Spec.Class == flit.ClassVBR {
			peakFrac := float64(conn.Spec.PeakRate) / float64(r.cfg.Link.Bandwidth)
			if pf := float64(conn.Spec.Rate) / float64(r.cfg.Link.Bandwidth); peakFrac < pf {
				peakFrac = pf
			}
			r.ratePeak[conn.Spec.Out] -= peakFrac
		}
	default:
		if conn.Spec.Class == flit.ClassVBR {
			peak := r.cfg.Link.CyclesPerRound(conn.Spec.PeakRate, roundLen)
			if peak < alloc {
				peak = alloc
			}
			r.alloc[conn.Spec.Out].ReleaseVBR(alloc, peak)
		} else {
			r.alloc[conn.Spec.Out].ReleaseCBR(alloc)
		}
	}
	return nil
}

// applyControls executes control words whose propagation delay elapsed.
func (r *Router) applyControls(t int64) {
	i := 0
	for ; i < len(r.pendingCtl) && r.pendingCtl[i].applyAt <= t; i++ {
		pc := r.pendingCtl[i]
		if pc.conn.released {
			continue // the connection was torn down while the word was in flight
		}
		st := r.mems[pc.conn.Spec.In].State(pc.conn.VC)
		switch pc.word.Op {
		case flit.CtlSetBandwidth:
			rate := traffic.Rate(pc.word.Arg)
			alloc := r.cfg.Link.CyclesPerRound(rate, r.cfg.RoundLen())
			st.Allocated = alloc
			st.Peak = alloc
			st.InterArrival = float64(r.cfg.RoundLen()) / float64(alloc)
			pc.conn.Spec.Rate = rate
			if src, ok := pc.conn.src.(*traffic.CBRSource); ok {
				// Retune the live source in place, keeping its fractional
				// accumulator: a renegotiation changes the rate, it does
				// not restart the stream, so no phase jump or burst.
				st := src.ExportState()
				st.PerCycle = r.cfg.Link.FlitsPerCycle(rate)
				src.RestoreState(st)
			} else {
				pc.conn.src = traffic.NewCBRSource(r.cfg.Link, rate, r.rng.Float64())
			}
			// The old forecast was computed at the old rate; recompute it
			// on the next injection pass.
			pc.conn.lastTick = t - 1
			pc.conn.nextDue = t
		case flit.CtlSetPriority:
			st.BasePriority = pc.word.Arg
			pc.conn.Spec.Priority = pc.word.Arg
		}
		r.m.controlWords++
	}
	if i > 0 {
		r.pendingCtl = append(r.pendingCtl[:0], r.pendingCtl[i:]...)
	}
}
