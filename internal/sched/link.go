package sched

import (
	"mmr/internal/bitvec"
	"mmr/internal/flit"
	"mmr/internal/flow"
	"mmr/internal/sim"
	"mmr/internal/vcm"
)

// Selection is how a link scheduler picks its candidate set from the
// eligible virtual channels. The paper's scheme ranks by priority; the
// Autonet comparison picks at random (§5.1: the algorithms differ "in how
// the candidates are selected at input links").
type Selection int

// Candidate-selection policies.
const (
	SelectPriority Selection = iota
	SelectRandom
)

// LinkConfig configures one input port's link scheduler.
type LinkConfig struct {
	Input         int
	MaxCandidates int // the paper sweeps 1, 2, 4, 8 (§5)
	// Outputs is the router's output port count, sizing the per-output
	// dedup table at construction. Zero is allowed (the table grows on
	// first use) but costs one allocation per new high-water output index.
	Outputs   int
	Scheme    PriorityScheme
	Selection Selection
	RNG       *sim.RNG // required for SelectRandom
	// NoEnforce disables per-round bandwidth enforcement: stream VCs are
	// always eligible at guaranteed precedence regardless of their
	// serviced count. Used to isolate scheduling effects from allocation
	// quantization.
	NoEnforce bool
}

// LinkScheduler nominates up to MaxCandidates virtual channels from one
// input port each flit cycle, honoring the §4.3 service order: buffered
// control packets, then CBR allocations and VBR permanent bandwidth, then
// VBR excess bandwidth by priority (completing one connection's excess
// before the next), then best-effort. Bandwidth enforcement is per round:
// a VC that has consumed its allocation waits for the next round.
type LinkScheduler struct {
	cfg     LinkConfig
	mem     *vcm.Memory
	credits *flow.Credits

	eligible *bitvec.Vector // scratch: flits ∧ credits
	scratch  []Candidate
	outTaken []bool // scratch, port-indexed: outputs already represented
	taken    []int  // scratch: outputs marked in outTaken this cycle

	// excessVC is the VBR connection currently draining its excess
	// bandwidth (§4.3 serves excess one connection at a time). -1 if none.
	excessVC int

	counters LinkCounters
}

// LinkCounters are plain cumulative event counts a scheduler maintains
// as it runs. They live here rather than in the metrics registry so
// sched stays dependency-free; the observability layer mirrors them
// into counters at gather time.
type LinkCounters struct {
	// Nominated is the number of candidates handed to the switch arbiter.
	Nominated int64
	// CreditStalled counts VC-cycles where a VC had a flit buffered but
	// no downstream credit — the credit-starvation signal.
	CreditStalled int64
	// RoundExhausted counts VC-cycles where an eligible stream VC was
	// passed over because it had consumed its per-round allocation.
	RoundExhausted int64
	// BiasBoosted counts nominated candidates whose dynamic priority
	// exceeded their static base — i.e. the §5.1 bias (waited time over
	// inter-arrival) actually lifted the flit above its resting priority.
	BiasBoosted int64
}

// Counters returns the scheduler's cumulative event counts.
func (ls *LinkScheduler) Counters() LinkCounters { return ls.counters }

// NewLinkScheduler returns a scheduler over the port's VCM and its
// downstream credit state.
func NewLinkScheduler(cfg LinkConfig, mem *vcm.Memory, credits *flow.Credits) *LinkScheduler {
	ls := new(LinkScheduler)
	InitLinkScheduler(ls, cfg, mem, credits)
	return ls
}

// InitLinkScheduler initializes ls in place — the structure-of-arrays
// allocation form: a router lays its per-port schedulers out in one
// contiguous slice and Inits each element, so the cross-cycle scheduler
// state (excess election, counters) of adjacent ports shares cache lines
// instead of being scattered across the heap.
func InitLinkScheduler(ls *LinkScheduler, cfg LinkConfig, mem *vcm.Memory, credits *flow.Credits) {
	if cfg.MaxCandidates < 1 {
		cfg.MaxCandidates = 1
	}
	if cfg.Scheme == nil {
		cfg.Scheme = Biased{}
	}
	*ls = LinkScheduler{
		cfg:      cfg,
		mem:      mem,
		credits:  credits,
		eligible: bitvec.New(mem.NumVCs()),
		outTaken: make([]bool, cfg.Outputs),
		taken:    make([]int, 0, cfg.MaxCandidates),
		excessVC: -1,
	}
}

// Config returns the scheduler's configuration.
func (ls *LinkScheduler) Config() LinkConfig { return ls.cfg }

// OnRoundBoundary resets per-round bandwidth accounting (§4.1: flit cycles
// are grouped into rounds; allocations are per round).
func (ls *LinkScheduler) OnRoundBoundary() {
	ls.mem.ResetRound()
	ls.excessVC = -1
}

// Active reports whether calling Candidates could do anything at all this
// cycle. With zero buffered flits, Candidates is provably a no-op: the
// eligibility vector comes out empty, CreditStalled advances by zero, no
// RNG is drawn and no counter or election state changes — so a port with
// an empty VC memory may be skipped without touching its memories. The
// occupancy count is maintained incrementally by the VCM, making this O(1).
func (ls *LinkScheduler) Active() bool { return ls.mem.Occupied() > 0 }

// classify returns the service phase of VC vc right now, or -1 if the VC
// has exhausted its bandwidth for this round.
func (ls *LinkScheduler) classify(vc int) (Phase, bool) {
	st := ls.mem.State(vc)
	switch st.Class {
	case flit.ClassControl:
		return PhaseControl, true
	case flit.ClassCBR:
		if ls.cfg.NoEnforce {
			return PhaseGuaranteed, true
		}
		if ls.mem.Serviced(vc) < st.Allocated {
			return PhaseGuaranteed, true
		}
		return 0, false
	case flit.ClassVBR:
		if ls.cfg.NoEnforce {
			return PhaseGuaranteed, true
		}
		serviced := ls.mem.Serviced(vc)
		if serviced < st.Allocated {
			return PhaseGuaranteed, true
		}
		if serviced < st.Peak {
			return PhaseExcess, true
		}
		return 0, false
	default: // best-effort
		return PhaseBestEffort, true
	}
}

// Candidates appends up to MaxCandidates candidates for the next flit
// cycle to dst and returns the extended slice, best first.
func (ls *LinkScheduler) Candidates(now int64, dst []Candidate) []Candidate {
	flits := ls.mem.FlitsAvailable()
	ls.eligible.And(flits, ls.credits.Vector())
	// Buffered flits minus eligible flits is exactly the set with no
	// downstream credit — two popcounts, no extra pass.
	ls.counters.CreditStalled += int64(flits.Count() - ls.eligible.Count())
	if !ls.eligible.Any() {
		return dst
	}
	ls.scratch = ls.scratch[:0]
	excessSeen := false
	// Word-level scan of the eligibility vector (bits.TrailingZeros64 under
	// NextSet) instead of a per-bit callback: this loop runs for every
	// eligible VC on every port every cycle.
	for vc := ls.eligible.NextSet(0); vc >= 0; vc = ls.eligible.NextSet(vc + 1) {
		st := ls.mem.State(vc)
		if st.Output < 0 {
			continue // unrouted VC (header still in the routing unit)
		}
		phase, ok := ls.classify(vc)
		if !ok {
			ls.counters.RoundExhausted++
			continue
		}
		if phase == PhaseExcess {
			excessSeen = true
			// §4.3: drain one connection's excess completely before the
			// next. While the current excess VC is still eligible, other
			// excess VCs stand aside.
			if ls.excessVC >= 0 && vc != ls.excessVC {
				continue
			}
		}
		head := ls.mem.Peek(vc)
		prio := ls.cfg.Scheme.Priority(now, st, head)
		if prio > float64(st.BasePriority) {
			ls.counters.BiasBoosted++
		}
		ls.scratch = append(ls.scratch, Candidate{
			Input:    ls.cfg.Input,
			VC:       vc,
			Output:   st.Output,
			Phase:    phase,
			Priority: prio,
		})
	}
	// If the current excess VC went ineligible, elect a successor: the
	// eligible excess VC with the highest static priority.
	if ls.excessVC >= 0 && !ls.stillExcessEligible(ls.excessVC) {
		ls.excessVC = -1
	}
	if ls.excessVC < 0 && excessSeen {
		ls.electExcess()
		// Re-collect is unnecessary: excess candidates excluded above can
		// wait one cycle; the elected VC enters the set next cycle. This
		// mirrors hardware, where election happens in parallel with the
		// current cycle's arbitration.
	}
	if len(ls.scratch) == 0 {
		return dst
	}
	switch ls.cfg.Selection {
	case SelectRandom:
		for i := len(ls.scratch) - 1; i > 0; i-- {
			j := ls.cfg.RNG.Intn(i + 1)
			ls.scratch[i], ls.scratch[j] = ls.scratch[j], ls.scratch[i]
		}
	default:
		sortCandidates(ls.scratch)
	}
	// Keep the best candidate per distinct output. An input transmits at
	// most one flit per cycle, so a second candidate for the same output
	// can never improve the matching — spending candidate slots on
	// distinct outputs is what makes more candidates raise switch
	// utilization (§5.2). The per-output winner is exactly what the
	// output-side arbitration would pick anyway.
	n := 0
	for _, c := range ls.scratch {
		if c.Output >= len(ls.outTaken) {
			grown := make([]bool, c.Output+1)
			copy(grown, ls.outTaken)
			ls.outTaken = grown
		}
		if ls.outTaken[c.Output] {
			continue
		}
		ls.outTaken[c.Output] = true
		ls.taken = append(ls.taken, c.Output)
		dst = append(dst, c)
		n++
		if n >= ls.cfg.MaxCandidates {
			break
		}
	}
	for _, o := range ls.taken {
		ls.outTaken[o] = false
	}
	ls.taken = ls.taken[:0]
	ls.counters.Nominated += int64(n)
	return dst
}

// stillExcessEligible reports whether vc remains an eligible excess-phase
// candidate.
func (ls *LinkScheduler) stillExcessEligible(vc int) bool {
	if !ls.eligible.Test(vc) {
		return false
	}
	phase, ok := ls.classify(vc)
	return ok && phase == PhaseExcess
}

// electExcess picks the eligible excess VC with the highest static
// priority as the connection whose excess is served next (§4.3).
func (ls *LinkScheduler) electExcess() {
	best, bestPrio := -1, 0
	for vc := ls.eligible.NextSet(0); vc >= 0; vc = ls.eligible.NextSet(vc + 1) {
		if phase, ok := ls.classify(vc); ok && phase == PhaseExcess {
			p := ls.mem.State(vc).BasePriority
			if best < 0 || p > bestPrio {
				best, bestPrio = vc, p
			}
		}
	}
	ls.excessVC = best
}

// ExportState returns the scheduler's cross-cycle state for
// checkpointing: the elected excess VC and the cumulative counters.
// Everything else the scheduler holds (eligibility vector, candidate
// scratch, dedup table) is recomputed from scratch each cycle.
func (ls *LinkScheduler) ExportState() (excessVC int, c LinkCounters) {
	return ls.excessVC, ls.counters
}

// RestoreState overwrites the scheduler's cross-cycle state.
func (ls *LinkScheduler) RestoreState(excessVC int, c LinkCounters) {
	ls.excessVC = excessVC
	ls.counters = c
}

// ExcessVC exposes the currently elected excess connection for tests.
func (ls *LinkScheduler) ExcessVC() int { return ls.excessVC }

// sortCandidates orders candidates best-first (insertion sort: candidate
// sets are small — at most the eligible VC count, typically under a few
// dozen).
func sortCandidates(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && Better(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
