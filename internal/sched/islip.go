package sched

import "fmt"

// ISLIPArbiter implements rotating-pointer iterative matching in the
// style of iSLIP (McKeown; the paper cites the same family via
// Mekkittikul & McKeown [21]): outputs grant the requesting input nearest
// after their grant pointer, inputs accept the granting output nearest
// after their accept pointer, and pointers advance past a partner only
// when a first-iteration match forms — the desynchronization that gives
// 100% throughput on uniform traffic. It ignores flit priorities
// entirely, which is exactly what makes it an interesting comparator for
// the MMR's QoS-driven schedulers (ablation A10).
type ISLIPArbiter struct {
	iterations int
	name       string

	grantPtr  []int // per output
	acceptPtr []int // per input

	inMatched  []bool
	outMatched []bool
	requests   [][]int
	reqIdx     [][]int
	offerBuf   [][]islipGrant
}

// islipGrant is one output's offer to an input during a grant phase.
type islipGrant struct{ out, idx int }

// NewISLIPArbiter returns an arbiter running the given number of
// grant/accept iterations per cycle (iSLIP typically converges in
// log2(N) iterations; 1 iteration is classic SLIP).
func NewISLIPArbiter(iterations int) *ISLIPArbiter {
	if iterations < 1 {
		iterations = 1
	}
	// Cache the name: Name() is called from experiment hot paths and a
	// per-call Sprintf allocates.
	return &ISLIPArbiter{iterations: iterations,
		name: fmt.Sprintf("islip/%d-iter", iterations)}
}

// OutputSharing implements SwitchScheduler.
func (a *ISLIPArbiter) OutputSharing() bool { return false }

// Name implements SwitchScheduler.
func (a *ISLIPArbiter) Name() string { return a.name }

func (a *ISLIPArbiter) grow(n int) {
	if len(a.grantPtr) != n {
		a.grantPtr = make([]int, n)
		a.acceptPtr = make([]int, n)
		a.inMatched = make([]bool, n)
		a.outMatched = make([]bool, n)
		a.requests = make([][]int, n)
		a.reqIdx = make([][]int, n)
	}
	for i := 0; i < n; i++ {
		a.inMatched[i] = false
		a.outMatched[i] = false
		a.requests[i] = a.requests[i][:0]
		a.reqIdx[i] = a.reqIdx[i][:0]
	}
}

// Schedule implements SwitchScheduler.
func (a *ISLIPArbiter) Schedule(cands [][]Candidate, grants []int) {
	n := len(grants)
	a.grow(n)
	for i := range grants {
		grants[i] = NoGrant
	}
	// Build the request matrix: requests[o] lists inputs wanting output o.
	reqFrom := a.requests // reuse: indexed by output
	idxFrom := a.reqIdx
	for in := 0; in < n && in < len(cands); in++ {
		for ci, c := range cands[in] {
			if c.Output >= 0 && c.Output < n {
				reqFrom[c.Output] = append(reqFrom[c.Output], in)
				idxFrom[c.Output] = append(idxFrom[c.Output], ci)
			}
		}
	}
	for iter := 0; iter < a.iterations; iter++ {
		// Grant phase: each unmatched output grants the unmatched
		// requesting input nearest at/after its pointer; inputs pick among
		// offers in the accept phase below.
		if cap(a.offerBuf) < n {
			a.offerBuf = make([][]islipGrant, n)
		}
		offers := a.offerBuf[:n]
		for i := range offers {
			offers[i] = offers[i][:0]
		}
		for o := 0; o < n; o++ {
			if a.outMatched[o] || len(reqFrom[o]) == 0 {
				continue
			}
			best, bestIdx, bestDist := -1, -1, n+1
			for k, in := range reqFrom[o] {
				if a.inMatched[in] {
					continue
				}
				d := (in - a.grantPtr[o] + n) % n
				if d < bestDist {
					best, bestIdx, bestDist = in, idxFrom[o][k], d
				}
			}
			if best >= 0 {
				offers[best] = append(offers[best], islipGrant{out: o, idx: bestIdx})
			}
		}
		// Accept phase: each input accepts the offering output nearest
		// at/after its accept pointer.
		progress := false
		for in := 0; in < n; in++ {
			if a.inMatched[in] || len(offers[in]) == 0 {
				continue
			}
			best, bestIdx, bestDist := -1, -1, n+1
			for _, g := range offers[in] {
				d := (g.out - a.acceptPtr[in] + n) % n
				if d < bestDist {
					best, bestIdx, bestDist = g.out, g.idx, d
				}
			}
			grants[in] = bestIdx
			a.inMatched[in] = true
			a.outMatched[best] = true
			progress = true
			// Pointers advance one past the partner, only on the first
			// iteration (the iSLIP desynchronization rule).
			if iter == 0 {
				a.grantPtr[best] = (in + 1) % n
				a.acceptPtr[in] = (best + 1) % n
			}
		}
		if !progress {
			break
		}
	}
}
