package sched

import (
	"testing"
	"testing/quick"
)

func TestISLIPValidMatching(t *testing.T) {
	a := NewISLIPArbiter(3)
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 0}, {Input: 0, VC: 1, Output: 1}},
		{{Input: 1, VC: 0, Output: 0}},
		{{Input: 2, VC: 0, Output: 1}, {Input: 2, VC: 1, Output: 2}},
	}
	grants := make([]int, 3)
	a.Schedule(cands, grants)
	used := map[int]bool{}
	matched := 0
	for in, g := range grants {
		if g == NoGrant {
			continue
		}
		out := cands[in][g].Output
		if used[out] {
			t.Fatalf("output %d double-granted", out)
		}
		used[out] = true
		matched++
	}
	if matched < 2 {
		t.Fatalf("matched %d, want >= 2", matched)
	}
}

func TestISLIPDesynchronizesUnderFullLoad(t *testing.T) {
	// All inputs request all outputs: after the first few cycles the
	// rotating pointers desynchronize and the switch matches N pairs per
	// cycle, giving 100% throughput — the classic iSLIP property.
	const n = 4
	a := NewISLIPArbiter(1)
	cands := make([][]Candidate, n)
	for in := 0; in < n; in++ {
		for o := 0; o < n; o++ {
			cands[in] = append(cands[in], Candidate{Input: in, VC: o, Output: o})
		}
	}
	grants := make([]int, n)
	full := 0
	for cycle := 0; cycle < 50; cycle++ {
		a.Schedule(cands, grants)
		matched := 0
		for _, g := range grants {
			if g != NoGrant {
				matched++
			}
		}
		if cycle >= 10 && matched == n {
			full++
		}
	}
	if full < 35 {
		t.Fatalf("full matchings in steady state: %d of 40", full)
	}
}

func TestISLIPFairnessRoundRobin(t *testing.T) {
	// Two inputs perpetually contending for one output must alternate.
	a := NewISLIPArbiter(1)
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 0}},
		{{Input: 1, VC: 0, Output: 0}},
	}
	grants := make([]int, 2)
	wins := [2]int{}
	for cycle := 0; cycle < 100; cycle++ {
		a.Schedule(cands, grants)
		for in, g := range grants {
			if g != NoGrant {
				wins[in]++
			}
		}
	}
	if wins[0] < 45 || wins[1] < 45 {
		t.Fatalf("round-robin fairness violated: %v", wins)
	}
}

func TestISLIPName(t *testing.T) {
	if NewISLIPArbiter(2).Name() != "islip/2-iter" {
		t.Fatal("name wrong")
	}
	if NewISLIPArbiter(0).Name() != "islip/1-iter" {
		t.Fatal("iteration clamp wrong")
	}
	if NewISLIPArbiter(1).OutputSharing() {
		t.Fatal("islip must not share outputs")
	}
}

// Property: iSLIP always produces a valid matching with in-range grant
// indices, like every other arbiter.
func TestISLIPValidityProperty(t *testing.T) {
	a := NewISLIPArbiter(2)
	f := func(nPorts8 uint8, raw []uint16) bool {
		n := int(nPorts8)%6 + 2
		cands := make([][]Candidate, n)
		for _, r := range raw {
			in := int(r) % n
			cands[in] = append(cands[in], Candidate{
				Input: in, VC: len(cands[in]), Output: int(r>>4) % n,
			})
		}
		grants := make([]int, n)
		a.Schedule(cands, grants)
		used := map[int]bool{}
		for in, g := range grants {
			if g == NoGrant {
				continue
			}
			if g < 0 || g >= len(cands[in]) {
				return false
			}
			out := cands[in][g].Output
			if used[out] {
				return false
			}
			used[out] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
