package sched

import (
	"testing"
	"testing/quick"

	"mmr/internal/flit"
	"mmr/internal/flow"
	"mmr/internal/sim"
	"mmr/internal/vcm"
)

func TestBetterOrdering(t *testing.T) {
	ctl := Candidate{Phase: PhaseControl, Priority: 0}
	hi := Candidate{Phase: PhaseGuaranteed, Priority: 9}
	lo := Candidate{Phase: PhaseGuaranteed, Priority: 1}
	be := Candidate{Phase: PhaseBestEffort, Priority: 100}
	if !Better(ctl, hi) || !Better(hi, lo) || !Better(lo, be) {
		t.Fatal("phase/priority ordering wrong")
	}
	// Deterministic tie-break by input then VC.
	a := Candidate{Phase: PhaseGuaranteed, Priority: 5, Input: 0, VC: 3}
	b := Candidate{Phase: PhaseGuaranteed, Priority: 5, Input: 1, VC: 0}
	c := Candidate{Phase: PhaseGuaranteed, Priority: 5, Input: 0, VC: 4}
	if !Better(a, b) || !Better(a, c) {
		t.Fatal("tie-break wrong")
	}
}

func TestSortCandidates(t *testing.T) {
	cs := []Candidate{
		{Phase: PhaseBestEffort, Priority: 50},
		{Phase: PhaseGuaranteed, Priority: 1},
		{Phase: PhaseControl},
		{Phase: PhaseGuaranteed, Priority: 7},
	}
	sortCandidates(cs)
	if cs[0].Phase != PhaseControl || cs[1].Priority != 7 || cs[2].Priority != 1 || cs[3].Phase != PhaseBestEffort {
		t.Fatalf("sorted order wrong: %+v", cs)
	}
}

func TestBiasedPriorityGrowth(t *testing.T) {
	var b Biased
	st := &vcm.VCState{InterArrival: 10}
	head := &flit.Flit{ReadyAt: 100}
	p1 := b.Priority(110, st, head) // waited 10 = 1 inter-arrival
	p2 := b.Priority(150, st, head) // waited 50 = 5 inter-arrivals
	if p1 != 1 || p2 != 5 {
		t.Fatalf("biased priorities = %v, %v; want 1, 5", p1, p2)
	}
	// Faster connection (smaller inter-arrival) grows faster.
	fast := &vcm.VCState{InterArrival: 2}
	if b.Priority(110, fast, head) <= p1 {
		t.Fatal("fast connection should outgrow slow one")
	}
	// Negative wait clamps to zero (flit ready in the future).
	if p := b.Priority(90, st, head); p != 0 {
		t.Fatalf("future-ready flit priority = %v, want 0", p)
	}
	// Packet VCs (no inter-arrival) age in raw cycles.
	pkt := &vcm.VCState{}
	if p := b.Priority(105, pkt, head); p != 5 {
		t.Fatalf("packet aging = %v, want 5", p)
	}
}

func TestFixedPriorityStatic(t *testing.T) {
	var f Fixed
	st := &vcm.VCState{BasePriority: 3, InterArrival: 10}
	head := &flit.Flit{ReadyAt: 0}
	if f.Priority(0, st, head) != 3 || f.Priority(1_000_000, st, head) != 3 {
		t.Fatal("fixed priority must not depend on waiting time")
	}
}

func TestOldestFirstPriority(t *testing.T) {
	var o OldestFirst
	st := &vcm.VCState{InterArrival: 1000}
	head := &flit.Flit{ReadyAt: 40}
	if p := o.Priority(100, st, head); p != 60 {
		t.Fatalf("oldest-first = %v, want 60", p)
	}
}

// newPort builds a small VCM + credits + scheduler for link tests.
func newPort(t *testing.T, maxCand int, scheme PriorityScheme) (*LinkScheduler, *vcm.Memory, *flow.Credits) {
	t.Helper()
	mem := vcm.MustNew(vcm.Config{VirtualChannels: 8, Depth: 2, Banks: 4, PhitsPerFlit: 8, PhitBufferDepth: 8})
	cr := flow.NewCredits(8, 2)
	ls := NewLinkScheduler(LinkConfig{Input: 0, MaxCandidates: maxCand, Scheme: scheme}, mem, cr)
	return ls, mem, cr
}

// addStream reserves VC vc as a CBR stream to output out and buffers one
// flit that became ready at the given cycle.
func addStream(mem *vcm.Memory, vc, out int, conn flit.ConnID, ready int64) {
	mem.Reserve(vc, vcm.VCState{
		Conn: conn, Class: flit.ClassCBR, Allocated: 100, InterArrival: 10, Output: out,
	})
	mem.Push(vc, &flit.Flit{Conn: conn, Class: flit.ClassCBR, ReadyAt: ready})
}

func TestLinkSchedulerBasicCandidates(t *testing.T) {
	ls, mem, _ := newPort(t, 4, Biased{})
	addStream(mem, 1, 3, 10, 0)
	addStream(mem, 5, 2, 11, 0)
	cands := ls.Candidates(50, nil)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	for _, c := range cands {
		if c.Input != 0 || c.Phase != PhaseGuaranteed {
			t.Fatalf("candidate wrong: %+v", c)
		}
		if (c.VC == 1 && c.Output != 3) || (c.VC == 5 && c.Output != 2) {
			t.Fatalf("mapping wrong: %+v", c)
		}
	}
}

func TestLinkSchedulerRespectsMaxCandidates(t *testing.T) {
	ls, mem, _ := newPort(t, 2, Biased{})
	for vc := 0; vc < 6; vc++ {
		addStream(mem, vc, vc, flit.ConnID(vc), int64(10*vc))
	}
	cands := ls.Candidates(100, nil)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	// Best-first: the two oldest (smallest ReadyAt) flits win under biased.
	if cands[0].VC != 0 || cands[1].VC != 1 {
		t.Fatalf("wrong candidates selected: %+v", cands)
	}
}

func TestLinkSchedulerNeedsCredits(t *testing.T) {
	ls, mem, cr := newPort(t, 4, Biased{})
	addStream(mem, 2, 1, 7, 0)
	cr.Consume(2)
	cr.Consume(2) // exhaust VC 2's credits
	if cands := ls.Candidates(10, nil); len(cands) != 0 {
		t.Fatalf("candidate offered without credits: %+v", cands)
	}
	cr.Return(2)
	if cands := ls.Candidates(10, nil); len(cands) != 1 {
		t.Fatal("candidate missing after credit return")
	}
}

func TestLinkSchedulerSkipsUnroutedVCs(t *testing.T) {
	ls, mem, _ := newPort(t, 4, Biased{})
	mem.Reserve(0, vcm.VCState{Class: flit.ClassCBR, Allocated: 10, Output: -1})
	mem.Push(0, &flit.Flit{})
	if cands := ls.Candidates(5, nil); len(cands) != 0 {
		t.Fatal("unrouted VC offered as candidate")
	}
}

func TestLinkSchedulerRoundEnforcement(t *testing.T) {
	ls, mem, _ := newPort(t, 4, Biased{})
	mem.Reserve(1, vcm.VCState{Class: flit.ClassCBR, Allocated: 2, InterArrival: 5, Output: 0})
	mem.Push(1, &flit.Flit{})
	mem.SetServiced(1, 2) // allocation consumed this round
	if cands := ls.Candidates(10, nil); len(cands) != 0 {
		t.Fatal("over-allocation VC still scheduled")
	}
	ls.OnRoundBoundary()
	if cands := ls.Candidates(10, nil); len(cands) != 1 {
		t.Fatal("VC not eligible after round reset")
	}
}

func TestLinkSchedulerPhases(t *testing.T) {
	ls, mem, _ := newPort(t, 8, Biased{})
	// Best-effort packet VC.
	mem.Reserve(0, vcm.VCState{Class: flit.ClassBestEffort, Output: 1})
	mem.Push(0, &flit.Flit{Class: flit.ClassBestEffort, ReadyAt: 0})
	// CBR stream.
	addStream(mem, 1, 2, 5, 90)
	// Buffered control packet.
	mem.Reserve(2, vcm.VCState{Class: flit.ClassControl, Output: 3})
	mem.Push(2, &flit.Flit{Class: flit.ClassControl, ReadyAt: 99})
	cands := ls.Candidates(100, nil)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	if cands[0].Phase != PhaseControl || cands[1].Phase != PhaseGuaranteed || cands[2].Phase != PhaseBestEffort {
		t.Fatalf("phase order wrong: %+v", cands)
	}
}

func TestLinkSchedulerVBRPhases(t *testing.T) {
	ls, mem, _ := newPort(t, 8, Biased{})
	// VBR VC within permanent allocation.
	mem.Reserve(0, vcm.VCState{Class: flit.ClassVBR, Allocated: 2, Peak: 5, InterArrival: 10, Output: 0})
	mem.Push(0, &flit.Flit{})
	cands := ls.Candidates(10, nil)
	if len(cands) != 1 || cands[0].Phase != PhaseGuaranteed {
		t.Fatalf("VBR within permanent: %+v", cands)
	}
	// Consume permanent: moves to excess phase.
	mem.SetServiced(0, 2)
	cands = ls.Candidates(11, nil)
	if len(cands) != 1 || cands[0].Phase != PhaseExcess {
		t.Fatalf("VBR excess: %+v", cands)
	}
	// Consume peak: ineligible.
	mem.SetServiced(0, 5)
	if cands = ls.Candidates(12, nil); len(cands) != 0 {
		t.Fatalf("VBR beyond peak still scheduled: %+v", cands)
	}
}

func TestLinkSchedulerExcessOneAtATime(t *testing.T) {
	ls, mem, _ := newPort(t, 8, Biased{})
	for vc := 0; vc < 3; vc++ {
		mem.Reserve(vc, vcm.VCState{
			Class: flit.ClassVBR, Allocated: 0, Peak: 10, InterArrival: 10,
			Output: vc, BasePriority: vc, // VC 2 has the highest static priority
		})
		mem.Push(vc, &flit.Flit{})
	}
	// First call sees excess VCs but none elected yet; election happens
	// for the next cycle.
	ls.Candidates(10, nil)
	if ls.ExcessVC() != 2 {
		t.Fatalf("elected excess VC %d, want 2 (highest priority)", ls.ExcessVC())
	}
	cands := ls.Candidates(11, nil)
	if len(cands) != 1 || cands[0].VC != 2 {
		t.Fatalf("excess candidates = %+v, want only VC 2", cands)
	}
	// Drain VC 2 to its peak; the next election must pick VC 1.
	mem.SetServiced(2, 10)
	ls.Candidates(12, nil)
	if ls.ExcessVC() != 1 {
		t.Fatalf("re-election chose %d, want 1", ls.ExcessVC())
	}
}

func TestLinkSchedulerRandomSelection(t *testing.T) {
	rng := sim.NewRNG(5)
	mem := vcm.MustNew(vcm.Config{VirtualChannels: 8, Depth: 2, Banks: 4, PhitsPerFlit: 8, PhitBufferDepth: 8})
	cr := flow.NewCredits(8, 2)
	ls := NewLinkScheduler(LinkConfig{Input: 0, MaxCandidates: 1, Selection: SelectRandom, RNG: rng}, mem, cr)
	for vc := 0; vc < 8; vc++ {
		addStream(mem, vc, vc, flit.ConnID(vc), 0)
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		cands := ls.Candidates(10, nil)
		if len(cands) != 1 {
			t.Fatalf("want 1 candidate, got %d", len(cands))
		}
		seen[cands[0].VC] = true
	}
	if len(seen) < 4 {
		t.Fatalf("random selection hit only %d distinct VCs", len(seen))
	}
}

func TestLinkSchedulerDefaults(t *testing.T) {
	mem := vcm.MustNew(vcm.Config{VirtualChannels: 2, Depth: 1, Banks: 1, PhitsPerFlit: 1, PhitBufferDepth: 1})
	cr := flow.NewCredits(2, 1)
	ls := NewLinkScheduler(LinkConfig{}, mem, cr)
	if ls.Config().MaxCandidates != 1 || ls.Config().Scheme == nil {
		t.Fatal("defaults not applied")
	}
}

func TestPriorityArbiterConflictResolution(t *testing.T) {
	a := NewPriorityArbiterNoAugment(0)
	// Inputs 0 and 1 both want output 0; input 0 has higher priority but
	// also a fallback to output 1.
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 0, Phase: PhaseGuaranteed, Priority: 9},
			{Input: 0, VC: 1, Output: 1, Phase: PhaseGuaranteed, Priority: 5}},
		{{Input: 1, VC: 0, Output: 0, Phase: PhaseGuaranteed, Priority: 3}},
	}
	grants := make([]int, 2)
	a.Schedule(cands, grants)
	// Without augmentation, input 0 wins output 0 with its best candidate
	// and input 1 loses (maximal matching honoring priorities).
	if grants[0] != 0 || grants[1] != NoGrant {
		t.Fatalf("no-augment grants = %v", grants)
	}
	// With augmentation the matching grows to maximum: input 0 is
	// re-routed to its fallback so input 1's flit can use output 0 —
	// every output link transmits (§4.4's utilization goal).
	full := NewPriorityArbiter(0)
	full.Schedule(cands, grants)
	if grants[0] != 1 || grants[1] != 0 {
		t.Fatalf("augmented grants = %v", grants)
	}
}

func TestPriorityArbiterIterativeFill(t *testing.T) {
	a := NewPriorityArbiter(0)
	// Input 0 wants output 0 (strongly) or 1; input 1 wants only output 0.
	// After input 0 takes output 0... input 1 is stuck. But if input 0's
	// priorities invert, iteration lets input 1 take output 0 and input 0
	// fall back to output 1 — both transmit.
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 1, Phase: PhaseGuaranteed, Priority: 9},
			{Input: 0, VC: 1, Output: 0, Phase: PhaseGuaranteed, Priority: 5}},
		{{Input: 1, VC: 0, Output: 0, Phase: PhaseGuaranteed, Priority: 3}},
	}
	grants := make([]int, 2)
	a.Schedule(cands, grants)
	if grants[0] != 0 || grants[1] != 0 {
		t.Fatalf("grants = %v; want both inputs matched", grants)
	}
}

func TestPriorityArbiterPhasePrecedence(t *testing.T) {
	a := NewPriorityArbiter(0)
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 0, Phase: PhaseBestEffort, Priority: 1e9}},
		{{Input: 1, VC: 0, Output: 0, Phase: PhaseControl, Priority: 0}},
	}
	grants := make([]int, 2)
	a.Schedule(cands, grants)
	if grants[1] != 0 || grants[0] != NoGrant {
		t.Fatalf("control packet lost to best-effort: %v", grants)
	}
}

func TestPriorityArbiterEmptyAndShortInputs(t *testing.T) {
	a := NewPriorityArbiter(2)
	grants := make([]int, 3)
	a.Schedule([][]Candidate{{}, nil}, grants) // fewer cands rows than ports
	for _, g := range grants {
		if g != NoGrant {
			t.Fatalf("grants = %v", grants)
		}
	}
}

func TestPIMArbiterValidMatching(t *testing.T) {
	rng := sim.NewRNG(3)
	a := NewPIMArbiter(rng, 3)
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 0}, {Input: 0, VC: 1, Output: 1}},
		{{Input: 1, VC: 0, Output: 0}},
		{{Input: 2, VC: 0, Output: 1}, {Input: 2, VC: 1, Output: 2}},
	}
	grants := make([]int, 3)
	counts := map[int]int{}
	for trial := 0; trial < 100; trial++ {
		a.Schedule(cands, grants)
		used := map[int]bool{}
		matched := 0
		for in, g := range grants {
			if g == NoGrant {
				continue
			}
			matched++
			out := cands[in][g].Output
			if used[out] {
				t.Fatalf("output %d double-granted: %v", out, grants)
			}
			used[out] = true
		}
		counts[matched]++
		if matched < 2 {
			t.Fatalf("PIM matched only %d with an obvious 3-matching available", matched)
		}
	}
	if counts[3] == 0 {
		t.Fatal("PIM never found the maximal matching in 100 trials")
	}
}

func TestPIMArbiterRandomizesWinners(t *testing.T) {
	rng := sim.NewRNG(9)
	a := NewPIMArbiter(rng, 1)
	cands := [][]Candidate{
		{{Input: 0, VC: 0, Output: 0}},
		{{Input: 1, VC: 0, Output: 0}},
	}
	grants := make([]int, 2)
	wins := [2]int{}
	for i := 0; i < 400; i++ {
		a.Schedule(cands, grants)
		for in, g := range grants {
			if g != NoGrant {
				wins[in]++
			}
		}
	}
	if wins[0] < 120 || wins[1] < 120 {
		t.Fatalf("PIM arbitration biased: %v", wins)
	}
}

func TestPerfectSwitchGrantsAll(t *testing.T) {
	var p PerfectSwitch
	if !p.OutputSharing() {
		t.Fatal("perfect switch must share outputs")
	}
	cands := [][]Candidate{
		{{Input: 0, Output: 0}},
		{{Input: 1, Output: 0}}, // same output — fine for perfect
		{},
	}
	grants := make([]int, 3)
	p.Schedule(cands, grants)
	if grants[0] != 0 || grants[1] != 0 || grants[2] != NoGrant {
		t.Fatalf("grants = %v", grants)
	}
}

func TestArbiterNames(t *testing.T) {
	if NewPriorityArbiter(0).Name() != "priority" {
		t.Fatal("priority name")
	}
	if NewPriorityArbiter(2).Name() != "priority/2-iter" {
		t.Fatal("priority iter name")
	}
	if NewPIMArbiter(sim.NewRNG(1), 3).Name() != "autonet/3-iter" {
		t.Fatal("autonet name")
	}
	if (PerfectSwitch{}).Name() != "perfect" {
		t.Fatal("perfect name")
	}
	if (Biased{}).Name() != "biased" || (Fixed{}).Name() != "fixed" || (OldestFirst{}).Name() != "oldest-first" {
		t.Fatal("scheme names")
	}
}

// Property: for random candidate sets, every arbiter produces a valid
// matching — grant indices in range, and (except the perfect switch) no
// output claimed twice and each matched candidate's output in range.
func TestArbiterValidityProperty(t *testing.T) {
	rng := sim.NewRNG(77)
	arbiters := []SwitchScheduler{
		NewPriorityArbiter(0),
		NewPriorityArbiter(1),
		NewPIMArbiter(rng, 2),
		PerfectSwitch{},
	}
	f := func(seed uint64, nPorts8 uint8, raw []uint16) bool {
		rng.Seed(seed)
		n := int(nPorts8)%6 + 2
		cands := make([][]Candidate, n)
		for _, r := range raw {
			in := int(r) % n
			cands[in] = append(cands[in], Candidate{
				Input:    in,
				VC:       len(cands[in]),
				Output:   int(r>>4) % n,
				Phase:    Phase(int(r>>8) % 4),
				Priority: float64(r >> 10),
			})
		}
		for _, c := range cands {
			sortCandidates(c)
		}
		grants := make([]int, n)
		for _, a := range arbiters {
			a.Schedule(cands, grants)
			used := map[int]bool{}
			for in, g := range grants {
				if g == NoGrant {
					continue
				}
				if g < 0 || g >= len(cands[in]) {
					return false
				}
				out := cands[in][g].Output
				if out < 0 || out >= n {
					return false
				}
				if !a.OutputSharing() {
					if used[out] {
						return false
					}
					used[out] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
