package sched

import (
	"reflect"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/flow"
	"mmr/internal/vcm"
)

// TestLinkCountersGatingEquivalence drives two identical ports through the
// same intermittent workload — flit bursts separated by idle gaps, credit
// starvation windows, round-boundary resets — with one port scanned every
// cycle and the other scanned only when Active() reports buffered flits
// (exactly the skip rule the activity-gated engines apply). The candidate
// stream and every LinkCounters field (Nominated, CreditStalled,
// RoundExhausted, BiasBoosted) must match bit for bit: skipping a port on
// an idle cycle may not change what it counts, because CreditStalled and
// RoundExhausted are defined over *buffered* flits and an idle port has
// none.
func TestLinkCountersGatingEquivalence(t *testing.T) {
	build := func() (*LinkScheduler, *vcm.Memory, *flow.Credits) {
		mem := vcm.MustNew(vcm.Config{VirtualChannels: 8, Depth: 2, Banks: 4, PhitsPerFlit: 8, PhitBufferDepth: 8})
		cr := flow.NewCredits(8, 2)
		ls := NewLinkScheduler(LinkConfig{Input: 0, MaxCandidates: 2, Outputs: 4}, mem, cr)
		// VC 1: tight allocation so round enforcement trips (RoundExhausted).
		mem.Reserve(1, vcm.VCState{Conn: 1, Class: flit.ClassCBR, Allocated: 1, InterArrival: 10, Output: 0, BasePriority: 2})
		mem.Reserve(2, vcm.VCState{Conn: 2, Class: flit.ClassCBR, Allocated: 100, InterArrival: 25, Output: 1, BasePriority: 1})
		mem.Reserve(3, vcm.VCState{Conn: 3, Class: flit.ClassVBR, Allocated: 1, Peak: 3, InterArrival: 40, Output: 2, BasePriority: 3})
		return ls, mem, cr
	}
	lsAll, memAll, crAll := build()
	lsGated, memGated, crGated := build()

	skipped := 0
	for now := int64(0); now < 2000; now++ {
		if now%50 == 0 {
			lsAll.OnRoundBoundary()
			lsGated.OnRoundBoundary()
		}
		// Burst arrivals: three flits every 40 cycles, then silence while
		// the port drains — the drained gap is where gating skips scans.
		if now%40 == 0 {
			for _, vc := range []int{1, 2, 3} {
				f := &flit.Flit{Conn: flit.ConnID(vc), ReadyAt: now}
				memAll.Push(vc, f)
				g := *f
				memGated.Push(vc, &g)
			}
		}
		// Credit starvation window for VC 2: consume both credits just
		// after a burst lands (now≡1 mod 160), return them at now≡29 —
		// CreditStalled accrues on the cycles between, on both sides
		// alike, and the stalled flit keeps the port active throughout.
		switch now % 160 {
		case 1:
			if crAll.Available(2) == 2 {
				crAll.Consume(2)
				crAll.Consume(2)
				crGated.Consume(2)
				crGated.Consume(2)
			}
		case 29:
			for crAll.Available(2) < 2 {
				crAll.Return(2)
				crGated.Return(2)
			}
		}

		candsAll := lsAll.Candidates(now, nil)
		var candsGated []Candidate
		if lsGated.Active() {
			candsGated = lsGated.Candidates(now, nil)
		} else {
			skipped++
			if len(candsAll) != 0 {
				t.Fatalf("cycle %d: gated port idle but ungated port nominated %+v", now, candsAll)
			}
		}
		if lsGated.Active() && !reflect.DeepEqual(candsAll, candsGated) {
			t.Fatalf("cycle %d: candidates diverged\nall:   %+v\ngated: %+v", now, candsAll, candsGated)
		}
		// Grant the best candidate: pop the flit and count it serviced,
		// identically on both sides (grant decisions derive from the
		// candidate streams, which were just proven equal).
		if len(candsAll) > 0 {
			vc := candsAll[0].VC
			memAll.Pop(vc)
			memAll.IncServiced(vc)
			memGated.Pop(vc)
			memGated.IncServiced(vc)
		}
	}

	if skipped == 0 {
		t.Fatal("workload never idled: the gated path was not exercised")
	}
	if a, g := lsAll.Counters(), lsGated.Counters(); a != g {
		t.Fatalf("counters diverged after gating (skipped %d scans):\nall:   %+v\ngated: %+v", skipped, a, g)
	}
	if lsAll.Counters().CreditStalled == 0 {
		t.Fatal("scenario never credit-stalled: CreditStalled equivalence untested")
	}
	if lsAll.Counters().RoundExhausted == 0 {
		t.Fatal("scenario never exhausted a round: RoundExhausted equivalence untested")
	}
}
