package sched

import (
	"mmr/internal/flit"
	"mmr/internal/vcm"
)

// PriorityScheme computes the scheduling priority of the flit at the head
// of a virtual channel. The paper recomputes head-flit priorities every
// flit cycle (§4.4); computing them on demand from timestamps is
// equivalent and cheaper in software.
type PriorityScheme interface {
	Priority(now int64, st *vcm.VCState, head *flit.Flit) float64
	Name() string
}

// Biased is the paper's dynamic priority-biasing scheme (§5.1): the
// priority of a head flit is the ratio of the delay it has experienced at
// the switch to the connection's flit inter-arrival time, so priorities
// grow at a rate set by the connection's QoS (faster connections grow
// faster). A VBR connection's static base priority is added so that
// priority classes remain distinguishable (§4.3).
type Biased struct{}

// Priority implements PriorityScheme.
func (Biased) Priority(now int64, st *vcm.VCState, head *flit.Flit) float64 {
	waited := float64(now - head.ReadyAt)
	if waited < 0 {
		waited = 0
	}
	ia := st.InterArrival
	if ia <= 0 {
		// Packets (control/best-effort) have no stream inter-arrival; age
		// them in raw cycles so they cannot starve within their phase.
		return float64(st.BasePriority) + waited
	}
	return float64(st.BasePriority) + waited/ia
}

// Name implements PriorityScheme.
func (Biased) Name() string { return "biased" }

// Fixed is the static-priority baseline (§4.4 "static priorities", the
// "Fixed" curves of Figures 3-5): each connection keeps the priority it
// was assigned at establishment, regardless of how long its flits wait.
type Fixed struct{}

// Priority implements PriorityScheme.
func (Fixed) Priority(_ int64, st *vcm.VCState, _ *flit.Flit) float64 {
	return float64(st.BasePriority)
}

// Name implements PriorityScheme.
func (Fixed) Name() string { return "fixed" }

// OldestFirst serves the head flit that has waited longest in absolute
// cycles — classic age-based arbitration (the scheme of [7,20] that the
// paper contrasts with QoS-metric biasing, where service depends "simply
// [on] the time spent by the packet in the network"). Included for
// ablations.
type OldestFirst struct{}

// Priority implements PriorityScheme.
func (OldestFirst) Priority(now int64, st *vcm.VCState, head *flit.Flit) float64 {
	waited := float64(now - head.ReadyAt)
	if waited < 0 {
		waited = 0
	}
	return float64(st.BasePriority) + waited
}

// Name implements PriorityScheme.
func (OldestFirst) Name() string { return "oldest-first" }
