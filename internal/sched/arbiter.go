package sched

import (
	"fmt"

	"mmr/internal/sim"
)

// PriorityArbiter is the MMR's input-driven switch scheduler (§4.4): all
// candidates request their output ports concurrently; each output grants
// to the best-phase/highest-priority requester; each input accepts its
// best granted candidate. The grant/accept exchange iterates so that
// losers' secondary candidates can fill ports freed by earlier rounds,
// approaching a maximal matching — this is why more candidates per input
// raise switch utilization (§5.2).
type PriorityArbiter struct {
	iterations int
	augment    bool
	name       string

	// scratch, reused across cycles to stay allocation-free.
	grantIn   []int // per output: granted input, or -1
	grantIdx  []int // per output: candidate index at that input
	inMatched []bool
	outTaken  []bool
	visited   []bool
	matchIn   []int // per output: matched input during augmentation
}

// NewPriorityArbiter returns an arbiter that runs up to iterations
// grant/accept rounds per flit cycle (0 means "until converged", which a
// single-cycle hardware implementation approximates with ~log N rounds),
// then grows the priority-seeded matching to a maximum matching with
// augmenting paths — the §4.4 goal of "assigning virtual channels to
// every output link during each flit cycle" (a wavefront-style hardware
// arbiter achieves the same effect).
func NewPriorityArbiter(iterations int) *PriorityArbiter {
	name := "priority"
	if iterations > 0 {
		name = fmt.Sprintf("priority/%d-iter", iterations)
	}
	return &PriorityArbiter{iterations: iterations, augment: true, name: name}
}

// NewPriorityArbiterNoAugment returns the arbiter without the augmenting
// pass: the pure iterative grant/accept (maximal, not maximum) matching.
// Used by ablations quantifying what the augmenting pass buys.
func NewPriorityArbiterNoAugment(iterations int) *PriorityArbiter {
	a := NewPriorityArbiter(iterations)
	a.augment = false
	a.name += "/no-augment"
	return a
}

// OutputSharing implements SwitchScheduler.
func (a *PriorityArbiter) OutputSharing() bool { return false }

// Name implements SwitchScheduler.
func (a *PriorityArbiter) Name() string { return a.name }

func (a *PriorityArbiter) grow(n int) {
	if cap(a.grantIn) < n {
		a.grantIn = make([]int, n)
		a.grantIdx = make([]int, n)
		a.inMatched = make([]bool, n)
		a.outTaken = make([]bool, n)
		a.visited = make([]bool, n)
		a.matchIn = make([]int, n)
	}
	a.grantIn = a.grantIn[:n]
	a.grantIdx = a.grantIdx[:n]
	a.inMatched = a.inMatched[:n]
	a.outTaken = a.outTaken[:n]
	a.visited = a.visited[:n]
	a.matchIn = a.matchIn[:n]
	for i := 0; i < n; i++ {
		a.inMatched[i] = false
		a.outTaken[i] = false
	}
}

// Schedule implements SwitchScheduler.
func (a *PriorityArbiter) Schedule(cands [][]Candidate, grants []int) {
	n := len(grants)
	a.grow(n)
	for i := range grants {
		grants[i] = NoGrant
	}
	maxIter := a.iterations
	if maxIter <= 0 {
		maxIter = n // convergence bound: one new match minimum per round
	}
	for iter := 0; iter < maxIter; iter++ {
		// Grant phase: each free output picks the best requesting candidate
		// from unmatched inputs.
		for o := 0; o < n; o++ {
			a.grantIn[o] = -1
		}
		for in := 0; in < n && in < len(cands); in++ {
			if a.inMatched[in] {
				continue
			}
			for ci, c := range cands[in] {
				o := c.Output
				if o < 0 || o >= n || a.outTaken[o] {
					continue
				}
				if a.grantIn[o] < 0 || Better(c, cands[a.grantIn[o]][a.grantIdx[o]]) {
					a.grantIn[o] = in
					a.grantIdx[o] = ci
				}
			}
		}
		// Accept phase: each input takes the best grant it received.
		progress := false
		for o := 0; o < n; o++ {
			in := a.grantIn[o]
			if in < 0 || a.inMatched[in] {
				continue
			}
			// The input may have been granted several outputs; accept the
			// best of them.
			best, bestIdx := o, a.grantIdx[o]
			for o2 := o + 1; o2 < n; o2++ {
				if a.grantIn[o2] == in && Better(cands[in][a.grantIdx[o2]], cands[in][bestIdx]) {
					best, bestIdx = o2, a.grantIdx[o2]
				}
			}
			grants[in] = bestIdx
			a.inMatched[in] = true
			a.outTaken[best] = true
			progress = true
			// Invalidate this input's other grants for this iteration.
			for o2 := 0; o2 < n; o2++ {
				if a.grantIn[o2] == in && o2 != best {
					a.grantIn[o2] = -1
				}
			}
		}
		if !progress {
			break
		}
	}
	if a.augment {
		a.augmentMatching(cands, grants)
	}
}

// augmentMatching extends the priority-seeded matching to a maximum
// matching via augmenting paths (Hungarian-style DFS). Matched pairs from
// the grant/accept phase keep their priority ordering; augmentation only
// re-routes inputs to alternative candidates so that unmatched ports can
// transmit too.
func (a *PriorityArbiter) augmentMatching(cands [][]Candidate, grants []int) {
	n := len(grants)
	for o := 0; o < n; o++ {
		a.matchIn[o] = -1
	}
	for in, g := range grants {
		if g != NoGrant {
			a.matchIn[cands[in][g].Output] = in
		}
	}
	for in := 0; in < n && in < len(cands); in++ {
		if grants[in] != NoGrant || len(cands[in]) == 0 {
			continue
		}
		for o := 0; o < n; o++ {
			a.visited[o] = false
		}
		a.tryAugment(cands, grants, in)
	}
}

// tryAugment searches for an augmenting path from input in. It is a
// method (not a recursive closure) so the per-cycle Schedule call stays
// allocation-free — a self-referential `var try func(...)` closure is
// heap-allocated on every invocation.
func (a *PriorityArbiter) tryAugment(cands [][]Candidate, grants []int, in int) bool {
	n := len(grants)
	for ci, c := range cands[in] {
		o := c.Output
		if o < 0 || o >= n || a.visited[o] {
			continue
		}
		a.visited[o] = true
		if a.matchIn[o] < 0 || a.tryAugment(cands, grants, a.matchIn[o]) {
			a.matchIn[o] = in
			grants[in] = ci
			return true
		}
	}
	return false
}

// PIMArbiter reproduces the Autonet/DEC comparison algorithm (§5.1, after
// Anderson et al. [2]): parallel iterative matching with uniform random
// selection — outputs grant a random requester, inputs accept a random
// grant. Candidate sets should come from SelectRandom link schedulers so
// both the input-side choice and the output-side arbitration are random,
// as the paper describes.
type PIMArbiter struct {
	rng        *sim.RNG
	iterations int
	name       string

	inMatched   []bool
	outTaken    []bool
	reqIns      []int // scratch: requesting inputs for one output
	reqIdx      []int
	grantFor    []int // per output: input granted this iteration, or -1
	grantForIdx []int // per output: candidate index of that grant
	grantCount  []int // per input: grants received this iteration
}

// NewPIMArbiter returns a PIM arbiter running the given number of
// grant/accept iterations (Anderson et al. found log N iterations ≈
// convergence; the Autonet switch used a small fixed count).
func NewPIMArbiter(rng *sim.RNG, iterations int) *PIMArbiter {
	if iterations < 1 {
		iterations = 1
	}
	// Cache the name: Name() is called from experiment hot paths and a
	// per-call Sprintf allocates.
	return &PIMArbiter{rng: rng, iterations: iterations,
		name: fmt.Sprintf("autonet/%d-iter", iterations)}
}

// OutputSharing implements SwitchScheduler.
func (a *PIMArbiter) OutputSharing() bool { return false }

// Name implements SwitchScheduler.
func (a *PIMArbiter) Name() string { return a.name }

func (a *PIMArbiter) grow(n int) {
	if cap(a.inMatched) < n {
		a.inMatched = make([]bool, n)
		a.outTaken = make([]bool, n)
		a.grantFor = make([]int, n)
		a.grantForIdx = make([]int, n)
		a.grantCount = make([]int, n)
	}
	a.inMatched = a.inMatched[:n]
	a.outTaken = a.outTaken[:n]
	a.grantFor = a.grantFor[:n]
	a.grantForIdx = a.grantForIdx[:n]
	a.grantCount = a.grantCount[:n]
	for i := 0; i < n; i++ {
		a.inMatched[i] = false
		a.outTaken[i] = false
	}
}

// Schedule implements SwitchScheduler.
func (a *PIMArbiter) Schedule(cands [][]Candidate, grants []int) {
	n := len(grants)
	a.grow(n)
	for i := range grants {
		grants[i] = NoGrant
	}
	for iter := 0; iter < a.iterations; iter++ {
		// Grant phase — parallel, as in Anderson et al.: every free output
		// grants a uniformly random requester among unmatched inputs,
		// without knowing what other outputs grant. Several outputs may
		// grant the same input; the collisions are what make multiple
		// iterations worthwhile (PIM converges in O(log N) expected
		// iterations).
		for in := 0; in < n; in++ {
			a.grantCount[in] = 0
		}
		for o := 0; o < n; o++ {
			a.grantFor[o] = -1
			if a.outTaken[o] {
				continue
			}
			a.reqIns = a.reqIns[:0]
			a.reqIdx = a.reqIdx[:0]
			for in := 0; in < n && in < len(cands); in++ {
				if a.inMatched[in] {
					continue
				}
				for ci, c := range cands[in] {
					if c.Output == o {
						a.reqIns = append(a.reqIns, in)
						a.reqIdx = append(a.reqIdx, ci)
						break
					}
				}
			}
			if len(a.reqIns) == 0 {
				continue
			}
			k := a.rng.Intn(len(a.reqIns))
			a.grantFor[o] = a.reqIns[k]
			a.grantForIdx[o] = a.reqIdx[k]
			a.grantCount[a.reqIns[k]]++
		}
		// Accept phase: each input granted by one or more outputs accepts
		// one uniformly at random.
		progress := false
		for in := 0; in < n; in++ {
			if a.inMatched[in] || a.grantCount[in] == 0 {
				continue
			}
			pick := a.rng.Intn(a.grantCount[in])
			for o := 0; o < n; o++ {
				if a.grantFor[o] != in {
					continue
				}
				if pick == 0 {
					grants[in] = a.grantForIdx[o]
					a.inMatched[in] = true
					a.outTaken[o] = true
					progress = true
					break
				}
				pick--
			}
		}
		if !progress {
			break
		}
	}
}

// PerfectSwitch is the idealized reference of §5.1: internal bandwidth N
// times the link bandwidth, so output conflicts never occur and every
// input transmits its best candidate every cycle. It bounds delay and
// jitter from below and utilization from above.
type PerfectSwitch struct{}

// OutputSharing implements SwitchScheduler.
func (PerfectSwitch) OutputSharing() bool { return true }

// Name implements SwitchScheduler.
func (PerfectSwitch) Name() string { return "perfect" }

// Schedule implements SwitchScheduler.
func (PerfectSwitch) Schedule(cands [][]Candidate, grants []int) {
	for in := range grants {
		if in < len(cands) && len(cands[in]) > 0 {
			grants[in] = 0 // candidates arrive best-first
		} else {
			grants[in] = NoGrant
		}
	}
}
