// Package sched implements the MMR's two-level scheduling framework: the
// per-input-port link schedulers that nominate candidate virtual channels
// each flit cycle (§4.3), and the switch schedulers that arbitrate output
// conflicts and set the crossbar (§4.4). It provides the four schemes the
// paper evaluates (§5.1): dynamically biased priorities, fixed priorities,
// the Autonet/DEC randomized matching of Anderson et al., and the perfect
// switch that lower-bounds delay and jitter.
package sched

// Phase orders candidates by service class before priority, encoding the
// link scheduler's service order (§3.4, §4.3): control packets first, then
// guaranteed stream bandwidth (CBR allocations and VBR permanent
// bandwidth), then VBR excess bandwidth, then best-effort packets.
type Phase int

// Service phases in strictly decreasing precedence.
const (
	PhaseControl Phase = iota
	PhaseGuaranteed
	PhaseExcess
	PhaseBestEffort
)

// Candidate is one virtual channel a link scheduler offers to the switch
// scheduler for the next flit cycle.
type Candidate struct {
	Input    int     // physical input port
	VC       int     // virtual channel on that port
	Output   int     // requested output port (direct channel mapping)
	Phase    Phase   // service class precedence
	Priority float64 // within-phase priority; larger wins
}

// Better reports whether a should be served before b: lower phase first,
// then higher priority, then (for determinism) lower input and VC.
func Better(a, b Candidate) bool {
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Input != b.Input {
		return a.Input < b.Input
	}
	return a.VC < b.VC
}

// NoGrant marks an input that won nothing this flit cycle.
const NoGrant = -1

// SwitchScheduler computes, for one flit cycle, which candidate (if any)
// each input port transmits. grants[in] receives the index into cands[in]
// of the winning candidate, or NoGrant. Implementations must not retain
// cands.
type SwitchScheduler interface {
	// Schedule arbitrates the candidates. len(grants) is the port count and
	// must equal len(cands).
	Schedule(cands [][]Candidate, grants []int)
	// OutputSharing reports whether several inputs may win the same output
	// in one cycle (true only for the perfect switch, §5.1).
	OutputSharing() bool
	// Name identifies the scheme in experiment output.
	Name() string
}
