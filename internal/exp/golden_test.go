package exp

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_figures.json from the current implementation")

// goldenOpts is a shortened but fully deterministic measurement window:
// small enough for CI, long enough that every figure has non-trivial
// steady-state samples at every load.
func goldenOpts() Options {
	return Options{Warmup: 2_000, Measure: 10_000, Seed: 1, Loads: []float64{0.3, 0.9}}
}

// goldenPoint is one (series, x) → y sample, with y stored as IEEE-754
// bits so the comparison is exact, not within-epsilon.
type goldenPoint struct {
	Figure string  `json:"figure"`
	Series string  `json:"series"`
	X      float64 `json:"x"`
	YBits  uint64  `json:"y_bits"`
	Y      float64 `json:"y"` // human-readable; YBits is authoritative
}

// collectGolden runs Figures 3-5 at the fixed seed and flattens every
// series point.
func collectGolden(t *testing.T) []goldenPoint {
	t.Helper()
	var pts []goldenPoint
	for _, run := range []struct {
		name string
		fn   func(Options) (*FigureResult, error)
	}{
		{"Figure3", Figure3},
		{"Figure4", Figure4},
		{"Figure5", Figure5},
	} {
		res, err := run.fn(goldenOpts())
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		for _, fig := range res.Figures {
			for _, s := range fig.Series {
				for _, p := range s.Points {
					pts = append(pts, goldenPoint{
						Figure: fig.Title,
						Series: s.Name,
						X:      p.X,
						YBits:  math.Float64bits(p.Y),
						Y:      p.Y,
					})
				}
			}
		}
	}
	return pts
}

// TestFiguresGolden locks the §5 figure series to bit-identical values at
// a fixed seed. Any change to the flit cycle — pooling, scheduling order,
// iteration order — that perturbs a single sample fails this test; run
// with -update only for changes that intentionally alter the model.
func TestFiguresGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure regeneration is not -short")
	}
	path := filepath.Join("testdata", "golden_figures.json")
	got := collectGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden points to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want []goldenPoint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden point count changed: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Figure != w.Figure || g.Series != w.Series || g.X != w.X {
			t.Fatalf("point %d identity changed: got %s/%s@%v, want %s/%s@%v",
				i, g.Figure, g.Series, g.X, w.Figure, w.Series, w.X)
		}
		if g.YBits != w.YBits {
			t.Errorf("%s / %s @ %v: y changed: got %v (bits %#x), want %v (bits %#x)",
				g.Figure, g.Series, g.X, g.Y, g.YBits, w.Y, w.YBits)
		}
	}
}
