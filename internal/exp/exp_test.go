package exp

import (
	"math"
	"strings"
	"testing"

	"mmr/internal/router"
)

// tinyOpts keeps harness tests fast; shapes are asserted loosely.
func tinyOpts() Options {
	return Options{Warmup: 1_000, Measure: 6_000, Seed: 1, Loads: []float64{0.4, 0.8}}
}

func TestSchemeVariants(t *testing.T) {
	for _, name := range []string{"biased", "fixed", "autonet", "perfect"} {
		v := SchemeVariant(name, 4)
		if v.Name == "" || v.Mutate == nil {
			t.Fatalf("variant %q malformed", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheme did not panic")
		}
	}()
	SchemeVariant("nope", 4)
}

func TestRunPointProducesMetrics(t *testing.T) {
	p, err := RunPoint(paperBase(), 0.5, SchemeVariant("biased", 8), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if p.M.FlitsDelivered == 0 || p.Offered < 0.45 || p.Offered > 0.55 {
		t.Fatalf("point malformed: delivered=%d offered=%.3f", p.M.FlitsDelivered, p.Offered)
	}
}

func TestGridFigureProjection(t *testing.T) {
	g, err := RunGrid(paperBase(), []float64{0.3, 0.6},
		[]Variant{SchemeVariant("biased", 2), SchemeVariant("perfect", 2)}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := g.Figure("t", "y", MetricUtilization)
	if len(fig.Series) != 2 {
		t.Fatalf("expected 2 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Points))
		}
	}
	// Utilization tracks offered load below saturation.
	if y, _ := fig.Series[0].YAt(0.6); y < 0.5 {
		t.Fatalf("utilization at 0.6 load = %.3f", y)
	}
}

func TestFigure5ShapeHolds(t *testing.T) {
	res, err := Figure5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) < 2 {
		t.Fatal("figure 5 must have delay and jitter panels")
	}
	jit := res.Figures[1]
	perfect, _ := jit.FindSeries("perfect").YAt(0.8)
	biased, _ := jit.FindSeries("8C biased").YAt(0.8)
	fixed, _ := jit.FindSeries("8C fixed").YAt(0.8)
	// The paper's central jitter ordering at high load.
	if !(perfect <= biased && biased <= fixed) {
		t.Fatalf("jitter ordering violated: perfect=%.3f biased=%.3f fixed=%.3f", perfect, biased, fixed)
	}
}

func TestUtilizationSweepMoreCandidatesHelp(t *testing.T) {
	opts := tinyOpts()
	opts.Loads = nil // UtilizationSweep has its own loads
	res, err := UtilizationSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	u1, _ := fig.FindSeries("1C biased").YAt(0.95)
	u8, _ := fig.FindSeries("8C biased").YAt(0.95)
	if u8 <= u1 {
		t.Fatalf("more candidates should raise utilization: 1C=%.3f 8C=%.3f", u1, u8)
	}
}

func TestClaimsRun(t *testing.T) {
	claims, err := RunClaims(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 6 {
		t.Fatalf("expected 6 claims, got %d", len(claims))
	}
	out := FormatClaims(claims)
	for _, id := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		if !strings.Contains(out, id) {
			t.Fatalf("claim %s missing from output", id)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	opts := tinyOpts()
	type abl struct {
		id string
		fn func() (*FigureResult, error)
	}
	cases := []abl{
		{"A4", func() (*FigureResult, error) { return AblationA4(opts) }},
		{"A7", func() (*FigureResult, error) { return AblationA7(opts) }},
		{"A8", func() (*FigureResult, error) { return AblationA8(), nil }},
		{"A9", func() (*FigureResult, error) { return AblationA9(opts) }},
	}
	for _, c := range cases {
		res, err := c.fn()
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		if res.ID != c.id || len(res.Figures) == 0 {
			t.Fatalf("%s malformed", c.id)
		}
		for _, f := range res.Figures {
			if len(f.Series) == 0 || f.FormatTable() == "" {
				t.Fatalf("%s produced empty figure", c.id)
			}
		}
	}
}

func TestAblationA8BankTradeoff(t *testing.T) {
	res := AblationA8()
	fig := res.Figures[0]
	cost := fig.FindSeries("read+write cost (phit times)")
	ok := fig.FindSeries("meets cycle budget (1=yes)")
	// One bank cannot meet the budget; eight banks can.
	if y, _ := ok.YAt(1); y != 0 {
		t.Fatal("1 bank should fail the cycle budget")
	}
	if y, _ := ok.YAt(8); y != 1 {
		t.Fatal("8 banks should meet the cycle budget")
	}
	c1, _ := cost.YAt(1)
	c8, _ := cost.YAt(8)
	if c1 <= c8 {
		t.Fatal("more banks must not cost more phit times")
	}
}

func TestFigureVBRShape(t *testing.T) {
	opts := tinyOpts()
	opts.Loads = []float64{0.3, 0.6}
	res, err := FigureVBR(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 2 {
		t.Fatal("want delay and jitter panels")
	}
	jit := res.Figures[1]
	lo, _ := jit.FindSeries("8C biased").YAt(0.3)
	hi, _ := jit.FindSeries("8C biased").YAt(0.6)
	if hi <= lo {
		t.Fatalf("VBR jitter should grow with load: %.2f → %.2f", lo, hi)
	}
}

func TestNetworkSweepShape(t *testing.T) {
	opts := tinyOpts()
	opts.Loads = []float64{0.1, 0.3}
	res, err := NetworkSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	acc, _ := fig.FindSeries("setup acceptance").YAt(0.1)
	if acc < 0.99 {
		t.Fatalf("light-load acceptance = %.3f", acc)
	}
	lat, _ := fig.FindSeries("latency (cycles)").YAt(0.1)
	if lat < 2 || lat > 20 {
		t.Fatalf("mesh latency = %.2f cycles", lat)
	}
}

// TestNetworkSweepGeneratedFabrics: the network sweep runs on the
// generated datacenter fabrics through Options.Topo, the figure title
// names the fabric (so a fat-tree figure can never masquerade as the
// goldened mesh), and light-load acceptance stays high on both
// generators. UGAL on the fat tree checks the route mode threads all
// the way through the sweep.
func TestNetworkSweepGeneratedFabrics(t *testing.T) {
	for _, tc := range []struct {
		topo  TopoSpec
		title string
	}{
		{TopoSpec{Kind: "fattree", FatTreeK: 4, Route: "ugal"}, "fat tree k=4"},
		{TopoSpec{Kind: "dragonfly", DragonflyA: 4, DragonflyP: 2, DragonflyH: 2}, "dragonfly a=4 p=2 h=2"},
	} {
		opts := tinyOpts()
		opts.Loads = []float64{0.1}
		opts.Topo = tc.topo
		res, err := NetworkSweep(opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.title, err)
		}
		fig := res.Figures[0]
		if !strings.Contains(fig.Title, tc.title) {
			t.Errorf("figure title %q does not name the fabric %q", fig.Title, tc.title)
		}
		if acc, ok := fig.FindSeries("setup acceptance").YAt(0.1); !ok || acc < 0.9 {
			t.Errorf("%s: light-load acceptance = %.3f", tc.title, acc)
		}
	}
}

// paperBase is the §5 router configuration.
func paperBase() router.Config { return router.PaperConfig() }

// TestNetworkSweepWorkerDeterminism: the network figure series are
// bit-identical (math.Float64bits) whether the simulator steps serially
// or across a worker pool — the parallel cycle may not perturb published
// curves at any worker count.
func TestNetworkSweepWorkerDeterminism(t *testing.T) {
	opts := tinyOpts()
	opts.Loads = []float64{0.2, 0.4}
	serial, err := NetworkSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NetWorkers = 4
	parallel, err := NetworkSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range serial.Figures[0].Series {
		p := parallel.Figures[0].Series[si]
		if len(p.Points) != len(s.Points) {
			t.Fatalf("series %q: %d vs %d points", s.Name, len(s.Points), len(p.Points))
		}
		for pi, sp := range s.Points {
			pp := p.Points[pi]
			if math.Float64bits(sp.X) != math.Float64bits(pp.X) || math.Float64bits(sp.Y) != math.Float64bits(pp.Y) {
				t.Errorf("series %q point %d diverged: serial (%v,%v) vs 4 workers (%v,%v)",
					s.Name, pi, sp.X, sp.Y, pp.X, pp.Y)
			}
		}
	}
}
