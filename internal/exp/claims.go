package exp

import (
	"fmt"
	"strings"

	"mmr/internal/router"
)

// Claim is one quantitative statement from §5.2's prose, checked against
// the reproduction. Absolute numbers are not expected to match a
// simulator rebuilt from the paper's text — Shape records the relation
// that must hold for the reproduction to support the paper's conclusion.
type Claim struct {
	ID       string
	Text     string // the paper's statement
	Paper    string // the paper's value
	Measured float64
	Unit     string
	Shape    string // the relation tested
	Holds    bool
}

// RunClaims evaluates the §5.2 spot checks.
func RunClaims(opts Options) ([]Claim, error) {
	base := router.PaperConfig()
	point := func(load float64, scheme string, cands int) (*router.Metrics, error) {
		p, err := RunPoint(base, load, SchemeVariant(scheme, cands), opts)
		if err != nil {
			return nil, err
		}
		return p.M, nil
	}

	b2, err := point(0.70, "biased", 2)
	if err != nil {
		return nil, err
	}
	f2, err := point(0.70, "fixed", 2)
	if err != nil {
		return nil, err
	}
	b8at70, err := point(0.70, "biased", 8)
	if err != nil {
		return nil, err
	}
	f8at90, err := point(0.90, "fixed", 8)
	if err != nil {
		return nil, err
	}
	b8at80, err := point(0.80, "biased", 8)
	if err != nil {
		return nil, err
	}
	b8at95, err := point(0.95, "biased", 8)
	if err != nil {
		return nil, err
	}

	claims := []Claim{
		{
			ID:       "C1",
			Text:     "with two candidates and at 70% load, the biased scheme produces an average delay of .82 microseconds",
			Paper:    "0.82 µs",
			Measured: b2.DelayMicros,
			Unit:     "µs",
			Shape:    "same order of magnitude (<2 µs)",
			Holds:    b2.DelayMicros < 2,
		},
		{
			ID:       "C2",
			Text:     "while with fixed priority we have ~5 microseconds (2C, 70%)",
			Paper:    "~5 µs",
			Measured: f2.TotalDelay.Mean() * base.Link.FlitCycleNanos() / 1e3,
			Unit:     "µs (incl. queueing)",
			Shape:    "fixed end-to-end delay exceeds biased",
			Holds:    f2.TotalDelay.Mean() > b2.TotalDelay.Mean(),
		},
		{
			ID:       "C3",
			Text:     "with 8 candidates delays for biased priorities are consistently in the range of .4-.6 microseconds",
			Paper:    "0.4-0.6 µs",
			Measured: b8at70.DelayMicros,
			Unit:     "µs",
			Shape:    "below 1 µs at 70% load",
			Holds:    b8at70.DelayMicros < 1,
		},
		{
			ID:       "C4",
			Text:     "the fixed priorities realize delays on the order of 1-2 microseconds (8C)",
			Paper:    "1-2 µs",
			Measured: f8at90.DelayMicros,
			Unit:     "µs",
			Shape:    "fixed 8C at 90% load in the ~1 µs range",
			Holds:    f8at90.DelayMicros > 0.4 && f8at90.DelayMicros < 5,
		},
		{
			ID:       "C5",
			Text:     "the biased priority scheme maintains extremely low jitter values ranging from .168 router cycles at 80% load to .51 router cycles at 95%",
			Paper:    "0.168 → 0.51 cycles",
			Measured: b8at80.Jitter.Mean(),
			Unit:     "cycles (at 80%)",
			Shape:    "jitter grows with load and stays in single-digit cycles",
			Holds:    b8at80.Jitter.Mean() < 10 && b8at95.Jitter.Mean() > b8at80.Jitter.Mean(),
		},
		{
			ID:       "C6",
			Text:     "Saturation does not appear to occur before 95% load (biased, 8 candidates)",
			Paper:    "stable at 95%",
			Measured: b8at95.SwitchUtilization,
			Unit:     "utilization at 95% offered",
			Shape:    "delivered ≥ 93% of switch bandwidth",
			Holds:    b8at95.SwitchUtilization >= 0.93,
		},
	}
	return claims, nil
}

// FormatClaims renders the claim table.
func FormatClaims(claims []Claim) string {
	var b strings.Builder
	for _, c := range claims {
		status := "HOLDS"
		if !c.Holds {
			status = "FAILS"
		}
		fmt.Fprintf(&b, "%-3s %-6s paper=%-18s measured=%.3f %s\n    shape: %s\n    %q\n",
			c.ID, status, c.Paper, c.Measured, c.Unit, c.Shape, c.Text)
	}
	return b.String()
}
