package exp

import (
	"mmr/internal/router"
	"mmr/internal/stats"
)

// FigureResult bundles the regenerated figure with the grid it came from.
type FigureResult struct {
	ID      string
	Figures []*stats.Figure
	Grid    *Grid
}

// Figure3 regenerates "Jitter vs. Offered Load: Fixed and Biased
// Priorities" — panel (a) with 1 and 2 candidates, panel (b) with 4 and
// 8 (§5.2, Figure 3).
func Figure3(opts Options) (*FigureResult, error) {
	return candidateSweep("fig3", "Jitter vs. Offered Load (Fig. 3)",
		"jitter (router cycles)", MetricJitter, opts)
}

// Figure4 regenerates "Delay vs. Offered Load: Fixed and Biased
// Priorities" — panels as in Figure 3 but plotting delay in microseconds
// (§5.2, Figure 4).
func Figure4(opts Options) (*FigureResult, error) {
	return candidateSweep("fig4", "Delay vs. Offered Load (Fig. 4)",
		"delay (microseconds)", MetricDelayMicros, opts)
}

func candidateSweep(id, title, ylabel string, metric func(*router.Metrics) float64, opts Options) (*FigureResult, error) {
	base := router.PaperConfig()
	panelA := []Variant{
		SchemeVariant("biased", 1), SchemeVariant("biased", 2),
		SchemeVariant("fixed", 1), SchemeVariant("fixed", 2),
	}
	panelB := []Variant{
		SchemeVariant("biased", 4), SchemeVariant("biased", 8),
		SchemeVariant("fixed", 4), SchemeVariant("fixed", 8),
	}
	res := &FigureResult{ID: id}
	gridAll := &Grid{}
	for i, panel := range [][]Variant{panelA, panelB} {
		g, err := RunGrid(base, opts.loads(), panel, opts)
		if err != nil {
			return nil, err
		}
		fig := g.Figure(title+panelName(i), ylabel, metric)
		res.Figures = append(res.Figures, fig)
		gridAll.Points = append(gridAll.Points, g.Points...)
	}
	res.Grid = gridAll
	return res, nil
}

func panelName(i int) string {
	if i == 0 {
		return " — 1 & 2 candidates"
	}
	return " — 4 & 8 candidates"
}

// Figure5 regenerates "Delay and Jitter vs. Offered Load: Fixed and
// Biased Priorities, Autonet, Perfect Switch" (§5.2, Figure 5): the four
// algorithms with 8 candidates.
func Figure5(opts Options) (*FigureResult, error) {
	base := router.PaperConfig()
	variants := []Variant{
		SchemeVariant("biased", 8),
		SchemeVariant("fixed", 8),
		SchemeVariant("autonet", 8),
		SchemeVariant("perfect", 8),
	}
	g, err := RunGrid(base, opts.loads(), variants, opts)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{ID: "fig5", Grid: g}
	res.Figures = append(res.Figures,
		g.Figure("Delay vs. Offered Load (Fig. 5a)", "delay (microseconds)", MetricDelayMicros),
		g.Figure("Jitter vs. Offered Load (Fig. 5b)", "jitter (router cycles)", MetricJitter),
		// Supplementary: end-to-end delay including source queueing. The
		// §5 head-of-VC delay under-reports schemes that push waiting into
		// upstream queues (fixed priorities starve connections whose
		// backlog then hides at the source interface); this projection is
		// survivorship-proof. See EXPERIMENTS.md.
		g.Figure("Supplementary: End-to-End Delay incl. Source Queueing", "delay (cycles)", MetricTotalDelayCycles),
		// Supplementary: per-connection mean jitter, weighting every
		// connection equally — the strongest separation between biased and
		// fixed priorities.
		g.Figure("Supplementary: Per-Connection Mean Jitter", "jitter (router cycles)", MetricConnJitter),
	)
	return res, nil
}

// UtilizationSweep backs the §5.2 observation that "using a larger number
// of candidates is effective in increasing switch utilization": switch
// utilization at high load for C ∈ {1, 2, 4, 8}.
func UtilizationSweep(opts Options) (*FigureResult, error) {
	base := router.PaperConfig()
	var variants []Variant
	for _, c := range []int{1, 2, 4, 8} {
		variants = append(variants, SchemeVariant("biased", c))
	}
	g, err := RunGrid(base, []float64{0.5, 0.7, 0.8, 0.9, 0.95}, variants, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:   "util",
		Grid: g,
		Figures: []*stats.Figure{
			g.Figure("Switch Utilization vs. Offered Load", "utilization", MetricUtilization),
		},
	}, nil
}
