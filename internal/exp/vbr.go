package exp

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/router"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/trace"
	"mmr/internal/traffic"
)

// FigureVBR is the evaluation §6 announces as the next step ("we now
// turn our attention to supported VBR traffic") and the follow-on MMR
// paper carries out with MPEG-2 traces: MPEG-like VBR streams (synthetic
// traces with GoP structure and scene burstiness) mixed with CBR
// telephony, swept over offered load, comparing the biased scheme with
// fixed priorities. Offered load counts VBR streams at their average
// rate; the concurrency factor lets peaks oversubscribe (§4.2).
func FigureVBR(opts Options) (*FigureResult, error) {
	res := &FigureResult{ID: "vbr"}
	delayFig := &stats.Figure{Title: "VBR (MPEG-like) Delay vs. Offered Load", XLabel: "offered load", YLabel: "delay (microseconds)"}
	jitterFig := &stats.Figure{Title: "VBR (MPEG-like) Jitter vs. Offered Load", XLabel: "offered load", YLabel: "jitter (router cycles)"}
	loads := opts.Loads
	if len(loads) == 0 {
		loads = []float64{0.2, 0.4, 0.6, 0.8}
	}
	for _, variant := range []string{"biased", "fixed"} {
		dSeries := delayFig.AddSeries("8C " + variant)
		jSeries := jitterFig.AddSeries("8C " + variant)
		for _, load := range loads {
			m, err := runVBRPoint(variant, load, opts)
			if err != nil {
				return nil, err
			}
			dSeries.Add(load, m.DelayMicros)
			jSeries.Add(load, m.Jitter.Mean())
		}
	}
	res.Figures = append(res.Figures, delayFig, jitterFig)
	return res, nil
}

// runVBRPoint simulates one VBR mix cell: half the offered load is
// trace-driven MPEG-like video at 6 Mbps average (3× peaks), half is CBR
// drawn from the paper's rate population.
func runVBRPoint(variant string, load float64, opts Options) (*router.Metrics, error) {
	cfg := router.PaperConfig()
	v := SchemeVariant(variant, 8)
	v.Mutate(&cfg)
	cfg.Seed = opts.Seed
	cfg.Concurrency = 2
	r, err := router.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(opts.Seed*7919 + uint64(load*1000))

	const videoRate = 6 * traffic.Mbps
	videoFrac := float64(videoRate) / float64(cfg.Link.Bandwidth)
	totalPorts := float64(cfg.Ports)
	videoDemand := load / 2 * totalPorts // in link fractions
	nVideo := int(videoDemand / videoFrac)

	// A small pool of distinct traces keeps generation cheap while giving
	// streams uncorrelated scene activity.
	var traces []*trace.Trace
	for i := 0; i < 8; i++ {
		tr, err := trace.Generate(trace.DefaultGenConfig(videoRate, 1800), rng)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	inLoad := make([]float64, cfg.Ports)
	outLoad := make([]float64, cfg.Ports)
	placed := 0
	for tries := 0; placed < nVideo && tries < nVideo*40; tries++ {
		in, out := rng.Intn(cfg.Ports), rng.Intn(cfg.Ports)
		if inLoad[in]+videoFrac > 1 || outLoad[out]+videoFrac > 1 {
			continue
		}
		tr := traces[placed%len(traces)]
		src := trace.NewSource(tr, cfg.Link, traffic.Rate(3*float64(videoRate)))
		_, err := r.EstablishWithSource(traffic.ConnSpec{
			Class: flit.ClassVBR, Rate: videoRate,
			PeakRate: traffic.Rate(3 * float64(videoRate)),
			In:       in, Out: out, Priority: rng.Intn(4),
		}, src)
		if err != nil {
			continue
		}
		inLoad[in] += videoFrac
		outLoad[out] += videoFrac
		placed++
	}
	if placed == 0 && nVideo > 0 {
		return nil, fmt.Errorf("exp: could not place any VBR stream at load %.2f", load)
	}

	// Fill the other half with CBR, respecting the ports already loaded.
	demand := 0.0
	target := load / 2 * totalPorts
	for fails := 0; demand < target && fails < 400; {
		rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		frac := float64(rate) / float64(cfg.Link.Bandwidth)
		in, out := rng.Intn(cfg.Ports), rng.Intn(cfg.Ports)
		if inLoad[in]+frac > 1 || outLoad[out]+frac > 1 {
			fails++
			continue
		}
		if _, err := r.Establish(traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate, In: in, Out: out}); err != nil {
			fails++
			continue
		}
		fails = 0
		inLoad[in] += frac
		outLoad[out] += frac
		demand += frac
	}
	return r.Run(opts.Warmup, opts.Measure), nil
}
