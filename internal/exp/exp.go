// Package exp is the experiment harness that regenerates every figure of
// the paper's evaluation (§5) plus the ablations DESIGN.md calls out. It
// is shared by cmd/mmrbench and the repository's benchmark suite, so the
// numbers in EXPERIMENTS.md, the CLI output and `go test -bench` all come
// from the same code path.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"mmr/internal/metrics"
	"mmr/internal/router"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/traffic"
)

// Options controls simulation length and reproducibility. The paper runs
// to steady state and measures over ~100,000 router cycles (§5).
type Options struct {
	Warmup  int64
	Measure int64
	Seed    uint64
	// Loads overrides the offered-load sweep; nil means PaperLoads.
	Loads []float64
	// NetWorkers sizes the network simulator's worker pool for the
	// multi-router sweeps (0 or 1 = serial). Any value produces
	// bit-identical figures; >1 trades barrier overhead for wall-clock
	// on multicore hosts.
	NetWorkers int
	// NetShards overrides the network simulator's shard count (0 =
	// one shard per worker). Like NetWorkers this is pure execution
	// strategy: any value produces bit-identical figures.
	NetShards int
	// MetricSink, when non-nil, receives the gathered metric snapshot of
	// every network-sweep load point before the simulator shuts down.
	// Figures never read these snapshots, so installing a sink cannot
	// perturb the goldened outputs.
	MetricSink func(load float64, snap *metrics.Snapshot)
	// NoIdleSkip disables activity gating in the simulators (router and
	// network). Gated and ungated runs are bit-identical — this is the
	// reference side of the equivalence tests and a debugging escape
	// hatch, never needed for figures.
	NoIdleSkip bool
	// Topo selects the fabric of the network-level sweep. The zero value
	// keeps the goldened 4×4 mesh.
	Topo TopoSpec
}

// loads returns the sweep to use.
func (o Options) loads() []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	return PaperLoads
}

// DefaultOptions mirrors the paper's measurement window.
func DefaultOptions() Options {
	return Options{Warmup: 20_000, Measure: 100_000, Seed: 1}
}

// QuickOptions is a shortened window for benchmarks and smoke runs; the
// curves keep their shape, with more noise at the lightest loads.
func QuickOptions() Options {
	return Options{Warmup: 5_000, Measure: 25_000, Seed: 1}
}

// PaperLoads is the offered-load sweep of Figures 3-5.
var PaperLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// Variant is one scheduling configuration under test.
type Variant struct {
	Name   string
	Mutate func(*router.Config)
}

// SchemeVariant builds the paper's four §5.1 configurations.
func SchemeVariant(name string, candidates int) Variant {
	switch name {
	case "biased":
		return Variant{
			Name: fmt.Sprintf("%dC biased", candidates),
			Mutate: func(c *router.Config) {
				c.Scheme = sched.Biased{}
				c.Arbiter = router.ArbPriority
				c.Selection = sched.SelectPriority
				c.MaxCandidates = candidates
			},
		}
	case "fixed":
		return Variant{
			Name: fmt.Sprintf("%dC fixed", candidates),
			Mutate: func(c *router.Config) {
				c.Scheme = sched.Fixed{}
				c.Arbiter = router.ArbPriority
				c.Selection = sched.SelectPriority
				c.MaxCandidates = candidates
			},
		}
	case "autonet":
		return Variant{
			Name: "DEC (Autonet)",
			Mutate: func(c *router.Config) {
				c.Scheme = sched.Biased{}
				c.Arbiter = router.ArbAutonet
				c.Selection = sched.SelectRandom
				c.MaxCandidates = candidates
			},
		}
	case "perfect":
		return Variant{
			Name: "perfect",
			Mutate: func(c *router.Config) {
				c.Scheme = sched.Biased{}
				c.Arbiter = router.ArbPerfect
				c.Selection = sched.SelectPriority
				c.MaxCandidates = candidates
			},
		}
	default:
		panic("exp: unknown scheme " + name)
	}
}

// Point is one simulated (load, variant) cell.
type Point struct {
	Load    float64 // target offered load
	Offered float64 // achieved offered load
	Variant string
	M       *router.Metrics
}

// Grid is a full sweep result.
type Grid struct {
	Points []Point
}

// RunPoint simulates one cell: generate the §5 workload at the target
// load, establish it, run to steady state, measure.
func RunPoint(base router.Config, load float64, v Variant, opts Options) (Point, error) {
	cfg := base
	v.Mutate(&cfg)
	cfg.Seed = opts.Seed
	cfg.NoIdleSkip = opts.NoIdleSkip
	r, err := router.New(cfg)
	if err != nil {
		return Point{}, err
	}
	wl, err := traffic.Generate(traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: load, MaxPortLoad: 1,
	}, sim.NewRNG(opts.Seed*1_000_003+uint64(load*1000)))
	if err != nil {
		return Point{}, err
	}
	if _, err := r.EstablishWorkload(wl); err != nil {
		return Point{}, fmt.Errorf("exp: establishing workload at load %.2f: %w", load, err)
	}
	m := r.Run(opts.Warmup, opts.Measure)
	return Point{Load: load, Offered: wl.OfferedLoad, Variant: v.Name, M: m}, nil
}

// RunGrid sweeps loads × variants. Cells are independent simulations
// with their own seeds, so they run on all CPUs; the result order is
// deterministic regardless of scheduling.
func RunGrid(base router.Config, loads []float64, variants []Variant, opts Options) (*Grid, error) {
	type cell struct {
		load float64
		v    Variant
	}
	var cells []cell
	for _, load := range loads {
		for _, v := range variants {
			cells = append(cells, cell{load, v})
		}
	}
	points := make([]Point, len(cells))
	errs := make([]error, len(cells))
	// Bounded worker pool: exactly min(NumCPU, cells) goroutines pulling
	// cell indices from a channel. Spawning one goroutine per cell and
	// gating on a semaphore would create hundreds of idle goroutines (and
	// their stacks) on large sweeps before any work starts.
	workers := runtime.NumCPU()
	if workers > len(cells) {
		workers = len(cells)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cells[i]
				points[i], errs[i] = RunPoint(base, c.load, c.v, opts)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Grid{Points: points}, nil
}

// Figure projects the grid onto one metric, producing a plottable figure
// with one series per variant.
func (g *Grid) Figure(title, ylabel string, metric func(*router.Metrics) float64) *stats.Figure {
	fig := &stats.Figure{Title: title, XLabel: "offered load", YLabel: ylabel}
	series := map[string]*stats.Series{}
	for _, p := range g.Points {
		s := series[p.Variant]
		if s == nil {
			s = fig.AddSeries(p.Variant)
			series[p.Variant] = s
		}
		s.Add(p.Load, metric(p.M))
	}
	return fig
}

// Standard metric projections used across figures.
var (
	// MetricJitter is Figure 3/5b's y axis: mean jitter in router cycles.
	MetricJitter = func(m *router.Metrics) float64 { return m.Jitter.Mean() }
	// MetricDelayMicros is Figure 4/5a's y axis: mean head-of-VC delay in
	// microseconds (§5's delay definition on the paper link).
	MetricDelayMicros = func(m *router.Metrics) float64 { return m.DelayMicros }
	// MetricDelayCycles reports the same delay in router cycles.
	MetricDelayCycles = func(m *router.Metrics) float64 { return m.Delay.Mean() }
	// MetricConnJitter averages per-connection mean jitter with equal
	// connection weight.
	MetricConnJitter = func(m *router.Metrics) float64 { return m.ConnMeanJitter.Mean() }
	// MetricUtilization is switch utilization (the §5.2 candidate-count
	// discussion).
	MetricUtilization = func(m *router.Metrics) float64 { return m.SwitchUtilization }
	// MetricTotalDelayCycles includes source queueing — the
	// survivorship-proof latency (see EXPERIMENTS.md).
	MetricTotalDelayCycles = func(m *router.Metrics) float64 { return m.TotalDelay.Mean() }
)
