package exp

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/network"
	"mmr/internal/routing"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// TopoSpec selects the fabric of the network-level sweep. The zero
// value — kind "" — is the goldened default, a 4×4 mesh; the generated
// datacenter fabrics (fat tree, dragonfly) and the non-minimal route
// modes are opt-in and produce their own figures.
type TopoSpec struct {
	Kind string // "", "mesh", "torus", "irregular", "fattree", "dragonfly"

	W, H          int // mesh/torus dimensions (0 → 4)
	Nodes, Degree int // irregular order and average degree (0 → 16, 3)
	Ports         int // mesh/torus/irregular inter-router ports (0 → 4)

	FatTreeK int // fat-tree arity k

	DragonflyA, DragonflyP, DragonflyH int // dragonfly a, p, h

	// Route selects the establishment routing over the fabric:
	// "" or "minimal" (EPB search), "valiant", "ugal".
	Route string
}

func (ts TopoSpec) describe() string {
	switch ts.Kind {
	case "", "mesh":
		return fmt.Sprintf("%d×%d mesh", ts.dim(ts.W), ts.dim(ts.H))
	case "torus":
		return fmt.Sprintf("%d×%d torus", ts.dim(ts.W), ts.dim(ts.H))
	case "irregular":
		n := ts.Nodes
		if n == 0 {
			n = 16
		}
		return fmt.Sprintf("irregular n=%d", n)
	case "fattree":
		return fmt.Sprintf("fat tree k=%d", ts.FatTreeK)
	case "dragonfly":
		return fmt.Sprintf("dragonfly a=%d p=%d h=%d", ts.DragonflyA, ts.DragonflyP, ts.DragonflyH)
	default:
		return ts.Kind
	}
}

func (ts TopoSpec) dim(v int) int {
	if v == 0 {
		return 4
	}
	return v
}

func (ts TopoSpec) ports() int {
	if ts.Ports == 0 {
		return 4
	}
	return ts.Ports
}

// build constructs the topology. Irregular wiring draws from an RNG
// derived from the sweep seed, so the fabric is stable per seed.
func (ts TopoSpec) build(seed uint64) (*topology.Topology, error) {
	switch ts.Kind {
	case "", "mesh":
		return topology.Mesh(ts.dim(ts.W), ts.dim(ts.H), ts.ports())
	case "torus":
		return topology.Torus(ts.dim(ts.W), ts.dim(ts.H), ts.ports())
	case "irregular":
		n, deg := ts.Nodes, ts.Degree
		if n == 0 {
			n = 16
		}
		if deg == 0 {
			deg = 3
		}
		return topology.Irregular(n, ts.ports(), deg, sim.NewRNG(seed*7919+13))
	case "fattree":
		return topology.FatTree(ts.FatTreeK)
	case "dragonfly":
		return topology.Dragonfly(ts.DragonflyA, ts.DragonflyP, ts.DragonflyH)
	default:
		return nil, fmt.Errorf("exp: unknown topology kind %q", ts.Kind)
	}
}

func (ts TopoSpec) routeMode() routing.RouteMode {
	switch ts.Route {
	case "valiant":
		return routing.RouteValiant
	case "ugal":
		return routing.RouteUGAL
	default:
		return routing.RouteMinimal
	}
}

// NetworkSweep exercises the multi-router fabric the paper's router is
// built for (§1: clusters and LANs): a mesh of MMRs (or an opt-in
// generated fabric via Options.Topo) with EPB-established CBR
// connections at increasing total load, reporting end-to-end latency,
// jitter, setup acceptance and probe backtracking.
// This is the network-level experiment the paper defers to future work;
// the single-router trends (jitter bounded, latency ~hops below
// saturation) should survive multi-hop composition.
func NetworkSweep(opts Options) (*FigureResult, error) {
	fig := &stats.Figure{Title: fmt.Sprintf("Network (%s): End-to-End QoS vs. Load", opts.Topo.describe()),
		XLabel: "offered load per host", YLabel: ""}
	latency := fig.AddSeries("latency (cycles)")
	jitter := fig.AddSeries("jitter (cycles)")
	accept := fig.AddSeries("setup acceptance")
	backs := fig.AddSeries("probe backtracks/setup")

	loads := opts.Loads
	if len(loads) == 0 {
		loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	for _, load := range loads {
		st, err := runNetworkPoint(load, opts)
		if err != nil {
			return nil, err
		}
		// AddAccum skips empty accumulators instead of plotting their
		// fake-zero Mean(): a load point where nothing was delivered (or
		// no setup ever backtracked) leaves a gap, not a bogus 0.
		latency.AddAccum(load, &st.Latency)
		jitter.AddAccum(load, &st.Jitter)
		accept.Add(load, st.AcceptanceRate())
		backs.AddAccum(load, &st.SetupBacktracks)
	}
	return &FigureResult{ID: "net", Figures: []*stats.Figure{fig}}, nil
}

// runNetworkPoint opens connections between random distinct hosts until
// each host's injection reaches the target fraction of its link, then
// measures steady state.
func runNetworkPoint(load float64, opts Options) (*network.Stats, error) {
	tp, err := opts.Topo.build(opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig(tp)
	cfg.Route = opts.Topo.routeMode()
	cfg.VCs = 64
	cfg.Seed = opts.Seed
	cfg.Workers = opts.NetWorkers
	cfg.Shards = opts.NetShards
	cfg.NoIdleSkip = opts.NoIdleSkip
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	defer n.Shutdown()
	rng := sim.NewRNG(opts.Seed*104729 + uint64(load*1000))
	inj := make([]float64, tp.Nodes)
	for fails := 0; fails < 300; {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		frac := float64(rate) / float64(cfg.Link.Bandwidth)
		if src == dst || inj[src]+frac > load {
			fails++
			continue
		}
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}); err != nil {
			fails++
			continue
		}
		fails = 0
		inj[src] += frac
		// Stop when every host is near its target.
		done := true
		for _, v := range inj {
			if v < load-0.01 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if n.Stats().SetupAccepted == 0 {
		return nil, fmt.Errorf("exp: no connections established at load %.2f", load)
	}
	n.Run(opts.Warmup)
	n.ResetStats()
	n.Run(opts.Measure)
	if opts.MetricSink != nil {
		opts.MetricSink(load, n.GatherMetrics())
	}
	return n.Stats(), nil
}
