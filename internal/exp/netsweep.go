package exp

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/network"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// NetworkSweep exercises the multi-router fabric the paper's router is
// built for (§1: clusters and LANs): a 4×4 mesh of MMRs with EPB-
// established CBR connections at increasing total load, reporting
// end-to-end latency, jitter, setup acceptance and probe backtracking.
// This is the network-level experiment the paper defers to future work;
// the single-router trends (jitter bounded, latency ~hops below
// saturation) should survive multi-hop composition.
func NetworkSweep(opts Options) (*FigureResult, error) {
	fig := &stats.Figure{Title: "Network (4×4 mesh): End-to-End QoS vs. Load", XLabel: "offered load per host", YLabel: ""}
	latency := fig.AddSeries("latency (cycles)")
	jitter := fig.AddSeries("jitter (cycles)")
	accept := fig.AddSeries("setup acceptance")
	backs := fig.AddSeries("probe backtracks/setup")

	loads := opts.Loads
	if len(loads) == 0 {
		loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	for _, load := range loads {
		st, err := runNetworkPoint(load, opts)
		if err != nil {
			return nil, err
		}
		// AddAccum skips empty accumulators instead of plotting their
		// fake-zero Mean(): a load point where nothing was delivered (or
		// no setup ever backtracked) leaves a gap, not a bogus 0.
		latency.AddAccum(load, &st.Latency)
		jitter.AddAccum(load, &st.Jitter)
		accept.Add(load, st.AcceptanceRate())
		backs.AddAccum(load, &st.SetupBacktracks)
	}
	return &FigureResult{ID: "net", Figures: []*stats.Figure{fig}}, nil
}

// runNetworkPoint opens connections between random distinct hosts until
// each host's injection reaches the target fraction of its link, then
// measures steady state.
func runNetworkPoint(load float64, opts Options) (*network.Stats, error) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		return nil, err
	}
	cfg := network.DefaultConfig(tp)
	cfg.VCs = 64
	cfg.Seed = opts.Seed
	cfg.Workers = opts.NetWorkers
	cfg.NoIdleSkip = opts.NoIdleSkip
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	defer n.Shutdown()
	rng := sim.NewRNG(opts.Seed*104729 + uint64(load*1000))
	inj := make([]float64, tp.Nodes)
	for fails := 0; fails < 300; {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		frac := float64(rate) / float64(cfg.Link.Bandwidth)
		if src == dst || inj[src]+frac > load {
			fails++
			continue
		}
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}); err != nil {
			fails++
			continue
		}
		fails = 0
		inj[src] += frac
		// Stop when every host is near its target.
		done := true
		for _, v := range inj {
			if v < load-0.01 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if n.Stats().SetupAccepted == 0 {
		return nil, fmt.Errorf("exp: no connections established at load %.2f", load)
	}
	n.Run(opts.Warmup)
	n.ResetStats()
	n.Run(opts.Measure)
	if opts.MetricSink != nil {
		opts.MetricSink(load, n.GatherMetrics())
	}
	return n.Stats(), nil
}
