package exp

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/network"
	"mmr/internal/router"
	"mmr/internal/routing"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/topology"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// AblationA1 sweeps the physical link speed (§5: "The behavior for slower
// link speeds, such as 622 Mbps and 155 Mbps, were qualitatively the
// same"). Jitter in router cycles should be nearly speed-independent.
func AblationA1(opts Options) (*FigureResult, error) {
	speeds := []traffic.Rate{155 * traffic.Mbps, 622 * traffic.Mbps, 1.24 * traffic.Gbps}
	grid := &Grid{}
	for _, speed := range speeds {
		base := router.PaperConfig()
		base.Link.Bandwidth = speed
		name := fmt.Sprintf("biased 8C @ %v", speed)
		for _, load := range []float64{0.3, 0.5, 0.7, 0.9} {
			v := SchemeVariant("biased", 8)
			v.Name = name
			p, err := RunPoint(base, load, v, opts)
			if err != nil {
				return nil, err
			}
			grid.Points = append(grid.Points, p)
		}
	}
	fig := grid.Figure("A1: Jitter vs. Load across Link Speeds", "jitter (router cycles)", MetricJitter)
	return &FigureResult{ID: "A1", Grid: grid, Figures: []*stats.Figure{fig}}, nil
}

// AblationA2 is the candidate-count vs switch-utilization sweep (§4.4,
// §5.2); it reuses UtilizationSweep and adds C=16 to show saturation of
// the benefit.
func AblationA2(opts Options) (*FigureResult, error) {
	base := router.PaperConfig()
	var variants []Variant
	for _, c := range []int{1, 2, 4, 8, 16} {
		variants = append(variants, SchemeVariant("biased", c))
	}
	g, err := RunGrid(base, []float64{0.7, 0.9, 0.95}, variants, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{ID: "A2", Grid: g, Figures: []*stats.Figure{
		g.Figure("A2: Candidates vs. Switch Utilization", "utilization", MetricUtilization),
		g.Figure("A2: Candidates vs. Delay", "delay (µs)", MetricDelayMicros),
	}}, nil
}

// AblationA3 sweeps virtual channels per port (§3.2 motivates large VC
// counts; fewer VCs exhaust under many connections).
func AblationA3(opts Options) (*FigureResult, error) {
	grid := &Grid{}
	for _, vcs := range []int{64, 128, 256} {
		base := router.PaperConfig()
		base.VCM.VirtualChannels = vcs
		v := SchemeVariant("biased", 8)
		v.Name = fmt.Sprintf("V=%d", vcs)
		for _, load := range []float64{0.5, 0.7, 0.9} {
			p, err := RunPoint(base, load, v, opts)
			if err != nil {
				// Few VCs can make establishment fail at high load — that
				// IS the result; record a zero-delivery point.
				p = Point{Load: load, Variant: v.Name, M: &router.Metrics{}}
			}
			grid.Points = append(grid.Points, p)
		}
	}
	return &FigureResult{ID: "A3", Grid: grid, Figures: []*stats.Figure{
		grid.Figure("A3: VCs per Port vs. Jitter", "jitter (router cycles)", MetricJitter),
	}}, nil
}

// AblationA4 sweeps the round multiplier K (§4.1: larger K gives finer
// allocation granularity but longer rounds and hence more jitter
// headroom).
func AblationA4(opts Options) (*FigureResult, error) {
	grid := &Grid{}
	for _, k := range []int{1, 2, 4, 8} {
		base := router.PaperConfig()
		base.K = k
		v := SchemeVariant("biased", 8)
		v.Name = fmt.Sprintf("K=%d", k)
		for _, load := range []float64{0.5, 0.7, 0.9} {
			p, err := RunPoint(base, load, v, opts)
			if err != nil {
				return nil, err
			}
			grid.Points = append(grid.Points, p)
		}
	}
	return &FigureResult{ID: "A4", Grid: grid, Figures: []*stats.Figure{
		grid.Figure("A4: Round Multiplier K vs. Jitter", "jitter (router cycles)", MetricJitter),
		grid.Figure("A4: Round Multiplier K vs. Delay", "delay (µs)", MetricDelayMicros),
	}}, nil
}

// AblationA5 sweeps the VBR concurrency factor (§4.2): higher factors
// admit more VBR connections (better utilization) at the cost of weaker
// peak-bandwidth assurance (worse delay under simultaneous peaks).
func AblationA5(opts Options) (*FigureResult, error) {
	fig := &stats.Figure{Title: "A5: VBR Concurrency Factor", XLabel: "concurrency factor", YLabel: ""}
	admittedSeries := fig.AddSeries("connections admitted")
	delaySeries := fig.AddSeries("mean delay (cycles)")
	for _, cf := range []float64{1, 1.5, 2, 3} {
		cfg := router.PaperConfig()
		cfg.Concurrency = cf
		cfg.Admission = router.AdmitAllocation
		r, err := router.New(cfg)
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(opts.Seed)
		admitted := 0
		for i := 0; i < 400; i++ {
			spec := traffic.ConnSpec{
				Class:    flit.ClassVBR,
				Rate:     traffic.PaperRates[rng.Intn(len(traffic.PaperRates))],
				In:       rng.Intn(cfg.Ports),
				Out:      rng.Intn(cfg.Ports),
				Priority: rng.Intn(4),
			}
			spec.PeakRate = traffic.Rate(3 * float64(spec.Rate))
			if _, err := r.Establish(spec); err == nil {
				admitted++
			}
		}
		m := r.Run(opts.Warmup, opts.Measure)
		admittedSeries.Add(cf, float64(admitted))
		delaySeries.Add(cf, m.Delay.Mean())
	}
	return &FigureResult{ID: "A5", Figures: []*stats.Figure{fig}}, nil
}

// AblationA6 mixes best-effort traffic with a CBR workload (§3.4, §6):
// streams must keep their QoS while best-effort latency degrades
// gracefully as its load grows.
func AblationA6(opts Options) (*FigureResult, error) {
	fig := &stats.Figure{Title: "A6: Hybrid CBR + Best-Effort", XLabel: "best-effort packets/cycle/port", YLabel: ""}
	cbrDelay := fig.AddSeries("CBR delay (cycles)")
	cbrJitter := fig.AddSeries("CBR jitter (cycles)")
	beLatency := fig.AddSeries("best-effort latency (cycles)")
	for _, beRate := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		cfg := router.PaperConfig()
		r, err := router.New(cfg)
		if err != nil {
			return nil, err
		}
		wl, err := traffic.Generate(traffic.WorkloadConfig{
			Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
			TargetLoad: 0.6, MaxPortLoad: 1,
		}, sim.NewRNG(opts.Seed))
		if err != nil {
			return nil, err
		}
		if _, err := r.EstablishWorkload(wl); err != nil {
			return nil, err
		}
		if beRate > 0 {
			for p := 0; p < cfg.Ports; p++ {
				if err := r.AddBestEffortFlow(p, (p+3)%cfg.Ports, beRate); err != nil {
					return nil, err
				}
			}
		}
		m := r.Run(opts.Warmup, opts.Measure)
		cbrDelay.Add(beRate, m.Delay.Mean())
		cbrJitter.Add(beRate, m.Jitter.Mean())
		beLatency.Add(beRate, m.BestEffortLatency.Mean())
	}
	return &FigureResult{ID: "A6", Figures: []*stats.Figure{fig}}, nil
}

// AblationA7 sweeps the Autonet/PIM iteration count.
func AblationA7(opts Options) (*FigureResult, error) {
	grid := &Grid{}
	for _, iters := range []int{1, 2, 4} {
		base := router.PaperConfig()
		base.ArbiterIters = iters
		v := SchemeVariant("autonet", 8)
		v.Name = fmt.Sprintf("autonet/%d-iter", iters)
		for _, load := range []float64{0.5, 0.7, 0.9} {
			p, err := RunPoint(base, load, v, opts)
			if err != nil {
				return nil, err
			}
			grid.Points = append(grid.Points, p)
		}
	}
	return &FigureResult{ID: "A7", Grid: grid, Figures: []*stats.Figure{
		grid.Figure("A7: PIM Iterations vs. Utilization", "utilization", MetricUtilization),
		grid.Figure("A7: PIM Iterations vs. Delay", "delay (µs)", MetricDelayMicros),
	}}, nil
}

// AblationA8 evaluates the VCM bank trade-off analytically (§3.2): phit
// times needed for one read + one write per flit cycle, versus the
// per-cycle budget of 8 phit times (128-bit flit, 16-bit banks).
func AblationA8() *FigureResult {
	fig := &stats.Figure{Title: "A8: VCM Interleaved Banks", XLabel: "banks", YLabel: ""}
	cost := fig.AddSeries("read+write cost (phit times)")
	ok := fig.AddSeries("meets cycle budget (1=yes)")
	for _, banks := range []int{1, 2, 4, 8, 16} {
		bm := vcm.NewBankModel(banks, 8)
		cost.Add(float64(banks), float64(bm.ConcurrentAccessPhits(1, 1)))
		val := 0.0
		if bm.MeetsCycleBudget() {
			val = 1
		}
		ok.Add(float64(banks), val)
	}
	return &FigureResult{ID: "A8", Figures: []*stats.Figure{fig}}
}

// AblationA10 compares four switch arbiters at 8 candidates: the MMR's
// priority grant/accept (with and without the maximum-matching
// augmentation), randomized PIM and rotating-pointer iSLIP — quantifying
// what each arbitration mechanism buys in delay and jitter.
func AblationA10(opts Options) (*FigureResult, error) {
	grid := &Grid{}
	variants := []Variant{
		SchemeVariant("biased", 8),
		{Name: "islip", Mutate: func(c *router.Config) {
			c.Scheme = sched.Biased{}
			c.Arbiter = router.ArbISLIP
			c.MaxCandidates = 8
		}},
		SchemeVariant("autonet", 8),
	}
	g, err := RunGrid(router.PaperConfig(), []float64{0.5, 0.7, 0.9, 0.95}, variants, opts)
	if err != nil {
		return nil, err
	}
	grid.Points = g.Points
	return &FigureResult{ID: "A10", Grid: grid, Figures: []*stats.Figure{
		grid.Figure("A10: Arbiter Comparison — Delay", "delay (µs)", MetricDelayMicros),
		grid.Figure("A10: Arbiter Comparison — Jitter", "jitter (router cycles)", MetricJitter),
		grid.Figure("A10: Arbiter Comparison — Utilization", "utilization", MetricUtilization),
	}}, nil
}

// AblationA11 contrasts the QoS-metric-aware biasing with plain
// age-based arbitration (the priority schemes of [7,20] the paper
// distinguishes itself from: service should depend on "the type of
// service guarantees rather than simply the time spent by the packet in
// the network"). Aggregate jitter alone does not separate the schemes —
// equalizing absolute waiting is good for aggregates — so the figure
// also reports the jitter of the fast (>=55 Mbps, video-class)
// connections, where the QoS metric directs the differentiation: under
// biasing a video stream's priority grows per inter-arrival, keeping its
// jitter low; under oldest-first it waits like everyone else.
func AblationA11(opts Options) (*FigureResult, error) {
	variants := []Variant{
		SchemeVariant("biased", 8),
		{Name: "oldest-first", Mutate: func(c *router.Config) {
			c.Scheme = sched.OldestFirst{}
			c.Arbiter = router.ArbPriority
			c.MaxCandidates = 8
		}},
		SchemeVariant("fixed", 8),
	}
	agg := &stats.Figure{Title: "A11: Priority Schemes — Aggregate Jitter", XLabel: "offered load", YLabel: "jitter (router cycles)"}
	fast := &stats.Figure{Title: "A11: Priority Schemes — Fast-Connection (>=55 Mbps) Jitter", XLabel: "offered load", YLabel: "jitter (router cycles)"}
	fastDelay := &stats.Figure{Title: "A11: Priority Schemes — Fast-Connection Delay", XLabel: "offered load", YLabel: "delay (cycles)"}
	for _, v := range variants {
		aggS := agg.AddSeries(v.Name)
		fastS := fast.AddSeries(v.Name)
		fdS := fastDelay.AddSeries(v.Name)
		for _, load := range []float64{0.5, 0.7, 0.9} {
			cfg := router.PaperConfig()
			v.Mutate(&cfg)
			cfg.Seed = opts.Seed
			r, err := router.New(cfg)
			if err != nil {
				return nil, err
			}
			wl, err := traffic.Generate(traffic.WorkloadConfig{
				Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
				TargetLoad: load, MaxPortLoad: 1,
			}, sim.NewRNG(opts.Seed*1_000_003+uint64(load*1000)))
			if err != nil {
				return nil, err
			}
			if _, err := r.EstablishWorkload(wl); err != nil {
				return nil, err
			}
			m := r.Run(opts.Warmup, opts.Measure)
			aggS.Add(load, m.Jitter.Mean())
			var fj, fd stats.Accumulator
			for i, c := range r.Connections() {
				if c.Spec.Rate >= 55*traffic.Mbps {
					j, d := m.ConnJitter[i], m.ConnDelay[i]
					fj.Merge(&j)
					fd.Merge(&d)
				}
			}
			fastS.Add(load, fj.Mean())
			fdS.Add(load, fd.Mean())
		}
	}
	return &FigureResult{ID: "A11", Figures: []*stats.Figure{agg, fast, fastDelay}}, nil
}

// AblationA9 compares EPB with a greedy (no-backtracking) probe on
// irregular topologies (§3.5): acceptance probability as connection load
// grows. Greedy gives up at the first node whose profitable links are all
// busy; EPB keeps searching every minimal path.
func AblationA9(opts Options) (*FigureResult, error) {
	fig := &stats.Figure{Title: "A9: EPB vs. Greedy Setup on an Irregular Network", XLabel: "connections attempted", YLabel: "acceptance rate"}
	epbSeries := fig.AddSeries("EPB")
	greedySeries := fig.AddSeries("greedy (no backtracking)")

	// The workload must make INTERIOR links the scarce resource —
	// backtracking cannot conjure host-port capacity, so uniform random
	// endpoints (where every connection consumes a host link) would
	// measure admission, not routing. Endpoints are therefore drawn at
	// hop distance >= 3 with per-host fan-out bounded under the VC
	// budget, so rejections come from contested interior VCs where EPB's
	// exhaustive minimal-path search pays off.
	for _, greedy := range []bool{false, true} {
		rng := sim.NewRNG(opts.Seed + 7)
		tp, err := topology.Irregular(24, 6, 3, rng)
		if err != nil {
			return nil, err
		}
		d := routing.NewDists(tp)
		cfg := network.DefaultConfig(tp)
		cfg.VCs = 4
		cfg.Seed = opts.Seed
		n, err := network.New(cfg)
		if err != nil {
			return nil, err
		}
		perHost := make([]int, tp.Nodes)
		accepted, attempted := 0, 0
		for attempted < 120 {
			src := rng.Intn(tp.Nodes)
			dst := rng.Intn(tp.Nodes)
			if src == dst || d.Between(src, dst) < 3 || perHost[src] >= cfg.VCs-1 {
				continue
			}
			attempted++
			spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 5 * traffic.Mbps}
			var ok bool
			if greedy {
				ok = greedyOpen(n, tp, src, dst, spec)
			} else {
				_, err := n.Open(src, dst, spec)
				ok = err == nil
			}
			if ok {
				accepted++
				perHost[src]++
			}
			if attempted%20 == 0 {
				series := epbSeries
				if greedy {
					series = greedySeries
				}
				series.Add(float64(attempted), float64(accepted)/float64(attempted))
			}
		}
	}
	return &FigureResult{ID: "A9", Figures: []*stats.Figure{fig}}, nil
}

// greedyOpen emulates a non-backtracking probe: it walks EPBStep choices
// but treats the first dead end as failure. Resources actually reserved
// are freed on failure by the network's own Open (we simply pre-check the
// path greedily, then Open along it; if the greedy walk fails, reject).
func greedyOpen(n *network.Network, tp *topology.Topology, src, dst int, spec traffic.ConnSpec) bool {
	d := routing.NewDists(tp)
	node := src
	var h routing.History
	for node != dst {
		port, ok := routing.EPBStep(tp, d, node, dst, &h, func(p int) bool {
			nb := tp.Neighbor(node, p)
			return n.FreeVCsAt(nb, tp.PeerPort(node, p)) > 0
		})
		if !ok {
			return false
		}
		node = tp.Neighbor(node, port)
		h.Reset() // fresh history at the next node; no backtracking state
	}
	_, err := n.Open(src, dst, spec)
	return err == nil
}
