package exp

import (
	"reflect"
	"testing"
)

// TestNetworkPointGatingEquivalence: a netsweep load point produces a
// byte-identical statistics snapshot with activity gating on (the
// default) and off (NoIdleSkip, the cmd/mmrnet -no-idle-skip escape
// hatch), at every worker count. reflect.DeepEqual over *network.Stats
// compares every accumulator's floating-point state exactly, so a single
// elided or replayed cycle anywhere in the simulation fails the test.
func TestNetworkPointGatingEquivalence(t *testing.T) {
	const load = 0.3
	opts := tinyOpts()

	ref := opts
	ref.NoIdleSkip = true
	refStats, err := runNetworkPoint(load, ref)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.FlitsDelivered == 0 {
		t.Fatalf("degenerate reference point: %+v", refStats)
	}
	for _, w := range []int{1, 2, 4} {
		gated := opts
		gated.NetWorkers = w
		st, err := runNetworkPoint(load, gated)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refStats, st) {
			t.Errorf("gated run (workers=%d) diverged from ungated:\nungated: %+v\ngated:   %+v", w, refStats, st)
		}
	}
}

// TestRunPointGatingEquivalence: the single-router experiment harness is
// likewise bit-identical with gating on and off — the goldened figures
// cannot depend on idle-cycle elision.
func TestRunPointGatingEquivalence(t *testing.T) {
	opts := tinyOpts()
	v := SchemeVariant("biased", 4)

	ref := opts
	ref.NoIdleSkip = true
	refPt, err := RunPoint(paperBase(), 0.2, v, ref)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := RunPoint(paperBase(), 0.2, v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refPt.M, pt.M) {
		t.Fatalf("gated RunPoint diverged from ungated:\nungated: %+v\ngated:   %+v", refPt.M, pt.M)
	}
}
