package admission

import (
	"fmt"
	"sort"
)

// Tenant quotas layer fabric-wide, per-client admission budgets on top
// of the per-link registers: a long-lived multi-tenant fabric must
// enforce admission fairness per application/client, not just globally,
// or one churning tenant starves the rest. Each tenant carries two
// budgets mirroring the link allocator's two registers — a session
// count and a total guaranteed-bandwidth allocation (cycles per round,
// summed per hop-independent demand, i.e. one charge per session) — and
// establishment, renegotiation, degradation and re-promotion all settle
// against them.
//
// The empty tenant name "" is the default tenant: usage is tracked
// (so fairness ordering still sees it) but it is unlimited unless a
// quota is explicitly set for it.

// TenantQuota is one tenant's admission budget. Zero fields mean
// unlimited.
type TenantQuota struct {
	MaxSessions   int // concurrent sessions (guaranteed or degraded); 0 = unlimited
	MaxGuaranteed int // total guaranteed cycles/round across sessions; 0 = unlimited
}

// TenantUsage is one tenant's current admission charge.
type TenantUsage struct {
	Sessions   int // live sessions: open, fault-broken awaiting restore, or degraded
	Guaranteed int // guaranteed cycles/round held (or held-for-restore) by those sessions
}

// TenantTable tracks quota and usage per tenant. It is not
// goroutine-safe: like the link allocators it lives on the network's
// serial control path.
type TenantTable struct {
	quotas map[string]TenantQuota
	usage  map[string]TenantUsage
}

// NewTenantTable returns an empty table: every tenant unlimited, no
// usage.
func NewTenantTable() *TenantTable {
	return &TenantTable{
		quotas: map[string]TenantQuota{},
		usage:  map[string]TenantUsage{},
	}
}

// SetQuota installs (or replaces) a tenant's budget. A zero quota
// removes the limit but keeps the tenant's usage tracking. Quotas may
// be set below current usage: existing sessions are never evicted, but
// new admissions (and re-promotions) are refused until usage drains
// under the new ceiling.
func (t *TenantTable) SetQuota(name string, q TenantQuota) {
	if q.MaxSessions < 0 || q.MaxGuaranteed < 0 {
		panic(fmt.Sprintf("admission: negative tenant quota %+v", q))
	}
	t.quotas[name] = q
}

// Quota returns a tenant's budget and whether one was explicitly set.
func (t *TenantTable) Quota(name string) (TenantQuota, bool) {
	q, ok := t.quotas[name]
	return q, ok
}

// Usage returns a tenant's current charge.
func (t *TenantTable) Usage(name string) TenantUsage { return t.usage[name] }

// Names returns every tenant with a quota or non-zero usage history,
// sorted — the only sanctioned iteration order, so callers stay
// deterministic.
func (t *TenantTable) Names() []string {
	seen := map[string]bool{}
	for name := range t.quotas {
		seen[name] = true
	}
	for name := range t.usage {
		seen[name] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CanAdmit reports whether a new session demanding guaranteed
// cycles/round fits the tenant's budgets.
func (t *TenantTable) CanAdmit(name string, guaranteed int) bool {
	q := t.quotas[name]
	u := t.usage[name]
	if q.MaxSessions > 0 && u.Sessions+1 > q.MaxSessions {
		return false
	}
	if q.MaxGuaranteed > 0 && u.Guaranteed+guaranteed > q.MaxGuaranteed {
		return false
	}
	return true
}

// AdmitSession charges a new session with its guaranteed demand,
// reporting success. On refusal nothing is charged.
func (t *TenantTable) AdmitSession(name string, guaranteed int) bool {
	if !t.CanAdmit(name, guaranteed) {
		return false
	}
	u := t.usage[name]
	u.Sessions++
	u.Guaranteed += guaranteed
	t.usage[name] = u
	return true
}

// ChargeGuaranteed re-charges guaranteed bandwidth to an existing
// session — the re-promotion path, where the session count is already
// held and only the bandwidth budget must re-fit. Reports success.
func (t *TenantTable) ChargeGuaranteed(name string, guaranteed int) bool {
	q := t.quotas[name]
	u := t.usage[name]
	if q.MaxGuaranteed > 0 && u.Guaranteed+guaranteed > q.MaxGuaranteed {
		return false
	}
	u.Guaranteed += guaranteed
	t.usage[name] = u
	return true
}

// AdjustGuaranteed changes an existing session's guaranteed charge by
// delta — the tenant side of §4.3's bandwidth renegotiation. Growth is
// quota-tested; shrinking always succeeds.
func (t *TenantTable) AdjustGuaranteed(name string, delta int) bool {
	q := t.quotas[name]
	u := t.usage[name]
	if delta > 0 && q.MaxGuaranteed > 0 && u.Guaranteed+delta > q.MaxGuaranteed {
		return false
	}
	u.Guaranteed += delta
	if u.Guaranteed < 0 {
		panic("admission: tenant guaranteed charge below zero")
	}
	t.usage[name] = u
	return true
}

// ReleaseGuaranteed refunds guaranteed bandwidth without ending the
// session — degradation keeps the session alive on best-effort service.
func (t *TenantTable) ReleaseGuaranteed(name string, guaranteed int) {
	u := t.usage[name]
	u.Guaranteed -= guaranteed
	if u.Guaranteed < 0 {
		panic("admission: tenant guaranteed release without matching charge")
	}
	t.usage[name] = u
}

// ReleaseSession ends a session that holds no guaranteed charge (close
// of a degraded session, or loss after degradation refunded it).
func (t *TenantTable) ReleaseSession(name string) {
	u := t.usage[name]
	u.Sessions--
	if u.Sessions < 0 {
		panic("admission: tenant session release without matching admit")
	}
	t.usage[name] = u
}

// ReleaseAll refunds both a session and its guaranteed charge — the
// graceful close of a guaranteed session.
func (t *TenantTable) ReleaseAll(name string, guaranteed int) {
	t.ReleaseGuaranteed(name, guaranteed)
	t.ReleaseSession(name)
}

// GuaranteedFraction returns how much of the tenant's guaranteed budget
// is in use, for fairness ordering. Unlimited tenants report their raw
// usage normalized to a nominal unit budget, so among unlimited tenants
// lower absolute usage still sorts first.
func (t *TenantTable) GuaranteedFraction(name string) float64 {
	q := t.quotas[name]
	u := t.usage[name]
	if q.MaxGuaranteed > 0 {
		return float64(u.Guaranteed) / float64(q.MaxGuaranteed)
	}
	return float64(u.Guaranteed)
}

// ResetUsage clears every tenant's usage, keeping quotas — checkpoint
// restore recomputes usage from the restored sessions.
func (t *TenantTable) ResetUsage() {
	for name := range t.usage {
		delete(t.usage, name)
	}
}

// RestoreSession re-applies one restored session's charge without any
// quota check: the session was admitted by the fabric that wrote the
// checkpoint, and a quota since lowered below live usage must refuse new
// admissions, not fail the restore.
func (t *TenantTable) RestoreSession(name string, guaranteed int) {
	u := t.usage[name]
	u.Sessions++
	u.Guaranteed += guaranteed
	t.usage[name] = u
}
