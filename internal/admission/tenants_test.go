package admission

import "testing"

func TestTenantDefaultUnlimited(t *testing.T) {
	tt := NewTenantTable()
	for i := 0; i < 1000; i++ {
		if !tt.AdmitSession("", 7) {
			t.Fatalf("default tenant refused at session %d", i)
		}
	}
	if u := tt.Usage(""); u.Sessions != 1000 || u.Guaranteed != 7000 {
		t.Fatalf("usage %+v, want 1000/7000", u)
	}
	if _, ok := tt.Quota(""); ok {
		t.Fatal("default tenant reports an explicit quota")
	}
}

func TestTenantSessionQuota(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("a", TenantQuota{MaxSessions: 2})
	if !tt.AdmitSession("a", 0) || !tt.AdmitSession("a", 0) {
		t.Fatal("admissions under the ceiling refused")
	}
	if tt.CanAdmit("a", 0) || tt.AdmitSession("a", 0) {
		t.Fatal("third session admitted over MaxSessions=2")
	}
	// Refusal charges nothing.
	if u := tt.Usage("a"); u.Sessions != 2 {
		t.Fatalf("usage %+v after refusal, want 2 sessions", u)
	}
	// Other tenants are unaffected.
	if !tt.AdmitSession("b", 0) {
		t.Fatal("unrelated tenant refused")
	}
	tt.ReleaseSession("a")
	if !tt.AdmitSession("a", 0) {
		t.Fatal("admission refused after a release opened headroom")
	}
}

func TestTenantGuaranteedQuota(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("a", TenantQuota{MaxGuaranteed: 10})
	if !tt.AdmitSession("a", 6) {
		t.Fatal("first admission refused")
	}
	if tt.AdmitSession("a", 5) {
		t.Fatal("admission accepted over MaxGuaranteed")
	}
	if !tt.AdmitSession("a", 4) {
		t.Fatal("exact-fit admission refused")
	}
	if u := tt.Usage("a"); u.Sessions != 2 || u.Guaranteed != 10 {
		t.Fatalf("usage %+v, want 2/10", u)
	}
	tt.ReleaseAll("a", 6)
	if u := tt.Usage("a"); u.Sessions != 1 || u.Guaranteed != 4 {
		t.Fatalf("usage %+v after release, want 1/4", u)
	}
}

func TestTenantChargeGuaranteed(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("a", TenantQuota{MaxSessions: 1, MaxGuaranteed: 4})
	if !tt.AdmitSession("a", 4) {
		t.Fatal("admission refused")
	}
	// Degradation refunds the bandwidth but keeps the session.
	tt.ReleaseGuaranteed("a", 4)
	if u := tt.Usage("a"); u.Sessions != 1 || u.Guaranteed != 0 {
		t.Fatalf("usage %+v after degrade refund, want 1/0", u)
	}
	// Re-promotion re-charges bandwidth only: the session count is at
	// its ceiling, but ChargeGuaranteed must not test it.
	if !tt.ChargeGuaranteed("a", 4) {
		t.Fatal("re-promotion charge refused despite bandwidth headroom")
	}
	if tt.ChargeGuaranteed("a", 1) {
		t.Fatal("charge accepted over MaxGuaranteed")
	}
}

func TestTenantAdjustGuaranteed(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("a", TenantQuota{MaxGuaranteed: 10})
	tt.AdmitSession("a", 4)
	if !tt.AdjustGuaranteed("a", 6) {
		t.Fatal("growth within quota refused")
	}
	if tt.AdjustGuaranteed("a", 1) {
		t.Fatal("growth accepted over quota")
	}
	if !tt.AdjustGuaranteed("a", -8) {
		t.Fatal("shrink refused")
	}
	if u := tt.Usage("a"); u.Guaranteed != 2 {
		t.Fatalf("guaranteed %d, want 2", u.Guaranteed)
	}
	// Shrinks always succeed even with no quota set.
	if !tt.AdjustGuaranteed("b", 0) {
		t.Fatal("no-op adjust refused")
	}
}

func TestTenantQuotaBelowUsage(t *testing.T) {
	tt := NewTenantTable()
	tt.AdmitSession("a", 8)
	tt.AdmitSession("a", 8)
	// Lowering the quota under live usage evicts nothing but refuses new
	// work until usage drains.
	tt.SetQuota("a", TenantQuota{MaxSessions: 1, MaxGuaranteed: 8})
	if u := tt.Usage("a"); u.Sessions != 2 || u.Guaranteed != 16 {
		t.Fatalf("usage %+v changed by SetQuota", u)
	}
	if tt.CanAdmit("a", 0) {
		t.Fatal("admission allowed over a lowered quota")
	}
	tt.ReleaseAll("a", 8)
	tt.ReleaseAll("a", 8)
	if !tt.CanAdmit("a", 8) {
		t.Fatal("admission refused after usage drained under the quota")
	}
}

func TestTenantGuaranteedFraction(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("a", TenantQuota{MaxGuaranteed: 8})
	tt.AdmitSession("a", 4)
	if f := tt.GuaranteedFraction("a"); f != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
	tt.AdmitSession("b", 3)
	if f := tt.GuaranteedFraction("b"); f != 3 {
		t.Fatalf("unlimited tenant fraction = %v, want raw usage 3", f)
	}
	if f := tt.GuaranteedFraction("never-seen"); f != 0 {
		t.Fatalf("unknown tenant fraction = %v, want 0", f)
	}
}

func TestTenantNamesSorted(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("zeta", TenantQuota{MaxSessions: 1})
	tt.AdmitSession("alpha", 0)
	tt.AdmitSession("mid", 0)
	got := tt.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestTenantRestoreBypassesQuota(t *testing.T) {
	tt := NewTenantTable()
	tt.SetQuota("a", TenantQuota{MaxSessions: 1, MaxGuaranteed: 4})
	// Checkpoint restore re-applies charges past the ceiling: the writer
	// admitted them, so the restore must not fail.
	tt.RestoreSession("a", 4)
	tt.RestoreSession("a", 4)
	if u := tt.Usage("a"); u.Sessions != 2 || u.Guaranteed != 8 {
		t.Fatalf("usage %+v after restore, want 2/8", u)
	}
	if tt.CanAdmit("a", 0) {
		t.Fatal("new admission allowed while restored usage exceeds quota")
	}
	tt.ResetUsage()
	if u := tt.Usage("a"); u.Sessions != 0 || u.Guaranteed != 0 {
		t.Fatalf("usage %+v after reset, want zero", u)
	}
	if _, ok := tt.Quota("a"); !ok {
		t.Fatal("ResetUsage dropped the quota")
	}
}

func TestTenantPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	tt := NewTenantTable()
	mustPanic("negative quota", func() { tt.SetQuota("a", TenantQuota{MaxSessions: -1}) })
	mustPanic("unmatched guaranteed release", func() { tt.ReleaseGuaranteed("a", 1) })
	mustPanic("unmatched session release", func() { tt.ReleaseSession("a") })
	tt.AdmitSession("a", 2)
	mustPanic("adjust below zero", func() { tt.AdjustGuaranteed("a", -3) })
}
