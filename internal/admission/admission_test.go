package admission

import (
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	cases := []struct {
		round, be   int
		concurrency float64
	}{
		{0, 0, 1},
		{10, -1, 1},
		{10, 10, 1},
		{10, 0, 0.5},
	}
	for _, c := range cases {
		if _, err := NewLinkAllocator(c.round, c.be, c.concurrency); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	if _, err := NewLinkAllocator(512, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewLinkAllocator(0, 0, 1)
}

func TestCBRAdmission(t *testing.T) {
	a := MustNewLinkAllocator(100, 0, 1)
	if !a.AdmitCBR(60) {
		t.Fatal("first admit failed")
	}
	if !a.CanAdmitCBR(40) || a.CanAdmitCBR(41) {
		t.Fatal("capacity boundary wrong")
	}
	if a.AdmitCBR(41) {
		t.Fatal("over-admission")
	}
	if !a.AdmitCBR(40) {
		t.Fatal("exact-fit admit failed")
	}
	if a.Guaranteed() != 100 || a.Connections() != 2 || a.GuaranteedLoad() != 1 {
		t.Fatalf("accounting wrong: %d cycles, %d conns", a.Guaranteed(), a.Connections())
	}
	a.ReleaseCBR(60)
	if a.Guaranteed() != 40 || a.Connections() != 1 {
		t.Fatal("release accounting wrong")
	}
	if a.AdmitCBR(0) {
		t.Fatal("zero-cycle connection admitted")
	}
}

func TestBestEffortReserve(t *testing.T) {
	// §4.2: "it is possible to reserve some bandwidth/round for best-effort
	// traffic in order to prevent starvation".
	a := MustNewLinkAllocator(100, 20, 1)
	if a.AdmitCBR(81) {
		t.Fatal("admission ate the best-effort reserve")
	}
	if !a.AdmitCBR(80) {
		t.Fatal("full guaranteed budget refused")
	}
}

func TestVBRAdmissionTwoConditions(t *testing.T) {
	a := MustNewLinkAllocator(100, 0, 2) // peaks may oversubscribe 2×
	if !a.AdmitVBR(30, 80) {
		t.Fatal("first VBR refused")
	}
	// Condition (i): permanent must fit the guaranteed budget.
	if a.CanAdmitVBR(71, 71) {
		t.Fatal("permanent overflow admitted")
	}
	// Condition (ii): peak total must stay under round × concurrency = 200.
	if !a.CanAdmitVBR(10, 120) || a.CanAdmitVBR(10, 121) {
		t.Fatal("peak boundary wrong")
	}
	if !a.AdmitVBR(10, 120) {
		t.Fatal("in-budget VBR refused")
	}
	if a.Guaranteed() != 40 || a.PeakTotal() != 200 {
		t.Fatalf("registers wrong: perm=%d peak=%d", a.Guaranteed(), a.PeakTotal())
	}
	a.ReleaseVBR(30, 80)
	if a.Guaranteed() != 10 || a.PeakTotal() != 120 || a.Connections() != 1 {
		t.Fatal("VBR release wrong")
	}
}

func TestVBRRejectsDegenerate(t *testing.T) {
	a := MustNewLinkAllocator(100, 0, 1)
	if a.CanAdmitVBR(0, 10) {
		t.Fatal("zero permanent admitted")
	}
	if a.CanAdmitVBR(10, 5) {
		t.Fatal("peak below permanent admitted")
	}
}

func TestCBRAndVBRShareGuaranteedBudget(t *testing.T) {
	a := MustNewLinkAllocator(100, 0, 3)
	a.AdmitCBR(50)
	if a.CanAdmitVBR(51, 60) {
		t.Fatal("VBR permanent admitted past shared budget")
	}
	if !a.AdmitVBR(50, 60) {
		t.Fatal("exact-fit VBR refused")
	}
}

func TestReleaseWithoutAdmitPanics(t *testing.T) {
	a := MustNewLinkAllocator(10, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.ReleaseCBR(1)
}

// Property: any admit/release sequence keeps the registers within bounds.
func TestAdmissionInvariantProperty(t *testing.T) {
	type open struct{ perm, peak int }
	f := func(ops []uint16) bool {
		a := MustNewLinkAllocator(128, 8, 1.5)
		var cbr []int
		var vbr []open
		for _, op := range ops {
			demand := int(op&0x3f) + 1
			switch op >> 14 {
			case 0:
				if a.AdmitCBR(demand) {
					cbr = append(cbr, demand)
				}
			case 1:
				if a.AdmitVBR(demand, demand*2) {
					vbr = append(vbr, open{demand, demand * 2})
				}
			case 2:
				if len(cbr) > 0 {
					a.ReleaseCBR(cbr[len(cbr)-1])
					cbr = cbr[:len(cbr)-1]
				}
			default:
				if len(vbr) > 0 {
					v := vbr[len(vbr)-1]
					a.ReleaseVBR(v.perm, v.peak)
					vbr = vbr[:len(vbr)-1]
				}
			}
			if a.Guaranteed() > 120 { // budget = 128-8
				return false
			}
			if float64(a.PeakTotal()) > 120*1.5 {
				return false
			}
			if a.Connections() != len(cbr)+len(vbr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
