// Package admission implements the MMR's bandwidth allocation mechanism
// (§4.2). Each output link carries two registers: the total guaranteed
// flit cycles per round allocated to connections (CBR demands plus VBR
// permanent bandwidths), and the total VBR peak bandwidth requested. A CBR
// connection is admitted while guaranteed allocation fits in a round; a
// VBR connection additionally requires the accumulated peak demand to stay
// under round length × concurrency factor — the knob trading QoS assurance
// against connection count and link utilization. A slice of each round can
// be held back for best-effort traffic so it cannot starve.
package admission

import "fmt"

// LinkAllocator is the per-output-link admission state.
type LinkAllocator struct {
	roundLen    int     // flit cycles per round (K × V, §4.1)
	beReserve   int     // cycles/round reserved for best-effort traffic
	concurrency float64 // VBR concurrency factor (set at power-on, §4.2)

	guaranteed int // register 1: Σ CBR allocations + VBR permanent
	peak       int // register 2: Σ VBR peak demands
	conns      int
}

// NewLinkAllocator returns an allocator for a link whose rounds are
// roundLen flit cycles long, reserving beReserve cycles per round for
// best-effort traffic, with the given VBR concurrency factor (values
// ≥ 1; 1 means peaks must be fully reservable, larger values oversubscribe).
func NewLinkAllocator(roundLen, beReserve int, concurrency float64) (*LinkAllocator, error) {
	if roundLen < 1 {
		return nil, fmt.Errorf("admission: round length %d < 1", roundLen)
	}
	if beReserve < 0 || beReserve >= roundLen {
		return nil, fmt.Errorf("admission: best-effort reserve %d outside [0,%d)", beReserve, roundLen)
	}
	if concurrency < 1 {
		return nil, fmt.Errorf("admission: concurrency factor %.2f < 1", concurrency)
	}
	return &LinkAllocator{roundLen: roundLen, beReserve: beReserve, concurrency: concurrency}, nil
}

// MustNewLinkAllocator is NewLinkAllocator for static configurations.
func MustNewLinkAllocator(roundLen, beReserve int, concurrency float64) *LinkAllocator {
	a, err := NewLinkAllocator(roundLen, beReserve, concurrency)
	if err != nil {
		panic(err)
	}
	return a
}

// budget returns the guaranteed cycles available to connections.
func (a *LinkAllocator) budget() int { return a.roundLen - a.beReserve }

// RoundLen returns the configured round length.
func (a *LinkAllocator) RoundLen() int { return a.roundLen }

// Guaranteed returns the currently allocated guaranteed cycles per round.
func (a *LinkAllocator) Guaranteed() int { return a.guaranteed }

// PeakTotal returns the accumulated VBR peak demand.
func (a *LinkAllocator) PeakTotal() int { return a.peak }

// Connections returns the number of admitted connections.
func (a *LinkAllocator) Connections() int { return a.conns }

// GuaranteedLoad returns the fraction of the round allocated to
// guaranteed traffic.
func (a *LinkAllocator) GuaranteedLoad() float64 {
	return float64(a.guaranteed) / float64(a.roundLen)
}

// Headroom returns the guaranteed cycles per round still available to new
// connections: the upper bound on any single admission this link can
// accept. Batched establishment uses it for provably-fatal-only
// pre-checks — a demand exceeding the headroom of every candidate link
// cannot be admitted no matter which path a search finds.
func (a *LinkAllocator) Headroom() int {
	if h := a.budget() - a.guaranteed; h > 0 {
		return h
	}
	return 0
}

// RestoreState overwrites the allocator's admission registers. The
// configured geometry (round length, reserve, concurrency) is not part
// of the state: a restored allocator must be built with the same
// configuration, which the checkpoint envelope's config hash enforces.
func (a *LinkAllocator) RestoreState(guaranteed, peak, conns int) {
	if guaranteed < 0 || peak < 0 || conns < 0 {
		panic(fmt.Sprintf("admission: negative restored state (%d,%d,%d)", guaranteed, peak, conns))
	}
	a.guaranteed, a.peak, a.conns = guaranteed, peak, conns
}

// CanAdmitCBR reports whether a CBR connection demanding cycles/round
// fits.
func (a *LinkAllocator) CanAdmitCBR(cycles int) bool {
	return cycles > 0 && a.guaranteed+cycles <= a.budget()
}

// AdmitCBR reserves cycles/round for a CBR connection, reporting success.
func (a *LinkAllocator) AdmitCBR(cycles int) bool {
	if !a.CanAdmitCBR(cycles) {
		return false
	}
	a.guaranteed += cycles
	a.conns++
	return true
}

// AdjustCBR changes an existing CBR connection's allocation by
// deltaCycles without changing the connection count — the admission side
// of §4.3's dynamic bandwidth management. Growth is admission-tested;
// shrinking always succeeds.
func (a *LinkAllocator) AdjustCBR(deltaCycles int) bool {
	if deltaCycles > 0 && a.guaranteed+deltaCycles > a.budget() {
		return false
	}
	a.guaranteed += deltaCycles
	if a.guaranteed < 0 {
		panic("admission: adjustment below zero")
	}
	return true
}

// ReleaseCBR returns a CBR connection's allocation.
func (a *LinkAllocator) ReleaseCBR(cycles int) {
	a.guaranteed -= cycles
	a.conns--
	if a.guaranteed < 0 || a.conns < 0 {
		panic("admission: CBR release without matching admit")
	}
}

// CanAdmitVBR reports whether a VBR connection with the given permanent
// and peak cycles/round fits: (i) permanent bandwidth must be fully
// reservable, and (ii) total peak demand must stay within roundLen ×
// concurrency factor (§4.2 conditions i and ii).
func (a *LinkAllocator) CanAdmitVBR(perm, peak int) bool {
	if perm <= 0 || peak < perm {
		return false
	}
	if a.guaranteed+perm > a.budget() {
		return false
	}
	limit := float64(a.budget()) * a.concurrency
	return float64(a.peak+peak) <= limit
}

// AdmitVBR reserves a VBR connection's permanent and peak demands,
// reporting success.
func (a *LinkAllocator) AdmitVBR(perm, peak int) bool {
	if !a.CanAdmitVBR(perm, peak) {
		return false
	}
	a.guaranteed += perm
	a.peak += peak
	a.conns++
	return true
}

// ReleaseVBR returns a VBR connection's demands.
func (a *LinkAllocator) ReleaseVBR(perm, peak int) {
	a.guaranteed -= perm
	a.peak -= peak
	a.conns--
	if a.guaranteed < 0 || a.peak < 0 || a.conns < 0 {
		panic("admission: VBR release without matching admit")
	}
}
