package flit

import "testing"

func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	f := p.Get()
	f.Conn = 7
	f.Seq = 42
	f.Packet = &Packet{ID: 9, Probe: &Probe{Conn: 7}}
	pkt := f.Packet
	p.Put(f)

	if p.Live() != 0 {
		t.Fatalf("Live = %d after balanced get/put", p.Live())
	}
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d, want 1", p.FreeLen())
	}
	g := p.Get()
	if g != f {
		t.Fatal("pool did not reuse the retired flit")
	}
	if g.Conn != 0 || g.Seq != 0 || g.Packet != nil {
		t.Fatalf("reissued flit not zeroed: %+v", g)
	}
	pk := p.GetPacket()
	if pk != pkt {
		t.Fatal("pool did not reuse the retired packet")
	}
	if pk.ID != 0 || pk.Probe != nil {
		t.Fatalf("reissued packet not zeroed: %+v", pk)
	}
}

func TestPoolNilSafe(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	p.PutPacket(nil)
	if p.Puts() != 0 || p.LivePackets() != 0 {
		t.Fatalf("nil puts counted: puts=%d livePkts=%d", p.Puts(), p.LivePackets())
	}
}

func TestPoolCounters(t *testing.T) {
	p := NewPool()
	var fs []*Flit
	for i := 0; i < 10; i++ {
		fs = append(fs, p.Get())
	}
	for _, f := range fs[:4] {
		p.Put(f)
	}
	if p.Gets() != 10 || p.Puts() != 4 || p.Live() != 6 {
		t.Fatalf("gets=%d puts=%d live=%d, want 10/4/6", p.Gets(), p.Puts(), p.Live())
	}
}

func TestRingFIFO(t *testing.T) {
	var r Ring
	if r.Pop() != nil || r.Peek() != nil || !r.Empty() {
		t.Fatal("empty ring misbehaves")
	}
	fs := make([]*Flit, 100)
	for i := range fs {
		fs[i] = &Flit{Seq: int64(i)}
	}
	// Interleave pushes and pops so head wraps across several growths.
	k := 0
	for i := range fs {
		r.Push(fs[i])
		if i%3 == 2 {
			if got := r.Pop(); got != fs[k] {
				t.Fatalf("pop %d: got seq %d", k, got.Seq)
			}
			k++
		}
	}
	for ; k < len(fs); k++ {
		if got := r.Pop(); got != fs[k] {
			t.Fatalf("pop %d: got seq %d", k, got.Seq)
		}
	}
	if !r.Empty() {
		t.Fatalf("ring not empty: %d", r.Len())
	}
}

// TestRingReleasesPopped is the NI-queue retention regression test: after
// draining, the ring's backing array must hold no flit pointers.
func TestRingReleasesPopped(t *testing.T) {
	var r Ring
	for i := 0; i < 40; i++ {
		r.Push(&Flit{Seq: int64(i)})
	}
	for !r.Empty() {
		r.Pop()
	}
	for i, f := range r.buf {
		if f != nil {
			t.Fatalf("slot %d still pins a popped flit (seq %d)", i, f.Seq)
		}
	}
}

func TestRingPowerOfTwoCap(t *testing.T) {
	var r Ring
	for i := 0; i < 1000; i++ {
		r.Push(&Flit{})
		if c := r.Cap(); c&(c-1) != 0 {
			t.Fatalf("cap %d not a power of two", c)
		}
	}
}
