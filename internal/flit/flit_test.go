package flit

import (
	"strings"
	"testing"
)

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		ClassCBR:        "CBR",
		ClassVBR:        "VBR",
		ClassControl:    "control",
		ClassBestEffort: "best-effort",
		Class(99):       "Class(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestClassIsStream(t *testing.T) {
	if !ClassCBR.IsStream() || !ClassVBR.IsStream() {
		t.Fatal("CBR/VBR must be stream classes")
	}
	if ClassControl.IsStream() || ClassBestEffort.IsStream() {
		t.Fatal("control/best-effort must not be stream classes")
	}
}

func TestNumClasses(t *testing.T) {
	if NumClasses != 4 {
		t.Fatalf("NumClasses = %d, want 4", NumClasses)
	}
}

func TestTypeAndKindStrings(t *testing.T) {
	if TypeHead.String() != "head" || TypeBody.String() != "body" || TypeTail.String() != "tail" {
		t.Fatal("flit type strings wrong")
	}
	if !strings.Contains(Type(7).String(), "7") {
		t.Fatal("unknown type string should include the value")
	}
	if PacketControl.String() != "control" || PacketBestEffort.String() != "best-effort" {
		t.Fatal("packet kind strings wrong")
	}
}

func TestProbeOpStrings(t *testing.T) {
	ops := map[ProbeOp]string{
		ProbeForward:   "forward",
		ProbeBacktrack: "backtrack",
		ProbeAck:       "ack",
		ProbeNack:      "nack",
		ProbeTeardown:  "teardown",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.Contains(ProbeOp(42).String(), "42") {
		t.Fatal("unknown op string should include the value")
	}
}

func TestFlitString(t *testing.T) {
	f := &Flit{Conn: 3, Class: ClassCBR, Type: TypeBody, Seq: 9, ReadyAt: 12}
	s := f.String()
	for _, frag := range []string{"conn=3", "CBR", "body", "seq=9", "ready=12"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("flit string %q missing %q", s, frag)
		}
	}
}

func TestInvalidConnSentinel(t *testing.T) {
	var f Flit
	if f.Conn == InvalidConn {
		t.Fatal("zero value must not equal InvalidConn — zero is a valid connection ID")
	}
}
