package flit

// Ring is an unbounded FIFO of flits over a growable ring buffer — the
// network-interface queue representation. Unlike the `q = q[1:]` slice
// shift it replaces, popping clears the vacated slot, so a drained queue
// never pins retired flits in its backing array (they would otherwise stay
// reachable and defeat both the GC and pool recycling), and pushing reuses
// the buffer instead of sliding an ever-growing window through memory.
// Capacity doubles on overflow (amortized O(1)); at steady state the
// buffer reaches the high-water mark once and pushes allocate nothing.
type Ring struct {
	buf        []*Flit
	head, size int
}

// Len returns the number of queued flits.
func (r *Ring) Len() int { return r.size }

// Empty reports whether the ring holds no flits.
func (r *Ring) Empty() bool { return r.size == 0 }

// Push appends f to the tail, growing the buffer if full.
func (r *Ring) Push(f *Flit) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = f
	r.size++
}

// Pop removes and returns the head flit, or nil if empty. The vacated
// slot is cleared so the ring never retains a popped flit.
func (r *Ring) Pop() *Flit {
	if r.size == 0 {
		return nil
	}
	f := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return f
}

// Peek returns the head flit without removing it, or nil if empty.
func (r *Ring) Peek() *Flit {
	if r.size == 0 {
		return nil
	}
	return r.buf[r.head]
}

// At returns the i-th queued flit in FIFO order (0 is the head) without
// removing it — the non-destructive walk checkpointing serializes queue
// contents with. i outside [0, Len) panics.
func (r *Ring) At(i int) *Flit {
	if i < 0 || i >= r.size {
		panic("flit: Ring.At index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Cap returns the current buffer capacity (for tests and tooling).
func (r *Ring) Cap() int { return len(r.buf) }

// grow doubles the buffer (minimum 8, always a power of two so indexing
// stays a mask) and linearizes the queue at the front.
func (r *Ring) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]*Flit, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
