// Package flit defines the data units the MMR moves: flits (the unit of
// flow control and scheduling, §3.1), phits (the unit of physical link
// transfer), packets (the unit of VCT switching for control and
// best-effort traffic, §3.4) and control words (the virtual-channel
// identifier sent ahead of every flit, plus the command encodings used for
// dynamic bandwidth management, §4.3).
package flit

import "fmt"

// Class is the service class a flit or packet belongs to. The MMR serves
// four: CBR and VBR streams over pipelined circuit switching, and control
// and best-effort packets over virtual cut-through (§3.1, §3.4).
type Class uint8

// Service classes, ordered by the scheduling priority the paper assigns:
// control packets preempt data streams, data streams preempt best-effort.
const (
	ClassCBR Class = iota
	ClassVBR
	ClassControl
	ClassBestEffort
	numClasses
)

// NumClasses is the number of distinct service classes.
const NumClasses = int(numClasses)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCBR:
		return "CBR"
	case ClassVBR:
		return "VBR"
	case ClassControl:
		return "control"
	case ClassBestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// IsStream reports whether the class is carried by a connection (PCS)
// rather than by cut-through packets.
func (c Class) IsStream() bool { return c == ClassCBR || c == ClassVBR }

// ConnID identifies a connection (an established virtual circuit) within
// one simulation. The zero value is valid; InvalidConn marks "none".
type ConnID int32

// InvalidConn is the sentinel for "no connection".
const InvalidConn ConnID = -1

// Type distinguishes the roles a flit can play inside a packet or stream.
type Type uint8

// Flit roles. Stream flits are all Body (connections are effectively
// endless); VCT packets are single-flit (§3.4: "packet size is equal to
// flit size") and use Head.
const (
	TypeBody Type = iota
	TypeHead
	TypeTail
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeBody:
		return "body"
	case TypeHead:
		return "head"
	case TypeTail:
		return "tail"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Flit is one flow-control digit. The paper uses large flits
// (128–512 bits) so that flow-control and scheduling delays amortize; a
// flit crosses the router in exactly one flit cycle.
type Flit struct {
	Conn  ConnID // owning connection, or InvalidConn for VCT packets
	Class Class
	Type  Type
	Seq   int64 // sequence number within the connection or packet stream

	// CreatedAt is the cycle the source generated the flit. ReadyAt is the
	// cycle the flit entered the router's virtual channel memory. HeadAt
	// is the cycle it reached the head of its virtual channel and became
	// "ready to be transmitted through the switch" — the reference point
	// for the paper's delay metric (§5).
	CreatedAt int64
	ReadyAt   int64
	HeadAt    int64

	// SrcPort/DstPort are router-local ports in single-router runs;
	// Src/Dst are node IDs in network runs.
	SrcPort, DstPort int16
	Src, Dst         int32

	// Packet carries the VCT packet payload for head flits, nil otherwise.
	Packet *Packet
}

// PacketKind distinguishes the two VCT packet roles.
type PacketKind uint8

// VCT packet kinds. Probes, acks and other connection-management messages
// are control packets; everything else VCT carries is best-effort.
const (
	PacketControl PacketKind = iota
	PacketBestEffort
)

// String implements fmt.Stringer.
func (k PacketKind) String() string {
	if k == PacketControl {
		return "control"
	}
	return "best-effort"
}

// Packet is a virtual cut-through packet. Because the MMR equalizes the
// VCT flow-control unit with the PCS flit (§3.4), a packet occupies
// exactly one flit in buffers and on links; Size is kept for generality
// (multi-flit best-effort messages in the network model).
type Packet struct {
	ID        int64
	Kind      PacketKind
	Src, Dst  int32
	Size      int // flits
	CreatedAt int64

	// WentDown records whether the packet has taken a "down" link yet —
	// the one bit of routing state up*/down* needs (§3.5).
	WentDown bool

	// Probe fields, used when the packet is an EPB routing probe or its
	// acknowledgment (§3.5, §4.2).
	Probe *Probe
}

// ProbeOp is the phase an EPB probe or response is in.
type ProbeOp uint8

// Probe operations: forward search, backtrack after exhausting outputs,
// positive acknowledgment travelling back to the source, and teardown
// releasing a connection's resources.
const (
	ProbeForward ProbeOp = iota
	ProbeBacktrack
	ProbeAck
	ProbeNack
	ProbeTeardown
)

// String implements fmt.Stringer.
func (op ProbeOp) String() string {
	switch op {
	case ProbeForward:
		return "forward"
	case ProbeBacktrack:
		return "backtrack"
	case ProbeAck:
		return "ack"
	case ProbeNack:
		return "nack"
	case ProbeTeardown:
		return "teardown"
	default:
		return fmt.Sprintf("ProbeOp(%d)", uint8(op))
	}
}

// Probe is the payload of a connection-establishment control packet.
// Bandwidth is expressed in flit cycles per round, the MMR's allocation
// unit (§4.2). VBR probes carry both permanent (average) and peak demand.
type Probe struct {
	Conn               ConnID
	Op                 ProbeOp
	Class              Class
	CyclesPerRound     int // CBR demand, or VBR permanent bandwidth
	PeakCyclesPerRound int // VBR peak bandwidth; 0 for CBR
	Priority           int
}

// ControlOp is a command encoding carried in a control word along an
// established connection (§4.3): Myrinet-style in-band management.
type ControlOp uint8

// In-band connection-management commands.
const (
	CtlNone         ControlOp = iota
	CtlSetBandwidth           // change allocated cycles/round
	CtlSetPriority            // change VBR priority
	CtlAbortFrame             // drop the in-flight frame (late video frame, §4.3)
)

// ControlWord precedes each flit on a link, naming the virtual channel the
// following flit belongs to (§3.4) and optionally carrying a management
// command.
type ControlWord struct {
	VC   int
	Op   ControlOp
	Arg  int
	Conn ConnID
}

// String implements fmt.Stringer.
func (f *Flit) String() string {
	return fmt.Sprintf("flit{conn=%d %s %s seq=%d ready=%d}", f.Conn, f.Class, f.Type, f.Seq, f.ReadyAt)
}
