package flit

// Pool is a free list of flits (and the packets head flits carry) for one
// router's flit cycle. The steady-state loop churns through one flit per
// injected and one per departed flit every cycle; recycling them keeps the
// hot path allocation-free after warmup. The pool is deliberately NOT
// concurrency-safe: each router owns its own pool, so parallel simulations
// (exp.RunGrid cells) never contend on a shared free list.
//
// Ownership rules (see docs/performance.md):
//
//   - Get hands out a zeroed flit; the caller owns it exclusively.
//   - Ownership moves with the flit: NI queue → VCM → transmit.
//   - Put must be called exactly once, by the component that retires the
//     flit (the switch on departure, AbortFrame on a drop). After Put the
//     flit must not be referenced again — it will be reissued with
//     different contents.
//   - Put recycles an attached Packet automatically; a Probe payload is
//     released to the GC (probes are control-plane rare).
type Pool struct {
	flits   []*Flit
	packets []*Packet

	gets, puts       int64
	pktGets, pktPuts int64
}

// NewPool returns an empty pool; it grows on demand and never shrinks.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed flit, reusing a retired one when available.
func (p *Pool) Get() *Flit {
	p.gets++
	if n := len(p.flits); n > 0 {
		f := p.flits[n-1]
		p.flits[n-1] = nil
		p.flits = p.flits[:n-1]
		return f
	}
	return &Flit{}
}

// Put retires a flit (and its packet payload, if any) back to the free
// list. Putting nil is a no-op so drain loops need no guard.
func (p *Pool) Put(f *Flit) {
	if f == nil {
		return
	}
	if f.Packet != nil {
		p.PutPacket(f.Packet)
	}
	*f = Flit{}
	p.puts++
	p.flits = append(p.flits, f)
}

// GetPacket returns a zeroed packet for a VCT head flit.
func (p *Pool) GetPacket() *Packet {
	p.pktGets++
	if n := len(p.packets); n > 0 {
		pk := p.packets[n-1]
		p.packets[n-1] = nil
		p.packets = p.packets[:n-1]
		return pk
	}
	return &Packet{}
}

// PutPacket retires a packet. The Probe payload, if any, is dropped to the
// GC rather than pooled.
func (p *Pool) PutPacket(pk *Packet) {
	if pk == nil {
		return
	}
	*pk = Packet{}
	p.pktPuts++
	p.packets = append(p.packets, pk)
}

// Live returns the number of flits issued and not yet retired — the flits
// currently in NI queues, virtual channel memories or in flight.
func (p *Pool) Live() int64 { return p.gets - p.puts }

// LivePackets returns the packets issued and not yet retired.
func (p *Pool) LivePackets() int64 { return p.pktGets - p.pktPuts }

// Gets returns the total flits issued (pool hits + fresh allocations).
func (p *Pool) Gets() int64 { return p.gets }

// Puts returns the total flits retired.
func (p *Pool) Puts() int64 { return p.puts }

// FreeLen returns the flits currently parked on the free list.
func (p *Pool) FreeLen() int { return len(p.flits) }

// FreePackets returns the packets currently parked on the free list.
func (p *Pool) FreePackets() int { return len(p.packets) }

// MoveFreeFlits transfers up to k parked flits to dst's free list and
// reports how many moved. The gets/puts counters of both pools are left
// untouched: the flits were retired and stay retired, they merely change
// home. Used by multi-pool simulations (one pool per router, flits minted
// at sources and retired at destinations) to rebalance free lists so
// source-heavy pools stop allocating.
func (p *Pool) MoveFreeFlits(dst *Pool, k int) int {
	if k > len(p.flits) {
		k = len(p.flits)
	}
	if k <= 0 {
		return 0
	}
	cut := len(p.flits) - k
	dst.flits = append(dst.flits, p.flits[cut:]...)
	for i := cut; i < len(p.flits); i++ {
		p.flits[i] = nil
	}
	p.flits = p.flits[:cut]
	return k
}

// MoveFreePackets transfers up to k parked packets to dst's free list,
// mirroring MoveFreeFlits.
func (p *Pool) MoveFreePackets(dst *Pool, k int) int {
	if k > len(p.packets) {
		k = len(p.packets)
	}
	if k <= 0 {
		return 0
	}
	cut := len(p.packets) - k
	dst.packets = append(dst.packets, p.packets[cut:]...)
	for i := cut; i < len(p.packets); i++ {
		p.packets[i] = nil
	}
	p.packets = p.packets[:cut]
	return k
}
