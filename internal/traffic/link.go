// Package traffic models the workloads the MMR was designed for: constant
// bit rate streams (the paper's evaluation, §5), variable bit rate streams
// with an MPEG-style group-of-pictures structure (§4.3 and the follow-on
// MMR papers), Poisson best-effort packets and short control messages
// (§3.4). It also generates whole router workloads at a target offered
// load, reproducing the paper's experimental setup: rates drawn from a
// fixed set, ports drawn at random, admission limited by link bandwidth.
package traffic

import "fmt"

// Rate is a bandwidth in bits per second.
type Rate float64

// Convenience rate units.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// String implements fmt.Stringer with the natural unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.4gGbps", float64(r/Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.4gMbps", float64(r/Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.4gKbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%.4gbps", float64(r))
	}
}

// PaperRates is the connection-rate population of §5: "Connections were
// randomly selected from the set (64 Kbps, 128 Kbps, 1.54 Mbps, 2 Mbps,
// 5 Mbps, 10 Mbps, 20 Mbps, 55 Mbps, 120 Mbps)". (The archived text lost
// trailing zeros to OCR; this is the rate set used across the MMR papers.)
var PaperRates = []Rate{
	64 * Kbps, 128 * Kbps, 1.54 * Mbps, 2 * Mbps, 5 * Mbps,
	10 * Mbps, 20 * Mbps, 55 * Mbps, 120 * Mbps,
}

// Link describes a physical link and the router's flit geometry; it fixes
// the flit-cycle timebase every simulation runs on.
type Link struct {
	Bandwidth Rate // physical link rate
	FlitBits  int  // flit size in bits (§5 uses 128)
	PhitBits  int  // phit size in bits (internal datapath width)
}

// PaperLink is the configuration of the paper's experiments: 1.24 Gbps
// links and 128-bit flits, giving a flit cycle of ~103 ns.
var PaperLink = Link{Bandwidth: 1.24 * Gbps, FlitBits: 128, PhitBits: 16}

// FlitCycleSeconds returns the duration of one flit cycle: the time the
// link needs to move one flit.
func (l Link) FlitCycleSeconds() float64 {
	return float64(l.FlitBits) / float64(l.Bandwidth)
}

// FlitCycleNanos returns the flit cycle in nanoseconds.
func (l Link) FlitCycleNanos() float64 { return l.FlitCycleSeconds() * 1e9 }

// CyclesPerSecond returns how many flit cycles fit in one second.
func (l Link) CyclesPerSecond() float64 { return 1 / l.FlitCycleSeconds() }

// PhitsPerFlit returns how many phits make up one flit.
func (l Link) PhitsPerFlit() int {
	if l.PhitBits <= 0 {
		return 1
	}
	n := l.FlitBits / l.PhitBits
	if n < 1 {
		n = 1
	}
	return n
}

// FlitsPerCycle converts a connection rate into flits per flit cycle —
// the fraction of the link the connection consumes.
func (l Link) FlitsPerCycle(r Rate) float64 { return float64(r) / float64(l.Bandwidth) }

// InterArrivalCycles returns the constant flit inter-arrival time of a CBR
// connection at rate r, in flit cycles.
func (l Link) InterArrivalCycles(r Rate) float64 {
	if r <= 0 {
		return 0
	}
	return float64(l.Bandwidth) / float64(r)
}

// CyclesPerRound converts a rate demand into the MMR's bandwidth
// allocation unit, flit cycles per round (§4.1-4.2), rounding up so the
// allocation never undershoots the demand.
func (l Link) CyclesPerRound(r Rate, roundLen int) int {
	if r <= 0 {
		return 0
	}
	frac := l.FlitsPerCycle(r) * float64(roundLen)
	c := int(frac)
	if float64(c) < frac {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}
