package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"mmr/internal/flit"
	"mmr/internal/sim"
)

func TestRateString(t *testing.T) {
	cases := map[Rate]string{
		64 * Kbps:   "64Kbps",
		1.54 * Mbps: "1.54Mbps",
		1.24 * Gbps: "1.24Gbps",
		500:         "500bps",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(r), got, want)
		}
	}
}

func TestPaperLinkGeometry(t *testing.T) {
	l := PaperLink
	// 128 bits at 1.24 Gbps ≈ 103.2 ns per flit cycle (§5: "a flit cycle is
	// approximately 103 ns").
	if ns := l.FlitCycleNanos(); math.Abs(ns-103.2) > 0.2 {
		t.Fatalf("flit cycle = %.2f ns, want ~103.2", ns)
	}
	if pf := l.PhitsPerFlit(); pf != 8 {
		t.Fatalf("phits/flit = %d, want 8", pf)
	}
	if cps := l.CyclesPerSecond(); math.Abs(cps-9.6875e6) > 1 {
		t.Fatalf("cycles/s = %v", cps)
	}
}

func TestPaperRates(t *testing.T) {
	if len(PaperRates) != 9 {
		t.Fatalf("rate population has %d entries, want 9", len(PaperRates))
	}
	for i := 1; i < len(PaperRates); i++ {
		if PaperRates[i] <= PaperRates[i-1] {
			t.Fatal("rates must be ascending")
		}
	}
}

func TestInterArrival(t *testing.T) {
	l := PaperLink
	// A 120 Mbps connection on a 1.24 Gbps link sends a flit every
	// 1240/120 ≈ 10.33 cycles.
	if ia := l.InterArrivalCycles(120 * Mbps); math.Abs(ia-1240.0/120) > 1e-9 {
		t.Fatalf("inter-arrival = %v", ia)
	}
	if l.InterArrivalCycles(0) != 0 {
		t.Fatal("zero rate should yield 0 inter-arrival sentinel")
	}
}

func TestCyclesPerRound(t *testing.T) {
	l := PaperLink
	round := 512 // K=2 × V=256
	// 64 Kbps demands far less than one cycle per round but must round up
	// to the minimum allocation of 1.
	if c := l.CyclesPerRound(64*Kbps, round); c != 1 {
		t.Fatalf("64Kbps: %d cycles/round, want 1", c)
	}
	// 120 Mbps: 120/1240 × 512 ≈ 49.5 → 50.
	if c := l.CyclesPerRound(120*Mbps, round); c != 50 {
		t.Fatalf("120Mbps: %d cycles/round, want 50", c)
	}
	if c := l.CyclesPerRound(0, round); c != 0 {
		t.Fatalf("zero rate: %d, want 0", c)
	}
}

func TestCBRSourceRate(t *testing.T) {
	l := PaperLink
	for _, r := range PaperRates {
		s := NewCBRSource(l, r, 0)
		const cycles = 2_000_000
		n := 0
		for c := int64(0); c < cycles; c++ {
			n += s.Tick(c)
		}
		want := l.FlitsPerCycle(r) * cycles
		if math.Abs(float64(n)-want) > 1.5 {
			t.Errorf("rate %v: %d flits over %d cycles, want %.1f", r, n, cycles, want)
		}
	}
}

func TestCBRSourceConstantSpacing(t *testing.T) {
	l := PaperLink
	s := NewCBRSource(l, 120*Mbps, 0)
	var gaps []int64
	last := int64(-1)
	for c := int64(0); c < 100000; c++ {
		if s.Tick(c) > 0 {
			if last >= 0 {
				gaps = append(gaps, c-last)
			}
			last = c
		}
	}
	// Inter-arrival ≈ 10.33 cycles: every gap must be 10 or 11.
	for _, g := range gaps {
		if g != 10 && g != 11 {
			t.Fatalf("CBR gap %d not in {10,11}", g)
		}
	}
}

func TestCBRPhaseOffsetsArrivals(t *testing.T) {
	l := PaperLink
	a := NewCBRSource(l, 120*Mbps, 0)
	b := NewCBRSource(l, 120*Mbps, 0.9)
	firstA, firstB := int64(-1), int64(-1)
	for c := int64(0); c < 100; c++ {
		if firstA < 0 && a.Tick(c) > 0 {
			firstA = c
		}
		if firstB < 0 && b.Tick(c) > 0 {
			firstB = c
		}
	}
	if firstB >= firstA {
		t.Fatalf("phase 0.9 should arrive earlier: A at %d, B at %d", firstA, firstB)
	}
}

func TestBestEffortSourceRate(t *testing.T) {
	rng := sim.NewRNG(1)
	s := NewBestEffortSource(rng, 0.05)
	const cycles = 500000
	n := 0
	for c := int64(0); c < cycles; c++ {
		n += s.Tick(c)
	}
	want := 0.05 * cycles
	if math.Abs(float64(n)-want) > 5*math.Sqrt(want) {
		t.Fatalf("Poisson source: %d arrivals, want ~%.0f", n, want)
	}
}

func TestBestEffortZeroRate(t *testing.T) {
	s := NewBestEffortSource(sim.NewRNG(1), 0)
	for c := int64(0); c < 1000; c++ {
		if s.Tick(c) != 0 {
			t.Fatal("zero-rate source produced a packet")
		}
	}
}

func TestOnOffSourceMeanRate(t *testing.T) {
	rng := sim.NewRNG(2)
	// peak 0.4 flits/cycle, on 1000, off 3000 → mean 0.1.
	s := NewOnOffSource(rng, 0.4, 1000, 3000)
	const cycles = 2_000_000
	n := 0
	for c := int64(0); c < cycles; c++ {
		n += s.Tick(c)
	}
	got := float64(n) / cycles
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("on-off mean rate = %.4f, want ~0.1", got)
	}
}

func TestVBRSourceMeanRate(t *testing.T) {
	rng := sim.NewRNG(3)
	l := PaperLink
	avg := 20 * Mbps
	s := NewVBRSource(rng, l, avg, 60*Mbps, DefaultGoP())
	// One GoP is exactly 3,875,000 cycles at 30 fps on the paper link;
	// measure over 10 whole GoPs so the I/P/B pattern phase cancels.
	const cycles = 38_750_000
	n := 0
	for c := int64(0); c < cycles; c++ {
		n += s.Tick(c)
	}
	got := float64(n) / cycles
	want := l.FlitsPerCycle(avg)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("VBR mean rate = %.5f flits/cycle, want ~%.5f", got, want)
	}
}

func TestVBRSourceRespectsPeak(t *testing.T) {
	rng := sim.NewRNG(4)
	l := PaperLink
	peak := 40 * Mbps
	s := NewVBRSource(rng, l, 20*Mbps, peak, DefaultGoP())
	peakPerCycle := l.FlitsPerCycle(peak)
	// Over any window of W cycles the source may emit at most
	// ceil(W*peak)+1 flits (the +1 absorbs accumulator carry).
	const W = 1000
	window := 0
	for c := int64(0); c < 2_000_000; c++ {
		window += s.Tick(c)
		if c%W == W-1 {
			if limit := int(peakPerCycle*W) + 2; window > limit {
				t.Fatalf("window emitted %d flits, peak limit %d", window, limit)
			}
			window = 0
		}
	}
}

func TestVBRPeakBelowAvgClamped(t *testing.T) {
	rng := sim.NewRNG(5)
	s := NewVBRSource(rng, PaperLink, 20*Mbps, 5*Mbps, DefaultGoP())
	if s.peakPer < PaperLink.FlitsPerCycle(20*Mbps) {
		t.Fatal("peak below average must clamp up to average")
	}
}

func TestGoPStructure(t *testing.T) {
	g := DefaultGoP()
	if len(g.Pattern) != 12 || g.Pattern[0] != FrameI {
		t.Fatal("default GoP must be 12 frames starting with I")
	}
	if w := g.meanWeight(); math.Abs(w-(5+3*3+8*1)/12.0) > 1e-12 {
		t.Fatalf("mean weight = %v", w)
	}
	if g.weight(FrameI) != 5 || g.weight(FrameP) != 3 || g.weight(FrameB) != 1 {
		t.Fatal("weights wrong")
	}
}

func TestGenerateWorkloadLoadAccuracy(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, load := range []float64{0.1, 0.5, 0.9} {
		w, err := Generate(PaperWorkloadConfig(load), rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.OfferedLoad-load) > 0.01 {
			t.Errorf("target %.2f: achieved %.4f", load, w.OfferedLoad)
		}
		// Per-port admission must hold.
		for p := 0; p < 8; p++ {
			if w.InLoad[p] > 1.0001 || w.OutLoad[p] > 1.0001 {
				t.Errorf("port %d overloaded: in=%.3f out=%.3f", p, w.InLoad[p], w.OutLoad[p])
			}
		}
	}
}

func TestGenerateWorkloadPortsInRange(t *testing.T) {
	rng := sim.NewRNG(8)
	w, err := Generate(PaperWorkloadConfig(0.7), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Conns) == 0 {
		t.Fatal("no connections generated")
	}
	for _, c := range w.Conns {
		if c.In < 0 || c.In >= 8 || c.Out < 0 || c.Out >= 8 {
			t.Fatalf("port out of range: %+v", c)
		}
		if c.Class != flit.ClassCBR {
			t.Fatalf("pure-CBR config produced %v", c.Class)
		}
	}
}

func TestGenerateWorkloadVBRMix(t *testing.T) {
	rng := sim.NewRNG(9)
	cfg := PaperWorkloadConfig(0.6)
	cfg.VBRFraction = 0.5
	cfg.PeakFactor = 3
	cfg.MaxPriority = 4
	w, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	vbr := 0
	for _, c := range w.Conns {
		if c.Class == flit.ClassVBR {
			vbr++
			if c.PeakRate != Rate(3*float64(c.Rate)) {
				t.Fatalf("VBR peak = %v for rate %v", c.PeakRate, c.Rate)
			}
			if c.Priority < 0 || c.Priority >= 4 {
				t.Fatalf("priority %d out of range", c.Priority)
			}
		}
	}
	frac := float64(vbr) / float64(len(w.Conns))
	if math.Abs(frac-0.5) > 0.15 {
		t.Fatalf("VBR fraction = %.2f, want ~0.5", frac)
	}
}

func TestGenerateWorkloadErrors(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(WorkloadConfig{Ports: 0, Link: PaperLink, Rates: PaperRates}, rng); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := Generate(WorkloadConfig{Ports: 8, Link: PaperLink}, rng); err == nil {
		t.Fatal("empty rate population accepted")
	}
	if _, err := Generate(WorkloadConfig{Ports: 8, Link: PaperLink, Rates: PaperRates, TargetLoad: 1.5}, rng); err == nil {
		t.Fatal("load > 1 accepted")
	}
}

// Property: whatever the load, generated workloads never violate per-port
// admission and always report a consistent total.
func TestGenerateWorkloadProperty(t *testing.T) {
	rng := sim.NewRNG(11)
	f := func(seed uint64, loadPct uint8) bool {
		rng.Seed(seed)
		load := float64(loadPct%96) / 100
		w, err := Generate(PaperWorkloadConfig(load), rng)
		if err != nil {
			return false
		}
		var demand Rate
		in := make([]float64, 8)
		out := make([]float64, 8)
		for _, c := range w.Conns {
			demand += c.Rate
			in[c.In] += float64(c.Rate) / float64(PaperLink.Bandwidth)
			out[c.Out] += float64(c.Rate) / float64(PaperLink.Bandwidth)
		}
		if demand != w.TotalRate() {
			return false
		}
		for p := 0; p < 8; p++ {
			if in[p] > 1.0001 || out[p] > 1.0001 {
				return false
			}
		}
		achieved := float64(demand) / (8 * float64(PaperLink.Bandwidth))
		return math.Abs(achieved-w.OfferedLoad) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
