package traffic

import (
	"testing"

	"mmr/internal/sim"
)

// cloneSrc deep-copies a source together with its RNG so brute-force
// simulation can run ahead without disturbing the live source. The
// returned RNG is nil when the source draws no randomness.
type cloneSrc func() (Source, *sim.RNG)

// bruteNextEvent ticks a throwaway copy cycle by cycle and returns the
// first cycle at which Tick returns flits or consumes RNG — the reference
// semantics ForecastEvent must reproduce. RNG consumption is detected by
// comparing the generator's value state before and after each Tick.
func bruteNextEvent(clone cloneSrc, now, horizon int64) int64 {
	src, rng := clone()
	var shadow sim.RNG
	if rng != nil {
		shadow = *rng
	}
	for c := now + 1; c <= horizon; c++ {
		n := src.Tick(c)
		drew := rng != nil && *rng != shadow
		if rng != nil {
			shadow = *rng
		}
		if n > 0 || drew {
			return c
		}
	}
	return horizon
}

// checkForecast walks a source forward event by event for `until` cycles,
// asserting at every step that ForecastEvent agrees exactly with the
// brute-force reference, then advancing the live source through every
// skipped cycle the way the engines' catch-up loops do.
func checkForecast(t *testing.T, name string, live Source, clone cloneSrc, until int64) {
	t.Helper()
	f, ok := live.(Forecaster)
	if !ok {
		t.Fatalf("%s does not implement Forecaster", name)
	}
	const window = 512
	now := int64(0)
	for now < until {
		horizon := now + window
		want := bruteNextEvent(clone, now, horizon)
		got := f.ForecastEvent(now, horizon)
		if got != want {
			t.Fatalf("%s: at cycle %d forecast says %d, brute-force says %d", name, now, got, want)
		}
		if got <= now || got > horizon {
			t.Fatalf("%s: forecast %d outside (now=%d, horizon=%d]", name, got, now, horizon)
		}
		for c := now + 1; c <= got; c++ {
			live.Tick(c)
		}
		now = got
	}
}

func TestForecastEventCBR(t *testing.T) {
	for _, r := range []Rate{64 * Kbps, 1.54 * Mbps, 20 * Mbps, 120 * Mbps} {
		s := NewCBRSource(PaperLink, r, 0.37)
		clone := func() (Source, *sim.RNG) { c := *s; return &c, nil }
		checkForecast(t, "cbr/"+r.String(), s, clone, 50000)
	}
}

func TestForecastEventCBRZeroRate(t *testing.T) {
	s := NewCBRSource(PaperLink, 0, 0)
	if got := s.ForecastEvent(100, 600); got != 600 {
		t.Fatalf("zero-rate CBR forecast %d, want horizon 600", got)
	}
}

func TestForecastEventBestEffort(t *testing.T) {
	for _, rate := range []float64{0.001, 0.02, 0.3} {
		s := NewBestEffortSource(sim.NewRNG(17), rate)
		clone := func() (Source, *sim.RNG) {
			c := *s
			r := *s.rng
			c.rng = &r
			return &c, c.rng
		}
		checkForecast(t, "be", s, clone, 50000)
	}
	s := NewBestEffortSource(sim.NewRNG(17), 0)
	if got := s.ForecastEvent(100, 600); got != 600 {
		t.Fatalf("zero-rate best-effort forecast %d, want horizon 600", got)
	}
}

func TestForecastEventVBR(t *testing.T) {
	for _, sigma := range []float64{0, 0.2} {
		gop := DefaultGoP()
		gop.Sigma = sigma
		s := NewVBRSource(sim.NewRNG(23), PaperLink, 5*Mbps, 10*Mbps, gop)
		clone := func() (Source, *sim.RNG) {
			c := *s
			r := *s.rng
			c.rng = &r
			return &c, c.rng
		}
		checkForecast(t, "vbr", s, clone, 200000)
	}
}

func TestForecastEventOnOff(t *testing.T) {
	s := NewOnOffSource(sim.NewRNG(31), 0.05, 200, 800)
	clone := func() (Source, *sim.RNG) {
		c := *s
		r := *s.rng
		c.rng = &r
		return &c, c.rng
	}
	checkForecast(t, "onoff", s, clone, 100000)
}

// TestForecastSourceFallback: sources without a forecast are always due
// next cycle, so the engines never skip across an unpredictable source.
func TestForecastSourceFallback(t *testing.T) {
	opaque := sourceFunc(func(int64) int { return 0 })
	if got := ForecastSource(opaque, 10, 500); got != 11 {
		t.Fatalf("opaque source forecast %d, want 11", got)
	}
	cbr := NewCBRSource(PaperLink, 20*Mbps, 0)
	if got, want := ForecastSource(cbr, 10, 500), cbr.ForecastEvent(10, 500); got != want {
		t.Fatalf("ForecastSource bypassed Forecaster: got %d, want %d", got, want)
	}
}

type sourceFunc func(int64) int

func (f sourceFunc) Tick(cycle int64) int { return f(cycle) }
