package traffic

import (
	"mmr/internal/sim"
)

// Source produces flit arrivals for one connection or packet flow. Tick is
// called once per flit cycle and returns how many flits arrive during that
// cycle (usually 0 or 1; a bursty VBR source may return more).
type Source interface {
	Tick(cycle int64) int
}

// CBRSource emits flits at a constant bit rate using a fractional
// accumulator, so the long-run rate is exact and the inter-arrival time is
// constant up to one-cycle quantization — matching §5's admission
// assumption that "the inter-arrival time on a connection is constant".
type CBRSource struct {
	perCycle float64 // flits per flit cycle
	acc      float64
}

// NewCBRSource returns a CBR source for rate r on link l. phase in [0,1)
// staggers the first arrival so concurrent connections are decorrelated;
// pass rng.Float64() for a random phase or 0 for aligned starts.
func NewCBRSource(l Link, r Rate, phase float64) *CBRSource {
	return &CBRSource{perCycle: l.FlitsPerCycle(r), acc: phase}
}

// Tick implements Source.
func (s *CBRSource) Tick(int64) int {
	s.acc += s.perCycle
	n := int(s.acc)
	s.acc -= float64(n)
	return n
}

// PerCycle returns the configured flits-per-cycle rate.
func (s *CBRSource) PerCycle() float64 { return s.perCycle }

// BestEffortSource emits single-flit packets as a Poisson process with the
// given mean arrival rate in packets per flit cycle. The MMR equalizes
// packet size with flit size (§3.4), so one arrival is one flit.
type BestEffortSource struct {
	rng  *sim.RNG
	rate float64 // mean packets per cycle
	next float64 // cycle of the next arrival
}

// NewBestEffortSource returns a Poisson source producing packetsPerCycle
// on average.
func NewBestEffortSource(rng *sim.RNG, packetsPerCycle float64) *BestEffortSource {
	s := &BestEffortSource{rng: rng, rate: packetsPerCycle}
	if packetsPerCycle > 0 {
		s.next = rng.Exp(1 / packetsPerCycle)
	} else {
		s.next = 1e18
	}
	return s
}

// Tick implements Source.
func (s *BestEffortSource) Tick(cycle int64) int {
	n := 0
	for float64(cycle) >= s.next {
		n++
		s.next += s.rng.Exp(1 / s.rate)
	}
	return n
}

// OnOffSource alternates exponentially distributed ON periods (emitting at
// peakPerCycle) and OFF periods (silent). It is the classic bursty-traffic
// model and backs the best-effort ablations.
type OnOffSource struct {
	rng          *sim.RNG
	peakPerCycle float64
	meanOn       float64 // cycles
	meanOff      float64 // cycles
	on           bool
	toggleAt     float64
	acc          float64
}

// NewOnOffSource returns a bursty source. The long-run average rate is
// peakPerCycle * meanOn / (meanOn + meanOff).
func NewOnOffSource(rng *sim.RNG, peakPerCycle, meanOn, meanOff float64) *OnOffSource {
	s := &OnOffSource{rng: rng, peakPerCycle: peakPerCycle, meanOn: meanOn, meanOff: meanOff, on: true}
	s.toggleAt = rng.Exp(meanOn)
	return s
}

// Tick implements Source.
func (s *OnOffSource) Tick(cycle int64) int {
	for float64(cycle) >= s.toggleAt {
		if s.on {
			s.toggleAt += s.rng.Exp(s.meanOff)
		} else {
			s.toggleAt += s.rng.Exp(s.meanOn)
		}
		s.on = !s.on
	}
	if !s.on {
		return 0
	}
	s.acc += s.peakPerCycle
	n := int(s.acc)
	s.acc -= float64(n)
	return n
}
