package traffic

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/sim"
)

// ConnSpec describes one connection of a workload before admission: its
// class, rate(s), endpoint ports and scheduling priority.
type ConnSpec struct {
	Class    flit.Class
	Rate     Rate // CBR rate, or VBR average (permanent) rate
	PeakRate Rate // VBR peak rate; 0 for CBR
	In, Out  int  // router ports (single-router model)
	Priority int  // VBR static priority; higher is more urgent
}

// Workload is a set of connections plus the load accounting used to build
// it.
type Workload struct {
	Conns       []ConnSpec
	OfferedLoad float64 // achieved Σrate / (ports × link bandwidth)
	InLoad      []float64
	OutLoad     []float64
}

// WorkloadConfig controls random workload generation, reproducing the
// experimental setup of §5: connections drawn from a rate population and
// assigned to random input and output ports, admitted only while both
// ports have bandwidth left.
type WorkloadConfig struct {
	Ports      int     // router radix (8 in the paper)
	Link       Link    // link/flit geometry
	Rates      []Rate  // rate population (PaperRates in the paper)
	TargetLoad float64 // fraction of total switch bandwidth to demand
	// MaxPortLoad caps per-port utilization (1.0 = full link). The paper's
	// admission control refuses connections beyond link capacity.
	MaxPortLoad float64
	// VBRFraction, if positive, makes that fraction of connections VBR with
	// PeakFactor × rate peaks (used by the hybrid-traffic ablations).
	VBRFraction float64
	PeakFactor  float64
	// MaxPriority bounds the random VBR priority (exclusive); 0 means 1.
	MaxPriority int
}

// PaperWorkloadConfig returns the §5 configuration for an 8×8 router at
// the given offered load.
func PaperWorkloadConfig(load float64) WorkloadConfig {
	return WorkloadConfig{
		Ports:       8,
		Link:        PaperLink,
		Rates:       PaperRates,
		TargetLoad:  load,
		MaxPortLoad: 1.0,
	}
}

// Generate builds a random workload per cfg. It draws connections until
// the offered load reaches the target or no more connections fit; the
// achieved load lands within one smallest-rate step of the target, which
// for the paper's population is well under 0.01% of switch bandwidth.
func Generate(cfg WorkloadConfig, rng *sim.RNG) (*Workload, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("traffic: invalid port count %d", cfg.Ports)
	}
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("traffic: empty rate population")
	}
	if cfg.TargetLoad < 0 || cfg.TargetLoad > 1 {
		return nil, fmt.Errorf("traffic: target load %v out of [0,1]", cfg.TargetLoad)
	}
	maxPort := cfg.MaxPortLoad
	if maxPort <= 0 {
		maxPort = 1.0
	}
	w := &Workload{
		InLoad:  make([]float64, cfg.Ports),
		OutLoad: make([]float64, cfg.Ports),
	}
	linkBW := float64(cfg.Link.Bandwidth)
	totalBW := linkBW * float64(cfg.Ports)
	demand := 0.0
	// A draw can fail because the chosen ports are full even though others
	// have room; retry with fresh ports a bounded number of times before
	// concluding the workload is complete.
	const maxRetries = 200
	fails := 0
	for demand/totalBW < cfg.TargetLoad && fails < maxRetries {
		rate := cfg.Rates[rng.Intn(len(cfg.Rates))]
		frac := float64(rate) / linkBW
		// Don't overshoot the target: skip rates that would blow past it by
		// more than the smallest population rate.
		if (demand+float64(rate))/totalBW > cfg.TargetLoad+smallestFrac(cfg.Rates, totalBW) {
			fails++
			continue
		}
		in, out := rng.Intn(cfg.Ports), rng.Intn(cfg.Ports)
		if w.InLoad[in]+frac > maxPort || w.OutLoad[out]+frac > maxPort {
			fails++
			continue
		}
		fails = 0
		spec := ConnSpec{Class: flit.ClassCBR, Rate: rate, In: in, Out: out}
		if cfg.VBRFraction > 0 && rng.Float64() < cfg.VBRFraction {
			spec.Class = flit.ClassVBR
			pf := cfg.PeakFactor
			if pf < 1 {
				pf = 2
			}
			spec.PeakRate = Rate(float64(rate) * pf)
			if cfg.MaxPriority > 1 {
				spec.Priority = rng.Intn(cfg.MaxPriority)
			}
		}
		w.Conns = append(w.Conns, spec)
		w.InLoad[in] += frac
		w.OutLoad[out] += frac
		demand += float64(rate)
	}
	w.OfferedLoad = demand / totalBW
	return w, nil
}

func smallestFrac(rates []Rate, totalBW float64) float64 {
	min := rates[0]
	for _, r := range rates[1:] {
		if r < min {
			min = r
		}
	}
	return float64(min) / totalBW
}

// TotalRate returns the sum of connection (average) rates.
func (w *Workload) TotalRate() Rate {
	var sum Rate
	for _, c := range w.Conns {
		sum += c.Rate
	}
	return sum
}
