package traffic

import "math"

// Forecaster is implemented by sources that can predict, without mutating
// state or consuming randomness, the first future cycle at which calling
// Tick would matter. "Matter" means Tick would either return a nonzero
// arrival count or draw from the source's RNG (a toggle, frame boundary or
// Poisson arrival) — everything in between is a cycle the activity-gated
// engines may skip, replaying the silent Ticks in order when the source
// next wakes (see docs/performance.md, "Activity gating").
//
// ForecastEvent(now, horizon) returns the earliest cycle c with
// now < c <= horizon at which Tick(c) would return >0 flits or consume
// RNG. If no such cycle exists within the window, it returns horizon,
// which the caller must treat as "nothing before horizon; re-forecast
// there" — a conservative (early) wake-up is always safe, because a Tick
// that turns out to be silent is a no-op; a late one would lose arrivals
// or reorder RNG draws.
//
// Implementations must replicate Tick's exact per-cycle floating-point
// operation order when simulating accumulators: batching k cycles into one
// multiply would diverge from the stepwise sum under IEEE-754 rounding and
// break bit-identical equivalence with ungated stepping.
type Forecaster interface {
	ForecastEvent(now, horizon int64) int64
}

// ForecastEvent implements Forecaster. The CBR accumulator is pure
// arithmetic — no RNG — so the only event is the accumulator crossing 1.
func (s *CBRSource) ForecastEvent(now, horizon int64) int64 {
	if s.perCycle <= 0 {
		return horizon
	}
	a := s.acc
	for c := now + 1; c <= horizon; c++ {
		a += s.perCycle // same op order as Tick
		if a >= 1 {     // int(a) >= 1 ⟺ a >= 1 for a >= 0
			return c
		}
	}
	return horizon
}

// ForecastEvent implements Forecaster. The next Poisson arrival time is
// already materialized in s.next; Tick fires (and draws the following
// inter-arrival gap) at the first integer cycle >= next. Cycles before
// that are total no-ops, so callers may skip the catch-up Ticks entirely.
func (s *BestEffortSource) ForecastEvent(now, horizon int64) int64 {
	if s.rate <= 0 {
		return horizon
	}
	c := int64(math.Ceil(s.next))
	if c <= now {
		return now + 1
	}
	if c > horizon {
		return horizon
	}
	return c
}

// ForecastEvent implements Forecaster. Two event kinds: the next frame
// boundary (which draws frame-size noise from the RNG when Sigma > 0, so
// the source must be ticked live there) and, while a backlog is draining,
// the injection accumulator crossing 1. With Sigma == 0 the whole frame
// machine is deterministic, so the forecast just runs a private copy of
// the source forward — bit-exact and RNG-free by construction.
func (s *VBRSource) ForecastEvent(now, horizon int64) int64 {
	if s.gop.Sigma <= 0 {
		cp := *s // Tick never touches cp.rng while Sigma == 0
		for c := now + 1; c <= horizon; c++ {
			if cp.Tick(c) > 0 {
				return c
			}
		}
		return horizon
	}
	fc := int64(math.Ceil(s.nextFrame))
	if fc <= now {
		return now + 1 // frame boundary already due: Tick would draw RNG
	}
	limit := fc
	if limit > horizon {
		limit = horizon
	}
	if s.backlog < s.flitBits {
		// Tick early-returns before touching the accumulator until the
		// next frame tops up the backlog.
		return limit
	}
	a := s.acc
	for c := now + 1; c < limit; c++ {
		a += s.perCycle // same op order as Tick
		if a >= 1 {
			return c
		}
	}
	return limit
}

// ForecastEvent implements Forecaster. In the OFF state Ticks are no-ops
// until the toggle (an RNG draw); in the ON state the accumulator may
// cross 1 before the toggle does.
func (s *OnOffSource) ForecastEvent(now, horizon int64) int64 {
	tc := int64(math.Ceil(s.toggleAt))
	if tc <= now {
		return now + 1 // toggle already due: Tick would draw RNG
	}
	if !s.on {
		if tc > horizon {
			return horizon
		}
		return tc
	}
	a := s.acc
	for c := now + 1; c <= horizon; c++ {
		if c >= tc {
			return c // toggle draw fires this cycle
		}
		a += s.peakPerCycle // same op order as Tick
		if a >= 1 {
			return c
		}
	}
	return horizon
}

// ForecastSource forecasts an arbitrary Source: sources implementing
// Forecaster answer exactly; anything else (externally supplied trace
// sources via EstablishWithSource) is conservatively "always due", so the
// engine never skips a cycle it cannot prove silent.
func ForecastSource(src Source, now, horizon int64) int64 {
	if f, ok := src.(Forecaster); ok {
		return f.ForecastEvent(now, horizon)
	}
	return now + 1
}
