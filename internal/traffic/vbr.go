package traffic

import (
	"math"

	"mmr/internal/sim"
)

// FrameKind is an MPEG picture type.
type FrameKind uint8

// MPEG picture types: intra-coded, predicted, bidirectional.
const (
	FrameI FrameKind = iota
	FrameP
	FrameB
)

// GoP describes a group-of-pictures pattern. DefaultGoP is the classic
// N=12, M=3 pattern (IBBPBBPBBPBB) at 30 frames/s, the structure of the
// MPEG-2 traces used to evaluate the MMR in the project's follow-on work.
type GoP struct {
	Pattern   []FrameKind
	FrameRate float64 // frames per second
	// Relative mean sizes of I, P and B frames. Typical MPEG-2 ratios are
	// about 5:3:1 after rate control.
	IWeight, PWeight, BWeight float64
	// Sigma is the log-normal shape of per-frame size noise; 0 disables it.
	Sigma float64
}

// DefaultGoP returns the standard IBBPBBPBBPBB pattern at 30 fps with
// moderate frame-size variability.
func DefaultGoP() GoP {
	return GoP{
		Pattern: []FrameKind{
			FrameI, FrameB, FrameB, FrameP, FrameB, FrameB,
			FrameP, FrameB, FrameB, FrameP, FrameB, FrameB,
		},
		FrameRate: 30,
		IWeight:   5, PWeight: 3, BWeight: 1,
		Sigma: 0.2,
	}
}

// meanWeight returns the average per-frame weight across the pattern.
func (g GoP) meanWeight() float64 {
	var sum float64
	for _, k := range g.Pattern {
		sum += g.weight(k)
	}
	return sum / float64(len(g.Pattern))
}

func (g GoP) weight(k FrameKind) float64 {
	switch k {
	case FrameI:
		return g.IWeight
	case FrameP:
		return g.PWeight
	default:
		return g.BWeight
	}
}

// VBRSource models a compressed-video connection: every frame interval it
// draws a frame size from the GoP pattern (with log-normal noise) and
// spreads the frame's flits evenly across the interval, injecting at most
// peak rate. Excess bits queue at the source, modeling interface policing
// (§4.2: injection is limited so a connection never exceeds its
// allocation; flow control pushes back to the source interface).
type VBRSource struct {
	rng       *sim.RNG
	gop       GoP
	meanBits  float64 // mean bits per frame at the target average rate
	frameLen  float64 // flit cycles per frame interval
	peakPer   float64 // max flits per cycle (policed injection ceiling)
	flitBits  float64
	frameIdx  int
	nextFrame float64 // cycle the next frame arrives
	backlog   float64 // bits waiting at the source
	acc       float64 // fractional flit accumulator
	perCycle  float64 // current injection rate, flits/cycle
}

// NewVBRSource returns a VBR source with the given average and peak rates
// on link l. Peak must be >= avg; frames that would exceed peak injection
// are smoothed into later intervals.
func NewVBRSource(rng *sim.RNG, l Link, avg, peak Rate, gop GoP) *VBRSource {
	if peak < avg {
		peak = avg
	}
	frameLen := l.CyclesPerSecond() / gop.FrameRate
	return &VBRSource{
		rng:       rng,
		gop:       gop,
		meanBits:  float64(avg) / gop.FrameRate,
		frameLen:  frameLen,
		peakPer:   l.FlitsPerCycle(peak),
		flitBits:  float64(l.FlitBits),
		nextFrame: 0,
	}
}

// frameBits draws the size of the next frame in bits.
func (s *VBRSource) frameBits() float64 {
	k := s.gop.Pattern[s.frameIdx%len(s.gop.Pattern)]
	s.frameIdx++
	base := s.meanBits * s.gop.weight(k) / s.gop.meanWeight()
	if s.gop.Sigma > 0 {
		// Log-normal multiplicative noise with unit mean.
		n := s.rng.Norm()
		base *= math.Exp(s.gop.Sigma*n - s.gop.Sigma*s.gop.Sigma/2)
	}
	return base
}

// Tick implements Source.
func (s *VBRSource) Tick(cycle int64) int {
	for float64(cycle) >= s.nextFrame {
		s.backlog += s.frameBits()
		s.nextFrame += s.frameLen
		// Target injection: drain the backlog over one frame interval,
		// capped at the peak rate.
		s.perCycle = s.backlog / s.flitBits / s.frameLen
		if s.perCycle > s.peakPer {
			s.perCycle = s.peakPer
		}
	}
	if s.backlog < s.flitBits {
		return 0
	}
	s.acc += s.perCycle
	n := int(s.acc)
	if max := int(s.backlog / s.flitBits); n > max {
		n = max
	}
	s.acc -= float64(n)
	s.backlog -= float64(n) * s.flitBits
	return n
}

// Backlog returns the bits currently queued at the source interface.
func (s *VBRSource) Backlog() float64 { return s.backlog }
