package traffic

// state.go exports and restores the mutable state of traffic sources
// for fabric checkpointing. Only evolving state is serialized: the
// static geometry (rates, frame lengths, GoP weights) is rebuilt by the
// constructors from the connection spec, and the envelope's config hash
// guarantees the spec matches. Sources that hold an RNG are restored by
// reconstructing them against the owning node's generator and then
// overwriting the generator's state, so any draw a constructor makes is
// undone and the stream continues bit-exactly.

// CBRState is the mutable state of a CBRSource.
type CBRState struct {
	PerCycle float64
	Acc      float64
}

// ExportState returns the source's mutable state.
func (s *CBRSource) ExportState() CBRState {
	return CBRState{PerCycle: s.perCycle, Acc: s.acc}
}

// RestoreState overwrites the source's mutable state.
func (s *CBRSource) RestoreState(st CBRState) {
	s.perCycle = st.PerCycle
	s.acc = st.Acc
}

// BestEffortState is the mutable state of a BestEffortSource.
type BestEffortState struct {
	Rate float64
	Next float64
}

// ExportState returns the source's mutable state.
func (s *BestEffortSource) ExportState() BestEffortState {
	return BestEffortState{Rate: s.rate, Next: s.next}
}

// RestoreState overwrites the source's mutable state. The constructor's
// initial inter-arrival draw is discarded; callers restore the RNG
// stream afterwards.
func (s *BestEffortSource) RestoreState(st BestEffortState) {
	s.rate = st.Rate
	s.next = st.Next
}

// VBRState is the mutable state of a VBRSource. The frame geometry and
// GoP pattern are reconstructed from the connection spec.
type VBRState struct {
	FrameIdx  int
	NextFrame float64
	Backlog   float64
	Acc       float64
	PerCycle  float64
}

// ExportState returns the source's mutable state.
func (s *VBRSource) ExportState() VBRState {
	return VBRState{
		FrameIdx:  s.frameIdx,
		NextFrame: s.nextFrame,
		Backlog:   s.backlog,
		Acc:       s.acc,
		PerCycle:  s.perCycle,
	}
}

// RestoreState overwrites the source's mutable state.
func (s *VBRSource) RestoreState(st VBRState) {
	s.frameIdx = st.FrameIdx
	s.nextFrame = st.NextFrame
	s.backlog = st.Backlog
	s.acc = st.Acc
	s.perCycle = st.PerCycle
}
