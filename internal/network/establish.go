package network

import (
	"fmt"

	"mmr/internal/admission"
	"mmr/internal/flit"
	"mmr/internal/routing"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// searchHook, when non-nil, runs inside every synchronous per-hop
// reservation. Tests use it to inject panics mid-search and verify the
// release-on-error path; it is never set in production code.
var searchHook func()

// Open establishes a connection from the host at src to the host at dst
// using EPB (§3.5): the probe searches minimal paths, reserving at each
// hop an input virtual channel on the next router and bandwidth on the
// output link (§4.2), backtracking and releasing when a hop has no
// resources. On success the channel mappings and per-VC scheduling state
// are installed at every router and the source begins injecting.
//
// Open is a single synchronous attempt; OpenWithRetry adds bounded,
// jittered exponential-backoff re-searches over event time. The session
// belongs to the default tenant; OpenAs names one.
func (n *Network) Open(src, dst int, spec traffic.ConnSpec) (*Conn, error) {
	return n.OpenAs("", src, dst, spec)
}

// OpenAs is Open on behalf of a tenant: the session and its guaranteed
// demand are charged against the tenant's admission quota
// (internal/admission.TenantTable) before any path search runs, so an
// over-budget tenant is refused without spending fabric work, and the
// charge follows the session through degradation (bandwidth refunded,
// session kept) and re-promotion (bandwidth re-charged).
func (n *Network) OpenAs(tenant string, src, dst int, spec traffic.ConnSpec) (*Conn, error) {
	if err := n.checkEndpoints(src, dst, spec); err != nil {
		return nil, err
	}
	n.m.setupAttempts++
	d := n.demandFor(spec)
	if !n.tenants.CanAdmit(tenant, d.alloc) {
		n.m.setupRejected++
		return nil, tenantQuotaError(tenant, n.tenants)
	}
	conn := &Conn{ID: flit.ConnID(len(n.conns)), Src: src, Dst: dst, Tenant: tenant, Spec: spec, dstSlot: -1}
	if err := n.establish(conn); err != nil {
		n.m.setupRejected++
		return nil, err
	}
	n.tenants.AdmitSession(tenant, d.alloc)
	n.conns = append(n.conns, conn)
	n.nodes[src].srcConns = append(n.nodes[src].srcConns, conn)
	n.assignTrackerSlot(conn)
	n.m.setupAccepted++
	n.m.setupLatency.Add(float64(conn.SetupTime))
	n.m.setupBacktracks.Add(float64(conn.Backtracks))
	return conn, nil
}

// OpenWithRetry attempts Open now and, on failure, schedules jittered
// exponential-backoff re-searches on the event engine — up to
// cfg.Fault.MaxRetries additional attempts — before reporting the last
// error to done. Retries ride event time, so teardowns, restorations and
// link repairs between attempts can free the resources a first search
// could not find.
//
// Pending retries live in the durable-event journal (durable.go), so
// they survive a checkpoint/restore with identical fabric-visible
// behaviour. The done callback does not: a restored fabric replays the
// remaining attempts but reports completion to no one.
func (n *Network) OpenWithRetry(src, dst int, spec traffic.ConnSpec, done func(*Conn, error)) error {
	return n.OpenWithRetryAs("", src, dst, spec, done)
}

// OpenWithRetryAs is OpenWithRetry on behalf of a tenant; the tenant
// rides the durable retry journal, so re-searches after a restore are
// still quota-charged to the right owner.
func (n *Network) OpenWithRetryAs(tenant string, src, dst int, spec traffic.ConnSpec, done func(*Conn, error)) error {
	if err := n.checkEndpoints(src, dst, spec); err != nil {
		return err
	}
	c, err := n.OpenAs(tenant, src, dst, spec)
	if err == nil {
		if done != nil {
			done(c, nil)
		}
		return nil
	}
	if n.cfg.Fault.MaxRetries <= 0 {
		if done != nil {
			done(nil, err)
		}
		return nil
	}
	id := n.nextOpenID
	n.nextOpenID++
	n.openRetries[id] = &openRetry{src: src, dst: dst, tenant: tenant, spec: spec, attempt: 1, done: done}
	delay := n.retryBackoff(0)
	n.m.setupRetries++
	n.scheduleDurable(n.now+delay, durOpenRetry, id, 0)
	return nil
}

// tenantQuotaError renders the rejection for a tenant over its admission
// quota, naming the tenant and its current holdings.
func tenantQuotaError(tenant string, t *admission.TenantTable) error {
	u := t.Usage(tenant)
	return fmt.Errorf("network: tenant %q over admission quota (%d sessions, %d guaranteed cycles held)",
		tenant, u.Sessions, u.Guaranteed)
}

// retryBackoff returns the wait before re-search attempt k (0-based):
// RetryBackoff × 2^k plus up to 50% jitter, so colliding retries from
// simultaneously broken connections decorrelate.
func (n *Network) retryBackoff(attempt int) int64 {
	base := n.cfg.Fault.RetryBackoff
	if base < 1 {
		base = 1
	}
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	return d + int64(n.rng.Float64()*float64(d)*0.5)
}

func (n *Network) checkEndpoints(src, dst int, spec traffic.ConnSpec) error {
	if src < 0 || src >= len(n.nodes) || dst < 0 || dst >= len(n.nodes) {
		return errBadEndpoints(src, dst)
	}
	if src == dst {
		return fmt.Errorf("network: source and destination host on the same router")
	}
	if !spec.Class.IsStream() {
		return fmt.Errorf("network: stream classes only, got %v", spec.Class)
	}
	return nil
}

// establish sets up conn's path according to the configured route mode.
// RouteMinimal runs the classic synchronous EPB search; the multipath
// modes first try to reserve along one Valiant/UGAL candidate and fall
// back to the exhaustive EPB search when the candidate cannot reserve —
// the candidate spreads load, the fallback preserves EPB's completeness
// guarantee (if any minimal path has resources, establishment succeeds).
func (n *Network) establish(conn *Conn) error {
	if n.cfg.Route != routing.RouteMinimal {
		if err := n.establishMultipath(conn); err == nil {
			return nil
		}
	}
	return n.establishEPB(conn)
}

// establishMultipath picks one candidate path under the configured
// multipath mode (UGAL weighs candidates by first-hop guaranteed load)
// and attempts to reserve along it.
func (n *Network) establishMultipath(conn *Conn) error {
	ports := n.mp.Choose(n.cfg.Route, conn.Src, conn.Dst, n.rng, n.GuaranteedLoadAt)
	if ports == nil {
		return fmt.Errorf("network: no legal route from %d to %d", conn.Src, conn.Dst)
	}
	return n.establishAlong(conn, ports)
}

// establishAlong reserves conn's resources hop by hop along a fixed port
// path — no backtracking; any hop without resources fails the whole
// attempt and releases every hold. On success the path state is
// installed exactly as EPB establishment would.
func (n *Network) establishAlong(conn *Conn, ports []int) error {
	src, dst, spec := conn.Src, conn.Dst, conn.Spec
	d := n.demandFor(spec)
	hp := n.cfg.hostPort()
	entryVC := n.nodes[src].mems[hp].FindFree(n.rng.Intn(n.cfg.VCs))
	if entryVC < 0 {
		return fmt.Errorf("network: no free VC on host port of node %d", src)
	}
	n.nodes[src].mems[hp].Reserve(entryVC, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})

	hops := make([]probeHop, 0, len(ports))
	committed := false
	defer func() {
		if committed {
			return
		}
		for _, h := range hops {
			n.releaseOut(n.nodes[h.node], h.port, spec, d)
			nb := n.cfg.Topology.Wired(h.node, h.port)
			pp := n.cfg.Topology.WiredPeer(h.node, h.port)
			n.nodes[nb].mems[pp].Release(h.vc)
		}
		n.nodes[src].mems[hp].Release(entryVC)
	}()

	cur := src
	for _, p := range ports {
		if searchHook != nil {
			searchHook()
		}
		nb := n.cfg.Topology.Neighbor(cur, p)
		if nb < 0 {
			return fmt.Errorf("network: candidate path uses dead link %d.%d", cur, p)
		}
		pp := n.cfg.Topology.PeerPort(cur, p)
		vc := n.nodes[nb].mems[pp].FindFree(n.rng.Intn(n.cfg.VCs))
		if vc < 0 {
			return fmt.Errorf("network: no free VC on input %d.%d", nb, pp)
		}
		if !n.admitOut(n.nodes[cur], p, spec, d) {
			return fmt.Errorf("network: output %d.%d cannot admit %v", cur, p, spec.Rate)
		}
		n.nodes[nb].mems[pp].Reserve(vc, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})
		hops = append(hops, probeHop{node: cur, port: p, vc: vc})
		cur = nb
	}
	if cur != dst {
		return fmt.Errorf("network: candidate path from %d ends at %d, not %d", src, cur, dst)
	}
	if !n.admitOut(n.nodes[dst], hp, spec, d) {
		return fmt.Errorf("network: destination host port of node %d cannot admit %v", dst, spec.Rate)
	}

	committed = true
	conn.Backtracks = 0
	// The probe walks the path forward, the ack retraces it (§4.2); a
	// fixed candidate path never backtracks.
	conn.SetupTime = n.cfg.HopLatency * int64(2*len(hops))
	n.installPath(conn, entryVC, hops, d)
	return nil
}

// establishEPB runs the synchronous EPB search for conn's spec and, on
// success, installs the path state (VCs, channel mappings, upstream
// pointers, bandwidth) into conn. It is the shared engine of Open and of
// fault restoration. All transient holds — the entry VC and every
// partial-path reservation — are released if the search fails or any
// admission/demand computation panics mid-way.
func (n *Network) establishEPB(conn *Conn) error {
	src, dst, spec := conn.Src, conn.Dst, conn.Spec
	d := n.demandFor(spec)

	// Entry resources: a VC on the source router's host input port.
	hp := n.cfg.hostPort()
	entryVC := n.nodes[src].mems[hp].FindFree(n.rng.Intn(n.cfg.VCs))
	if entryVC < 0 {
		return fmt.Errorf("network: no free VC on host port of node %d", src)
	}
	// Transient hold until the search completes.
	n.nodes[src].mems[hp].Reserve(entryVC, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})

	// Per-hop reservations made during the search, so backtracking — or a
	// panic escaping the search — can release them.
	reservations := map[[2]int]probeHop{}
	committed := false
	defer func() {
		if committed {
			return
		}
		// Error or panic path: nothing was installed, release every hold.
		for _, res := range reservations {
			n.releaseOut(n.nodes[res.node], res.port, spec, d)
			nb := n.cfg.Topology.Wired(res.node, res.port)
			pp := n.cfg.Topology.WiredPeer(res.node, res.port)
			n.nodes[nb].mems[pp].Release(res.vc)
		}
		n.nodes[src].mems[hp].Release(entryVC)
	}()

	reserve := func(nodeID, port int) bool {
		if searchHook != nil {
			searchHook()
		}
		x := n.nodes[nodeID]
		nb := n.cfg.Topology.Neighbor(nodeID, port)
		if nb < 0 {
			return false
		}
		pp := n.cfg.Topology.PeerPort(nodeID, port)
		y := n.nodes[nb]
		vc := y.mems[pp].FindFree(n.rng.Intn(n.cfg.VCs))
		if vc < 0 {
			return false
		}
		if !n.admitOut(x, port, spec, d) {
			return false
		}
		// Hold the VC so a concurrent hop of the same search cannot take
		// it; the final state is installed after the search succeeds.
		y.mems[pp].Reserve(vc, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})
		reservations[[2]int{nodeID, port}] = probeHop{node: nodeID, port: port, vc: vc}
		return true
	}
	release := func(nodeID, port int) {
		res, ok := reservations[[2]int{nodeID, port}]
		if !ok {
			panic("network: release of unreserved hop")
		}
		delete(reservations, [2]int{nodeID, port})
		n.releaseOut(n.nodes[nodeID], port, spec, d)
		nb := n.cfg.Topology.Wired(nodeID, port)
		pp := n.cfg.Topology.WiredPeer(nodeID, port)
		n.nodes[nb].mems[pp].Release(res.vc)
	}

	sr, err := routing.Search(n.cfg.Topology, n.dists, src, dst, reserve, release)
	if err != nil {
		return err
	}
	// Ejection bandwidth on the destination router's host output port.
	if !n.admitOut(n.nodes[dst], hp, spec, d) {
		for _, hop := range sr.Path {
			release(hop.Node, hop.Port)
		}
		return fmt.Errorf("network: destination host port of node %d cannot admit %v", dst, spec.Rate)
	}

	// Search succeeded with all resources held: install the connection.
	committed = true
	hops := make([]probeHop, 0, len(sr.Path))
	for _, hop := range sr.Path {
		hops = append(hops, reservations[[2]int{hop.Node, hop.Port}])
	}
	conn.Backtracks = sr.Backtracks
	// SetupTime: the probe walks Visited hops forward plus Backtracks
	// steps backward, then the ack retraces the final path (§4.2).
	conn.SetupTime = n.cfg.HopLatency * int64(sr.Visited+sr.Backtracks+len(sr.Path))
	n.installPath(conn, entryVC, hops, d)
	return nil
}

// installPath installs an established connection along its reserved
// resources: per-router VC scheduling state, direct channel mappings,
// upstream credit pointers, and the conn's VCs/Path/Nodes records. The
// entry VC sits at (conn.Src, hostPort); hops[i] carries the output
// taken from the i-th router and the VC already reserved on the next
// router's input. Shared by synchronous establishment, event-driven
// probes and fault restoration.
func (n *Network) installPath(conn *Conn, entryVC int, hops []probeHop, d demand) {
	hp := n.cfg.hostPort()
	roundLen := n.cfg.K * n.cfg.VCs
	interval := float64(roundLen) / float64(d.alloc)
	install := func(nodeID, inPort, vc, outPort int) {
		x := n.nodes[nodeID]
		if x.mems[inPort].State(vc).InUse {
			x.mems[inPort].Release(vc) // replace the transient hold
		}
		x.mems[inPort].Reserve(vc, vcm.VCState{
			Conn: conn.ID, Class: conn.Spec.Class,
			Allocated: d.alloc, Peak: d.peak,
			BasePriority: conn.Spec.Priority,
			InterArrival: interval,
			Output:       outPort,
		})
	}

	conn.Path = conn.Path[:0]
	conn.VCs = conn.VCs[:0]
	conn.Nodes = conn.Nodes[:0]
	conn.VCs = append(conn.VCs, routing.VCRef{Port: hp, VC: entryVC})
	conn.Nodes = append(conn.Nodes, conn.Src)
	inPort, inVC := hp, entryVC
	cur := conn.Src
	for _, h := range hops {
		nb := n.cfg.Topology.Wired(h.node, h.port)
		pp := n.cfg.Topology.WiredPeer(h.node, h.port)
		install(cur, inPort, inVC, h.port)
		n.nodes[cur].cmap.Map(routing.VCRef{Port: inPort, VC: inVC}, routing.VCRef{Port: h.port, VC: h.vc})
		// Upstream pointer: draining the neighbor's VC returns a credit
		// to this router's shadow for (inPort, inVC).
		n.nodes[nb].upstream[pp][h.vc] = upRef{node: int32(cur), port: int16(inPort), vc: int16(inVC)}
		conn.Path = append(conn.Path, routing.PathHop{Node: h.node, Port: h.port})
		cur, inPort, inVC = nb, pp, h.vc
		conn.VCs = append(conn.VCs, routing.VCRef{Port: inPort, VC: inVC})
		conn.Nodes = append(conn.Nodes, cur)
	}
	// Final router: eject to the host port.
	install(cur, inPort, inVC, hp)

	if conn.src == nil {
		switch conn.Spec.Class {
		case flit.ClassVBR:
			// The VBR generator draws randomness at injection time, which
			// runs inside the parallel commit phase: bind it to the source
			// node's RNG stream so the draw order is per-node and therefore
			// independent of worker scheduling.
			conn.src = traffic.NewVBRSource(n.nodes[conn.Src].rng, n.cfg.Link, conn.Spec.Rate, conn.Spec.PeakRate, traffic.DefaultGoP())
		default:
			// CBR draws only its phase, here on the serial control path.
			conn.src = traffic.NewCBRSource(n.cfg.Link, conn.Spec.Rate, n.rng.Float64())
		}
	}
	conn.open = true
	conn.closed = false
	conn.broken = false
	// Activity-gating bookkeeping: ticking (re)starts at the current
	// cycle. Critically, this also resets lastTick after a fault
	// restoration, so the broken period is not replayed into the source —
	// matching the ungated engine, which never ticks a broken connection.
	conn.lastTick = n.now - 1
	conn.nextDue = n.now
}

// Close stops a connection's injection and releases every per-hop
// resource. Buffers along the path must have drained; use DrainAndClose
// to run the network until they have. Closing an already closed (or
// fault-broken) connection returns an error and releases nothing.
func (n *Network) Close(conn *Conn) error {
	if conn.closed {
		return fmt.Errorf("network: connection %d already closed", conn.ID)
	}
	if conn.Degraded {
		// The guaranteed path was torn down when the fault broke the
		// connection; closing the session now means retiring its
		// best-effort fallback flow so a long-lived fabric does not
		// accumulate immortal generators across churn. (The degraded and
		// broken branches are order-independent since abandon normalized
		// the flags: Degraded implies !broken.)
		n.dropBEFlow(conn.ID)
		conn.closed = true
		n.degradedLive--
		n.m.closed++
		n.tenants.ReleaseSession(conn.Tenant)
		return nil
	}
	if conn.broken {
		return fmt.Errorf("network: connection %d is fault-broken; its resources are already released", conn.ID)
	}
	// Check every hop is empty — buffers drained and all credits home
	// (a full shadow proves no credit is still in flight for the VC, so
	// reusing it cannot corrupt flow control) — before touching anything.
	for i, ref := range conn.VCs {
		x := n.nodes[conn.Nodes[i]]
		if x.mems[ref.Port].Len(ref.VC) != 0 {
			return fmt.Errorf("network: connection %d still has flits buffered at node %d (hop %d)", conn.ID, conn.Nodes[i], i)
		}
		if x.shadow[ref.Port].Available(ref.VC) != n.cfg.Depth {
			return fmt.Errorf("network: connection %d has credits in flight at node %d (hop %d)", conn.ID, conn.Nodes[i], i)
		}
	}
	if conn.niQueue.Len() != 0 {
		return fmt.Errorf("network: connection %d still has %d flits at the source interface", conn.ID, conn.niQueue.Len())
	}
	conn.open = false
	conn.closed = true
	conn.src = nil
	n.releasePath(conn)
	n.dropSrcConn(conn)
	n.m.closed++
	n.tenants.ReleaseAll(conn.Tenant, n.demandFor(conn.Spec).alloc)
	// The close freed guaranteed cycles along the whole path — capacity a
	// degraded session may be waiting on.
	n.schedulePromotion()
	return nil
}

// releasePath returns every resource an installed connection holds: VC
// reservations, channel mappings, upstream pointers, and per-hop output
// bandwidth (path hops plus destination ejection). VC buffers must
// already be empty. It deliberately never consults link up/down state,
// so teardown works identically on healthy and faulted fabrics.
func (n *Network) releasePath(conn *Conn) {
	d := n.demandFor(conn.Spec)
	for i, ref := range conn.VCs {
		x := n.nodes[conn.Nodes[i]]
		x.mems[ref.Port].Release(ref.VC)
		x.cmap.Unmap(routing.VCRef{Port: ref.Port, VC: ref.VC})
		x.upstream[ref.Port][ref.VC] = noUpstream
		if i < len(conn.Path) {
			hop := conn.Path[i]
			n.releaseOut(n.nodes[hop.Node], hop.Port, conn.Spec, d)
		} else {
			n.releaseOut(x, n.cfg.hostPort(), conn.Spec, d)
		}
	}
}

// DrainAndClose stops injection, steps the network until the connection's
// buffers empty (bounded by limit cycles), then closes it.
func (n *Network) DrainAndClose(conn *Conn, limit int64) error {
	conn.open = false // stop generating new flits; queued ones still flow
	for i := int64(0); i < limit; i++ {
		if conn.closed {
			// A fault tore the connection down mid-drain (or it was
			// already closed): nothing left to release.
			return fmt.Errorf("network: connection %d already closed", conn.ID)
		}
		if err := n.Close(conn); err == nil {
			return nil
		}
		n.Step()
	}
	return n.Close(conn)
}
