package network

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/routing"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// Open establishes a connection from the host at src to the host at dst
// using EPB (§3.5): the probe searches minimal paths, reserving at each
// hop an input virtual channel on the next router and bandwidth on the
// output link (§4.2), backtracking and releasing when a hop has no
// resources. On success the channel mappings and per-VC scheduling state
// are installed at every router and the source begins injecting.
func (n *Network) Open(src, dst int, spec traffic.ConnSpec) (*Conn, error) {
	if src < 0 || src >= len(n.nodes) || dst < 0 || dst >= len(n.nodes) {
		return nil, fmt.Errorf("network: nodes (%d,%d) out of range", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("network: source and destination host on the same router")
	}
	if !spec.Class.IsStream() {
		return nil, fmt.Errorf("network: Open is for stream classes, got %v", spec.Class)
	}
	n.m.setupAttempts++

	roundLen := n.cfg.K * n.cfg.VCs
	alloc := n.cfg.Link.CyclesPerRound(spec.Rate, roundLen)
	peak := alloc
	if spec.Class == flit.ClassVBR {
		peak = n.cfg.Link.CyclesPerRound(spec.PeakRate, roundLen)
		if peak < alloc {
			peak = alloc
		}
	}

	// Entry resources: a VC on the source router's host input port.
	hp := n.cfg.hostPort()
	entryVC := n.nodes[src].mems[hp].FindFree(n.rng.Intn(n.cfg.VCs))
	if entryVC < 0 {
		n.m.setupRejected++
		return nil, fmt.Errorf("network: no free VC on host port of node %d", src)
	}
	// Transient hold until the search completes.
	n.nodes[src].mems[hp].Reserve(entryVC, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})

	// Per-hop reservations made during the search, so backtracking can
	// release them. reserve(x, p) claims bandwidth on x's output p and a
	// VC on the neighbor's input.
	type hopRes struct {
		node, port int
		vc         int // reserved VC on the neighbor's input
	}
	reservations := map[[2]int]hopRes{}
	admitOut := func(x *node, p int) bool {
		if spec.Class == flit.ClassVBR {
			return x.alloc[p].AdmitVBR(alloc, peak)
		}
		return x.alloc[p].AdmitCBR(alloc)
	}
	releaseOut := func(x *node, p int) {
		if spec.Class == flit.ClassVBR {
			x.alloc[p].ReleaseVBR(alloc, peak)
		} else {
			x.alloc[p].ReleaseCBR(alloc)
		}
	}
	reserve := func(nodeID, port int) bool {
		x := n.nodes[nodeID]
		nb := n.cfg.Topology.Neighbor(nodeID, port)
		if nb < 0 {
			return false
		}
		pp := n.cfg.Topology.PeerPort(nodeID, port)
		y := n.nodes[nb]
		vc := y.mems[pp].FindFree(n.rng.Intn(n.cfg.VCs))
		if vc < 0 {
			return false
		}
		if !admitOut(x, port) {
			return false
		}
		// Hold the VC so a concurrent hop of the same search cannot take
		// it; the final state is installed after the search succeeds.
		y.mems[pp].Reserve(vc, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})
		reservations[[2]int{nodeID, port}] = hopRes{node: nodeID, port: port, vc: vc}
		return true
	}
	release := func(nodeID, port int) {
		res, ok := reservations[[2]int{nodeID, port}]
		if !ok {
			panic("network: release of unreserved hop")
		}
		delete(reservations, [2]int{nodeID, port})
		x := n.nodes[nodeID]
		releaseOut(x, port)
		nb := n.cfg.Topology.Neighbor(nodeID, port)
		pp := n.cfg.Topology.PeerPort(nodeID, port)
		n.nodes[nb].mems[pp].Release(res.vc)
	}

	sr, err := routing.Search(n.cfg.Topology, n.dists, src, dst, reserve, release)
	if err != nil {
		n.nodes[src].mems[hp].Release(entryVC) // only held transiently above
		n.m.setupRejected++
		return nil, err
	}
	// Ejection bandwidth on the destination router's host output port.
	if !admitOut(n.nodes[dst], hp) {
		for _, hop := range sr.Path {
			release(hop.Node, hop.Port)
		}
		n.nodes[src].mems[hp].Release(entryVC)
		n.m.setupRejected++
		return nil, fmt.Errorf("network: destination host port of node %d cannot admit %v", dst, spec.Rate)
	}

	// Search succeeded with all resources held: install the connection.
	id := flit.ConnID(len(n.conns))
	interval := float64(roundLen) / float64(alloc)
	conn := &Conn{
		ID: id, Src: src, Dst: dst, Spec: spec,
		Path:       sr.Path,
		Backtracks: sr.Backtracks,
		open:       true,
	}
	// SetupTime: the probe walks Visited hops forward plus Backtracks
	// steps backward, then the ack retraces the final path (§4.2).
	conn.SetupTime = n.cfg.HopLatency * int64(sr.Visited+sr.Backtracks+len(sr.Path))

	install := func(nodeID, inPort, vc, outPort int) {
		x := n.nodes[nodeID]
		if x.mems[inPort].State(vc).InUse {
			x.mems[inPort].Release(vc) // replace the transient hold
		}
		x.mems[inPort].Reserve(vc, vcm.VCState{
			Conn: id, Class: spec.Class,
			Allocated: alloc, Peak: peak,
			BasePriority: spec.Priority,
			InterArrival: interval,
			Output:       outPort,
		})
	}

	// Walk the path: the connection occupies entryVC at (src, hostPort),
	// then the reserved VC at each subsequent router's link input port.
	conn.VCs = append(conn.VCs, routing.VCRef{Port: hp, VC: entryVC})
	inPort, inVC := hp, entryVC
	cur := src
	for _, hop := range sr.Path {
		res := reservations[[2]int{hop.Node, hop.Port}]
		nb := n.cfg.Topology.Neighbor(hop.Node, hop.Port)
		pp := n.cfg.Topology.PeerPort(hop.Node, hop.Port)
		install(cur, inPort, inVC, hop.Port)
		n.nodes[cur].cmap.Map(routing.VCRef{Port: inPort, VC: inVC}, routing.VCRef{Port: hop.Port, VC: res.vc})
		// Upstream pointer: draining the neighbor's VC returns a credit
		// to this router's shadow for (inPort, inVC).
		n.nodes[nb].upstream[pp][res.vc] = upRef{node: cur, port: inPort, vc: inVC}
		cur, inPort, inVC = nb, pp, res.vc
		conn.VCs = append(conn.VCs, routing.VCRef{Port: inPort, VC: inVC})
	}
	// Final router: eject to the host port.
	install(cur, inPort, inVC, hp)

	switch spec.Class {
	case flit.ClassVBR:
		conn.src = traffic.NewVBRSource(n.rng, n.cfg.Link, spec.Rate, spec.PeakRate, traffic.DefaultGoP())
	default:
		conn.src = traffic.NewCBRSource(n.cfg.Link, spec.Rate, n.rng.Float64())
	}
	n.conns = append(n.conns, conn)
	n.m.grow(len(n.conns))
	n.m.setupAccepted++
	n.m.setupLatency.Add(float64(conn.SetupTime))
	n.m.setupBacktracks.Add(float64(sr.Backtracks))
	return conn, nil
}

// Close stops a connection's injection and releases every per-hop
// resource. Buffers along the path must have drained; use DrainAndClose
// to run the network until they have.
func (n *Network) Close(conn *Conn) error {
	if conn.closed {
		return fmt.Errorf("network: connection %d already closed", conn.ID)
	}
	// Check every hop is empty — buffers drained and all credits home
	// (a full shadow proves no credit is still in flight for the VC, so
	// reusing it cannot corrupt flow control) — before touching anything.
	cur := conn.Src
	for i, ref := range conn.VCs {
		x := n.nodes[cur]
		if x.mems[ref.Port].Len(ref.VC) != 0 {
			return fmt.Errorf("network: connection %d still has flits buffered at node %d (hop %d)", conn.ID, cur, i)
		}
		if x.shadow[ref.Port].Available(ref.VC) != n.cfg.Depth {
			return fmt.Errorf("network: connection %d has credits in flight at node %d (hop %d)", conn.ID, cur, i)
		}
		if i < len(conn.Path) {
			cur = n.cfg.Topology.Neighbor(conn.Path[i].Node, conn.Path[i].Port)
		}
	}
	if len(conn.niQueue) != 0 {
		return fmt.Errorf("network: connection %d still has %d flits at the source interface", conn.ID, len(conn.niQueue))
	}
	conn.open = false
	conn.closed = true
	conn.src = nil
	roundLen := n.cfg.K * n.cfg.VCs
	alloc := n.cfg.Link.CyclesPerRound(conn.Spec.Rate, roundLen)
	peak := alloc
	if conn.Spec.Class == flit.ClassVBR {
		peak = n.cfg.Link.CyclesPerRound(conn.Spec.PeakRate, roundLen)
		if peak < alloc {
			peak = alloc
		}
	}
	releaseOut := func(x *node, p int) {
		if conn.Spec.Class == flit.ClassVBR {
			x.alloc[p].ReleaseVBR(alloc, peak)
		} else {
			x.alloc[p].ReleaseCBR(alloc)
		}
	}
	cur = conn.Src
	for i, ref := range conn.VCs {
		x := n.nodes[cur]
		x.mems[ref.Port].Release(ref.VC)
		x.cmap.Unmap(routing.VCRef{Port: ref.Port, VC: ref.VC})
		x.upstream[ref.Port][ref.VC] = noUpstream
		if i < len(conn.Path) {
			hop := conn.Path[i]
			releaseOut(n.nodes[hop.Node], hop.Port)
			cur = n.cfg.Topology.Neighbor(hop.Node, hop.Port)
		} else {
			releaseOut(x, n.cfg.hostPort())
		}
	}
	n.m.closed++
	return nil
}

// DrainAndClose stops injection, steps the network until the connection's
// buffers empty (bounded by limit cycles), then closes it.
func (n *Network) DrainAndClose(conn *Conn, limit int64) error {
	conn.open = false // stop generating new flits; queued ones still flow
	for i := int64(0); i < limit; i++ {
		if err := n.Close(conn); err == nil {
			return nil
		}
		n.Step()
	}
	return n.Close(conn)
}
