package network

import (
	"reflect"
	"testing"

	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"

	"mmr/internal/flit"
)

// gatingScenario runs the detScenario workload with activity gating on or
// off and returns everything observable. NoIdleSkip is flipped after
// construction (it only affects stepping, never setup), so both sides
// build through the identical code path.
func gatingScenario(t *testing.T, workers int, withFaults, noIdleSkip bool) (*Stats, []SessionEvent) {
	t.Helper()
	n := buildDetNetwork(t, workers, withFaults)
	defer n.Shutdown()
	n.cfg.NoIdleSkip = noIdleSkip
	n.Run(1200)
	n.ResetStats()
	n.Run(1800)
	return n.Stats(), n.SessionEvents()
}

// TestNetworkGatingEquivalence: activity gating — per-port scan skipping,
// the active-node worklist, lazy round boundaries, forecast-driven source
// ticking and whole-clock fast-forward — changes nothing observable. The
// gated run must reproduce the ungated run bit for bit (floating-point
// accumulator state compared exactly via reflect.DeepEqual), at every
// worker count, with and without an active fault plan.
func TestNetworkGatingEquivalence(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		name := "clean"
		if withFaults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			refStats, refEvents := gatingScenario(t, 1, withFaults, true)
			if refStats.FlitsDelivered == 0 || refStats.BEDelivered == 0 {
				t.Fatalf("degenerate scenario: %v", refStats)
			}
			for _, w := range []int{1, 2, 4} {
				st, ev := gatingScenario(t, w, withFaults, false)
				if !reflect.DeepEqual(refStats, st) {
					t.Errorf("gated workers=%d diverged from ungated serial:\nungated: %+v\ngated:   %+v", w, refStats, st)
				}
				if !reflect.DeepEqual(refEvents, ev) {
					t.Errorf("gated workers=%d session log diverged (%d vs %d events)", w, len(refEvents), len(ev))
				}
			}
		})
	}
}

// TestNetworkGatingEquivalenceSparse exercises the regime gating was
// built for — long idle stretches between arrivals, where Run fast-
// forwards the clock — and checks the elision is exact: identical stats,
// identical final clock, and strictly positive skipping (guarding against
// the fast path silently never engaging).
func TestNetworkGatingEquivalenceSparse(t *testing.T) {
	build := func(noIdleSkip bool) *Network {
		tp, err := topology.Mesh(4, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(tp)
		cfg.Seed = 23
		cfg.NoIdleSkip = noIdleSkip
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(77)
		for opened, i := 0, 0; i < 200 && opened < 6; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			if src == dst {
				continue
			}
			// Slow connections: ~1 flit every few hundred cycles, so the
			// fabric is empty most of the time.
			if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 2 * traffic.Mbps}); err == nil {
				opened++
			}
		}
		n.AddBestEffortFlow(0, 15, 0.001)
		return n
	}

	gated, ungated := build(false), build(true)
	defer gated.Shutdown()
	defer ungated.Shutdown()
	gated.Run(20_000)
	ungated.Run(20_000)
	if gated.Now() != ungated.Now() {
		t.Fatalf("clocks diverged: gated %d, ungated %d", gated.Now(), ungated.Now())
	}
	gs, us := gated.Stats(), ungated.Stats()
	if us.FlitsDelivered == 0 {
		t.Fatalf("degenerate sparse scenario: %+v", us)
	}
	if !reflect.DeepEqual(gs, us) {
		t.Fatalf("sparse gated run diverged:\nungated: %+v\ngated:   %+v", us, gs)
	}
	if gated.idleSkipped == 0 {
		t.Fatal("sparse run skipped no cycles: the fast-forward path never engaged")
	}
	if ungated.idleSkipped != 0 {
		t.Fatalf("NoIdleSkip run still skipped %d cycles", ungated.idleSkipped)
	}
}
