package network

import (
	"strings"
	"testing"
)

// TestMetricsMatchStats: the mirrored metric families on a gathered
// snapshot agree exactly with the statistics snapshot, on a seeded
// fault scenario, and the hot-path histograms cover the same window
// (counts equal the delivered counters after a warmup reset).
func TestMetricsMatchStats(t *testing.T) {
	n, stats := metricsScenario(t)
	defer n.Shutdown()
	snap := n.GatherMetrics()

	intChecks := []struct {
		family string
		want   int64
	}{
		{"mmr_net_flits_generated_total", stats.FlitsGenerated},
		{"mmr_net_flits_delivered_total", stats.FlitsDelivered},
		{"mmr_net_link_flits_total", stats.LinkFlits},
		{"mmr_net_be_generated_total", stats.BEGenerated},
		{"mmr_net_be_delivered_total", stats.BEDelivered},
		{"mmr_net_flits_dropped_total", stats.FlitsDropped},
		{"mmr_net_flits_corrupted_total", stats.FlitsCorrupted},
		{"mmr_net_setup_attempts_total", stats.SetupAttempts},
		{"mmr_net_setup_accepted_total", stats.SetupAccepted},
		{"mmr_net_setup_rejected_total", stats.SetupRejected},
		{"mmr_net_faults_injected_total", stats.FaultsInjected},
		{"mmr_net_faults_repaired_total", stats.FaultsRepaired},
		{"mmr_net_fault_flits_lost_total", stats.FaultFlitsLost},
		{"mmr_net_conns_broken_total", stats.ConnsBroken},
		{"mmr_net_conns_restored_total", stats.ConnsRestored},
	}
	for _, c := range intChecks {
		if got := snap.FamilyTotal(c.family); got != c.want {
			t.Errorf("%s = %d, stats snapshot says %d", c.family, got, c.want)
		}
	}
	if stats.FaultsInjected == 0 || stats.ConnsBroken == 0 {
		t.Fatal("scenario injected no faults — the fault families were tested vacuously")
	}

	// Per-class delay histograms were recorded at eject: their combined
	// count over stream classes equals the delivered counter (both reset
	// at the warmup boundary), and their sum equals the accumulated
	// latency total.
	var streamCount int64
	var streamSum float64
	for _, h := range snap.Histograms {
		if h.Name != "mmr_net_delay_cycles" {
			continue
		}
		if strings.Contains(h.Labels, "best-effort") {
			if h.Count != stats.BEDelivered {
				t.Errorf("BE delay histogram count %d != BEDelivered %d", h.Count, stats.BEDelivered)
			}
			continue
		}
		streamCount += h.Count
		streamSum += h.Sum
	}
	if streamCount != stats.FlitsDelivered {
		t.Errorf("stream delay histogram count %d != FlitsDelivered %d", streamCount, stats.FlitsDelivered)
	}
	if want := stats.Latency.Sum(); streamSum < want-0.5 || streamSum > want+0.5 {
		t.Errorf("stream delay histogram sum %.1f != latency total %.1f", streamSum, want)
	}

	// Grants were executed (hot-path counter family), and the occupancy
	// gauges exist for every port.
	if snap.FamilyTotal("mmr_net_grants_total") == 0 {
		t.Error("no switch grants counted")
	}
	if v, ok := snap.GaugeTotal("mmr_net_cycles", ""); !ok || v != float64(stats.Cycles) {
		t.Errorf("mmr_net_cycles gauge = %v, want %d", v, stats.Cycles)
	}
}

// metricsScenario is detScenario's fault variant returning the live
// network (caller shuts it down) so metrics can be gathered from it.
func metricsScenario(t *testing.T) (*Network, *Stats) {
	t.Helper()
	nets := buildDetNetwork(t, 1, true)
	nets.Run(1200)
	nets.ResetStats()
	nets.Run(1800)
	return nets, nets.Stats()
}

// TestFlightRecorderCapturesFaults: injected link faults and broken
// connections appear in the flight-recorder dump with decoded names.
func TestFlightRecorderCapturesFaults(t *testing.T) {
	n, st := metricsScenario(t)
	defer n.Shutdown()
	if st.FaultsInjected == 0 {
		t.Fatal("scenario injected no faults")
	}
	var b strings.Builder
	n.DumpFlight(&b)
	dump := b.String()
	for _, want := range []string{"link-down", "link-up", "conn-broken"} {
		if !strings.Contains(dump, want) {
			t.Errorf("flight dump missing %q:\n%s", want, dump)
		}
	}
}

// TestFlightSinkDumpsOnFault: with a sink installed, fault transitions
// dump the recorders automatically.
func TestFlightSinkDumpsOnFault(t *testing.T) {
	var b strings.Builder
	n := buildDetNetwork(t, 1, true)
	defer n.Shutdown()
	n.SetFlightSink(&b)
	n.Run(600) // past the cycle-500 FailLinkAt
	if out := b.String(); !strings.Contains(out, "fault transition") || !strings.Contains(out, "link-down") {
		t.Errorf("no automatic flight dump on fault:\n%.400s", out)
	}
}

// TestMetricsGatherDeterministic: gathered snapshots are identical
// across worker counts, like the stats snapshots they mirror.
func TestMetricsGatherDeterministic(t *testing.T) {
	render := func(workers int) string {
		n := buildDetNetwork(t, workers, true)
		defer n.Shutdown()
		n.Run(1200)
		n.ResetStats()
		n.Run(800)
		var b strings.Builder
		if err := n.GatherMetrics().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	ref := render(1)
	if got := render(4); got != ref {
		t.Error("prometheus rendering differs between workers=1 and workers=4")
	}
}
