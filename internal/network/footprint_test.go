package network

import (
	"runtime"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// heapAfterGC returns live heap bytes after a full collection — the basis
// for all footprint math in this file.
func heapAfterGC() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func buildFatTreeNet(tb testing.TB, k int) *Network {
	tb.Helper()
	tp, err := topology.FatTree(k)
	if err != nil {
		tb.Fatal(err)
	}
	n, err := New(DefaultConfig(tp))
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// measureFootprint fits bytes/router from two fabric sizes (the delta
// cancels fixed process overhead) and bytes/flow from a batched bring-up
// on the larger fabric.
func measureFootprint(tb testing.TB) (bytesPerRouter, bytesPerFlow float64) {
	tb.Helper()
	base := heapAfterGC()
	small := buildFatTreeNet(tb, 8)
	afterSmall := heapAfterGC()
	big := buildFatTreeNet(tb, 16)
	afterBig := heapAfterGC()
	runtime.KeepAlive(small)

	smallNodes := topology.FatTreeNodes(8)
	bigNodes := topology.FatTreeNodes(16)
	bytesPerRouter = float64(afterBig-afterSmall) / float64(bigNodes-smallNodes)
	if afterSmall <= base || bytesPerRouter <= 0 {
		tb.Fatalf("implausible fabric footprint: base=%d small=%d big=%d", base, afterSmall, afterBig)
	}

	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 1 * traffic.Mbps}
	reqs := batchReqs(bigNodes, 40, spec) // 40 sessions per router
	before := heapAfterGC()
	res := big.OpenBatch(reqs)
	after := heapAfterGC()
	opened := 0
	for _, r := range res {
		if r.Err == nil {
			opened++
		}
	}
	if opened < len(reqs)*9/10 {
		tb.Fatalf("flow footprint needs a mostly-accepted workload: %d/%d opened", opened, len(reqs))
	}
	bytesPerFlow = float64(after-before) / float64(opened)
	runtime.KeepAlive(big)
	return bytesPerRouter, bytesPerFlow
}

// BenchmarkFabricFootprint reports the fitted per-router and per-flow
// heap cost; `make bench-mem-check` gates these against BENCH_PR8.json.
func BenchmarkFabricFootprint(b *testing.B) {
	bpr, bpf := measureFootprint(b)
	b.ReportMetric(bpr, "bytes/router")
	b.ReportMetric(bpf, "bytes/flow")
	for i := 0; i < b.N; i++ {
	}
}

// TestFabricFootprintBudget extrapolates the linear fit to the
// datacenter target: 4096 routers carrying one million flows must fit in
// well under 4 GB of state.
func TestFabricFootprintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint fit is slow under -short")
	}
	bpr, bpf := measureFootprint(t)
	const routers, flows = 4096, 1e6
	total := bpr*routers + bpf*flows
	const budget = 4 << 30
	t.Logf("fit: %.0f bytes/router, %.0f bytes/flow → %.2f GB at %d routers / %g flows",
		bpr, bpf, total/(1<<30), routers, float64(flows))
	if total >= budget {
		t.Fatalf("extrapolated fabric state %.2f GB exceeds the 4 GB budget", total/(1<<30))
	}
}

// saturatedReqs is the establishment benchmark workload: a feasible
// all-to-all shell plus a heavily oversubscribed hot-spot tail, so both
// the search path and the rejection path are exercised.
func saturatedReqs(nodes int) []OpenReq {
	feasible := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 5 * traffic.Mbps}
	hot := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps}
	reqs := batchReqs(nodes, 3, feasible)
	// Hot spots are cross-pod edge routers (pod 1 of the k=8 tree): a
	// rejected serial Open walks the full 16-path minimal DAG before
	// failing at the ejection port, while the batch pre-check rejects in
	// O(1) once the destination's headroom is gone.
	hotDsts := []int{8, 9, 10, 11}
	for i := 0; i < nodes*30; i++ {
		reqs = append(reqs, OpenReq{Src: i % nodes, Dst: hotDsts[(i/nodes)%len(hotDsts)], Spec: hot})
	}
	return reqs
}

func BenchmarkOpenSerial(b *testing.B) {
	nodes := topology.FatTreeNodes(8)
	reqs := saturatedReqs(nodes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := buildFatTreeNet(b, 8)
		b.StartTimer()
		for _, r := range reqs {
			n.Open(r.Src, r.Dst, r.Spec) //nolint:errcheck // rejections are part of the workload
		}
	}
	b.ReportMetric(float64(len(reqs)), "sessions/op")
}

func BenchmarkOpenBatch(b *testing.B) {
	nodes := topology.FatTreeNodes(8)
	reqs := saturatedReqs(nodes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := buildFatTreeNet(b, 8)
		b.StartTimer()
		n.OpenBatch(reqs)
	}
	b.ReportMetric(float64(len(reqs)), "sessions/op")
}

// TestLargeFabricSmoke is the CI large-fabric job: a 1280-router
// fat tree (k=32) brought up with >100k batched sessions, stepped,
// and checkpointed, with the heap held to a few GB. Compact buffering
// (Depth=2, K=1) keeps the datapath arrays proportionate to the scale.
func TestLargeFabricSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fabric smoke is slow under -short")
	}
	tp, err := topology.FatTree(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 256
	cfg.Depth = 2
	cfg.K = 1
	cfg.Fault.Paranoid = false // O(network) audits are too slow at this scale
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Nodes != 1280 {
		t.Fatalf("FatTree(32) should have 1280 routers, has %d", tp.Nodes)
	}

	// Hosts attach at edge routers, as in a real fat tree — sessions
	// sourced or sunk at aggregation/core routers would funnel their
	// transit through each pod's first edge router and saturate it.
	const k = 32
	var edges []int
	for p := 0; p < k; p++ {
		for i := 0; i < k/2; i++ {
			edges = append(edges, p*k+i)
		}
	}

	// alloc = 1 cycle/round per session: rate just under Bandwidth/roundLen.
	roundLen := cfg.K * cfg.VCs
	rate := traffic.Rate(float64(cfg.Link.Bandwidth) * 0.9 / float64(roundLen))
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}
	var reqs []OpenReq // 196 shells × 512 edge routers = 100,352 sessions
	for s := 1; s <= 196; s++ {
		for i, src := range edges {
			reqs = append(reqs, OpenReq{Src: src, Dst: edges[(i+s)%len(edges)], Spec: spec})
		}
	}
	res := n.OpenBatch(reqs)
	opened := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("session %d (%d→%d): %v", i, reqs[i].Src, reqs[i].Dst, r.Err)
		}
		opened++
	}
	if opened < 100_000 {
		t.Fatalf("smoke target is ≥100k sessions, opened %d", opened)
	}

	n.Run(int64(2 * roundLen))
	if s := n.Stats(); s.FlitsDelivered == 0 {
		t.Fatal("no flits delivered on the large fabric")
	}
	blob, err := n.EncodeState()
	if err != nil {
		t.Fatalf("checkpoint at scale: %v", err)
	}
	if len(blob) == 0 {
		t.Fatal("empty checkpoint")
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 3<<30 {
		t.Fatalf("heap %d bytes exceeds the 3 GB smoke bound", ms.HeapAlloc)
	}
	t.Logf("1280 routers, %d sessions, %d-byte checkpoint, heap %.2f GB",
		opened, len(blob), float64(ms.HeapAlloc)/(1<<30))
}
