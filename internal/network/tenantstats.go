package network

// tenantstats.go is the per-tenant delivery telemetry: the admission
// quota table (internal/admission) tracks what each tenant was *allowed*
// to establish, and these counters track what its sessions actually
// *received* — delivered stream flits and their end-to-end delay
// distribution, per tenant, on the metrics surface
// (mmr_net_tenant_delivered_total, mmr_net_tenant_delay_cycles).
//
// Storage follows the dpStats pattern: flat per-node arrays indexed by a
// dense tenant slot, written only by the goroutine stepping the node
// (eject runs on the destination node's worker), merged in ascending
// node order at gather time. Tenant slots are assigned on the serial
// control path the first time a tenant establishes a connection, and the
// per-node arrays grow there too — the hot path is two increments and a
// small bucket scan, zero allocations.
//
// The registry freezes ordinary series registration once shards exist,
// and the tenant label set only emerges at runtime, so these families
// publish through the metrics.OnSnapshot appender instead of
// pre-registered handles. Tenant telemetry is observability, not model
// state: like the rest of the metrics layer it rides outside
// EncodeState, so checkpoints are unaffected (a restored fabric starts
// its tenant counters at zero, exactly like its other metric mirrors
// before the first gather).

import (
	"fmt"

	"mmr/internal/metrics"
)

// tenantDelayBuckets is the bucket ladder of the per-tenant delay
// histogram — same power-of-two ladder as the per-class delay series so
// the two are directly comparable.
var tenantDelayBuckets = metrics.Pow2Buckets(1, 14) // 1 .. 8192 cycles

// tenantNodeStats is one node's shard of the per-tenant telemetry.
// Slices are indexed by tenant slot; buckets is the flattened histogram
// (tenant-major, len(tenantDelayBuckets)+1 slots each, the last being
// overflow).
type tenantNodeStats struct {
	delivered  []int64
	delayCount []int64
	delaySum   []float64
	buckets    []int64
}

// grow sizes the shard for n tenant slots (control path only).
func (ts *tenantNodeStats) grow(n int) {
	for len(ts.delivered) < n {
		ts.delivered = append(ts.delivered, 0)
		ts.delayCount = append(ts.delayCount, 0)
		ts.delaySum = append(ts.delaySum, 0)
		for i := 0; i <= len(tenantDelayBuckets); i++ {
			ts.buckets = append(ts.buckets, 0)
		}
	}
}

// reset zeroes the shard (warmup boundary, with ResetStats).
func (ts *tenantNodeStats) reset() {
	for i := range ts.delivered {
		ts.delivered[i] = 0
		ts.delayCount[i] = 0
		ts.delaySum[i] = 0
	}
	for i := range ts.buckets {
		ts.buckets[i] = 0
	}
}

// observe records one delivered flit with the given end-to-end delay.
// Hot path: called from eject on the destination node's worker.
func (ts *tenantNodeStats) observe(slot int32, delay float64) {
	ts.delivered[slot]++
	ts.delayCount[slot]++
	ts.delaySum[slot] += delay
	i := 0
	for i < len(tenantDelayBuckets) && delay > tenantDelayBuckets[i] {
		i++
	}
	ts.buckets[int(slot)*(len(tenantDelayBuckets)+1)+i]++
}

// tenantSlotFor returns the dense telemetry slot for a tenant name,
// assigning one — and growing every node's shard — on first sight.
// Serial control path only (connection establishment / restore).
func (n *Network) tenantSlotFor(name string) int32 {
	if i, ok := n.tenantSlots[name]; ok {
		return i
	}
	i := int32(len(n.tenantNames))
	if n.tenantSlots == nil {
		n.tenantSlots = map[string]int32{}
	}
	n.tenantSlots[name] = i
	n.tenantNames = append(n.tenantNames, name)
	for _, nd := range n.nodes {
		nd.tstats.grow(len(n.tenantNames))
	}
	return i
}

// displayTenant maps the default tenant's empty name to a readable
// label value.
func displayTenant(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// appendTenantMetrics is the metrics.OnSnapshot hook: it merges every
// node's tenant shard in ascending node order and appends one counter
// and one histogram series per tenant to the snapshot.
func (n *Network) appendTenantMetrics(snap *metrics.Snapshot) {
	stride := len(tenantDelayBuckets) + 1
	for ti, name := range n.tenantNames {
		labels := fmt.Sprintf("tenant=%q", displayTenant(name))
		cs := metrics.CounterSnap{
			Name:   "mmr_net_tenant_delivered_total",
			Labels: labels,
			Help:   "stream flits delivered to this tenant's sessions",
		}
		hs := metrics.HistSnap{
			Name:    "mmr_net_tenant_delay_cycles",
			Labels:  labels,
			Help:    "end-to-end delay of this tenant's delivered flits",
			Bounds:  tenantDelayBuckets,
			Buckets: make([]int64, stride),
		}
		for _, nd := range n.nodes {
			ts := &nd.tstats
			if ti >= len(ts.delivered) {
				continue
			}
			cs.Total += ts.delivered[ti]
			hs.Count += ts.delayCount[ti]
			hs.Sum += ts.delaySum[ti]
			for b := 0; b < stride; b++ {
				hs.Buckets[b] += ts.buckets[ti*stride+b]
			}
		}
		snap.Counters = append(snap.Counters, cs)
		snap.Histograms = append(snap.Histograms, hs)
	}
}
