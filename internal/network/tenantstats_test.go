package network

import (
	"strings"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// buildTenantNetwork opens CBR connections under two named tenants plus
// the default tenant on a small mesh and runs long enough for every
// tenant to deliver traffic.
func buildTenantNetwork(t *testing.T) (*Network, Config) {
	t.Helper()
	tp, err := topology.Mesh(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 9
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20 Mbps CBR on the paper link sends a flit roughly every 60 cycles,
	// so every tenant delivers plenty of traffic within a short run.
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 20 * traffic.Mbps}
	opens := []struct {
		tenant   string
		src, dst int
	}{
		{"alice", 0, 8}, {"alice", 1, 7}, {"bob", 2, 6}, {"", 3, 5},
	}
	for _, o := range opens {
		if _, err := n.OpenAs(o.tenant, o.src, o.dst, spec); err != nil {
			t.Fatalf("OpenAs(%q, %d, %d): %v", o.tenant, o.src, o.dst, err)
		}
	}
	return n, cfg
}

// TestTenantDeliveredMetrics: per-tenant delivered counters partition
// the global delivered total, and each tenant's delay histogram count
// matches its counter.
func TestTenantDeliveredMetrics(t *testing.T) {
	n, _ := buildTenantNetwork(t)
	defer n.Shutdown()
	n.Run(2000)

	st := n.Stats()
	if st.FlitsDelivered == 0 {
		t.Fatal("scenario delivered nothing")
	}
	snap := n.GatherMetrics()

	if got := snap.FamilyTotal("mmr_net_tenant_delivered_total"); got != st.FlitsDelivered {
		t.Fatalf("tenant delivered counters sum to %d, Stats says %d", got, st.FlitsDelivered)
	}

	perTenant := map[string]int64{}
	for _, tenant := range []string{"alice", "bob", "default"} {
		labels := `tenant="` + tenant + `"`
		v, ok := snap.CounterTotal("mmr_net_tenant_delivered_total", labels)
		if !ok {
			t.Fatalf("no delivered counter for %s", labels)
		}
		if v <= 0 {
			t.Fatalf("tenant %q delivered %d, want > 0", tenant, v)
		}
		perTenant[tenant] = v

		var hist *struct {
			count int64
			sum   float64
		}
		for _, h := range snap.Histograms {
			if h.Name == "mmr_net_tenant_delay_cycles" && h.Labels == labels {
				var bucketSum int64
				for _, b := range h.Buckets {
					bucketSum += b
				}
				if bucketSum != h.Count {
					t.Fatalf("tenant %q: histogram buckets sum to %d, count %d", tenant, bucketSum, h.Count)
				}
				hist = &struct {
					count int64
					sum   float64
				}{h.Count, h.Sum}
				break
			}
		}
		if hist == nil {
			t.Fatalf("no delay histogram for %s", labels)
		}
		if hist.count != v {
			t.Fatalf("tenant %q: histogram count %d != delivered counter %d", tenant, hist.count, v)
		}
		if hist.sum <= 0 {
			t.Fatalf("tenant %q: delay sum %v, want > 0 (delivery is never zero-delay)", tenant, hist.sum)
		}
	}
	if perTenant["alice"] <= perTenant["bob"]/4 || perTenant["bob"] <= perTenant["alice"]/8 {
		// Alice has two connections to Bob's one; both should land in
		// the same order of magnitude. This is a sanity bound, not an
		// exact split.
		t.Fatalf("implausible tenant split: %v", perTenant)
	}

	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mmr_net_tenant_delivered_total{tenant="alice"}`,
		`mmr_net_tenant_delivered_total{tenant="default"}`,
		`mmr_net_tenant_delay_cycles_count{tenant="bob"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus exposition missing %q", want)
		}
	}

	// ResetStats clears tenant telemetry along with everything else.
	n.ResetStats()
	snap = n.GatherMetrics()
	if got := snap.FamilyTotal("mmr_net_tenant_delivered_total"); got != 0 {
		t.Fatalf("after ResetStats tenant delivered total = %d, want 0", got)
	}
}

// TestTenantMetricsSurviveRestore: a checkpoint round-trip re-derives
// tenant slots, so telemetry keeps attributing correctly after restore
// even though the slots themselves are not part of the payload.
func TestTenantMetricsSurviveRestore(t *testing.T) {
	n, cfg := buildTenantNetwork(t)
	defer n.Shutdown()
	n.Run(600)
	blob, err := n.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	m.ResetStats()
	n.ResetStats()
	n.Run(1400)
	m.Run(1400)

	sn, sm := n.GatherMetrics(), m.GatherMetrics()
	for _, tenant := range []string{"alice", "bob", "default"} {
		labels := `tenant="` + tenant + `"`
		a, okA := sn.CounterTotal("mmr_net_tenant_delivered_total", labels)
		b, okB := sm.CounterTotal("mmr_net_tenant_delivered_total", labels)
		if !okA || !okB {
			t.Fatalf("tenant %q: counter missing (orig %v, restored %v)", tenant, okA, okB)
		}
		if a != b {
			t.Fatalf("tenant %q: original delivered %d, restored delivered %d", tenant, a, b)
		}
		if a == 0 {
			t.Fatalf("tenant %q delivered nothing in the comparison window", tenant)
		}
	}
}
