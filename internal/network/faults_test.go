package network

import (
	"strings"
	"testing"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// healingScenario builds the acceptance scenario: an irregular 12-router
// fabric carrying several CBR connections, and a victim connection whose
// first-hop link is scheduled to fail at cycle 500 — chosen so the
// surviving topology still connects its endpoints, i.e. an alternate
// path exists for restoration to find.
func healingScenario(t *testing.T, policy FaultPolicy) (*Network, *Conn) {
	t.Helper()
	rng := sim.NewRNG(11)
	tp, err := topology.Irregular(12, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	cfg.Seed = 7
	cfg.Fault = policy
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var victim *Conn
	for i := 0; i < 8; i++ {
		src, dst := i, (i+5)%12
		c, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps})
		if err != nil {
			continue
		}
		if victim != nil || len(c.Path) == 0 {
			continue
		}
		// Victim candidate: removing its first-hop link must leave the
		// endpoints connected, so restoration has somewhere to go.
		hop := c.Path[0]
		tp.SetLinkUp(hop.Node, hop.Port, false)
		reachable := tp.ShortestDists(c.Src)[c.Dst] > 0
		tp.SetLinkUp(hop.Node, hop.Port, true)
		if reachable {
			victim = c
		}
	}
	if victim == nil {
		t.Fatal("no connection with an alternate path; adjust seeds")
	}
	hop := victim.Path[0]
	plan := faults.NewPlan(3).FailLinkAt(500, hop.Node, hop.Port).RestoreLinkAt(4000, hop.Node, hop.Port)
	if err := n.ApplyPlan(plan, 10_000); err != nil {
		t.Fatal(err)
	}
	return n, victim
}

// TestFaultBreaksAndRestoresConnection is the tentpole acceptance demo:
// a scheduled link failure breaks at least one CBR connection; the
// network re-establishes it on a surviving path within bounded cycles;
// flits keep flowing end to end; and after closing every connection the
// fabric holds zero leaked VCs, credits or bandwidth.
func TestFaultBreaksAndRestoresConnection(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: true, MaxRetries: 5, RetryBackoff: 32, Degrade: true, Paranoid: true,
	})
	n.Run(5000)

	st := n.Stats()
	if st.FaultsInjected != 1 || st.FaultsRepaired != 1 {
		t.Fatalf("faults injected=%d repaired=%d, want 1/1", st.FaultsInjected, st.FaultsRepaired)
	}
	if st.ConnsBroken < 1 {
		t.Fatal("the scheduled link failure broke no connection")
	}
	if victim.Restores < 1 || !victim.Open() || victim.Broken() || victim.Degraded {
		t.Fatalf("victim not restored: restores=%d open=%v broken=%v degraded=%v",
			victim.Restores, victim.Open(), victim.Broken(), victim.Degraded)
	}
	if st.ConnsRestored < 1 {
		t.Fatalf("stats recorded %d restorations", st.ConnsRestored)
	}
	// Bounded restoration: first re-search fires the cycle after the
	// break and succeeds well within one backoff ladder.
	if max := st.RestoreLatency.Max(); max > 500 {
		t.Fatalf("restoration took %.0f cycles", max)
	}
	if st.FlitsDelivered == 0 {
		t.Fatal("no flits delivered across the healed fabric")
	}
	// The victim's traffic resumed after restoration.
	if !victim.Open() || len(victim.VCs) == 0 {
		t.Fatal("victim carries no installed path after restoration")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after healing: %v", err)
	}
	// Session log tells the story in order: link-down before conn-broken
	// before conn-restored.
	order := map[string]int{}
	for i, ev := range n.SessionEvents() {
		if _, seen := order[ev.Kind]; !seen {
			order[ev.Kind] = i
		}
	}
	for _, pair := range [][2]string{{"link-down", "conn-broken"}, {"conn-broken", "conn-restored"}, {"conn-restored", "link-up"}} {
		a, oka := order[pair[0]]
		b, okb := order[pair[1]]
		if !oka || !okb || a > b {
			t.Fatalf("session log out of order: %v", n.SessionEvents())
		}
	}

	// Zero-leak shutdown: close everything, then the exact-equality audit
	// (no live connections, no probes) must hold.
	for _, c := range n.Conns() {
		if !c.closed && !c.Broken() {
			if err := n.DrainAndClose(c, 5000); err != nil {
				t.Fatalf("drain conn %d: %v", c.ID, err)
			}
		}
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("resources leaked after full teardown: %v", err)
	}
}

// TestFaultDegradesWithoutRestore: the same scenario with restoration
// disabled degrades the broken connection to a best-effort flow instead.
func TestFaultDegradesWithoutRestore(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: false, MaxRetries: 5, RetryBackoff: 32, Degrade: true, Paranoid: true,
	})
	beBefore := n.Stats().BEGenerated
	n.Run(5000)
	st := n.Stats()
	if !victim.Degraded || victim.Open() {
		t.Fatalf("victim should be degraded: degraded=%v open=%v", victim.Degraded, victim.Open())
	}
	if st.ConnsDegraded < 1 || st.ConnsRestored != 0 {
		t.Fatalf("degraded=%d restored=%d, want >=1/0", st.ConnsDegraded, st.ConnsRestored)
	}
	if st.BEGenerated <= beBefore {
		t.Fatal("degraded connection generates no best-effort traffic")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after degradation: %v", err)
	}
}

// TestCloseDegradedRetiresFallback: hanging up a degraded session must
// retire its best-effort fallback flow — otherwise every degraded
// session leaks an immortal generator and a long-lived fabric drowns in
// fallback traffic under churn.
func TestCloseDegradedRetiresFallback(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: false, MaxRetries: 5, RetryBackoff: 32, Degrade: true, Paranoid: true,
	})
	n.Run(5000)
	if !victim.Degraded {
		t.Fatalf("victim should be degraded (broken=%v lost=%v)", victim.Broken(), victim.Lost())
	}
	if err := n.Close(victim); err != nil {
		t.Fatalf("close degraded: %v", err)
	}
	if !victim.Closed() {
		t.Fatal("degraded connection not marked closed")
	}
	if err := n.Close(victim); err == nil {
		t.Fatal("double close of a degraded connection succeeded")
	}
	// The failed link may have broken (and degraded) other connections
	// sharing it; hang those up too so no fallback generator remains.
	for _, c := range n.Conns() {
		if c.Degraded && !c.Closed() {
			if err := n.Close(c); err != nil {
				t.Fatalf("close degraded conn %d: %v", c.ID, err)
			}
		}
	}
	// Let in-flight fallback packets drain, then confirm the generators
	// are gone: no new best-effort traffic appears.
	n.Run(2000)
	before := n.Stats().BEGenerated
	n.Run(5000)
	if after := n.Stats().BEGenerated; after != before {
		t.Fatalf("retired fallback flow still generates: %d -> %d", before, after)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after degraded close: %v", err)
	}
}

// TestFaultLostWithoutDegrade: with both restoration and degradation off
// the session is dropped outright.
func TestFaultLostWithoutDegrade(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: false, Degrade: false, MaxRetries: 0, RetryBackoff: 1, Paranoid: true,
	})
	n.Run(2000)
	if !victim.Lost() || victim.Open() || victim.Degraded {
		t.Fatalf("victim should be lost: lost=%v open=%v degraded=%v", victim.Lost(), victim.Open(), victim.Degraded)
	}
	if st := n.Stats(); st.ConnsLost < 1 {
		t.Fatalf("stats recorded %d lost connections", st.ConnsLost)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after loss: %v", err)
	}
}

// TestRestoreExhaustedDegrades: failing every link of the victim's source
// router makes restoration impossible; after the retry budget the
// connection falls back to best-effort.
func TestRestoreExhaustedDegrades(t *testing.T) {
	rng := sim.NewRNG(11)
	tp, _ := topology.Irregular(12, 6, 3, rng)
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	cfg.Seed = 7
	cfg.Fault = FaultPolicy{Restore: true, MaxRetries: 2, RetryBackoff: 4, Degrade: true, Paranoid: true}
	n, _ := New(cfg)
	c, err := n.Open(0, 6, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 5 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	if err := n.FailRouter(0); err != nil {
		t.Fatal(err)
	}
	n.Run(2000)
	if !c.Degraded {
		t.Fatalf("connection should have degraded after exhausting retries (broken=%v lost=%v)", c.Broken(), c.Lost())
	}
	if st := n.Stats(); st.SetupRetries < 2 {
		t.Fatalf("expected >=2 retries, got %d", st.SetupRetries)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Repair the router: the degraded session stays best-effort (no
	// re-promotion), but new guaranteed connections establish again.
	if err := n.RestoreRouter(0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Open(0, 6, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 5 * traffic.Mbps}); err != nil {
		t.Fatalf("open after router repair: %v", err)
	}
}

// TestImpairedLinkPreservesFlowControl: a lossy link drops flits but the
// synthesized credit returns keep the conservation invariant intact, and
// the connection still drains and closes cleanly.
func TestImpairedLinkPreservesFlowControl(t *testing.T) {
	tp, _ := topology.Mesh(3, 1, 4) // chain 0-1-2
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	cfg.Seed = 5
	n, _ := New(cfg)
	plan := faults.NewPlan(21).Impair(0, 0, 0.25, 0.05) // east link out of node 0
	if err := n.ApplyPlan(plan, 1); err != nil {
		t.Fatal(err)
	}
	c, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddBestEffortFlow(0, 2, 0.01); err != nil {
		t.Fatal(err)
	}
	n.Run(20_000)
	st := n.Stats()
	if st.FlitsDropped == 0 {
		t.Fatal("a 25% lossy link dropped nothing over 20k cycles")
	}
	if st.FlitsCorrupted == 0 {
		t.Fatal("a 5% corrupting link corrupted nothing")
	}
	if st.FlitsDelivered == 0 {
		t.Fatal("nothing survived the lossy link")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants under loss: %v", err)
	}
	if err := n.DrainAndClose(c, 5000); err != nil {
		t.Fatalf("drain over lossy link: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("leak after closing over lossy link: %v", err)
	}
}

// TestOpenWithRetry: a rejected search succeeds on a later attempt once
// the blocking connection closes.
func TestOpenWithRetry(t *testing.T) {
	tp, _ := topology.Mesh(3, 1, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	cfg.Seed = 2
	n, _ := New(cfg)
	// Saturate the 0→1 link.
	var blockers []*Conn
	for {
		c, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps})
		if err != nil {
			break
		}
		blockers = append(blockers, c)
	}
	if len(blockers) == 0 {
		t.Fatal("link never saturated")
	}
	var got *Conn
	var gotErr error
	fired := false
	err := n.OpenWithRetry(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps},
		func(c *Conn, err error) { got, gotErr, fired = c, err, true })
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("first attempt should have been rejected and backed off")
	}
	// Free the bandwidth before the retry fires (no cycles have run, so
	// the blocker has nothing buffered and closes immediately).
	if err := n.Close(blockers[0]); err != nil {
		t.Fatal(err)
	}
	n.Run(5000)
	if !fired || gotErr != nil || got == nil || !got.Open() {
		t.Fatalf("retry did not establish: fired=%v err=%v", fired, gotErr)
	}
	if st := n.Stats(); st.SetupRetries < 1 {
		t.Fatalf("no retry counted: %d", st.SetupRetries)
	}
	// Invalid endpoints are rejected synchronously.
	if err := n.OpenWithRetry(0, 0, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}, nil); err == nil {
		t.Fatal("same-node endpoints accepted")
	}
}

// TestOpenPanicReleasesResources: a panic escaping the per-hop admission
// logic mid-search must not leak the entry VC or partial reservations.
func TestOpenPanicReleasesResources(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	n, _ := New(cfg)
	calls := 0
	searchHook = func() {
		calls++
		if calls == 3 {
			panic("injected admission fault")
		}
	}
	defer func() { searchHook = nil }()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not propagate")
			}
		}()
		n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps})
	}()
	searchHook = nil
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("mid-search panic leaked resources: %v", err)
	}
	// The fabric is still fully usable.
	if _, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps}); err != nil {
		t.Fatalf("open after recovered panic: %v", err)
	}
}

// TestCloseIdempotentAndGuarded: closing twice errors, closing a broken
// connection errors, and none of it double-releases resources.
func TestCloseIdempotentAndGuarded(t *testing.T) {
	tp, _ := topology.Mesh(3, 1, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	n, _ := New(cfg)
	c, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(c); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(c); err == nil || !strings.Contains(err.Error(), "already closed") {
		t.Fatalf("second close: %v", err)
	}
	if err := n.DrainAndClose(c, 10); err == nil {
		t.Fatal("drain of a closed connection succeeded")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A fault-broken connection cannot be closed (its resources are
	// already released; restoration owns it).
	cfg2 := DefaultConfig(tp)
	cfg2.VCs = 8
	cfg2.Fault.Restore = false
	cfg2.Fault.Degrade = false
	n2, _ := New(cfg2)
	c2, err := n2.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	n2.FailLink(c2.Path[0].Node, c2.Path[0].Port)
	if err := n2.Close(c2); err == nil {
		t.Fatal("closed a fault-broken connection")
	}
	if err := n2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainAndCloseUnderContention: connections sharing a saturated
// bottleneck all drain and close, leaving zero residue.
func TestDrainAndCloseUnderContention(t *testing.T) {
	tp, _ := topology.Mesh(3, 1, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 16
	cfg.Seed = 9
	n, _ := New(cfg)
	var conns []*Conn
	for i := 0; i < 6; i++ {
		c, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps})
		if err != nil {
			break
		}
		conns = append(conns, c)
	}
	if len(conns) < 2 {
		t.Fatalf("wanted >=2 contending connections, got %d", len(conns))
	}
	n.Run(3000) // fill the pipeline under contention
	// Step to a cycle where the first connection really has flits in
	// flight, so a 1-cycle drain limit cannot possibly finish (the flit
	// must still traverse hops, and its credits take another wire delay).
	buffered := func(c *Conn) int {
		total := c.niQueue.Len()
		for i, ref := range c.VCs {
			total += n.nodes[c.Nodes[i]].mems[ref.Port].Len(ref.VC)
		}
		return total
	}
	for i := 0; i < 10_000 && buffered(conns[0]) == 0; i++ {
		n.Step()
	}
	if buffered(conns[0]) == 0 {
		t.Fatal("connection never had flits in flight")
	}
	// A drain limit too short to empty the pipeline reports failure and
	// releases nothing — the connection remains intact and accounted.
	if err := n.DrainAndClose(conns[0], 1); err == nil {
		t.Fatal("1-cycle drain of a loaded connection succeeded")
	}
	if conns[0].closed {
		t.Fatal("failed drain marked the connection closed")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("failed drain corrupted state: %v", err)
	}
	for _, c := range conns {
		if err := n.DrainAndClose(c, 10_000); err != nil {
			t.Fatalf("drain conn %d under contention: %v", c.ID, err)
		}
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("residue after contended teardown: %v", err)
	}
	st := n.Stats()
	if st.Closed != int64(len(conns)) {
		t.Fatalf("closed %d of %d", st.Closed, len(conns))
	}
}

// TestFailRestoreIdempotent: repeated fail/restore of the same link and
// operations on unwired ports behave sanely.
func TestFailRestoreIdempotent(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	n, _ := New(cfg)
	if err := n.FailLink(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(0, 0); err != nil { // already down: no-op
		t.Fatal(err)
	}
	if st := n.Stats(); st.FaultsInjected != 1 {
		t.Fatalf("double-fail counted twice: %d", st.FaultsInjected)
	}
	if err := n.RestoreLink(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreLink(0, 0); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.FaultsRepaired != 1 {
		t.Fatalf("double-restore counted twice: %d", st.FaultsRepaired)
	}
	if err := n.FailLink(0, 1); err == nil { // west port of node 0 is unwired
		t.Fatal("failed an unwired port")
	}
	if err := n.FailLink(-1, 0); err == nil {
		t.Fatal("failed an out-of-range node")
	}
	if err := n.RestoreRouter(99); err == nil {
		t.Fatal("restored an out-of-range router")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
