package network

import (
	"fmt"

	"mmr/internal/faults"
	"mmr/internal/sim"
	"mmr/internal/traffic"
)

// durable.go reifies the control plane's scheduled work as data. The
// event engine stores closures, which a checkpoint cannot serialize; so
// every event the network itself schedules — fault-plan transitions,
// restoration retries, OpenWithRetry re-searches — is described by a
// durableEvent record registered in Network.durables, and the closure
// handed to the engine merely dispatches on that record. EncodeState
// refuses to snapshot while any *non*-durable event is pending (user
// code scheduled through Network.Schedule holds arbitrary closures),
// which makes "pending events == durable journal" an explicit, checked
// precondition of every checkpoint.

// durableKind discriminates the journal's event records.
type durableKind uint8

const (
	// durFault applies faultSchedule[a] (a fault-plan transition).
	durFault durableKind = iota + 1
	// durRestore runs restoration attempt b for connection a.
	durRestore
	// durOpenRetry runs the next queued re-search of openRetries[a].
	durOpenRetry
	// durPromote runs a re-promotion scan over degraded connections:
	// a is the promotion generation the scan belongs to (stale
	// generations no-op), b is the scan's backoff attempt.
	durPromote
)

// durableEvent is one journaled control-plane event: its engine
// insertion sequence (the FIFO tie-break a restore must reproduce), its
// deadline, and a kind plus two operands interpreted per kind.
type durableEvent struct {
	seq  uint64
	at   int64
	kind durableKind
	a, b int64
}

// openRetry is the pending state of one OpenWithRetry call whose first
// synchronous attempt failed. The done callback is process-local and is
// deliberately NOT checkpointed: after a restore the retry sequence
// continues with identical fabric-visible effects (searches, RNG draws,
// admission changes), but completion is reported to no one — the daemon
// layer treats a restore as having answered all in-flight requests with
// "retry pending".
type openRetry struct {
	src, dst int
	tenant   string
	spec     traffic.ConnSpec
	attempt  int
	done     func(*Conn, error)
}

// scheduleDurable registers a journal record and schedules its dispatch
// on the event engine at absolute cycle at.
func (n *Network) scheduleDurable(at int64, kind durableKind, a, b int64) {
	ev := &durableEvent{at: at, kind: kind, a: a, b: b}
	n.events.At(sim.Time(at), sim.EventFunc(func(sim.Time) {
		delete(n.durables, ev.seq)
		n.fireDurable(ev)
	}))
	ev.seq = n.events.LastSeq()
	n.durables[ev.seq] = ev
}

// fireDurable dispatches a journaled event. It runs on the serial event
// path between flit cycles, exactly like the closures it replaces.
func (n *Network) fireDurable(ev *durableEvent) {
	switch ev.kind {
	case durFault:
		n.applyFaultEvent(n.faultSchedule[ev.a])
	case durRestore:
		n.restoreAttempt(n.conns[ev.a], int(ev.b))
	case durOpenRetry:
		n.openAttempt(ev.a)
	case durPromote:
		n.promoteScan(ev.a, int(ev.b))
	default:
		panic(fmt.Sprintf("network: unknown durable event kind %d", ev.kind))
	}
}

// applyFaultEvent applies one expanded fault-plan transition.
func (n *Network) applyFaultEvent(ev faults.Event) {
	switch ev.Kind {
	case faults.LinkDown:
		n.FailLink(ev.Node, ev.Port)
	case faults.LinkUp:
		n.RestoreLink(ev.Node, ev.Port)
	case faults.RouterDown:
		n.FailRouter(ev.Node)
	case faults.RouterUp:
		n.RestoreRouter(ev.Node)
	}
}

// restoreAttempt is one re-establishment attempt for a fault-broken
// connection (attempt is 0-based). On failure within budget it journals
// the next attempt with exponential backoff and jitter; past the budget
// the connection is abandoned to the degrade path.
func (n *Network) restoreAttempt(c *Conn, attempt int) {
	if c.closed || !c.broken || c.Degraded || c.lost {
		return
	}
	if err := n.establish(c); err == nil {
		c.broken = false
		c.Restores++
		n.m.connsRestored++
		n.m.restoreLatency.Add(float64(n.now - c.brokenAt))
		n.logEvent(SessionEvent{Kind: "conn-restored", Conn: c.ID, Node: c.Src, Port: -1,
			Detail: fmt.Sprintf("after %d cycles, attempt %d", n.now-c.brokenAt, attempt+1)})
		n.recordFlight(c.Src, evConnRestored, int32(c.Dst), int32(attempt+1), int64(c.ID))
		if n.cfg.Fault.Paranoid {
			n.mustInvariants()
		}
		// A successful restoration proves establishment is finding
		// resources again — give degraded sessions a shot too.
		n.schedulePromotion()
		return
	}
	if attempt >= n.cfg.Fault.MaxRetries {
		n.abandon(c)
		return
	}
	delay := n.retryBackoff(attempt)
	n.m.setupRetries++
	n.scheduleDurable(n.now+delay, durRestore, int64(c.ID), int64(attempt+1))
}

// openAttempt runs the next re-search of a journaled OpenWithRetry. A
// missing registry entry (possible only through manual journal editing)
// is a no-op.
func (n *Network) openAttempt(id int64) {
	or, ok := n.openRetries[id]
	if !ok {
		return
	}
	c, err := n.OpenAs(or.tenant, or.src, or.dst, or.spec)
	if err == nil {
		delete(n.openRetries, id)
		if or.done != nil {
			or.done(c, nil)
		}
		return
	}
	if or.attempt >= n.cfg.Fault.MaxRetries {
		delete(n.openRetries, id)
		if or.done != nil {
			or.done(nil, err)
		}
		return
	}
	delay := n.retryBackoff(or.attempt)
	or.attempt++
	n.m.setupRetries++
	n.scheduleDurable(n.now+delay, durOpenRetry, id, 0)
}
