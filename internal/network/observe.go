package network

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"mmr/internal/flit"
	"mmr/internal/metrics"
)

// observe.go is the network's observability layer: a zero-alloc metrics
// registry sharded per node exactly like dpStats, plus one flight
// recorder per node. Counters the simulator already maintains (dpStats,
// netStats, scheduler counters) are mirrored into the registry at
// gather time so the hot path is not charged twice for them; only
// genuinely new series — per-class delay/jitter histograms, per-output
// grant counters, claim failures, dead-output skips — record inside the
// flit cycle, and each of those is a slice increment on the node's own
// shard. Nothing here enters Stats, so snapshots stay bit-identical to
// the uninstrumented simulation for every worker count.

// flightRingSize is the per-node flight-recorder capacity. 256 events
// covers several round-trips of fault → teardown → restore on every
// topology the tests use while keeping the per-node footprint at 8 KiB.
const flightRingSize = 256

// Flight-recorder event codes (metrics.Event.Code).
const (
	evLinkDown uint16 = iota + 1
	evLinkUp
	evConnBroken
	evConnRestored
	evConnDegraded
	evConnLost
	evFlitDropped
	evFlitCorrupted
	evInvariantFail
	evConnModified
	evConnPromoted
)

// FlightEventName decodes a network flight-recorder event code.
func FlightEventName(code uint16) string {
	switch code {
	case evLinkDown:
		return "link-down"
	case evLinkUp:
		return "link-up"
	case evConnBroken:
		return "conn-broken"
	case evConnRestored:
		return "conn-restored"
	case evConnDegraded:
		return "conn-degraded"
	case evConnLost:
		return "conn-lost"
	case evFlitDropped:
		return "flit-dropped"
	case evFlitCorrupted:
		return "flit-corrupted"
	case evInvariantFail:
		return "invariant-fail"
	case evConnModified:
		return "conn-modified"
	case evConnPromoted:
		return "conn-promoted"
	default:
		return fmt.Sprintf("code=%d", code)
	}
}

// netMetrics holds every metric handle the network records or mirrors.
type netMetrics struct {
	reg *metrics.Registry

	// Hot-path series, recorded inside the flit cycle on the stepping
	// node's shard.
	grantsByPort []metrics.Counter // executed switch grants, per output port
	claimFailed  metrics.Counter   // packet grants dropped: no free VC downstream
	deadOutput   metrics.Counter   // packet grants dropped: chosen output link down
	classDelay   [flit.NumClasses]metrics.Histogram
	classJitter  [flit.NumClasses]metrics.Histogram

	// Mirrored from dpStats / scheduler counters at gather time.
	generated      metrics.Counter
	delivered      metrics.Counter
	linkFlits      metrics.Counter
	beGenerated    metrics.Counter
	beDelivered    metrics.Counter
	flitsDropped   metrics.Counter
	flitsCorrupted metrics.Counter
	schedNominated metrics.Counter
	schedStalled   metrics.Counter
	schedExhausted metrics.Counter
	schedBoosted   metrics.Counter

	// Session-level counters, mirrored from netStats into shard 0 (they
	// are maintained on the serial control path, which has no shard).
	setupAttempts  metrics.Counter
	setupAccepted  metrics.Counter
	setupRejected  metrics.Counter
	setupRetries   metrics.Counter
	closed         metrics.Counter
	faultsInjected metrics.Counter
	faultsRepaired metrics.Counter
	faultFlitsLost metrics.Counter
	connsBroken    metrics.Counter
	connsRestored  metrics.Counter
	connsDegraded  metrics.Counter
	connsPromoted  metrics.Counter
	connsLost      metrics.Counter

	// Gauges computed from live state by the gather collector.
	cycles         metrics.Gauge
	vcOccupied     []metrics.Gauge // buffered flits per input port
	vcReserved     []metrics.Gauge // in-use VCs per input port
	guaranteedLoad []metrics.Gauge // allocated bandwidth fraction per output port
	switchUtil     metrics.Gauge   // executed grants / (cycles × radix), per node
}

// classLabel renders a flit class as a metric label value.
func classLabel(c flit.Class) string {
	switch c {
	case flit.ClassCBR:
		return "cbr"
	case flit.ClassVBR:
		return "vbr"
	case flit.ClassControl:
		return "control"
	default:
		return "best-effort"
	}
}

// initMetrics registers the network's metric catalog, creates one shard
// per node, and installs the gather-time collector. Must run after the
// nodes are built (New) and before any Step.
func (n *Network) initMetrics() {
	reg := metrics.NewSharded("node")
	nm := &netMetrics{reg: reg}
	radix := n.cfg.radix()

	delayBuckets := metrics.Pow2Buckets(1, 14)  // 1 .. 8192 cycles
	jitterBuckets := metrics.Pow2Buckets(1, 10) // 1 .. 512 cycles

	for p := 0; p < radix; p++ {
		port := strconv.Itoa(p)
		nm.grantsByPort = append(nm.grantsByPort, reg.Counter(
			"mmr_net_grants_total", "switch grants executed per output port", "port", port))
		nm.vcOccupied = append(nm.vcOccupied, reg.Gauge(
			"mmr_net_vc_occupied_flits", "flits buffered per input port", "port", port))
		nm.vcReserved = append(nm.vcReserved, reg.Gauge(
			"mmr_net_vc_reserved", "virtual channels in use per input port", "port", port))
		nm.guaranteedLoad = append(nm.guaranteedLoad, reg.Gauge(
			"mmr_net_guaranteed_load", "guaranteed-bandwidth fraction allocated per output port", "port", port))
	}
	nm.claimFailed = reg.Counter("mmr_net_claim_failed_total",
		"packet grants dropped because no downstream VC was free")
	nm.deadOutput = reg.Counter("mmr_net_dead_output_skips_total",
		"packet grants dropped because the chosen output link was down")
	for c := 0; c < flit.NumClasses; c++ {
		cl := classLabel(flit.Class(c))
		nm.classDelay[c] = reg.Histogram("mmr_net_delay_cycles",
			"end-to-end delay by service class", delayBuckets, "class", cl)
		nm.classJitter[c] = reg.Histogram("mmr_net_jitter_cycles",
			"delay difference between successive flits of a connection", jitterBuckets, "class", cl)
	}

	nm.generated = reg.Counter("mmr_net_flits_generated_total", "stream flits injected")
	nm.delivered = reg.Counter("mmr_net_flits_delivered_total", "stream flits ejected")
	nm.linkFlits = reg.Counter("mmr_net_link_flits_total", "flits transmitted onto inter-router links")
	nm.beGenerated = reg.Counter("mmr_net_be_generated_total", "best-effort packets injected")
	nm.beDelivered = reg.Counter("mmr_net_be_delivered_total", "best-effort packets ejected")
	nm.flitsDropped = reg.Counter("mmr_net_flits_dropped_total", "flits dropped by link impairments")
	nm.flitsCorrupted = reg.Counter("mmr_net_flits_corrupted_total", "flits corrupted by link impairments")
	nm.schedNominated = reg.Counter("mmr_net_sched_nominated_total", "candidates handed to the switch arbiter")
	nm.schedStalled = reg.Counter("mmr_net_sched_credit_stalled_total", "VC-cycles with a flit buffered but no downstream credit")
	nm.schedExhausted = reg.Counter("mmr_net_sched_round_exhausted_total", "VC-cycles passed over: per-round allocation consumed")
	nm.schedBoosted = reg.Counter("mmr_net_sched_bias_boosted_total", "nominated candidates lifted above base priority by the dynamic bias")

	nm.setupAttempts = reg.Counter("mmr_net_setup_attempts_total", "connection establishment attempts")
	nm.setupAccepted = reg.Counter("mmr_net_setup_accepted_total", "connection establishments accepted")
	nm.setupRejected = reg.Counter("mmr_net_setup_rejected_total", "connection establishments rejected")
	nm.setupRetries = reg.Counter("mmr_net_setup_retries_total", "establishment re-searches scheduled")
	nm.closed = reg.Counter("mmr_net_conns_closed_total", "connections closed gracefully")
	nm.faultsInjected = reg.Counter("mmr_net_faults_injected_total", "link-down transitions applied")
	nm.faultsRepaired = reg.Counter("mmr_net_faults_repaired_total", "link-up transitions applied")
	nm.faultFlitsLost = reg.Counter("mmr_net_fault_flits_lost_total", "flits purged by link failures and teardowns")
	nm.connsBroken = reg.Counter("mmr_net_conns_broken_total", "connections torn down by faults")
	nm.connsRestored = reg.Counter("mmr_net_conns_restored_total", "connections re-established on a surviving path")
	nm.connsDegraded = reg.Counter("mmr_net_conns_degraded_total", "connections downgraded to best-effort")
	nm.connsPromoted = reg.Counter("mmr_net_conns_promoted_total", "connections re-promoted from best-effort to guaranteed service")
	nm.connsLost = reg.Counter("mmr_net_conns_lost_total", "connections abandoned after failed restoration")

	nm.cycles = reg.Gauge("mmr_net_cycles", "flit cycles simulated since the last stats reset")
	nm.switchUtil = reg.Gauge("mmr_net_switch_utilization",
		"executed grants per node per cycle, normalized by radix")

	for _, nd := range n.nodes {
		nd.ms = reg.NewShard()
		nd.rec = metrics.NewRecorder(flightRingSize)
	}
	reg.OnGather(n.collectMetrics)
	reg.OnSnapshot(n.appendTenantMetrics)
	n.nm = nm
}

// collectMetrics mirrors simulator-maintained state into the registry.
// It runs at the start of every Gather, serially, nodes in ascending
// order — never concurrently with the flit cycle.
func (n *Network) collectMetrics() {
	nm := n.nm
	radix := n.cfg.radix()
	for _, nd := range n.nodes {
		d := &nd.stats
		nd.ms.Store(nm.generated, d.generated)
		nd.ms.Store(nm.delivered, d.delivered)
		nd.ms.Store(nm.linkFlits, d.linkFlits)
		nd.ms.Store(nm.beGenerated, d.beGenerated)
		nd.ms.Store(nm.beDelivered, d.beDelivered)
		nd.ms.Store(nm.flitsDropped, d.flitsDropped)
		nd.ms.Store(nm.flitsCorrupted, d.flitsCorrupted)

		var nom, stall, exh, boost int64
		var grants int64
		for p := 0; p < radix; p++ {
			lc := nd.links[p].Counters()
			nom += lc.Nominated
			stall += lc.CreditStalled
			exh += lc.RoundExhausted
			boost += lc.BiasBoosted

			nd.ms.Set(nm.vcOccupied[p], float64(nd.mems[p].Occupied()))
			nd.ms.Set(nm.vcReserved[p], float64(nd.mems[p].ReservedVector().Count()))
			nd.ms.Set(nm.guaranteedLoad[p], nd.alloc[p].GuaranteedLoad())
		}
		nd.ms.Store(nm.schedNominated, nom)
		nd.ms.Store(nm.schedStalled, stall)
		nd.ms.Store(nm.schedExhausted, exh)
		nd.ms.Store(nm.schedBoosted, boost)

		if n.m.cycles > 0 {
			for p := 0; p < radix; p++ {
				grants += nd.ms.CounterValue(nm.grantsByPort[p])
			}
			nd.ms.Set(nm.switchUtil, float64(grants)/float64(n.m.cycles)/float64(radix))
		}
	}

	// Session-level counters live on the serial path; shard 0 carries them.
	s0 := n.nodes[0].ms
	m := &n.m
	s0.Store(nm.setupAttempts, m.setupAttempts)
	s0.Store(nm.setupAccepted, m.setupAccepted)
	s0.Store(nm.setupRejected, m.setupRejected)
	s0.Store(nm.setupRetries, m.setupRetries)
	s0.Store(nm.closed, m.closed)
	s0.Store(nm.faultsInjected, m.faultsInjected)
	s0.Store(nm.faultsRepaired, m.faultsRepaired)
	s0.Store(nm.faultFlitsLost, m.faultFlitsLost)
	s0.Store(nm.connsBroken, m.connsBroken)
	s0.Store(nm.connsRestored, m.connsRestored)
	s0.Store(nm.connsDegraded, m.connsDegraded)
	s0.Store(nm.connsPromoted, m.connsPromoted)
	s0.Store(nm.connsLost, m.connsLost)
	s0.Set(nm.cycles, float64(m.cycles))
}

// Metrics returns the network's metric registry (for registering extra
// collectors or gathering snapshots).
func (n *Network) Metrics() *metrics.Registry { return n.nm.reg }

// GatherMetrics snapshots the registry. Call between steps only — the
// gather is not synchronized with the worker pool.
func (n *Network) GatherMetrics() *metrics.Snapshot { return n.nm.reg.Gather() }

// recordFlight appends one event to a node's flight recorder and, when a
// fault-class event fires with a flight sink configured, dumps the
// recorders to it.
func (n *Network) recordFlight(nodeID int, code uint16, a, b int32, aux int64) {
	n.nodes[nodeID].rec.Record(metrics.Event{
		Cycle: n.now, Code: code, Node: int16(nodeID), A: a, B: b, Aux: aux,
	})
}

// DumpFlight writes every node's flight recorder to w, nodes in
// ascending order, oldest events first.
func (n *Network) DumpFlight(w io.Writer) {
	for _, nd := range n.nodes {
		if nd.rec.Len() == 0 {
			continue
		}
		fmt.Fprintf(w, "--- node %d flight recorder (%d/%d events retained) ---\n",
			nd.id, nd.rec.Len(), nd.rec.Total())
		nd.rec.Dump(w, FlightEventName)
	}
}

// SetFlightSink directs automatic flight-recorder dumps — fired when a
// fault transition lands or an invariant check fails — to w. nil (the
// default) limits automatic dumps to the invariant-failure path, which
// falls back to stderr.
func (n *Network) SetFlightSink(w io.Writer) { n.flightSink = w }

// dumpFlightOnFault emits the recorders to the configured sink after a
// fault transition, if a sink is installed.
func (n *Network) dumpFlightOnFault() {
	if n.flightSink == nil {
		return
	}
	fmt.Fprintf(n.flightSink, "=== flight dump: fault transition at cycle %d ===\n", n.now)
	n.DumpFlight(n.flightSink)
}

// dumpFlightOnInvariant emits the recorders when an invariant audit
// fails, to the sink if installed, else stderr — the post-mortem the
// panic message alone cannot give.
func (n *Network) dumpFlightOnInvariant(err error) {
	w := n.flightSink
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "=== flight dump: invariant failure at cycle %d: %v ===\n", n.now, err)
	n.DumpFlight(w)
}
