package network

import (
	"math"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

func meshNet(t *testing.T, w, h int) *Network {
	t.Helper()
	tp, err := topology.Mesh(w, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 16
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	tp := topology.New(3, 4) // disconnected
	cfg := DefaultConfig(tp)
	if _, err := New(cfg); err == nil {
		t.Fatal("disconnected topology accepted")
	}
	tp2, _ := topology.Mesh(2, 2, 4)
	bad := DefaultConfig(tp2)
	bad.VCs = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero VCs accepted")
	}
}

func TestOpenReservesPath(t *testing.T) {
	n := meshNet(t, 3, 3)
	conn, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Path) != 4 {
		t.Fatalf("path length %d, want 4 (minimal)", len(conn.Path))
	}
	if len(conn.VCs) != 5 { // entry VC + one per hop
		t.Fatalf("reserved %d VCs, want 5", len(conn.VCs))
	}
	if conn.SetupTime <= 0 {
		t.Fatal("setup time not charged")
	}
	// Bandwidth charged along the path and at the destination host port.
	for _, hop := range conn.Path {
		if n.nodes[hop.Node].alloc[hop.Port].Guaranteed() == 0 {
			t.Fatalf("no allocation at hop %+v", hop)
		}
	}
	if n.nodes[8].alloc[n.cfg.hostPort()].Guaranteed() == 0 {
		t.Fatal("no ejection allocation at destination")
	}
}

func TestOpenErrors(t *testing.T) {
	n := meshNet(t, 2, 2)
	if _, err := n.Open(0, 0, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}); err == nil {
		t.Fatal("same-node connection accepted")
	}
	if _, err := n.Open(-1, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}); err == nil {
		t.Fatal("bad endpoint accepted")
	}
	if _, err := n.Open(0, 1, traffic.ConnSpec{Class: flit.ClassBestEffort, Rate: traffic.Mbps}); err == nil {
		t.Fatal("non-stream class accepted")
	}
}

func TestOpenAdmissionRefusesOverload(t *testing.T) {
	tp, _ := topology.Mesh(2, 1, 4) // two routers, one link
	cfg := DefaultConfig(tp)
	cfg.VCs = 16
	n, _ := New(cfg)
	// 1.24 Gbps link; 300 Mbps needs ceil(300/1240×32)=8 of 32 cycles/round.
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, err := n.Open(0, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 300 * traffic.Mbps}); err == nil {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d connections, want 4 (allocation-quantized link capacity)", admitted)
	}
	st := n.Stats()
	if st.SetupAttempts != 10 || st.SetupAccepted != 4 || st.SetupRejected != 6 {
		t.Fatalf("setup accounting wrong: %+v", st)
	}
}

func TestEndToEndStreamDelivery(t *testing.T) {
	n := meshNet(t, 3, 3)
	conn, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 120 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(20000)
	st := n.Stats()
	want := n.cfg.Link.FlitsPerCycle(120*traffic.Mbps) * 20000
	if math.Abs(float64(st.FlitsDelivered)-want) > want*0.05 {
		t.Fatalf("delivered %d flits, want ~%.0f", st.FlitsDelivered, want)
	}
	// End-to-end latency ≈ hops × (1 service + LinkDelay) with no
	// contention; 4 hops plus entry ≈ 10±few cycles.
	if st.Latency.Mean() < 5 || st.Latency.Mean() > 25 {
		t.Fatalf("uncontended end-to-end latency = %.2f cycles", st.Latency.Mean())
	}
	// CBR through an idle network: near-zero jitter.
	if st.Jitter.Mean() > 0.5 {
		t.Fatalf("uncontended jitter = %.3f", st.Jitter.Mean())
	}
	_ = conn
}

func TestFlitConservationAcrossNetwork(t *testing.T) {
	n := meshNet(t, 3, 3)
	for i := 0; i < 6; i++ {
		src, dst := i, 8-i
		if src == dst {
			continue
		}
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps}); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(10000)
	st := n.Stats()
	// generated = delivered + in NI queues + buffered in VCMs + on wires.
	var buffered, queued, inflight int64
	for _, nd := range n.nodes {
		for _, mem := range nd.mems {
			buffered += int64(mem.Occupied())
		}
		for q := range nd.pipes {
			inflight += int64(len(nd.pipes[q].pending()))
		}
	}
	for _, c := range n.conns {
		queued += int64(c.niQueue.Len())
	}
	if st.FlitsGenerated != st.FlitsDelivered+buffered+queued+inflight {
		t.Fatalf("conservation: gen=%d del=%d buf=%d q=%d wire=%d",
			st.FlitsGenerated, st.FlitsDelivered, buffered, queued, inflight)
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	n := meshNet(t, 3, 3)
	conn, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(5000)
	if err := n.DrainAndClose(conn, 1000); err != nil {
		t.Fatal(err)
	}
	// All VCs free again, all allocations zero.
	for id, nd := range n.nodes {
		for p, mem := range nd.mems {
			if mem.FreeVCs() != n.cfg.VCs {
				t.Fatalf("node %d port %d leaked VCs", id, p)
			}
			if nd.alloc[p].Guaranteed() != 0 {
				t.Fatalf("node %d port %d leaked bandwidth", id, p)
			}
		}
	}
	if err := n.Close(conn); err == nil {
		t.Fatal("double close accepted")
	}
	// The freed resources admit a new connection.
	if _, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps}); err != nil {
		t.Fatalf("reopen failed: %v", err)
	}
}

func TestBestEffortAcrossNetwork(t *testing.T) {
	n := meshNet(t, 3, 3)
	if _, err := n.AddBestEffortFlow(0, 8, 0.02); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddBestEffortFlow(0, 0, 0.02); err == nil {
		t.Fatal("same-node BE flow accepted")
	}
	n.Run(20000)
	st := n.Stats()
	if st.BEDelivered == 0 {
		t.Fatal("no best-effort packets delivered")
	}
	if float64(st.BEDelivered) < 0.9*float64(st.BEGenerated) {
		t.Fatalf("BE delivery too low: %d of %d", st.BEDelivered, st.BEGenerated)
	}
	// Idle network: latency ≈ hops × (route + service + wire).
	if st.BELatency.Mean() > 40 {
		t.Fatalf("idle-network BE latency = %.2f", st.BELatency.Mean())
	}
	// All packet VCs released.
	for id, nd := range n.nodes {
		for p, mem := range nd.mems {
			if got := n.cfg.VCs - mem.FreeVCs(); got != int(0) {
				if int64(got) > st.BEGenerated-st.BEDelivered {
					t.Fatalf("node %d port %d holds %d VCs", id, p, got)
				}
			}
		}
	}
}

func TestStreamsAndBestEffortCoexist(t *testing.T) {
	n := meshNet(t, 3, 3)
	// A heavy stream 0→8 plus best-effort along the same diagonal.
	if _, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 600 * traffic.Mbps}); err != nil {
		t.Fatal(err)
	}
	n.AddBestEffortFlow(0, 8, 0.05)
	n.Run(30000)
	st := n.Stats()
	want := n.cfg.Link.FlitsPerCycle(600*traffic.Mbps) * 30000
	if float64(st.FlitsDelivered) < want*0.95 {
		t.Fatalf("stream starved by best-effort: %d of ~%.0f", st.FlitsDelivered, want)
	}
	if st.BEDelivered == 0 {
		t.Fatal("best-effort starved completely")
	}
}

func TestSetupBacktracksUnderContention(t *testing.T) {
	// Saturate VCs on a tiny network to force backtracking or rejection.
	tp, _ := topology.Mesh(3, 1, 4) // 0-1-2 chain
	cfg := DefaultConfig(tp)
	cfg.VCs = 2 // very few VCs
	n, _ := New(cfg)
	opened := 0
	for i := 0; i < 6; i++ {
		if _, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}); err == nil {
			opened++
		}
	}
	// Chain has 2 VCs per link input: at most 2 connections fit.
	if opened != 2 {
		t.Fatalf("opened %d, want 2 (VC-limited)", opened)
	}
}

func TestVBRConnection(t *testing.T) {
	n := meshNet(t, 3, 3)
	conn, err := n.Open(0, 4, traffic.ConnSpec{
		Class: flit.ClassVBR, Rate: 20 * traffic.Mbps, PeakRate: 60 * traffic.Mbps, Priority: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(40000)
	st := n.Stats()
	if st.FlitsDelivered == 0 {
		t.Fatal("VBR stream delivered nothing")
	}
	ref := conn.VCs[1]
	nd := n.nodes[n.cfg.Topology.Neighbor(conn.Path[0].Node, conn.Path[0].Port)]
	vs := nd.mems[ref.Port].State(ref.VC)
	if vs.Peak <= vs.Allocated {
		t.Fatal("VBR peak not installed along the path")
	}
}

func TestSessionEvents(t *testing.T) {
	n := meshNet(t, 3, 3)
	opened := false
	n.Events().At(100, eventFunc(func() {
		_, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps})
		opened = err == nil
	}))
	n.Run(200)
	if !opened {
		t.Fatal("session event did not fire")
	}
	if n.Stats().FlitsGenerated == 0 {
		t.Fatal("connection opened by event produced no traffic")
	}
}

// eventFunc adapts a closure to sim.Event for session-level tests.
type eventFunc func()

func (f eventFunc) Fire(_ sim.Time) { f() }

func TestStatsAcceptanceAndString(t *testing.T) {
	s := &Stats{SetupAttempts: 4, SetupAccepted: 3}
	if s.AcceptanceRate() != 0.75 {
		t.Fatalf("acceptance = %v", s.AcceptanceRate())
	}
	if (&Stats{}).AcceptanceRate() != 0 {
		t.Fatal("zero-attempt acceptance should be 0")
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestResetStatsKeepsSessionCounters(t *testing.T) {
	n := meshNet(t, 2, 2)
	if _, err := n.Open(0, 3, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps}); err != nil {
		t.Fatal(err)
	}
	n.Run(2000)
	n.ResetStats()
	st := n.Stats()
	if st.FlitsDelivered != 0 || st.Cycles != 0 {
		t.Fatal("datapath stats not reset")
	}
	// Session-level setup statistics survive the warmup boundary.
	if st.SetupAccepted != 1 {
		t.Fatalf("setup counter lost: %d", st.SetupAccepted)
	}
}
