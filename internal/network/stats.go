package network

import (
	"fmt"

	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/traffic"
)

// simTime converts a cycle count to the event engine's time type.
func simTime(t int64) sim.Time { return sim.Time(t) }

func errBadEndpoints(src, dst int) error {
	return fmt.Errorf("network: invalid endpoints (%d,%d)", src, dst)
}

// newPoisson builds a Poisson packet generator bound to the network RNG.
func newPoisson(n *Network, rate float64) *traffic.BestEffortSource {
	return traffic.NewBestEffortSource(n.rng, rate)
}

// netStats is the live statistics state of a network simulation.
type netStats struct {
	cycles    int64
	generated int64
	delivered int64
	linkFlits int64

	tracker *stats.JitterTracker // end-to-end stream latency & jitter

	beGenerated int64
	beDelivered int64
	beLatency   stats.Accumulator

	setupAttempts   int64
	setupAccepted   int64
	setupRejected   int64
	setupRetries    int64
	closed          int64
	setupLatency    stats.Accumulator
	setupBacktracks stats.Accumulator

	// Fault injection and self-healing. Like the setup statistics these
	// survive ResetStats: they describe session-level behaviour.
	faultsInjected int64 // link-down transitions applied
	faultsRepaired int64 // link-up transitions applied
	faultFlitsLost int64 // flits purged by link failures and teardowns
	flitsDropped   int64 // flits lost to link impairments (CRC discard)
	flitsCorrupted int64 // flits delivered corrupted
	connsBroken    int64 // connections torn down by faults
	connsRestored  int64 // re-established on a surviving path
	connsDegraded  int64 // downgraded to best-effort after failed restore
	connsLost      int64 // abandoned (restore exhausted, degrade disabled)
	restoreLatency stats.Accumulator // cycles from teardown to re-establishment
}

func (m *netStats) init() { m.tracker = stats.NewJitterTracker(0) }

func (m *netStats) grow(n int) { m.tracker.Grow(n) }

func (m *netStats) reset() {
	m.cycles = 0
	m.generated = 0
	m.delivered = 0
	m.linkFlits = 0
	m.tracker.Reset()
	m.beGenerated = 0
	m.beDelivered = 0
	m.beLatency.Reset()
	// Setup statistics survive reset: they describe session-level
	// behaviour, not the warmed-up datapath.
}

// Stats is an immutable snapshot of network statistics.
type Stats struct {
	Cycles         int64
	FlitsGenerated int64
	FlitsDelivered int64
	LinkFlits      int64

	// Latency is end-to-end: flit creation at the source host to ejection
	// at the destination host, in flit cycles. Jitter follows §5's
	// definition over those latencies.
	Latency stats.Accumulator
	Jitter  stats.Accumulator

	BEGenerated int64
	BEDelivered int64
	BELatency   stats.Accumulator

	SetupAttempts   int64
	SetupAccepted   int64
	SetupRejected   int64
	SetupRetries    int64
	Closed          int64
	SetupLatency    stats.Accumulator
	SetupBacktracks stats.Accumulator

	FaultsInjected int64
	FaultsRepaired int64
	FaultFlitsLost int64
	FlitsDropped   int64
	FlitsCorrupted int64
	ConnsBroken    int64
	ConnsRestored  int64
	ConnsDegraded  int64
	ConnsLost      int64
	RestoreLatency stats.Accumulator
}

func (m *netStats) snapshot() *Stats {
	return &Stats{
		Cycles:          m.cycles,
		FlitsGenerated:  m.generated,
		FlitsDelivered:  m.delivered,
		LinkFlits:       m.linkFlits,
		Latency:         *m.tracker.Delay(),
		Jitter:          *m.tracker.Jitter(),
		BEGenerated:     m.beGenerated,
		BEDelivered:     m.beDelivered,
		BELatency:       m.beLatency,
		SetupAttempts:   m.setupAttempts,
		SetupAccepted:   m.setupAccepted,
		SetupRejected:   m.setupRejected,
		SetupRetries:    m.setupRetries,
		Closed:          m.closed,
		SetupLatency:    m.setupLatency,
		SetupBacktracks: m.setupBacktracks,
		FaultsInjected:  m.faultsInjected,
		FaultsRepaired:  m.faultsRepaired,
		FaultFlitsLost:  m.faultFlitsLost,
		FlitsDropped:    m.flitsDropped,
		FlitsCorrupted:  m.flitsCorrupted,
		ConnsBroken:     m.connsBroken,
		ConnsRestored:   m.connsRestored,
		ConnsDegraded:   m.connsDegraded,
		ConnsLost:       m.connsLost,
		RestoreLatency:  m.restoreLatency,
	}
}

// AcceptanceRate returns accepted/attempted connection setups.
func (s *Stats) AcceptanceRate() float64 {
	if s.SetupAttempts == 0 {
		return 0
	}
	return float64(s.SetupAccepted) / float64(s.SetupAttempts)
}

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d delivered=%d latency=%.2f cyc jitter=%.3f accept=%.2f be=%d",
		s.Cycles, s.FlitsDelivered, s.Latency.Mean(), s.Jitter.Mean(), s.AcceptanceRate(), s.BEDelivered)
}
