package network

import (
	"fmt"

	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/traffic"
)

// simTime converts a cycle count to the event engine's time type.
func simTime(t int64) sim.Time { return sim.Time(t) }

func errBadEndpoints(src, dst int) error {
	return fmt.Errorf("network: invalid endpoints (%d,%d)", src, dst)
}

// newPoisson builds a Poisson packet generator bound to the network RNG.
func newPoisson(n *Network, rate float64) *traffic.BestEffortSource {
	return traffic.NewBestEffortSource(n.rng, rate)
}

// netStats is the live statistics state of a network simulation.
type netStats struct {
	cycles    int64
	generated int64
	delivered int64
	linkFlits int64

	tracker *stats.JitterTracker // end-to-end stream latency & jitter

	beGenerated int64
	beDelivered int64
	beLatency   stats.Accumulator

	setupAttempts   int64
	setupAccepted   int64
	setupRejected   int64
	closed          int64
	setupLatency    stats.Accumulator
	setupBacktracks stats.Accumulator
}

func (m *netStats) init() { m.tracker = stats.NewJitterTracker(0) }

func (m *netStats) grow(n int) { m.tracker.Grow(n) }

func (m *netStats) reset() {
	m.cycles = 0
	m.generated = 0
	m.delivered = 0
	m.linkFlits = 0
	m.tracker.Reset()
	m.beGenerated = 0
	m.beDelivered = 0
	m.beLatency.Reset()
	// Setup statistics survive reset: they describe session-level
	// behaviour, not the warmed-up datapath.
}

// Stats is an immutable snapshot of network statistics.
type Stats struct {
	Cycles         int64
	FlitsGenerated int64
	FlitsDelivered int64
	LinkFlits      int64

	// Latency is end-to-end: flit creation at the source host to ejection
	// at the destination host, in flit cycles. Jitter follows §5's
	// definition over those latencies.
	Latency stats.Accumulator
	Jitter  stats.Accumulator

	BEGenerated int64
	BEDelivered int64
	BELatency   stats.Accumulator

	SetupAttempts   int64
	SetupAccepted   int64
	SetupRejected   int64
	Closed          int64
	SetupLatency    stats.Accumulator
	SetupBacktracks stats.Accumulator
}

func (m *netStats) snapshot() *Stats {
	return &Stats{
		Cycles:          m.cycles,
		FlitsGenerated:  m.generated,
		FlitsDelivered:  m.delivered,
		LinkFlits:       m.linkFlits,
		Latency:         *m.tracker.Delay(),
		Jitter:          *m.tracker.Jitter(),
		BEGenerated:     m.beGenerated,
		BEDelivered:     m.beDelivered,
		BELatency:       m.beLatency,
		SetupAttempts:   m.setupAttempts,
		SetupAccepted:   m.setupAccepted,
		SetupRejected:   m.setupRejected,
		Closed:          m.closed,
		SetupLatency:    m.setupLatency,
		SetupBacktracks: m.setupBacktracks,
	}
}

// AcceptanceRate returns accepted/attempted connection setups.
func (s *Stats) AcceptanceRate() float64 {
	if s.SetupAttempts == 0 {
		return 0
	}
	return float64(s.SetupAccepted) / float64(s.SetupAttempts)
}

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d delivered=%d latency=%.2f cyc jitter=%.3f accept=%.2f be=%d",
		s.Cycles, s.FlitsDelivered, s.Latency.Mean(), s.Jitter.Mean(), s.AcceptanceRate(), s.BEDelivered)
}
