package network

import (
	"fmt"

	"mmr/internal/sim"
	"mmr/internal/stats"
)

// simTime converts a cycle count to the event engine's time type.
func simTime(t int64) sim.Time { return sim.Time(t) }

func errBadEndpoints(src, dst int) error {
	return fmt.Errorf("network: invalid endpoints (%d,%d)", src, dst)
}

// dpStats is one node's shard of the datapath statistics. Every counter
// touched inside the parallel phases lives here — a node only ever writes
// its own shard, so the hot path needs no synchronization and no atomics.
// Shards are merged in ascending node order when a snapshot is taken,
// which keeps the reported aggregates identical for every worker count.
// (Per-connection jitter sequences stay exact because a connection's
// flits all eject at its one destination node, so each tracker sees the
// full, ordered latency series for the connections ending there.)
type dpStats struct {
	generated int64
	delivered int64
	linkFlits int64

	tracker *stats.JitterTracker // streams ejected at this node

	beGenerated int64
	beDelivered int64
	beLatency   stats.Accumulator

	// Impairment counters survive reset like the session statistics:
	// they describe injected faults, not the warmed-up datapath.
	flitsDropped   int64
	flitsCorrupted int64
}

func (d *dpStats) init() { d.tracker = stats.NewJitterTracker(0) }

func (d *dpStats) reset() {
	d.generated = 0
	d.delivered = 0
	d.linkFlits = 0
	d.tracker.Reset()
	d.beGenerated = 0
	d.beDelivered = 0
	d.beLatency.Reset()
}

// netStats is the session-level statistics state: everything incremented
// on the serial control path (establishment, teardown, faults) plus the
// cycle counter. Datapath counters live in the per-node dpStats shards.
type netStats struct {
	cycles int64

	setupAttempts   int64
	setupAccepted   int64
	setupRejected   int64
	setupRetries    int64
	closed          int64
	setupLatency    stats.Accumulator
	setupBacktracks stats.Accumulator

	// Fault injection and self-healing. Like the setup statistics these
	// survive ResetStats: they describe session-level behaviour.
	faultsInjected int64             // link-down transitions applied
	faultsRepaired int64             // link-up transitions applied
	faultFlitsLost int64             // flits purged by link failures and teardowns
	connsBroken    int64             // connections torn down by faults
	connsRestored  int64             // re-established on a surviving path
	connsDegraded  int64             // downgraded to best-effort after failed restore
	connsPromoted  int64             // re-promoted from best-effort back to guaranteed
	connsLost      int64             // abandoned (restore exhausted, degrade disabled)
	restoreLatency stats.Accumulator // cycles from teardown to re-establishment
}

func (m *netStats) reset() {
	m.cycles = 0
	// Setup and fault statistics survive reset: they describe
	// session-level behaviour, not the warmed-up datapath.
}

// Stats is an immutable snapshot of network statistics.
type Stats struct {
	Cycles         int64
	FlitsGenerated int64
	FlitsDelivered int64
	LinkFlits      int64

	// Latency is end-to-end: flit creation at the source host to ejection
	// at the destination host, in flit cycles. Jitter follows §5's
	// definition over those latencies.
	Latency stats.Accumulator
	Jitter  stats.Accumulator

	BEGenerated int64
	BEDelivered int64
	BELatency   stats.Accumulator

	SetupAttempts   int64
	SetupAccepted   int64
	SetupRejected   int64
	SetupRetries    int64
	Closed          int64
	SetupLatency    stats.Accumulator
	SetupBacktracks stats.Accumulator

	FaultsInjected int64
	FaultsRepaired int64
	FaultFlitsLost int64
	FlitsDropped   int64
	FlitsCorrupted int64
	ConnsBroken    int64
	ConnsRestored  int64
	ConnsDegraded  int64
	ConnsPromoted  int64
	ConnsLost      int64
	RestoreLatency stats.Accumulator
}

// snapshotStats merges the session counters with every node's datapath
// shard, in ascending node order so the floating-point accumulator merges
// are deterministic.
func (n *Network) snapshotStats() *Stats {
	m := &n.m
	s := &Stats{
		Cycles:          m.cycles,
		SetupAttempts:   m.setupAttempts,
		SetupAccepted:   m.setupAccepted,
		SetupRejected:   m.setupRejected,
		SetupRetries:    m.setupRetries,
		Closed:          m.closed,
		SetupLatency:    m.setupLatency,
		SetupBacktracks: m.setupBacktracks,
		FaultsInjected:  m.faultsInjected,
		FaultsRepaired:  m.faultsRepaired,
		FaultFlitsLost:  m.faultFlitsLost,
		ConnsBroken:     m.connsBroken,
		ConnsRestored:   m.connsRestored,
		ConnsDegraded:   m.connsDegraded,
		ConnsPromoted:   m.connsPromoted,
		ConnsLost:       m.connsLost,
		RestoreLatency:  m.restoreLatency,
	}
	for _, nd := range n.nodes {
		d := &nd.stats
		s.FlitsGenerated += d.generated
		s.FlitsDelivered += d.delivered
		s.LinkFlits += d.linkFlits
		s.BEGenerated += d.beGenerated
		s.BEDelivered += d.beDelivered
		s.FlitsDropped += d.flitsDropped
		s.FlitsCorrupted += d.flitsCorrupted
		s.Latency.Merge(d.tracker.Delay())
		s.Jitter.Merge(d.tracker.Jitter())
		s.BELatency.Merge(&d.beLatency)
	}
	return s
}

// AcceptanceRate returns accepted/attempted connection setups.
func (s *Stats) AcceptanceRate() float64 {
	if s.SetupAttempts == 0 {
		return 0
	}
	return float64(s.SetupAccepted) / float64(s.SetupAttempts)
}

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d delivered=%d latency=%.2f cyc jitter=%.3f accept=%.2f be=%d",
		s.Cycles, s.FlitsDelivered, s.Latency.Mean(), s.Jitter.Mean(), s.AcceptanceRate(), s.BEDelivered)
}
