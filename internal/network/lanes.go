package network

import "mmr/internal/flit"

// lanes.go holds the single-writer/single-reader staging lanes the
// parallel cycle is built on. Every cross-node effect of a cycle — a flit
// leaving on a wire, a credit returning upstream — is appended to a lane
// owned by the *sender* during the commit phase, and drained by the unique
// *receiver* (the node wired to the other end) during the next cycle's
// delivery phase. Because each lane has exactly one writer and one reader,
// and writer and reader run in different barrier-separated phases, no lane
// ever needs a lock; and because each receiver drains its inbound lanes in
// ascending port order, the merge order — and therefore the simulation —
// is bit-identical for any worker count.
//
// Both lane types are head-indexed rings over a reusable backing slice:
// the reader advances head past matured entries (O(delivered) per cycle,
// no memmove) and resets head and length together once the lane empties,
// so steady state reuses one backing array with no per-cycle allocation.

// laneIdle is the nextAt value of a lane with no pending entries. It
// compares greater than every real cycle, so maturity probes need no
// emptiness branch.
const laneIdle int64 = 1<<63 - 1

// creditLane carries credit returns from the node that freed a buffer
// slot back to the upstream node named in each entry's upRef. Lane
// credOut[p] of node x holds credits destined to Wired(x, p) — the node
// feeding x's input port p — which is the only node that drains it.
type creditLane struct {
	buf  []creditMsg
	head int

	// nextAt caches the head entry's arriveAt (laneIdle when empty).
	// Entries arrive in nondecreasing arriveAt order, so the head is
	// always the minimum; the cache lets the per-cycle activity and
	// wake-up scans probe a lane with one flat-array load instead of
	// dereferencing its backing slice. Maintained by push (empty →
	// non-empty), compact (after drains and filters) and reset. Lanes
	// allocated by make start at zero — construction must set laneIdle.
	nextAt int64
}

// push appends a credit (writer side, commit phase). arriveAt values are
// nondecreasing across pushes, so the lane stays sorted by maturity.
func (l *creditLane) push(cm creditMsg) {
	if l.head == len(l.buf) {
		l.nextAt = cm.arriveAt
	}
	l.buf = append(l.buf, cm)
}

// pending returns the undelivered entries (for invariant audits and
// fault-time cancellation; not used on the hot path).
func (l *creditLane) pending() []creditMsg { return l.buf[l.head:] }

// compact resets the backing slice once every entry has been consumed,
// and re-syncs the nextAt cache after any head advance or filter.
func (l *creditLane) compact() {
	if l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
		l.nextAt = laneIdle
	} else {
		l.nextAt = l.buf[l.head].arriveAt
	}
}

// filter drops pending entries rejected by keep — the fault path uses it
// to cancel in-flight credits of a torn-down connection. Serial-only.
func (l *creditLane) filter(keep func(creditMsg) bool) {
	kept := l.buf[l.head:l.head]
	for _, cm := range l.buf[l.head:] {
		if keep(cm) {
			kept = append(kept, cm)
		}
	}
	l.buf = l.buf[:l.head+len(kept)]
	l.compact()
}

// flitLane carries flits in flight on one directed link: lane pipes[p] of
// node x holds flits sent from x's output port p toward Wired(x, p), the
// only node that drains it.
type flitLane struct {
	buf  []linkFlit
	head int

	// nextAt caches the head entry's arriveAt; see creditLane.nextAt.
	nextAt int64
}

// push appends a flit (writer side, commit phase).
func (l *flitLane) push(lf linkFlit) {
	if l.head == len(l.buf) {
		l.nextAt = lf.arriveAt
	}
	l.buf = append(l.buf, lf)
}

// pending returns the in-flight entries.
func (l *flitLane) pending() []linkFlit { return l.buf[l.head:] }

// compact resets the backing slice once every entry has been consumed,
// and re-syncs the nextAt cache after any head advance or filter.
func (l *flitLane) compact() {
	if l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
		l.nextAt = laneIdle
	} else {
		l.nextAt = l.buf[l.head].arriveAt
	}
}

// filter drops pending entries rejected by keep (fault teardown purging a
// broken connection's flits). Serial-only.
func (l *flitLane) filter(keep func(linkFlit) bool) {
	kept := l.buf[l.head:l.head]
	for _, lf := range l.buf[l.head:] {
		if keep(lf) {
			kept = append(kept, lf)
		}
	}
	l.buf = l.buf[:l.head+len(kept)]
	l.compact()
}

// reset empties the lane entirely (link-failure purge). Serial-only.
func (l *flitLane) reset() {
	l.buf = l.buf[:0]
	l.head = 0
	l.nextAt = laneIdle
}

// stagedCredit is a credit synthesized during the delivery phase (a
// receiver detecting an impairment drop) that cannot be pushed onto its
// credit lane immediately: the lane's owner may be draining it in the
// same phase. It is staged node-locally and flushed to credOut[port] at
// the start of the commit phase, preserving the serial engine's ordering
// (drop credits precede that cycle's transmit credits).
type stagedCredit struct {
	port int // input port whose lane the credit belongs on
	cm   creditMsg
}

// claimSlot stages one packet's virtual-channel claim on the downstream
// router. The scheduling phase decides the target VC by reading the
// neighbor's memory (reads only — nothing mutates reservations in that
// phase) and records it in the slot owned by the sender, keyed by output
// port; the unique receiver commits the reservation in its own commit
// phase. A claimed VC cannot be stolen in between: the commit phase only
// ever *frees* VCs before claims are applied, and each input port has
// exactly one wired upstream, so at most one claim targets a given
// memory per cycle.
//
// The receiver also *clears* the slot it consumes (commitClaims), so the
// invariant "every slot is -1 at the start of a cycle" holds without the
// producer rescanning its slots — which matters once activity gating
// skips idle producers' schedule phases. The cross-node clear is race
// free for the same unique-reader reason the read is.
type claimSlot struct {
	vc    int // claimed VC on the receiver's input port; -1 = no claim
	class flit.Class
}
