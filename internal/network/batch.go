package network

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/routing"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// transientHold is the VC state used to hold a reservation while a
// search is still in flight; installPath replaces it on success.
func transientHold(spec traffic.ConnSpec) vcm.VCState {
	return vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1}
}

// batch.go implements batched connection establishment. OpenBatch sets up
// many sessions in one call with the per-open overheads amortized away:
// one search scratch (stamped history arrays, a reservation stack) serves
// every search, Conn records and their Path/VCs/Nodes slices are carved
// from chunked arenas instead of individually allocated, and hierarchical
// admission pre-checks — per-source entry VCs, per-destination ejection
// headroom, and per-region border-capacity aggregates — reject provably
// doomed requests before any probe walks the fabric. Bringing up ~10⁶
// sessions on a datacenter-scale fabric is the target workload.

// OpenReq is one connection request in a batch.
type OpenReq struct {
	Src, Dst int
	Spec     traffic.ConnSpec
	// Tenant names the admission-quota owner of the session ("" is the
	// default tenant, unlimited unless a quota is configured for "").
	Tenant string
}

// OpenResult reports one request's outcome: the established connection,
// or the error that rejected it.
type OpenResult struct {
	Conn *Conn
	Err  error
}

// precheckError is a deferred-format rejection: pre-checks sit on the
// batch fast path and must not pay fmt costs for every doomed request,
// so the message is only rendered when someone reads it.
type precheckError struct {
	kind precheckKind
	node int
	rate traffic.Rate
}

type precheckKind uint8

const (
	precheckNoEntryVC precheckKind = iota
	precheckNoEjection
	precheckNoOutBorder
	precheckNoInBorder
)

func (e *precheckError) Error() string {
	switch e.kind {
	case precheckNoEntryVC:
		return fmt.Sprintf("network: no free VC on host port of node %d", e.node)
	case precheckNoEjection:
		return fmt.Sprintf("network: destination host port of node %d cannot admit %v", e.node, e.rate)
	case precheckNoOutBorder:
		return fmt.Sprintf("network: region %d has no outbound border capacity for %v", e.node, e.rate)
	default:
		return fmt.Sprintf("network: region %d has no inbound border capacity for %v", e.node, e.rate)
	}
}

// connChunkSize is the Conn arena granularity. Chunks are never moved or
// freed while any of their connections is referenced, so pointers into a
// chunk are stable for the life of the fabric.
const connChunkSize = 1024

// batchState carries the reusable scratch and the per-batch admission
// pre-check tables. The scratch persists on the Network across batches;
// the tables are re-derived per batch (lazily, per node touched) because
// fabric state moves between batches.
type batchState struct {
	search   *routing.SearchScratch
	resStack []probeHop

	// freeVCs[src] counts down the unreserved VCs on src's host input
	// port (every accepted session consumes exactly one entry VC there);
	// ejHead[dst] counts down the guaranteed-cycle headroom of dst's host
	// output port (every accepted session consumes its allocation there).
	// Both are exact within the batch; -1 means not yet read.
	freeVCs []int32
	ejHead  []int32

	// Per-region border-capacity aggregates, built once per batch on the
	// first cross-region request (minimal routing only — see precheck).
	// outBorder[r] bounds the guaranteed cycles still admissible across
	// region r's outbound cut, inBorder[r] across its inbound cut. Both
	// are maintained as upper bounds of the true cut capacity, so
	// "aggregate < demand" proves every individual border link would
	// reject the demand.
	outBorder   []int64
	inBorder    []int64
	borderReady bool

	connChunk []Conn
	hopArena  []routing.PathHop
	vcArena   []routing.VCRef
	nodeArena []int
}

// carve returns a zero-length, exact-capacity slice backed by *arena,
// growing the arena chunk when exhausted. installPath appends exactly the
// reserved capacity, so the connection's records land in the arena with
// no per-connection allocation.
func carve[T any](arena *[]T, need int) []T {
	if cap(*arena)-len(*arena) < need {
		size := 4096
		if need > size {
			size = need
		}
		*arena = make([]T, 0, size)
	}
	base := len(*arena)
	*arena = (*arena)[:base+need]
	return (*arena)[base : base : base+need][:0]
}

// conn carves one Conn record from the chunked arena. The record is only
// committed by advancing the chunk; a failed establishment reuses it.
func (bs *batchState) conn() *Conn {
	if len(bs.connChunk) == cap(bs.connChunk) {
		bs.connChunk = make([]Conn, 0, connChunkSize)
	}
	bs.connChunk = bs.connChunk[:len(bs.connChunk)+1]
	return &bs.connChunk[len(bs.connChunk)-1]
}

// uncommit returns the most recently carved Conn record to the arena
// (the record must not have escaped).
func (bs *batchState) uncommit() {
	bs.connChunk = bs.connChunk[:len(bs.connChunk)-1]
}

func (n *Network) batchState() *batchState {
	if n.batch == nil {
		n.batch = &batchState{search: routing.NewSearchScratch(n.cfg.Topology.Nodes)}
	}
	bs := n.batch
	nNodes := len(n.nodes)
	if bs.freeVCs == nil {
		bs.freeVCs = make([]int32, nNodes)
		bs.ejHead = make([]int32, nNodes)
	}
	for i := range bs.freeVCs {
		bs.freeVCs[i] = -1
		bs.ejHead[i] = -1
	}
	bs.borderReady = false
	return bs
}

// buildBorders derives the per-region border-capacity aggregates from
// the live admission registers: one O(nodes × radix) sweep per batch,
// paid only when a cross-region request shows up.
func (n *Network) buildBorders(bs *batchState) {
	tp := n.cfg.Topology
	nr := tp.NumRegions()
	if cap(bs.outBorder) < nr {
		bs.outBorder = make([]int64, nr)
		bs.inBorder = make([]int64, nr)
	}
	bs.outBorder = bs.outBorder[:nr]
	bs.inBorder = bs.inBorder[:nr]
	for r := range bs.outBorder {
		bs.outBorder[r] = 0
		bs.inBorder[r] = 0
	}
	for _, nd := range n.nodes {
		r := tp.Region(nd.id)
		for p := 0; p < tp.Ports; p++ {
			peer := tp.Wired(nd.id, p)
			if peer < 0 {
				continue
			}
			if pr := tp.Region(peer); pr != r {
				h := int64(nd.alloc[p].Headroom())
				bs.outBorder[r] += h
				bs.inBorder[pr] += h
			}
		}
	}
	bs.borderReady = true
}

// precheck rejects requests that provably cannot establish, without
// touching the fabric: no entry VC left at the source, a demand larger
// than the destination's ejection headroom, or (for cross-region
// requests under minimal routing) a demand larger than every border link
// of the source's outbound cut or the destination's inbound cut can
// carry. Each check fails only when real establishment must fail too, so
// pre-checked batches accept exactly the sessions serial Open would.
func (n *Network) precheck(bs *batchState, req OpenReq, d demand) error {
	hp := n.cfg.hostPort()
	if bs.freeVCs[req.Src] < 0 {
		bs.freeVCs[req.Src] = int32(n.nodes[req.Src].mems[hp].FreeVCs())
	}
	if bs.freeVCs[req.Src] == 0 {
		return &precheckError{kind: precheckNoEntryVC, node: req.Src}
	}
	if bs.ejHead[req.Dst] < 0 {
		bs.ejHead[req.Dst] = int32(n.nodes[req.Dst].alloc[hp].Headroom())
	}
	if d.alloc > int(bs.ejHead[req.Dst]) {
		return &precheckError{kind: precheckNoEjection, node: req.Dst, rate: req.Spec.Rate}
	}
	// Regional aggregates only apply under minimal routing: a Valiant
	// detour may carry even a same-region session across region borders,
	// which would invalidate the cut-capacity upper bounds.
	tp := n.cfg.Topology
	if n.cfg.Route == routing.RouteMinimal && tp.NumRegions() > 1 {
		sr, dr := tp.Region(req.Src), tp.Region(req.Dst)
		if sr != dr {
			if !bs.borderReady {
				n.buildBorders(bs)
			}
			if bs.outBorder[sr] < int64(d.alloc) {
				return &precheckError{kind: precheckNoOutBorder, node: sr, rate: req.Spec.Rate}
			}
			if bs.inBorder[dr] < int64(d.alloc) {
				return &precheckError{kind: precheckNoInBorder, node: dr, rate: req.Spec.Rate}
			}
		}
	}
	return nil
}

// commit updates the pre-check tables after an accepted establishment:
// one entry VC at the source, d.alloc ejection cycles at the destination
// (both exact), and d.alloc against each border aggregate a cross-region
// path must have crossed (keeping the aggregates upper bounds — a path
// may cross a cut more than once, never less).
func (n *Network) precheckCommit(bs *batchState, req OpenReq, d demand) {
	bs.freeVCs[req.Src]--
	bs.ejHead[req.Dst] -= int32(d.alloc)
	tp := n.cfg.Topology
	if bs.borderReady {
		if sr, dr := tp.Region(req.Src), tp.Region(req.Dst); sr != dr {
			bs.outBorder[sr] -= int64(d.alloc)
			bs.inBorder[dr] -= int64(d.alloc)
		}
	}
}

// OpenBatch establishes every request in order and reports per-request
// outcomes. Results are identical to calling Open in the same order —
// same searches, same admissions, same RNG draws for every request that
// reaches establishment — but the per-open overheads (search state,
// reservation bookkeeping, path allocations) are amortized across the
// batch and provably doomed requests are rejected by the admission
// pre-checks before any search runs.
func (n *Network) OpenBatch(reqs []OpenReq) []OpenResult {
	out := make([]OpenResult, len(reqs))
	bs := n.batchState()
	for i, req := range reqs {
		out[i] = n.openBatched(bs, req)
	}
	return out
}

func (n *Network) openBatched(bs *batchState, req OpenReq) OpenResult {
	if err := n.checkEndpoints(req.Src, req.Dst, req.Spec); err != nil {
		return OpenResult{Err: err}
	}
	n.m.setupAttempts++
	d := n.demandFor(req.Spec)
	// Tenant quota is the cheapest pre-check of all: no fabric state read.
	if !n.tenants.CanAdmit(req.Tenant, d.alloc) {
		n.m.setupRejected++
		return OpenResult{Err: tenantQuotaError(req.Tenant, n.tenants)}
	}
	if err := n.precheck(bs, req, d); err != nil {
		n.m.setupRejected++
		return OpenResult{Err: err}
	}
	conn := bs.conn()
	*conn = Conn{ID: flit.ConnID(len(n.conns)), Src: req.Src, Dst: req.Dst, Tenant: req.Tenant, Spec: req.Spec, dstSlot: -1}
	if err := n.establishBatch(conn, bs, d); err != nil {
		bs.uncommit()
		n.m.setupRejected++
		return OpenResult{Err: err}
	}
	n.tenants.AdmitSession(req.Tenant, d.alloc)
	n.conns = append(n.conns, conn)
	n.nodes[req.Src].srcConns = append(n.nodes[req.Src].srcConns, conn)
	n.assignTrackerSlot(conn)
	n.precheckCommit(bs, req, d)
	n.m.setupAccepted++
	n.m.setupLatency.Add(float64(conn.SetupTime))
	n.m.setupBacktracks.Add(float64(conn.Backtracks))
	return OpenResult{Conn: conn}
}

// establishBatch is establish against batch scratch: the EPB search runs
// on the shared SearchScratch, per-hop reservations live on a stack
// (EPB releases are LIFO by construction — only the hop that led to the
// current node is ever released), and the connection's path records are
// carved from the arenas at their exact final size. Decisions are
// identical to the serial path.
func (n *Network) establishBatch(conn *Conn, bs *batchState, d demand) error {
	if n.cfg.Route != routing.RouteMinimal {
		if err := n.establishMultipath(conn); err == nil {
			return nil
		}
	}
	src, dst, spec := conn.Src, conn.Dst, conn.Spec
	hp := n.cfg.hostPort()
	entryVC := n.nodes[src].mems[hp].FindFree(n.rng.Intn(n.cfg.VCs))
	if entryVC < 0 {
		return fmt.Errorf("network: no free VC on host port of node %d", src)
	}
	n.nodes[src].mems[hp].Reserve(entryVC, transientHold(spec))

	bs.resStack = bs.resStack[:0]
	committed := false
	defer func() {
		if committed {
			return
		}
		for i := len(bs.resStack) - 1; i >= 0; i-- {
			h := bs.resStack[i]
			n.releaseOut(n.nodes[h.node], h.port, spec, d)
			nb := n.cfg.Topology.Wired(h.node, h.port)
			pp := n.cfg.Topology.WiredPeer(h.node, h.port)
			n.nodes[nb].mems[pp].Release(h.vc)
		}
		n.nodes[src].mems[hp].Release(entryVC)
	}()

	reserve := func(nodeID, port int) bool {
		if searchHook != nil {
			searchHook()
		}
		nb := n.cfg.Topology.Neighbor(nodeID, port)
		if nb < 0 {
			return false
		}
		pp := n.cfg.Topology.PeerPort(nodeID, port)
		vc := n.nodes[nb].mems[pp].FindFree(n.rng.Intn(n.cfg.VCs))
		if vc < 0 {
			return false
		}
		if !n.admitOut(n.nodes[nodeID], port, spec, d) {
			return false
		}
		n.nodes[nb].mems[pp].Reserve(vc, transientHold(spec))
		bs.resStack = append(bs.resStack, probeHop{node: nodeID, port: port, vc: vc})
		return true
	}
	release := func(nodeID, port int) {
		if len(bs.resStack) == 0 {
			panic("network: release of unreserved hop")
		}
		h := bs.resStack[len(bs.resStack)-1]
		if h.node != nodeID || h.port != port {
			panic("network: non-LIFO release in batched establishment")
		}
		bs.resStack = bs.resStack[:len(bs.resStack)-1]
		n.releaseOut(n.nodes[nodeID], port, spec, d)
		nb := n.cfg.Topology.Wired(nodeID, port)
		pp := n.cfg.Topology.WiredPeer(nodeID, port)
		n.nodes[nb].mems[pp].Release(h.vc)
	}

	sr, err := routing.SearchInto(n.cfg.Topology, n.dists, src, dst, reserve, release, bs.search)
	if err != nil {
		return err
	}
	if !n.admitOut(n.nodes[dst], hp, spec, d) {
		for i := len(sr.Path) - 1; i >= 0; i-- {
			release(sr.Path[i].Node, sr.Path[i].Port)
		}
		return fmt.Errorf("network: destination host port of node %d cannot admit %v", dst, spec.Rate)
	}

	// The surviving reservation stack is exactly the final path, in hop
	// order: reserves pushed on every forward step, releases popped on
	// every backtrack.
	committed = true
	conn.Backtracks = sr.Backtracks
	conn.SetupTime = n.cfg.HopLatency * int64(sr.Visited+sr.Backtracks+len(sr.Path))
	h := len(bs.resStack)
	conn.Path = carve(&bs.hopArena, h)
	conn.VCs = carve(&bs.vcArena, h+1)
	conn.Nodes = carve(&bs.nodeArena, h+1)
	n.installPath(conn, entryVC, bs.resStack, d)
	return nil
}
