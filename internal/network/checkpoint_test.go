package network

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mmr/internal/topology"
	"mmr/internal/traffic"

	"mmr/internal/flit"
)

// detConfig rebuilds the detScenario configuration on a fresh topology
// (topologies carry mutable link state, so restored networks need their
// own) with the given execution strategy.
func detConfig(t *testing.T, workers int, noIdleSkip bool) Config {
	t.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 11
	cfg.Workers = workers
	cfg.NoIdleSkip = noIdleSkip
	cfg.Fault = FaultPolicy{Restore: true, MaxRetries: 4, RetryBackoff: 32, Degrade: true, Paranoid: true}
	return cfg
}

// TestCheckpointRoundTripBitExact is the tentpole's core proof: snapshot
// the loaded fault-plan scenario mid-run at cycle 1200 (links down,
// routers down, restorations and fault-plan events pending, flits in
// flight), restore the payload into freshly built fabrics at every
// worker count with gating both on and off, run everything to cycle
// 3000, and require the restored runs to be indistinguishable from the
// uninterrupted one: identical statistics (floating-point accumulator
// state compared exactly), identical session logs, and — the strongest
// form — byte-identical re-checkpoints at both the snapshot point and
// the end state.
func TestCheckpointRoundTripBitExact(t *testing.T) {
	ref := buildDetNetwork(t, 1, true)
	defer ref.Shutdown()
	ref.Run(1200)
	snap, err := ref.EncodeState()
	if err != nil {
		t.Fatalf("EncodeState at cycle 1200: %v", err)
	}
	ref.Run(3000)
	refFinal, err := ref.EncodeState()
	if err != nil {
		t.Fatalf("EncodeState at cycle 3000: %v", err)
	}
	refStats, refEvents := ref.Stats(), ref.SessionEvents()
	if refStats.ConnsBroken == 0 || refStats.FlitsDelivered == 0 {
		t.Fatalf("degenerate scenario: %+v", refStats)
	}

	for _, noIdleSkip := range []bool{false, true} {
		for _, w := range []int{1, 2, 4} {
			n, err := New(detConfig(t, w, noIdleSkip))
			if err != nil {
				t.Fatal(err)
			}
			if err := n.RestoreState(snap); err != nil {
				n.Shutdown()
				t.Fatalf("workers=%d gated=%v: restore: %v", w, !noIdleSkip, err)
			}
			if n.Now() != 1200 {
				t.Fatalf("restored clock %d, want 1200", n.Now())
			}
			resnap, err := n.EncodeState()
			if err != nil {
				t.Fatalf("workers=%d gated=%v: re-encode: %v", w, !noIdleSkip, err)
			}
			if !bytes.Equal(snap, resnap) {
				t.Errorf("workers=%d gated=%v: restored state re-encodes differently (%d vs %d bytes)",
					w, !noIdleSkip, len(snap), len(resnap))
			}
			n.Run(3000)
			st, ev := n.Stats(), n.SessionEvents()
			if !reflect.DeepEqual(refStats, st) {
				t.Errorf("workers=%d gated=%v: stats diverged after restore:\nref:      %+v\nrestored: %+v",
					w, !noIdleSkip, refStats, st)
			}
			if !reflect.DeepEqual(refEvents, ev) {
				t.Errorf("workers=%d gated=%v: session log diverged (%d vs %d events)",
					w, !noIdleSkip, len(refEvents), len(ev))
			}
			final, err := n.EncodeState()
			if err != nil {
				t.Fatalf("workers=%d gated=%v: final encode: %v", w, !noIdleSkip, err)
			}
			if !bytes.Equal(refFinal, final) {
				t.Errorf("workers=%d gated=%v: end state not byte-identical to uninterrupted run (%d vs %d bytes)",
					w, !noIdleSkip, len(refFinal), len(final))
			}
			n.Shutdown()
		}
	}
}

// TestCheckpointFileRoundTrip exercises the on-disk path: SaveCheckpoint
// writes the sealed envelope, RestoreCheckpoint rebuilds an equivalent
// fabric from it, and a configuration mismatch (different seed) is
// refused at the envelope hash before any state is touched.
func TestCheckpointFileRoundTrip(t *testing.T) {
	ref := buildDetNetwork(t, 2, true)
	defer ref.Shutdown()
	ref.Run(1000)
	path := filepath.Join(t.TempDir(), "fabric.ckpt")
	if err := ref.SaveCheckpoint(path); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	ref.Run(2200)

	n, err := RestoreCheckpoint(detConfig(t, 4, false), path)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	defer n.Shutdown()
	n.Run(2200)
	if !reflect.DeepEqual(ref.Stats(), n.Stats()) {
		t.Errorf("file round-trip diverged:\nref:      %+v\nrestored: %+v", ref.Stats(), n.Stats())
	}

	badCfg := detConfig(t, 1, false)
	badCfg.Seed = 12
	if _, err := RestoreCheckpoint(badCfg, path); err == nil ||
		!strings.Contains(err.Error(), "different fabric configuration") {
		t.Errorf("restore under a different seed: got %v, want config-hash mismatch", err)
	}
}

// TestEncodeStateRefusesNonDurablePending: user closures scheduled via
// Network.Schedule cannot be serialized, so a checkpoint with one
// pending must be refused rather than silently dropping it.
func TestEncodeStateRefusesNonDurablePending(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	cfg := DefaultConfig(tp)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	n.Run(10)
	n.Schedule(100, func() {})
	if _, err := n.EncodeState(); err == nil || !strings.Contains(err.Error(), "durable journal") {
		t.Errorf("EncodeState with a user closure pending: got %v, want durable-journal refusal", err)
	}
}

// TestRestoreStateRequiresFreshNetwork: restoring over a fabric that has
// already run or holds connections must be refused — restore composes
// with New, never with live state.
func TestRestoreStateRequiresFreshNetwork(t *testing.T) {
	ref := buildDetNetwork(t, 1, false)
	defer ref.Shutdown()
	ref.Run(50)
	snap, err := ref.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	tp, _ := topology.Mesh(4, 4, 4)
	cfg := DefaultConfig(tp)
	cfg.Seed = 11
	used, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer used.Shutdown()
	if _, err := used.Open(0, 5, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 20 * traffic.Mbps}); err != nil {
		t.Fatal(err)
	}
	if err := used.RestoreState(snap); err == nil || !strings.Contains(err.Error(), "freshly built") {
		t.Errorf("restore into a used network: got %v, want freshly-built refusal", err)
	}
}

// TestCheckpointCorruptPayloadRejected: a bit flip anywhere in the
// payload must be caught by the envelope CRC, and a truncated payload
// that somehow passed the envelope must fail the decoder, never panic.
func TestCheckpointCorruptPayloadRejected(t *testing.T) {
	ref := buildDetNetwork(t, 1, true)
	defer ref.Shutdown()
	ref.Run(800)
	snap, err := ref.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	// Truncations straight into RestoreState (bypassing the envelope)
	// must produce errors, not panics or giant allocations.
	for _, cut := range []int{0, 8, len(snap) / 3, len(snap) - 1} {
		n, err := New(detConfig(t, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		if err := n.RestoreState(snap[:cut]); err == nil {
			t.Errorf("restore of %d/%d bytes succeeded", cut, len(snap))
		}
		n.Shutdown()
	}
	// Trailing garbage is also refused.
	n, err := New(detConfig(t, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	if err := n.RestoreState(append(append([]byte(nil), snap...), 0xFF)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("restore with trailing bytes: got %v, want trailing-bytes refusal", err)
	}
}
