package network

import (
	"fmt"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// benchNet builds the steady-state workload BenchmarkNetworkStep measures:
// a 4×4 mesh (16 routers) carrying EPB-established CBR connections between
// random host pairs plus Poisson best-effort background flows, warmed past
// its allocation high-water mark. The scenario is fixed-seed so the pre-pr
// and current sections of BENCH_PR3.json measure the same traffic.
func benchNet(b *testing.B) *Network {
	b.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 7
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(42)
	opened := 0
	for i := 0; i < 400 && opened < 96; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}); err == nil {
			opened++
		}
	}
	if opened < 32 {
		b.Fatalf("benchNet: only %d connections established", opened)
	}
	for i := 0; i < 32; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src != dst {
			n.AddBestEffortFlow(src, dst, 0.02)
		}
	}
	n.Run(2000) // steady state: queues, lanes and pools at high water
	return n
}

// BenchmarkNetworkStep measures one serial network cycle of the loaded
// 16-router mesh. Gated by make bench-check against BENCH_PR3.json.
func BenchmarkNetworkStep(b *testing.B) {
	n := benchNet(b)
	defer n.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepParallel measures the same cycle sharded across the
// worker pool, at the scaling points the ISSUE's acceptance criterion
// names (≥2× at 4 workers vs the serial pre-pr baseline).
func BenchmarkNetworkStepParallel(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			n := benchNet(b)
			defer n.Shutdown()
			n.SetWorkers(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}
