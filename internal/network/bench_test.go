package network

import (
	"fmt"
	"runtime"
	"testing"

	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// benchNet builds the steady-state workload BenchmarkNetworkStep measures:
// a 4×4 mesh (16 routers) carrying EPB-established CBR connections between
// random host pairs plus Poisson best-effort background flows, warmed past
// its allocation high-water mark. The scenario is fixed-seed so the pre-pr
// and current sections of BENCH_PR3.json measure the same traffic.
func benchNet(b *testing.B) *Network {
	b.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 7
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(42)
	opened := 0
	for i := 0; i < 400 && opened < 96; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}); err == nil {
			opened++
		}
	}
	if opened < 32 {
		b.Fatalf("benchNet: only %d connections established", opened)
	}
	for i := 0; i < 32; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src != dst {
			n.AddBestEffortFlow(src, dst, 0.02)
		}
	}
	n.Run(2000) // steady state: queues, lanes and pools at high water
	return n
}

// BenchmarkNetworkStep measures one serial network cycle of the loaded
// 16-router mesh. Gated by make bench-check against BENCH_PR3.json.
func BenchmarkNetworkStep(b *testing.B) {
	n := benchNet(b)
	defer n.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepParallel measures the same cycle sharded across the
// worker pool, at the scaling points the ISSUE's acceptance criterion
// names (≥2× at 4 workers vs the serial pre-pr baseline).
func BenchmarkNetworkStepParallel(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			n := benchNet(b)
			defer n.Shutdown()
			n.SetWorkers(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkNetworkStepScaling is the honest multi-core scaling curve:
// the same loaded mesh stepped at w=1 (serial reference) and the
// paper-relevant worker widths, plus GOMAXPROCS when it is a width of
// its own. `make bench-scale-check` feeds this family to benchjson
// -scale, which gates parallel efficiency eff(w) = ns(1)/(ns(w)·w)
// for every width the host can actually exercise and marks the rest
// informational — so a 1-CPU container reports barrier overhead as
// barrier overhead instead of silently passing a fake scaling gate.
func BenchmarkNetworkStepScaling(b *testing.B) {
	widths := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		widths = append(widths, g)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			n := benchNet(b)
			defer n.Shutdown()
			n.SetWorkers(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// benchNetSparse builds the ~10%-load scenario BenchmarkNetworkStepSparse
// measures: the same 4×4 mesh with a handful of slow CBR connections and
// one trickle best-effort flow, so most nodes are idle on most cycles —
// the regime activity gating targets.
func benchNetSparse(b *testing.B, noIdleSkip bool) *Network {
	b.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 7
	cfg.NoIdleSkip = noIdleSkip
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(42)
	opened := 0
	for i := 0; i < 400 && opened < 10; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 16 * traffic.Mbps}); err == nil {
			opened++
		}
	}
	if opened < 10 {
		b.Fatalf("benchNetSparse: only %d connections established", opened)
	}
	n.AddBestEffortFlow(0, 15, 0.002)
	n.Run(2000)
	return n
}

// BenchmarkNetworkStepSparse measures one cycle of the ~10%-load mesh
// with activity gating on (the default): most ports and nodes are
// skipped without touching their memories. Gated by make
// bench-sparse-check against BENCH_PR5.json.
func BenchmarkNetworkStepSparse(b *testing.B) {
	n := benchNetSparse(b, false)
	defer n.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepSparseNoSkip is the ungated reference for the same
// workload — the denominator of the ISSUE's ≥3× sparse-speedup criterion.
func BenchmarkNetworkStepSparseNoSkip(b *testing.B) {
	n := benchNetSparse(b, true)
	defer n.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkRunIdleGaps measures bursty traffic with long idle
// stretches driven through Run, where whole-clock fast-forward elides the
// empty cycles entirely: a few very slow connections mean thousands of
// cycles pass between flits. Reported per simulated cycle via Run(10000)
// iterations normalized by b.N — gating makes each iteration's cost
// proportional to events, not cycles.
func BenchmarkNetworkRunIdleGaps(b *testing.B) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 7
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Shutdown()
	rng := sim.NewRNG(42)
	for opened, i := 0, 0; i < 200 && opened < 4; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 2 * traffic.Mbps}); err == nil {
			opened++
		}
	}
	// One full-length warm iteration: a 10k-cycle window grows lanes and
	// scratch past what the 2k-cycle warmup reaches, and the timed loop
	// must start at the allocation high-water mark (the gate requires
	// 0 allocs/op even at -benchtime 1x).
	n.Run(12_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Run(10_000)
	}
}
