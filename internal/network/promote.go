package network

import (
	"fmt"
	"sort"

	"mmr/internal/flit"
)

// promote.go closes the fault lifecycle's one-way door: a session that
// degraded to best-effort service (faults.go abandon) is re-promoted to
// guaranteed service when capacity returns — §4.3's dynamic bandwidth
// renegotiation applied to recovery. Every capacity-returning control
// event (link-up, router-up, conn-restored, a graceful Close, a
// ModifyBandwidth shrink) arms a scan; the scan re-runs establishment
// for each degraded session's original spec, retires the best-effort
// fallback flow on success, and backs off with jitter while capacity is
// still short. Scans ride the durable-event journal on the serial
// control path — like restoration retries they cost the flit-cycle hot
// path nothing and survive checkpoints.

// promoteBudget bounds establishment attempts per scan, so one scan
// event never turns into an unbounded search storm on a large fabric;
// the remainder waits for the rescan the scan itself schedules.
const promoteBudget = 8

// schedulePromotion arms a re-promotion scan for the next cycle. Called
// on every capacity-returning control event; O(1) and a no-op when
// nothing is degraded or promotion is disabled. Each call supersedes
// any scan already journaled (the generation bump makes stale scans
// no-op), so the backoff clock restarts whenever fresh capacity
// appears.
func (n *Network) schedulePromotion() {
	if !n.cfg.Fault.Promote || !n.cfg.Fault.Degrade || n.degradedLive == 0 {
		return
	}
	n.promoteGen++
	n.scheduleDurable(n.now+1, durPromote, n.promoteGen, 0)
}

// promoteScan is one journaled re-promotion pass (attempt is 0-based
// within the current generation's backoff sequence). Candidates are
// ordered for cross-tenant fairness — tenants using the least of their
// guaranteed budget recover first, ties broken by connection ID — and
// up to promoteBudget of them re-run establishment. Any success
// restarts the backoff (capacity is appearing); a fully failed scan
// backs off exponentially with jitter and gives up after MaxRetries
// until the next trigger re-arms it.
func (n *Network) promoteScan(gen int64, attempt int) {
	if gen != n.promoteGen || n.degradedLive == 0 {
		return
	}
	cand := n.promoteScratch[:0]
	for _, c := range n.conns {
		if c.Degraded && !c.closed {
			cand = append(cand, c)
		}
	}
	n.promoteScratch = cand
	sort.SliceStable(cand, func(i, j int) bool {
		fi := n.tenants.GuaranteedFraction(cand[i].Tenant)
		fj := n.tenants.GuaranteedFraction(cand[j].Tenant)
		if fi != fj {
			return fi < fj
		}
		return cand[i].ID < cand[j].ID
	})

	budget := promoteBudget
	promoted := 0
	for _, c := range cand {
		if budget == 0 {
			break
		}
		d := n.demandFor(c.Spec)
		// Quota first, search second: re-promotion re-enters admission, so
		// an over-budget tenant's sessions stay degraded without spending
		// any of the scan's establishment budget on them.
		if !n.tenants.ChargeGuaranteed(c.Tenant, d.alloc) {
			continue
		}
		budget--
		if err := n.establish(c); err != nil {
			n.tenants.ReleaseGuaranteed(c.Tenant, d.alloc)
			continue
		}
		n.finishPromotion(c, attempt)
		promoted++
	}

	if n.degradedLive == 0 {
		return // everyone recovered; the next trigger starts fresh
	}
	if promoted > 0 {
		// Capacity is appearing — rescan on the shortest backoff instead
		// of escalating, so recovery ripples through the backlog.
		n.scheduleDurable(n.now+n.retryBackoff(0), durPromote, gen, 0)
		return
	}
	if attempt >= n.cfg.Fault.MaxRetries {
		return // capacity is not coming back by itself; wait for a trigger
	}
	n.scheduleDurable(n.now+n.retryBackoff(attempt), durPromote, gen, int64(attempt+1))
}

// finishPromotion completes one successful re-promotion: establish has
// already installed the guaranteed path (with installPath's
// lastTick/nextDue gating resets), so what remains is retiring the
// best-effort fallback flow by its owner ID, restoring the conn's live
// flags and injector-list membership, and announcing the transition.
func (n *Network) finishPromotion(c *Conn, attempt int) {
	var fallback FlowID
	for _, bf := range n.beFlows {
		if bf.conn == c.ID {
			fallback = bf.id
			break
		}
	}
	n.dropBEFlow(c.ID)
	c.Degraded = false
	n.degradedLive--
	n.insertSrcConn(c)
	n.m.connsPromoted++
	n.logEvent(SessionEvent{Kind: "conn-promoted", Conn: c.ID, Node: c.Src, Port: -1,
		Detail: fmt.Sprintf("guaranteed service restored %d cycles after the fault; fallback flow %d retired (scan attempt %d)",
			n.now-c.brokenAt, fallback, attempt+1)})
	n.recordFlight(c.Src, evConnPromoted, int32(c.Dst), int32(attempt+1), int64(c.ID))
	if n.cfg.Fault.Paranoid {
		n.mustInvariants()
	}
}

// CheckBEFlowOwners audits the degraded-session ↔ fallback-flow
// pairing: every connection-owned best-effort flow must belong to a
// live degraded connection, and every live degraded connection must own
// exactly one fallback. The soak harness and the promotion tests run it
// after fault recovery to prove promotion retires fallbacks exactly
// once and leaks none.
func (n *Network) CheckBEFlowOwners() error {
	owned := map[int64]int{}
	for _, bf := range n.beFlows {
		if bf.conn == flit.InvalidConn {
			continue
		}
		owned[int64(bf.conn)]++
		c := n.conns[bf.conn]
		if !c.Degraded || c.closed {
			return fmt.Errorf("network: best-effort flow %d owned by conn %d, which is not live-degraded (degraded=%v closed=%v)",
				bf.id, bf.conn, c.Degraded, c.closed)
		}
		if owned[int64(bf.conn)] > 1 {
			return fmt.Errorf("network: conn %d owns %d fallback flows, want exactly one", bf.conn, owned[int64(bf.conn)])
		}
	}
	live := 0
	for _, c := range n.conns {
		if c.Degraded && !c.closed {
			live++
			if owned[int64(c.ID)] != 1 {
				return fmt.Errorf("network: degraded conn %d owns %d fallback flows, want exactly one", c.ID, owned[int64(c.ID)])
			}
		}
	}
	if live != n.degradedLive {
		return fmt.Errorf("network: degradedLive counter %d, but %d live degraded conns found", n.degradedLive, live)
	}
	return nil
}

// DegradedLive reports the number of sessions currently degraded to
// best-effort service and not yet closed or re-promoted.
func (n *Network) DegradedLive() int { return n.degradedLive }
