package network

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmr/internal/admission"
	"mmr/internal/checkpoint"
	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// promoteTestLink makes allocations exact: 1280 Mbps with the chain
// scenario's roundLen of 32 gives one cycle/round per 40 Mbps, so the
// capacity arithmetic in the tests has no rounding slack. Victims run
// at 40 Mbps (one slot each) so their fallback flows inject lightly —
// a fallback pumps at the victim's full former rate, and heavy victims
// would jam the host port faster than the tests can drain it.
var promoteTestLink = traffic.Link{Bandwidth: 1280 * traffic.Mbps, FlitBits: 128, PhitBits: 16}

func victimSpec() traffic.ConnSpec {
	return traffic.ConnSpec{Class: flit.ClassCBR, Rate: 40 * traffic.Mbps}
}

func blockerSpec(mbps int) traffic.ConnSpec {
	return traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Rate(mbps) * traffic.Mbps}
}

// chainPromotionConfig is the 3-router chain (one path, no reroute)
// whose single westmost link carries every connection — failing it
// breaks them all, and with no alternate path the short retry ladder
// exhausts and they all degrade.
func chainPromotionConfig(t *testing.T) Config {
	t.Helper()
	tp, err := topology.Mesh(3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 16 // roundLen 32: exactly one slot per link per 40 Mbps
	cfg.Seed = 3
	cfg.Link = promoteTestLink
	cfg.Fault = FaultPolicy{Restore: true, MaxRetries: 2, RetryBackoff: 4, Degrade: true, Promote: true, Paranoid: true}
	return cfg
}

// chainPromotionScenario opens four one-slot sessions on the chain,
// fails the only link and runs until every session has degraded to
// best-effort service.
func chainPromotionScenario(t *testing.T, open func(n *Network, i int) (*Conn, error)) (*Network, []*Conn) {
	t.Helper()
	n, err := New(chainPromotionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var victims []*Conn
	for i := 0; i < 4; i++ {
		c, err := open(n, i)
		if err != nil {
			t.Fatalf("victim %d: %v", i, err)
		}
		victims = append(victims, c)
	}
	n.Run(100)
	if err := n.FailLink(0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(2000) // retry ladder (2 × backoff 4) exhausts; everyone degrades
	for _, c := range victims {
		if !c.Degraded {
			t.Fatalf("conn %d not degraded after retries exhausted (broken=%v lost=%v)", c.ID, c.Broken(), c.Lost())
		}
	}
	if got := n.DegradedLive(); got != len(victims) {
		t.Fatalf("DegradedLive = %d, want %d", got, len(victims))
	}
	return n, victims
}

func defaultOpen(n *Network, _ int) (*Conn, error) { return n.Open(0, 2, victimSpec()) }

// TestDegradedSessionRePromoted is the tentpole acceptance demo: the
// healing scenario with restoration disabled degrades the victim to
// best-effort, and when the failed link comes back the re-promotion
// scan returns it to guaranteed service, retiring the fallback flow —
// the session log shows degraded before promoted.
func TestDegradedSessionRePromoted(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: false, MaxRetries: 5, RetryBackoff: 32, Degrade: true, Promote: true, Paranoid: true,
	})
	defer n.Shutdown()
	n.Run(10_000) // break at 500, degrade, link repaired at 4000, promotion after

	if victim.Degraded || !victim.Open() || len(victim.VCs) == 0 {
		t.Fatalf("victim not re-promoted: degraded=%v open=%v", victim.Degraded, victim.Open())
	}
	st := n.Stats()
	if st.ConnsDegraded < 1 || st.ConnsPromoted < 1 {
		t.Fatalf("degraded=%d promoted=%d, want >=1/>=1", st.ConnsDegraded, st.ConnsPromoted)
	}
	if got := n.DegradedLive(); got != 0 {
		t.Fatalf("%d sessions still degraded after the link repair", got)
	}
	order := map[string]int{}
	for i, ev := range n.SessionEvents() {
		if _, seen := order[ev.Kind]; !seen {
			order[ev.Kind] = i
		}
	}
	for _, pair := range [][2]string{{"conn-degraded", "link-up"}, {"link-up", "conn-promoted"}} {
		a, oka := order[pair[0]]
		b, okb := order[pair[1]]
		if !oka || !okb || a > b {
			t.Fatalf("session log out of order (want %s before %s): %v", pair[0], pair[1], order)
		}
	}
	if err := n.CheckBEFlowOwners(); err != nil {
		t.Fatalf("fallback-flow audit: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after promotion: %v", err)
	}
	// The fallback generator is gone: best-effort generation has stopped.
	before := n.Stats().BEGenerated
	n.Run(5000)
	if after := n.Stats().BEGenerated; after != before {
		t.Fatalf("retired fallback flow still generates: %d -> %d", before, after)
	}
}

// TestPromotionDisabledStaysDegraded guards the config gate: with
// Promote off the repaired link changes nothing and the session stays
// on best-effort service forever (the pre-promotion behavior).
func TestPromotionDisabledStaysDegraded(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: false, MaxRetries: 5, RetryBackoff: 32, Degrade: true, Promote: false, Paranoid: true,
	})
	defer n.Shutdown()
	n.Run(10_000)
	if !victim.Degraded || victim.Open() {
		t.Fatalf("victim should stay degraded with Promote off: degraded=%v open=%v", victim.Degraded, victim.Open())
	}
	if st := n.Stats(); st.ConnsPromoted != 0 {
		t.Fatalf("ConnsPromoted = %d with promotion disabled", st.ConnsPromoted)
	}
}

// TestPromotionCapacityAndTriggers pins down the scan's capacity
// arithmetic, fairness order, retry exhaustion, and both renegotiation
// triggers: after the link repair a blocker holds 31 of the 32 slots;
// a §4.3 bandwidth shrink to 30 promotes exactly two victims (lowest
// IDs first), a further shrink promotes exactly one more, and a
// graceful close recovers the last. Idle time between triggers never
// promotes anything — the ladder is exhausted.
func TestPromotionCapacityAndTriggers(t *testing.T) {
	n, victims := chainPromotionScenario(t, defaultOpen)
	defer n.Shutdown()

	// The fallback flows spent 2000 cycles pumping into a dead link, so
	// the repaired fabric starts jammed: the restore-triggered scan
	// ladder exhausts against the backlog before a host VC frees.
	if err := n.RestoreLink(0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(3000)
	if got := n.DegradedLive(); got != len(victims) {
		t.Fatalf("DegradedLive = %d right after repair, want %d (scan should lose the race to the backlog drain)", got, len(victims))
	}
	// The ladder is spent: idle cycles alone never promote, no matter
	// how much capacity sits free.
	n.Run(2000)
	if got := n.DegradedLive(); got != len(victims) {
		t.Fatalf("DegradedLive = %d after idle, want %d (ladder exhausted, no trigger)", got, len(victims))
	}
	// A new session takes 31 of the 32 slots. Opening is not a
	// capacity-returning event: still no rescan.
	blocker, err := n.Open(0, 2, blockerSpec(1240))
	if err != nil {
		t.Fatalf("blocker open after link repair: %v", err)
	}
	// Short windows from here on: the stuck fallbacks are starved (zero
	// to one free slot) and their backlog must stay under the host
	// port's 16 VCs or the next scan cannot reserve an entry VC.
	n.Run(30)
	if got := n.DegradedLive(); got != len(victims) {
		t.Fatalf("DegradedLive = %d after blocker open, want %d (open is not a trigger)", got, len(victims))
	}

	// Trigger: shrinking the blocker (§4.3 renegotiation) returns
	// capacity — the scan finds two free slots, enough for two victims.
	if err := n.ModifyBandwidth(blocker, 1200*traffic.Mbps); err != nil {
		t.Fatalf("shrink blocker: %v", err)
	}
	n.Run(40)
	var stuck []*Conn
	promoted := 0
	for _, c := range victims {
		switch {
		case c.Open() && !c.Degraded:
			promoted++
		case c.Degraded:
			stuck = append(stuck, c)
		}
	}
	if promoted != 2 || len(stuck) != 2 {
		t.Fatalf("promoted=%d stuck=%d, want 2/2", promoted, len(stuck))
	}
	// Fairness: equal tenants tie-break on connection ID, so the two
	// highest IDs are the ones left waiting.
	if stuck[0].ID != victims[2].ID || stuck[1].ID != victims[3].ID {
		t.Fatalf("stuck IDs %d,%d; want %d,%d (lowest IDs promote first)",
			stuck[0].ID, stuck[1].ID, victims[2].ID, victims[3].ID)
	}
	if st := n.Stats(); st.ConnsPromoted != 2 {
		t.Fatalf("ConnsPromoted = %d, want 2", st.ConnsPromoted)
	}

	// A further shrink frees exactly one more slot — only the lower-ID
	// straggler recovers.
	if err := n.ModifyBandwidth(blocker, 1160*traffic.Mbps); err != nil {
		t.Fatalf("shrink blocker: %v", err)
	}
	n.Run(40)
	if got := n.DegradedLive(); got != 1 {
		t.Fatalf("DegradedLive = %d after second shrink, want 1", got)
	}
	if stuck[0].Degraded || !stuck[0].Open() {
		t.Fatalf("lower-ID stuck conn %d should promote first after the shrink", stuck[0].ID)
	}

	// Trigger: a graceful close frees the last slot.
	if err := n.DrainAndClose(blocker, 5000); err != nil {
		t.Fatalf("close blocker: %v", err)
	}
	n.Run(1000)
	if got := n.DegradedLive(); got != 0 {
		t.Fatalf("DegradedLive = %d after close, want 0", got)
	}
	if st := n.Stats(); st.ConnsPromoted != 4 {
		t.Fatalf("ConnsPromoted = %d, want 4", st.ConnsPromoted)
	}
	if err := n.CheckBEFlowOwners(); err != nil {
		t.Fatalf("fallback-flow audit: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after full recovery: %v", err)
	}
}

// TestPromotionHonorsTenantQuota: re-promotion re-enters admission, so
// a tenant whose guaranteed budget is exhausted keeps its sessions
// degraded while an unconstrained tenant's sessions all recover; when
// the quota is raised, the next capacity trigger promotes the rest.
func TestPromotionHonorsTenantQuota(t *testing.T) {
	n, victims := chainPromotionScenario(t, func(n *Network, i int) (*Conn, error) {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		return n.OpenAs(tenant, 0, 2, victimSpec())
	})
	defer n.Shutdown()

	// Tenant a may hold one session's worth of guaranteed bandwidth
	// (its two degraded sessions currently hold none).
	slot := n.GuaranteedCyclesFor(victimSpec())
	n.Tenants().SetQuota("a", admission.TenantQuota{MaxGuaranteed: slot})
	if err := n.RestoreLink(0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(3000) // the fallback backlog drains; the restore-triggered ladder exhausted against it
	// A short-lived session's close triggers the rescan with the whole
	// round free: tenant b recovers fully, tenant a only up to its quota.
	dummy, err := n.Open(0, 2, victimSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(dummy); err != nil {
		t.Fatal(err)
	}
	n.Run(2000)

	aStuck, aOpen, bOpen := 0, 0, 0
	for _, c := range victims {
		switch {
		case c.Tenant == "a" && c.Degraded:
			aStuck++
		case c.Tenant == "a" && c.Open():
			aOpen++
		case c.Tenant == "b" && c.Open():
			bOpen++
		}
	}
	if aOpen != 1 || aStuck != 1 || bOpen != 2 {
		t.Fatalf("a: %d open %d stuck, b: %d open; want 1/1/2", aOpen, aStuck, bOpen)
	}
	if u := n.Tenants().Usage("a"); u.Sessions != 2 || u.Guaranteed != slot {
		t.Fatalf("tenant a usage %+v, want 2 sessions / %d guaranteed", u, slot)
	}

	// Raising the quota is not itself a capacity event: the scan ladder
	// is exhausted, so the stragglers wait for the next trigger.
	n.Tenants().SetQuota("a", admission.TenantQuota{})
	n.Run(3000)
	if got := n.DegradedLive(); got != 1 {
		t.Fatalf("DegradedLive = %d after quota raise alone, want 1", got)
	}
	// A close triggers the rescan; with the quota gone everyone recovers.
	var b0 *Conn
	for _, c := range victims {
		if c.Tenant == "b" && c.Open() {
			b0 = c
			break
		}
	}
	if err := n.DrainAndClose(b0, 5000); err != nil {
		t.Fatal(err)
	}
	n.Run(1000)
	if got := n.DegradedLive(); got != 0 {
		t.Fatalf("DegradedLive = %d after quota raise + trigger, want 0", got)
	}
	if err := n.CheckBEFlowOwners(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPromotionSurvivesCheckpoint kills the fabric mid-backoff — a
// re-promotion scan is journaled but capacity is still fully blocked —
// and requires the restored fabric to re-encode bit-exactly, carry the
// degraded population, and complete the recovery once capacity frees.
func TestPromotionSurvivesCheckpoint(t *testing.T) {
	n, victims := chainPromotionScenario(t, defaultOpen)
	defer n.Shutdown()

	if err := n.RestoreLink(0, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(3000) // backlog drains; restore-triggered ladder exhausted against it
	// Refill the round, then shrink one blocker: the scan that shrink
	// arms is journaled for the next cycle — and the fabric is killed
	// before it runs.
	var blockers []*Conn
	for {
		c, err := n.Open(0, 2, blockerSpec(320))
		if err != nil {
			break
		}
		blockers = append(blockers, c)
	}
	if len(blockers) != 4 {
		t.Fatalf("%d blockers admitted, want 4", len(blockers))
	}
	if err := n.ModifyBandwidth(blockers[0], 280*traffic.Mbps); err != nil {
		t.Fatal(err)
	}
	if got := n.DegradedLive(); got != len(victims) {
		t.Fatalf("%d victims promoted before the armed scan could run", len(victims)-got)
	}

	snap, err := n.EncodeState()
	if err != nil {
		t.Fatalf("EncodeState mid-backoff: %v", err)
	}
	path := filepath.Join(t.TempDir(), "promote.ckpt")
	if err := n.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	cfg2 := chainPromotionConfig(t)
	cfg2.Workers = 4
	cfg2.NoIdleSkip = true
	n2, err := RestoreCheckpoint(cfg2, path)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer n2.Shutdown()
	resnap, err := n2.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, resnap) {
		t.Fatalf("restored state re-encodes differently (%d vs %d bytes)", len(snap), len(resnap))
	}
	if got := n2.DegradedLive(); got != len(victims) {
		t.Fatalf("restored DegradedLive = %d, want %d", got, len(victims))
	}

	// The journaled scan fires in the restored fabric: the shrink freed
	// exactly one slot, so exactly one victim recovers.
	n2.Run(3000)
	if got := n2.DegradedLive(); got != len(victims)-1 {
		t.Fatalf("restored DegradedLive = %d after the journaled scan, want %d", got, len(victims)-1)
	}
	if st := n2.Stats(); st.ConnsPromoted != 1 {
		t.Fatalf("restored ConnsPromoted = %d after the journaled scan, want 1", st.ConnsPromoted)
	}

	// Free the rest of the capacity. The close-triggered scans race the
	// fallback backlog that rebuilt while the round was full, so after
	// the drain one more trigger settles any stragglers.
	for _, c := range n2.Conns() {
		if c.Open() {
			if err := n2.DrainAndClose(c, 5000); err != nil {
				t.Fatalf("close blocker in restored fabric: %v", err)
			}
		}
	}
	n2.Run(3000)
	dummy, err := n2.Open(0, 2, victimSpec())
	if err != nil {
		t.Fatalf("dummy open in restored fabric: %v", err)
	}
	if err := n2.Close(dummy); err != nil {
		t.Fatal(err)
	}
	n2.Run(2000)
	if got := n2.DegradedLive(); got != 0 {
		t.Fatalf("restored fabric left %d sessions degraded after capacity freed", got)
	}
	if st := n2.Stats(); st.ConnsPromoted != int64(len(victims)) {
		t.Fatalf("restored ConnsPromoted = %d, want %d", st.ConnsPromoted, len(victims))
	}
	if err := n2.CheckBEFlowOwners(); err != nil {
		t.Fatal(err)
	}
	if err := n2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDecodesPreviousVersion fabricates a genuine version-3
// checkpoint (the v4 additions are a strict trailer, so the payload
// prefix IS what a v3 writer produced) and restores it: tenant state
// defaults, usage is recomputed from the restored sessions, and the
// fabric re-encodes at v4 byte-identically to the live one.
func TestCheckpointDecodesPreviousVersion(t *testing.T) {
	n, victims := chainPromotionScenario(t, defaultOpen)
	defer n.Shutdown()

	payload, trailerStart, err := n.encodeStateParts()
	if err != nil {
		t.Fatal(err)
	}
	if trailerStart >= len(payload) {
		t.Fatalf("v4 trailer is empty (start %d of %d)", trailerStart, len(payload))
	}
	cfg2 := chainPromotionConfig(t)
	path := filepath.Join(t.TempDir(), "v3.ckpt")
	v3 := checkpoint.SealAt(3, n.ConfigHash(), payload[:trailerStart])
	if err := os.WriteFile(path, v3, 0o644); err != nil {
		t.Fatal(err)
	}

	n2, err := RestoreCheckpoint(cfg2, path)
	if err != nil {
		t.Fatalf("restore v3 checkpoint: %v", err)
	}
	defer n2.Shutdown()
	if n2.Now() != n.Now() {
		t.Fatalf("clock %d, want %d", n2.Now(), n.Now())
	}
	if got := n2.DegradedLive(); got != len(victims) {
		t.Fatalf("restored DegradedLive = %d, want %d", got, len(victims))
	}
	// The default tenant's recomputed usage covers every live session,
	// none of which holds guaranteed bandwidth while degraded.
	if u := n2.Tenants().Usage(""); u.Sessions != len(victims) || u.Guaranteed != 0 {
		t.Fatalf("recomputed default-tenant usage %+v, want %d sessions / 0 guaranteed", u, len(victims))
	}
	// With no tenant quotas and no promotion history in the live fabric
	// either, the v4 re-encode matches the original bit for bit.
	reenc, err := n2.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, reenc) {
		t.Fatalf("v3-restored fabric re-encodes differently at v4 (%d vs %d bytes)", len(payload), len(reenc))
	}
	// And it behaves identically: repair the link in both fabrics, let
	// the fallback backlog drain, then fire a close trigger — both
	// promote the same population to the same end state.
	for _, f := range []*Network{n, n2} {
		if err := f.RestoreLink(0, 0); err != nil {
			t.Fatal(err)
		}
		f.Run(3000)
		dummy, err := f.Open(0, 2, victimSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(dummy); err != nil {
			t.Fatal(err)
		}
		f.Run(2000)
	}
	a, err := n.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := n2.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("v3-restored fabric diverged from the live one after promotion")
	}
	if got := n2.DegradedLive(); got != 0 {
		t.Fatalf("%d sessions degraded after repair in the v3-restored fabric", got)
	}
}

// promoteDetScenario runs a loaded 4×4 mesh whose fault plan takes
// router 5 down long enough for the short retry ladder to exhaust (its
// hosts' sessions degrade) and then repairs it (they re-promote), and
// returns the end-state encoding plus statistics.
func promoteDetScenario(t *testing.T, workers int, promote bool) ([]byte, *Stats) {
	t.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 11
	cfg.Workers = workers
	cfg.Fault = FaultPolicy{Restore: true, MaxRetries: 2, RetryBackoff: 16, Degrade: true, Promote: promote, Paranoid: true}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	rng := sim.NewRNG(99)
	for i, opened := 0, 0; i < 300 && opened < 48; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]}
		if i%3 == 0 {
			spec.Class = flit.ClassVBR
			spec.PeakRate = 2 * spec.Rate
		}
		if _, err := n.Open(src, dst, spec); err == nil {
			opened++
		}
	}
	for i := 0; i < 12; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src != dst {
			n.AddBestEffortFlow(src, dst, 0.01)
		}
	}
	plan := faults.NewPlan(3).
		FailRouterAt(300, 5).
		RestoreRouterAt(1500, 5).
		FailLinkAt(600, 10, 1).
		RestoreLinkAt(1700, 10, 1)
	if err := n.ApplyPlan(plan, 3000); err != nil {
		t.Fatal(err)
	}
	n.Run(3500)
	b, err := n.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return b, n.Stats()
}

// TestPromotionDeterminism: with promotion on or off, the end state is
// bit-identical at every worker count — the scan rides the serial
// event path, so parallel execution cannot reorder it.
func TestPromotionDeterminism(t *testing.T) {
	for _, promote := range []bool{false, true} {
		name := "off"
		if promote {
			name = "on"
		}
		t.Run(name, func(t *testing.T) {
			ref, st := promoteDetScenario(t, 1, promote)
			if st.ConnsDegraded == 0 {
				t.Fatalf("degenerate scenario: nothing degraded (%+v)", st)
			}
			if promote && st.ConnsPromoted == 0 {
				t.Fatal("degenerate scenario: nothing promoted with promotion on")
			}
			if !promote && st.ConnsPromoted != 0 {
				t.Fatalf("ConnsPromoted = %d with promotion off", st.ConnsPromoted)
			}
			for _, w := range []int{2, 4} {
				b, _ := promoteDetScenario(t, w, promote)
				if !bytes.Equal(ref, b) {
					t.Errorf("workers=%d end state diverged from serial (%d vs %d bytes)", w, len(ref), len(b))
				}
			}
		})
	}
}

// TestModifyBandwidthLifecycleErrors: each refusal names the actual
// lifecycle state, so callers can tell retry-later (broken) from
// renegotiate (degraded) from give-up (closed, lost).
func TestModifyBandwidthLifecycleErrors(t *testing.T) {
	mk := func(policy FaultPolicy) (*Network, *Conn) {
		tp, err := topology.Mesh(3, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(tp)
		cfg.VCs = 8
		cfg.Fault = policy
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps})
		if err != nil {
			t.Fatal(err)
		}
		return n, c
	}
	cases := []struct {
		name string
		prep func() (*Network, *Conn)
		want string
	}{
		{"closed", func() (*Network, *Conn) {
			n, c := mk(FaultPolicy{Paranoid: true})
			if err := n.Close(c); err != nil {
				t.Fatal(err)
			}
			return n, c
		}, "is closed"},
		{"lost", func() (*Network, *Conn) {
			n, c := mk(FaultPolicy{Restore: false, Degrade: false, Paranoid: true})
			if err := n.FailLink(0, 0); err != nil {
				t.Fatal(err)
			}
			n.Run(10)
			if !c.Lost() {
				t.Fatal("victim not lost")
			}
			return n, c
		}, "was lost"},
		{"degraded", func() (*Network, *Conn) {
			n, c := mk(FaultPolicy{Restore: false, Degrade: true, Promote: true, Paranoid: true})
			if err := n.FailLink(0, 0); err != nil {
				t.Fatal(err)
			}
			n.Run(10)
			if !c.Degraded {
				t.Fatal("victim not degraded")
			}
			return n, c
		}, "degraded to best-effort"},
		{"broken", func() (*Network, *Conn) {
			n, c := mk(FaultPolicy{Restore: true, MaxRetries: 2, RetryBackoff: 4096, Degrade: true, Paranoid: true})
			if err := n.FailLink(0, 0); err != nil {
				t.Fatal(err)
			}
			if !c.Broken() {
				t.Fatal("victim not broken")
			}
			return n, c
		}, "fault-broken"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, c := tc.prep()
			defer n.Shutdown()
			err := n.ModifyBandwidth(c, 20*traffic.Mbps)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ModifyBandwidth on %s conn: %v, want mention of %q", tc.name, err, tc.want)
			}
		})
	}
	t.Run("nil", func(t *testing.T) {
		n, _ := mk(FaultPolicy{Paranoid: true})
		defer n.Shutdown()
		if err := n.ModifyBandwidth(nil, 20*traffic.Mbps); err == nil || !strings.Contains(err.Error(), "nil connection") {
			t.Fatalf("ModifyBandwidth(nil): %v", err)
		}
	})
}
