package network

// workers.go is the shard-resident parallel executor behind the flit
// cycle. The fabric is partitioned into shards (topology.Partition —
// contiguous node ranges for meshes, region-aligned for generated
// fabrics) and every shard is owned by exactly one worker for the life
// of the pool: the worker steps its shard's nodes, draws their RNG
// streams, fills their stats shards and drains their staging lanes, so
// interior traffic — both endpoints in one shard — never synchronizes
// with another worker at all.
//
// Edges are classified once, at partition time, into interior (producer
// and consumer owned by the same worker) and boundary (cross-shard:
// published through the existing single-writer staging lanes). A node
// is "interior" when every wired edge it touches is; the per-cycle
// active-set scan counts how many active nodes are boundary nodes, and
// that count picks the cycle's execution mode:
//
//	cycFused        no active boundary nodes: each worker runs
//	                deliver→schedule→commit over its own active nodes
//	                with no mid-cycle synchronization at all — the only
//	                barrier is the end-of-cycle join.
//	cycSplit        boundary traffic present: each worker fuses
//	                deliver+schedule into one pass over its shard, then
//	                crosses ONE mid-cycle sequence point, then runs
//	                commit. The old engine needed two barriers here
//	                (deliver→schedule and schedule→commit); the first is
//	                unnecessary because delivery only mutates buffer
//	                occupancy while cross-node schedule reads only touch
//	                VC reservation state, which nothing mutates before
//	                commit (see the phase contract in datapath.go).
//	cycSplitImpair  link impairments active: impairment drops release VC
//	                reservations *during delivery* (the one deliver-phase
//	                write cross-node schedule reads could observe), so
//	                these cycles keep the deliver→schedule barrier too.
//	                Rare — only while a fault plan holds an impairment.
//
// Bit-exactness is unchanged from the work-stealing engine this
// replaces: per-node work order within a pass cannot affect results
// (all cross-node effects ride single-writer lanes or claim slots that
// are consumed a sequence point later), per-node RNG/stats/pools are
// merged in ascending node order on the serial path, and the
// shards×workers×gating equivalence matrix (shard_test.go) pins
// EncodeState byte-equality across every combination.
//
// Everything on the dispatch path (one channel send per worker per
// cycle, the two reusable WaitGroups, per-worker slice resets) is
// allocation-free, keeping the steady-state zero-alloc guarantee at
// every worker and shard count.

// Cycle execution modes (see the file comment).
const (
	cycFused = iota
	cycSplit
	cycSplitImpair
)

// workerRun is one worker's resident state: the nodes it owns (ascending
// node order), its slice of the current cycle's active set, and the
// claim-extra receivers recorded while staging claims this cycle. Padded
// so adjacent workers' append cursors never share a cache line.
type workerRun struct {
	nodes  []*node // owned nodes, ascending (shard blocks are contiguous)
	act    []*node // active owned nodes this cycle, ascending
	extras []*node // gated-out claim receivers recorded during schedule
	_      [56]byte
}

// SetWorkers resizes the worker pool and re-derives shard ownership.
// k <= 1 (and any k when the network has a single node) tears the pool
// down and runs the same per-shard passes inline; the simulation result
// is bit-identical for every k. Safe to call between Steps only.
func (n *Network) SetWorkers(k int) {
	if k > len(n.nodes) {
		k = len(n.nodes)
	}
	if k < 1 {
		k = 1
	}
	if k == n.Workers() && len(n.wrk) == k {
		return
	}
	n.Shutdown()
	n.workers = k
	n.partition()
	for i := 1; i < k; i++ {
		ch := make(chan struct{}, 1)
		n.wake = append(n.wake, ch)
		go n.workerLoop(i, ch)
	}
}

// Workers returns the current worker-pool size (1 = serial).
func (n *Network) Workers() int {
	if n.workers < 1 {
		return 1
	}
	return n.workers
}

// SetShards overrides the shard count: s > 0 pins the partition to s
// shards (clamped to the node count); s = 0 returns to the default of
// one shard per worker. Like Workers, the shard count is an execution
// strategy, not a model parameter — results are bit-identical for every
// value, and it is excluded from ConfigHash. Safe to call between Steps
// only.
func (n *Network) SetShards(s int) {
	if s < 0 {
		s = 0
	}
	if s == n.shardsReq && n.wrk != nil {
		return
	}
	n.shardsReq = s
	n.partition()
}

// Shards returns the number of shards the fabric is currently
// partitioned into.
func (n *Network) Shards() int { return n.numShards }

// Shutdown stops the worker goroutines. Call when done with a network
// built with Workers > 1 (netsweep and fuzz harnesses create thousands
// of networks; leaked workers would accumulate). Idempotent; the network
// remains usable afterwards in serial mode.
func (n *Network) Shutdown() {
	for _, ch := range n.wake {
		close(ch)
	}
	n.wake = n.wake[:0]
	if n.workers != 1 {
		n.workers = 1
		n.partition()
	}
}

// partition (re)derives the shard layout and worker ownership: the
// topology partitioner yields the shard member lists, shards map onto
// workers in contiguous blocks balanced by node count, and every node is
// classified interior/boundary by whether all its wired edges stay
// inside its shard. Runs on the control path (SetWorkers/SetShards), so
// its allocations never touch the steady state.
func (n *Network) partition() {
	k := n.Workers()
	s := n.shardsReq
	if s <= 0 {
		s = k
	}
	parts := n.cfg.Topology.Partition(s)
	s = len(parts)
	n.numShards = s

	if n.shardOf == nil {
		n.shardOf = make([]int32, len(n.nodes))
		n.workerOf = make([]int32, len(n.nodes))
		n.interior = make([]bool, len(n.nodes))
	}
	for si, p := range parts {
		for _, id := range p {
			n.shardOf[id] = int32(si)
		}
	}

	// Shard → worker: contiguous shard blocks, balanced by node count
	// (same proportional-target rule as the region grouping in
	// topology.Partition). With s < k the trailing workers own nothing
	// and only participate in the barriers.
	shardWorker := make([]int32, s)
	c, cum := 0, 0
	for si := range parts {
		shardWorker[si] = int32(c)
		cum += len(parts[si])
		switch {
		case c >= k-1:
		case s-si-1 == k-c-1:
			c++
		case cum*k >= (c+1)*len(n.nodes):
			c++
		}
	}

	n.wrk = make([]workerRun, k)
	for _, nd := range n.nodes {
		w := shardWorker[n.shardOf[nd.id]]
		n.workerOf[nd.id] = w
		n.wrk[w].nodes = append(n.wrk[w].nodes, nd)
	}

	// Interior classification. Wiring is symmetric (Connect wires both
	// directions), but check inbound and outbound edges independently so
	// the classification never depends on that.
	n.allBoundary = 0
	for _, nd := range n.nodes {
		in := true
		for i := range nd.in {
			if n.shardOf[nd.in[i].peer] != n.shardOf[nd.id] {
				in = false
				break
			}
		}
		if in {
			for _, x := range nd.outPeer {
				if x >= 0 && n.shardOf[x] != n.shardOf[nd.id] {
					in = false
					break
				}
			}
		}
		n.interior[nd.id] = in
		if !in {
			n.allBoundary++
		}
	}
}

// ShardLayout reports the current partition for diagnostics and tests:
// the shard count and how many nodes are interior (every wired edge
// stays inside the node's shard) vs boundary.
func (n *Network) ShardLayout() (shards, interior, boundary int) {
	return n.numShards, len(n.nodes) - n.allBoundary, n.allBoundary
}

// ShardOf returns the shard owning the given node.
func (n *Network) ShardOf(node int) int { return int(n.shardOf[node]) }

// serialCutoff is the active-set size below which a cycle skips the pool
// and runs inline: with fewer than two active nodes per worker the
// wake/join round-trip costs more than the work it spreads. Derived from
// the worker count (a fixed constant would either never fire for large
// pools or always fire for small ones); purely a performance knob — the
// serial and pooled paths are bit-identical by construction.
func (n *Network) serialCutoff() int { return 2 * n.Workers() }

// workerLoop is one pool goroutine: woken once per cycle, it runs its
// resident shard block through the published mode and reports the join.
func (n *Network) workerLoop(id int, wake chan struct{}) {
	for range wake {
		n.runShardCycle(id, n.cycMode, n.cycT, n.cycAll)
		n.wwg.Done()
	}
}

// runCycle executes one flit cycle. The per-worker active lists (or the
// resident node lists when all is set — the NoIdleSkip path) were
// prepared by buildActive; total and boundary are its counts. Small
// cycles run inline; otherwise the mode is published, every worker is
// woken exactly once, and the stepping goroutine participates as worker
// 0 before closing the end-of-cycle join.
func (n *Network) runCycle(t int64, total, boundary int, all bool) {
	if total == 0 {
		return
	}
	k := n.Workers()
	if k <= 1 || total < n.serialCutoff() {
		n.runCycleSerial(t, all)
		return
	}
	mode := cycSplit
	switch {
	case boundary == 0:
		// Every active node is interior: workers cannot interact at all
		// this cycle (their lanes, claims and neighbor reads all resolve
		// inside their own shard), so even the impairment drops are safe —
		// each worker's fused pass keeps them ordered before its own
		// schedule reads.
		mode = cycFused
	case len(n.impair) > 0:
		mode = cycSplitImpair
		n.midwg2.Add(k)
		n.midwg.Add(k)
	default:
		n.midwg.Add(k)
	}
	n.cycMode, n.cycT, n.cycAll = mode, t, all
	n.wwg.Add(k - 1)
	for _, ch := range n.wake {
		ch <- struct{}{}
	}
	n.runShardCycle(0, mode, t, all)
	n.wwg.Wait()
}

// runCycleSerial is the inline fallback: the same per-shard passes in
// worker order on the stepping goroutine. Order across nodes within a
// pass cannot affect results (the phase contract), so this is
// bit-identical to the pooled path.
func (n *Network) runCycleSerial(t int64, all bool) {
	for w := range n.wrk {
		for _, nd := range n.list(w, all) {
			n.phaseDeliver(nd, t)
		}
	}
	for w := range n.wrk {
		ws := &n.wrk[w]
		for _, nd := range n.list(w, all) {
			n.phaseSchedule(nd, t, ws)
		}
	}
	for w := range n.wrk {
		for _, nd := range n.list(w, all) {
			n.phaseCommit(nd, t)
		}
	}
	if !all {
		for w := range n.wrk {
			n.commitExtras(&n.wrk[w], t)
		}
	}
}

// list returns worker w's worklist for this cycle: its slice of the
// active set, or its full resident block when gating is off.
func (n *Network) list(w int, all bool) []*node {
	if all {
		return n.wrk[w].nodes
	}
	return n.wrk[w].act
}

// runShardCycle is one worker's whole cycle over its resident shard
// block. Pass A fuses deliver and schedule; pass B commits. The
// mid-cycle sequence point between them exists only in the split modes —
// it is what makes a sender's staged claims and lane appends visible to
// their cross-shard consumers — and is the single global barrier of the
// common parallel cycle (cycSplit); the end-of-cycle join doubles as the
// return to the serial path.
func (n *Network) runShardCycle(w, mode int, t int64, all bool) {
	ws := &n.wrk[w]
	list := ws.act
	if all {
		list = ws.nodes
	}
	switch mode {
	case cycFused:
		for _, nd := range list {
			n.phaseDeliver(nd, t)
		}
		for _, nd := range list {
			n.phaseSchedule(nd, t, ws)
		}
		for _, nd := range list {
			n.phaseCommit(nd, t)
		}
		if !all {
			// Interior-only cycle: every extra this worker recorded is a
			// same-shard receiver, so it commits them without looking at
			// any other worker's list.
			n.commitExtras(ws, t)
		}
	case cycSplit:
		for _, nd := range list {
			n.phaseDeliver(nd, t)
		}
		for _, nd := range list {
			n.phaseSchedule(nd, t, ws)
		}
		n.midwg.Done()
		n.midwg.Wait()
		for _, nd := range list {
			n.phaseCommit(nd, t)
		}
		if !all {
			n.commitExtrasOwned(w, t)
		}
	case cycSplitImpair:
		for _, nd := range list {
			n.phaseDeliver(nd, t)
		}
		n.midwg2.Done()
		n.midwg2.Wait()
		for _, nd := range list {
			n.phaseSchedule(nd, t, ws)
		}
		n.midwg.Done()
		n.midwg.Wait()
		for _, nd := range list {
			n.phaseCommit(nd, t)
		}
		if !all {
			n.commitExtrasOwned(w, t)
		}
	}
}

// commitExtras commits the inbound claims of the gated-out receivers one
// worker recorded while staging claims, deduplicated by the extra stamp.
// Serial path and fused cycles: every recorded receiver is owned by the
// recording worker.
func (n *Network) commitExtras(ws *workerRun, t int64) {
	for _, nd := range ws.extras {
		if n.extraStamp[nd.id] == t {
			continue
		}
		n.extraStamp[nd.id] = t
		n.commitClaims(nd)
	}
}

// commitExtrasOwned is the split-cycle form: worker w scans every
// worker's extras (visible — recording happened before the sequence
// point) and commits the ones it owns. The extra stamp has a single
// writer per slot (the owner), so the dedup is race-free.
func (n *Network) commitExtrasOwned(w int, t int64) {
	for i := range n.wrk {
		for _, nd := range n.wrk[i].extras {
			if n.workerOf[nd.id] != int32(w) || n.extraStamp[nd.id] == t {
				continue
			}
			n.extraStamp[nd.id] = t
			n.commitClaims(nd)
		}
	}
}
