package network

// workers.go is the persistent worker pool behind the parallel flit
// cycle. Each cycle runs as three barrier-separated phases (see
// datapath.go); within a phase, nodes are claimed off a shared atomic
// counter by whichever worker is free (work stealing), which is safe
// because a phase only ever writes node-local state and single-writer
// staging lanes — the claim order cannot affect the result. The stepping
// goroutine participates as a worker, so SetWorkers(k) spawns k-1
// goroutines. Everything on the dispatch path (channel sends of empty
// structs, the WaitGroup barrier, the atomic counter) is allocation-free,
// keeping the steady-state zero-alloc guarantee at every worker count.

// Phase identifiers for the dispatch switch (closure-free: workers
// re-dispatch on an ID instead of capturing per-cycle closures).
const (
	phaseDeliver      = iota // drain inbound lanes, impairments, round boundary
	phaseSchedule            // route, link scheduling, arbitration, claims
	phaseCommit              // execute grants, commit claims, inject
	phaseCommitClaims        // claim commit only, for gated-out claim receivers
)

// SetWorkers resizes the worker pool. k <= 1 (and any k when the network
// has a single node) tears the pool down and runs the sharded phases
// inline; the simulation result is bit-identical for every k. Safe to
// call between Steps only.
func (n *Network) SetWorkers(k int) {
	if k > len(n.nodes) {
		k = len(n.nodes)
	}
	if k < 1 {
		k = 1
	}
	if k == n.Workers() {
		return
	}
	n.Shutdown()
	n.workers = k
	for i := 0; i < k-1; i++ {
		ch := make(chan struct{}, 1)
		n.wake = append(n.wake, ch)
		go n.workerLoop(ch)
	}
}

// Workers returns the current worker-pool size (1 = serial).
func (n *Network) Workers() int {
	if n.workers < 1 {
		return 1
	}
	return n.workers
}

// Shutdown stops the worker goroutines. Call when done with a network
// built with Workers > 1 (netsweep and fuzz harnesses create thousands of
// networks; leaked workers would accumulate). Idempotent; the network
// remains usable afterwards in serial mode.
func (n *Network) Shutdown() {
	for _, ch := range n.wake {
		close(ch)
	}
	n.wake = n.wake[:0]
	n.workers = 1
}

// workerLoop is one pool goroutine: woken once per phase, it claims nodes
// off the published worklist until the shared counter runs out, then
// reports the barrier.
func (n *Network) workerLoop(wake chan struct{}) {
	for range wake {
		n.drainNodes(n.phList, n.phID, n.phT)
		n.wwg.Done()
	}
}

// runPhase executes one phase over the given worklist (the full node set
// with gating off, the compact active set with gating on), sharded across
// the pool. phList/phID/phT are published before the channel sends, which
// happen-before the workers' reads; the WaitGroup closes the barrier.
// Tiny worklists skip the pool: the barrier costs more than the work.
func (n *Network) runPhase(list []*node, ph int, t int64) {
	if n.workers <= 1 || len(list) < 2 {
		for _, nd := range list {
			n.stepNode(ph, nd, t)
		}
		return
	}
	n.phList, n.phID, n.phT = list, ph, t
	n.widx.Store(0)
	n.wwg.Add(len(n.wake))
	for _, ch := range n.wake {
		ch <- struct{}{}
	}
	n.drainNodes(list, ph, t)
	n.wwg.Wait()
}

// drainNodes claims worklist entries off the shared counter until none
// remain.
func (n *Network) drainNodes(list []*node, ph int, t int64) {
	for {
		i := int(n.widx.Add(1)) - 1
		if i >= len(list) {
			return
		}
		n.stepNode(ph, list[i], t)
	}
}

// stepNode dispatches one node's share of the given phase.
func (n *Network) stepNode(ph int, nd *node, t int64) {
	switch ph {
	case phaseDeliver:
		n.phaseDeliver(nd, t)
	case phaseSchedule:
		n.phaseSchedule(nd, t)
	case phaseCommit:
		n.phaseCommit(nd, t)
	case phaseCommitClaims:
		n.commitClaims(nd)
	}
}
