package network

import (
	"testing"
	"testing/quick"

	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// churn drives a small mesh with random interleaved operations —
// synchronous opens, async probes, retried opens, teardowns, best-effort
// flows, link failures and repairs, cycle bursts — and checks invariants
// after each: flit conservation across VCMs, wires, queues and fault
// losses; allocator registers never negative; the resource bookkeeping
// of closed and fault-broken connections fully released (CheckInvariants).
// Panics (flow-control violations, double releases, paranoid-mode audits)
// fail the property. Shared by the quick.Check test and the native
// fuzzer.
func churn(seed uint64, ops []byte) bool {
	tp, err := topology.Mesh(3, 3, 4)
	if err != nil {
		return false
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	cfg.Seed = seed
	n, err := New(cfg)
	if err != nil {
		return false
	}
	rng := sim.NewRNG(seed ^ 0x5ca1ab1e)
	var open []*Conn
	for _, op := range ops {
		switch op % 10 {
		case 0, 1: // synchronous open
			src, dst := rng.Intn(9), rng.Intn(9)
			if src == dst {
				break
			}
			rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
			if c, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}); err == nil {
				open = append(open, c)
			}
		case 2: // async probe
			src, dst := rng.Intn(9), rng.Intn(9)
			if src == dst {
				break
			}
			n.OpenAsync(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps},
				func(c *Conn, err error) {
					if err == nil {
						open = append(open, c)
					}
				})
		case 3: // open with backoff retries
			src, dst := rng.Intn(9), rng.Intn(9)
			if src == dst {
				break
			}
			n.OpenWithRetry(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 20 * traffic.Mbps},
				func(c *Conn, err error) {
					if err == nil {
						open = append(open, c)
					}
				})
		case 4: // teardown one connection
			if len(open) > 0 {
				i := rng.Intn(len(open))
				if err := n.DrainAndClose(open[i], 3000); err == nil {
					open = append(open[:i], open[i+1:]...)
				}
			}
		case 5: // best-effort flow
			src, dst := rng.Intn(9), rng.Intn(9)
			if src != dst {
				n.AddBestEffortFlow(src, dst, 0.002)
			}
		case 6: // fail a random link (paranoid audit runs inside)
			l := tp.Links[rng.Intn(len(tp.Links))]
			n.FailLink(l.A, l.APort)
		case 7: // restore a random link
			l := tp.Links[rng.Intn(len(tp.Links))]
			n.RestoreLink(l.A, l.APort)
		default: // run cycles
			n.Run(int64(op)*3 + 16)
		}
		if !networkInvariants(n) {
			return false
		}
	}
	return true
}

// TestNetworkFuzzChurn runs the churn property under testing/quick.
func TestNetworkFuzzChurn(t *testing.T) {
	f := churn
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FuzzNetworkChurn runs the same churn property under Go's native
// fuzzer, so `go test -fuzz=FuzzNetworkChurn -fuzztime=30s` explores
// operation interleavings coverage-guided (the Makefile's fuzz-smoke
// target runs a short budget of this in CI).
func FuzzNetworkChurn(f *testing.F) {
	f.Add(uint64(1), []byte{0, 9, 6, 9, 7, 4})
	f.Add(uint64(7), []byte{2, 9, 3, 6, 9, 6, 9, 7, 7, 4, 4})
	f.Add(uint64(42), []byte{1, 1, 5, 9, 6, 8, 7, 9, 4, 4})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48] // bound per-case runtime
		}
		if !churn(seed, ops) {
			t.Fatal("network invariants violated")
		}
	})
}

// networkInvariants checks global conservation and bookkeeping sanity:
// every generated flit is delivered, buffered, queued, in flight, or
// accounted lost to a fault/impairment — and the structural audit in
// CheckInvariants holds.
func networkInvariants(n *Network) bool {
	var buffered, inflight, queued int64
	for _, nd := range n.nodes {
		for p, mem := range nd.mems {
			occ := mem.Occupied()
			if occ < 0 || occ > n.cfg.VCs*n.cfg.Depth {
				return false
			}
			buffered += int64(occ)
			if nd.alloc[p].Guaranteed() < 0 {
				return false
			}
		}
		for q := range nd.pipes {
			inflight += int64(len(nd.pipes[q].pending()))
		}
	}
	for _, c := range n.conns {
		queued += int64(c.niQueue.Len())
	}
	for _, bf := range n.beFlows {
		queued += int64(bf.niQueue.Len())
	}
	var gen, del, lost int64
	for _, nd := range n.nodes {
		gen += nd.stats.generated + nd.stats.beGenerated
		del += nd.stats.delivered + nd.stats.beDelivered
		lost += nd.stats.flitsDropped
	}
	lost += n.m.faultFlitsLost
	if gen != del+buffered+queued+inflight+lost {
		return false
	}
	return n.CheckInvariants() == nil
}

// TestNetworkDeterminism: identical seeds give identical multi-router
// results.
func TestNetworkDeterminism(t *testing.T) {
	run := func() *Stats {
		tp, _ := topology.Mesh(3, 3, 4)
		cfg := DefaultConfig(tp)
		cfg.VCs = 16
		cfg.Seed = 5
		n, _ := New(cfg)
		for i := 0; i < 5; i++ {
			n.Open(i, 8-i, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 20 * traffic.Mbps})
		}
		n.AddBestEffortFlow(0, 8, 0.01)
		n.Run(15_000)
		return n.Stats()
	}
	a, b := run(), run()
	if a.FlitsDelivered != b.FlitsDelivered || a.Latency.Mean() != b.Latency.Mean() ||
		a.BEDelivered != b.BEDelivered {
		t.Fatalf("same seed, different results:\n%v\n%v", a, b)
	}
}

// TestNetworkLinkDelayScaling: longer wires add latency but never break
// flow control.
func TestNetworkLinkDelayScaling(t *testing.T) {
	lat := func(delay int64) float64 {
		tp, _ := topology.Mesh(3, 1, 4) // 2-hop chain
		cfg := DefaultConfig(tp)
		cfg.VCs = 16
		cfg.LinkDelay = delay
		n, _ := New(cfg)
		if _, err := n.Open(0, 2, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps}); err != nil {
			t.Fatal(err)
		}
		n.Run(20_000)
		st := n.Stats()
		if st.FlitsDelivered == 0 {
			t.Fatalf("no delivery at link delay %d", delay)
		}
		return st.Latency.Mean()
	}
	l1, l4 := lat(1), lat(4)
	// Two inter-router wires plus credit returns: each extra delay cycle
	// adds at least two cycles of latency.
	if l4 < l1+5 {
		t.Fatalf("latency did not scale with link delay: %.2f vs %.2f", l1, l4)
	}
}
