package network

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/routing"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// probe.go implements the event-driven EPB establishment protocol: a
// probe packet advances one hop per HopLatency cycles, reserving an
// input VC at the next router and bandwidth on the output link (§3.5,
// §4.2), backtracking and releasing on dead ends. Unlike the synchronous
// Open, concurrent probes interleave and race for resources, exactly as
// in the real router; the acknowledgment walks back along the reverse
// channel mappings before the source may inject.

// demand is a connection's resource demand in allocation units.
type demand struct {
	alloc, peak int
}

func (n *Network) demandFor(spec traffic.ConnSpec) demand {
	roundLen := n.cfg.K * n.cfg.VCs
	d := demand{alloc: n.cfg.Link.CyclesPerRound(spec.Rate, roundLen)}
	d.peak = d.alloc
	if spec.Class == flit.ClassVBR {
		d.peak = n.cfg.Link.CyclesPerRound(spec.PeakRate, roundLen)
		if d.peak < d.alloc {
			d.peak = d.alloc
		}
	}
	return d
}

// GuaranteedCyclesFor returns the guaranteed cycles/round a session of
// the given spec is charged — the unit tenant quotas are denominated
// in. The daemon uses it to convert Mbps quota requests into
// allocation units.
func (n *Network) GuaranteedCyclesFor(spec traffic.ConnSpec) int {
	return n.demandFor(spec).alloc
}

func (n *Network) admitOut(x *node, p int, spec traffic.ConnSpec, d demand) bool {
	if spec.Class == flit.ClassVBR {
		return x.alloc[p].AdmitVBR(d.alloc, d.peak)
	}
	return x.alloc[p].AdmitCBR(d.alloc)
}

func (n *Network) releaseOut(x *node, p int, spec traffic.ConnSpec, d demand) {
	if spec.Class == flit.ClassVBR {
		x.alloc[p].ReleaseVBR(d.alloc, d.peak)
	} else {
		x.alloc[p].ReleaseCBR(d.alloc)
	}
}

// probeHop is one reserved hop of an in-flight probe.
type probeHop struct {
	node, port int // output taken from node
	vc         int // VC reserved at the neighbor's input
}

// probe is the state of one in-flight EPB establishment.
type probe struct {
	n        *Network
	src, dst int
	tenant   string
	spec     traffic.ConnSpec
	d        demand
	done     func(*Conn, error)

	node    int
	entryVC int
	hops    []probeHop
	hist    map[int]*routing.History
	started int64
	forward int // forward hops taken (including undone)
	backs   int // backtracks
	acking  int // remaining ack hops before completion
}

// OpenAsync launches an EPB probe from the host at src toward dst. The
// probe advances one hop every HopLatency cycles; when it reaches the
// destination an acknowledgment retraces the path, and done is invoked
// with the established connection (injection starts then). On failure —
// the probe backtracked past the source — done receives the error.
// Probes race: resources are taken as the probe passes, and concurrent
// probes see each other's reservations. The session belongs to the
// default tenant; OpenAsyncAs names one.
func (n *Network) OpenAsync(src, dst int, spec traffic.ConnSpec, done func(*Conn, error)) error {
	return n.OpenAsyncAs("", src, dst, spec, done)
}

// OpenAsyncAs is OpenAsync on behalf of a tenant. The quota is checked
// at launch (an over-budget tenant's probe never enters the fabric) and
// charged when the acknowledgment completes — the probe races with
// other admissions, so the charge re-checks the budget then.
func (n *Network) OpenAsyncAs(tenant string, src, dst int, spec traffic.ConnSpec, done func(*Conn, error)) error {
	if src < 0 || src >= len(n.nodes) || dst < 0 || dst >= len(n.nodes) {
		return errBadEndpoints(src, dst)
	}
	if src == dst {
		return fmt.Errorf("network: source and destination host on the same router")
	}
	if !spec.Class.IsStream() {
		return fmt.Errorf("network: OpenAsync is for stream classes, got %v", spec.Class)
	}
	if done == nil {
		done = func(*Conn, error) {}
	}
	n.m.setupAttempts++
	if !n.tenants.CanAdmit(tenant, n.demandFor(spec).alloc) {
		n.m.setupRejected++
		done(nil, tenantQuotaError(tenant, n.tenants))
		return nil
	}
	hp := n.cfg.hostPort()
	entryVC := n.nodes[src].mems[hp].FindFree(n.rng.Intn(n.cfg.VCs))
	if entryVC < 0 {
		n.m.setupRejected++
		done(nil, fmt.Errorf("network: no free VC on host port of node %d", src))
		return nil
	}
	n.nodes[src].mems[hp].Reserve(entryVC, vcm.VCState{Conn: flit.InvalidConn, Class: spec.Class, Output: -1})
	p := &probe{
		n: n, src: src, dst: dst, tenant: tenant, spec: spec, d: n.demandFor(spec), done: done,
		node: src, entryVC: entryVC,
		hist:    map[int]*routing.History{src: {}},
		started: n.now,
	}
	n.activeProbes++
	n.Schedule(n.now+n.cfg.HopLatency, p.step)
	return nil
}

// step advances the probe one hop (or one backtrack, or one ack hop).
func (p *probe) step() {
	n := p.n
	if p.acking > 0 {
		p.acking--
		if p.acking == 0 {
			p.complete()
			return
		}
		n.Schedule(n.now+n.cfg.HopLatency, p.step)
		return
	}
	canUse := func(port int) bool {
		x := n.nodes[p.node]
		nb := n.cfg.Topology.Neighbor(p.node, port)
		if nb < 0 {
			return false
		}
		pp := n.cfg.Topology.PeerPort(p.node, port)
		y := n.nodes[nb]
		vc := y.mems[pp].FindFree(n.rng.Intn(n.cfg.VCs))
		if vc < 0 {
			return false
		}
		if !n.admitOut(x, port, p.spec, p.d) {
			return false
		}
		y.mems[pp].Reserve(vc, vcm.VCState{Conn: flit.InvalidConn, Class: p.spec.Class, Output: -1})
		p.hops = append(p.hops, probeHop{node: p.node, port: port, vc: vc})
		return true
	}
	port, ok := routing.EPBStep(n.cfg.Topology, n.dists, p.node, p.dst, p.hist[p.node], canUse)
	if ok {
		p.forward++
		p.node = n.cfg.Topology.Neighbor(p.node, port)
		if p.node == p.dst {
			// Destination reached: admit ejection bandwidth, then the ack
			// retraces the path before data may flow (§4.2).
			if !n.admitOut(n.nodes[p.dst], n.cfg.hostPort(), p.spec, p.d) {
				p.failAll(fmt.Errorf("network: destination host port of node %d cannot admit %v", p.dst, p.spec.Rate))
				return
			}
			p.acking = len(p.hops)
			if p.acking == 0 {
				p.complete()
				return
			}
			n.Schedule(n.now+n.cfg.HopLatency, p.step)
			return
		}
		if p.hist[p.node] == nil {
			p.hist[p.node] = &routing.History{}
		}
		n.Schedule(n.now+n.cfg.HopLatency, p.step)
		return
	}
	// Dead end: backtrack, releasing the hop that led here.
	delete(p.hist, p.node)
	if p.node == p.src {
		p.failAll(fmt.Errorf("network: no minimal path with free resources from %d to %d", p.src, p.dst))
		return
	}
	last := p.hops[len(p.hops)-1]
	p.hops = p.hops[:len(p.hops)-1]
	n.releaseOut(n.nodes[last.node], last.port, p.spec, p.d)
	// Release via the raw wiring: the hop's link may have failed while the
	// probe was elsewhere, and the reservation must come back regardless.
	nb := n.cfg.Topology.Wired(last.node, last.port)
	pp := n.cfg.Topology.WiredPeer(last.node, last.port)
	n.nodes[nb].mems[pp].Release(last.vc)
	p.backs++
	p.node = last.node
	n.Schedule(n.now+n.cfg.HopLatency, p.step)
}

// failAll releases everything the probe holds and reports failure.
func (p *probe) failAll(err error) {
	n := p.n
	for i := len(p.hops) - 1; i >= 0; i-- {
		h := p.hops[i]
		n.releaseOut(n.nodes[h.node], h.port, p.spec, p.d)
		nb := n.cfg.Topology.Wired(h.node, h.port)
		pp := n.cfg.Topology.WiredPeer(h.node, h.port)
		n.nodes[nb].mems[pp].Release(h.vc)
	}
	n.nodes[p.src].mems[n.cfg.hostPort()].Release(p.entryVC)
	n.activeProbes--
	n.m.setupRejected++
	p.done(nil, err)
}

// complete installs the connection along the reserved path. A link on
// the path may have failed while the acknowledgment was retracing it;
// in that case the whole reservation is abandoned, as the real ack would
// never have made it back to the source.
func (p *probe) complete() {
	n := p.n
	for _, h := range p.hops {
		if !n.cfg.Topology.LinkUp(h.node, h.port) {
			// The ejection bandwidth was admitted when the probe reached
			// the destination; give it back along with the hop holds.
			n.releaseOut(n.nodes[p.dst], n.cfg.hostPort(), p.spec, p.d)
			p.failAll(fmt.Errorf("network: link %d.%d failed during establishment", h.node, h.port))
			return
		}
	}
	// The tenant budget may have filled while the probe was in flight;
	// a refusal here abandons the reservation exactly as a failed ack
	// would.
	if !n.tenants.AdmitSession(p.tenant, p.d.alloc) {
		n.releaseOut(n.nodes[p.dst], n.cfg.hostPort(), p.spec, p.d)
		p.failAll(tenantQuotaError(p.tenant, n.tenants))
		return
	}
	conn := &Conn{
		ID: flit.ConnID(len(n.conns)), Src: p.src, Dst: p.dst, Tenant: p.tenant, Spec: p.spec,
		Backtracks: p.backs,
		SetupTime:  n.now - p.started,
		dstSlot:    -1,
	}
	n.installPath(conn, p.entryVC, p.hops, p.d)
	n.conns = append(n.conns, conn)
	n.nodes[p.src].srcConns = append(n.nodes[p.src].srcConns, conn)
	n.activeProbes--
	n.assignTrackerSlot(conn)
	n.m.setupAccepted++
	n.m.setupLatency.Add(float64(conn.SetupTime))
	n.m.setupBacktracks.Add(float64(p.backs))
	p.done(conn, nil)
}
