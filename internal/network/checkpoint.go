package network

import (
	"fmt"
	"math"
	"sort"

	"mmr/internal/admission"
	"mmr/internal/checkpoint"
	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/metrics"
	"mmr/internal/routing"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// checkpoint.go serializes the complete mutable state of a Network and
// restores it into a freshly built one, bit-exactly: a restored fabric
// stepped to cycle M produces the same statistics, metrics, session log
// and flight-recorder contents as the uninterrupted run, for any worker
// count and gating mode (the config hash deliberately excludes both).
//
// What is serialized: the clock, every RNG stream, link up/down state,
// session statistics, the session log, impairments, the expanded fault
// schedule, every connection (records, source state, interface queue),
// best-effort flows, per-router state (VC reservations, buffered flits,
// shadow credits, upstream pointers, admission registers, scheduler
// election + counters, staging lanes, channel mappings, metric shards,
// flight recorders), and the durable-event journal.
//
// What is deliberately NOT serialized, because it is recomputed or
// provably empty at a cycle boundary: routing tables (recomputed from
// link state), VCM status bit vectors (rebuilt by RestoreState/Push),
// per-cycle scheduling scratch (cands/grants/grantVC), staged drop
// credits and claim slots (always empty/-1 between cycles — enforced),
// flit pools (pooling is unobservable), and the idle-skip diagnostic
// counter.

// EncodeState serializes the network's full mutable state. It must be
// called between cycles (never from inside an event or phase) and
// refuses to run while state that cannot round-trip is in flight: an
// active establishment probe, or a pending event that is not in the
// durable journal (anything scheduled via Network.Schedule directly).
func (n *Network) EncodeState() ([]byte, error) {
	payload, _, err := n.encodeStateParts()
	return payload, err
}

// encodeStateParts encodes the payload and reports where the v4 trailer
// begins — payload[:trailerStart] is byte-identical to what a version-3
// writer produced, which the compatibility tests exploit to fabricate
// genuine old-format checkpoints.
func (n *Network) encodeStateParts() ([]byte, int, error) {
	if n.activeProbes > 0 {
		return nil, 0, fmt.Errorf("network: cannot checkpoint with %d establishment probes in flight", n.activeProbes)
	}
	if p := n.events.Pending(); p != len(n.durables) {
		return nil, 0, fmt.Errorf("network: cannot checkpoint: %d pending events but only %d in the durable journal (events scheduled via Schedule hold closures a checkpoint cannot serialize)", p, len(n.durables))
	}
	for _, nd := range n.nodes {
		if len(nd.dropCredits) != 0 {
			return nil, 0, fmt.Errorf("network: cannot checkpoint mid-cycle: node %d has staged drop credits", nd.id)
		}
		for p := range nd.claim {
			if nd.claim[p].vc != -1 {
				return nil, 0, fmt.Errorf("network: cannot checkpoint mid-cycle: node %d has a staged VC claim on port %d", nd.id, p)
			}
		}
	}
	if err := n.quiesce(); err != nil {
		return nil, 0, err
	}

	e := checkpoint.NewEncoder()
	e.I64(n.now)
	encodeRNG(e, n.rng.State())

	tp := n.cfg.Topology
	e.Int(len(tp.Links))
	for _, l := range tp.Links {
		e.Bool(tp.LinkUp(l.A, l.APort))
	}

	m := &n.m
	e.I64(m.cycles)
	e.I64(m.setupAttempts)
	e.I64(m.setupAccepted)
	e.I64(m.setupRejected)
	e.I64(m.setupRetries)
	e.I64(m.closed)
	encodeAcc(e, &m.setupLatency)
	encodeAcc(e, &m.setupBacktracks)
	e.I64(m.faultsInjected)
	e.I64(m.faultsRepaired)
	e.I64(m.faultFlitsLost)
	e.I64(m.connsBroken)
	e.I64(m.connsRestored)
	e.I64(m.connsDegraded)
	e.I64(m.connsLost)
	encodeAcc(e, &m.restoreLatency)

	e.Int(len(n.sessionLog))
	for _, ev := range n.sessionLog {
		e.I64(ev.Cycle)
		e.String(ev.Kind)
		e.I64(int64(ev.Conn))
		e.Int(ev.Node)
		e.Int(ev.Port)
		e.String(ev.Detail)
	}

	impairKeys := make([][2]int, 0, len(n.impair))
	for k := range n.impair {
		impairKeys = append(impairKeys, k)
	}
	sort.Slice(impairKeys, func(i, j int) bool {
		if impairKeys[i][0] != impairKeys[j][0] {
			return impairKeys[i][0] < impairKeys[j][0]
		}
		return impairKeys[i][1] < impairKeys[j][1]
	})
	e.Int(len(impairKeys))
	for _, k := range impairKeys {
		im := n.impair[k]
		e.Int(im.Node)
		e.Int(im.Port)
		e.F64(im.DropProb)
		e.F64(im.CorruptProb)
	}

	e.Int(len(n.faultSchedule))
	for _, ev := range n.faultSchedule {
		e.I64(ev.Cycle)
		e.Int(int(ev.Kind))
		e.Int(ev.Node)
		e.Int(ev.Port)
	}

	e.Int(len(n.conns))
	for _, c := range n.conns {
		e.Int(c.Src)
		e.Int(c.Dst)
		encodeSpec(e, c.Spec)
		e.Int(len(c.Path))
		for _, h := range c.Path {
			e.Int(h.Node)
			e.Int(h.Port)
		}
		e.Int(len(c.VCs))
		for _, r := range c.VCs {
			e.Int(r.Port)
			e.Int(r.VC)
		}
		e.Int(len(c.Nodes))
		for _, nodeID := range c.Nodes {
			e.Int(nodeID)
		}
		e.I64(c.SetupTime)
		e.Int(c.Backtracks)
		e.Int(c.Restores)
		e.Bool(c.Degraded)
		e.Bool(c.open)
		e.Bool(c.closed)
		e.Bool(c.broken)
		e.Bool(c.lost)
		e.I64(c.brokenAt)
		e.I64(c.lastTick)
		e.I64(c.nextDue)
		e.I64(c.nextSeq)
		e.Bool(c.src != nil)
		if c.src != nil {
			if err := encodeConnSource(e, c); err != nil {
				return nil, 0, err
			}
		}
		e.Int(c.niQueue.Len())
		for i := 0; i < c.niQueue.Len(); i++ {
			if err := encodeFlit(e, c.niQueue.At(i)); err != nil {
				return nil, 0, err
			}
		}
	}

	e.I64(int64(n.nextFlowID))
	e.Int(len(n.beFlows))
	for _, bf := range n.beFlows {
		e.I64(int64(bf.id))
		e.Int(bf.src)
		e.Int(bf.dst)
		e.I64(int64(bf.conn))
		switch g := bf.gen.(type) {
		case *traffic.BestEffortSource:
			st := g.ExportState()
			e.U8(0)
			e.F64(st.Rate)
			e.F64(st.Next)
		case *traffic.CBRSource:
			st := g.ExportState()
			e.U8(1)
			e.F64(st.PerCycle)
			e.F64(st.Acc)
		default:
			return nil, 0, fmt.Errorf("network: best-effort flow has unserializable generator %T", bf.gen)
		}
		e.I64(bf.lastTick)
		e.I64(bf.nextDue)
		e.Int(bf.niQueue.Len())
		for i := 0; i < bf.niQueue.Len(); i++ {
			if err := encodeFlit(e, bf.niQueue.At(i)); err != nil {
				return nil, 0, err
			}
		}
	}

	radix := n.cfg.radix()
	for _, nd := range n.nodes {
		encodeRNG(e, nd.rng.State())
		e.I64(nd.pktSeq)
		e.I64(nd.lastRound)

		d := &nd.stats
		e.I64(d.generated)
		e.I64(d.delivered)
		e.I64(d.linkFlits)
		e.I64(d.beGenerated)
		e.I64(d.beDelivered)
		encodeAcc(e, &d.beLatency)
		e.I64(d.flitsDropped)
		e.I64(d.flitsCorrupted)

		tr := d.tracker
		e.Int(tr.NumConns())
		encodeAcc(e, tr.Delay())
		encodeAcc(e, tr.Jitter())
		for i := 0; i < tr.NumConns(); i++ {
			encodeAcc(e, tr.ConnDelay(i))
			encodeAcc(e, tr.ConnJitter(i))
			prev, seen := tr.ConnBaseline(i)
			e.F64(prev)
			e.Bool(seen)
		}

		for p := 0; p < radix; p++ {
			mem := nd.mems[p]

			inUse := 0
			for vc := 0; vc < n.cfg.VCs; vc++ {
				if mem.State(vc).InUse {
					inUse++
				}
			}
			e.Int(inUse)
			for vc := 0; vc < n.cfg.VCs; vc++ {
				st := mem.State(vc)
				if !st.InUse {
					continue
				}
				e.Int(vc)
				e.I64(int64(st.Conn))
				e.U8(uint8(st.Class))
				e.Int(st.Allocated)
				e.Int(st.Peak)
				e.Int(mem.Serviced(vc))
				e.Int(st.BasePriority)
				e.F64(st.Bias)
				e.F64(st.InterArrival)
				e.Int(st.Output)
			}

			buffered := 0
			for vc := 0; vc < n.cfg.VCs; vc++ {
				if mem.Len(vc) > 0 {
					buffered++
				}
			}
			e.Int(buffered)
			for vc := 0; vc < n.cfg.VCs; vc++ {
				ln := mem.Len(vc)
				if ln == 0 {
					continue
				}
				e.Int(vc)
				e.Int(ln)
				for i := 0; i < ln; i++ {
					if err := encodeFlit(e, mem.FlitAt(vc, i)); err != nil {
						return nil, 0, err
					}
				}
			}

			spent := 0
			for vc := 0; vc < n.cfg.VCs; vc++ {
				if nd.shadow[p].Available(vc) != n.cfg.Depth {
					spent++
				}
			}
			e.Int(spent)
			for vc := 0; vc < n.cfg.VCs; vc++ {
				if avail := nd.shadow[p].Available(vc); avail != n.cfg.Depth {
					e.Int(vc)
					e.Int(avail)
				}
			}

			ups := 0
			for vc := 0; vc < n.cfg.VCs; vc++ {
				if nd.upstream[p][vc] != noUpstream {
					ups++
				}
			}
			e.Int(ups)
			for vc := 0; vc < n.cfg.VCs; vc++ {
				up := nd.upstream[p][vc]
				if up == noUpstream {
					continue
				}
				e.Int(vc)
				e.Int(int(up.node))
				e.Int(int(up.port))
				e.Int(int(up.vc))
			}

			a := nd.alloc[p]
			e.Int(a.Guaranteed())
			e.Int(a.PeakTotal())
			e.Int(a.Connections())

			excess, lc := nd.links[p].ExportState()
			e.Int(excess)
			e.I64(lc.Nominated)
			e.I64(lc.CreditStalled)
			e.I64(lc.RoundExhausted)
			e.I64(lc.BiasBoosted)

			pend := nd.pipes[p].pending()
			e.Int(len(pend))
			for _, lf := range pend {
				e.I64(lf.arriveAt)
				e.Int(lf.vc)
				if err := encodeFlit(e, lf.f); err != nil {
					return nil, 0, err
				}
			}

			cpend := nd.credOut[p].pending()
			e.Int(len(cpend))
			for _, cm := range cpend {
				e.I64(cm.arriveAt)
				e.Int(int(cm.to.node))
				e.Int(int(cm.to.port))
				e.Int(int(cm.to.vc))
			}
		}

		e.Int(nd.cmap.Mapped())
		nd.cmap.ForEach(func(in, out routing.VCRef) {
			e.Int(in.Port)
			e.Int(in.VC)
			e.Int(out.Port)
			e.Int(out.VC)
		})

		counters, gauges, histBuf, histCount, histSum := nd.ms.ExportState()
		e.Int(len(counters))
		for _, v := range counters {
			e.I64(v)
		}
		e.Int(len(gauges))
		for _, v := range gauges {
			e.F64(v)
		}
		e.Int(len(histBuf))
		for _, v := range histBuf {
			e.I64(v)
		}
		e.Int(len(histCount))
		for _, v := range histCount {
			e.I64(v)
		}
		e.Int(len(histSum))
		for _, v := range histSum {
			e.F64(v)
		}

		evs := nd.rec.Events(nil)
		e.Int(len(evs))
		for _, ev := range evs {
			e.I64(ev.Cycle)
			e.U16(ev.Code)
			e.Int(int(ev.Node))
			e.I64(int64(ev.A))
			e.I64(int64(ev.B))
			e.I64(ev.Aux)
		}
		e.I64(nd.rec.Total())
	}

	e.U64(n.events.Fired())

	seqs := make([]uint64, 0, len(n.durables))
	for s := range n.durables {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	e.Int(len(seqs))
	for _, s := range seqs {
		ev := n.durables[s]
		e.I64(ev.at)
		e.U8(uint8(ev.kind))
		e.I64(ev.a)
		e.I64(ev.b)
	}

	ids := make([]int64, 0, len(n.openRetries))
	for id := range n.openRetries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Int(len(ids))
	for _, id := range ids {
		or := n.openRetries[id]
		e.I64(id)
		e.Int(or.src)
		e.Int(or.dst)
		encodeSpec(e, or.spec)
		e.Int(or.attempt)
	}
	e.I64(n.nextOpenID)

	// --- version 4 trailer: tenant admission state and re-promotion
	// bookkeeping. Strictly appended so payload[:trailerStart] remains a
	// valid version-3 payload. Tenant *usage* and the degradedLive
	// counter are deliberately not serialized: both are recomputed from
	// the restored connections, so they can never disagree with them.
	trailerStart := e.Len()
	for _, c := range n.conns {
		e.String(c.Tenant)
	}
	for _, id := range ids {
		e.String(n.openRetries[id].tenant)
	}
	qnames := make([]string, 0)
	for _, name := range n.tenants.Names() {
		if _, ok := n.tenants.Quota(name); ok {
			qnames = append(qnames, name)
		}
	}
	e.Int(len(qnames))
	for _, name := range qnames {
		q, _ := n.tenants.Quota(name)
		e.String(name)
		e.Int(q.MaxSessions)
		e.Int(q.MaxGuaranteed)
	}
	e.I64(m.connsPromoted)
	e.I64(n.promoteGen)

	return e.Bytes(), trailerStart, nil
}

// RestoreState deserializes a payload produced by EncodeState into n,
// which must be freshly built by New with an equivalent configuration
// (same geometry, seed and policies; worker count and gating are free).
// Do not call ApplyPlan or schedule anything before restoring — the
// checkpoint carries the fault schedule and every pending event. After
// a successful restore the global resource invariants are audited.
// The payload is assumed to be current-format; RestoreStateVersion
// decodes older formats.
func (n *Network) RestoreState(payload []byte) error {
	return n.RestoreStateVersion(payload, checkpoint.Version)
}

// RestoreStateVersion is RestoreState for a payload written at an
// explicit format version (as reported by the envelope). Version 3
// payloads predate tenant quotas and re-promotion: they restore with
// every session on the default tenant, no quotas, and a zero promotion
// generation, and their degraded connections — which the old lifecycle
// left with the broken flag still set — are normalized to the
// Degraded-implies-not-broken invariant the promotion subsystem
// depends on.
func (n *Network) RestoreStateVersion(payload []byte, ver uint32) error {
	if ver < checkpoint.MinVersion || ver > checkpoint.Version {
		return fmt.Errorf("network: cannot restore format version %d (decodable range %d..%d)", ver, checkpoint.MinVersion, checkpoint.Version)
	}
	if n.now != 0 || len(n.conns) != 0 || len(n.beFlows) != 0 ||
		n.events.Pending() != 0 || len(n.sessionLog) != 0 || len(n.faultSchedule) != 0 {
		return fmt.Errorf("network: restore target must be a freshly built network")
	}
	d := checkpoint.NewDecoder(payload)
	n.now = d.I64()
	masterRNG := decodeRNG(d)

	tp := n.cfg.Topology
	if got := d.Int(); d.Err() == nil && got != len(tp.Links) {
		return fmt.Errorf("network: checkpoint has %d links, topology has %d", got, len(tp.Links))
	}
	for _, l := range tp.Links {
		up := d.Bool()
		if d.Err() == nil && tp.LinkUp(l.A, l.APort) != up {
			tp.SetLinkUp(l.A, l.APort, up)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	n.dists.Recompute(tp)
	n.ud.Rebuild()

	m := &n.m
	m.cycles = d.I64()
	m.setupAttempts = d.I64()
	m.setupAccepted = d.I64()
	m.setupRejected = d.I64()
	m.setupRetries = d.I64()
	m.closed = d.I64()
	decodeAcc(d, &m.setupLatency)
	decodeAcc(d, &m.setupBacktracks)
	m.faultsInjected = d.I64()
	m.faultsRepaired = d.I64()
	m.faultFlitsLost = d.I64()
	m.connsBroken = d.I64()
	m.connsRestored = d.I64()
	m.connsDegraded = d.I64()
	m.connsLost = d.I64()
	decodeAcc(d, &m.restoreLatency)

	nLog := d.Int()
	if err := checkCount(d, nLog, "session log"); err != nil {
		return err
	}
	for i := 0; i < nLog; i++ {
		var ev SessionEvent
		ev.Cycle = d.I64()
		ev.Kind = d.String()
		ev.Conn = flit.ConnID(d.I64())
		ev.Node = d.Int()
		ev.Port = d.Int()
		ev.Detail = d.String()
		n.sessionLog = append(n.sessionLog, ev)
	}

	nImp := d.Int()
	if err := checkCount(d, nImp, "impairments"); err != nil {
		return err
	}
	for i := 0; i < nImp; i++ {
		var im faults.Impairment
		im.Node = d.Int()
		im.Port = d.Int()
		im.DropProb = d.F64()
		im.CorruptProb = d.F64()
		if d.Err() == nil {
			n.impair[[2]int{im.Node, im.Port}] = im
		}
	}

	nFS := d.Int()
	if err := checkCount(d, nFS, "fault schedule"); err != nil {
		return err
	}
	for i := 0; i < nFS; i++ {
		var ev faults.Event
		ev.Cycle = d.I64()
		ev.Kind = faults.Kind(d.Int())
		ev.Node = d.Int()
		ev.Port = d.Int()
		n.faultSchedule = append(n.faultSchedule, ev)
	}

	nc := d.Int()
	if err := checkCount(d, nc, "connections"); err != nil {
		return err
	}
	for i := 0; i < nc; i++ {
		c := &Conn{ID: flit.ConnID(i), dstSlot: -1}
		c.Src = d.Int()
		c.Dst = d.Int()
		c.Spec = decodeSpec(d)
		if err := d.Err(); err != nil {
			return err
		}
		if c.Src < 0 || c.Src >= len(n.nodes) || c.Dst < 0 || c.Dst >= len(n.nodes) {
			return fmt.Errorf("network: checkpoint connection %d has endpoints (%d,%d) outside the topology", i, c.Src, c.Dst)
		}
		np := d.Int()
		if err := checkCount(d, np, "path hops"); err != nil {
			return err
		}
		for j := 0; j < np; j++ {
			c.Path = append(c.Path, routing.PathHop{Node: d.Int(), Port: d.Int()})
		}
		nv := d.Int()
		if err := checkCount(d, nv, "path VCs"); err != nil {
			return err
		}
		for j := 0; j < nv; j++ {
			c.VCs = append(c.VCs, routing.VCRef{Port: d.Int(), VC: d.Int()})
		}
		nn := d.Int()
		if err := checkCount(d, nn, "path nodes"); err != nil {
			return err
		}
		for j := 0; j < nn; j++ {
			c.Nodes = append(c.Nodes, d.Int())
		}
		c.SetupTime = d.I64()
		c.Backtracks = d.Int()
		c.Restores = d.Int()
		c.Degraded = d.Bool()
		c.open = d.Bool()
		c.closed = d.Bool()
		c.broken = d.Bool()
		c.lost = d.Bool()
		c.brokenAt = d.I64()
		c.lastTick = d.I64()
		c.nextDue = d.I64()
		c.nextSeq = d.I64()
		if d.Bool() {
			// Reconstruct the source against the owning node's RNG, then
			// overwrite its mutable state; no constructor here draws
			// randomness, so the streams stay aligned until the per-node
			// RNG states are restored below.
			if c.Spec.Class == flit.ClassVBR {
				s := traffic.NewVBRSource(n.nodes[c.Src].rng, n.cfg.Link, c.Spec.Rate, c.Spec.PeakRate, traffic.DefaultGoP())
				s.RestoreState(decodeVBRState(d))
				c.src = s
			} else {
				s := traffic.NewCBRSource(n.cfg.Link, c.Spec.Rate, 0)
				s.RestoreState(decodeCBRState(d))
				c.src = s
			}
		}
		nq := d.Int()
		if err := checkCount(d, nq, "interface queue"); err != nil {
			return err
		}
		for j := 0; j < nq; j++ {
			f := decodeFlit(d, n.nodes[c.Src])
			if f != nil {
				c.niQueue.Push(f)
			}
		}
		n.conns = append(n.conns, c)
		// Terminal connections (closed, degraded, lost) are pruned from
		// the per-node injector lists on the live fabric; mirror that here
		// so the restored scan lists — and therefore per-cycle cost —
		// match the fabric that wrote the checkpoint.
		if !c.terminal() {
			n.nodes[c.Src].srcConns = append(n.nodes[c.Src].srcConns, c)
		}
		// Trackers grow only at the ejecting node. Replaying connections
		// in ID order reproduces the per-destination slot assignment the
		// live admission path made when each connection was accepted.
		n.assignTrackerSlot(c)
	}

	n.nextFlowID = FlowID(d.I64())
	nbf := d.Int()
	if err := checkCount(d, nbf, "best-effort flows"); err != nil {
		return err
	}
	for i := 0; i < nbf; i++ {
		bf := &beFlow{}
		bf.id = FlowID(d.I64())
		bf.src = d.Int()
		bf.dst = d.Int()
		bf.conn = flit.ConnID(d.I64())
		tag := d.U8()
		if err := d.Err(); err != nil {
			return err
		}
		if bf.src < 0 || bf.src >= len(n.nodes) || bf.dst < 0 || bf.dst >= len(n.nodes) {
			return fmt.Errorf("network: checkpoint flow %d has endpoints (%d,%d) outside the topology", i, bf.src, bf.dst)
		}
		if bf.conn != flit.InvalidConn && (bf.conn < 0 || int(bf.conn) >= len(n.conns)) {
			return fmt.Errorf("network: checkpoint flow %d claims unknown owner connection %d", i, bf.conn)
		}
		switch tag {
		case 0:
			// The constructor draws one inter-arrival from the node RNG;
			// the draw is undone when node RNG states are restored below,
			// and the state overwrite reinstates the true next arrival.
			s := traffic.NewBestEffortSource(n.nodes[bf.src].rng, 1)
			s.RestoreState(traffic.BestEffortState{Rate: d.F64(), Next: d.F64()})
			bf.gen = s
		case 1:
			s := traffic.NewCBRSource(n.cfg.Link, 0, 0)
			s.RestoreState(traffic.CBRState{PerCycle: d.F64(), Acc: d.F64()})
			bf.gen = s
		default:
			return fmt.Errorf("network: checkpoint flow %d has unknown generator tag %d", i, tag)
		}
		bf.lastTick = d.I64()
		bf.nextDue = d.I64()
		nq := d.Int()
		if err := checkCount(d, nq, "flow interface queue"); err != nil {
			return err
		}
		for j := 0; j < nq; j++ {
			f := decodeFlit(d, n.nodes[bf.src])
			if f != nil {
				bf.niQueue.Push(f)
			}
		}
		n.beFlows = append(n.beFlows, bf)
		n.nodes[bf.src].beSrc = append(n.nodes[bf.src].beSrc, bf)
	}

	radix := n.cfg.radix()
	for _, nd := range n.nodes {
		nd.rng.Restore(decodeRNG(d))
		nd.pktSeq = d.I64()
		nd.lastRound = d.I64()

		ds := &nd.stats
		ds.generated = d.I64()
		ds.delivered = d.I64()
		ds.linkFlits = d.I64()
		ds.beGenerated = d.I64()
		ds.beDelivered = d.I64()
		decodeAcc(d, &ds.beLatency)
		ds.flitsDropped = d.I64()
		ds.flitsCorrupted = d.I64()

		tr := ds.tracker
		tn := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if tn != tr.NumConns() {
			return fmt.Errorf("network: checkpoint tracker on node %d covers %d connections, want %d", nd.id, tn, tr.NumConns())
		}
		decodeAcc(d, tr.Delay())
		decodeAcc(d, tr.Jitter())
		for i := 0; i < tn; i++ {
			decodeAcc(d, tr.ConnDelay(i))
			decodeAcc(d, tr.ConnJitter(i))
			prev := d.F64()
			seen := d.Bool()
			tr.RestoreBaseline(i, prev, seen)
		}

		for p := 0; p < radix; p++ {
			mem := nd.mems[p]

			inUse := d.Int()
			if err := checkCount(d, inUse, "reserved VCs"); err != nil {
				return err
			}
			for i := 0; i < inUse; i++ {
				vc := d.Int()
				if err := checkVC(d, n, vc); err != nil {
					return err
				}
				st := vcm.VCState{}
				st.Conn = flit.ConnID(d.I64())
				st.Class = flit.Class(d.U8())
				st.Allocated = d.Int()
				st.Peak = d.Int()
				serviced := d.Int()
				st.BasePriority = d.Int()
				st.Bias = d.F64()
				st.InterArrival = d.F64()
				st.Output = d.Int()
				st.InUse = true
				mem.RestoreState(vc, st)
				mem.SetServiced(vc, serviced)
			}

			buffered := d.Int()
			if err := checkCount(d, buffered, "buffered VCs"); err != nil {
				return err
			}
			for i := 0; i < buffered; i++ {
				vc := d.Int()
				ln := d.Int()
				if err := checkVC(d, n, vc); err != nil {
					return err
				}
				if ln < 0 || ln > n.cfg.Depth {
					return fmt.Errorf("network: checkpoint buffers %d flits in a VC of depth %d", ln, n.cfg.Depth)
				}
				for j := 0; j < ln; j++ {
					f := decodeFlit(d, nd)
					if f != nil && !mem.Push(vc, f) {
						return fmt.Errorf("network: checkpoint overflows VC %d on node %d port %d", vc, nd.id, p)
					}
				}
			}

			spent := d.Int()
			if err := checkCount(d, spent, "shadow credits"); err != nil {
				return err
			}
			for i := 0; i < spent; i++ {
				vc := d.Int()
				avail := d.Int()
				if err := checkVC(d, n, vc); err != nil {
					return err
				}
				if avail < 0 || avail > n.cfg.Depth {
					return fmt.Errorf("network: checkpoint credit count %d outside [0,%d]", avail, n.cfg.Depth)
				}
				nd.shadow[p].SetAvailable(vc, avail)
			}

			ups := d.Int()
			if err := checkCount(d, ups, "upstream refs"); err != nil {
				return err
			}
			for i := 0; i < ups; i++ {
				vc := d.Int()
				if err := checkVC(d, n, vc); err != nil {
					return err
				}
				nd.upstream[p][vc] = upRef{node: int32(d.Int()), port: int16(d.Int()), vc: int16(d.Int())}
			}

			g := d.Int()
			pk := d.Int()
			cns := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			nd.alloc[p].RestoreState(g, pk, cns)

			excess := d.Int()
			lc := sched.LinkCounters{
				Nominated:      d.I64(),
				CreditStalled:  d.I64(),
				RoundExhausted: d.I64(),
				BiasBoosted:    d.I64(),
			}
			nd.links[p].RestoreState(excess, lc)

			nPend := d.Int()
			if err := checkCount(d, nPend, "pipe entries"); err != nil {
				return err
			}
			for i := 0; i < nPend; i++ {
				at := d.I64()
				vc := d.Int()
				f := decodeFlit(d, nd)
				if f != nil {
					nd.pipes[p].push(linkFlit{arriveAt: at, vc: vc, f: f})
				}
			}

			nCred := d.Int()
			if err := checkCount(d, nCred, "credit entries"); err != nil {
				return err
			}
			for i := 0; i < nCred; i++ {
				at := d.I64()
				to := upRef{node: int32(d.Int()), port: int16(d.Int()), vc: int16(d.Int())}
				if d.Err() == nil {
					nd.credOut[p].push(creditMsg{arriveAt: at, to: to})
				}
			}
		}

		nMap := d.Int()
		if err := checkCount(d, nMap, "channel mappings"); err != nil {
			return err
		}
		for i := 0; i < nMap; i++ {
			in := routing.VCRef{Port: d.Int(), VC: d.Int()}
			out := routing.VCRef{Port: d.Int(), VC: d.Int()}
			if err := d.Err(); err != nil {
				return err
			}
			if err := nd.cmap.Map(in, out); err != nil {
				return fmt.Errorf("network: checkpoint channel map on node %d: %w", nd.id, err)
			}
		}

		counters := decodeI64s(d)
		gauges := decodeF64s(d)
		histBuf := decodeI64s(d)
		histCount := decodeI64s(d)
		histSum := decodeF64s(d)
		if err := d.Err(); err != nil {
			return err
		}
		if err := nd.ms.RestoreState(counters, gauges, histBuf, histCount, histSum); err != nil {
			return err
		}

		nEv := d.Int()
		if err := checkCount(d, nEv, "flight events"); err != nil {
			return err
		}
		nd.rec.Reset()
		for i := 0; i < nEv; i++ {
			var ev metrics.Event
			ev.Cycle = d.I64()
			ev.Code = d.U16()
			ev.Node = int16(d.Int())
			ev.A = int32(d.I64())
			ev.B = int32(d.I64())
			ev.Aux = d.I64()
			if d.Err() == nil {
				nd.rec.Record(ev)
			}
		}
		nd.rec.SetTotal(d.I64())
	}

	fired := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	engineNow := n.now - 1
	if engineNow < 0 {
		engineNow = 0
	}
	n.events.SetClock(sim.Time(engineNow), fired)

	nDur := d.Int()
	if err := checkCount(d, nDur, "durable events"); err != nil {
		return err
	}
	for i := 0; i < nDur; i++ {
		at := d.I64()
		kind := durableKind(d.U8())
		a := d.I64()
		b := d.I64()
		if err := d.Err(); err != nil {
			return err
		}
		n.scheduleDurable(at, kind, a, b)
	}

	nOR := d.Int()
	if err := checkCount(d, nOR, "open retries"); err != nil {
		return err
	}
	orIDs := make([]int64, 0, nOR)
	for i := 0; i < nOR; i++ {
		id := d.I64()
		or := &openRetry{}
		or.src = d.Int()
		or.dst = d.Int()
		or.spec = decodeSpec(d)
		or.attempt = d.Int()
		if d.Err() == nil {
			n.openRetries[id] = or
			orIDs = append(orIDs, id)
		}
	}
	n.nextOpenID = d.I64()

	if ver >= 4 {
		// v4 trailer: tenant owners (conn order, then open-retry order as
		// written — ascending ID), quota table, promotion bookkeeping.
		for _, c := range n.conns {
			c.Tenant = d.String()
		}
		for _, id := range orIDs {
			n.openRetries[id].tenant = d.String()
		}
		nq := d.Int()
		if err := checkCount(d, nq, "tenant quotas"); err != nil {
			return err
		}
		for i := 0; i < nq; i++ {
			name := d.String()
			q := admission.TenantQuota{MaxSessions: d.Int(), MaxGuaranteed: d.Int()}
			if d.Err() == nil {
				n.tenants.SetQuota(name, q)
			}
		}
		m.connsPromoted = d.I64()
		n.promoteGen = d.I64()
	} else {
		// v3: the old fault lifecycle left degraded connections with the
		// broken flag still set; normalize to the current invariant
		// (Degraded implies !broken; only lost keeps broken) so promotion
		// cannot resurrect a half-broken connection.
		for _, c := range n.conns {
			if c.Degraded && !c.lost {
				c.broken = false
			}
		}
	}

	if err := d.Err(); err != nil {
		return err
	}
	if r := d.Remaining(); r != 0 {
		return fmt.Errorf("network: checkpoint has %d trailing bytes", r)
	}
	n.rng.Restore(masterRNG)

	// Telemetry tenant slots are observability state, not checkpoint
	// payload: re-derive them in conn (= ID) order once tenant owners are
	// known (the v4 trailer above fills c.Tenant; v3 payloads predate
	// tenants, so everything lands in the default slot). This must run
	// after the trailer — assignTrackerSlot already derived slots during
	// the conn loop, but at that point every owner still read as default.
	for _, c := range n.conns {
		c.tenantSlot = n.tenantSlotFor(c.Tenant)
	}

	// Derived admission state: recomputed from the restored connections
	// (for either version) so counters and charges can never drift from
	// the sessions they describe. Guaranteed bandwidth is charged while a
	// session holds (or is awaiting restoration of) a guaranteed path;
	// a degraded session holds only its session slot.
	n.degradedLive = 0
	n.tenants.ResetUsage()
	for _, c := range n.conns {
		if c.Degraded && !c.closed {
			n.degradedLive++
		}
		if c.closed || c.lost {
			continue
		}
		g := 0
		if c.open || c.broken {
			g = n.demandFor(c.Spec).alloc
		}
		n.tenants.RestoreSession(c.Tenant, g)
	}

	if err := n.CheckInvariants(); err != nil {
		return fmt.Errorf("network: restored state fails the resource audit: %w", err)
	}
	return nil
}

// quiesce applies every lazy catch-up the gated datapath has deferred —
// round-boundary resets for idle routers, source ticks across elided
// cycles — so the encoded state is canonical: a gated and an ungated
// run of the same fabric checkpoint to identical bytes. Each catch-up
// is exactly what the node would perform on its next active cycle, so
// quiescing is unobservable to the continuing simulation. The forecast
// contract guarantees elided cycles carry no emissions and no RNG
// draws; a tick that produces flits here indicates a forecast bug and
// aborts the checkpoint.
func (n *Network) quiesce() error {
	if n.now == 0 {
		return nil
	}
	t := n.now - 1
	round := t / int64(n.cfg.K*n.cfg.VCs)
	for _, nd := range n.nodes {
		if nd.lastRound != round {
			nd.lastRound = round
			for _, ls := range nd.links {
				ls.OnRoundBoundary()
			}
		}
	}
	for _, c := range n.conns {
		if !c.open || c.src == nil {
			continue
		}
		for ct := c.lastTick + 1; ct <= t; ct++ {
			if k := c.src.Tick(ct); k != 0 {
				return fmt.Errorf("network: connection %d was due %d flits during elided cycle %d", c.ID, k, ct)
			}
		}
		c.lastTick = t
	}
	for i, bf := range n.beFlows {
		for ct := bf.lastTick + 1; ct <= t; ct++ {
			if k := bf.gen.Tick(ct); k != 0 {
				return fmt.Errorf("network: best-effort flow %d was due %d packets during elided cycle %d", i, k, ct)
			}
		}
		bf.lastTick = t
	}
	return nil
}

// SaveCheckpoint atomically writes the fabric state to path, sealed in
// the versioned, checksummed checkpoint envelope under this network's
// configuration hash.
func (n *Network) SaveCheckpoint(path string) error {
	payload, err := n.EncodeState()
	if err != nil {
		return err
	}
	return checkpoint.WriteFile(path, n.ConfigHash(), payload)
}

// RestoreCheckpoint builds a fresh network for cfg and restores the
// checkpoint at path into it. cfg must describe the same fabric the
// checkpoint was taken from (enforced via the envelope's config hash);
// Workers and NoIdleSkip are free to differ — restores are bit-exact
// across both.
func RestoreCheckpoint(cfg Config, path string) (*Network, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	payload, ver, err := checkpoint.ReadFile(path, n.ConfigHash())
	if err != nil {
		return nil, err
	}
	if err := n.RestoreStateVersion(payload, ver); err != nil {
		return nil, err
	}
	return n, nil
}

// ConfigHash returns the FNV-1a hash of everything about the
// configuration that determines simulation behaviour: topology wiring,
// link geometry, buffering, scheduling scheme and policies, and the
// seed. Workers, Shards, and NoIdleSkip are deliberately excluded —
// they select an execution strategy, not a simulation, and checkpoints
// restore bit-exactly across them.
func (n *Network) ConfigHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	cfg := &n.cfg
	tp := cfg.Topology
	mix(uint64(tp.Nodes))
	mix(uint64(tp.Ports))
	mix(uint64(len(tp.Links)))
	for _, l := range tp.Links {
		mix(uint64(l.A))
		mix(uint64(l.APort))
		mix(uint64(l.B))
		mix(uint64(l.BPort))
	}
	mix(math.Float64bits(float64(cfg.Link.Bandwidth)))
	mix(uint64(cfg.Link.FlitBits))
	mix(uint64(cfg.Link.PhitBits))
	mix(uint64(cfg.VCs))
	mix(uint64(cfg.Depth))
	mix(uint64(cfg.K))
	mix(uint64(cfg.MaxCandidates))
	mixStr(fmt.Sprintf("%T", cfg.Scheme))
	mix(uint64(cfg.ArbiterIters))
	mix(uint64(cfg.LinkDelay))
	mix(uint64(cfg.HopLatency))
	mix(math.Float64bits(cfg.Concurrency))
	mixBool := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	mixBool(cfg.EnforceAllocations)
	mix(cfg.Seed)
	mixBool(cfg.Fault.Restore)
	mix(uint64(cfg.Fault.MaxRetries))
	mix(uint64(cfg.Fault.RetryBackoff))
	mixBool(cfg.Fault.Degrade)
	mixBool(cfg.Fault.Paranoid)
	// Route changes establishment decisions, so it is part of the
	// simulated configuration. Mixed only when non-minimal: every
	// checkpoint written before the mode existed hashes as RouteMinimal.
	if cfg.Route != routing.RouteMinimal {
		mixStr("route")
		mix(uint64(cfg.Route))
	}
	// Promote changes which establishments run, so it is simulated
	// configuration too. Mixed only when disabled: it defaults on, and
	// every checkpoint written before the knob existed hashes as enabled.
	if !cfg.Fault.Promote {
		mixStr("nopromote")
	}
	return h
}

// QuiesceProbes steps the fabric until no establishment probe is in
// flight and every pending event sits in the durable journal, bounded by
// limit cycles — the preamble a live checkpoint needs when sessions are
// still being set up. Probes resolve in bounded time (each advances or
// backtracks every HopLatency cycles and the search space is finite), so
// a limit of a few HopLatency × fabric-diameter × probes cycles is ample.
func (n *Network) QuiesceProbes(limit int64) error {
	deadline := n.now + limit
	for n.activeProbes > 0 || n.events.Pending() != len(n.durables) {
		if n.now >= deadline {
			return fmt.Errorf("network: %d probes and %d non-durable events still in flight after %d quiesce cycles",
				n.activeProbes, n.events.Pending()-len(n.durables), limit)
		}
		n.Step()
	}
	return nil
}

// --- encoding helpers ---

func encodeRNG(e *checkpoint.Encoder, st sim.RNGState) {
	e.U64(st.S0)
	e.U64(st.S1)
	e.F64(st.Gauss)
	e.Bool(st.HaveGauss)
}

func decodeRNG(d *checkpoint.Decoder) sim.RNGState {
	return sim.RNGState{S0: d.U64(), S1: d.U64(), Gauss: d.F64(), HaveGauss: d.Bool()}
}

func encodeAcc(e *checkpoint.Encoder, a *stats.Accumulator) {
	st := a.State()
	e.I64(st.N)
	e.F64(st.Mean)
	e.F64(st.M2)
	e.F64(st.Min)
	e.F64(st.Max)
}

func decodeAcc(d *checkpoint.Decoder, a *stats.Accumulator) {
	a.Restore(stats.AccumulatorState{N: d.I64(), Mean: d.F64(), M2: d.F64(), Min: d.F64(), Max: d.F64()})
}

func encodeSpec(e *checkpoint.Encoder, s traffic.ConnSpec) {
	e.U8(uint8(s.Class))
	e.F64(float64(s.Rate))
	e.F64(float64(s.PeakRate))
	e.Int(s.In)
	e.Int(s.Out)
	e.Int(s.Priority)
}

func decodeSpec(d *checkpoint.Decoder) traffic.ConnSpec {
	return traffic.ConnSpec{
		Class:    flit.Class(d.U8()),
		Rate:     traffic.Rate(d.F64()),
		PeakRate: traffic.Rate(d.F64()),
		In:       d.Int(),
		Out:      d.Int(),
		Priority: d.Int(),
	}
}

// encodeConnSource serializes a connection's traffic source state; the
// concrete type is implied by the connection class.
func encodeConnSource(e *checkpoint.Encoder, c *Conn) error {
	switch s := c.src.(type) {
	case *traffic.VBRSource:
		st := s.ExportState()
		e.Int(st.FrameIdx)
		e.F64(st.NextFrame)
		e.F64(st.Backlog)
		e.F64(st.Acc)
		e.F64(st.PerCycle)
	case *traffic.CBRSource:
		st := s.ExportState()
		e.F64(st.PerCycle)
		e.F64(st.Acc)
	default:
		return fmt.Errorf("network: connection %d has unserializable source %T", c.ID, c.src)
	}
	return nil
}

func decodeVBRState(d *checkpoint.Decoder) traffic.VBRState {
	return traffic.VBRState{
		FrameIdx:  d.Int(),
		NextFrame: d.F64(),
		Backlog:   d.F64(),
		Acc:       d.F64(),
		PerCycle:  d.F64(),
	}
}

func decodeCBRState(d *checkpoint.Decoder) traffic.CBRState {
	return traffic.CBRState{PerCycle: d.F64(), Acc: d.F64()}
}

// encodeFlit serializes one flit. Probe-carrying packets never appear
// in the network datapath (establishment is synchronous); hitting one
// is a checkpoint bug, not a user error.
func encodeFlit(e *checkpoint.Encoder, f *flit.Flit) error {
	e.I64(int64(f.Conn))
	e.U8(uint8(f.Class))
	e.U8(uint8(f.Type))
	e.I64(f.Seq)
	e.I64(f.CreatedAt)
	e.I64(f.ReadyAt)
	e.I64(f.HeadAt)
	e.Int(int(f.SrcPort))
	e.Int(int(f.DstPort))
	e.I64(int64(f.Src))
	e.I64(int64(f.Dst))
	e.Bool(f.Packet != nil)
	if f.Packet != nil {
		pk := f.Packet
		if pk.Probe != nil {
			return fmt.Errorf("network: cannot checkpoint a probe-carrying packet (packet %d)", pk.ID)
		}
		e.I64(pk.ID)
		e.U8(uint8(pk.Kind))
		e.I64(int64(pk.Src))
		e.I64(int64(pk.Dst))
		e.Int(pk.Size)
		e.I64(pk.CreatedAt)
		e.Bool(pk.WentDown)
	}
	return nil
}

// decodeFlit materializes one flit from nd's pool (the node that will
// own it after restore). Returns nil once the decoder has errored.
func decodeFlit(d *checkpoint.Decoder, nd *node) *flit.Flit {
	f := nd.pool.Get()
	f.Conn = flit.ConnID(d.I64())
	f.Class = flit.Class(d.U8())
	f.Type = flit.Type(d.U8())
	f.Seq = d.I64()
	f.CreatedAt = d.I64()
	f.ReadyAt = d.I64()
	f.HeadAt = d.I64()
	f.SrcPort = int16(d.Int())
	f.DstPort = int16(d.Int())
	f.Src = int32(d.I64())
	f.Dst = int32(d.I64())
	if d.Bool() {
		pk := nd.pool.GetPacket()
		pk.ID = d.I64()
		pk.Kind = flit.PacketKind(d.U8())
		pk.Src = int32(d.I64())
		pk.Dst = int32(d.I64())
		pk.Size = d.Int()
		pk.CreatedAt = d.I64()
		pk.WentDown = d.Bool()
		f.Packet = pk
	}
	if d.Err() != nil {
		nd.pool.Put(f)
		return nil
	}
	return f
}

func decodeI64s(d *checkpoint.Decoder) []int64 {
	n := d.Int()
	if d.Err() != nil || n < 0 || n > d.Remaining()/8 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

func decodeF64s(d *checkpoint.Decoder) []float64 {
	n := d.Int()
	if d.Err() != nil || n < 0 || n > d.Remaining()/8 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// checkCount validates a decoded element count: the decoder must still
// be healthy and the count must be non-negative and small enough that
// the remaining payload could plausibly hold it (every element is at
// least one byte), so a corrupted count cannot drive a giant loop.
func checkCount(d *checkpoint.Decoder, n int, what string) error {
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.Remaining() {
		return fmt.Errorf("network: checkpoint %s count %d is implausible (%d bytes remain)", what, n, d.Remaining())
	}
	return nil
}

// checkVC validates a decoded VC index.
func checkVC(d *checkpoint.Decoder, n *Network, vc int) error {
	if err := d.Err(); err != nil {
		return err
	}
	if vc < 0 || vc >= n.cfg.VCs {
		return fmt.Errorf("network: checkpoint names VC %d outside [0,%d)", vc, n.cfg.VCs)
	}
	return nil
}
