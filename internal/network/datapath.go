package network

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/metrics"
	"mmr/internal/routing"
	"mmr/internal/sched"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// The flit cycle is organized as three phases run by the shard-resident
// executor (workers.go): each worker sweeps its own shard block through
// deliver and schedule (fused — no synchronization between them), then
// crosses the cycle's single sequence point, then commits. Every
// cross-node effect moves through a single-writer staging lane
// (lanes.go) or a single-writer claim slot consumed a sequence point
// later, so the simulation is bit-identical for any worker or shard
// count — including Workers=1, which runs the same per-shard passes
// inline.
//
// Why deliver and schedule can fuse: the only cross-node reads in the
// schedule phase are VC reservation state (FindFree's InUse scan,
// routePackets' FreeVCs count), and delivery mutates only buffer
// occupancy — disjoint state. The single exception is an impairment
// drop, which releases the dead packet's VC reservation during
// delivery; cycles with impairments active therefore keep a
// deliver→schedule sequence point (cycSplitImpair), everything else
// runs the one-barrier form.
//
//	deliver   (receiver-driven) round boundary; drain inbound credit
//	          lanes into the local shadow; drain inbound flit lanes into
//	          the local VCMs, applying link impairments with the
//	          receiver's RNG stream (drop-synthesized credits are staged
//	          node-locally).
//	schedule  route buffered best-effort packets (cross-node *reads* of
//	          neighbor free-VC counts only); link scheduling and switch
//	          arbitration over local state; resolve each grant to a
//	          target VC — packets claim a downstream VC by reading the
//	          neighbor's memory and staging the claim in a sender-owned
//	          slot (nothing mutates VC reservations in this phase, so
//	          the reads are race-free and the claim stays valid).
//	commit    (sender-driven, local writes + own lanes only) flush
//	          staged drop credits; execute grants — pop, return credits
//	          onto own lanes, append flits to own pipes, eject into the
//	          local stats shard; commit inbound claims (each input port
//	          has exactly one wired upstream, so at most one claim
//	          targets a given memory); inject from sources homed here.
//
// Claims survive the gap between schedule and commit because commit only
// ever *frees* VCs before applying claims, and fault transitions fire on
// the serial event path between cycles, never mid-cycle.

// creditMsg is a credit travelling back upstream.
type creditMsg struct {
	arriveAt int64
	to       upRef
}

// FlowID identifies a best-effort packet flow registered with
// AddBestEffortFlow. IDs start at 1 (0 is never issued, so it can serve
// as an "unset" sentinel in wire protocols) and are never reused.
type FlowID int64

// beFlow is a best-effort packet flow between two hosts.
type beFlow struct {
	// id is the flow's owner handle. Every flow gets one, so a daemon
	// that shed an admission request to a best-effort fallback can later
	// retire exactly that flow (CloseFlow) instead of leaking an
	// immortal generator until process exit.
	id       FlowID
	src, dst int
	// conn is the degraded connection this flow substitutes for, or
	// flit.InvalidConn for a standalone flow. Closing a degraded
	// connection retires its flow by this conn ID — without it, every
	// degraded session would leak its fallback generator and a
	// long-lived fabric would drown in fallback traffic.
	conn    flit.ConnID
	gen     traffic.Source
	niQueue flit.Ring

	// Activity gating: last cycle the generator was ticked, and the
	// forecast cycle of its next arrival (see injectPackets).
	lastTick int64
	nextDue  int64
}

// idleForecastHorizon bounds how far ahead a source forecast looks. A
// forecast returning the horizon means "nothing before then; re-forecast
// there", so the constant trades forecast loop length against wake-up
// frequency for very-low-rate sources; it never affects results.
const idleForecastHorizon = 4096

// AddBestEffortFlow injects Poisson best-effort packets (one flit each,
// §3.4) from the host at src to the host at dst at the given mean rate in
// packets per cycle. The generator is bound to the source node's RNG
// stream so injection is independent of worker scheduling. The returned
// FlowID is the owner handle for CloseFlow.
func (n *Network) AddBestEffortFlow(src, dst int, packetsPerCycle float64) (FlowID, error) {
	if src < 0 || src >= len(n.nodes) || dst < 0 || dst >= len(n.nodes) || src == dst {
		return 0, errBadEndpoints(src, dst)
	}
	bf := &beFlow{src: src, dst: dst, conn: flit.InvalidConn, gen: traffic.NewBestEffortSource(n.nodes[src].rng, packetsPerCycle)}
	bf.id = n.issueFlowID()
	bf.lastTick = n.now - 1
	bf.nextDue = n.now
	n.beFlows = append(n.beFlows, bf)
	n.nodes[src].beSrc = append(n.nodes[src].beSrc, bf)
	return bf.id, nil
}

// CloseFlow retires the standalone best-effort flow with the given ID:
// the generator stops and packets still queued at the source interface
// return to the pool; flits already in the fabric drain normally
// (best-effort packets hold no reserved resources). Fallback flows owned
// by a degraded connection are refused — close the connection instead,
// which retires its flow and settles the session state together.
func (n *Network) CloseFlow(id FlowID) error {
	for i, bf := range n.beFlows {
		if bf.id != id {
			continue
		}
		if bf.conn != flit.InvalidConn {
			return fmt.Errorf("network: flow %d is the fallback of degraded connection %d; close the connection", id, bf.conn)
		}
		n.removeBEFlowAt(i)
		return nil
	}
	return fmt.Errorf("network: no best-effort flow %d", id)
}

// Step advances the whole network by one flit cycle: session events fire
// serially, then the shard-resident cycle runs across the worker pool —
// over the compact per-worker active lists when gating is on, over every
// worker's resident block with NoIdleSkip. Step always advances exactly
// one cycle; the whole-clock fast-forward across fully idle stretches
// lives in Run.
func (n *Network) Step() {
	t := n.now

	// Session-level events scheduled for this cycle (connection arrivals,
	// teardowns, fault transitions) fire first, on the stepping goroutine.
	n.events.Run(simTime(t))

	// Flits are minted from the source node's pool and retired into the
	// destination node's, so free lists drift toward the sinks; level them
	// periodically (serial, hence worker-count independent) so
	// source-heavy pools stop hitting the allocator.
	if t%poolRebalanceInterval == 0 {
		n.rebalancePools()
	}

	if n.cfg.NoIdleSkip {
		n.runCycle(t, len(n.nodes), n.allBoundary, true)
	} else {
		total, boundary := n.buildActive(t)
		n.runCycle(t, total, boundary, false)
	}

	n.now++
	n.m.cycles++
}

// Run advances the network the given number of cycles. With gating on,
// cycles where the global active set is empty are elided entirely: the
// clock jumps to the earliest next wake-up — a pending session event, a
// staged lane entry maturing, or a traffic source coming due — with the
// skipped cycles credited to the statistics so utilization and rate
// figures are identical to stepping through them. Busy stretches the
// forecasts prove injection-free additionally run through the fused
// drain kernel (drainWindow), which strips the per-cycle session-event
// and source-due machinery from each dispatched cycle.
func (n *Network) Run(cycles int64) {
	limit := n.now + cycles
	for n.now < limit {
		t := n.now
		n.events.Run(simTime(t))
		if t%poolRebalanceInterval == 0 {
			n.rebalancePools()
		}
		if !n.cfg.NoIdleSkip {
			total, boundary := n.buildActive(t)
			if total == 0 {
				next := n.nextWake(t, limit)
				// If a pool-rebalance boundary falls inside the skipped
				// stretch, level once now: the free lists cannot change
				// again while everything is idle, so one catch-up pass
				// reproduces every boundary the stretch covers. (The wake
				// cycle itself is handled by the check at the loop top.)
				if m := (t/poolRebalanceInterval + 1) * poolRebalanceInterval; m < next {
					n.rebalancePools()
				}
				n.m.cycles += next - t
				n.idleSkipped += next - t
				n.now = next
				continue
			}
			n.runCycle(t, total, boundary, false)
			n.now++
			n.m.cycles++
			// Fused drain: if the forecasts prove no source can inject and
			// no session event can fire for a while, the coming cycles are
			// pure drain — run them in the reduced kernel.
			if end := n.quietHorizon(n.now, limit); end-n.now >= drainMinWindow {
				n.drainWindow(end)
			}
			continue
		}
		n.runCycle(t, len(n.nodes), n.allBoundary, true)
		n.now++
		n.m.cycles++
	}
}

// drainMinWindow is the shortest injection-free window worth entering the
// fused drain kernel for. Below it, the horizon scan costs more than the
// per-cycle machinery it elides. Purely a performance knob: the fused and
// naive paths are bit-identical (TestDrainKEquivalence), so the threshold
// cannot affect results.
const drainMinWindow = 4

// quietHorizon returns the end (exclusive, capped at limit) of the
// injection-free window starting at from: no session event is scheduled
// and no live traffic source comes due before it. Within such a window
// the fabric can only drain — buffered flits move, staged lane entries
// mature, queued NI backlog enters free VCs — so the per-cycle event
// dispatch and source-due scans are provably no-ops. Source forecasts
// (nextDue) are exact lower bounds maintained by the injection contract;
// events cannot appear mid-window because only the serial event path
// schedules events, never the cycle phases.
func (n *Network) quietHorizon(from, limit int64) int64 {
	end := limit
	if at, ok := n.events.NextAt(); ok && int64(at) < end {
		end = int64(at)
	}
	if end <= from {
		return from
	}
	for _, nd := range n.nodes {
		for _, c := range nd.srcConns {
			if c.closed || c.broken || !c.open || c.src == nil {
				continue
			}
			if c.nextDue < end {
				end = c.nextDue
			}
		}
		for _, bf := range nd.beSrc {
			if bf.nextDue < end {
				end = bf.nextDue
			}
		}
	}
	if end < from {
		end = from
	}
	return end
}

// drainWindow is the fused multi-cycle drain kernel: it advances the
// clock to end running only the datapath phases over the reduced drain
// worklist. Equivalence with end-now naive Step calls:
//
//   - session events: none are scheduled before end (quietHorizon), and
//     the phases never schedule events, so the skipped events.Run calls
//     are no-ops.
//   - sources: none come due before end, so the skipped source-due
//     activity checks are false and skipped forecast refreshes are
//     no-ops (nextDue > t). Source Tick replay is deferred exactly as it
//     is for any gated-idle node: the catch-up loop in injectStreams /
//     injectPackets replays the provably-silent gap ticks in order.
//   - pool rebalancing: modulo boundaries fire inside the window just as
//     Step would fire them, including the one-shot catch-up when an
//     intra-window fast-forward jumps a boundary.
//
// Cycles whose drain worklist is empty fast-forward to the earliest
// staged lane entry (the only possible wake-up inside the window).
func (n *Network) drainWindow(end int64) {
	for n.now < end {
		t := n.now
		if t%poolRebalanceInterval == 0 {
			n.rebalancePools()
		}
		total, boundary := n.buildActiveDrain(t)
		if total == 0 {
			next := end
			for i := range n.laneFlits {
				if la := n.laneFlits[i].nextAt; la < next {
					next = la
				}
				if la := n.laneCreds[i].nextAt; la < next {
					next = la
				}
			}
			if next <= t {
				next = t + 1
			}
			if m := (t/poolRebalanceInterval + 1) * poolRebalanceInterval; m < next {
				n.rebalancePools()
			}
			n.m.cycles += next - t
			n.idleSkipped += next - t
			n.now = next
			continue
		}
		n.runCycle(t, total, boundary, false)
		n.now++
		n.m.cycles++
		n.drainCycles++
	}
}

// buildActiveDrain is buildActive inside an injection-free window: the
// source-due checks are dropped (provably false until the window ends),
// leaving occupancy, matured lane entries and queued NI backlog as the
// only activity signals.
func (n *Network) buildActiveDrain(t int64) (total, boundary int) {
	for w := range n.wrk {
		n.wrk[w].act = n.wrk[w].act[:0]
		n.wrk[w].extras = n.wrk[w].extras[:0]
	}
	for _, nd := range n.nodes {
		if n.nodeActiveDrain(nd, t) {
			n.actStamp[nd.id] = t
			w := n.workerOf[nd.id]
			n.wrk[w].act = append(n.wrk[w].act, nd)
			total++
			if !n.interior[nd.id] {
				boundary++
			}
		}
	}
	return total, boundary
}

// nodeActiveDrain is the drain-window activity predicate — nodeActive
// minus the source-due disjuncts (see buildActiveDrain).
func (n *Network) nodeActiveDrain(nd *node, t int64) bool {
	if n.occ[nd.id*occStride] > 0 {
		return true
	}
	for i := range nd.in {
		lane := nd.in[i].lane
		if n.laneCreds[lane].nextAt <= t || n.laneFlits[lane].nextAt <= t {
			return true
		}
	}
	for _, c := range nd.srcConns {
		// A queued stream flit retries VC entry every cycle; same for
		// queued packets below (which additionally draw RNG hunting a
		// free VC), so NI backlog forces activity.
		if !c.closed && !c.broken && c.niQueue.Len() > 0 {
			return true
		}
	}
	for _, bf := range nd.beSrc {
		if bf.niQueue.Len() > 0 {
			return true
		}
	}
	return false
}

// FusedDrainCycles reports how many cycles Run has executed inside the
// fused drain kernel (diagnostics; results are independent of it by
// construction).
func (n *Network) FusedDrainCycles() int64 { return n.drainCycles }

// buildActive computes this cycle's worklist: a node is active iff it has
// buffered flits on any port, an inbound staging lane holds a matured
// flit or credit, a stream source or best-effort flow homed on it is due
// (or still has a queued backlog at its network interface). Everything
// read here is either node-local or a lane the node is the unique reader
// of, and the scan runs serially between cycles, so the per-worker lists
// — and hence the simulation — are deterministic for every worker count.
//
// Active nodes are bucketed straight into their owning worker's resident
// list (ascending node order, since the scan ascends), and the returned
// counts drive the cycle-mode selection in runCycle: boundary counts the
// active nodes with at least one cross-shard edge — zero means the
// workers provably cannot interact this cycle and the whole cycle runs
// barrier-free (cycFused).
//
// The maturity rule is what makes gating exact: a lane entry's arriveAt
// wakes its receiver on exactly the cycle the ungated engine would have
// delivered it, so nothing is ever delivered, credited or reset late.
func (n *Network) buildActive(t int64) (total, boundary int) {
	for w := range n.wrk {
		n.wrk[w].act = n.wrk[w].act[:0]
		n.wrk[w].extras = n.wrk[w].extras[:0]
	}
	for _, nd := range n.nodes {
		if n.nodeActive(nd, t) {
			n.actStamp[nd.id] = t
			w := n.workerOf[nd.id]
			n.wrk[w].act = append(n.wrk[w].act, nd)
			total++
			if !n.interior[nd.id] {
				boundary++
			}
		}
	}
	return total, boundary
}

// nodeActive is the per-node activity predicate (see buildActive). The
// buffered-flit check is one load from the flat occupancy array (kept
// current by the VCMs via BindOccupancy); inbound lane heads are probed
// through the node's precomputed edge list against the flat lane arrays.
func (n *Network) nodeActive(nd *node, t int64) bool {
	if n.occ[nd.id*occStride] > 0 {
		return true
	}
	for i := range nd.in {
		lane := nd.in[i].lane
		if n.laneCreds[lane].nextAt <= t || n.laneFlits[lane].nextAt <= t {
			return true
		}
	}
	for _, c := range nd.srcConns {
		if c.closed || c.broken {
			continue
		}
		if c.niQueue.Len() > 0 {
			return true
		}
		if c.open && c.src != nil && c.nextDue <= t {
			return true
		}
	}
	for _, bf := range nd.beSrc {
		// A queued packet draws from the node's RNG every cycle while it
		// hunts for a free VC, so a non-empty NI queue forces activity.
		if bf.niQueue.Len() > 0 || bf.nextDue <= t {
			return true
		}
	}
	return false
}

// nextWake returns the earliest cycle in (t, limit] at which anything can
// happen: the next session event, the earliest staged lane entry
// maturing, or the earliest due traffic source. Called only when the
// active set is empty, so every lane head (if any) is strictly future.
func (n *Network) nextWake(t, limit int64) int64 {
	next := limit
	if at, ok := n.events.NextAt(); ok && int64(at) < next {
		next = int64(at)
	}
	// Lane heads: one linear pass over the cached nextAt values covers
	// every node's staging lanes (unwired lane slots are never pushed to
	// and stay at laneIdle, which never lowers next).
	for i := range n.laneFlits {
		if la := n.laneFlits[i].nextAt; la < next {
			next = la
		}
		if la := n.laneCreds[i].nextAt; la < next {
			next = la
		}
	}
	for _, nd := range n.nodes {
		for _, c := range nd.srcConns {
			if c.open && !c.closed && !c.broken && c.src != nil && c.nextDue < next {
				next = c.nextDue
			}
		}
		for _, bf := range nd.beSrc {
			if bf.nextDue < next {
				next = bf.nextDue
			}
		}
	}
	if next <= t {
		next = t + 1
	}
	return next
}

// ResetStats discards accumulated statistics (warmup boundary). Metric
// shards reset too, so hot-path series (per-class histograms, grant
// counters) cover the same measurement window as the stats snapshot;
// mirrored series lose nothing — the next gather rewrites them.
func (n *Network) ResetStats() {
	n.m.reset()
	for _, nd := range n.nodes {
		nd.stats.reset()
		nd.tstats.reset()
		nd.ms.Reset()
	}
}

// phaseDeliver is the receiver side of the cycle: node nd drains every
// inbound lane — credits and flits its wired peers staged for it — in
// ascending port order. All writes are nd-local (its shadow credits, its
// VCMs, its stats shard); peers' lanes are advanced via the head index,
// which the owner only touches in its commit phase, a barrier away.
func (n *Network) phaseDeliver(nd *node, t int64) {
	// Round boundary (§4.1): per-round bandwidth accounting resets. Lazy:
	// instead of firing on the exact modulo cycle, each node records the
	// last round it reset for and catches up when it next runs. Equivalent
	// to the eager reset because Serviced and the excess election are
	// frozen — and unread — while a node is idle, the catch-up reset runs
	// before any scheduling this cycle, and resetting once covers any
	// number of skipped boundaries (the reset is idempotent).
	if round := t / int64(n.cfg.K*n.cfg.VCs); nd.lastRound != round {
		nd.lastRound = round
		for _, ls := range nd.links {
			ls.OnRoundBoundary()
		}
	}

	for i := range nd.in {
		e := &nd.in[i]
		q := int(e.port)

		// Credits our downstream neighbor returned for flits it drained:
		// they mature into this node's shadow credit view.
		cl := &n.laneCreds[e.lane]
		for cl.head < len(cl.buf) && cl.buf[cl.head].arriveAt <= t {
			to := cl.buf[cl.head].to
			cl.head++
			nd.shadow[to.port].Return(int(to.vc))
		}
		cl.compact()

		// Flits in flight toward input port q, applying the directed
		// link's impairments with this receiver's RNG stream: a dropped
		// flit is detected by CRC and discarded — a dropped packet dies
		// with its reserved VC released; a dropped stream flit's buffer
		// slot never fills, so its credit returns upstream immediately
		// (staged: the lane owner may be draining it this phase).
		fl := &n.laneFlits[e.lane]
		if fl.head == len(fl.buf) {
			continue
		}
		im, impaired := n.impair[[2]int{int(e.peer), int(e.peerPort)}]
		mem := nd.mems[q]
		for fl.head < len(fl.buf) && fl.buf[fl.head].arriveAt <= t {
			lf := fl.buf[fl.head]
			fl.head++
			if impaired && im.DropProb > 0 && nd.rng.Float64() < im.DropProb {
				nd.stats.flitsDropped++
				nd.rec.Record(metrics.Event{Cycle: t, Code: evFlitDropped,
					Node: int16(nd.id), A: int32(q), B: int32(lf.vc), Aux: int64(lf.f.Conn)})
				if lf.f.Class == flit.ClassBestEffort || lf.f.Class == flit.ClassControl {
					mem.Release(lf.vc)
					nd.upstream[q][lf.vc] = noUpstream
				} else if up := nd.upstream[q][lf.vc]; up.node >= 0 {
					nd.dropCredits = append(nd.dropCredits, stagedCredit{
						port: q, cm: creditMsg{arriveAt: t + n.cfg.LinkDelay, to: up},
					})
				}
				nd.pool.Put(lf.f)
				continue
			}
			if impaired && im.CorruptProb > 0 && nd.rng.Float64() < im.CorruptProb {
				nd.stats.flitsCorrupted++
				nd.rec.Record(metrics.Event{Cycle: t, Code: evFlitCorrupted,
					Node: int16(nd.id), A: int32(q), B: int32(lf.vc), Aux: int64(lf.f.Conn)})
			}
			lf.f.ReadyAt = t
			if mem.Len(lf.vc) == 0 {
				lf.f.HeadAt = t
			}
			if !mem.Push(lf.vc, lf.f) {
				panic("network: flow control violation — downstream VC full")
			}
		}
		fl.compact()
	}
}

// phaseSchedule routes packets, nominates candidates, arbitrates the
// switch and resolves every grant to a target VC. Cross-node access is
// read-only (neighbor free-VC counts and FindFree scans); nothing in this
// phase mutates any VC reservation, so the reads race with nothing. ws is
// the executing worker's resident state: staging a claim on a gated-out
// receiver records the receiver in ws.extras right here, so the commit
// side knows there is claim work without ever re-scanning claim slots —
// and a cycle that stages no claims pays nothing at all.
func (n *Network) phaseSchedule(nd *node, t int64, ws *workerRun) {
	n.routePackets(nd)
	// Per-port skip: a port with zero buffered flits cannot nominate —
	// Candidates on an empty memory is provably a pure no-op (empty
	// eligible set, zero CreditStalled, early return before the excess
	// election's RNG-free tie-break), so skipping the scan changes nothing
	// but the time it takes. sched.TestLinkCountersGatingEquivalence pins
	// this down at the scheduler level.
	skipIdlePorts := !n.cfg.NoIdleSkip
	total := 0
	for p := range nd.links {
		if skipIdlePorts && !nd.links[p].Active() {
			nd.cands[p] = nd.cands[p][:0]
			continue
		}
		nd.cands[p] = nd.links[p].Candidates(t, nd.cands[p][:0])
		total += len(nd.cands[p])
	}
	if skipIdlePorts && total == 0 {
		// Zero candidates anywhere: the arbiter would deterministically
		// produce an all-NoGrant matching without drawing RNG (the network
		// engine always uses the RNG-free priority arbiter), so write that
		// result directly and skip the iteration machinery. Common when a
		// node is active only for inbound lane traffic or source injection.
		for in := range nd.grants {
			nd.grants[in] = sched.NoGrant
			nd.grantVC[in] = grantSkip
		}
		return
	}
	nd.arb.Schedule(nd.cands, nd.grants)

	hp := n.cfg.hostPort()
	for in := range nd.grants {
		nd.grantVC[in] = grantSkip
		g := nd.grants[in]
		if g == sched.NoGrant {
			continue
		}
		cand := nd.cands[in][g]
		mem := nd.mems[in]
		head := mem.Peek(cand.VC)
		if head == nil {
			panic("network: granted VC empty")
		}
		st := mem.State(cand.VC)
		isPacket := st.Class == flit.ClassBestEffort || st.Class == flit.ClassControl

		switch {
		case cand.Output == hp:
			nd.grantVC[in] = grantEject
		case !n.cfg.Topology.LinkUp(nd.id, cand.Output):
			// The chosen output died since routing: un-route packets so
			// they pick a surviving port next cycle. (Stream VCs cannot
			// reach here — a failure tears their connection down before
			// the next transmit.)
			if isPacket {
				st.Output = -1
				nd.ms.Inc(n.nm.deadOutput)
			}
		case isPacket:
			// VCT: claim a VC at the next router now (§3.4); skip the
			// grant if none is free this cycle. The reservation itself
			// is committed by the receiver (commit phase).
			nb := n.cfg.Topology.Neighbor(nd.id, cand.Output)
			pp := n.cfg.Topology.PeerPort(nd.id, cand.Output)
			targetVC := n.nodes[nb].mems[pp].FindFree(nd.rng.Intn(n.cfg.VCs))
			if targetVC < 0 {
				nd.ms.Inc(n.nm.claimFailed)
				continue
			}
			nd.claim[cand.Output] = claimSlot{vc: targetVC, class: st.Class}
			if !n.cfg.NoIdleSkip && n.actStamp[nb] != t {
				// The receiver is gated out this cycle: record it so the
				// commit side runs its claim commit (consumer-side slot
				// clearing requires every staged claim to be consumed in
				// its own cycle). Dedup happens at consume time via the
				// extra stamp; with gating off every node commits anyway.
				ws.extras = append(ws.extras, n.nodes[nb])
			}
			if !n.ud.IsUp(nd.id, cand.Output) {
				head.Packet.WentDown = true
			}
			nd.grantVC[in] = targetVC
		default:
			// Stream: the reserved next-hop VC from the channel mapping.
			out := nd.cmap.Direct(routing.VCRef{Port: in, VC: cand.VC})
			if out == routing.Invalid {
				panic("network: stream VC without channel mapping")
			}
			nd.grantVC[in] = out.VC
		}
	}
}

// phaseCommit is the sender side of the cycle: flush staged drop credits,
// execute this node's grants onto its own lanes, commit the claims its
// wired upstreams staged on it, and inject from the sources homed here.
// Every write is to nd-local state or an nd-owned lane.
func (n *Network) phaseCommit(nd *node, t int64) {
	// Drop-synthesized credits staged during delivery go out first,
	// preserving the serial engine's order (drop credits precede this
	// cycle's transmit credits on the same lane).
	if len(nd.dropCredits) > 0 {
		for _, sc := range nd.dropCredits {
			nd.credOut[sc.port].push(sc.cm)
		}
		nd.dropCredits = nd.dropCredits[:0]
	}

	n.executeGrants(nd, t)
	n.commitClaims(nd)
	n.injectStreams(nd, t)
	n.injectPackets(nd, t)
}

// executeGrants performs the transfers resolved in the schedule phase.
func (n *Network) executeGrants(nd *node, t int64) {
	for in := range nd.grants {
		g := nd.grants[in]
		if g == sched.NoGrant || nd.grantVC[in] == grantSkip {
			continue
		}
		targetVC := nd.grantVC[in]
		cand := nd.cands[in][g]
		nd.ms.Inc(n.nm.grantsByPort[cand.Output])
		mem := nd.mems[in]
		st := mem.State(cand.VC)
		isPacket := st.Class == flit.ClassBestEffort || st.Class == flit.ClassControl
		if !isPacket && targetVC >= 0 {
			if !nd.shadow[in].Consume(cand.VC) {
				panic("network: scheduler granted a VC without credits")
			}
		}

		f := mem.Pop(cand.VC)
		mem.IncServiced(cand.VC)
		if next := mem.Peek(cand.VC); next != nil {
			next.HeadAt = t
		}
		// Free the local slot: return a credit upstream (after the wire
		// delay), unless a host interface feeds this VC directly.
		if up := nd.upstream[in][cand.VC]; up.node >= 0 {
			nd.credOut[in].push(creditMsg{arriveAt: t + n.cfg.LinkDelay, to: up})
		}
		if isPacket {
			// Single-flit packet: its VC frees entirely.
			mem.Release(cand.VC)
			nd.upstream[in][cand.VC] = noUpstream
		}

		if targetVC == grantEject {
			n.eject(nd, t, f)
			continue
		}
		nd.pipes[cand.Output].push(linkFlit{
			arriveAt: t + n.cfg.LinkDelay,
			vc:       targetVC,
			f:        f,
		})
		nd.stats.linkFlits++
	}
}

// commitClaims applies the packet VC claims this node's wired upstreams
// staged during the schedule phase. Each input port has exactly one wired
// upstream, so each memory sees at most one claim; the claimed VC is
// still free because the commit phase only releases VCs before this point.
//
// The consumer clears the slot it reads (the unique-reader rule makes the
// cross-node write race-free: the producer only writes its slots in the
// schedule phase, a barrier away). Consumer-side clearing is what keeps
// the claim-slot invariant — every slot is -1 at the start of every cycle
// — without requiring every producer to run a schedule phase each cycle.
func (n *Network) commitClaims(nd *node) {
	for i := range nd.in {
		e := &nd.in[i]
		slot := n.claims[e.lane]
		if slot.vc < 0 {
			continue
		}
		n.claims[e.lane].vc = -1
		if !nd.mems[e.port].Reserve(slot.vc, vcm.VCState{
			Conn: flit.InvalidConn, Class: slot.class, Output: -1,
		}) {
			panic("network: claimed VC no longer free at commit")
		}
		// The sender released its own VC already (single-flit packets);
		// the arriving packet has no upstream to credit.
		nd.upstream[e.port][slot.vc] = noUpstream
	}
}

// eject delivers a flit to the local host, records statistics in this
// node's shard, and retires the flit to this node's pool (the pooling
// ownership-transfer rule: whichever node retires a flit puts it).
func (n *Network) eject(nd *node, t int64, f *flit.Flit) {
	delay := float64(t - f.CreatedAt)
	nd.ms.Observe(n.nm.classDelay[f.Class], delay)
	switch f.Class {
	case flit.ClassBestEffort:
		nd.stats.beDelivered++
		nd.stats.beLatency.Add(delay)
	default:
		c := n.conns[f.Conn]
		if j, ok := nd.stats.tracker.Record(int(c.dstSlot), delay); ok {
			nd.ms.Observe(n.nm.classJitter[f.Class], j)
		}
		nd.stats.delivered++
		nd.tstats.observe(c.tenantSlot, delay)
	}
	nd.pool.Put(f)
}

// injectStreams moves source flits into the entry VCs of the connections
// whose source host sits on this node. Sources are bound to this node's
// RNG stream, and flits come from this node's pool.
//
// Gating contract: a source must be ticked every cycle (Tick is stateful,
// and some draws consume RNG), but a node only runs when active. The
// catch-up loop replays the cycles the node slept through — provably
// no-ops, since the forecast (c.nextDue) promised no arrivals and gap
// ticks draw no RNG — then ticks the live cycle. The forecast is only
// recomputed once it expires, and after the ticks, so the simulated
// per-cycle state it was derived from matches the source exactly.
func (n *Network) injectStreams(nd *node, t int64) {
	hp := n.cfg.hostPort()
	for _, c := range nd.srcConns {
		if c.closed || c.broken {
			continue
		}
		if c.open && c.src != nil {
			for ct := c.lastTick + 1; ct <= t; ct++ {
				for k := c.src.Tick(ct); k > 0; k-- {
					f := nd.pool.Get()
					f.Conn, f.Class, f.Type = c.ID, c.Spec.Class, flit.TypeBody
					f.Seq, f.CreatedAt = c.nextSeq, ct
					f.Src, f.Dst = int32(c.Src), int32(c.Dst)
					c.nextSeq++
					c.niQueue.Push(f)
					nd.stats.generated++
				}
			}
			c.lastTick = t
			// Maintained even with gating off: the forecast is part of the
			// durable fabric state a checkpoint carries, and it must not
			// depend on the execution strategy that happened to produce it.
			if c.nextDue <= t {
				c.nextDue = traffic.ForecastSource(c.src, t, t+idleForecastHorizon)
			}
		}
		mem := nd.mems[hp]
		entry := c.VCs[0]
		for c.niQueue.Len() > 0 && mem.Free(entry.VC) > 0 {
			f := c.niQueue.Pop()
			f.ReadyAt = t
			if mem.Len(entry.VC) == 0 {
				f.HeadAt = t
			}
			mem.Push(entry.VC, f)
		}
	}
}

// injectPackets places best-effort packets from the flows homed on this
// node into free VCs on its host port.
func (n *Network) injectPackets(nd *node, t int64) {
	hp := n.cfg.hostPort()
	for _, bf := range nd.beSrc {
		// Same catch-up contract as injectStreams. BestEffortSource gap
		// ticks are total no-ops (no state change, no RNG), so the replay
		// loop is cheap even after a long sleep.
		for ct := bf.lastTick + 1; ct <= t; ct++ {
			for k := bf.gen.Tick(ct); k > 0; k-- {
				nd.pktSeq++
				// Node-unique sequence: local counter tagged with the node id.
				seq := nd.pktSeq<<20 | int64(nd.id)
				f := nd.pool.Get()
				f.Conn, f.Class, f.Type = flit.InvalidConn, flit.ClassBestEffort, flit.TypeHead
				f.Seq, f.CreatedAt = seq, ct
				f.Src, f.Dst = int32(bf.src), int32(bf.dst)
				pk := nd.pool.GetPacket()
				pk.ID, pk.Kind, pk.Size, pk.CreatedAt = seq, flit.PacketBestEffort, 1, ct
				f.Packet = pk
				bf.niQueue.Push(f)
				nd.stats.beGenerated++
			}
		}
		bf.lastTick = t
		// Unconditional for the same reason as the stream forecast above:
		// checkpointed state must be execution-strategy independent.
		if bf.nextDue <= t {
			bf.nextDue = traffic.ForecastSource(bf.gen, t, t+idleForecastHorizon)
		}
		mem := nd.mems[hp]
		for bf.niQueue.Len() > 0 {
			vc := mem.FindFree(nd.rng.Intn(n.cfg.VCs))
			if vc < 0 {
				break // all queued packets need the same resource
			}
			f := bf.niQueue.Pop()
			mem.Reserve(vc, vcm.VCState{Conn: flit.InvalidConn, Class: flit.ClassBestEffort, Output: -1})
			f.ReadyAt = t
			f.HeadAt = t
			mem.Push(vc, f)
		}
	}
}

// poolRebalanceInterval is how often (in cycles) free flits are leveled
// across the per-node pools. Short enough that a source-heavy node's
// share covers its outflow between rebalances once the free population
// has grown to match the workload; long enough that the O(nodes) scan is
// noise.
const poolRebalanceInterval = 128

// rebalancePools levels the per-node free lists: every pool ends within
// one flit (and one packet) of the mean, donors and receivers visited in
// ascending node order. Runs on the serial path, so the result — like
// everything else in the cycle — is independent of the worker count.
func (n *Network) rebalancePools() {
	if len(n.nodes) < 2 {
		return
	}
	var totalF, totalP int
	for _, nd := range n.nodes {
		totalF += nd.pool.FreeLen()
		totalP += nd.pool.FreePackets()
	}
	meanF := totalF / len(n.nodes)
	meanP := totalP / len(n.nodes)

	di := 0 // donor cursor: donors are consumed in ascending order
	for _, rd := range n.nodes {
		need := meanF - rd.pool.FreeLen()
		for need > 0 && di < len(n.nodes) {
			donor := n.nodes[di]
			surplus := donor.pool.FreeLen() - meanF
			if donor == rd || surplus <= 0 {
				di++
				continue
			}
			k := surplus
			if k > need {
				k = need
			}
			need -= donor.pool.MoveFreeFlits(rd.pool, k)
		}
	}
	di = 0
	for _, rd := range n.nodes {
		need := meanP - rd.pool.FreePackets()
		for need > 0 && di < len(n.nodes) {
			donor := n.nodes[di]
			surplus := donor.pool.FreePackets() - meanP
			if donor == rd || surplus <= 0 {
				di++
				continue
			}
			k := surplus
			if k > need {
				k = need
			}
			need -= donor.pool.MoveFreePackets(rd.pool, k)
		}
	}
}

// routePackets runs the routing unit for buffered best-effort packets
// that have no output assignment yet: pick an up*/down* legal port
// (minimal first) whose downstream router has a free VC. Neighbor state
// is read-only here.
func (n *Network) routePackets(nd *node) {
	hp := n.cfg.hostPort()
	for p := range nd.mems {
		mem := nd.mems[p]
		avail := mem.FlitsAvailable()
		for vc := avail.NextSet(0); vc >= 0; vc = avail.NextSet(vc + 1) {
			st := mem.State(vc)
			if st.Class != flit.ClassBestEffort || st.Output >= 0 {
				continue
			}
			head := mem.Peek(vc)
			if head == nil || head.Packet == nil {
				continue
			}
			dst := int(head.Dst)
			if dst == nd.id {
				st.Output = hp
				continue
			}
			wentDown := head.Packet.WentDown
			nd.scratchPorts = n.ud.NextPorts(nd.id, dst, wentDown, nd.scratchPorts[:0])
			for _, q := range nd.scratchPorts {
				nb := n.cfg.Topology.Neighbor(nd.id, q)
				if n.nodes[nb].mems[n.cfg.Topology.PeerPort(nd.id, q)].FreeVCs() > 0 {
					st.Output = q
					break
				}
			}
		}
	}
}
