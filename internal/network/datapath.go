package network

import (
	"mmr/internal/flit"
	"mmr/internal/routing"
	"mmr/internal/sched"
	"mmr/internal/vcm"
)

// creditMsg is a credit travelling back upstream.
type creditMsg struct {
	arriveAt int64
	to       upRef
}

// beFlow is a best-effort packet flow between two hosts.
type beFlow struct {
	src, dst int
	gen      interface{ Tick(int64) int }
	niQueue  flit.Ring
}

// AddBestEffortFlow injects Poisson best-effort packets (one flit each,
// §3.4) from the host at src to the host at dst at the given mean rate in
// packets per cycle.
func (n *Network) AddBestEffortFlow(src, dst int, packetsPerCycle float64) error {
	if src < 0 || src >= len(n.nodes) || dst < 0 || dst >= len(n.nodes) || src == dst {
		return errBadEndpoints(src, dst)
	}
	n.beFlows = append(n.beFlows, &beFlow{src: src, dst: dst, gen: newPoisson(n, packetsPerCycle)})
	return nil
}

// Step advances the whole network by one flit cycle: session events fire,
// credits and link flits arrive, best-effort packets route, every router
// schedules and transmits, and sources inject.
func (n *Network) Step() {
	t := n.now

	// Session-level events scheduled for this cycle (connection arrivals,
	// teardowns) fire first.
	n.events.Run(simTime(t))

	// Round boundary.
	if t%int64(n.cfg.K*n.cfg.VCs) == 0 {
		for _, nd := range n.nodes {
			for _, ls := range nd.links {
				ls.OnRoundBoundary()
			}
		}
	}

	// Deliver credits that have propagated back.
	n.deliverCredits(t)

	// Deliver link flits into downstream VCMs.
	for _, nd := range n.nodes {
		n.deliverLinkFlits(nd, t)
	}

	// Route best-effort packets that are still waiting for an output
	// choice (their VCState.Output is -1 until the routing unit decides).
	for _, nd := range n.nodes {
		n.routePackets(nd)
	}

	// Schedule and transmit at every router.
	for _, nd := range n.nodes {
		for p := range nd.links {
			nd.cands[p] = nd.links[p].Candidates(t, nd.cands[p][:0])
		}
		nd.arb.Schedule(nd.cands, nd.grants)
	}
	for _, nd := range n.nodes {
		n.transmit(nd, t)
	}

	// Inject from hosts.
	n.injectStreams(t)
	n.injectPackets(t)

	n.now++
	n.m.cycles++
}

// Run advances the network the given number of cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// ResetStats discards accumulated statistics (warmup boundary).
func (n *Network) ResetStats() { n.m.reset() }

// deliverCredits processes the global credit return queue.
func (n *Network) deliverCredits(t int64) {
	i := 0
	for ; i < len(n.credits) && n.credits[i].arriveAt <= t; i++ {
		to := n.credits[i].to
		if to.node < 0 {
			continue
		}
		n.nodes[to.node].shadow[to.port].Return(to.vc)
	}
	if i > 0 {
		n.credits = append(n.credits[:0], n.credits[i:]...)
	}
}

// deliverLinkFlits moves arrived flits from link pipes into the
// downstream VCM, applying the link's impairments: a dropped flit is
// detected by the receiver (CRC) and discarded — for a stream flit its
// buffer slot never fills, so the credit returns upstream immediately;
// a dropped packet dies with its reserved VC released. Corrupted flits
// are delivered and counted. Wiring is resolved through the raw tables:
// pipes of a failed link are purged at the failure transition, so any
// flit still here travels a live (or just-impaired) link.
func (n *Network) deliverLinkFlits(nd *node, t int64) {
	for q := range nd.pipes {
		pipe := nd.pipes[q]
		if len(pipe) == 0 {
			continue
		}
		im, impaired := n.impair[[2]int{nd.id, q}]
		nb := n.cfg.Topology.Wired(nd.id, q)
		pp := n.cfg.Topology.WiredPeer(nd.id, q)
		y := n.nodes[nb]
		i := 0
		for ; i < len(pipe) && pipe[i].arriveAt <= t; i++ {
			lf := pipe[i]
			if impaired && im.DropProb > 0 && n.rng.Float64() < im.DropProb {
				n.m.flitsDropped++
				if lf.f.Class == flit.ClassBestEffort || lf.f.Class == flit.ClassControl {
					y.mems[pp].Release(lf.vc)
					y.upstream[pp][lf.vc] = noUpstream
				} else if up := y.upstream[pp][lf.vc]; up.node >= 0 {
					n.credits = append(n.credits, creditMsg{arriveAt: t + n.cfg.LinkDelay, to: up})
				}
				continue
			}
			if impaired && im.CorruptProb > 0 && n.rng.Float64() < im.CorruptProb {
				n.m.flitsCorrupted++
			}
			lf.f.ReadyAt = t
			if y.mems[pp].Len(lf.vc) == 0 {
				lf.f.HeadAt = t
			}
			if !y.mems[pp].Push(lf.vc, lf.f) {
				panic("network: flow control violation — downstream VC full")
			}
		}
		if i > 0 {
			nd.pipes[q] = append(pipe[:0], pipe[i:]...)
		}
	}
}

// routePackets runs the routing unit for buffered best-effort packets
// that have no output assignment yet: pick an up*/down* legal port
// (minimal first) whose downstream router has a free VC.
func (n *Network) routePackets(nd *node) {
	hp := n.cfg.hostPort()
	for p := range nd.mems {
		mem := nd.mems[p]
		avail := mem.FlitsAvailable()
		for vc := avail.NextSet(0); vc >= 0; vc = avail.NextSet(vc + 1) {
			st := mem.State(vc)
			if st.Class != flit.ClassBestEffort || st.Output >= 0 {
				continue
			}
			head := mem.Peek(vc)
			if head == nil || head.Packet == nil {
				continue
			}
			dst := int(head.Dst)
			if dst == nd.id {
				st.Output = hp
				continue
			}
			wentDown := head.Packet.WentDown
			n.scratchPorts = n.ud.NextPorts(nd.id, dst, wentDown, n.scratchPorts[:0])
			for _, q := range n.scratchPorts {
				nb := n.cfg.Topology.Neighbor(nd.id, q)
				if n.nodes[nb].mems[n.cfg.Topology.PeerPort(nd.id, q)].FreeVCs() > 0 {
					st.Output = q
					break
				}
			}
		}
	}
}

// transmit executes one router's granted transfers.
func (n *Network) transmit(nd *node, t int64) {
	hp := n.cfg.hostPort()
	for in := range nd.grants {
		g := nd.grants[in]
		if g == sched.NoGrant {
			continue
		}
		cand := nd.cands[in][g]
		mem := nd.mems[in]
		head := mem.Peek(cand.VC)
		if head == nil {
			panic("network: granted VC empty")
		}
		st := mem.State(cand.VC)
		isPacket := st.Class == flit.ClassBestEffort || st.Class == flit.ClassControl

		var targetVC int
		if cand.Output == hp {
			targetVC = -1 // ejection to the host
		} else if !n.cfg.Topology.LinkUp(nd.id, cand.Output) {
			// The chosen output died since routing: un-route packets so
			// they pick a surviving port next cycle. (Stream VCs cannot
			// reach here — a failure tears their connection down before
			// the next transmit.)
			if isPacket {
				st.Output = -1
			}
			continue
		} else if isPacket {
			// VCT: reserve a VC at the next router now (§3.4); skip the
			// grant if none is free this cycle.
			nb := n.cfg.Topology.Neighbor(nd.id, cand.Output)
			pp := n.cfg.Topology.PeerPort(nd.id, cand.Output)
			targetVC = n.nodes[nb].mems[pp].FindFree(n.rng.Intn(n.cfg.VCs))
			if targetVC < 0 {
				continue
			}
			n.nodes[nb].mems[pp].Reserve(targetVC, vcm.VCState{
				Conn: flit.InvalidConn, Class: st.Class, Output: -1,
			})
			if !n.ud.IsUp(nd.id, cand.Output) {
				head.Packet.WentDown = true
			}
		} else {
			// Stream: the reserved next-hop VC from the channel mapping.
			out := nd.cmap.Direct(routing.VCRef{Port: in, VC: cand.VC})
			if out == routing.Invalid {
				panic("network: stream VC without channel mapping")
			}
			targetVC = out.VC
			if !nd.shadow[in].Consume(cand.VC) {
				panic("network: scheduler granted a VC without credits")
			}
		}

		f := mem.Pop(cand.VC)
		st.Serviced++
		if next := mem.Peek(cand.VC); next != nil {
			next.HeadAt = t
		}
		// Free the local slot: return a credit upstream (after the wire
		// delay), unless a host interface feeds this VC directly.
		if up := nd.upstream[in][cand.VC]; up.node >= 0 {
			n.credits = append(n.credits, creditMsg{arriveAt: t + n.cfg.LinkDelay, to: up})
		}
		if isPacket {
			// Single-flit packet: its VC frees entirely.
			mem.Release(cand.VC)
			nd.upstream[in][cand.VC] = noUpstream
		}

		if cand.Output == hp {
			n.eject(nd, t, f)
			continue
		}
		nd.pipes[cand.Output] = append(nd.pipes[cand.Output], linkFlit{
			arriveAt: t + n.cfg.LinkDelay,
			vc:       targetVC,
			f:        f,
		})
		if isPacket {
			// The receiving router's routing unit sees the packet when it
			// arrives; record the upstream as none (VC released already).
			nb := n.cfg.Topology.Neighbor(nd.id, cand.Output)
			pp := n.cfg.Topology.PeerPort(nd.id, cand.Output)
			n.nodes[nb].upstream[pp][targetVC] = noUpstream
		}
		n.m.linkFlits++
	}
}

// eject delivers a flit to the local host and records statistics.
func (n *Network) eject(nd *node, t int64, f *flit.Flit) {
	switch f.Class {
	case flit.ClassBestEffort:
		n.m.beDelivered++
		n.m.beLatency.Add(float64(t - f.CreatedAt))
	default:
		n.m.tracker.Record(int(f.Conn), float64(t-f.CreatedAt))
		n.m.delivered++
	}
}

// injectStreams moves source flits into the entry VCs.
func (n *Network) injectStreams(t int64) {
	hp := n.cfg.hostPort()
	for _, c := range n.conns {
		if c.closed || c.broken {
			continue
		}
		if c.open && c.src != nil {
			for k := c.src.Tick(t); k > 0; k-- {
				f := &flit.Flit{
					Conn: c.ID, Class: c.Spec.Class, Type: flit.TypeBody,
					Seq: c.nextSeq, CreatedAt: t,
					Src: int32(c.Src), Dst: int32(c.Dst),
				}
				c.nextSeq++
				c.niQueue.Push(f)
				n.m.generated++
			}
		}
		mem := n.nodes[c.Src].mems[hp]
		entry := c.VCs[0]
		for c.niQueue.Len() > 0 && mem.Free(entry.VC) > 0 {
			f := c.niQueue.Pop()
			f.ReadyAt = t
			if mem.Len(entry.VC) == 0 {
				f.HeadAt = t
			}
			mem.Push(entry.VC, f)
		}
	}
}

// injectPackets places best-effort packets into free VCs on the source
// router's host port.
func (n *Network) injectPackets(t int64) {
	hp := n.cfg.hostPort()
	for _, bf := range n.beFlows {
		for k := bf.gen.Tick(t); k > 0; k-- {
			n.pktSeq++
			bf.niQueue.Push(&flit.Flit{
				Conn: flit.InvalidConn, Class: flit.ClassBestEffort, Type: flit.TypeHead,
				Seq: n.pktSeq, CreatedAt: t,
				Src: int32(bf.src), Dst: int32(bf.dst),
				Packet: &flit.Packet{ID: n.pktSeq, Kind: flit.PacketBestEffort, Size: 1, CreatedAt: t},
			})
			n.m.beGenerated++
		}
		mem := n.nodes[bf.src].mems[hp]
		for bf.niQueue.Len() > 0 {
			vc := mem.FindFree(n.rng.Intn(n.cfg.VCs))
			if vc < 0 {
				break // all queued packets need the same resource
			}
			f := bf.niQueue.Pop()
			mem.Reserve(vc, vcm.VCState{Conn: flit.InvalidConn, Class: flit.ClassBestEffort, Output: -1})
			f.ReadyAt = t
			f.HeadAt = t
			mem.Push(vc, f)
		}
	}
}
