package network

import (
	"testing"

	"mmr/internal/flit"
	"mmr/internal/routing"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// batchReqs builds an all-to-some request list over a fabric: shell s
// gives every router one outgoing session to the router s+1 positions
// ahead, so sources and destinations stay evenly loaded.
func batchReqs(nodes, shells int, spec traffic.ConnSpec) []OpenReq {
	var reqs []OpenReq
	for s := 1; s <= shells; s++ {
		for src := 0; src < nodes; src++ {
			reqs = append(reqs, OpenReq{Src: src, Dst: (src + s) % nodes, Spec: spec})
		}
	}
	return reqs
}

// TestOpenBatchMatchesSerial asserts OpenBatch is bit-exact with a serial
// Open loop when no pre-check short-circuits: same paths, same VCs, same
// RNG stream, and — after stepping both fabrics — byte-identical
// checkpoints.
func TestOpenBatchMatchesSerial(t *testing.T) {
	build := func() *Network {
		tp, err := topology.FatTree(4)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(DefaultConfig(tp))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 8 * traffic.Mbps}
	reqs := batchReqs(topology.FatTreeNodes(4), 3, spec)

	serial := build()
	for _, r := range reqs {
		if _, err := serial.Open(r.Src, r.Dst, r.Spec); err != nil {
			t.Fatalf("serial Open(%d,%d): %v", r.Src, r.Dst, err)
		}
	}
	batched := build()
	res := batched.OpenBatch(reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batched request %d: %v", i, r.Err)
		}
	}

	sc := serial.Conns()
	bc := batched.Conns()
	if len(sc) != len(bc) {
		t.Fatalf("conn counts differ: %d vs %d", len(sc), len(bc))
	}
	for i := range sc {
		a, b := sc[i], bc[i]
		if a.SetupTime != b.SetupTime || a.Backtracks != b.Backtracks || len(a.Path) != len(b.Path) {
			t.Fatalf("conn %d setup differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Path {
			if a.Path[j] != b.Path[j] || a.VCs[j] != b.VCs[j] || a.Nodes[j] != b.Nodes[j] {
				t.Fatalf("conn %d hop %d differs", i, j)
			}
		}
	}

	serial.Run(2000)
	batched.Run(2000)
	sb, err := serial.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := batched.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(bb) {
		t.Fatal("serial and batched fabrics diverged: checkpoints differ")
	}
}

// TestOpenBatchPrecheckExact asserts the pre-checks reject exactly the
// requests serial establishment would reject, for the two
// placement-independent resources they model exactly: source entry VCs
// and destination ejection bandwidth.
func TestOpenBatchPrecheckExact(t *testing.T) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 8 // small enough to exhaust the source's entry VCs quickly
	cfg.K = 4

	// Destination ejection saturation: the host output port admits
	// roundLen guaranteed cycles; drive one destination past it.
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 100 * traffic.Mbps}
	serial, _ := New(cfg)
	batched, _ := New(cfg)
	var reqs []OpenReq
	for src := 0; src < tp.Nodes-1; src++ {
		for k := 0; k < 3; k++ {
			reqs = append(reqs, OpenReq{Src: src, Dst: tp.Nodes - 1, Spec: spec})
		}
	}
	pattern := make([]bool, len(reqs))
	for i, r := range reqs {
		_, err := serial.Open(r.Src, r.Dst, r.Spec)
		pattern[i] = err == nil
	}
	res := batched.OpenBatch(reqs)
	accepted := 0
	for i := range res {
		if (res[i].Err == nil) != pattern[i] {
			t.Fatalf("request %d: batch accept=%v, serial accept=%v (%v)",
				i, res[i].Err == nil, pattern[i], res[i].Err)
		}
		if res[i].Err == nil {
			accepted++
		}
	}
	if accepted == 0 || accepted == len(reqs) {
		t.Fatalf("saturation test did not straddle the admission limit (accepted %d/%d)", accepted, len(reqs))
	}

	// Source entry-VC exhaustion: only cfg.VCs sessions can originate at
	// one router.
	serial2, _ := New(cfg)
	batched2, _ := New(cfg)
	small := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 1 * traffic.Mbps}
	var reqs2 []OpenReq
	for i := 0; i < cfg.VCs+4; i++ {
		reqs2 = append(reqs2, OpenReq{Src: 0, Dst: 1 + i%(tp.Nodes-1), Spec: small})
	}
	for i, r := range reqs2 {
		_, serr := serial2.Open(r.Src, r.Dst, r.Spec)
		pattern[i] = serr == nil
	}
	res2 := batched2.OpenBatch(reqs2)
	for i := range res2 {
		if (res2[i].Err == nil) != pattern[i] {
			t.Fatalf("vc-exhaustion request %d: batch accept=%v, serial accept=%v",
				i, res2[i].Err == nil, pattern[i])
		}
	}
}

// TestOpenBatchRegionalPrecheck asserts the border-capacity aggregate
// rejects cross-region demand that provably cannot fit, on the smallest
// fat tree (one border link per pod), and that serial establishment
// agrees.
func TestOpenBatchRegionalPrecheck(t *testing.T) {
	tp, err := topology.FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	roundLen := cfg.K * cfg.VCs
	// Each session demands just over a third of a round: two fit on the
	// single pod-0 border link, the third must be rejected.
	rate := traffic.Rate(float64(cfg.Link.Bandwidth) * 49.5 / float64(roundLen))
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}
	d := demandFromRate(t, cfg, rate)
	if d*3 <= roundLen || d*2 > roundLen {
		t.Fatalf("demand %d does not straddle the border capacity %d", d, roundLen)
	}

	serial, _ := New(cfg)
	batched, _ := New(cfg)
	// Cross-pod: pod 0 (edge router 0) to pod 1 (edge router 2).
	reqs := []OpenReq{
		{Src: 0, Dst: 2, Spec: spec},
		{Src: 0, Dst: 2, Spec: spec},
		{Src: 0, Dst: 2, Spec: spec},
	}
	for i, r := range reqs {
		_, serr := serial.Open(r.Src, r.Dst, r.Spec)
		br := batched.OpenBatch([]OpenReq{r})
		if (serr == nil) != (br[0].Err == nil) {
			t.Fatalf("request %d: serial accept=%v, batch accept=%v", i, serr == nil, br[0].Err == nil)
		}
	}
	if got := batched.Stats().SetupRejected; got != 1 {
		t.Fatalf("expected exactly 1 rejection, got %d", got)
	}
}

func demandFromRate(t *testing.T, cfg Config, rate traffic.Rate) int {
	t.Helper()
	return cfg.Link.CyclesPerRound(rate, cfg.K*cfg.VCs)
}

// TestOpenBatchCheckpointRoundTrip asserts arena-backed connections
// survive a checkpoint/restore bit-exactly.
func TestOpenBatchCheckpointRoundTrip(t *testing.T) {
	tp, err := topology.Dragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 8 * traffic.Mbps}
	res := n.OpenBatch(batchReqs(tp.Nodes, 2, spec))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	n.Run(1500)
	blob, err := n.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	n.Run(1500)
	m.Run(1500)
	nb, err := n.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := m.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if string(nb) != string(mb) {
		t.Fatal("restored fabric diverged from original after identical stepping")
	}
}

// TestRouteModesEstablish asserts Valiant and UGAL establishment works
// end to end on both generated fabrics: sessions come up, traffic flows,
// and two identically-seeded runs stay bit-exact.
func TestRouteModesEstablish(t *testing.T) {
	for _, mode := range []routing.RouteMode{routing.RouteValiant, routing.RouteUGAL} {
		run := func() []byte {
			tp, err := topology.FatTree(4)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(tp)
			cfg.Route = mode
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 8 * traffic.Mbps}
			res := n.OpenBatch(batchReqs(tp.Nodes, 2, spec))
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("%v request %d: %v", mode, i, r.Err)
				}
			}
			n.Run(3000)
			if s := n.Stats(); s.FlitsDelivered == 0 {
				t.Fatalf("%v: no flits delivered", mode)
			}
			blob, err := n.EncodeState()
			if err != nil {
				t.Fatal(err)
			}
			return blob
		}
		if string(run()) != string(run()) {
			t.Fatalf("%v: identically-seeded runs diverged", mode)
		}
	}
}

// TestRouteModeChangesConfigHash asserts non-minimal route modes hash to
// distinct configurations while the minimal default preserves the
// pre-existing hash (old checkpoints stay loadable).
func TestRouteModeChangesConfigHash(t *testing.T) {
	tp, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	a, _ := New(cfg)
	cfg.Route = routing.RouteValiant
	b, _ := New(cfg)
	cfg.Route = routing.RouteUGAL
	c, _ := New(cfg)
	if a.ConfigHash() == b.ConfigHash() || b.ConfigHash() == c.ConfigHash() || a.ConfigHash() == c.ConfigHash() {
		t.Fatal("route modes must hash to distinct configurations")
	}
}

// TestQuiesceProbes asserts a fabric with establishment probes in flight
// refuses to checkpoint, quiesces in bounded time, and then checkpoints
// cleanly — the daemon's snapshot-during-bring-up path.
func TestQuiesceProbes(t *testing.T) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(DefaultConfig(tp))
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 8 * traffic.Mbps}
	opened := 0
	for i := 0; i < 6; i++ {
		err := n.OpenAsync(i, 15-i, spec, func(c *Conn, err error) {
			if err == nil {
				opened++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.EncodeState(); err == nil {
		t.Fatal("EncodeState must refuse while probes are in flight")
	}
	if err := n.QuiesceProbes(100_000); err != nil {
		t.Fatal(err)
	}
	if opened == 0 {
		t.Fatal("no probe completed during quiesce")
	}
	if _, err := n.EncodeState(); err != nil {
		t.Fatalf("EncodeState after quiesce: %v", err)
	}
}
