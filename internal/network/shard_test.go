package network

import (
	"bytes"
	"testing"

	"mmr/internal/topology"
)

// shardScenario runs the detScenario workload under an explicit
// workers × shards × gating combination and returns the final encoded
// fabric state. Byte equality of that blob across combinations is the
// strongest equivalence check the engine offers: it covers VC state,
// queue contents, session tables, RNG cursors, and statistics.
func shardScenario(t *testing.T, workers, shards int, noIdleSkip, withFaults bool) []byte {
	t.Helper()
	n := buildDetNetwork(t, workers, withFaults)
	defer n.Shutdown()
	n.SetShards(shards)
	n.cfg.NoIdleSkip = noIdleSkip
	n.Run(2200)
	blob, err := n.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestShardMatrixEquivalence: the shard-resident executor is bit-exact
// for every workers × shards × gating combination, clean and faulted.
// The reference is the fully serial gated run (workers=1, shards=1);
// every other combination must reproduce its encoded state byte for
// byte.
func TestShardMatrixEquivalence(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		name := "clean"
		if withFaults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			ref := shardScenario(t, 1, 1, false, withFaults)
			for _, workers := range []int{1, 2, 4} {
				for _, shards := range []int{1, 2, 4} {
					for _, noIdleSkip := range []bool{false, true} {
						if workers == 1 && shards == 1 && !noIdleSkip {
							continue // the reference itself
						}
						got := shardScenario(t, workers, shards, noIdleSkip, withFaults)
						if !bytes.Equal(ref, got) {
							t.Errorf("w=%d s=%d noIdleSkip=%v: state diverged from serial reference (%d vs %d bytes)",
								workers, shards, noIdleSkip, len(ref), len(got))
						}
					}
				}
			}
		})
	}
}

// TestBoundaryEdgeClassifier cross-checks the partition-time
// interior/boundary classification against an independent walk of the
// static wiring, on a mesh and on both region-structured fabrics.
func TestBoundaryEdgeClassifier(t *testing.T) {
	fabrics := []struct {
		name string
		tp   func() (*topology.Topology, error)
	}{
		{"mesh", func() (*topology.Topology, error) { return topology.Mesh(4, 4, 4) }},
		{"fattree", func() (*topology.Topology, error) { return topology.FatTree(4) }},
		{"dragonfly", func() (*topology.Topology, error) { return topology.Dragonfly(4, 2, 3) }},
	}
	for _, f := range fabrics {
		t.Run(f.name, func(t *testing.T) {
			tp, err := f.tp()
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(tp)
			cfg.VCs = 8
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Shutdown()
			for _, s := range []int{1, 2, 4} {
				n.SetShards(s)
				gotShards, gotInterior, gotBoundary := n.ShardLayout()
				if gotShards != s {
					t.Fatalf("SetShards(%d): ShardLayout reports %d shards", s, gotShards)
				}
				if gotInterior+gotBoundary != tp.Nodes {
					t.Fatalf("s=%d: interior %d + boundary %d != %d nodes",
						s, gotInterior, gotBoundary, tp.Nodes)
				}
				// Independent classification: a node is interior iff every
				// wired link (the wiring is symmetric, so scanning the
				// node's own ports covers both directions) stays inside
				// its shard.
				wantBoundary := 0
				for id := 0; id < tp.Nodes; id++ {
					boundary := false
					for p := 0; p < tp.Ports; p++ {
						nb := tp.Wired(id, p)
						if nb >= 0 && n.ShardOf(nb) != n.ShardOf(id) {
							boundary = true
							break
						}
					}
					if boundary {
						wantBoundary++
					}
				}
				if gotBoundary != wantBoundary {
					t.Fatalf("s=%d: ShardLayout boundary %d, wiring walk says %d",
						s, gotBoundary, wantBoundary)
				}
				if s == 1 && gotBoundary != 0 {
					t.Fatalf("single shard must have zero boundary nodes, got %d", gotBoundary)
				}
				for id := 0; id < tp.Nodes; id++ {
					if sh := n.ShardOf(id); sh < 0 || sh >= s {
						t.Fatalf("s=%d: ShardOf(%d) = %d out of range", s, id, sh)
					}
				}
			}
		})
	}
}

// TestShardsTrackWorkers: with Config.Shards unset the shard count
// follows the worker count, and the serial-fallback cutoff is derived
// from the worker count rather than a fixed constant.
func TestShardsTrackWorkers(t *testing.T) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	for _, w := range []int{1, 2, 4} {
		n.SetWorkers(w)
		if got := n.Shards(); got != w {
			t.Fatalf("workers=%d: Shards() = %d, want shards to track workers", w, got)
		}
		if got, want := n.serialCutoff(), 2*w; got != want {
			t.Fatalf("workers=%d: serialCutoff() = %d, want %d", w, got, want)
		}
	}
	// An explicit shard count decouples from workers.
	n.SetShards(3)
	n.SetWorkers(2)
	if got := n.Shards(); got != 3 {
		t.Fatalf("explicit SetShards(3) then SetWorkers(2): Shards() = %d, want 3", got)
	}
}

// TestShardLayoutString is a tiny smoke check that the layout accessors
// stay in sync with the partition for a fabric whose regions do not
// divide evenly into the shard count.
func TestShardLayoutUneven(t *testing.T) {
	tp, err := topology.Dragonfly(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	cfg.Shards = 5
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	s, interior, boundary := n.ShardLayout()
	if s != 5 {
		t.Fatalf("Config.Shards=5: ShardLayout reports %d shards", s)
	}
	counts := make([]int, s)
	for id := 0; id < tp.Nodes; id++ {
		counts[n.ShardOf(id)]++
	}
	for si, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d empty: %v", si, counts)
		}
	}
	if interior+boundary != tp.Nodes {
		t.Fatalf("interior %d + boundary %d != %d", interior, boundary, tp.Nodes)
	}
}
