// Package network assembles MMR routers into a cluster/LAN fabric: a
// topology of routers joined by flow-controlled links, host interfaces
// injecting streams and packets, EPB connection establishment reserving a
// virtual channel and bandwidth at every hop (§3.5, §4.2), per-hop
// channel mappings forwarding stream flits, and up*/down* adaptive
// routing for best-effort packets. The flit datapath is cycle-synchronous
// like the single-router engine; connection-level dynamics (arrivals,
// holding times) ride on the discrete-event engine in internal/sim.
//
// Modeling note: probe propagation contends only for control bandwidth,
// not for data flit cycles — control packets preempt data and ride the
// reconfiguration gaps (§3.4) — so establishment is evaluated against the
// instantaneous resource state, with its latency charged as
// HopLatency × hops (plus backtracks). DESIGN.md records this
// substitution.
package network

import (
	"fmt"
	"io"
	"sync"

	"mmr/internal/admission"
	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/flow"
	"mmr/internal/metrics"
	"mmr/internal/routing"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

// Config sizes a network. Router radix is Topology.Ports + 1: the extra
// port attaches the node's host interface.
type Config struct {
	Topology *topology.Topology
	Link     traffic.Link
	VCs      int // virtual channels per input port
	Depth    int // flits per VC buffer
	K        int // round multiplier (round = K × VCs cycles)

	MaxCandidates int
	Scheme        sched.PriorityScheme
	ArbiterIters  int

	// Route selects how establishment picks candidate paths.
	// RouteMinimal (the zero value) is the classic EPB search over
	// minimal paths; RouteValiant and RouteUGAL first try a multipath
	// candidate (randomized detour over the up*/down* orientation,
	// optionally load-compared against the minimal route) and fall back
	// to the EPB search when the candidate cannot reserve. The default
	// keeps establishment decisions — and therefore every golden suite —
	// bit-exact with prior versions.
	Route routing.RouteMode

	// LinkDelay is the flit propagation delay between routers in cycles;
	// HopLatency is the probe processing cost per hop during
	// establishment (routing decision + VC reservation, §3.5).
	LinkDelay  int64
	HopLatency int64

	Concurrency        float64
	EnforceAllocations bool
	Seed               uint64

	// Workers is the worker-pool size for the parallel flit cycle: the
	// fabric is partitioned into shards and each worker permanently owns
	// a block of shards — its nodes, their RNG streams, stats shards,
	// pools and staging lanes — with cross-shard traffic synchronized at
	// one sequence point per cycle, so results are bit-identical for
	// every value. 0 or 1 runs the same per-shard passes serially on the
	// stepping goroutine. See docs/performance.md ("Shard-resident
	// parallel execution").
	Workers int

	// Shards overrides the fabric partition grain: 0 (the default) uses
	// one shard per worker; s > 0 pins the partitioner to s shards
	// (clamped to the node count). Meshes partition into contiguous
	// node-ID ranges; generated fabrics (fat tree, dragonfly) partition
	// region-aligned so only core uplinks and global channels cross
	// shards. Like Workers, an execution strategy, not a model
	// parameter: bit-identical results for every value, excluded from
	// ConfigHash.
	Shards int

	// NoIdleSkip disables activity gating: every node is stepped every
	// cycle, every port is scanned, and Run never fast-forwards the clock
	// across idle gaps. Gating is bit-exact by construction (see
	// docs/performance.md, "Activity gating and idle-cycle elision"), so
	// this is a debugging escape hatch and the reference side of the
	// gating-equivalence tests, not a correctness knob.
	NoIdleSkip bool

	// Fault governs how the network reacts to injected faults (link and
	// router failures, flit impairments) — see internal/faults.
	Fault FaultPolicy
}

// FaultPolicy is the connection-survivability policy applied when a
// fault breaks established connections.
type FaultPolicy struct {
	// Restore re-establishes broken connections on a surviving path with
	// bounded, exponentially backed-off, jittered re-searches.
	Restore bool
	// MaxRetries bounds restoration (and OpenWithRetry) re-search
	// attempts after the first.
	MaxRetries int
	// RetryBackoff is the base backoff in cycles; attempt k waits
	// RetryBackoff × 2^k plus up to 50% jitter.
	RetryBackoff int64
	// Degrade downgrades a connection whose restoration failed (or was
	// disabled) to a best-effort packet flow at the same rate instead of
	// dropping the session.
	Degrade bool
	// Promote re-establishes degraded connections back to guaranteed
	// service when capacity returns (link/router repairs, closes,
	// bandwidth shrinks) — §4.3's renegotiation applied to the fault
	// lifecycle. Scans are budget-bounded and ride the serial event path
	// with jittered backoff, so the flit-cycle hot path is untouched.
	// Requires Degrade (without it nothing ever degrades).
	Promote bool
	// Paranoid audits the global resource invariants after every fault
	// transition and panics on a violation (test mode; the audit is only
	// run at transitions, so it is cheap enough to leave on).
	Paranoid bool
}

// DefaultConfig returns a workable configuration for the given topology:
// paper link geometry, 64 VCs per port, biased scheduling.
func DefaultConfig(t *topology.Topology) Config {
	return Config{
		Topology:           t,
		Link:               traffic.PaperLink,
		VCs:                64,
		Depth:              4,
		K:                  2,
		MaxCandidates:      8,
		Scheme:             sched.Biased{},
		LinkDelay:          1,
		HopLatency:         4,
		Concurrency:        2,
		EnforceAllocations: true,
		Seed:               1,
		Fault: FaultPolicy{
			Restore:      true,
			MaxRetries:   5,
			RetryBackoff: 32,
			Degrade:      true,
			Promote:      true,
			Paranoid:     true,
		},
	}
}

func (c *Config) validate() error {
	if c.Topology == nil {
		return fmt.Errorf("network: nil topology")
	}
	// Wiring connectivity, not live connectivity: a network may be built
	// while links are down (restoring a checkpoint taken mid-outage).
	if !c.Topology.WiredConnected() {
		return fmt.Errorf("network: topology not connected")
	}
	if c.VCs < 1 || c.Depth < 1 || c.K < 1 {
		return fmt.Errorf("network: invalid buffering VCs=%d depth=%d K=%d", c.VCs, c.Depth, c.K)
	}
	if c.MaxCandidates < 1 {
		return fmt.Errorf("network: need at least one candidate")
	}
	if c.LinkDelay < 0 || c.HopLatency < 0 {
		return fmt.Errorf("network: negative latency")
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("network: concurrency factor < 1")
	}
	return nil
}

// hostPort returns the port index used by a node's host interface.
func (c *Config) hostPort() int { return c.Topology.Ports }

// radix returns the router degree including the host port.
func (c *Config) radix() int { return c.Topology.Ports + 1 }

// linkFlit is a flit in flight on an inter-router link, addressed to a
// reserved VC on the far input port.
type linkFlit struct {
	arriveAt int64
	vc       int
	f        *flit.Flit
}

// upRef points at the upstream buffer slot a flit occupied before this
// hop, so draining it returns a credit there (link-level VC flow control).
// Packed to 8 bytes: a fabric holds radix×VCs of these per router, so at
// datacenter scale (4k routers × 33 ports × 64 VCs) the upstream tables
// alone are ~8.6M entries — int32/int16 fields cut them 3× versus three
// ints while still covering 2³¹ nodes and 2¹⁵ ports/VCs.
type upRef struct {
	node     int32
	port, vc int16
}

// noUpstream marks VCs fed directly by a host interface.
var noUpstream = upRef{node: -1}

// inEdge is one precomputed wired inbound link of a node: the peer that
// feeds local input port `port`, and the flat index of the peer's
// outbound lane pair in the network's lane arrays. Wiring is immutable
// after construction (faults only flip live/up state), so these lists are
// built once and let every per-cycle scan — activity, delivery, claim
// commit — stream the lane arrays without topology lookups or per-node
// pointer chasing.
type inEdge struct {
	lane     int32 // peer's lane segment index: peer*laneStride + peerPort
	port     int32 // local input port fed by this edge
	peer     int32 // wired upstream node
	peerPort int32 // peer's output port (its lane slot within the segment)
}

// occStride spaces the per-node occupancy counters one cache line apart
// so parallel workers bumping neighbors' counters never share a line.
const occStride = 8

// node is one router plus its host interface. Beyond the router state it
// carries everything one shard of the parallel cycle needs without
// touching shared mutables: a deterministic RNG stream, a flit pool, a
// statistics shard, outbound staging lanes and scratch buffers.
type node struct {
	id    int
	mems  []*vcm.Memory // per input port
	links []*sched.LinkScheduler
	alloc []*admission.LinkAllocator // per output port
	cmap  *routing.ChannelMap
	arb   sched.SwitchScheduler

	// shadow[p] is the credit view the link scheduler of input port p
	// ANDs with flits_available: one bit per local input VC, mirroring
	// the downstream buffer that VC's flits move into. Stream VCs track
	// the reserved next-hop VC; packet VCs stay full (their next-hop VC
	// is reserved per packet at transmit time, §3.4).
	shadow []*flow.Credits

	// upstream[p][v] says where to return a credit when a flit pops from
	// input port p, VC v.
	upstream [][]upRef

	// Outbound staging lanes, one per port. pipes[p] holds flits sent
	// from output port p toward Wired(id, p); credOut[p] holds credits
	// returning to Wired(id, p), the node feeding input port p. This
	// node is the only writer (commit phase); the wired peer is the only
	// reader (its next delivery phase). Both are subslice views into the
	// network's flat lane arrays (SoA layout; see Network.laneFlits).
	pipes   []flitLane
	credOut []creditLane

	// in lists this node's wired inbound edges in ascending input-port
	// order; outPeer[p] is the node wired at output port p (-1 unwired).
	// Precomputed at construction — wiring never changes.
	in      []inEdge
	outPeer []int32

	// dropCredits stages credits synthesized by impairment drops during
	// the delivery phase (the lane owner may be draining concurrently);
	// flushed to credOut at the start of the commit phase.
	dropCredits []stagedCredit

	// claim[p] stages this node's packet VC claim on the router wired at
	// output port p (written during scheduling, read by that router
	// during its commit phase). A subslice view into Network.claims.
	claim []claimSlot

	// grantVC[in] is the resolved target VC for input in's grant this
	// cycle: a VC index, grantEject, or grantSkip.
	grantVC []int

	cands  [][]sched.Candidate
	grants []int

	// Parallel-cycle per-node state: a decorrelated RNG stream (seeded
	// from the master seed + node index), a private flit pool (flits are
	// Get from the injecting node's pool and Put by whichever node
	// retires them — ownership moves with the flit across lane commits),
	// a statistics shard merged in ascending node order at snapshot, and
	// routing scratch.
	rng          *sim.RNG
	pool         *flit.Pool
	stats        dpStats
	tstats       tenantNodeStats // per-tenant delivery shard (tenantstats.go)
	scratchPorts []int
	pktSeq       int64 // per-node best-effort sequence counter

	// Observability: this node's metric shard (written only by the
	// goroutine stepping the node, like the stats shard) and its flight
	// recorder.
	ms  *metrics.Shard
	rec *metrics.Recorder

	// Host-side injectors homed on this node (sources bound to this
	// node's RNG stream; ticked only by this node's shard).
	srcConns []*Conn
	beSrc    []*beFlow

	// lastRound is the most recent round whose boundary reset this node
	// applied. Round boundaries are applied lazily at the node's next
	// wake-up (phaseDeliver), which is equivalent to the every-cycle
	// modulo check because an idle node's Serviced counters and excess
	// election are frozen and unread until it wakes.
	lastRound int64
}

// Sentinels for node.grantVC.
const (
	grantEject = -1 // granted to the host port: eject locally
	grantSkip  = -2 // grant abandoned (dead link, no downstream VC)
)

// Conn is an established end-to-end connection.
type Conn struct {
	ID         flit.ConnID
	Src, Dst   int
	Tenant     string // admission-quota owner ("" = default tenant, unlimited)
	Spec       traffic.ConnSpec
	Path       []routing.PathHop // (node, outPort) hops, src router → dst router
	VCs        []routing.VCRef   // reserved input (port, VC) at each router on the path
	Nodes      []int             // router sequence src → dst (len(Path)+1 entries)
	SetupTime  int64             // cycles spent establishing (probe + ack)
	Backtracks int

	// Fault lifecycle. A connection broken by a fault has its resources
	// fully released; restoration re-runs establishment on the surviving
	// topology and revives the same Conn (same ID, same flit sequence).
	Restores int  // successful re-establishments after faults
	Degraded bool // downgraded to a best-effort flow after restoration failed

	src      traffic.Source
	niQueue  flit.Ring
	nextSeq  int64
	open     bool  // injection enabled
	closed   bool  // resources released
	broken   bool  // torn down by a fault; restoration may be pending
	lost     bool  // restoration exhausted and degradation disabled
	brokenAt int64 // cycle of the most recent fault teardown

	// Activity gating (see datapath.go): lastTick is the last cycle the
	// source was ticked, so a wake-up after skipped cycles can replay the
	// provably-silent gap Ticks in order; nextDue caches the source's
	// forecast next event so idle cycles need no per-conn work at all.
	lastTick int64
	nextDue  int64

	// dstSlot is this connection's index in the destination node's jitter
	// tracker. Slots are per-destination (assigned in establishment order
	// at each dst), so tracker arrays scale with the sessions actually
	// terminating at a node instead of the global session count. -1 until
	// assigned.
	dstSlot int32

	// tenantSlot is the dense index of this connection's tenant in the
	// per-tenant telemetry shards (tenantstats.go), assigned alongside
	// dstSlot so the ejecting node attributes delivered flits with one
	// flat-array index.
	tenantSlot int32
}

// Open reports whether the connection currently carries guaranteed
// traffic (established and not broken, closed, or degraded).
func (c *Conn) Open() bool { return c.open && !c.closed }

// Broken reports whether the connection is currently torn down by a
// fault with restoration pending or abandoned.
func (c *Conn) Broken() bool { return c.broken }

// Closed reports whether the connection was closed — gracefully, or by
// retiring a degraded session's best-effort fallback flow.
func (c *Conn) Closed() bool { return c.closed }

// Lost reports whether the connection was abandoned: restoration
// exhausted its retries and degradation was disabled.
func (c *Conn) Lost() bool { return c.lost }

// Network is the multi-router simulation.
type Network struct {
	cfg   Config
	rng   *sim.RNG
	dists *routing.Dists
	ud    *routing.UpDown
	mp    *routing.Multipath
	nodes []*node
	now   int64

	conns   []*Conn
	beFlows []*beFlow
	// nextFlowID is the next best-effort flow owner handle; IDs start at
	// 1 and are never reused (checkpointed, so restored fabrics keep
	// issuing unique handles).
	nextFlowID FlowID
	events     *sim.Engine // session-level dynamics

	// Durable-event journal (durable.go): every event the control plane
	// schedules through scheduleDurable is mirrored here, keyed by the
	// engine's insertion sequence number, so a checkpoint can serialize
	// the pending-event queue as plain data and a restore can re-insert
	// it in the original FIFO order. faultSchedule is the expanded fault
	// plan durFault events index into; openRetries carries the pending
	// OpenWithRetry state durOpenRetry events resolve against.
	durables      map[uint64]*durableEvent
	faultSchedule []faults.Event
	openRetries   map[int64]*openRetry
	nextOpenID    int64

	// Re-promotion state (promote.go). promoteGen is bumped on every
	// capacity-returning trigger so a stale journaled scan no-ops instead
	// of firing with an outdated backoff position; degradedLive counts
	// sessions currently degraded and not closed, so triggers on the
	// close-heavy path are O(1) when nothing is degraded; promoteScratch
	// is the reusable candidate buffer of the (rare) scan events.
	promoteGen     int64
	degradedLive   int
	promoteScratch []*Conn

	// tenants is the per-tenant admission quota/usage table (see
	// internal/admission). Quotas are runtime state (set through the
	// daemon API), not configuration: they ride the checkpoint payload,
	// not the config hash.
	tenants *admission.TenantTable

	// Per-tenant delivery telemetry (tenantstats.go): dense tenant slots
	// assigned on the serial control path, per-node shards merged at
	// gather time through the metrics snapshot appender.
	tenantSlots map[string]int32
	tenantNames []string

	// Fault-injection runtime: per-directed-link impairments, in-flight
	// probe count (transient VC holds the invariant checker must allow),
	// and the session event log.
	impair       map[[2]int]faults.Impairment
	activeProbes int
	sessionLog   []SessionEvent

	// batch is the reusable scratch for OpenBatch (batch.go): search
	// state, reservation stack, admission pre-check tables and the
	// Conn/path arenas. Lazily created, reused across batches.
	batch *batchState

	m netStats

	// Observability layer (observe.go): metric handles + registry, and
	// the sink automatic flight-recorder dumps go to.
	nm         *netMetrics
	flightSink io.Writer

	// Shard-resident worker pool (see workers.go). workers <= 1 means
	// the per-shard passes run inline on the stepping goroutine. cycMode,
	// cycT and cycAll are published before the per-cycle wake sends,
	// which happen-before the workers' reads; wwg is the end-of-cycle
	// join, midwg the split cycle's single mid-cycle sequence point and
	// midwg2 the extra deliver→schedule point of impaired cycles.
	workers int
	wake    []chan struct{}
	wwg     sync.WaitGroup
	midwg   sync.WaitGroup
	midwg2  sync.WaitGroup
	cycMode int
	cycT    int64
	cycAll  bool

	// Shard partition and ownership (workers.go, partition). shardsReq
	// is the requested shard count (0 = track the worker count);
	// interior[id] means every wired edge of node id stays inside its
	// shard, and allBoundary counts the nodes where that fails — the
	// per-cycle mode selection compares the active boundary count
	// against zero to run barrier-free interior cycles.
	shardsReq   int
	numShards   int
	shardOf     []int32
	workerOf    []int32
	interior    []bool
	allBoundary int
	wrk         []workerRun

	// Structure-of-arrays datapath state (docs/performance.md,
	// "Structure-of-arrays datapath"). The cross-node staging lanes and
	// claim slots live in network-owned flat arrays indexed
	// node*laneStride+port; each node's pipes/credOut/claim fields are
	// subslice views into its own segment, so phase code keeps its
	// per-node slice form while the whole-fabric scans (nodeActive,
	// nextWake) stream contiguous memory. occ[id*occStride] aggregates
	// the buffered-flit count across all of a node's ports, maintained
	// incrementally by the VCMs (vcm.BindOccupancy), turning the
	// hottest activity check into a single flat-array load.
	laneStride int
	laneFlits  []flitLane
	laneCreds  []creditLane
	claims     []claimSlot
	occ        []int64

	// Activity-gating stamps (datapath.go). A stamp equal to the current
	// cycle marks membership (no per-cycle clearing): actStamp marks the
	// active set (the per-worker act lists hold the members), extraStamp
	// deduplicates gated-out claim receivers recorded during scheduling.
	actStamp   []int64
	extraStamp []int64

	// idleSkipped counts cycles Run elided via whole-clock fast-forward;
	// drainCycles counts cycles executed inside the fused drain kernel
	// (diagnostics only; results are independent of both by construction).
	idleSkipped int64
	drainCycles int64
}

// SessionEvent records one connection- or fault-level transition for
// post-mortem analysis of a run.
type SessionEvent struct {
	Cycle      int64
	Kind       string // link-down, link-up, router-down, router-up, conn-broken, conn-restored, conn-degraded, conn-promoted, conn-lost
	Conn       flit.ConnID
	Node, Port int
	Detail     string
}

// SessionEvents returns the fault/connection transition log.
func (n *Network) SessionEvents() []SessionEvent { return n.sessionLog }

func (n *Network) logEvent(e SessionEvent) {
	e.Cycle = n.now
	n.sessionLog = append(n.sessionLog, e)
}

// New builds a network over cfg.Topology.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sched.Biased{}
	}
	n := &Network{
		cfg:         cfg,
		rng:         sim.NewRNG(cfg.Seed),
		dists:       routing.NewDists(cfg.Topology),
		events:      sim.NewEngine(),
		impair:      map[[2]int]faults.Impairment{},
		durables:    map[uint64]*durableEvent{},
		openRetries: map[int64]*openRetry{},
		tenants:     admission.NewTenantTable(),
	}
	n.ud = routing.NewUpDown(cfg.Topology, n.dists)
	n.mp = routing.NewMultipath(cfg.Topology, n.dists, n.ud)
	radix := cfg.radix()
	vcmCfg := vcm.Config{
		VirtualChannels: cfg.VCs, Depth: cfg.Depth,
		Banks: 8, PhitsPerFlit: cfg.Link.PhitsPerFlit(), PhitBufferDepth: 2 * cfg.Link.PhitsPerFlit(),
	}
	roundLen := cfg.K * cfg.VCs
	nNodes := cfg.Topology.Nodes

	// Flat SoA backings shared by every node (see the Network field docs).
	// The lane stride is the radix rounded up to an even count so each
	// node's lane segment starts cache-line aligned relative to the last.
	n.laneStride = (radix + 1) &^ 1
	n.laneFlits = make([]flitLane, nNodes*n.laneStride)
	n.laneCreds = make([]creditLane, nNodes*n.laneStride)
	n.claims = make([]claimSlot, nNodes*n.laneStride)
	for i := range n.claims {
		n.laneFlits[i].nextAt = laneIdle
		n.laneCreds[i].nextAt = laneIdle
		n.claims[i].vc = -1
	}
	n.occ = make([]int64, nNodes*occStride)

	for id := 0; id < nNodes; id++ {
		nd := &node{
			id:        id,
			cmap:      routing.NewChannelMap(radix, cfg.VCs),
			rng:       sim.NewStreamRNG(cfg.Seed, uint64(id)),
			pool:      flit.NewPool(),
			lastRound: -1,
		}
		nd.stats.init()
		// Per-node contiguous blocks: all ports' VC memories, link
		// schedulers, shadow credit counters and upstream references for
		// one node are single allocations, so the per-cycle port scans
		// walk adjacent memory instead of chasing per-port heap objects.
		memArr := make([]vcm.Memory, radix)
		lsArr := make([]sched.LinkScheduler, radix)
		credCounts := make([]int, radix*cfg.VCs)
		ups := make([]upRef, radix*cfg.VCs)
		for i := range ups {
			ups[i] = noUpstream
		}
		for p := 0; p < radix; p++ {
			if err := vcm.Init(&memArr[p], vcmCfg); err != nil {
				return nil, err
			}
			memArr[p].BindOccupancy(&n.occ[id*occStride])
			nd.mems = append(nd.mems, &memArr[p])
			a, err := admission.NewLinkAllocator(roundLen, 0, cfg.Concurrency)
			if err != nil {
				return nil, err
			}
			nd.alloc = append(nd.alloc, a)
			nd.shadow = append(nd.shadow, flow.NewCreditsBacked(cfg.Depth, credCounts[p*cfg.VCs:(p+1)*cfg.VCs:(p+1)*cfg.VCs]))
			nd.upstream = append(nd.upstream, ups[p*cfg.VCs:(p+1)*cfg.VCs:(p+1)*cfg.VCs])
		}
		base := id * n.laneStride
		nd.pipes = n.laneFlits[base : base+radix : base+radix]
		nd.credOut = n.laneCreds[base : base+radix : base+radix]
		nd.claim = n.claims[base : base+radix : base+radix]
		nd.grantVC = make([]int, radix)
		for p := 0; p < radix; p++ {
			sched.InitLinkScheduler(&lsArr[p], sched.LinkConfig{
				Input:         p,
				MaxCandidates: cfg.MaxCandidates,
				Scheme:        cfg.Scheme,
				RNG:           nd.rng,
				NoEnforce:     !cfg.EnforceAllocations,
			}, nd.mems[p], nd.shadow[p])
			nd.links = append(nd.links, &lsArr[p])
		}
		nd.arb = sched.NewPriorityArbiter(cfg.ArbiterIters)
		nd.cands = make([][]sched.Candidate, radix)
		nd.grants = make([]int, radix)
		n.nodes = append(n.nodes, nd)
	}

	// Precompute each node's wired inbound edges and output peers. Raw
	// wiring never changes after construction (faults only flip link/router
	// live state), so these lists replace per-cycle topology lookups in
	// the delivery, claim-commit and activity scans.
	for _, nd := range n.nodes {
		nd.outPeer = make([]int32, radix)
		for p := range nd.outPeer {
			nd.outPeer[p] = -1
		}
		for q := 0; q < cfg.Topology.Ports; q++ {
			x := cfg.Topology.Wired(nd.id, q)
			if x < 0 {
				continue
			}
			xp := cfg.Topology.WiredPeer(nd.id, q)
			nd.outPeer[q] = int32(x)
			nd.in = append(nd.in, inEdge{
				lane:     int32(x*n.laneStride + xp),
				port:     int32(q),
				peer:     int32(x),
				peerPort: int32(xp),
			})
		}
	}
	n.actStamp = make([]int64, len(n.nodes))
	n.extraStamp = make([]int64, len(n.nodes))
	for i := range n.actStamp {
		n.actStamp[i] = -1
		n.extraStamp[i] = -1
	}
	n.initMetrics()
	n.shardsReq = cfg.Shards
	n.SetWorkers(cfg.Workers)
	if len(n.wrk) == 0 {
		n.partition() // SetWorkers(<=1) on a fresh network early-outs via Shutdown
	}
	return n, nil
}

// assignTrackerSlot gives a newly established connection its slot in the
// destination node's jitter tracker. Only the ejecting node ever records
// a stream connection's flits, so per-conn accumulators live solely at
// the destination, and slots are numbered per destination in
// establishment order: a node's tracker arrays scale with the sessions
// that actually terminate there, not the global session count —
// essential once one fabric carries ~10⁶ sessions across thousands of
// routers. Restoration replays connections in ID order, which reproduces
// the per-dst assignment order and therefore the same slots.
func (n *Network) assignTrackerSlot(c *Conn) {
	c.tenantSlot = n.tenantSlotFor(c.Tenant)
	if c.dstSlot >= 0 {
		return // restoration revives the conn; its slot is permanent
	}
	tr := n.nodes[c.Dst].stats.tracker
	c.dstSlot = int32(tr.NumConns())
	tr.Grow(tr.NumConns() + 1)
}

// terminal reports a connection that can never inject again: gracefully
// closed, degraded to a best-effort flow, or lost. Broken connections
// awaiting restoration are not terminal — restoreAttempt revives them in
// place, relying on their srcConns membership.
func (c *Conn) terminal() bool { return c.closed || c.lost || c.Degraded }

// dropSrcConn removes a terminal connection from its source node's
// injector list, preserving the relative order of the remaining entries
// (injection iterates this list, so its live order is part of
// determinism). The global conns registry stays append-only — IDs index
// into it — but the per-node scan lists must track live sessions only,
// or every cycle pays for the full session history.
func (n *Network) dropSrcConn(c *Conn) {
	nd := n.nodes[c.Src]
	for i, x := range nd.srcConns {
		if x == c {
			nd.srcConns = append(nd.srcConns[:i], nd.srcConns[i+1:]...)
			return
		}
	}
}

// insertSrcConn re-adds a revived (promoted) connection to its source
// node's injector list at its ID-sorted position. Live lists are always
// ID-ascending — Opens append in ID order and dropSrcConn preserves
// relative order — and checkpoint restore rebuilds them by iterating
// conns in ID order, so a plain append here would make a promoted
// fabric inject in a different order than its restored twin and break
// bit-exactness.
func (n *Network) insertSrcConn(c *Conn) {
	nd := n.nodes[c.Src]
	i := len(nd.srcConns)
	for i > 0 && nd.srcConns[i-1].ID > c.ID {
		i--
	}
	nd.srcConns = append(nd.srcConns, nil)
	copy(nd.srcConns[i+1:], nd.srcConns[i:])
	nd.srcConns[i] = c
}

// Tenants exposes the per-tenant admission quota table. Mutate it only
// from the serial control path (between steps, or on the daemon's
// fabric goroutine).
func (n *Network) Tenants() *admission.TenantTable { return n.tenants }

// issueFlowID mints the next best-effort flow owner handle.
func (n *Network) issueFlowID() FlowID {
	n.nextFlowID++
	return n.nextFlowID
}

// removeBEFlowAt unregisters beFlows[i]: queued NI packets return to the
// source node's pool, and the flow leaves both the global registry and
// its source node's injector list.
func (n *Network) removeBEFlowAt(i int) {
	bf := n.beFlows[i]
	pool := n.nodes[bf.src].pool
	for bf.niQueue.Len() > 0 {
		pool.Put(bf.niQueue.Pop())
	}
	n.beFlows = append(n.beFlows[:i], n.beFlows[i+1:]...)
	nd := n.nodes[bf.src]
	for j, x := range nd.beSrc {
		if x == bf {
			nd.beSrc = append(nd.beSrc[:j], nd.beSrc[j+1:]...)
			break
		}
	}
}

// dropBEFlow retires the best-effort fallback flow owned by a degraded
// connection: the generator stops and packets still queued at the source
// interface are counted lost (flits already in the fabric drain
// normally — best-effort packets hold no reserved resources). Reports
// whether a flow was found.
func (n *Network) dropBEFlow(id flit.ConnID) bool {
	for i, bf := range n.beFlows {
		if bf.conn != id {
			continue
		}
		n.m.faultFlitsLost += int64(bf.niQueue.Len())
		n.removeBEFlowAt(i)
		return true
	}
	return false
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current flit cycle.
func (n *Network) Now() int64 { return n.now }

// Nodes returns the number of routers.
func (n *Network) Nodes() int { return len(n.nodes) }

// Events exposes the session-level event engine (for scheduling
// connection arrivals/teardowns in examples and experiments).
func (n *Network) Events() *sim.Engine { return n.events }

// Schedule runs fn when the network clock reaches the given absolute
// cycle — the convenient form of session-level events (connection
// arrivals, holding-time expirations).
func (n *Network) Schedule(cycle int64, fn func()) {
	n.events.At(sim.Time(cycle), sim.EventFunc(func(sim.Time) { fn() }))
}

// Stats returns a snapshot of the network statistics: the session-level
// counters plus every node shard merged in ascending node order (the
// fixed merge order keeps snapshots bit-identical across worker counts).
func (n *Network) Stats() *Stats { return n.snapshotStats() }

// Conns returns all connections ever opened (including closed ones).
func (n *Network) Conns() []*Conn { return n.conns }

// FreeVCsAt reports the unreserved virtual channels on a node's input
// port — the resource a probe checks before advancing (§3.5).
func (n *Network) FreeVCsAt(node, port int) int {
	return n.nodes[node].mems[port].FreeVCs()
}

// GuaranteedLoadAt reports the guaranteed-bandwidth fraction allocated on
// a node's output port.
func (n *Network) GuaranteedLoadAt(node, port int) float64 {
	return n.nodes[node].alloc[port].GuaranteedLoad()
}
