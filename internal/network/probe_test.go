package network

import (
	"testing"

	"mmr/internal/flit"
	"mmr/internal/topology"
	"mmr/internal/traffic"
	"mmr/internal/vcm"
)

func TestOpenAsyncEstablishes(t *testing.T) {
	n := meshNet(t, 3, 3)
	var got *Conn
	var gotErr error
	if err := n.OpenAsync(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 55 * traffic.Mbps},
		func(c *Conn, err error) { got, gotErr = c, err }); err != nil {
		t.Fatal(err)
	}
	// Nothing established yet — the probe is in flight.
	if got != nil {
		t.Fatal("connection established instantaneously")
	}
	// Probe: 4 hops forward + 4 ack hops at HopLatency=4 → ~32 cycles.
	n.Run(100)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got == nil {
		t.Fatal("probe never completed")
	}
	if len(got.Path) != 4 {
		t.Fatalf("path length %d, want 4", len(got.Path))
	}
	if got.SetupTime < 2*4*int64(len(got.Path)-1) {
		t.Fatalf("setup time %d too small for probe+ack at HopLatency", got.SetupTime)
	}
	// The connection now carries traffic.
	n.Run(20_000)
	if n.Stats().FlitsDelivered == 0 {
		t.Fatal("async-established connection delivered nothing")
	}
}

func TestOpenAsyncValidation(t *testing.T) {
	n := meshNet(t, 2, 2)
	if err := n.OpenAsync(0, 0, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}, nil); err == nil {
		t.Fatal("same-node accepted")
	}
	if err := n.OpenAsync(-1, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}, nil); err == nil {
		t.Fatal("bad endpoint accepted")
	}
	if err := n.OpenAsync(0, 1, traffic.ConnSpec{Class: flit.ClassBestEffort}, nil); err == nil {
		t.Fatal("non-stream accepted")
	}
}

func TestOpenAsyncFailureReleasesResources(t *testing.T) {
	tp, _ := topology.Mesh(2, 1, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 2
	n, _ := New(cfg)
	// Fill both link VCs synchronously.
	for i := 0; i < 2; i++ {
		if _, err := n.Open(0, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}); err != nil {
			t.Fatal(err)
		}
	}
	failed := false
	n.OpenAsync(0, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps},
		func(c *Conn, err error) { failed = err != nil })
	n.Run(200)
	if !failed {
		t.Fatal("probe should have failed on a VC-saturated link")
	}
	// Allocator state must reflect exactly the two live connections.
	if got := n.nodes[0].alloc[0].Connections(); got != 2 {
		t.Fatalf("allocator holds %d connections, want 2", got)
	}
	st := n.Stats()
	if st.SetupRejected != 1 || st.SetupAccepted != 2 {
		t.Fatalf("setup accounting wrong: %+v", st)
	}
}

func TestOpenAsyncProbesRace(t *testing.T) {
	// Two probes launched the same cycle race for the last VC of a
	// single-link network: exactly one must win.
	tp, _ := topology.Mesh(2, 1, 4)
	cfg := DefaultConfig(tp)
	cfg.VCs = 1
	n, _ := New(cfg)
	var ok, fail int
	done := func(c *Conn, err error) {
		if err != nil {
			fail++
		} else {
			ok++
		}
	}
	n.OpenAsync(0, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}, done)
	n.OpenAsync(0, 1, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps}, done)
	n.Run(200)
	if ok != 1 || fail != 1 {
		t.Fatalf("race outcome ok=%d fail=%d, want exactly one winner", ok, fail)
	}
}

func TestOpenAsyncBacktracksAndSucceeds(t *testing.T) {
	// 3x3 mesh with the east-side VCs of node 0 saturated: the probe
	// toward node 8 must route around (or backtrack) and still succeed.
	n := meshNet(t, 3, 3)
	// Saturate the input VCs of node 1's west port (fed by node 0 east).
	pp := n.cfg.Topology.PeerPort(0, 0)
	mem := n.nodes[1].mems[pp]
	for vc := 0; vc < n.cfg.VCs; vc++ {
		if !mem.State(vc).InUse {
			mem.Reserve(vc, vcmHold())
		}
	}
	var got *Conn
	n.OpenAsync(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Mbps},
		func(c *Conn, err error) { got = c })
	n.Run(400)
	if got == nil {
		t.Fatal("probe failed despite an available southern route")
	}
	if got.Path[0].Port == 0 {
		t.Fatal("probe claims to have used the saturated east link")
	}
	// Clean up reservation so Close paths remain exercised elsewhere.
	_ = got
}

func TestAsyncAndSyncCoexist(t *testing.T) {
	n := meshNet(t, 3, 3)
	completed := 0
	for i := 0; i < 4; i++ {
		src, dst := i, 8-i
		n.OpenAsync(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps},
			func(c *Conn, err error) {
				if err == nil {
					completed++
				}
			})
	}
	if _, err := n.Open(1, 7, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 10 * traffic.Mbps}); err != nil {
		t.Fatal(err)
	}
	n.Run(10_000)
	if completed != 4 {
		t.Fatalf("only %d/4 async setups completed", completed)
	}
	if n.Stats().FlitsDelivered == 0 {
		t.Fatal("mixed connections delivered nothing")
	}
}

// vcmHold returns a placeholder reservation used to saturate VCs in tests.
func vcmHold() vcm.VCState {
	return vcm.VCState{Conn: flit.InvalidConn, Class: flit.ClassControl, Output: -1}
}
