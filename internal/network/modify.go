package network

import (
	"fmt"

	"mmr/internal/flit"
	"mmr/internal/traffic"
)

// ModifyBandwidth renegotiates an established CBR connection's rate in
// place — the network-level form of §4.3's dynamic bandwidth
// management (the single-router Router.SetBandwidth). Admission runs on
// the delta at every output along the path, so shrinking always
// succeeds and growth faces the same §4.2 test as establishment; a
// rejection at any hop rolls the earlier hops back and leaves the
// connection untouched. On success the per-hop scheduling state
// (allocation, inter-arrival spacing) and the source's injection rate
// switch to the new rate from the next cycle.
func (n *Network) ModifyBandwidth(c *Conn, rate traffic.Rate) error {
	// Each refusal names the actual lifecycle state, so a caller can tell
	// "retry later" (broken: restoration is pending) from "renegotiate the
	// session" (degraded: no guaranteed path exists to modify) from
	// "give up" (closed/lost).
	switch {
	case c == nil:
		return fmt.Errorf("network: ModifyBandwidth on nil connection")
	case c.closed:
		return fmt.Errorf("network: connection %d is closed", c.ID)
	case c.lost:
		return fmt.Errorf("network: connection %d was lost (restoration exhausted)", c.ID)
	case c.Degraded:
		return fmt.Errorf("network: connection %d is degraded to best-effort; it holds no guaranteed path to modify (re-promotion will restore one when capacity returns)", c.ID)
	case c.broken:
		return fmt.Errorf("network: connection %d is fault-broken; restoration is pending, retry after it completes", c.ID)
	case !c.open:
		return fmt.Errorf("network: connection %d is not open", c.ID)
	}
	if c.Spec.Class != flit.ClassCBR {
		return fmt.Errorf("network: ModifyBandwidth supports CBR connections, got %v", c.Spec.Class)
	}
	if rate <= 0 {
		return fmt.Errorf("network: invalid rate %v", rate)
	}
	oldSpec := c.Spec
	newSpec := oldSpec
	newSpec.Rate = rate
	dOld := n.demandFor(oldSpec)
	dNew := n.demandFor(newSpec)
	delta := dNew.alloc - dOld.alloc

	// Growth is charged against the tenant's guaranteed-bandwidth budget
	// before any link register is touched; shrinking refunds it.
	if !n.tenants.AdjustGuaranteed(c.Tenant, delta) {
		n.m.setupRejected++
		return fmt.Errorf("network: tenant %q over guaranteed-bandwidth quota growing connection %d to %v", c.Tenant, c.ID, rate)
	}

	// The connection holds bandwidth on each hop's output plus the
	// destination host port — the same set establishment admitted on.
	type out struct{ node, port int }
	outs := make([]out, 0, len(c.Path)+1)
	for _, h := range c.Path {
		outs = append(outs, out{h.Node, h.Port})
	}
	outs = append(outs, out{c.Dst, n.cfg.hostPort()})
	for i, o := range outs {
		if !n.nodes[o.node].alloc[o.port].AdjustCBR(delta) {
			for _, u := range outs[:i] {
				n.nodes[u.node].alloc[u.port].AdjustCBR(-delta)
			}
			n.tenants.AdjustGuaranteed(c.Tenant, -delta)
			n.m.setupRejected++
			return fmt.Errorf("network: output %d:%d cannot grow connection %d to %v", o.node, o.port, c.ID, rate)
		}
	}

	c.Spec = newSpec
	roundLen := n.cfg.K * n.cfg.VCs
	interval := float64(roundLen) / float64(dNew.alloc)
	for i, ref := range c.VCs {
		st := n.nodes[c.Nodes[i]].mems[ref.Port].State(ref.VC)
		st.Allocated = dNew.alloc
		st.Peak = dNew.peak
		st.InterArrival = interval
	}
	if src, ok := c.src.(*traffic.CBRSource); ok {
		st := src.ExportState()
		st.PerCycle = n.cfg.Link.FlitsPerCycle(rate)
		src.RestoreState(st)
	}
	// The old forecast was computed at the old rate; wake the source on
	// the next cycle so it is recomputed. (Identical under every
	// execution strategy: the gated and ungated paths both refresh a due
	// forecast on the next injection pass.)
	c.nextDue = n.now

	n.logEvent(SessionEvent{Kind: "conn-modified", Conn: c.ID, Node: c.Src, Port: -1,
		Detail: fmt.Sprintf("rate %v -> %v", oldSpec.Rate, rate)})
	n.recordFlight(c.Src, evConnModified, int32(c.Dst), int32(dNew.alloc), int64(c.ID))
	if n.cfg.Fault.Paranoid {
		n.mustInvariants()
	}
	if delta < 0 {
		// Shrinking frees guaranteed cycles along the path — capacity a
		// degraded session's re-promotion may now fit into.
		n.schedulePromotion()
	}
	return nil
}
