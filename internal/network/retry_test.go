package network

import (
	"strings"
	"testing"

	"mmr/internal/topology"
	"mmr/internal/traffic"

	"mmr/internal/flit"
)

// retryNet builds a tiny mesh with the given retry policy.
func retryNet(t *testing.T, maxRetries int, backoff int64) *Network {
	t.Helper()
	tp, err := topology.Mesh(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 21
	cfg.Fault = FaultPolicy{MaxRetries: maxRetries, RetryBackoff: backoff}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// pendingOpenRetry returns the single journaled durOpenRetry event, or
// nil if none is pending.
func pendingOpenRetry(t *testing.T, n *Network) *durableEvent {
	t.Helper()
	var found *durableEvent
	for _, ev := range n.durables {
		if ev.kind != durOpenRetry {
			continue
		}
		if found != nil {
			t.Fatalf("two open retries journaled at once")
		}
		found = ev
	}
	return found
}

// TestOpenWithRetryBackoff drives an admission request that can never
// succeed (its rate exceeds the link) through the full retry sequence
// and checks the contract precisely: one synchronous attempt plus
// MaxRetries journaled re-searches, each delayed by base<<attempt plus
// jitter strictly within [0, 50%) of that bound, and a single terminal
// callback carrying the admission error.
func TestOpenWithRetryBackoff(t *testing.T) {
	const maxRetries = 4
	const backoff = int64(16)
	n := retryNet(t, maxRetries, backoff)
	defer n.Shutdown()
	n.Run(100)

	impossible := traffic.ConnSpec{Class: flit.ClassCBR, Rate: 2 * n.cfg.Link.Bandwidth}
	var doneConn *Conn
	var doneErr error
	calls := 0
	before := n.Stats().SetupAttempts
	if err := n.OpenWithRetry(0, 3, impossible, func(c *Conn, err error) {
		calls++
		doneConn, doneErr = c, err
	}); err != nil {
		t.Fatalf("OpenWithRetry returned a synchronous error for a retryable failure: %v", err)
	}

	for attempt := 0; attempt < maxRetries; attempt++ {
		ev := pendingOpenRetry(t, n)
		if ev == nil {
			t.Fatalf("attempt %d: no retry journaled", attempt)
		}
		delay := ev.at - n.Now()
		base := backoff << attempt
		if delay < base || delay >= base+base/2 {
			t.Fatalf("attempt %d: delay %d outside jitter window [%d, %d)", attempt, delay, base, base+base/2)
		}
		if calls != 0 {
			t.Fatalf("done callback fired before the attempt budget was exhausted")
		}
		n.Run(delay + 1)
	}

	if ev := pendingOpenRetry(t, n); ev != nil {
		t.Fatalf("retry journaled past the attempt budget (at cycle %d)", ev.at)
	}
	if calls != 1 || doneConn != nil || doneErr == nil {
		t.Fatalf("done: calls=%d conn=%v err=%v, want exactly one failure callback", calls, doneConn, doneErr)
	}
	if got := n.Stats().SetupAttempts - before; got != maxRetries+1 {
		t.Fatalf("%d setup attempts, want %d (1 synchronous + %d retries)", got, maxRetries+1, maxRetries)
	}
	if len(n.openRetries) != 0 {
		t.Fatalf("open-retry registry leaked %d entries", len(n.openRetries))
	}
}

// TestOpenWithRetryImmediateSuccess: an admissible request completes
// synchronously — callback fired before return, nothing journaled.
func TestOpenWithRetryImmediateSuccess(t *testing.T) {
	n := retryNet(t, 3, 16)
	defer n.Shutdown()
	var got *Conn
	if err := n.OpenWithRetry(0, 3, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 20 * traffic.Mbps},
		func(c *Conn, err error) { got = c }); err != nil {
		t.Fatal(err)
	}
	if got == nil || !got.open {
		t.Fatalf("synchronous success did not deliver an open connection: %+v", got)
	}
	if len(n.durables) != 0 || len(n.openRetries) != 0 {
		t.Fatalf("successful open left retry state behind")
	}
}

// TestOpenWithRetryZeroBudget: with MaxRetries 0 the failure is
// delivered synchronously and nothing is journaled.
func TestOpenWithRetryZeroBudget(t *testing.T) {
	n := retryNet(t, 0, 16)
	defer n.Shutdown()
	var gotErr error
	if err := n.OpenWithRetry(0, 3, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 2 * n.cfg.Link.Bandwidth},
		func(c *Conn, err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("zero-budget failure not delivered synchronously")
	}
	if len(n.durables) != 0 || len(n.openRetries) != 0 {
		t.Fatal("zero-budget open journaled a retry")
	}
}

// TestModifyBandwidth covers §4.3 renegotiation at the network level:
// growth within capacity rewires allocation registers and per-hop
// scheduling state, impossible growth is rejected atomically (no
// register drift at any hop), shrinking always succeeds, and the
// resource audit stays clean throughout.
func TestModifyBandwidth(t *testing.T) {
	tp, err := topology.Mesh(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 33
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	c, err := n.Open(0, 8, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 40 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	n.Run(500)
	preDelivered := n.Stats().FlitsDelivered

	if err := n.ModifyBandwidth(c, 160*traffic.Mbps); err != nil {
		t.Fatalf("grow within capacity: %v", err)
	}
	if c.Spec.Rate != 160*traffic.Mbps {
		t.Fatalf("spec rate not updated: %v", c.Spec.Rate)
	}
	d := n.demandFor(c.Spec)
	for i, ref := range c.VCs {
		st := n.nodes[c.Nodes[i]].mems[ref.Port].State(ref.VC)
		if st.Allocated != d.alloc {
			t.Fatalf("hop %d allocation %d, want %d", i, st.Allocated, d.alloc)
		}
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after grow: %v", err)
	}
	n.Run(2000)
	grown := n.Stats().FlitsDelivered - preDelivered
	want := n.cfg.Link.FlitsPerCycle(160*traffic.Mbps) * 1500 // allow ramp-up slack
	if float64(grown) < want*0.9 {
		t.Fatalf("delivery did not follow the grown rate: %d flits, want >= %.0f", grown, want*0.9)
	}

	// Impossible growth: rejected with no register drift.
	gBefore := make([]int, len(c.Path)+1)
	for i, h := range c.Path {
		gBefore[i] = n.nodes[h.Node].alloc[h.Port].Guaranteed()
	}
	gBefore[len(c.Path)] = n.nodes[c.Dst].alloc[n.cfg.hostPort()].Guaranteed()
	if err := n.ModifyBandwidth(c, 2*n.cfg.Link.Bandwidth); err == nil {
		t.Fatal("impossible growth admitted")
	}
	for i, h := range c.Path {
		if got := n.nodes[h.Node].alloc[h.Port].Guaranteed(); got != gBefore[i] {
			t.Fatalf("rejected growth drifted hop %d register: %d -> %d", i, gBefore[i], got)
		}
	}
	if got := n.nodes[c.Dst].alloc[n.cfg.hostPort()].Guaranteed(); got != gBefore[len(c.Path)] {
		t.Fatalf("rejected growth drifted destination register")
	}
	if c.Spec.Rate != 160*traffic.Mbps {
		t.Fatalf("rejected growth changed the spec: %v", c.Spec.Rate)
	}

	if err := n.ModifyBandwidth(c, 10*traffic.Mbps); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after shrink: %v", err)
	}

	// Class and state guards.
	vbr, err := n.Open(1, 7, traffic.ConnSpec{Class: flit.ClassVBR, Rate: 10 * traffic.Mbps, PeakRate: 20 * traffic.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ModifyBandwidth(vbr, 20*traffic.Mbps); err == nil || !strings.Contains(err.Error(), "CBR") {
		t.Errorf("VBR modify: got %v, want CBR-only error", err)
	}
	if err := n.DrainAndClose(c, 10000); err != nil {
		t.Fatal(err)
	}
	if err := n.ModifyBandwidth(c, 20*traffic.Mbps); err == nil {
		t.Error("modify on a closed connection succeeded")
	}
}
