package network

import (
	"strings"
	"testing"

	"mmr/internal/admission"
	"mmr/internal/flit"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

func tenantTestNetwork(t *testing.T) *Network {
	t.Helper()
	tp, err := topology.Mesh(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.VCs = 8
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func cbr(mbps int) traffic.ConnSpec {
	return traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Rate(mbps) * traffic.Mbps}
}

// TestOpenAsTenantQuota: the synchronous establishment path refuses a
// tenant at its ceiling before touching the fabric, and frees headroom
// when the tenant's sessions close.
func TestOpenAsTenantQuota(t *testing.T) {
	n := tenantTestNetwork(t)
	defer n.Shutdown()
	n.Tenants().SetQuota("video", admission.TenantQuota{MaxSessions: 2})

	a, err := n.OpenAs("video", 0, 8, cbr(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.Tenant != "video" {
		t.Fatalf("conn tenant %q, want video", a.Tenant)
	}
	if _, err := n.OpenAs("video", 1, 7, cbr(10)); err != nil {
		t.Fatal(err)
	}
	_, err = n.OpenAs("video", 2, 6, cbr(10))
	if err == nil || !strings.Contains(err.Error(), "over admission quota") {
		t.Fatalf("third session: %v, want quota refusal", err)
	}
	// The default tenant is unaffected.
	if _, err := n.Open(2, 6, cbr(10)); err != nil {
		t.Fatalf("default tenant refused: %v", err)
	}
	// Closing one frees headroom.
	if err := n.Close(a); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenAs("video", 2, 4, cbr(10)); err != nil {
		t.Fatalf("admission after close refused: %v", err)
	}
	if u := n.Tenants().Usage("video"); u.Sessions != 2 {
		t.Fatalf("usage %+v, want 2 sessions", u)
	}
}

// TestOpenAsGuaranteedQuota: the bandwidth budget is denominated in
// guaranteed cycles/round; GuaranteedCyclesFor converts a spec so quota
// and charge agree exactly.
func TestOpenAsGuaranteedQuota(t *testing.T) {
	n := tenantTestNetwork(t)
	defer n.Shutdown()
	slot := n.GuaranteedCyclesFor(cbr(10))
	if slot < 1 {
		t.Fatalf("GuaranteedCyclesFor = %d, want >= 1", slot)
	}
	n.Tenants().SetQuota("iot", admission.TenantQuota{MaxGuaranteed: slot})

	if _, err := n.OpenAs("iot", 0, 8, cbr(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenAs("iot", 1, 7, cbr(10)); err == nil {
		t.Fatal("second session admitted over the bandwidth budget")
	}
	if u := n.Tenants().Usage("iot"); u.Guaranteed != slot {
		t.Fatalf("guaranteed usage %d, want %d", u.Guaranteed, slot)
	}
}

// TestOpenBatchTenantQuota: batch establishment settles each request
// against the tenant table in order, so a tenant's budget admits a
// prefix and refuses the rest within one batch.
func TestOpenBatchTenantQuota(t *testing.T) {
	n := tenantTestNetwork(t)
	defer n.Shutdown()
	n.Tenants().SetQuota("bulk", admission.TenantQuota{MaxSessions: 2})
	reqs := []OpenReq{
		{Src: 0, Dst: 8, Spec: cbr(10), Tenant: "bulk"},
		{Src: 1, Dst: 7, Spec: cbr(10), Tenant: "bulk"},
		{Src: 2, Dst: 6, Spec: cbr(10), Tenant: "bulk"},
		{Src: 3, Dst: 5, Spec: cbr(10)}, // default tenant rides along
	}
	out := n.OpenBatch(reqs)
	for i := 0; i < 2; i++ {
		if out[i].Err != nil {
			t.Fatalf("req %d refused: %v", i, out[i].Err)
		}
	}
	if out[2].Err == nil || !strings.Contains(out[2].Err.Error(), "over admission quota") {
		t.Fatalf("req 2: %v, want quota refusal", out[2].Err)
	}
	if out[3].Err != nil {
		t.Fatalf("default-tenant req refused: %v", out[3].Err)
	}
}

// TestOpenAsyncTenantQuota: the probe path checks the budget twice —
// at launch (an over-budget probe never enters the fabric) and again
// when the acknowledgment completes, because concurrent admissions race
// the probe's flight.
func TestOpenAsyncTenantQuota(t *testing.T) {
	n := tenantTestNetwork(t)
	defer n.Shutdown()
	n.Tenants().SetQuota("live", admission.TenantQuota{MaxSessions: 1})

	// Launch-time refusal: the budget is already full.
	if _, err := n.OpenAs("live", 0, 8, cbr(10)); err != nil {
		t.Fatal(err)
	}
	var launchErr error
	called := false
	if err := n.OpenAsyncAs("live", 1, 7, cbr(10), func(c *Conn, err error) {
		called, launchErr = true, err
	}); err != nil {
		t.Fatal(err)
	}
	if !called || launchErr == nil || !strings.Contains(launchErr.Error(), "over admission quota") {
		t.Fatalf("launch-time check: called=%v err=%v", called, launchErr)
	}

	// Completion-time refusal: budget free at launch, stolen by a
	// synchronous admission while the probe is in flight.
	n.Tenants().SetQuota("race", admission.TenantQuota{MaxSessions: 1})
	var raceConn *Conn
	var raceErr error
	done := false
	if err := n.OpenAsyncAs("race", 2, 6, cbr(10), func(c *Conn, err error) {
		done, raceConn, raceErr = true, c, err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenAs("race", 3, 5, cbr(10)); err != nil {
		t.Fatalf("synchronous steal failed: %v", err)
	}
	n.Run(500) // probe completes and must hit the re-check
	if !done {
		t.Fatal("probe never completed")
	}
	if raceConn != nil || raceErr == nil || !strings.Contains(raceErr.Error(), "over admission quota") {
		t.Fatalf("completion-time check: conn=%v err=%v", raceConn, raceErr)
	}
	if u := n.Tenants().Usage("race"); u.Sessions != 1 {
		t.Fatalf("usage %+v after refused probe, want the 1 stolen session only", u)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after refused probe: %v", err)
	}
}

// TestModifyBandwidthTenantQuota: §4.3 growth is quota-tested against
// the tenant's guaranteed budget; shrink always fits.
func TestModifyBandwidthTenantQuota(t *testing.T) {
	n := tenantTestNetwork(t)
	defer n.Shutdown()
	slot := n.GuaranteedCyclesFor(cbr(10))
	n.Tenants().SetQuota("cap", admission.TenantQuota{MaxGuaranteed: slot})
	c, err := n.OpenAs("cap", 0, 8, cbr(10))
	if err != nil {
		t.Fatal(err)
	}
	err = n.ModifyBandwidth(c, 400*traffic.Mbps)
	if err == nil || !strings.Contains(err.Error(), "over guaranteed-bandwidth quota") {
		t.Fatalf("growth over quota: %v", err)
	}
	// The refused growth left the charge untouched.
	if u := n.Tenants().Usage("cap"); u.Guaranteed != slot {
		t.Fatalf("guaranteed usage %d after refused growth, want %d", u.Guaranteed, slot)
	}
	if err := n.ModifyBandwidth(c, 5*traffic.Mbps); err != nil {
		t.Fatalf("shrink refused: %v", err)
	}
}
