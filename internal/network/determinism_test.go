package network

import (
	"reflect"
	"testing"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// detScenario runs the same loaded 4×4-mesh session at a given worker
// count and returns everything observable: the statistics snapshot and
// the session event log. The workload exercises every RNG consumer the
// parallel phases touch — CBR and VBR stream sources, Poisson best-effort
// flows, packet VC selection — and, with faults on, link failures with
// restoration plus per-flit impairment draws.
func detScenario(t *testing.T, workers int, withFaults bool) (*Stats, []SessionEvent) {
	t.Helper()
	n := buildDetNetwork(t, workers, withFaults)
	defer n.Shutdown()
	n.Run(1200)
	n.ResetStats()
	n.Run(1800)
	return n.Stats(), n.SessionEvents()
}

// buildDetNetwork constructs the detScenario network — loaded 4×4 mesh,
// 48 connections, best-effort flows, optional fault plan — without
// running it, so tests needing a live network handle (metrics,
// flight-recorder) share the exact same scenario.
func buildDetNetwork(t *testing.T, workers int, withFaults bool) *Network {
	t.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 11
	cfg.Workers = workers
	cfg.Fault = FaultPolicy{Restore: true, MaxRetries: 4, RetryBackoff: 32, Degrade: true, Paranoid: true}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := sim.NewRNG(99)
	opened := 0
	for i := 0; i < 300 && opened < 48; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]}
		if i%3 == 0 {
			spec.Class = flit.ClassVBR
			spec.PeakRate = 2 * spec.Rate
		}
		if _, err := n.Open(src, dst, spec); err == nil {
			opened++
		}
	}
	if opened < 16 {
		t.Fatalf("only %d connections established", opened)
	}
	for i := 0; i < 12; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src != dst {
			n.AddBestEffortFlow(src, dst, 0.01)
		}
	}

	if withFaults {
		plan := faults.NewPlan(3).
			FailLinkAt(500, 5, 1).
			RestoreLinkAt(1500, 5, 1).
			FailRouterAt(900, 10).
			RestoreRouterAt(1900, 10).
			Impair(1, 1, 0.01, 0.005).
			Impair(6, 2, 0.02, 0)
		if err := n.ApplyPlan(plan, 3000); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestNetworkStepDeterminism: the parallel cycle is bit-identical for
// every worker count — statistics (including floating-point accumulator
// state, compared exactly by reflect.DeepEqual) and the session event log
// must match the serial run, with and without an active fault plan.
func TestNetworkStepDeterminism(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		name := "clean"
		if withFaults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			refStats, refEvents := detScenario(t, 1, withFaults)
			if refStats.FlitsDelivered == 0 || refStats.BEDelivered == 0 {
				t.Fatalf("degenerate scenario: %v", refStats)
			}
			if withFaults && refStats.ConnsBroken == 0 {
				t.Fatal("fault scenario broke no connections")
			}
			for _, w := range []int{2, 4, 8} {
				st, ev := detScenario(t, w, withFaults)
				if !reflect.DeepEqual(refStats, st) {
					t.Errorf("workers=%d diverged from serial:\nserial:  %+v\nworkers: %+v", w, refStats, st)
				}
				if !reflect.DeepEqual(refEvents, ev) {
					t.Errorf("workers=%d session log diverged (%d vs %d events)", w, len(refEvents), len(ev))
				}
			}
		})
	}
}

// TestSetWorkersMidRun: resizing the pool between steps neither leaks
// goroutines nor changes results — a session stepped 1→4→2→1 workers
// matches the all-serial run exactly.
func TestSetWorkersMidRun(t *testing.T) {
	run := func(resize bool) *Stats {
		tp, _ := topology.Mesh(3, 3, 4)
		cfg := DefaultConfig(tp)
		cfg.Seed = 5
		n, _ := New(cfg)
		defer n.Shutdown()
		for i := 0; i < 5; i++ {
			n.Open(i, 8-i, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 20 * traffic.Mbps})
		}
		n.AddBestEffortFlow(0, 8, 0.01)
		for seg, w := range []int{1, 4, 2, 1} {
			if resize {
				n.SetWorkers(w)
			}
			_ = seg
			n.Run(2000)
		}
		return n.Stats()
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker resizing changed results:\nserial: %+v\nresized: %+v", a, b)
	}
}

// TestNetworkStepSteadyStateAllocs: the warmed-up cycle allocates nothing
// per step at any worker count — flits come from per-node pools, lanes
// and rings reuse their backing arrays, and the worker dispatch path is
// allocation-free. (Staging-lane growth is amortized: the warmup runs
// every lane past its high-water mark, after which pushes reuse capacity;
// testing.AllocsPerTest-style averaging over 400 cycles tolerates the
// rare residual growth event while still failing on any per-cycle
// allocation.)
func TestNetworkStepSteadyStateAllocs(t *testing.T) {
	for _, w := range []int{1, 4} {
		tp, _ := topology.Mesh(4, 4, 4)
		cfg := DefaultConfig(tp)
		cfg.Seed = 7
		cfg.Workers = w
		n, _ := New(cfg)
		rng := sim.NewRNG(42)
		for i, opened := 0, 0; i < 400 && opened < 64; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			if src == dst {
				continue
			}
			rate := traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
			if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: rate}); err == nil {
				opened++
			}
		}
		for i := 0; i < 16; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			if src != dst {
				n.AddBestEffortFlow(src, dst, 0.02)
			}
		}
		n.Run(3000) // past every pool/lane/ring high-water mark
		avg := testing.AllocsPerRun(400, func() { n.Step() })
		n.Shutdown()
		if avg > 0.05 {
			t.Errorf("workers=%d: steady-state Step allocates %.3f allocs/cycle, want 0", w, avg)
		}
	}
}
