package network

import (
	"fmt"

	"mmr/internal/flit"
)

// invariants.go generalizes the fuzz harness's resource audit into a
// first-class checker the fault layer runs after every topology
// transition (FaultPolicy.Paranoid). It reconstructs the resource state
// the live connections imply and compares it against what the routers
// actually hold, so any leak — a VC kept after teardown, bandwidth
// released twice, a credit lost or duplicated across a fault — surfaces
// at the transition that caused it instead of as a corrupted simulation
// thousands of cycles later.

// CheckInvariants audits global resource conservation and returns the
// first violation found (nil if the network is consistent):
//
//  1. Every VC a live connection claims is reserved for it, with a
//     channel mapping on non-final hops; every other in-use VC is a
//     best-effort/control packet in flight — or, while probes are
//     active, a transient search hold.
//  2. Per stream hop, credits are conserved: shadow credits + credits in
//     flight upstream + flits buffered downstream + flits on the link
//     pipe account for exactly the downstream buffer depth.
//  3. Per output link, the guaranteed bandwidth register equals the sum
//     of the live connections' demands crossing it (with transient probe
//     holds allowed to push it higher, never lower).
//
// "Live" means established and not closed, fault-broken, or degraded —
// a broken or degraded connection must hold nothing at all (a degraded
// session's traffic rides an unreserved best-effort fallback flow).
func (n *Network) CheckInvariants() error {
	type vcKey struct{ node, port, vc int }
	type outKey struct{ node, port int }

	claimed := map[vcKey]flit.ConnID{}
	wantBW := map[outKey]int{}
	wantPeak := map[outKey]int{}
	hp := n.cfg.hostPort()

	for _, c := range n.conns {
		if c.closed || c.broken || c.Degraded {
			continue
		}
		d := n.demandFor(c.Spec)
		for i, ref := range c.VCs {
			k := vcKey{c.Nodes[i], ref.Port, ref.VC}
			if other, dup := claimed[k]; dup {
				return fmt.Errorf("invariant: VC %v claimed by both conn %d and conn %d", k, other, c.ID)
			}
			claimed[k] = c.ID
			st := n.nodes[c.Nodes[i]].mems[ref.Port].State(ref.VC)
			if !st.InUse || st.Conn != c.ID {
				return fmt.Errorf("invariant: conn %d hop %d VC %v not reserved for it (inUse=%v conn=%d)",
					c.ID, i, k, st.InUse, st.Conn)
			}
			var out outKey
			if i < len(c.Path) {
				out = outKey{c.Path[i].Node, c.Path[i].Port}
			} else {
				out = outKey{c.Nodes[i], hp}
			}
			wantBW[out] += d.alloc
			if c.Spec.Class == flit.ClassVBR {
				wantPeak[out] += d.peak
			}
		}

		// Credit conservation per inter-router hop: the upstream VC at
		// Nodes[i] feeds the downstream VC at Nodes[i+1] over Path[i].
		for i := 0; i < len(c.Path); i++ {
			up, down := c.VCs[i], c.VCs[i+1]
			shadow := n.nodes[c.Nodes[i]].shadow[up.Port].Available(up.VC)
			// Credits returning for this hop can only sit in the outbound
			// credit lane of the downstream node (the unique emitter).
			inflight := 0
			for _, cm := range n.nodes[c.Nodes[i+1]].credOut[down.Port].pending() {
				if int(cm.to.node) == c.Nodes[i] && int(cm.to.port) == up.Port && int(cm.to.vc) == up.VC {
					inflight++
				}
			}
			buffered := n.nodes[c.Nodes[i+1]].mems[down.Port].Len(down.VC)
			onLink := 0
			for _, lf := range n.nodes[c.Path[i].Node].pipes[c.Path[i].Port].pending() {
				if lf.f.Conn == c.ID {
					onLink++
				}
			}
			if total := shadow + inflight + buffered + onLink; total != n.cfg.Depth {
				return fmt.Errorf("invariant: conn %d hop %d credits not conserved: shadow=%d inflight=%d buffered=%d onlink=%d, want total %d",
					c.ID, i, shadow, inflight, buffered, onLink, n.cfg.Depth)
			}
		}
	}

	// Sweep every VC: claimed ones were verified above; anything else in
	// use must be a packet in flight or a transient probe hold.
	for _, nd := range n.nodes {
		for p, mem := range nd.mems {
			for vc := 0; vc < n.cfg.VCs; vc++ {
				st := mem.State(vc)
				if !st.InUse {
					if l := mem.Len(vc); l != 0 {
						return fmt.Errorf("invariant: node %d port %d VC %d free but holds %d flits", nd.id, p, vc, l)
					}
					continue
				}
				if _, ok := claimed[vcKey{nd.id, p, vc}]; ok {
					continue
				}
				if st.Class == flit.ClassBestEffort || st.Class == flit.ClassControl {
					continue
				}
				if st.Conn == flit.InvalidConn && n.activeProbes > 0 {
					continue // transient EPB search hold
				}
				return fmt.Errorf("invariant: node %d port %d VC %d leaked (class=%v conn=%d, no live connection claims it)",
					nd.id, p, vc, st.Class, st.Conn)
			}
		}
	}

	// Bandwidth registers: exact when no probe is mid-search, otherwise
	// the transient holds may only add.
	for _, nd := range n.nodes {
		for p, a := range nd.alloc {
			want := wantBW[outKey{nd.id, p}]
			got := a.Guaranteed()
			if got < want || (n.activeProbes == 0 && got != want) {
				return fmt.Errorf("invariant: node %d port %d guaranteed bandwidth %d cycles, connections demand %d (probes=%d)",
					nd.id, p, got, want, n.activeProbes)
			}
			wantP := wantPeak[outKey{nd.id, p}]
			gotP := a.PeakTotal()
			if gotP < wantP || (n.activeProbes == 0 && gotP != wantP) {
				return fmt.Errorf("invariant: node %d port %d peak bandwidth %d cycles, connections demand %d (probes=%d)",
					nd.id, p, gotP, wantP, n.activeProbes)
			}
		}
	}
	return nil
}

// mustInvariants panics on an invariant violation — the paranoid-mode
// hook run after every fault transition. The flight recorders are
// dumped first, so the post-mortem shows what the routers were doing in
// the cycles leading up to the violation.
func (n *Network) mustInvariants() {
	if err := n.CheckInvariants(); err != nil {
		n.recordFlight(0, evInvariantFail, -1, -1, 0)
		n.dumpFlightOnInvariant(err)
		panic(fmt.Sprintf("network: cycle %d: %v", n.now, err))
	}
}
