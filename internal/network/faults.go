package network

import (
	"fmt"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/traffic"
)

// faults.go is the network's self-healing layer: it interprets
// fault-injection plans (internal/faults), tears down the connections a
// failed link breaks — releasing every VC, channel mapping, credit and
// bandwidth reservation hop by hop — and re-establishes them on a
// surviving path with bounded, jittered exponential-backoff re-searches,
// degrading to a best-effort flow (or abandoning the session) when the
// surviving fabric cannot re-admit the stream. Routing state (EPB
// distance tables, the up*/down* tree) is recomputed at every topology
// transition, in the spirit of Autonet's reconfiguration protocol.
//
// Modeling simplifications, recorded here deliberately:
//   - Fault detection is immediate: the cycle a link fails, every
//     connection crossing it is known broken. Real routers detect via
//     ack/credit timeouts; that latency can be emulated by scheduling
//     the restoration probe later.
//   - A router failure is modeled as the failure of all its links. Flits
//     already buffered inside the failed router survive in place (the
//     router is isolated, not wiped); stream flits are purged with their
//     connection, best-effort packets wait for a live output.

// ApplyPlan validates a fault plan against the network's topology,
// installs its per-link impairments, and schedules every fault event
// (explicit and stochastically expanded) over [0, horizon) on the event
// engine. Call before Run; events fire as the clock reaches them.
//
// The expanded schedule is retained in the durable-event journal
// (durable.go), so a checkpoint taken mid-plan serializes the pending
// transitions as data and a restored fabric replays the remainder of
// the plan exactly.
func (n *Network) ApplyPlan(p *faults.Plan, horizon int64) error {
	tp := n.cfg.Topology
	if err := p.Validate(tp); err != nil {
		return err
	}
	for _, im := range p.Impairments {
		n.impair[[2]int{im.Node, im.Port}] = im
	}
	for _, ev := range p.Schedule(tp, horizon) {
		idx := int64(len(n.faultSchedule))
		n.faultSchedule = append(n.faultSchedule, ev)
		n.scheduleDurable(ev.Cycle, durFault, idx, 0)
	}
	return nil
}

// FailLink takes the link at (nodeID, port) down now: flits in flight on
// it are lost, connections crossing it are torn down (and queued for
// restoration per the fault policy), and the routing tables are rebuilt
// around the failure. Failing an already-down or unwired link is a no-op.
func (n *Network) FailLink(nodeID, port int) error {
	tp := n.cfg.Topology
	if nodeID < 0 || nodeID >= tp.Nodes || port < 0 || port >= tp.Ports || tp.Wired(nodeID, port) < 0 {
		return fmt.Errorf("network: FailLink(%d,%d) names no wired link", nodeID, port)
	}
	if !tp.LinkUp(nodeID, port) {
		return nil
	}
	n.failLink(nodeID, port)
	n.afterTransition()
	return nil
}

// RestoreLink brings the link at (nodeID, port) back up and rebuilds the
// routing tables so new searches may use it. Restoring an up link is a
// no-op. Broken connections in backoff find the link on their next retry.
func (n *Network) RestoreLink(nodeID, port int) error {
	tp := n.cfg.Topology
	if nodeID < 0 || nodeID >= tp.Nodes || port < 0 || port >= tp.Ports || tp.Wired(nodeID, port) < 0 {
		return fmt.Errorf("network: RestoreLink(%d,%d) names no wired link", nodeID, port)
	}
	if tp.LinkUp(nodeID, port) {
		return nil
	}
	tp.SetLinkUp(nodeID, port, true)
	n.m.faultsRepaired++
	n.logEvent(SessionEvent{Kind: "link-up", Conn: flit.InvalidConn, Node: nodeID, Port: port})
	n.recordFlight(nodeID, evLinkUp, int32(port), int32(tp.Wired(nodeID, port)), 0)
	n.afterTransition()
	n.schedulePromotion()
	return nil
}

// FailRouter fails every wired link of nodeID — the whole-router fault
// model. The routing rebuild happens once, after all links are down.
func (n *Network) FailRouter(nodeID int) error {
	tp := n.cfg.Topology
	if nodeID < 0 || nodeID >= tp.Nodes {
		return fmt.Errorf("network: FailRouter(%d) out of range", nodeID)
	}
	n.logEvent(SessionEvent{Kind: "router-down", Conn: flit.InvalidConn, Node: nodeID, Port: -1})
	for p := 0; p < tp.Ports; p++ {
		if tp.Wired(nodeID, p) >= 0 && tp.LinkUp(nodeID, p) {
			n.failLink(nodeID, p)
		}
	}
	n.afterTransition()
	return nil
}

// RestoreRouter brings every wired link of nodeID back up.
func (n *Network) RestoreRouter(nodeID int) error {
	tp := n.cfg.Topology
	if nodeID < 0 || nodeID >= tp.Nodes {
		return fmt.Errorf("network: RestoreRouter(%d) out of range", nodeID)
	}
	n.logEvent(SessionEvent{Kind: "router-up", Conn: flit.InvalidConn, Node: nodeID, Port: -1})
	restored := false
	for p := 0; p < tp.Ports; p++ {
		if tp.Wired(nodeID, p) >= 0 && !tp.LinkUp(nodeID, p) {
			tp.SetLinkUp(nodeID, p, true)
			n.m.faultsRepaired++
			n.logEvent(SessionEvent{Kind: "link-up", Conn: flit.InvalidConn, Node: nodeID, Port: p})
			n.recordFlight(nodeID, evLinkUp, int32(p), int32(tp.Wired(nodeID, p)), 0)
			restored = true
		}
	}
	if restored {
		n.afterTransition()
		n.schedulePromotion()
	}
	return nil
}

// failLink is FailLink without the routing rebuild, so FailRouter can
// batch several link failures into one transition.
func (n *Network) failLink(nodeID, port int) {
	tp := n.cfg.Topology
	peer := tp.Wired(nodeID, port)
	peerPort := tp.WiredPeer(nodeID, port)
	tp.SetLinkUp(nodeID, port, false)
	n.m.faultsInjected++
	n.logEvent(SessionEvent{Kind: "link-down", Conn: flit.InvalidConn, Node: nodeID, Port: port})
	n.recordFlight(nodeID, evLinkDown, int32(port), int32(peer), 0)

	// Flits in flight on either direction of the link are lost. Stream
	// flits belong to connections about to be broken — their bookkeeping
	// is settled wholesale by breakConn; a best-effort flit must release
	// the VC it had reserved at the receiver.
	n.purgePipe(nodeID, port, peer, peerPort)
	n.purgePipe(peer, peerPort, nodeID, port)

	// Best-effort packets already routed toward the dead link re-route.
	n.clearStaleOutputs(nodeID, port)
	n.clearStaleOutputs(peer, peerPort)

	// Tear down every connection whose path crosses the link, in either
	// direction. Degraded connections are skipped explicitly: their Path
	// is the stale record of the guaranteed route they lost, already
	// fully released — matching on it would double-release.
	for _, c := range n.conns {
		if c.closed || c.broken || c.Degraded {
			continue
		}
		for _, hop := range c.Path {
			if (hop.Node == nodeID && hop.Port == port) || (hop.Node == peer && hop.Port == peerPort) {
				n.breakConn(c, fmt.Sprintf("link %d.%d down", nodeID, port))
				break
			}
		}
	}
}

// afterTransition rebuilds routing state for the surviving topology,
// dumps the flight recorders to the configured sink, and, in paranoid
// mode, audits the global resource invariants.
func (n *Network) afterTransition() {
	n.dists.Recompute(n.cfg.Topology)
	n.ud.Rebuild()
	n.dumpFlightOnFault()
	if n.cfg.Fault.Paranoid {
		n.mustInvariants()
	}
}

// purgePipe drops every flit in flight from (nodeID, port) toward the
// receiver at (peer, peerPort).
func (n *Network) purgePipe(nodeID, port, peer, peerPort int) {
	nd := n.nodes[nodeID]
	for _, lf := range nd.pipes[port].pending() {
		n.m.faultFlitsLost++
		if lf.f.Class == flit.ClassBestEffort || lf.f.Class == flit.ClassControl {
			// The packet dies here; free the input VC it had reserved at
			// the receiver.
			n.nodes[peer].mems[peerPort].Release(lf.vc)
			n.nodes[peer].upstream[peerPort][lf.vc] = noUpstream
		}
		nd.pool.Put(lf.f)
	}
	nd.pipes[port].reset()
}

// clearStaleOutputs un-routes best-effort packets at nodeID whose chosen
// output is the dead port; the routing unit re-routes them next cycle
// over the surviving up*/down* tree.
func (n *Network) clearStaleOutputs(nodeID, port int) {
	nd := n.nodes[nodeID]
	for p := range nd.mems {
		mem := nd.mems[p]
		for vc := 0; vc < n.cfg.VCs; vc++ {
			st := mem.State(vc)
			if st.InUse && st.Class == flit.ClassBestEffort && st.Output == port {
				st.Output = -1
			}
		}
	}
}

// breakConn tears a fault-broken connection down hop by hop: the source
// interface queue and every in-flight or buffered flit of the connection
// are purged, in-flight credits for its VCs are cancelled, and each
// hop's VC, channel mapping, upstream pointer, shadow credits and output
// bandwidth are released. Afterwards the connection holds no resources;
// restoration (or degradation) is scheduled per the fault policy.
func (n *Network) breakConn(c *Conn, reason string) {
	if c.closed || c.broken || c.Degraded {
		return
	}
	// Catch the source up to the break point before injection stops: the
	// ungated engine ticks it on every cycle up to (and excluding) this
	// one, while the gated engine may not have run the host node since
	// lastTick. The pending cycles all precede the conn's forecast
	// (nextDue), so each tick is a promised no-op — no flits, no RNG —
	// but it advances the source's internal accumulators exactly as the
	// ungated engine would. Without this, installPath's lastTick reset at
	// restoration would silently discard the gap.
	if c.src != nil {
		for ct := c.lastTick + 1; ct < n.now; ct++ {
			c.src.Tick(ct)
		}
		c.lastTick = n.now - 1
	}
	c.broken = true
	c.open = false
	c.brokenAt = n.now
	n.m.connsBroken++
	n.logEvent(SessionEvent{Kind: "conn-broken", Conn: c.ID, Node: c.Src, Port: -1, Detail: reason})
	n.recordFlight(c.Src, evConnBroken, int32(c.Dst), -1, int64(c.ID))

	// Source-interface queue: flits not yet in the fabric are dropped
	// (back into the source node's pool, which minted them).
	n.m.faultFlitsLost += int64(c.niQueue.Len())
	srcPool := n.nodes[c.Src].pool
	for c.niQueue.Len() > 0 {
		srcPool.Put(c.niQueue.Pop())
	}

	// In-flight flits of this connection on any pipe along its path.
	for _, hop := range c.Path {
		nd := n.nodes[hop.Node]
		nd.pipes[hop.Port].filter(func(lf linkFlit) bool {
			if lf.f.Conn == c.ID {
				n.m.faultFlitsLost++
				nd.pool.Put(lf.f)
				return false
			}
			return true
		})
	}

	// In-flight credit returns targeting the connection's VCs: after the
	// shadow reset below those slots are full again, and a late Return
	// would overflow the protocol's accounting. Credits targeting hop i
	// are emitted by the node at hop i+1 when it drains that VC, so they
	// can only sit in that node's outbound credit lane for that port.
	for i := 0; i+1 < len(c.VCs); i++ {
		target := upRef{node: int32(c.Nodes[i]), port: int16(c.VCs[i].Port), vc: int16(c.VCs[i].VC)}
		lane := &n.nodes[c.Nodes[i+1]].credOut[c.VCs[i+1].Port]
		lane.filter(func(cm creditMsg) bool { return cm.to != target })
	}

	// Hop-by-hop release: drain buffered flits and reset the shadow
	// credit view (the purges above guarantee no credit is still in
	// flight for these VCs), then release the path resources exactly as
	// a graceful close would.
	for i, ref := range c.VCs {
		x := n.nodes[c.Nodes[i]]
		for x.mems[ref.Port].Len(ref.VC) > 0 {
			x.pool.Put(x.mems[ref.Port].Pop(ref.VC))
			n.m.faultFlitsLost++
		}
		x.shadow[ref.Port].Reset(ref.VC)
	}
	n.releasePath(c)

	if n.cfg.Fault.Restore {
		n.scheduleRestore(c)
	} else {
		n.abandon(c)
	}
}

// scheduleRestore journals the first re-establishment attempt for a
// broken connection: it fires next cycle, and each failure backs off
// exponentially with jitter until MaxRetries additional attempts have
// been spent (restoreAttempt, durable.go).
func (n *Network) scheduleRestore(c *Conn) {
	n.scheduleDurable(n.now+1, durRestore, int64(c.ID), 0)
}

// abandon gives up on restoring a broken connection: with Degrade set it
// becomes a best-effort packet flow at the same mean rate (jitter bounds
// are forfeit but the session survives); otherwise it is lost.
//
// State-flag invariant: a degraded connection is Degraded && !broken.
// The broken flag is cleared here so exactly one of {open, broken,
// Degraded, lost, closed} describes a connection's lifecycle stage —
// promotion (promote.go) relies on this to never revive a conn that is
// still mid-teardown, and Close's branch ordering stops being
// load-bearing. A lost connection keeps broken set: it is terminal and
// holds nothing, and the flag records how it died.
func (n *Network) abandon(c *Conn) {
	if n.cfg.Fault.Degrade {
		c.Degraded = true
		c.broken = false
		n.m.connsDegraded++
		n.degradedLive++
		// The guaranteed-bandwidth charge is returned to the tenant's
		// budget: the session continues, but only as best-effort. The
		// session count stays charged until the session closes or is lost.
		n.tenants.ReleaseGuaranteed(c.Tenant, n.demandFor(c.Spec).alloc)
		bf := &beFlow{
			src: c.Src, dst: c.Dst, conn: c.ID,
			gen: traffic.NewCBRSource(n.cfg.Link, c.Spec.Rate, 0),
		}
		bf.id = n.issueFlowID()
		bf.lastTick = n.now - 1
		bf.nextDue = n.now
		n.beFlows = append(n.beFlows, bf)
		n.nodes[c.Src].beSrc = append(n.nodes[c.Src].beSrc, bf)
		n.dropSrcConn(c)
		n.logEvent(SessionEvent{Kind: "conn-degraded", Conn: c.ID, Node: c.Src, Port: -1,
			Detail: "restoration failed; continuing best-effort"})
		n.recordFlight(c.Src, evConnDegraded, int32(c.Dst), -1, int64(c.ID))
		return
	}
	c.lost = true
	n.dropSrcConn(c)
	n.m.connsLost++
	n.tenants.ReleaseGuaranteed(c.Tenant, n.demandFor(c.Spec).alloc)
	n.tenants.ReleaseSession(c.Tenant)
	n.logEvent(SessionEvent{Kind: "conn-lost", Conn: c.ID, Node: c.Src, Port: -1,
		Detail: "restoration failed; session dropped"})
	n.recordFlight(c.Src, evConnLost, int32(c.Dst), -1, int64(c.ID))
}
