package network

import (
	"reflect"
	"testing"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// drainScenario builds a sparse workload with long injection-free
// stretches — the regime the fused drain kernel targets — and runs it
// either through Run (where the kernel engages) or as per-cycle Step
// calls with gating off (the naive k-dispatch reference). Optional
// fault plan: a link failure/restore pair and a router outage land
// inside the run, forcing the kernel to stop at every event boundary.
func drainScenario(t *testing.T, workers int, withFaults, fused bool) (*Network, *Stats, []SessionEvent) {
	t.Helper()
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tp)
	cfg.Seed = 31
	cfg.Workers = workers
	cfg.Fault = FaultPolicy{Restore: true, MaxRetries: 4, RetryBackoff: 32, Degrade: true, Paranoid: true}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	for opened, i := 0, 0; i < 200 && opened < 6; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			continue
		}
		// Slow connections: hundreds of idle cycles between flits.
		if _, err := n.Open(src, dst, traffic.ConnSpec{Class: flit.ClassCBR, Rate: 2 * traffic.Mbps}); err == nil {
			opened++
		}
	}
	if _, err := n.AddBestEffortFlow(0, 15, 0.001); err != nil {
		t.Fatal(err)
	}
	if withFaults {
		plan := faults.NewPlan(3).
			FailLinkAt(3000, 5, 1).
			RestoreLinkAt(9000, 5, 1).
			FailRouterAt(6000, 10).
			RestoreRouterAt(14000, 10).
			Impair(1, 1, 0.01, 0.005)
		if err := n.ApplyPlan(plan, 20_000); err != nil {
			t.Fatal(err)
		}
	}
	if fused {
		n.Run(20_000)
	} else {
		n.cfg.NoIdleSkip = true
		for i := 0; i < 20_000; i++ {
			n.Step()
		}
	}
	return n, n.Stats(), n.SessionEvents()
}

// TestDrainKEquivalence: the fused multi-cycle drain kernel — batched
// dispatch over a proven injection- and event-free window — reproduces
// k naive single-cycle dispatches bit for bit: identical statistics
// (floating-point accumulator state compared exactly), identical
// session event log, identical final clock. Checked clean and with an
// active fault plan (events must split windows exactly), at every
// worker count, and the kernel must actually have engaged — an
// equivalence proof over zero fused cycles would be vacuous.
func TestDrainKEquivalence(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		name := "clean"
		if withFaults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			refN, refStats, refEvents := drainScenario(t, 1, withFaults, false)
			defer refN.Shutdown()
			if refStats.FlitsDelivered == 0 {
				t.Fatalf("degenerate scenario: %+v", refStats)
			}
			if refN.FusedDrainCycles() != 0 {
				t.Fatalf("naive stepwise reference fused %d cycles", refN.FusedDrainCycles())
			}
			for _, w := range []int{1, 2, 4} {
				n, st, ev := drainScenario(t, w, withFaults, true)
				if n.FusedDrainCycles() == 0 {
					t.Fatalf("workers=%d: drain kernel never engaged", w)
				}
				if n.Now() != refN.Now() {
					t.Errorf("workers=%d: clock diverged: fused %d, naive %d", w, n.Now(), refN.Now())
				}
				if !reflect.DeepEqual(refStats, st) {
					t.Errorf("workers=%d: fused drain diverged from naive stepping:\nnaive: %+v\nfused: %+v", w, refStats, st)
				}
				if !reflect.DeepEqual(refEvents, ev) {
					t.Errorf("workers=%d: session log diverged (%d vs %d events)", w, len(refEvents), len(ev))
				}
				n.Shutdown()
			}
		})
	}
}

// TestFusedDrainSteadyStateAllocs: Run over the sparse workload — the
// path that alternates whole-clock fast-forward, fused drain windows
// and normal cycles — allocates nothing once warm. The SoA datapath's
// flat backings (lane arrays, occupancy counters, claim slots) are
// sized at construction and must never grow in steady state.
func TestFusedDrainSteadyStateAllocs(t *testing.T) {
	n, _, _ := drainScenario(t, 1, false, true)
	defer n.Shutdown()
	avg := testing.AllocsPerRun(20, func() { n.Run(500) })
	if avg > 0.05 {
		t.Errorf("steady-state Run allocates %.3f allocs per 500-cycle window, want 0", avg)
	}
	if n.FusedDrainCycles() == 0 {
		t.Fatal("drain kernel never engaged during the alloc measurement")
	}
}

// TestBestEffortFlowOwnerIDs: standalone flows get distinct nonzero
// owner handles; CloseFlow retires exactly the named flow (its
// generator leaves the source node's injector list), double-close and
// unknown IDs fail, and the surviving flow keeps generating.
func TestBestEffortFlowOwnerIDs(t *testing.T) {
	tp, err := topology.Mesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(DefaultConfig(tp))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	id1, err := n.AddBestEffortFlow(0, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := n.AddBestEffortFlow(0, 9, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("flow IDs must be distinct and nonzero: %d, %d", id1, id2)
	}
	n.Run(500)
	if err := n.CloseFlow(id1); err != nil {
		t.Fatalf("close flow %d: %v", id1, err)
	}
	if err := n.CloseFlow(id1); err == nil {
		t.Fatal("double close of a flow succeeded")
	}
	if err := n.CloseFlow(FlowID(9999)); err == nil {
		t.Fatal("closing an unknown flow ID succeeded")
	}
	if len(n.beFlows) != 1 || n.beFlows[0].id != id2 {
		t.Fatalf("flow registry after close: %d flows, want exactly flow %d", len(n.beFlows), id2)
	}
	if got := len(n.nodes[0].beSrc); got != 1 {
		t.Fatalf("source node still lists %d generators, want 1", got)
	}
	before := n.Stats().BEGenerated
	n.Run(2000)
	if after := n.Stats().BEGenerated; after <= before {
		t.Fatal("surviving flow stopped generating after a sibling was closed")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after flow close: %v", err)
	}
}

// TestCloseFlowRefusesDegradedFallback: the fallback flow a degraded
// connection sheds traffic onto is owned by that connection — CloseFlow
// must refuse it (closing the connection retires flow and session state
// together; retiring just the flow would strand a half-open session).
func TestCloseFlowRefusesDegradedFallback(t *testing.T) {
	n, victim := healingScenario(t, FaultPolicy{
		Restore: false, MaxRetries: 5, RetryBackoff: 32, Degrade: true, Paranoid: true,
	})
	n.Run(5000)
	if !victim.Degraded {
		t.Fatalf("victim should be degraded (broken=%v lost=%v)", victim.Broken(), victim.Lost())
	}
	var fallback FlowID
	for _, bf := range n.beFlows {
		if bf.conn == victim.ID {
			fallback = bf.id
			break
		}
	}
	if fallback == 0 {
		t.Fatal("degraded connection has no fallback flow (or it got no owner ID)")
	}
	if err := n.CloseFlow(fallback); err == nil {
		t.Fatal("CloseFlow retired a degraded connection's fallback flow")
	}
	if err := n.Close(victim); err != nil {
		t.Fatalf("close degraded connection: %v", err)
	}
	if err := n.CloseFlow(fallback); err == nil {
		t.Fatal("fallback flow survived its connection's close")
	}
}
