package routing

import (
	"testing"
	"testing/quick"

	"mmr/internal/sim"
	"mmr/internal/topology"
)

func TestChannelMap(t *testing.T) {
	m := NewChannelMap(4, 8)
	in := VCRef{Port: 1, VC: 3}
	out := VCRef{Port: 2, VC: 5}
	if err := m.Map(in, out); err != nil {
		t.Fatal(err)
	}
	if m.Direct(in) != out || m.Reverse(out) != in {
		t.Fatal("mapping not bidirectional")
	}
	if m.Mapped() != 1 {
		t.Fatal("mapped count wrong")
	}
	// Double mapping is refused on both sides.
	if err := m.Map(in, VCRef{Port: 3, VC: 0}); err == nil {
		t.Fatal("input double-map accepted")
	}
	if err := m.Map(VCRef{Port: 0, VC: 0}, out); err == nil {
		t.Fatal("output double-map accepted")
	}
	if got := m.Unmap(in); got != out {
		t.Fatalf("Unmap returned %+v", got)
	}
	if m.Direct(in) != Invalid || m.Reverse(out) != Invalid || m.Mapped() != 0 {
		t.Fatal("unmap incomplete")
	}
	if m.Unmap(in) != Invalid {
		t.Fatal("double unmap should be Invalid")
	}
}

func TestChannelMapPanics(t *testing.T) {
	m := NewChannelMap(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range VCRef did not panic")
		}
	}()
	m.Direct(VCRef{Port: 9, VC: 0})
}

func TestHistory(t *testing.T) {
	var h History
	if h.Searched(3) {
		t.Fatal("fresh history has marks")
	}
	h.Mark(3)
	h.Mark(63)
	if !h.Searched(3) || !h.Searched(63) || h.Searched(4) {
		t.Fatal("marks wrong")
	}
	h.Reset()
	if h.Searched(3) {
		t.Fatal("reset incomplete")
	}
}

func TestDistsAndProfitable(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	d := NewDists(tp)
	if d.Between(0, 8) != 4 {
		t.Fatalf("corner distance = %d, want 4", d.Between(0, 8))
	}
	// From node 0, east (port 0) and south (port 3) are profitable toward 8.
	if !d.Profitable(tp, 0, 0, 8) || !d.Profitable(tp, 0, 3, 8) {
		t.Fatal("profitable ports not recognized")
	}
	// Unwired port is not profitable.
	if d.Profitable(tp, 0, 1, 8) {
		t.Fatal("unwired port profitable")
	}
}

func TestEPBStepHonorsHistoryAndResources(t *testing.T) {
	tp, _ := topology.Mesh(3, 1, 4) // a 3-node chain
	d := NewDists(tp)
	var h History
	// Port 0 (east) is the only profitable port from node 0 toward 2.
	p, ok := EPBStep(tp, d, 0, 2, &h, nil)
	if !ok || p != 0 {
		t.Fatalf("EPBStep = (%d,%v)", p, ok)
	}
	// The port is now in the history: next step must backtrack.
	if _, ok := EPBStep(tp, d, 0, 2, &h, nil); ok {
		t.Fatal("EPBStep retried a searched port")
	}
	// Resource refusal also marks the history (the probe reserved nothing).
	var h2 History
	if _, ok := EPBStep(tp, d, 0, 2, &h2, func(int) bool { return false }); ok {
		t.Fatal("EPBStep advanced over refused port")
	}
	if !h2.Searched(0) {
		t.Fatal("refused port not recorded in history")
	}
}

func TestSearchFindsMinimalPath(t *testing.T) {
	tp, _ := topology.Mesh(4, 4, 4)
	d := NewDists(tp)
	res, err := Search(tp, d, 0, 15, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != d.Between(0, 15) {
		t.Fatalf("path length %d, want %d (minimal)", len(res.Path), d.Between(0, 15))
	}
	// Walk the path to verify it really ends at the destination.
	node := 0
	for _, hop := range res.Path {
		if hop.Node != node {
			t.Fatalf("discontinuous path at %+v", hop)
		}
		node = tp.Neighbor(node, hop.Port)
	}
	if node != 15 {
		t.Fatalf("path ends at %d", node)
	}
	if res.Backtracks != 0 {
		t.Fatalf("unconstrained search backtracked %d times", res.Backtracks)
	}
}

func TestSearchSelfAndErrors(t *testing.T) {
	tp, _ := topology.Mesh(2, 2, 4)
	d := NewDists(tp)
	res, err := Search(tp, d, 1, 1, nil, nil)
	if err != nil || len(res.Path) != 0 {
		t.Fatal("self-search should be an empty path")
	}
	if _, err := Search(tp, d, -1, 0, nil, nil); err == nil {
		t.Fatal("bad endpoint accepted")
	}
}

func TestSearchBacktracksAroundBlockedLinks(t *testing.T) {
	// 3x3 mesh, route 0 → 8. Block the east link out of node 0 so the
	// probe must go south; then block south out of node 3 so it must
	// east... construct reserve() that rejects a specific (node, port).
	tp, _ := topology.Mesh(3, 3, 4)
	d := NewDists(tp)
	blocked := map[[2]int]bool{
		{0, 0}: true, // node 0 east
	}
	var reserved [][2]int
	reserve := func(n, p int) bool {
		if blocked[[2]int{n, p}] {
			return false
		}
		reserved = append(reserved, [2]int{n, p})
		return true
	}
	release := func(n, p int) {
		for i, r := range reserved {
			if r == [2]int{n, p} {
				reserved = append(reserved[:i], reserved[i+1:]...)
				return
			}
		}
		panic("release of unreserved hop")
	}
	res, err := Search(tp, d, 0, 8, reserve, release)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 4 {
		t.Fatalf("path length %d, want 4", len(res.Path))
	}
	if res.Path[0].Port != 3 {
		t.Fatalf("first hop should avoid the blocked east link, took port %d", res.Path[0].Port)
	}
	// Reserved hops must match the final path exactly (backtracked hops
	// released).
	if len(reserved) != len(res.Path) {
		t.Fatalf("%d hops still reserved for a %d-hop path", len(reserved), len(res.Path))
	}
}

func TestSearchExhaustionFails(t *testing.T) {
	tp, _ := topology.Mesh(3, 1, 4)
	d := NewDists(tp)
	// Refuse everything: the probe must backtrack to the source and fail.
	_, err := Search(tp, d, 0, 2, func(int, int) bool { return false }, func(int, int) {})
	if err == nil {
		t.Fatal("saturated network search should fail")
	}
}

// Property: on random irregular topologies, EPB with no resource limits
// always finds a minimal path, and reserve/release stay balanced even
// with random refusals.
func TestSearchProperty(t *testing.T) {
	rng := sim.NewRNG(5)
	f := func(seed uint64, srcDest uint16, refuseMask uint32) bool {
		rng.Seed(seed)
		tp, err := topology.Irregular(12, 6, 3, rng)
		if err != nil {
			return false
		}
		d := NewDists(tp)
		src := int(srcDest) % 12
		dest := int(srcDest>>4) % 12
		// Unconstrained: must find a path of minimal length.
		res, err := Search(tp, d, src, dest, nil, nil)
		if err != nil {
			return false
		}
		if len(res.Path) != d.Between(src, dest) {
			return false
		}
		// With random refusals: reserve/release must balance.
		outstanding := 0
		res2, err2 := Search(tp, d, src, dest,
			func(n, p int) bool {
				if refuseMask&(1<<uint((n+p)%32)) != 0 {
					return false
				}
				outstanding++
				return true
			},
			func(int, int) { outstanding-- })
		if err2 != nil {
			return outstanding == 0
		}
		return outstanding == len(res2.Path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUpDownLegality(t *testing.T) {
	rng := sim.NewRNG(9)
	tp, err := topology.Irregular(16, 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDists(tp)
	u := NewUpDown(tp, d)
	for src := 0; src < tp.Nodes; src++ {
		for dest := 0; dest < tp.Nodes; dest++ {
			route := u.Route(src, dest)
			if route == nil {
				t.Fatalf("no up*/down* route %d→%d", src, dest)
			}
			if !u.Legal(src, route) {
				t.Fatalf("illegal route %d→%d: %v", src, dest, route)
			}
			// Walk to confirm arrival.
			node := src
			for _, p := range route {
				node = tp.Neighbor(node, p)
			}
			if node != dest {
				t.Fatalf("route %d→%d ends at %d", src, dest, node)
			}
		}
	}
}

func TestUpDownRejectsDownUp(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	d := NewDists(tp)
	u := NewUpDown(tp, d)
	// From node 4 (center), port 2 (north) goes to node 1, closer to root
	// 0 → up. Port 3 (south) goes to 7 → down. A down-then-up sequence
	// must be illegal.
	if u.Legal(4, []int{3, 2}) {
		t.Fatal("down→up accepted")
	}
}

func TestUpDownNextPortsFiltersWhenDown(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	d := NewDists(tp)
	u := NewUpDown(tp, d)
	// At center node 4 heading to 0 having gone down: up ports excluded.
	ports := u.NextPorts(4, 0, true, nil)
	for _, p := range ports {
		if u.isUp(4, p) {
			t.Fatalf("up port %d offered after a down hop", p)
		}
	}
	// Without the down flag, the profitable up ports appear first.
	ports = u.NextPorts(4, 0, false, nil)
	if len(ports) == 0 || !d.Profitable(tp, 4, ports[0], 0) {
		t.Fatalf("profitable port not preferred: %v", ports)
	}
}

// Property: up*/down* routes on random irregular topologies are always
// legal, loop-free and terminate at the destination.
func TestUpDownProperty(t *testing.T) {
	rng := sim.NewRNG(17)
	f := func(seed uint64, pair uint16) bool {
		rng.Seed(seed)
		tp, err := topology.Irregular(14, 7, 3, rng)
		if err != nil {
			return false
		}
		u := NewUpDown(tp, NewDists(tp))
		src := int(pair) % 14
		dest := int(pair>>4) % 14
		route := u.Route(src, dest)
		if route == nil || !u.Legal(src, route) {
			return false
		}
		node := src
		seen := map[int]bool{src: true}
		for _, p := range route {
			node = tp.Neighbor(node, p)
			if node < 0 || seen[node] {
				return false
			}
			seen[node] = true
		}
		return node == dest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextPorts never offers a hop after which the destination is
// unreachable — packets routed hop by hop always make it.
func TestUpDownPerHopSafetyProperty(t *testing.T) {
	rng := sim.NewRNG(23)
	f := func(seed uint64, pair uint16) bool {
		rng.Seed(seed)
		tp, err := topology.Irregular(14, 7, 3, rng)
		if err != nil {
			return false
		}
		u := NewUpDown(tp, NewDists(tp))
		src := int(pair) % 14
		dest := int(pair>>4) % 14
		if src == dest {
			return true
		}
		// Walk greedily per hop, always taking the FIRST offered port
		// (the router's adaptive choice), for at most 4N hops.
		node, wentDown := src, false
		var scratch []int
		for hops := 0; hops < 4*14; hops++ {
			if node == dest {
				return true
			}
			scratch = u.NextPorts(node, dest, wentDown, scratch[:0])
			if len(scratch) == 0 {
				return false // stranded: safety violated
			}
			p := scratch[0]
			if !u.IsUp(node, p) {
				wentDown = true
			}
			node = tp.Neighbor(node, p)
		}
		return node == dest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDownReachable(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	u := NewUpDown(tp, NewDists(tp))
	// Every node is down-reachable from the root (node 0).
	for n := 0; n < tp.Nodes; n++ {
		if !u.DownReachable(0, n) {
			t.Fatalf("node %d not down-reachable from the root", n)
		}
	}
	// A node is always down-reachable from itself.
	for n := 0; n < tp.Nodes; n++ {
		if !u.DownReachable(n, n) {
			t.Fatalf("node %d not down-reachable from itself", n)
		}
	}
	// The root is not down-reachable from a leaf (that needs up links).
	if u.DownReachable(8, 0) {
		t.Fatal("root down-reachable from the far corner")
	}
}

func TestDistsRecomputeAfterLinkFailure(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	d := NewDists(tp)
	if d.Between(0, 2) != 2 {
		t.Fatalf("dist(0,2) = %d, want 2", d.Between(0, 2))
	}
	// Fail the east link 1→2 of the top row; the table is stale until
	// recomputed, then routes around (0→1→4→5→2 or 0→3→... = 4 hops).
	p := tp.PortTo(1, 2)
	if err := tp.SetLinkUp(1, p, false); err != nil {
		t.Fatal(err)
	}
	d.Recompute(tp)
	if d.Between(0, 2) != 4 {
		t.Fatalf("post-failure dist(0,2) = %d, want 4", d.Between(0, 2))
	}
	// EPB search now finds a minimal path that avoids the dead link.
	sr, err := Search(tp, d, 0, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Path) != 4 {
		t.Fatalf("rerouted path length %d, want 4", len(sr.Path))
	}
	for _, hop := range sr.Path {
		if hop.Node == 1 && hop.Port == p {
			t.Fatal("search used the failed link")
		}
	}
	// Restore and recompute: back to the original distance.
	tp.SetLinkUp(1, p, true)
	d.Recompute(tp)
	if d.Between(0, 2) != 2 {
		t.Fatalf("post-restore dist(0,2) = %d, want 2", d.Between(0, 2))
	}
}

func TestUpDownRebuildAfterLinkFailure(t *testing.T) {
	tp, _ := topology.Mesh(3, 3, 4)
	d := NewDists(tp)
	u := NewUpDown(tp, d)
	// Fail both links into node 0 (the old root): 0-1 and 0-3.
	for _, m := range []int{1, 3} {
		if err := tp.SetLinkUp(0, tp.PortTo(0, m), false); err != nil {
			t.Fatal(err)
		}
	}
	d.Recompute(tp)
	u.Rebuild()
	// The orientation re-roots on the lowest live node and still routes
	// between all surviving pairs.
	for src := 1; src < tp.Nodes; src++ {
		for dst := 1; dst < tp.Nodes; dst++ {
			if src == dst {
				continue
			}
			ports := u.Route(src, dst)
			if ports == nil {
				t.Fatalf("no up*/down* route %d→%d after rebuild", src, dst)
			}
			if !u.Legal(src, ports) {
				t.Fatalf("illegal route %d→%d: %v", src, dst, ports)
			}
			node := src
			for _, p := range ports {
				node = tp.Neighbor(node, p)
				if node < 0 {
					t.Fatalf("route %d→%d crosses a down link", src, dst)
				}
			}
			if node != dst {
				t.Fatalf("route %d→%d ends at %d", src, dst, node)
			}
		}
	}
}
