package routing

import (
	"fmt"
	"testing"

	"mmr/internal/sim"
	"mmr/internal/topology"
)

// fabricCases builds one topology of every generated shape, so the
// orientation and multipath properties are exercised on all of them.
func fabricCases(t *testing.T) map[string]*topology.Topology {
	t.Helper()
	out := map[string]*topology.Topology{}
	add := func(name string, tp *topology.Topology, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tp
	}
	ft4, err := topology.FatTree(4)
	add("fattree-4", ft4, err)
	ft8, err := topology.FatTree(8)
	add("fattree-8", ft8, err)
	df, err := topology.Dragonfly(4, 2, 2)
	add("dragonfly-4-2-2", df, err)
	m, err := topology.Mesh(4, 4, 4)
	add("mesh-4-4", m, err)
	ir, err := topology.Irregular(20, 6, 3, sim.NewRNG(5))
	add("irregular-20", ir, err)
	return out
}

// follow walks a port path and returns the end node (-1 on a bad hop).
func follow(tp *topology.Topology, src int, path []int) int {
	node := src
	for _, p := range path {
		node = tp.Neighbor(node, p)
		if node < 0 {
			return -1
		}
	}
	return node
}

// TestUpDownOnFabrics asserts the orientation rebuilds cleanly on every
// generated shape and produces complete legal routes between sampled
// pairs, including after a link failure forces a Rebuild.
func TestUpDownOnFabrics(t *testing.T) {
	for name, tp := range fabricCases(t) {
		d := NewDists(tp)
		ud := NewUpDown(tp, d)
		rng := sim.NewRNG(11)
		for i := 0; i < 50; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			path := ud.Route(src, dst)
			if path == nil {
				t.Fatalf("%s: no route %d->%d", name, src, dst)
			}
			if got := follow(tp, src, path); got != dst {
				t.Fatalf("%s: route %d->%d ends at %d", name, src, dst, got)
			}
			if !ud.Legal(src, path) {
				t.Fatalf("%s: illegal route %d->%d: %v", name, src, dst, path)
			}
		}
		// Fail one link and rebuild: routes must still complete (all the
		// generated fabrics stay connected after a single link loss for
		// the shapes used here).
		l := tp.Links[len(tp.Links)/2]
		if err := tp.SetLinkUp(l.A, l.APort, false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tp.Connected() {
			t.Fatalf("%s: disconnected by one link loss", name)
		}
		d.Recompute(tp)
		ud.Rebuild()
		for i := 0; i < 20; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			path := ud.Route(src, dst)
			if path == nil || follow(tp, src, path) != dst || !ud.Legal(src, path) {
				t.Fatalf("%s: bad route %d->%d after rebuild", name, src, dst)
			}
		}
		if err := tp.SetLinkUp(l.A, l.APort, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestValiantLegalAndComplete asserts every Valiant candidate is a legal
// loop-free up*/down* route ending at the destination.
func TestValiantLegalAndComplete(t *testing.T) {
	for name, tp := range fabricCases(t) {
		d := NewDists(tp)
		ud := NewUpDown(tp, d)
		mp := NewMultipath(tp, d, ud)
		rng := sim.NewRNG(23)
		for i := 0; i < 200; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			path := mp.Valiant(src, dst, rng)
			if path == nil {
				t.Fatalf("%s: Valiant returned nil for %d->%d", name, src, dst)
			}
			if got := follow(tp, src, path); got != dst {
				t.Fatalf("%s: Valiant %d->%d ends at %d (path %v)", name, src, dst, got, path)
			}
			if !ud.Legal(src, path) {
				t.Fatalf("%s: Valiant produced illegal path %d->%d: %v", name, src, dst, path)
			}
			seen := map[int]bool{src: true}
			node := src
			for _, p := range path {
				node = tp.Neighbor(node, p)
				if seen[node] {
					t.Fatalf("%s: Valiant path revisits node %d (%d->%d, %v)", name, node, src, dst, path)
				}
				seen[node] = true
			}
		}
	}
}

// TestValiantSpreads asserts that on a fat tree, Valiant actually uses
// more distinct first hops than the greedy minimal route — the point of
// the detour is spreading over the core.
func TestValiantSpreads(t *testing.T) {
	tp, err := topology.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDists(tp)
	ud := NewUpDown(tp, d)
	mp := NewMultipath(tp, d, ud)
	rng := sim.NewRNG(7)
	const k = 8
	src, dst := 0, (k-1)*k // edge router 0 of the last pod: cross-pod traffic
	minimal := map[string]bool{}
	valiant := map[string]bool{}
	for i := 0; i < 100; i++ {
		minimal[fmt.Sprint(mp.Minimal(src, dst))] = true
		valiant[fmt.Sprint(mp.Valiant(src, dst, rng))] = true
	}
	if len(minimal) != 1 {
		t.Fatalf("greedy minimal route should be deterministic, saw %d variants", len(minimal))
	}
	if len(valiant) < 2 {
		t.Fatalf("Valiant produced only %d distinct paths over 100 draws", len(valiant))
	}
}

// TestValiantDeterministicPerSeed asserts path choice is a pure function
// of the RNG stream.
func TestValiantDeterministicPerSeed(t *testing.T) {
	tp, err := topology.Dragonfly(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDists(tp)
	ud := NewUpDown(tp, d)
	run := func() []string {
		mp := NewMultipath(tp, d, ud)
		rng := sim.NewRNG(42)
		var out []string
		for i := 0; i < 64; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			out = append(out, fmt.Sprint(mp.Valiant(src, dst, rng)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestUGALPrefersUnloadedPath asserts the load comparison switches to
// the Valiant detour when the minimal first hop is congested.
func TestUGALPrefersUnloadedPath(t *testing.T) {
	tp, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDists(tp)
	ud := NewUpDown(tp, d)
	mp := NewMultipath(tp, d, ud)
	src, dst := 0, 1 // same pod: minimal goes edge->agg->edge
	min := mp.Minimal(src, dst)
	if min == nil {
		t.Fatal("no minimal route")
	}

	// Unloaded fabric: UGAL must take the minimal route.
	rng := sim.NewRNG(3)
	got := mp.Choose(RouteUGAL, src, dst, rng, func(n, p int) float64 { return 0 })
	if len(got) != len(min) {
		t.Fatalf("unloaded UGAL took a %d-hop path, minimal is %d hops", len(got), len(min))
	}

	// Saturate the minimal first hop: UGAL should pick a detour at least
	// once over repeated draws (Valiant may still draw the same first
	// port occasionally, so assert on the aggregate).
	loaded := func(n, p int) float64 {
		if n == src && p == min[0] {
			return 100
		}
		return 0
	}
	detoured := false
	for i := 0; i < 50 && !detoured; i++ {
		path := mp.Choose(RouteUGAL, src, dst, rng, loaded)
		if got := follow(tp, src, path); got != dst {
			t.Fatalf("UGAL path ends at %d", got)
		}
		if len(path) == 0 || path[0] != min[0] {
			detoured = true
		}
	}
	if !detoured {
		t.Fatal("UGAL never avoided the saturated first hop")
	}
}

// TestRouteModeString pins the flag spellings.
func TestRouteModeString(t *testing.T) {
	if RouteMinimal.String() != "minimal" || RouteValiant.String() != "valiant" || RouteUGAL.String() != "ugal" {
		t.Fatal("RouteMode names changed")
	}
}
