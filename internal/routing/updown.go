package routing

import (
	"mmr/internal/bitvec"
	"mmr/internal/topology"
)

// UpDown implements the deadlock-free adaptive routing used for
// best-effort (VCT) packets on irregular topologies (§3.5, after Silla &
// Duato [26,27], building on the Autonet up*/down* scheme [24]): links
// are oriented by a BFS spanning tree ("up" points toward the root;
// ties break toward the smaller node id), and a legal route never takes
// an up link after a down link. Within that rule the router chooses
// adaptively, preferring minimal hops.
type UpDown struct {
	t      *topology.Topology
	d      *Dists
	root   int   // BFS root the orientation hangs from
	level  []int // BFS level from the root
	parent []int // BFS-tree parent (-1 for the root)

	// downReach[n] has bit m set iff m is reachable from n using down
	// links only. A packet that has gone down may only move toward nodes
	// in its current down-cone; offering any other port would strand it
	// (no legal move could ever reach the destination).
	downReach []*bitvec.Vector
}

// NewUpDown orients the topology from the lowest node that still has an
// up link (node 0 on a healthy topology; any root works, and the lowest
// live one keeps results deterministic).
func NewUpDown(t *topology.Topology, d *Dists) *UpDown {
	u := &UpDown{t: t, d: d}
	u.Rebuild()
	return u
}

// Rebuild recomputes the orientation after a topology change (Autonet's
// reconfiguration step [24]): a fresh BFS tree over the up links, rooted
// at the lowest node with a live link, then new down-cones. Packets in
// flight keep their old went-down state; the transient where an old-epoch
// route briefly violates the new orientation is the reconfiguration gap
// real networks also accept.
func (u *UpDown) Rebuild() {
	t := u.t
	u.root = 0
	for n := 0; n < t.Nodes; n++ {
		live := false
		for p := 0; p < t.Ports; p++ {
			if t.Neighbor(n, p) >= 0 {
				live = true
				break
			}
		}
		if live {
			u.root = n
			break
		}
	}
	u.level = t.ShortestDists(u.root)
	u.parent = make([]int, t.Nodes)
	for n := 0; n < t.Nodes; n++ {
		u.parent[n] = -1
		for p := 0; p < t.Ports; p++ {
			m := t.Neighbor(n, p)
			if m >= 0 && u.level[m] >= 0 && u.level[m] == u.level[n]-1 && (u.parent[n] < 0 || m < u.parent[n]) {
				u.parent[n] = m
			}
		}
	}
	u.computeDownReach()
}

// computeDownReach fills downReach by dynamic programming over the down
// DAG. Down edges strictly increase (level, id) lexicographically, so
// processing nodes in descending (level, id) order sees every down
// successor before its predecessors.
func (u *UpDown) computeDownReach() {
	n := u.t.Nodes
	u.downReach = make([]*bitvec.Vector, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort descending by (level, id); insertion sort is fine at this size.
	less := func(a, b int) bool {
		if u.level[a] != u.level[b] {
			return u.level[a] > u.level[b]
		}
		return a > b
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, node := range order {
		v := bitvec.New(n)
		v.Set(node)
		for p := 0; p < u.t.Ports; p++ {
			m := u.t.Neighbor(node, p)
			if m >= 0 && !u.isUp(node, p) {
				v.Or(v, u.downReach[m])
			}
		}
		u.downReach[node] = v
	}
}

// DownReachable reports whether dest can be reached from n using down
// links only.
func (u *UpDown) DownReachable(n, dest int) bool { return u.downReach[n].Test(dest) }

// IsUp reports whether taking port p from node n traverses an up link
// (toward the root).
func (u *UpDown) IsUp(n, p int) bool { return u.isUp(n, p) }

// isUp reports whether taking port p from node n traverses an up link
// (toward the root).
func (u *UpDown) isUp(n, p int) bool {
	m := u.t.Neighbor(n, p)
	if m < 0 {
		return false
	}
	if u.level[m] != u.level[n] {
		return u.level[m] < u.level[n]
	}
	return m < n // tie-break by id, as in Autonet
}

// NextPorts appends to dst the legal AND safe output ports for a packet
// at node n heading to dest that has already taken a down link iff
// wentDown. Minimal (profitable) ports come first, then non-minimal ones
// — the fully adaptive routing of [26,27] may misroute to escape
// congestion, so callers choose how deep into the list to go. Safety
// means the destination stays reachable after the hop: up hops always
// preserve reachability (climb to the root, then descend), while a down
// hop is offered only if the destination lies in the neighbor's
// down-cone.
func (u *UpDown) NextPorts(n, dest int, wentDown bool, dst []int) []int {
	appendLegal := func(profitable bool) {
		for p := 0; p < u.t.Ports; p++ {
			m := u.t.Neighbor(n, p)
			if m < 0 {
				continue
			}
			up := u.isUp(n, p)
			if wentDown && up {
				continue // down→up transitions are illegal
			}
			if !up && !u.downReach[m].Test(dest) {
				continue // the down-cone of m cannot reach dest
			}
			if u.d.Profitable(u.t, n, p, dest) != profitable {
				continue
			}
			dst = append(dst, p)
		}
	}
	appendLegal(true)
	appendLegal(false)
	return dst
}

// Route computes a complete up*/down* route from src to dest, greedily
// taking the first legal port (preferring minimal ones) and never
// revisiting a node. It returns the port sequence, or nil if the
// orientation blocks every loop-free choice (cannot happen on a connected
// topology rooted at 0, but the caller should not assume).
func (u *UpDown) Route(src, dest int) []int {
	if src == dest {
		return []int{}
	}
	var ports []int
	visited := map[int]bool{src: true}
	node, wentDown := src, false
	var scratch []int
	for node != dest {
		scratch = u.NextPorts(node, dest, wentDown, scratch[:0])
		advanced := false
		for _, p := range scratch {
			m := u.t.Neighbor(node, p)
			if visited[m] {
				continue
			}
			if !u.isUp(node, p) {
				wentDown = true
			}
			ports = append(ports, p)
			visited[m] = true
			node = m
			advanced = true
			break
		}
		if !advanced {
			return u.treeRoute(src, dest)
		}
	}
	return ports
}

// treeRoute climbs the spanning tree from src to the lowest common
// ancestor with dest, then descends — the canonical all-up-then-all-down
// route that always exists on a connected topology.
func (u *UpDown) treeRoute(src, dest int) []int {
	// Ancestor chains up to the root.
	chain := func(n int) []int {
		var c []int
		for n >= 0 {
			c = append(c, n)
			n = u.parent[n]
		}
		return c
	}
	sc, dc := chain(src), chain(dest)
	anc := map[int]int{} // node → index in dest chain
	for i, n := range dc {
		anc[n] = i
	}
	var ports []int
	node := src
	for _, n := range sc {
		if j, ok := anc[n]; ok {
			// Descend from the common ancestor to dest.
			for k := j - 1; k >= 0; k-- {
				p := u.t.PortTo(node, dc[k])
				if p < 0 {
					return nil
				}
				ports = append(ports, p)
				node = dc[k]
			}
			return ports
		}
		// Climb one level.
		p := u.t.PortTo(node, u.parent[n])
		if p < 0 {
			return nil
		}
		ports = append(ports, p)
		node = u.parent[n]
	}
	return nil
}

// Legal reports whether the port sequence from src is a legal up*/down*
// route (no up link after a down link) ending anywhere.
func (u *UpDown) Legal(src int, ports []int) bool {
	node, wentDown := src, false
	for _, p := range ports {
		m := u.t.Neighbor(node, p)
		if m < 0 {
			return false
		}
		up := u.isUp(node, p)
		if wentDown && up {
			return false
		}
		if !up {
			wentDown = true
		}
		node = m
	}
	return true
}
