package routing

import (
	"fmt"

	"mmr/internal/topology"
)

// Dists is an all-pairs hop-distance table over a topology, the basis for
// "profitable" (minimal-path) decisions.
type Dists struct {
	n int
	d [][]int
}

// NewDists precomputes BFS distances from every node.
func NewDists(t *topology.Topology) *Dists {
	d := &Dists{n: t.Nodes, d: make([][]int, t.Nodes)}
	d.Recompute(t)
	return d
}

// Recompute refreshes the table after a topology change (a link failing
// or being restored): distances follow only the currently-up links, so
// minimal-path searches route around failures.
func (d *Dists) Recompute(t *topology.Topology) {
	for s := 0; s < t.Nodes; s++ {
		d.d[s] = t.ShortestDists(s)
	}
}

// Between returns the hop distance from a to b (-1 if unreachable).
func (d *Dists) Between(a, b int) int { return d.d[a][b] }

// Profitable reports whether taking port p from node n moves strictly
// closer to dest — the EPB definition of a profitable link ("an
// exhaustive search of the minimal paths", §3.5).
func (d *Dists) Profitable(t *topology.Topology, n, p, dest int) bool {
	m := t.Neighbor(n, p)
	return m >= 0 && d.d[m][dest] >= 0 && d.d[m][dest] < d.d[n][dest]
}

// EPBStep makes one routing decision for a probe at node n heading to
// dest: the first profitable output port not yet recorded in the history
// store and accepted by canUse (which tests VC and bandwidth
// availability, §4.2). It returns (port, true) to advance, or (-1, false)
// to backtrack — every profitable link from n has been searched.
func EPBStep(t *topology.Topology, d *Dists, n, dest int, h *History, canUse func(port int) bool) (int, bool) {
	for p := 0; p < t.Ports; p++ {
		if h.Searched(p) || !d.Profitable(t, n, p, dest) {
			continue
		}
		h.Mark(p)
		if canUse == nil || canUse(p) {
			return p, true
		}
	}
	return -1, false
}

// PathHop is one reserved hop of an EPB search: the node and the output
// port taken from it.
type PathHop struct {
	Node, Port int
}

// SearchResult reports an offline EPB search.
type SearchResult struct {
	Path       []PathHop // hops from src to dest (empty if src == dest)
	Backtracks int       // how many times the probe backed up
	Visited    int       // total forward hops taken, including undone ones
}

// Search runs the complete EPB protocol over a topology as a synchronous
// algorithm: the probe advances over profitable links that reserve
// successfully, backtracks when a node's profitable links are exhausted,
// and fails only after backtracking past the source — at which point EPB
// has provably searched every minimal path (§3.5). reserve and release
// are the resource callbacks (nil to search topology-only).
//
// The event-driven network package drives the same EPBStep decision
// function hop by hop with real probe packets; Search is the reference
// implementation used by tests, tools and admission what-if analysis.
func Search(t *topology.Topology, d *Dists, src, dest int,
	reserve func(node, port int) bool, release func(node, port int)) (*SearchResult, error) {

	if src < 0 || src >= t.Nodes || dest < 0 || dest >= t.Nodes {
		return nil, fmt.Errorf("routing: endpoints (%d,%d) out of range", src, dest)
	}
	res := &SearchResult{}
	if src == dest {
		return res, nil
	}
	// One history store per node on the current path — in hardware this
	// state lives with the input VC the probe occupies (§3.5). The map
	// keeps one-shot searches O(path) in space; batched establishment
	// uses SearchInto, whose stamped flat arrays amortize across calls.
	hist := map[int]*History{src: {}}
	node := src
	for {
		canUse := func(p int) bool {
			if reserve == nil {
				return true
			}
			return reserve(node, p)
		}
		port, ok := EPBStep(t, d, node, dest, hist[node], canUse)
		if ok {
			res.Path = append(res.Path, PathHop{Node: node, Port: port})
			res.Visited++
			node = t.Neighbor(node, port)
			if node == dest {
				return res, nil
			}
			if hist[node] == nil {
				hist[node] = &History{}
			}
			continue
		}
		// Exhausted: backtrack, releasing the hop that led here.
		delete(hist, node)
		if node == src {
			return nil, fmt.Errorf("routing: no minimal path with free resources from %d to %d", src, dest)
		}
		last := res.Path[len(res.Path)-1]
		res.Path = res.Path[:len(res.Path)-1]
		if release != nil {
			release(last.Node, last.Port)
		}
		res.Backtracks++
		node = last.Node
	}
}

// SearchScratch is reusable per-search state for SearchInto: per-node
// history stores as a stamped flat array (no map churn, no per-visit
// allocation) and a reusable SearchResult. One scratch amortizes the
// search-state allocations across an arbitrary number of searches —
// OpenBatch runs ~10⁶ establishments against a single instance.
type SearchScratch struct {
	hist  []History
	stamp []uint64
	gen   uint64
	res   SearchResult
}

// NewSearchScratch sizes a scratch for a topology of the given order.
func NewSearchScratch(nodes int) *SearchScratch {
	return &SearchScratch{hist: make([]History, nodes), stamp: make([]uint64, nodes)}
}

// SearchInto is Search against caller-owned scratch. It makes decisions
// identical to a fresh Search — the stamped history array reproduces the
// map semantics exactly (a node's history is cleared when the probe
// backtracks off it, and fresh on first visit per search). The returned
// result aliases the scratch and is valid until the next SearchInto call
// on the same scratch.
func SearchInto(t *topology.Topology, d *Dists, src, dest int,
	reserve func(node, port int) bool, release func(node, port int), scr *SearchScratch) (*SearchResult, error) {

	if src < 0 || src >= t.Nodes || dest < 0 || dest >= t.Nodes {
		return nil, fmt.Errorf("routing: endpoints (%d,%d) out of range", src, dest)
	}
	res := &scr.res
	res.Path = res.Path[:0]
	res.Backtracks = 0
	res.Visited = 0
	if src == dest {
		return res, nil
	}
	// One history store per node on the current path — in hardware this
	// state lives with the input VC the probe occupies (§3.5). A stamp
	// equal to the current generation marks a node's history as live for
	// this search; stale entries are zeroed lazily on first touch.
	scr.gen++
	scr.stamp[src] = scr.gen
	scr.hist[src] = History{}
	node := src
	for {
		canUse := func(p int) bool {
			if reserve == nil {
				return true
			}
			return reserve(node, p)
		}
		port, ok := EPBStep(t, d, node, dest, &scr.hist[node], canUse)
		if ok {
			res.Path = append(res.Path, PathHop{Node: node, Port: port})
			res.Visited++
			node = t.Neighbor(node, port)
			if node == dest {
				return res, nil
			}
			if scr.stamp[node] != scr.gen {
				scr.stamp[node] = scr.gen
				scr.hist[node] = History{}
			}
			continue
		}
		// Exhausted: backtrack, releasing the hop that led here. Zeroing
		// the history mirrors the map delete — if the probe re-enters this
		// node later in the same search, it starts a fresh exhaustive scan.
		scr.hist[node] = History{}
		if node == src {
			return nil, fmt.Errorf("routing: no minimal path with free resources from %d to %d", src, dest)
		}
		last := res.Path[len(res.Path)-1]
		res.Path = res.Path[:len(res.Path)-1]
		if release != nil {
			release(last.Node, last.Port)
		}
		res.Backtracks++
		node = last.Node
	}
}
