// Package routing implements the MMR's routing and arbitration unit
// state and algorithms (§3.5): direct/reverse channel mapping tables for
// established connections, per-virtual-channel history stores for
// backtracking probes, the Exhaustive Profitable Backtracking (EPB)
// connection-establishment search of Gaughan & Yalamanchili [17], and the
// up*/down* adaptive routing used for best-effort packets on irregular
// topologies (Silla & Duato [26,27]).
package routing

import "fmt"

// VCRef names a virtual channel: a physical port plus a VC index on it
// ("Virtual channels are specified by indicating the physical link and
// the virtual channel on that link", §3.5).
type VCRef struct {
	Port int
	VC   int
}

// Invalid is the null VCRef.
var Invalid = VCRef{Port: -1, VC: -1}

// ChannelMap stores the direct and reverse channel mappings of one router
// (§3.5): direct maps an input VC to the output VC that continues the
// connection (used to forward data flits); reverse maps an output VC back
// (used by backtracking headers and returned acknowledgments).
type ChannelMap struct {
	ports, vcs int
	direct     []VCRef // indexed by input port*vcs+vc
	reverse    []VCRef // indexed by output port*vcs+vc
}

// NewChannelMap returns an empty mapping table for a router with the
// given geometry.
func NewChannelMap(ports, vcs int) *ChannelMap {
	if ports < 1 || vcs < 1 {
		panic(fmt.Sprintf("routing: invalid geometry ports=%d vcs=%d", ports, vcs))
	}
	m := &ChannelMap{ports: ports, vcs: vcs}
	m.direct = make([]VCRef, ports*vcs)
	m.reverse = make([]VCRef, ports*vcs)
	for i := range m.direct {
		m.direct[i] = Invalid
		m.reverse[i] = Invalid
	}
	return m
}

func (m *ChannelMap) idx(r VCRef) int {
	if r.Port < 0 || r.Port >= m.ports || r.VC < 0 || r.VC >= m.vcs {
		panic(fmt.Sprintf("routing: VC reference %+v out of range", r))
	}
	return r.Port*m.vcs + r.VC
}

// Map installs the bidirectional mapping in → out. Mapping an already
// mapped channel returns an error (the previous connection must be torn
// down first).
func (m *ChannelMap) Map(in, out VCRef) error {
	if m.direct[m.idx(in)] != Invalid {
		return fmt.Errorf("routing: input %+v already mapped", in)
	}
	if m.reverse[m.idx(out)] != Invalid {
		return fmt.Errorf("routing: output %+v already mapped", out)
	}
	m.direct[m.idx(in)] = out
	m.reverse[m.idx(out)] = in
	return nil
}

// Direct returns the output VC an input VC maps to, or Invalid.
func (m *ChannelMap) Direct(in VCRef) VCRef { return m.direct[m.idx(in)] }

// Reverse returns the input VC feeding an output VC, or Invalid.
func (m *ChannelMap) Reverse(out VCRef) VCRef { return m.reverse[m.idx(out)] }

// Unmap removes the mapping rooted at input in, returning the output it
// pointed to, or Invalid if none existed.
func (m *ChannelMap) Unmap(in VCRef) VCRef {
	out := m.direct[m.idx(in)]
	if out == Invalid {
		return Invalid
	}
	m.direct[m.idx(in)] = Invalid
	m.reverse[m.idx(out)] = Invalid
	return out
}

// ForEach invokes fn for every installed mapping in ascending input
// (port, VC) order — a deterministic iteration order suitable for
// serialization.
func (m *ChannelMap) ForEach(fn func(in, out VCRef)) {
	for i, out := range m.direct {
		if out != Invalid {
			fn(VCRef{Port: i / m.vcs, VC: i % m.vcs}, out)
		}
	}
}

// Mapped returns the number of installed mappings.
func (m *ChannelMap) Mapped() int {
	n := 0
	for _, r := range m.direct {
		if r != Invalid {
			n++
		}
	}
	return n
}

// History is the per-input-VC history store of §3.5: it records the
// output links a probe has already searched from this router, so
// backtracking never retries them ("In order to avoid searching the same
// links twice, a history store associated with each input virtual channel
// records all the output links that have already been searched").
type History struct {
	searched uint64 // bit per output port; routers have ≤ 64 ports
}

// Mark records that output port p has been searched.
func (h *History) Mark(p int) { h.searched |= 1 << uint(p) }

// Searched reports whether output port p has been tried.
func (h *History) Searched(p int) bool { return h.searched&(1<<uint(p)) != 0 }

// Reset clears the history (when the probe is released).
func (h *History) Reset() { h.searched = 0 }
