package routing

import (
	"mmr/internal/sim"
	"mmr/internal/topology"
)

// multipath.go layers Valiant and UGAL path selection over the up*/down*
// orientation, in the style of sst-macro's multipath_router: the
// multipath layer only *chooses among* candidate paths, while legality
// (deadlock freedom) still comes entirely from the underlying routing
// discipline. A Valiant candidate is a short random walk over the legal
// safe ports (NextPorts — misroutes allowed) to an implicit random
// intermediate, followed by a randomized minimal descent to the
// destination; every hop is drawn from NextPorts, so the whole path is
// a legal up*/down* route and spreading never weakens the
// deadlock-freedom argument. On fat trees the detour randomizes over
// the aggregation/core plane exactly like classic Valiant load
// balancing; on dragonflies it randomizes the global channel taken out
// of the source group.

// RouteMode selects how connection establishment picks candidate paths.
type RouteMode int

const (
	// RouteMinimal is the existing behavior: EPB searches the minimal
	// paths exhaustively and takes the first that reserves (§3.5).
	RouteMinimal RouteMode = iota
	// RouteValiant routes via a random intermediate reached by an up*
	// walk (Valiant load balancing), then descends up*/down* to the
	// destination. Non-minimal, but spreads load across the fabric core.
	RouteValiant
	// RouteUGAL chooses per connection between the minimal route and a
	// Valiant detour by comparing load-weighted path costs (Universal
	// Globally-Adaptive Load-balancing, Singh et al.).
	RouteUGAL
)

// String names the mode for flags and status reports.
func (m RouteMode) String() string {
	switch m {
	case RouteValiant:
		return "valiant"
	case RouteUGAL:
		return "ugal"
	default:
		return "minimal"
	}
}

// Multipath generates candidate port paths for connection establishment.
// It is stateless between calls except for reusable scratch, so one
// instance serves a whole network; it is not safe for concurrent use.
type Multipath struct {
	t  *topology.Topology
	d  *Dists
	ud *UpDown

	// trials bounds how many random walks Valiant tries before falling
	// back to the minimal route; maxDetour bounds the misroute prefix
	// of each walk (the "distance" to the implicit intermediate).
	trials    int
	maxDetour int

	visited []int64 // per-node visit stamps for loop rejection
	stamp   int64
	scratch []int
}

// NewMultipath builds a path generator over an existing orientation.
func NewMultipath(t *topology.Topology, d *Dists, ud *UpDown) *Multipath {
	return &Multipath{t: t, d: d, ud: ud, trials: 4, maxDetour: 3, visited: make([]int64, t.Nodes)}
}

// Minimal returns the greedy minimal up*/down* route (the same route
// EPB would find first on an unloaded fabric), or nil if none exists.
func (mp *Multipath) Minimal(src, dst int) []int {
	return mp.ud.Route(src, dst)
}

// Valiant returns a randomized-detour route: a misroute prefix of
// random length (uniform draws over all legal safe ports, minimal or
// not — the implicit Valiant intermediate is wherever the prefix ends)
// followed by a randomized minimal descent to dst. Every hop comes from
// NextPorts, so the result is always a legal up*/down* route that never
// strands the packet; walks that would revisit a node are abandoned and
// retried, and after `trials` failures the deterministic minimal route
// is returned instead. All draws come from rng, so path choice is a
// pure function of the RNG stream (deterministic per seed).
func (mp *Multipath) Valiant(src, dst int, rng *sim.RNG) []int {
	if src == dst {
		return []int{}
	}
	for try := 0; try < mp.trials; try++ {
		if path := mp.valiantOnce(src, dst, rng); path != nil {
			return path
		}
	}
	return mp.ud.Route(src, dst)
}

func (mp *Multipath) valiantOnce(src, dst int, rng *sim.RNG) []int {
	detour := rng.Intn(mp.maxDetour + 1)
	path := make([]int, 0, detour+4)
	mp.stamp++
	mp.visited[src] = mp.stamp
	node, wentDown := src, false
	for hops := 0; node != dst; hops++ {
		if hops >= mp.t.Nodes {
			return nil // every hop visits a fresh node, so this is unreachable
		}
		// Legal safe ports, profitable first; drop ports that lead to a
		// node already on the walk (a looping candidate would reserve
		// two VCs on one router for a single connection, which the
		// node/port-keyed establishment bookkeeping does not model).
		mp.scratch = mp.ud.NextPorts(node, dst, wentDown, mp.scratch[:0])
		fresh := mp.scratch[:0]
		profitable := 0
		for _, p := range mp.scratch {
			m := mp.t.Neighbor(node, p)
			if mp.visited[m] == mp.stamp {
				continue
			}
			fresh = append(fresh, p)
			if mp.d.Profitable(mp.t, node, p, dst) {
				profitable++
			}
		}
		if len(fresh) == 0 {
			return nil // walked into a corner; retry with a new draw
		}
		var p int
		if hops < detour {
			p = fresh[rng.Intn(len(fresh))] // misroute phase: any legal port
		} else if profitable > 0 {
			p = fresh[rng.Intn(profitable)] // descent: random minimal port
		} else {
			p = fresh[0] // no minimal choice left; take the safe one
		}
		if !mp.ud.IsUp(node, p) {
			wentDown = true
		}
		path = append(path, p)
		node = mp.t.Neighbor(node, p)
		mp.visited[node] = mp.stamp
	}
	return path
}

// Choose returns the candidate path for one establishment attempt under
// the given mode. load reports the first-hop congestion estimate
// (guaranteed bandwidth fraction on node's output port) UGAL weighs
// paths by; it may be nil, in which case UGAL degenerates to shortest
// candidate. A nil return means no legal route exists and the caller
// should fall back to the EPB search.
func (mp *Multipath) Choose(mode RouteMode, src, dst int, rng *sim.RNG, load func(node, port int) float64) []int {
	switch mode {
	case RouteValiant:
		return mp.Valiant(src, dst, rng)
	case RouteUGAL:
		min := mp.ud.Route(src, dst)
		val := mp.Valiant(src, dst, rng)
		return mp.ugalPick(src, min, val, load)
	default:
		return mp.ud.Route(src, dst)
	}
}

// ugalPick implements the UGAL comparison: cost = (1 + first-hop load) ×
// hop count, minimal route winning ties — the same "minimal unless the
// queue says otherwise" rule as sst-macro's multipath_valiant template,
// with admission-guaranteed bandwidth standing in for queue depth.
func (mp *Multipath) ugalPick(src int, min, val []int, load func(node, port int) float64) []int {
	if min == nil {
		return val
	}
	if val == nil || len(val) == 0 || len(min) == 0 {
		return min
	}
	cost := func(path []int) float64 {
		c := float64(len(path))
		if load != nil {
			c *= 1 + load(src, path[0])
		}
		return c
	}
	if cost(val) < cost(min) {
		return val
	}
	return min
}
