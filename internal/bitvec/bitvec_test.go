package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	v := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Test(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Test(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	v.SetTo(4, false)
	if !v.Test(3) || v.Test(4) {
		t.Fatal("SetTo mismatch")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, idx := range []int{-1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("index %d did not panic", idx)
				}
			}()
			New(64).Set(idx)
		}()
	}
}

func TestCountAndAny(t *testing.T) {
	v := New(200)
	if v.Any() || v.Count() != 0 {
		t.Fatal("fresh vector not empty")
	}
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	if got, want := v.Count(), 67; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if !v.Any() {
		t.Fatal("Any false with bits set")
	}
	v.Reset()
	if v.Any() {
		t.Fatal("Any true after Reset")
	}
}

func TestFillRespectsLength(t *testing.T) {
	v := New(70)
	v.Fill()
	if got := v.Count(); got != 70 {
		t.Fatalf("Fill set %d bits, want 70", got)
	}
}

func TestLogicalOps(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	and := New(100)
	and.And(a, b)
	or := New(100)
	or.Or(a, b)
	andnot := New(100)
	andnot.AndNot(a, b)
	for i := 0; i < 100; i++ {
		ai, bi := i%2 == 0, i%3 == 0
		if and.Test(i) != (ai && bi) {
			t.Fatalf("And wrong at %d", i)
		}
		if or.Test(i) != (ai || bi) {
			t.Fatalf("Or wrong at %d", i)
		}
		if andnot.Test(i) != (ai && !bi) {
			t.Fatalf("AndNot wrong at %d", i)
		}
	}
}

func TestNotTrims(t *testing.T) {
	a := New(70)
	n := New(70)
	n.Not(a)
	if got := n.Count(); got != 70 {
		t.Fatalf("Not of empty 70-bit vector has %d bits, want 70", got)
	}
}

func TestAliasedOps(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	a.And(a, b) // aliased destination
	if a.Count() != 1 || !a.Test(2) {
		t.Fatalf("aliased And wrong: %s", a)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(10).And(New(10), New(11))
}

func TestNextSet(t *testing.T) {
	v := New(200)
	v.Set(5)
	v.Set(64)
	v.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1}, {-3, 5},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestNextSetWrap(t *testing.T) {
	v := New(100)
	v.Set(10)
	if got := v.NextSetWrap(50); got != 10 {
		t.Fatalf("NextSetWrap(50) = %d, want 10 (wrapped)", got)
	}
	if got := v.NextSetWrap(10); got != 10 {
		t.Fatalf("NextSetWrap(10) = %d, want 10", got)
	}
	empty := New(100)
	if got := empty.NextSetWrap(0); got != -1 {
		t.Fatalf("NextSetWrap on empty = %d, want -1", got)
	}
	if got := New(0).NextSetWrap(0); got != -1 {
		t.Fatalf("NextSetWrap on zero-length = %d, want -1", got)
	}
}

func TestForEachAndAppendSet(t *testing.T) {
	v := New(300)
	want := []int{0, 63, 64, 128, 299}
	for _, i := range want {
		v.Set(i)
	}
	got := v.AppendSet(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSet = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	v.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach early stop visited %d, want 2", n)
	}
}

func TestEqualCloneCopy(t *testing.T) {
	a := New(90)
	a.Set(3)
	a.Set(89)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Clear(3)
	if a.Equal(b) {
		t.Fatal("clone shares storage with original")
	}
	c := New(90)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	if a.Equal(New(91)) {
		t.Fatal("vectors of different length compared equal")
	}
}

func TestString(t *testing.T) {
	v := New(5)
	v.Set(0)
	v.Set(3)
	if got := v.String(); got != "10010" {
		t.Fatalf("String = %q, want 10010", got)
	}
}

// Property: AND/OR/ANDNOT match per-bit evaluation for arbitrary contents.
func TestLogicalOpsProperty(t *testing.T) {
	f := func(aw, bw [3]uint64) bool {
		const n = 3 * 64
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if aw[i/64]&(1<<(uint(i)%64)) != 0 {
				a.Set(i)
			}
			if bw[i/64]&(1<<(uint(i)%64)) != 0 {
				b.Set(i)
			}
		}
		and, or, an := New(n), New(n), New(n)
		and.And(a, b)
		or.Or(a, b)
		an.AndNot(a, b)
		for i := 0; i < n; i++ {
			if and.Test(i) != (a.Test(i) && b.Test(i)) ||
				or.Test(i) != (a.Test(i) || b.Test(i)) ||
				an.Test(i) != (a.Test(i) && !b.Test(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of indices ForEach visits, and
// NextSet walks exactly those indices.
func TestIterationConsistencyProperty(t *testing.T) {
	f := func(words [4]uint64) bool {
		const n = 4 * 64
		v := New(n)
		for i := 0; i < n; i++ {
			if words[i/64]&(1<<(uint(i)%64)) != 0 {
				v.Set(i)
			}
		}
		var visited []int
		v.ForEach(func(i int) bool { visited = append(visited, i); return true })
		if len(visited) != v.Count() {
			return false
		}
		idx, from := 0, 0
		for {
			i := v.NextSet(from)
			if i < 0 {
				break
			}
			if idx >= len(visited) || visited[idx] != i {
				return false
			}
			idx++
			from = i + 1
		}
		return idx == len(visited)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
