// Package bitvec implements the status bit vectors the MMR uses for
// scheduling decisions (paper §4.1): one bit per virtual channel, updated
// whenever a channel's status changes, combined with wide logical
// operations so a link scheduler can compute sets such as
//
//	flits_available AND credits_available AND NOT CBR_completely_serviced
//
// in a handful of word operations. The paper's point is trading silicon
// (the vectors) for time (parallel bit ops); here the same structure trades
// memory for per-cycle scheduling cost.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The length is set at construction
// and logical operations require equal lengths (mirroring fixed-width
// hardware registers). The zero value is an empty vector of length 0.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector holding n bits. It panics if n < 0.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Set turns bit i on.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear turns bit i off.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to the given value.
func (v *Vector) SetTo(i int, on bool) {
	if on {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Test reports whether bit i is on.
func (v *Vector) Test(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Reset turns every bit off.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Fill turns every bit on.
func (v *Vector) Fill() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// trim clears the unused high bits of the last word so Count and iteration
// never see ghost bits.
func (v *Vector) trim() {
	if r := uint(v.n) % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// CopyFrom overwrites v with the contents of src.
func (v *Vector) CopyFrom(src *Vector) {
	v.sameLen(src)
	copy(v.words, src.words)
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// And sets v = a AND b. v may alias a or b.
func (v *Vector) And(a, b *Vector) {
	a.sameLen(b)
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or sets v = a OR b. v may alias a or b.
func (v *Vector) Or(a, b *Vector) {
	a.sameLen(b)
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// AndNot sets v = a AND NOT b. v may alias a or b.
func (v *Vector) AndNot(a, b *Vector) {
	a.sameLen(b)
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
}

// Not sets v = NOT a (within the vector length). v may alias a.
func (v *Vector) Not(a *Vector) {
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.trim()
}

// NextSet returns the index of the first set bit at or after from, or -1
// if none. A hardware priority encoder performs the same job in one cycle.
func (v *Vector) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	wi := from / wordBits
	w := v.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// NextSetWrap returns the first set bit at or after from, wrapping to the
// start of the vector — the round-robin scan used by link schedulers. It
// returns -1 if the vector is empty of set bits.
func (v *Vector) NextSetWrap(from int) int {
	if v.n == 0 {
		return -1
	}
	from %= v.n
	if from < 0 {
		from += v.n
	}
	if i := v.NextSet(from); i >= 0 {
		return i
	}
	return v.NextSet(0)
}

// ForEach calls fn with the index of every set bit, in ascending order.
// Returning false from fn stops the iteration early.
func (v *Vector) ForEach(fn func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			i := wi*wordBits + bits.TrailingZeros64(w)
			if !fn(i) {
				return
			}
			w &= w - 1 // clear lowest set bit
		}
	}
}

// AppendSet appends the indices of all set bits to dst and returns the
// extended slice. It is the allocation-free way to enumerate candidates.
func (v *Vector) AppendSet(dst []int) []int {
	v.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Equal reports whether v and o have the same length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector as a 0/1 string, bit 0 first — handy in tests
// and debug traces.
func (v *Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
