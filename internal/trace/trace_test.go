package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mmr/internal/sim"
	"mmr/internal/traffic"
)

func TestParseBasic(t *testing.T) {
	in := `# a comment
fps 25
I 40000
B 8000

P 20000
b 7000
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.FrameRate != 25 || len(tr.Frames) != 4 {
		t.Fatalf("parsed %d frames at %g fps", len(tr.Frames), tr.FrameRate)
	}
	if tr.Frames[0].Kind != traffic.FrameI || tr.Frames[0].Bits != 40000 {
		t.Fatalf("frame 0 wrong: %+v", tr.Frames[0])
	}
	if tr.Frames[3].Kind != traffic.FrameB {
		t.Fatal("lowercase type not accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                // no frames
		"I\n",             // missing size
		"X 100\n",         // unknown type
		"I -5\n",          // negative size (Sscanf parses; guard rejects)
		"I abc\n",         // bad size
		"fps -3\nI 100\n", // bad fps
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	tr := &Trace{
		FrameRate: 24,
		Frames: []Frame{
			{traffic.FrameI, 30000}, {traffic.FrameB, 5000}, {traffic.FrameP, 12000},
		},
	}
	var b strings.Builder
	if err := Format(&b, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameRate != tr.FrameRate || len(got.Frames) != len(tr.Frames) {
		t.Fatal("round trip lost shape")
	}
	for i := range tr.Frames {
		if got.Frames[i] != tr.Frames[i] {
			t.Fatalf("frame %d: %+v vs %+v", i, got.Frames[i], tr.Frames[i])
		}
	}
}

func TestTraceArithmetic(t *testing.T) {
	tr := &Trace{
		FrameRate: 30,
		Frames:    []Frame{{traffic.FrameI, 60000}, {traffic.FrameB, 30000}, {traffic.FrameB, 30000}},
	}
	if d := tr.Duration(); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("duration = %v", d)
	}
	// 120000 bits in 0.1 s = 1.2 Mbps mean.
	if r := tr.MeanRate(); math.Abs(float64(r)-1.2e6) > 1 {
		t.Fatalf("mean rate = %v", r)
	}
	// Peak frame 60000 bits at 30 fps = 1.8 Mbps.
	if p := tr.PeakRate(); math.Abs(float64(p)-1.8e6) > 1 {
		t.Fatalf("peak rate = %v", p)
	}
	st := tr.Stats()
	if st[traffic.FrameI].Count != 1 || st[traffic.FrameB].Count != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st[traffic.FrameB].MeanBits != 30000 {
		t.Fatal("mean bits wrong")
	}
}

func TestGenerateMatchesTargetRate(t *testing.T) {
	rng := sim.NewRNG(3)
	cfg := DefaultGenConfig(4*traffic.Mbps, 3600) // 2 minutes at 30 fps
	tr, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != 3600 {
		t.Fatalf("generated %d frames", len(tr.Frames))
	}
	got := float64(tr.MeanRate())
	if math.Abs(got-4e6)/4e6 > 0.15 {
		t.Fatalf("mean rate = %.0f, want ~4e6", got)
	}
	// I frames must be larger than B frames on average.
	st := tr.Stats()
	if st[traffic.FrameI].MeanBits <= st[traffic.FrameB].MeanBits {
		t.Fatal("I frames not larger than B frames")
	}
}

func TestGenerateSceneBurstiness(t *testing.T) {
	rng := sim.NewRNG(9)
	bursty := DefaultGenConfig(4*traffic.Mbps, 6000)
	smooth := bursty
	smooth.SceneVar = 0
	smooth.FrameNoise = 0
	trB, _ := Generate(bursty, rng)
	trS, _ := Generate(smooth, rng)
	// Coefficient of variation of I-frame sizes must be clearly larger
	// with scene modulation on.
	cv := func(tr *Trace) float64 {
		var n, sum, sq float64
		for _, f := range tr.Frames {
			if f.Kind == traffic.FrameI {
				n++
				sum += float64(f.Bits)
				sq += float64(f.Bits) * float64(f.Bits)
			}
		}
		mean := sum / n
		return math.Sqrt(sq/n-mean*mean) / mean
	}
	if cv(trB) < 2*cv(trS)+0.05 {
		t.Fatalf("scene modulation missing: cv bursty=%.3f smooth=%.3f", cv(trB), cv(trS))
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(GenConfig{}, rng); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultGenConfig(0, 10)
	if _, err := Generate(bad, rng); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestSourceReplaysTraceRate(t *testing.T) {
	rng := sim.NewRNG(5)
	cfg := DefaultGenConfig(8*traffic.Mbps, 900) // 30 s
	tr, _ := Generate(cfg, rng)
	s := NewSource(tr, traffic.PaperLink, 0)
	// Play exactly one full loop of the trace.
	cycles := int64(float64(len(tr.Frames)) * traffic.PaperLink.CyclesPerSecond() / tr.FrameRate)
	flits := 0
	for c := int64(0); c < cycles; c++ {
		flits += s.Tick(c)
	}
	gotBits := float64(flits) * float64(traffic.PaperLink.FlitBits)
	wantBits := float64(tr.MeanRate()) * tr.Duration()
	if math.Abs(gotBits-wantBits)/wantBits > 0.05 {
		t.Fatalf("replayed %.0f bits, trace holds %.0f", gotBits, wantBits)
	}
}

func TestSourceRespectsPeak(t *testing.T) {
	tr := &Trace{FrameRate: 30, Frames: []Frame{{traffic.FrameI, 4_000_000}}} // one huge frame
	peak := 40 * traffic.Mbps
	s := NewSource(tr, traffic.PaperLink, peak)
	peakPer := traffic.PaperLink.FlitsPerCycle(peak)
	const W = 2000
	window := 0
	for c := int64(0); c < 400_000; c++ {
		window += s.Tick(c)
		if c%W == W-1 {
			if limit := int(peakPer*W) + 2; window > limit {
				t.Fatalf("window emitted %d flits, peak limit %d", window, limit)
			}
			window = 0
		}
	}
}

// Property: Format then Parse is the identity on generated traces.
func TestFormatParseProperty(t *testing.T) {
	rng := sim.NewRNG(11)
	f := func(seed uint64, frames8 uint8) bool {
		rng.Seed(seed)
		cfg := DefaultGenConfig(2*traffic.Mbps, int(frames8)%200+1)
		tr, err := Generate(cfg, rng)
		if err != nil {
			return false
		}
		var b strings.Builder
		if Format(&b, tr) != nil {
			return false
		}
		got, err := Parse(strings.NewReader(b.String()))
		if err != nil || len(got.Frames) != len(tr.Frames) {
			return false
		}
		for i := range tr.Frames {
			if got.Frames[i] != tr.Frames[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
