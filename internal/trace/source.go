package trace

import (
	"math"

	"mmr/internal/traffic"
)

// Source plays a trace as a VBR flit source: every frame interval the
// next frame's bits join the source backlog, which drains at up to the
// policed peak rate (§4.2 injection limitation) smoothed over one frame
// interval — the same discipline as traffic.VBRSource, but driven by
// recorded frame sizes instead of a statistical model. The trace loops.
type Source struct {
	trace    *Trace
	frameLen float64 // flit cycles per frame interval
	peakPer  float64 // max flits per cycle
	flitBits float64

	idx       int
	nextFrame float64
	backlog   float64
	perCycle  float64
	acc       float64
}

// NewSource returns a source replaying tr on link l, injection-limited to
// peak. A zero peak defaults to 3× the trace's mean rate.
func NewSource(tr *Trace, l traffic.Link, peak traffic.Rate) *Source {
	if peak <= 0 {
		peak = traffic.Rate(3 * float64(tr.MeanRate()))
	}
	return &Source{
		trace:    tr,
		frameLen: l.CyclesPerSecond() / tr.FrameRate,
		peakPer:  l.FlitsPerCycle(peak),
		flitBits: float64(l.FlitBits),
	}
}

// Tick implements traffic.Source.
func (s *Source) Tick(cycle int64) int {
	for float64(cycle) >= s.nextFrame {
		s.backlog += float64(s.trace.Frames[s.idx].Bits)
		s.idx = (s.idx + 1) % len(s.trace.Frames)
		s.nextFrame += s.frameLen
		s.perCycle = math.Min(s.backlog/s.flitBits/s.frameLen, s.peakPer)
	}
	if s.backlog < s.flitBits {
		return 0
	}
	s.acc += s.perCycle
	n := int(s.acc)
	if max := int(s.backlog / s.flitBits); n > max {
		n = max
	}
	s.acc -= float64(n)
	s.backlog -= float64(n) * s.flitBits
	return n
}

// Backlog returns the bits queued at the source interface.
func (s *Source) Backlog() float64 { return s.backlog }

// exp is math.Exp, named to keep trace.go free of a math import knot.
func exp(x float64) float64 { return math.Exp(x) }
