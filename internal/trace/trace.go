// Package trace provides MPEG video frame-size traces for VBR workloads.
// The MMR project's follow-on evaluation ("Performance Evaluation of the
// Multimedia Router with MPEG-2 Video Traffic") drives the router with
// frame-size traces of real MPEG-2 sequences; those traces are not
// redistributable, so this package supplies (a) a text trace format and
// parser compatible with the classic frame-size trace archives (one
// frame per line: type and size in bits), and (b) a statistical
// generator producing synthetic traces with matched GoP structure,
// per-type mean sizes and scene-length autocorrelation — the standard
// substitution when the original tapes are unavailable (see DESIGN.md).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mmr/internal/sim"
	"mmr/internal/traffic"
)

// Frame is one video frame of a trace.
type Frame struct {
	Kind traffic.FrameKind
	Bits int
}

// Trace is a sequence of frames at a fixed frame rate.
type Trace struct {
	Frames    []Frame
	FrameRate float64 // frames per second
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 {
	if t.FrameRate <= 0 {
		return 0
	}
	return float64(len(t.Frames)) / t.FrameRate
}

// MeanRate returns the average bit rate of the trace.
func (t *Trace) MeanRate() traffic.Rate {
	if len(t.Frames) == 0 || t.FrameRate <= 0 {
		return 0
	}
	total := 0
	for _, f := range t.Frames {
		total += f.Bits
	}
	return traffic.Rate(float64(total) / t.Duration())
}

// PeakRate returns the bit rate of the largest frame sustained over one
// frame interval.
func (t *Trace) PeakRate() traffic.Rate {
	max := 0
	for _, f := range t.Frames {
		if f.Bits > max {
			max = f.Bits
		}
	}
	return traffic.Rate(float64(max) * t.FrameRate)
}

// Stats summarizes per-frame-type sizes.
func (t *Trace) Stats() map[traffic.FrameKind]struct {
	Count    int
	MeanBits float64
} {
	type agg struct {
		n   int
		sum float64
	}
	acc := map[traffic.FrameKind]*agg{}
	for _, f := range t.Frames {
		a := acc[f.Kind]
		if a == nil {
			a = &agg{}
			acc[f.Kind] = a
		}
		a.n++
		a.sum += float64(f.Bits)
	}
	out := map[traffic.FrameKind]struct {
		Count    int
		MeanBits float64
	}{}
	for k, a := range acc {
		out[k] = struct {
			Count    int
			MeanBits float64
		}{Count: a.n, MeanBits: a.sum / float64(a.n)}
	}
	return out
}

// Parse reads the classic frame-size trace format: one frame per line,
// "<type> <bits>" where type is I, P or B; '#' starts a comment; blank
// lines are skipped. An optional header line "fps <rate>" sets the frame
// rate (default 30).
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{FrameRate: 30}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want \"<type> <bits>\" or \"fps <rate>\", got %q", line, text)
		}
		if strings.EqualFold(fields[0], "fps") {
			var fps float64
			if _, err := fmt.Sscanf(fields[1], "%g", &fps); err != nil || fps <= 0 {
				return nil, fmt.Errorf("trace: line %d: bad frame rate %q", line, fields[1])
			}
			t.FrameRate = fps
			continue
		}
		var kind traffic.FrameKind
		switch strings.ToUpper(fields[0]) {
		case "I":
			kind = traffic.FrameI
		case "P":
			kind = traffic.FrameP
		case "B":
			kind = traffic.FrameB
		default:
			return nil, fmt.Errorf("trace: line %d: unknown frame type %q", line, fields[0])
		}
		var bits int
		if _, err := fmt.Sscanf(fields[1], "%d", &bits); err != nil || bits < 0 {
			return nil, fmt.Errorf("trace: line %d: bad frame size %q", line, fields[1])
		}
		t.Frames = append(t.Frames, Frame{Kind: kind, Bits: bits})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Frames) == 0 {
		return nil, fmt.Errorf("trace: no frames")
	}
	return t, nil
}

// Format writes a trace in the Parse format.
func Format(w io.Writer, t *Trace) error {
	if _, err := fmt.Fprintf(w, "fps %g\n", t.FrameRate); err != nil {
		return err
	}
	for _, f := range t.Frames {
		var kind string
		switch f.Kind {
		case traffic.FrameI:
			kind = "I"
		case traffic.FrameP:
			kind = "P"
		default:
			kind = "B"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", kind, f.Bits); err != nil {
			return err
		}
	}
	return nil
}

// GenConfig controls synthetic trace generation.
type GenConfig struct {
	Frames     int
	GoP        traffic.GoP
	MeanRate   traffic.Rate // target average bit rate
	SceneLen   float64      // mean scene length in frames (scene changes re-draw activity)
	SceneVar   float64      // multiplicative activity spread between scenes (e.g. 0.4)
	FrameNoise float64      // per-frame multiplicative noise sigma
}

// DefaultGenConfig returns a plausible MPEG-2-like generator setup.
func DefaultGenConfig(rate traffic.Rate, frames int) GenConfig {
	return GenConfig{
		Frames:     frames,
		GoP:        traffic.DefaultGoP(),
		MeanRate:   rate,
		SceneLen:   120, // ~4 s scenes at 30 fps
		SceneVar:   0.35,
		FrameNoise: 0.12,
	}
}

// Generate builds a synthetic trace: frame sizes follow the GoP pattern's
// I/P/B weights scaled to the target mean rate, modulated by a
// scene-level activity factor (redrawn at exponentially distributed
// scene changes — this produces the long-range burstiness of real video)
// and per-frame log-normal noise.
func Generate(cfg GenConfig, rng *sim.RNG) (*Trace, error) {
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("trace: need at least one frame")
	}
	if cfg.MeanRate <= 0 || cfg.GoP.FrameRate <= 0 || len(cfg.GoP.Pattern) == 0 {
		return nil, fmt.Errorf("trace: invalid generator config")
	}
	meanBits := float64(cfg.MeanRate) / cfg.GoP.FrameRate
	meanWeight := 0.0
	for _, k := range cfg.GoP.Pattern {
		meanWeight += gopWeight(cfg.GoP, k)
	}
	meanWeight /= float64(len(cfg.GoP.Pattern))

	t := &Trace{FrameRate: cfg.GoP.FrameRate}
	activity := 1.0
	nextScene := 0
	for i := 0; i < cfg.Frames; i++ {
		if i >= nextScene {
			if cfg.SceneVar > 0 {
				activity = exp(cfg.SceneVar*rng.Norm() - cfg.SceneVar*cfg.SceneVar/2)
			}
			scene := cfg.SceneLen
			if scene < 1 {
				scene = 1
			}
			nextScene = i + 1 + int(rng.Exp(scene))
		}
		k := cfg.GoP.Pattern[i%len(cfg.GoP.Pattern)]
		size := meanBits * gopWeight(cfg.GoP, k) / meanWeight * activity
		if cfg.FrameNoise > 0 {
			size *= exp(cfg.FrameNoise*rng.Norm() - cfg.FrameNoise*cfg.FrameNoise/2)
		}
		if size < 1 {
			size = 1
		}
		t.Frames = append(t.Frames, Frame{Kind: k, Bits: int(size)})
	}
	return t, nil
}

func gopWeight(g traffic.GoP, k traffic.FrameKind) float64 {
	switch k {
	case traffic.FrameI:
		return g.IWeight
	case traffic.FrameP:
		return g.PWeight
	default:
		return g.BWeight
	}
}
