package vcm

// banks.go models the timing side of §3.2: flits are low-order interleaved
// across RAM modules, and the bank count must balance memory access time
// against link speed and crossbar delay. The functional FIFO behaviour
// lives in vcm.go; this file answers "how many extra cycles do concurrent
// reads and writes cost for a given bank count?", which drives the A8
// ablation.

// BankModel computes access conflicts for a VCM built from a given number
// of low-order-interleaved banks, each able to perform one access (read or
// write one phit) per phit time.
type BankModel struct {
	Banks        int
	PhitsPerFlit int
}

// NewBankModel returns a model for the given geometry.
func NewBankModel(banks, phitsPerFlit int) BankModel {
	if banks < 1 {
		banks = 1
	}
	if phitsPerFlit < 1 {
		phitsPerFlit = 1
	}
	return BankModel{Banks: banks, PhitsPerFlit: phitsPerFlit}
}

// BankFor returns the bank holding phit number phit of a flit stored at
// flit-aligned address base (low-order interleaving: consecutive phits hit
// consecutive banks).
func (b BankModel) BankFor(base, phit int) int {
	return (base*b.PhitsPerFlit + phit) % b.Banks
}

// FlitAccessPhits returns how many phit times a whole-flit access
// occupies, given that the flit's phits spread across min(banks, phits)
// banks working in parallel: ceil(phits/banks) sequential groups.
func (b BankModel) FlitAccessPhits() int {
	return (b.PhitsPerFlit + b.Banks - 1) / b.Banks
}

// ConcurrentAccessPhits returns the phit times needed to serve nReads
// whole-flit reads and nWrites whole-flit writes in the same flit cycle.
// Each access needs FlitAccessPhits() of every bank it touches; with
// enough banks the accesses pipeline, otherwise they serialize. The model
// is conservative: accesses are assumed to collide maximally, giving an
// upper bound the real interleaved layout can only improve on.
func (b BankModel) ConcurrentAccessPhits(nReads, nWrites int) int {
	total := nReads + nWrites
	if total == 0 {
		return 0
	}
	perAccess := b.FlitAccessPhits()
	// banksPerAccess banks are busy for each access; the bank array can
	// sustain floor(banks/banksPerAccess) accesses in parallel, minimum 1.
	banksPerAccess := b.PhitsPerFlit
	if banksPerAccess > b.Banks {
		banksPerAccess = b.Banks
	}
	parallel := b.Banks / banksPerAccess
	if parallel < 1 {
		parallel = 1
	}
	waves := (total + parallel - 1) / parallel
	return waves * perAccess
}

// MeetsCycleBudget reports whether the bank array can serve one read and
// one write per flit cycle (the steady-state demand of a link that both
// receives and transmits every cycle) within the phit budget of one flit
// cycle. This is the §3.2 design constraint: "the number of memory modules
// and flit size must be selected to balance memory access time, link
// speed, and crossbar switching delay".
func (b BankModel) MeetsCycleBudget() bool {
	return b.ConcurrentAccessPhits(1, 1) <= b.PhitsPerFlit
}

// PhitBuffer is the small link-side staging buffer of §3.2: deep enough to
// hold the phits that arrive while the control word is decoded and the
// VCM write address generated. It also gives control packets their
// cut-through fast path (§3.2, §3.4).
type PhitBuffer struct {
	depth   int
	pending int // phits currently staged
	drops   int64
}

// NewPhitBuffer returns a buffer holding up to depth phits.
func NewPhitBuffer(depth int) *PhitBuffer {
	if depth < 1 {
		depth = 1
	}
	return &PhitBuffer{depth: depth}
}

// Depth returns the buffer capacity in phits.
func (p *PhitBuffer) Depth() int { return p.depth }

// Pending returns the staged phit count.
func (p *PhitBuffer) Pending() int { return p.pending }

// Arrive stages n phits, reporting how many fit. Link-level flow control
// should prevent overflow; the shortfall is counted so protocol violations
// are observable.
func (p *PhitBuffer) Arrive(n int) int {
	room := p.depth - p.pending
	if n > room {
		p.drops += int64(n - room)
		n = room
	}
	p.pending += n
	return n
}

// Drain removes up to n staged phits (the decode stage writing them into
// the VCM) and returns how many were removed.
func (p *PhitBuffer) Drain(n int) int {
	if n > p.pending {
		n = p.pending
	}
	p.pending -= n
	return n
}

// Drops returns the phits that arrived with no room — always 0 when flow
// control is honored.
func (p *PhitBuffer) Drops() int64 { return p.drops }
