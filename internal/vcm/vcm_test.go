package vcm

import (
	"testing"
	"testing/quick"

	"mmr/internal/flit"
)

func mk(t *testing.T, vcs, depth int) *Memory {
	t.Helper()
	m, err := New(Config{VirtualChannels: vcs, Depth: depth, Banks: 4, PhitsPerFlit: 8, PhitBufferDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{VirtualChannels: 0, Depth: 1, Banks: 1, PhitsPerFlit: 1},
		{VirtualChannels: 1, Depth: 0, Banks: 1, PhitsPerFlit: 1},
		{VirtualChannels: 1, Depth: 1, Banks: 0, PhitsPerFlit: 1},
		{VirtualChannels: 1, Depth: 1, Banks: 1, PhitsPerFlit: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(PaperConfig()); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestPushPopFIFO(t *testing.T) {
	m := mk(t, 4, 3)
	for i := 0; i < 3; i++ {
		if !m.Push(1, &flit.Flit{Seq: int64(i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if m.Push(1, &flit.Flit{Seq: 99}) {
		t.Fatal("push beyond depth accepted")
	}
	if m.Len(1) != 3 || m.Free(1) != 0 || m.Occupied() != 3 {
		t.Fatalf("occupancy wrong: len=%d free=%d occ=%d", m.Len(1), m.Free(1), m.Occupied())
	}
	for i := 0; i < 3; i++ {
		if f := m.Pop(1); f == nil || f.Seq != int64(i) {
			t.Fatalf("pop %d: got %v", i, f)
		}
	}
	if m.Pop(1) != nil {
		t.Fatal("pop from empty returned a flit")
	}
	if m.Occupied() != 0 {
		t.Fatal("occupied count leaked")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	m := mk(t, 2, 2)
	m.Push(0, &flit.Flit{Seq: 7})
	if f := m.Peek(0); f == nil || f.Seq != 7 {
		t.Fatal("peek wrong")
	}
	if m.Len(0) != 1 {
		t.Fatal("peek consumed the flit")
	}
	if m.Peek(1) != nil {
		t.Fatal("peek on empty VC returned a flit")
	}
}

func TestStatusVectorsTrackOccupancy(t *testing.T) {
	m := mk(t, 8, 2)
	if m.FlitsAvailable().Any() {
		t.Fatal("fresh memory advertises flits")
	}
	m.Push(3, &flit.Flit{})
	if !m.FlitsAvailable().Test(3) {
		t.Fatal("flits_available bit not set")
	}
	if m.FullVector().Test(3) {
		t.Fatal("full bit set below capacity")
	}
	m.Push(3, &flit.Flit{})
	if !m.FullVector().Test(3) {
		t.Fatal("full bit not set at capacity")
	}
	m.Pop(3)
	if m.FullVector().Test(3) {
		t.Fatal("full bit stuck after pop")
	}
	m.Pop(3)
	if m.FlitsAvailable().Test(3) {
		t.Fatal("flits_available bit stuck after drain")
	}
}

func TestReserveReleaseFindFree(t *testing.T) {
	m := mk(t, 4, 2)
	if !m.Reserve(2, VCState{Conn: 5, Class: flit.ClassCBR, Allocated: 3, Output: 1}) {
		t.Fatal("reserve failed")
	}
	if m.Reserve(2, VCState{}) {
		t.Fatal("double reserve accepted")
	}
	st := m.State(2)
	if st.Conn != 5 || !st.InUse || st.Output != 1 || st.Allocated != 3 {
		t.Fatalf("state wrong: %+v", st)
	}
	if !m.ReservedVector().Test(2) {
		t.Fatal("reserved bit not set")
	}
	if m.FreeVCs() != 3 {
		t.Fatalf("FreeVCs = %d, want 3", m.FreeVCs())
	}
	if vc := m.FindFree(2); vc != 3 {
		t.Fatalf("FindFree(2) = %d, want 3", vc)
	}
	m.Release(2)
	if m.State(2).InUse || m.State(2).Output != -1 {
		t.Fatal("release did not clear state")
	}
	for i := 0; i < 4; i++ {
		m.Reserve(i, VCState{})
	}
	if m.FindFree(0) != -1 {
		t.Fatal("FindFree on saturated memory should be -1")
	}
}

func TestReleaseNonEmptyPanics(t *testing.T) {
	m := mk(t, 2, 2)
	m.Reserve(0, VCState{})
	m.Push(0, &flit.Flit{})
	defer func() {
		if recover() == nil {
			t.Fatal("release of non-empty VC did not panic")
		}
	}()
	m.Release(0)
}

func TestResetRound(t *testing.T) {
	m := mk(t, 3, 2)
	for i := 0; i < 3; i++ {
		m.SetServiced(i, 7)
	}
	m.ResetRound()
	for i := 0; i < 3; i++ {
		if m.Serviced(i) != 0 {
			t.Fatal("serviced count not reset")
		}
	}
}

// Property: for any push/pop sequence within capacity, flits_available
// and full vectors agree with queue occupancy, and FIFO order holds.
func TestVCMInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := mk(t, 4, 3)
		next := make([]int64, 4)   // next seq to push per VC
		expect := make([]int64, 4) // next seq to pop per VC
		for _, op := range ops {
			vc := int(op) % 4
			if op&0x80 == 0 {
				if m.Push(vc, &flit.Flit{Seq: next[vc]}) {
					next[vc]++
				}
			} else if f := m.Pop(vc); f != nil {
				if f.Seq != expect[vc] {
					return false
				}
				expect[vc]++
			}
			// Invariants.
			total := 0
			for v := 0; v < 4; v++ {
				l := m.Len(v)
				total += l
				if m.FlitsAvailable().Test(v) != (l > 0) {
					return false
				}
				if m.FullVector().Test(v) != (l == 3) {
					return false
				}
				if m.Free(v) != 3-l {
					return false
				}
			}
			if total != m.Occupied() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBankModelGeometry(t *testing.T) {
	b := NewBankModel(8, 8)
	// 8 phits across 8 banks: one phit time per whole-flit access.
	if b.FlitAccessPhits() != 1 {
		t.Fatalf("FlitAccessPhits = %d, want 1", b.FlitAccessPhits())
	}
	// Low-order interleave: consecutive phits hit consecutive banks.
	for p := 0; p < 8; p++ {
		if b.BankFor(0, p) != p {
			t.Fatalf("BankFor(0,%d) = %d", p, b.BankFor(0, p))
		}
	}
	if b.BankFor(1, 0) != 0 { // next flit wraps around to bank 0
		t.Fatalf("BankFor(1,0) = %d", b.BankFor(1, 0))
	}
	b2 := NewBankModel(4, 8)
	if b2.FlitAccessPhits() != 2 {
		t.Fatalf("4 banks, 8 phits: access = %d phit times, want 2", b2.FlitAccessPhits())
	}
}

func TestBankModelConcurrency(t *testing.T) {
	// 8 banks, 8 phits/flit: one access at a time, 1 phit each → read+write = 2.
	b := NewBankModel(8, 8)
	if got := b.ConcurrentAccessPhits(1, 1); got != 2 {
		t.Fatalf("8/8 read+write = %d phit times, want 2", got)
	}
	if !b.MeetsCycleBudget() {
		t.Fatal("8 banks of 8-phit flits should meet the cycle budget")
	}
	// 1 bank: each access costs 8 phit times; read+write = 16 > 8 budget.
	b1 := NewBankModel(1, 8)
	if got := b1.ConcurrentAccessPhits(1, 1); got != 16 {
		t.Fatalf("1-bank read+write = %d, want 16", got)
	}
	if b1.MeetsCycleBudget() {
		t.Fatal("single bank cannot meet the cycle budget")
	}
	// 16 banks, 8 phits: two accesses proceed in parallel.
	b16 := NewBankModel(16, 8)
	if got := b16.ConcurrentAccessPhits(1, 1); got != 1 {
		t.Fatalf("16-bank read+write = %d, want 1", got)
	}
	if got := b.ConcurrentAccessPhits(0, 0); got != 0 {
		t.Fatalf("no accesses = %d, want 0", got)
	}
}

func TestBankModelClamping(t *testing.T) {
	b := NewBankModel(0, 0)
	if b.Banks != 1 || b.PhitsPerFlit != 1 {
		t.Fatal("degenerate geometry not clamped")
	}
}

func TestPhitBuffer(t *testing.T) {
	p := NewPhitBuffer(8)
	if got := p.Arrive(5); got != 5 || p.Pending() != 5 {
		t.Fatalf("arrive: %d pending %d", got, p.Pending())
	}
	if got := p.Arrive(5); got != 3 {
		t.Fatalf("overflow arrive accepted %d, want 3", got)
	}
	if p.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", p.Drops())
	}
	if got := p.Drain(6); got != 6 || p.Pending() != 2 {
		t.Fatalf("drain: %d pending %d", got, p.Pending())
	}
	if got := p.Drain(10); got != 2 || p.Pending() != 0 {
		t.Fatalf("drain past empty: %d pending %d", got, p.Pending())
	}
	if NewPhitBuffer(0).Depth() != 1 {
		t.Fatal("zero depth not clamped")
	}
}
