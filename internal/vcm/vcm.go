// Package vcm implements the MMR's Virtual Channel Memory (§3.2): per-link
// buffering organized as a large set of virtual channels stored in
// low-order-interleaved RAM modules, fronted by small phit buffers that
// absorb arrivals during address decoding. Instead of one queue + mux per
// virtual channel (which the paper rejects for delay and area), the VCM is
// a single memory with per-VC FIFO regions plus status bit vectors that
// the link scheduler reads.
package vcm

import (
	"fmt"

	"mmr/internal/bitvec"
	"mmr/internal/flit"
)

// Config sizes one input link's VCM.
type Config struct {
	VirtualChannels int // V: VCs per physical input link (256 in §5)
	Depth           int // flits of buffering per VC (small, fixed — §1)
	Banks           int // interleaved RAM modules (§3.2)
	PhitsPerFlit    int // phits making up one flit
	PhitBufferDepth int // phits the link-side staging buffer can hold
}

// PaperConfig returns the §5 arrangement: 256 VCs, small fixed per-VC
// buffers, flits interleaved across 8 banks of 16-bit-wide RAM.
func PaperConfig() Config {
	return Config{
		VirtualChannels: 256,
		Depth:           4,
		Banks:           8,
		PhitsPerFlit:    8,
		PhitBufferDepth: 16,
	}
}

func (c Config) validate() error {
	if c.VirtualChannels < 1 {
		return fmt.Errorf("vcm: need at least one virtual channel, got %d", c.VirtualChannels)
	}
	if c.Depth < 1 {
		return fmt.Errorf("vcm: per-VC depth must be >= 1, got %d", c.Depth)
	}
	if c.Banks < 1 {
		return fmt.Errorf("vcm: need at least one bank, got %d", c.Banks)
	}
	if c.PhitsPerFlit < 1 {
		return fmt.Errorf("vcm: phits per flit must be >= 1, got %d", c.PhitsPerFlit)
	}
	return nil
}

// VCState is the per-virtual-channel scheduling state the paper stores
// alongside the buffers (§3.2, §4.3): connection identity, class,
// bandwidth allocation in flit cycles/round, what has been serviced this
// round, and the (dynamic) priority.
type VCState struct {
	Conn  flit.ConnID
	Class flit.Class

	// Allocated is the reserved flit cycles per round (CBR allocation, or
	// VBR permanent bandwidth). Peak is the VBR peak allocation.
	Allocated int
	Peak      int

	// BasePriority is the static VBR priority (dynamically modifiable via
	// control words, §4.3). Bias is the dynamic priority-biasing value the
	// switch scheduler updates every flit cycle (§4.4).
	BasePriority int
	Bias         float64

	// InterArrival caches the connection's flit inter-arrival time in
	// cycles; the biased scheduler grows priority at a rate proportional
	// to delay/InterArrival (§5.1).
	InterArrival float64

	// Output is the switch output port this VC is mapped to (the direct
	// channel mapping, §3.5). -1 when unmapped.
	Output int

	// InUse marks the VC as reserved by a connection or an in-flight
	// packet.
	InUse bool
}

// Memory is one input link's virtual channel memory. Its state is laid
// out structure-of-arrays style: queue rings share one contiguous backing
// array, scheduling state is one contiguous []VCState, and the per-round
// serviced counters live in their own compact array so a round-boundary
// reset is a single memclr instead of a strided walk over fat structs.
//
// The per-VC FIFO rings are pure index arithmetic over the shared
// backing: VC vc owns qbuf[vc*Depth : (vc+1)*Depth), with qhead/qsize
// tracking its ring position. Earlier versions kept a 40-byte ring
// struct (slice header + two ints) per VC; at datacenter scale — 4k
// routers × 33 ports × 64 VCs ≈ 8.6M rings — the two packed int32
// arrays save ~270 MB while compiling to the same ring operations.
type Memory struct {
	cfg   Config
	qbuf  []*flit.Flit
	qhead []int32
	qsize []int32
	state []VCState

	// serviced[vc] counts flit cycles consumed in the current round
	// (§4.1). Kept out of VCState: it is the only per-VC field written on
	// every grant and cleared wholesale at round boundaries, so a packed
	// array keeps both touches on a handful of cache lines.
	serviced []int32

	// Status bit vectors (§4.1). FlitsAvailable has a set bit for every VC
	// with at least one buffered flit; Full for every VC at capacity;
	// Reserved for every in-use VC.
	flitsAvailable *bitvec.Vector
	full           *bitvec.Vector
	reserved       *bitvec.Vector

	occupied int // total flits buffered across VCs

	// ext, when bound, is an external aggregate occupancy counter kept in
	// lock-step with occupied. The network binds every memory of a node to
	// one per-node slot so its activity scan reads a flat array instead of
	// chasing per-port Memory pointers.
	ext *int64
}

// New returns an empty VCM with the given configuration.
func New(cfg Config) (*Memory, error) {
	m := &Memory{}
	if err := Init(m, cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Init initializes m in place — the structure-of-arrays allocation form:
// callers lay several Memory values out in one contiguous slice and Init
// each element, so a router's per-port state is adjacent in memory.
func Init(m *Memory, cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	*m = Memory{
		cfg:   cfg,
		state: make([]VCState, cfg.VirtualChannels),
		// One backing array for every VC ring: queue i occupies the
		// slots [i*Depth, (i+1)*Depth).
		qbuf:           make([]*flit.Flit, cfg.VirtualChannels*cfg.Depth),
		qhead:          make([]int32, cfg.VirtualChannels),
		qsize:          make([]int32, cfg.VirtualChannels),
		serviced:       make([]int32, cfg.VirtualChannels),
		flitsAvailable: bitvec.New(cfg.VirtualChannels),
		full:           bitvec.New(cfg.VirtualChannels),
		reserved:       bitvec.New(cfg.VirtualChannels),
	}
	for i := range m.state {
		m.state[i].Output = -1
	}
	return nil
}

// BindOccupancy points the memory's aggregate occupancy mirror at ext:
// every Push/Pop updates *ext alongside the internal count. Bind before
// buffering any flits (the mirror starts from the current occupancy).
func (m *Memory) BindOccupancy(ext *int64) {
	m.ext = ext
	*ext += int64(m.occupied)
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// NumVCs returns the number of virtual channels.
func (m *Memory) NumVCs() int { return m.cfg.VirtualChannels }

// State returns the mutable scheduling state of VC vc.
func (m *Memory) State(vc int) *VCState { return &m.state[vc] }

// Len returns the number of flits buffered in VC vc.
func (m *Memory) Len(vc int) int { return int(m.qsize[vc]) }

// Occupied returns the total flits buffered across all VCs.
func (m *Memory) Occupied() int { return m.occupied }

// Free returns the remaining flit slots in VC vc — the credit count the
// upstream node holds for this VC under link-level flow control.
func (m *Memory) Free(vc int) int { return m.cfg.Depth - int(m.qsize[vc]) }

// Push appends a flit to VC vc. It reports false (dropping nothing —
// callers must hold a credit before sending, so a full queue is a flow
// control protocol violation they can surface) when the VC is full.
func (m *Memory) Push(vc int, f *flit.Flit) bool {
	depth := int32(m.cfg.Depth)
	if m.qsize[vc] == depth {
		return false
	}
	m.qbuf[vc*m.cfg.Depth+int((m.qhead[vc]+m.qsize[vc])%depth)] = f
	m.qsize[vc]++
	m.occupied++
	if m.ext != nil {
		*m.ext++
	}
	m.flitsAvailable.Set(vc)
	if m.qsize[vc] == depth {
		m.full.Set(vc)
	}
	return true
}

// Peek returns the head flit of VC vc without removing it, or nil.
func (m *Memory) Peek(vc int) *flit.Flit {
	if m.qsize[vc] == 0 {
		return nil
	}
	return m.qbuf[vc*m.cfg.Depth+int(m.qhead[vc])]
}

// Pop removes and returns the head flit of VC vc, or nil if empty.
func (m *Memory) Pop(vc int) *flit.Flit {
	if m.qsize[vc] == 0 {
		return nil
	}
	i := vc*m.cfg.Depth + int(m.qhead[vc])
	f := m.qbuf[i]
	m.qbuf[i] = nil
	m.qhead[vc] = (m.qhead[vc] + 1) % int32(m.cfg.Depth)
	m.qsize[vc]--
	m.occupied--
	if m.ext != nil {
		*m.ext--
	}
	if m.qsize[vc] == 0 {
		m.flitsAvailable.Clear(vc)
	}
	m.full.Clear(vc)
	return f
}

// FlitsAvailable returns the flits_available status vector. Callers must
// treat it as read-only; it stays current as flits move.
func (m *Memory) FlitsAvailable() *bitvec.Vector { return m.flitsAvailable }

// FullVector returns the input_buffer_full status vector (read-only).
func (m *Memory) FullVector() *bitvec.Vector { return m.full }

// ReservedVector returns the in-use status vector (read-only).
func (m *Memory) ReservedVector() *bitvec.Vector { return m.reserved }

// Reserve claims VC vc for a connection or packet, recording its class,
// mapping and allocation. It reports false if the VC is already in use.
func (m *Memory) Reserve(vc int, st VCState) bool {
	if m.state[vc].InUse {
		return false
	}
	st.InUse = true
	m.state[vc] = st
	m.serviced[vc] = 0
	m.reserved.Set(vc)
	return true
}

// Release frees VC vc. Buffered flits must have drained first; releasing a
// non-empty VC panics because it would leak flits mid-connection.
func (m *Memory) Release(vc int) {
	if m.qsize[vc] != 0 {
		panic(fmt.Sprintf("vcm: release of non-empty VC %d (%d flits)", vc, m.qsize[vc]))
	}
	m.state[vc] = VCState{Output: -1}
	m.serviced[vc] = 0
	m.reserved.Clear(vc)
}

// FlitAt returns the i-th buffered flit of VC vc in FIFO order (0 is
// the head) without removing it. Checkpointing uses it to serialize
// queue contents; i outside [0, Len) panics.
func (m *Memory) FlitAt(vc, i int) *flit.Flit {
	if i < 0 || i >= int(m.qsize[vc]) {
		panic(fmt.Sprintf("vcm: FlitAt(%d, %d) outside queue of %d flits", vc, i, m.qsize[vc]))
	}
	return m.qbuf[vc*m.cfg.Depth+(int(m.qhead[vc])+i)%m.cfg.Depth]
}

// RestoreState overwrites VC vc's scheduling state wholesale, setting
// the reserved bit from st.InUse. Unlike Reserve it does not force
// InUse, so checkpoint restore can reinstate both free and reserved VCs
// with exact Bias values (per-round serviced counters are restored
// separately via SetServiced). Buffered flits are restored via Push.
func (m *Memory) RestoreState(vc int, st VCState) {
	m.state[vc] = st
	if st.InUse {
		m.reserved.Set(vc)
	} else {
		m.reserved.Clear(vc)
	}
}

// FindFree returns a VC that is not in use, scanning round-robin from the
// given position, or -1 if every VC is reserved.
func (m *Memory) FindFree(from int) int {
	n := m.cfg.VirtualChannels
	for i := 0; i < n; i++ {
		vc := (from + i) % n
		if !m.state[vc].InUse {
			return vc
		}
	}
	return -1
}

// FreeVCs returns the number of unreserved virtual channels.
func (m *Memory) FreeVCs() int { return m.cfg.VirtualChannels - m.reserved.Count() }

// Serviced returns the flit cycles VC vc has consumed this round.
func (m *Memory) Serviced(vc int) int { return int(m.serviced[vc]) }

// IncServiced charges one flit cycle to VC vc's round account.
func (m *Memory) IncServiced(vc int) { m.serviced[vc]++ }

// SetServiced overwrites VC vc's round account (checkpoint restore,
// tests constructing mid-round states).
func (m *Memory) SetServiced(vc, n int) { m.serviced[vc] = int32(n) }

// ResetRound clears every VC's serviced counter — called at each round
// (frame) boundary by the link scheduler (§4.1). The counters are a
// packed array precisely so this compiles to one memclr.
func (m *Memory) ResetRound() {
	for i := range m.serviced {
		m.serviced[i] = 0
	}
}
