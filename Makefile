GO ?= go
FUZZTIME ?= 30s
BENCHTIME ?= 2s
BENCHTOL ?= 0.10
BENCHFILE ?= BENCH_PR2.json
# Hot-path microbenchmarks gated by bench-check; figure benchmarks are
# recorded by `make bench` but not gated (multi-second sims, noisier).
MICROBENCH = RouterStep|PriorityArbiter|LinkScheduler|EstablishWorkload

.PHONY: build test vet race fuzz-smoke check bench bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short coverage-guided fuzz budget over the network churn property
# (opens, probes, teardowns, link failures/repairs interleaved).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzNetworkChurn -fuzztime=$(FUZZTIME) ./internal/network

# Run the microbenchmarks and figure benchmarks with allocation stats and
# record them into $(BENCHFILE) under the "current" section (the "pre-pr"
# baseline section is preserved).
bench:
	{ $(GO) test -run='^$$' -bench='^Benchmark($(MICROBENCH))$$' -benchmem -benchtime=$(BENCHTIME) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkFigure[345]$$' -benchmem -benchtime=1x . ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHFILE) -section current

# Regression gate: rerun the microbenchmarks and fail if ns/op regresses
# more than BENCHTOL vs the committed baseline, or if a zero-alloc
# benchmark starts allocating. (Also part of the PR checklist: run
# `make bench-check` alongside `make check` before merging.)
bench-check:
	$(GO) test -run='^$$' -bench='^Benchmark($(MICROBENCH))$$' -benchmem -benchtime=$(BENCHTIME) . \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -check -baseline $(BENCHFILE) -against current -tol $(BENCHTOL)

check: vet test race fuzz-smoke
