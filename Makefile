GO ?= go
FUZZTIME ?= 30s

.PHONY: build test vet race fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short coverage-guided fuzz budget over the network churn property
# (opens, probes, teardowns, link failures/repairs interleaved).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzNetworkChurn -fuzztime=$(FUZZTIME) ./internal/network

check: vet test race fuzz-smoke
