GO ?= go
FUZZTIME ?= 30s
BENCHTIME ?= 2s
BENCHTOL ?= 0.10
# The network-cycle gate tolerates more: barrier-heavy benchmarks are
# sensitive to host scheduling noise, especially on shared runners.
NETBENCHTOL ?= 0.30
BENCHFILE ?= BENCH_PR2.json
NETBENCHFILE ?= BENCH_PR3.json
SPARSEBENCHFILE ?= BENCH_PR5.json
SCALEBENCHFILE ?= BENCH_PR10.json
# Worker width the scaling lane is measured at. Pinning GOMAXPROCS makes
# the recorded host shape (and therefore which rows the -scale gate
# treats as gated vs informational) reproducible across machines.
SCALEPROCS ?= 4
# Parallel-efficiency floor for gated scaling rows:
# eff(w) = ns(1)/(ns(w)·w) must stay at or above this on hosts with
# enough CPUs to exercise the width (smaller hosts report the rows as
# informational — see cmd/benchjson -scale).
MINEFF ?= 0.35
# Hot-path microbenchmarks gated by bench-check; figure benchmarks are
# recorded by `make bench` but not gated (multi-second sims, noisier).
MICROBENCH = RouterStep|PriorityArbiter|LinkScheduler|EstablishWorkload
# Network-cycle benchmarks: the serial step plus the worker-pool scaling
# points (w=2/4/8 sub-benchmarks), gated against $(NETBENCHFILE).
NETBENCH = NetworkStep|NetworkStepParallel
# Sparse/idle benchmarks: the activity-gated low-load step, its ungated
# reference (the ≥3× speedup denominator) and whole-clock fast-forward
# through Run, gated against $(SPARSEBENCHFILE).
SPARSEBENCH = NetworkStepSparse|NetworkStepSparseNoSkip|NetworkRunIdleGaps
# Worker-scaling curve (w=1/2/4/GOMAXPROCS sub-benchmarks) plus the
# sparse step, recorded together into $(SCALEBENCHFILE) so the SoA
# datapath's speedup and its scaling shape live in one section with
# host provenance.
SCALEBENCH = NetworkStepScaling|NetworkStepSparse
SCALEFAMILY = NetworkStepScaling
# Fabric-footprint and batched-establishment benchmarks, recorded into
# $(MEMBENCHFILE). The footprint rows are gated as *absolute* budgets
# (benchjson -max), not relative deltas: the question is whether the
# ROADMAP's 4k-router / 1M-flow fabric fits in a few GB, and
# 4096·600000 + 1e6·1200 ≈ 3.7 GB keeps that true with ~2× headroom
# over the measured values.
MEMBENCH = FabricFootprint|OpenSerial|OpenBatch
MEMBENCHFILE = BENCH_PR8.json
MEMBUDGETS = bytes/router=600000,bytes/flow=1200

SOAKEVENTS ?= 1000000
SOAKKILLS ?= 25
SOAKSEED ?= 7

.PHONY: build test vet race fuzz-smoke soak soak-smoke check bench bench-check bench-net bench-net-check bench-sparse bench-sparse-check bench-scale bench-scale-check bench-mem bench-mem-check smoke-large-fabric

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short coverage-guided fuzz budget over the network churn property
# (opens, probes, teardowns, link failures/repairs interleaved).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzNetworkChurn -fuzztime=$(FUZZTIME) ./internal/network

# Million-event churn soak: Poisson session arrivals/departures, flash
# crowds, regional outages, and kill+restore cycles from checkpoints at
# random points, with conservation and invariant audits after every
# restore. The acceptance run for long-lived fabric operation (several
# minutes); soak-smoke is the CI-sized budget.
soak:
	$(GO) run ./cmd/mmrsoak -events $(SOAKEVENTS) -kills $(SOAKKILLS) -seed $(SOAKSEED)

soak-smoke:
	$(GO) run ./cmd/mmrsoak -events 20000 -kills 3 -seed $(SOAKSEED) -report-every 0

# Run the microbenchmarks and figure benchmarks with allocation stats and
# record them into $(BENCHFILE) under the "current" section (the "pre-pr"
# baseline section is preserved).
bench:
	{ $(GO) test -run='^$$' -bench='^Benchmark($(MICROBENCH))$$' -benchmem -benchtime=$(BENCHTIME) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkFigure[345]$$' -benchmem -benchtime=1x . ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHFILE) -section current

# Regression gate: rerun the microbenchmarks and fail if ns/op regresses
# more than BENCHTOL vs the committed baseline, or if a zero-alloc
# benchmark starts allocating. (Also part of the PR checklist: run
# `make bench-check` alongside `make check` before merging.)
# -allow-missing: this gate deliberately reruns only the microbenchmarks,
# while the baseline section also records the (ungated) figure
# benchmarks; absences are reported as warnings instead of failures.
bench-check: bench-net-check bench-sparse-check bench-scale-check bench-mem-check
	$(GO) test -run='^$$' -bench='^Benchmark($(MICROBENCH))$$' -benchmem -benchtime=$(BENCHTIME) . \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -check -baseline $(BENCHFILE) -against current -tol $(BENCHTOL) -allow-missing

# Record serial-vs-parallel network stepping into $(NETBENCHFILE)'s
# "current" section (the "pre-pr" section preserves the pre-parallelism
# serial engine for comparison). Scaling beyond w=1 needs real cores:
# on a single-CPU host the parallel rows only measure barrier overhead.
bench-net:
	$(GO) test -run='^$$' -bench='^Benchmark($(NETBENCH))$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(NETBENCHFILE) -section current

# Gate the network cycle: the serial step must stay within NETBENCHTOL of
# the committed number and remain allocation-free. The w>1 rows are
# recorded by bench-net but not gated — on a shared or single-CPU runner
# they measure scheduler noise, not the simulator (the determinism and
# steady-state-allocation tests cover parallel correctness instead).
bench-net-check:
	$(GO) test -run='^$$' -bench='^BenchmarkNetworkStep$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -check -baseline $(NETBENCHFILE) -against current -tol $(NETBENCHTOL) -allow-missing

# Record the sparse-load and idle-gap benchmarks (activity gating / fast-
# forward hot paths) into $(SPARSEBENCHFILE)'s "current" section. The
# NoSkip row is the ungated reference: Sparse must beat it ≥3× on the
# same workload or the gating machinery is not earning its complexity.
bench-sparse:
	$(GO) test -run='^$$' -bench='^Benchmark($(SPARSEBENCH))$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(SPARSEBENCHFILE) -section current

# Gate the sparse cycle and idle-gap fast-forward against the committed
# baseline: ns/op within NETBENCHTOL (same noise profile as the network
# gate) and still allocation-free in steady state.
bench-sparse-check:
	$(GO) test -run='^$$' -bench='^Benchmark($(SPARSEBENCH))$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -check -baseline $(SPARSEBENCHFILE) -against current -tol $(NETBENCHTOL) -allow-missing

# Record the worker-scaling curve and the sparse step into
# $(SCALEBENCHFILE)'s "current" section, stamped with host shape
# (NumCPU/GOMAXPROCS/cpu model) so the numbers carry their provenance.
bench-scale:
	GOMAXPROCS=$(SCALEPROCS) $(GO) test -run='^$$' -bench='^Benchmark($(SCALEBENCH))$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(SCALEBENCHFILE) -section current

# Gate parallel efficiency instead of raw ns/op: every w=N row the
# host can exercise must keep eff(w) = ns(1)/(ns(w)·w) ≥ MINEFF and
# stay allocation-free; wider-than-host rows print as informational.
# Unlike the ns/op gates this one is host-relative (normalized by the
# run's own serial row), so it cannot be fooled by a fast machine or
# flaked by a slow one.
bench-scale-check:
	GOMAXPROCS=$(SCALEPROCS) $(GO) test -run='^$$' -bench='^Benchmark$(SCALEFAMILY)$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -scale $(SCALEFAMILY) -min-eff $(MINEFF)

# Record the fabric-footprint (bytes/router, bytes/flow on fat trees)
# and serial-vs-batched establishment benchmarks into $(MEMBENCHFILE).
# Footprint rows rebuild whole fabrics per iteration, so they run 1x;
# the establishment pair uses the normal budget.
bench-mem:
	{ $(GO) test -run='^$$' -bench='^BenchmarkFabricFootprint$$' -benchtime=1x ./internal/network ; \
	  $(GO) test -run='^$$' -bench='^Benchmark(OpenSerial|OpenBatch)$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(MEMBENCHFILE) -section current

# Gate the footprint as an absolute budget (MEMBUDGETS) plus the usual
# relative ns/op check on the establishment pair. The budget side is
# host-independent — bytes are bytes — so it gates everywhere, even on
# runners too noisy for timing tolerances.
bench-mem-check:
	{ $(GO) test -run='^$$' -bench='^BenchmarkFabricFootprint$$' -benchtime=1x ./internal/network ; \
	  $(GO) test -run='^$$' -bench='^Benchmark(OpenSerial|OpenBatch)$$' -benchmem -benchtime=$(BENCHTIME) ./internal/network ; } \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -check -baseline $(MEMBENCHFILE) -against current -tol $(NETBENCHTOL) -allow-missing -max '$(MEMBUDGETS)'

# Large-fabric smoke: a 1280-router fat tree brought up with a batched
# ≥100k-session establishment, stepped, and checkpointed under a
# bounded heap. Skipped under -short; ~20 s and ~2 GB on a laptop.
smoke-large-fabric:
	$(GO) test -run='^TestLargeFabricSmoke$$' -v -timeout 10m ./internal/network

check: vet test race fuzz-smoke soak-smoke
