// Command mmrsoak is the long-lived-fabric churn harness: it drives a
// network through a large budget of session events — Poisson connection
// arrivals and departures, flash crowds, regional fault outages — and
// kills and restores the fabric from a checkpoint at random points along
// the way, auditing after every restore that
//
//   - the resource invariants hold (no leaked VCs, credits or bandwidth
//     allocation), via CheckInvariants on the restored fabric,
//   - the clock and the open-connection count are conserved exactly, and
//   - the delivery counters carried over bit-exactly.
//
// Restores deliberately rotate the worker count and activity-gating
// setting, so every checkpoint is also a live proof that the serialized
// state is execution-strategy independent.
//
// The default budget is one million session events (`make soak`); CI
// runs a small smoke budget on every push.
//
//	mmrsoak -events 1000000 -kills 25 -seed 7
//	mmrsoak -events 20000 -kills 3 -seed 7     # CI smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/network"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

type soakOpts struct {
	topo          string
	w, h, ports   int
	ftK           int
	dfA, dfP, dfH int
	vcs           int
	events        int64
	kills         int
	seed          uint64
	maxLive       int
	meanGap       float64
	flashEvery    int64
	flashBurst    int
	faultEvery    int64
	downtime      int64
	drainLimit    int64
	reportEvery   int64
	cpuProfile    string
}

func main() {
	o := soakOpts{
		topo: "mesh", w: 4, h: 4, ports: 4, ftK: 4, dfA: 4, dfP: 2, dfH: 2, vcs: 32,
		events: 1_000_000, kills: 25, seed: 7,
		maxLive: 64, meanGap: 4,
		flashEvery: 10_000, flashBurst: 32,
		faultEvery: 5_000, downtime: 1500,
		drainLimit: 2000, reportEvery: 100_000,
	}
	flag.StringVar(&o.topo, "topo", o.topo, "topology: mesh, torus, fattree, dragonfly")
	flag.IntVar(&o.w, "w", o.w, "mesh/torus width")
	flag.IntVar(&o.h, "h", o.h, "mesh/torus height")
	flag.IntVar(&o.ports, "ports", o.ports, "inter-router ports per router (mesh/torus)")
	flag.IntVar(&o.ftK, "ft-k", o.ftK, "fat-tree arity k")
	flag.IntVar(&o.dfA, "df-a", o.dfA, "dragonfly routers per group")
	flag.IntVar(&o.dfP, "df-p", o.dfP, "dragonfly host-facing ports per router")
	flag.IntVar(&o.dfH, "df-h", o.dfH, "dragonfly global links per router")
	flag.IntVar(&o.vcs, "vcs", o.vcs, "virtual channels per input port")
	flag.Int64Var(&o.events, "events", o.events, "session-event budget (opens + closes)")
	flag.IntVar(&o.kills, "kills", o.kills, "fabric kill+restore points spread over the run")
	flag.Uint64Var(&o.seed, "seed", o.seed, "workload seed")
	flag.IntVar(&o.maxLive, "max-live", o.maxLive, "cap on concurrently open connections")
	flag.Float64Var(&o.meanGap, "mean-gap", o.meanGap, "mean cycles between session events (Poisson)")
	flag.Int64Var(&o.flashEvery, "flash-every", o.flashEvery, "events between flash crowds (0 = off)")
	flag.IntVar(&o.flashBurst, "flash-burst", o.flashBurst, "opens per flash crowd")
	flag.Int64Var(&o.faultEvery, "fault-every", o.faultEvery, "events between regional outages (0 = off)")
	flag.Int64Var(&o.downtime, "fault-downtime", o.downtime, "cycles a regional outage lasts")
	flag.Int64Var(&o.drainLimit, "drain-limit", o.drainLimit, "drain cycle budget per close")
	flag.Int64Var(&o.reportEvery, "report-every", o.reportEvery, "events between progress lines (0 = quiet)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", o.cpuProfile, "write a CPU profile to this path")
	flag.Parse()

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmrsoak:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	if err := soak(o); err != nil {
		fmt.Fprintln(os.Stderr, "mmrsoak:", err)
		os.Exit(1)
	}
}

// harness owns the fabric under churn plus the bookkeeping the audits
// need. After a kill+restore the fabric pointer is replaced wholesale;
// everything else is re-derived from the restored state.
type harness struct {
	o    soakOpts
	cfg  network.Config
	tp   *topology.Topology
	rng  *sim.RNG // workload stream: never touched by restores
	n    *network.Network
	live []*network.Conn

	ckptPath     string
	openErrs     map[string]int64
	opens        int64
	opensOK      int64
	closes       int64
	retriesUsed  int64
	flashCrowds  int64
	outages      int64
	restores     int64
	lastFaultEnd int64
}

// buildTopology constructs the soak fabric; kill+restore rebuilds it
// from scratch, so generators must be deterministic per flags.
func buildTopology(o soakOpts) (*topology.Topology, error) {
	switch o.topo {
	case "mesh":
		return topology.Mesh(o.w, o.h, o.ports)
	case "torus":
		return topology.Torus(o.w, o.h, o.ports)
	case "fattree":
		return topology.FatTree(o.ftK)
	case "dragonfly":
		return topology.Dragonfly(o.dfA, o.dfP, o.dfH)
	default:
		return nil, fmt.Errorf("unknown topology %q", o.topo)
	}
}

func soak(o soakOpts) error {
	tp, err := buildTopology(o)
	if err != nil {
		return err
	}
	cfg := network.DefaultConfig(tp)
	cfg.VCs = o.vcs
	cfg.Seed = o.seed ^ 0x50a1c
	n, err := network.New(cfg)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mmrsoak")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	h := &harness{o: o, cfg: cfg, tp: tp, rng: sim.NewRNG(o.seed), n: n,
		ckptPath: filepath.Join(dir, "soak.ckpt"), openErrs: map[string]int64{}}
	defer func() { h.n.Shutdown() }()

	// Kill points: distinct random event counts, sorted ascending.
	killAt := map[int64]bool{}
	for len(killAt) < o.kills {
		at := 1 + int64(h.rng.Intn(int(o.events)))
		killAt[at] = true
	}

	for ev := int64(1); ev <= o.events; ev++ {
		h.n.Run(1 + int64(h.rng.Exp(o.meanGap)))
		h.sessionEvent()
		if o.flashEvery > 0 && ev%o.flashEvery == 0 {
			h.flashCrowd()
		}
		if o.faultEvery > 0 && ev%o.faultEvery == 0 {
			if err := h.regionalOutage(); err != nil {
				return fmt.Errorf("event %d: %w", ev, err)
			}
		}
		if killAt[ev] {
			if err := h.killAndRestore(ev); err != nil {
				return fmt.Errorf("event %d: %w", ev, err)
			}
		}
		if o.reportEvery > 0 && ev%o.reportEvery == 0 {
			st := h.n.Stats()
			fmt.Printf("mmrsoak: %d/%d events, cycle %d, %d live, %d opened, %d closed, %d broken, %d restored, %d kills survived\n",
				ev, o.events, h.n.Now(), len(h.liveConns()), h.opensOK, h.closes, st.ConnsBroken, st.ConnsRestored, h.restores)
		}
	}

	// Settle: with every fault healed and the workload retired, no
	// session may be left permanently degraded and no fallback flow may
	// outlive its owner — this is where a degraded-forever regression
	// fails the soak.
	if err := h.settle(); err != nil {
		return fmt.Errorf("settle audit: %w", err)
	}
	// Final audit: the fabric that survived the whole run must still
	// pass the resource audit, and one last kill+restore must conserve
	// everything.
	if err := h.n.CheckInvariants(); err != nil {
		return fmt.Errorf("final invariant audit: %w", err)
	}
	if err := h.killAndRestore(o.events + 1); err != nil {
		return fmt.Errorf("final restore audit: %w", err)
	}
	st := h.n.Stats()
	fmt.Printf("mmrsoak: PASS — %d session events (%d/%d opens admitted, %d closes), %d flash crowds, %d outages, %d kill+restore cycles, 0 invariant violations, 0 leaked connections\n",
		h.opens+h.closes, h.opensOK, h.opens, h.closes, h.flashCrowds, h.outages, h.restores)
	fmt.Printf("mmrsoak: fabric at cycle %d: %d flits delivered, %d conns broken by faults, %d restored, %d degraded, %d promoted, %d lost\n",
		h.n.Now(), st.FlitsDelivered, st.ConnsBroken, st.ConnsRestored, st.ConnsDegraded, st.ConnsPromoted, st.ConnsLost)
	// FaultFlitsLost/FlitsDropped mix guaranteed and best-effort flits, so
	// the outstanding count below includes BE flits lost to faults.
	fmt.Printf("mmrsoak: best-effort: %d generated, %d delivered, %d in flight, queued, or lost to faults\n",
		st.BEGenerated, st.BEDelivered, st.BEGenerated-st.BEDelivered)
	type refusal struct {
		msg string
		cnt int64
	}
	var refusals []refusal
	for msg, cnt := range h.openErrs {
		refusals = append(refusals, refusal{msg, cnt})
	}
	sort.Slice(refusals, func(i, j int) bool {
		if refusals[i].cnt != refusals[j].cnt {
			return refusals[i].cnt > refusals[j].cnt
		}
		return refusals[i].msg < refusals[j].msg
	})
	for i, r := range refusals {
		if i == 8 {
			rest := int64(0)
			for _, x := range refusals[i:] {
				rest += x.cnt
			}
			fmt.Printf("mmrsoak: %8d × open refused: (%d further causes)\n", rest, len(refusals)-i)
			break
		}
		fmt.Printf("mmrsoak: %8d × open refused: %s\n", r.cnt, r.msg)
	}
	return nil
}

// tracked reports a session the workload still owns. Only terminal
// sessions (closed or lost) leave the pool: broken connections stay —
// the fabric restores them behind the workload's back, and dropping
// them here would leak open sessions that churn can never hang up —
// and degraded sessions stay because real clients hang up degraded
// calls too; their fallback flows must not run forever.
func tracked(c *network.Conn) bool {
	return !c.Closed() && !c.Lost()
}

// closeable reports a tracked session that can be hung up right now.
// Broken connections mid-restoration cannot: their resources are
// already released and Close would refuse them.
func closeable(c *network.Conn) bool {
	return c.Open() || (c.Degraded && !c.Closed())
}

// liveConns lazily compacts the tracked list, dropping sessions that
// reached a terminal state since last checked.
func (h *harness) liveConns() []*network.Conn {
	out := h.live[:0]
	for _, c := range h.live {
		if tracked(c) {
			out = append(out, c)
		}
	}
	h.live = out
	return h.live
}

func (h *harness) randomSpec() traffic.ConnSpec {
	spec := traffic.ConnSpec{Class: flit.ClassCBR,
		Rate: traffic.PaperRates[h.rng.Intn(len(traffic.PaperRates))]}
	if h.rng.Float64() < 0.3 {
		spec.Class = flit.ClassVBR
		spec.PeakRate = 3 * spec.Rate
		spec.Priority = h.rng.Intn(4)
	}
	return spec
}

// sessionEvent performs one open or close, Poisson-style: opens dominate
// until the live cap, closes dominate near it.
func (h *harness) sessionEvent() {
	live := h.liveConns()
	if len(live) > 0 && (len(live) >= h.o.maxLive || h.rng.Float64() < 0.5) {
		// Hang up a random closeable session; sessions broken
		// mid-restoration are skipped — they stay tracked until the
		// fabric revives them.
		start := h.rng.Intn(len(live))
		for i := 0; i < len(live); i++ {
			c := live[(start+i)%len(live)]
			if !closeable(c) {
				continue
			}
			h.closes++
			// A failed drain (fault mid-close, stuck flits) is workload
			// noise, not a harness failure; the invariant audits decide
			// whether state actually leaked.
			h.n.DrainAndClose(c, h.o.drainLimit)
			return
		}
		// Everything tracked is mid-restoration; open instead.
	}
	h.open()
}

func (h *harness) open() {
	src, dst := h.rng.Intn(h.tp.Nodes), h.rng.Intn(h.tp.Nodes)
	if src == dst {
		dst = (dst + 1) % h.tp.Nodes
	}
	h.opens++
	// Every 16th open goes through the journaled retry path so kills
	// sometimes land with a pending durOpenRetry in the checkpoint.
	if h.opens%16 == 0 {
		h.retriesUsed++
		h.n.OpenWithRetry(src, dst, h.randomSpec(), func(c *network.Conn, err error) {
			if err == nil {
				h.opensOK++
				h.live = append(h.live, c)
			} else {
				h.openErrs[err.Error()]++
			}
		})
		return
	}
	if c, err := h.n.Open(src, dst, h.randomSpec()); err == nil {
		h.opensOK++
		h.live = append(h.live, c)
	} else {
		h.openErrs[err.Error()]++
	}
}

// flashCrowd opens a burst of connections back-to-back at one cycle.
func (h *harness) flashCrowd() {
	h.flashCrowds++
	for i := 0; i < h.o.flashBurst; i++ {
		h.open()
	}
}

// regionalOutage fails every router within one hop of a random center,
// restoring them after the configured downtime. Outages never overlap:
// a new one waits until the previous region is back up.
func (h *harness) regionalOutage() error {
	if h.n.Now() <= h.lastFaultEnd {
		return nil
	}
	at := h.n.Now() + 10
	center := h.rng.Intn(h.tp.Nodes)
	plan := faults.NewPlan(h.o.seed^uint64(at)).FailRegionAt(h.tp, center, 1, at, h.o.downtime)
	if err := h.n.ApplyPlan(plan, at+h.o.downtime+1); err != nil {
		return fmt.Errorf("regional outage at node %d: %w", center, err)
	}
	h.outages++
	h.lastFaultEnd = at + h.o.downtime
	return nil
}

// settle retires the workload after the last outage has healed and
// audits the fault lifecycle end state. Each round hangs up every open
// session — freeing guaranteed capacity and triggering re-promotion
// scans — then runs the fabric so backed-off restorations and
// promotions fire; degraded sessions must come back to guaranteed
// service (there is spare capacity for every one of them now) and are
// hung up as open sessions in a later round. A session still tracked
// after the round budget, or any degraded residue or orphaned fallback
// flow at the end, is a lifecycle bug.
func (h *harness) settle() error {
	if gap := h.lastFaultEnd + 1 - h.n.Now(); gap > 0 {
		h.n.Run(gap)
	}
	const settleRounds = 64
	for round := 0; len(h.liveConns()) > 0; round++ {
		if round >= settleRounds {
			degraded := h.n.DegradedLive()
			return fmt.Errorf("%d sessions still live after %d settle rounds (%d of them degraded)",
				len(h.liveConns()), settleRounds, degraded)
		}
		for _, c := range h.liveConns() {
			if c.Open() {
				h.closes++
				h.n.DrainAndClose(c, h.o.drainLimit)
			}
		}
		h.n.Run(4096)
	}
	if got := h.n.DegradedLive(); got != 0 {
		return fmt.Errorf("%d sessions left permanently degraded after every fault healed", got)
	}
	if err := h.n.CheckBEFlowOwners(); err != nil {
		return fmt.Errorf("fallback-flow audit: %w", err)
	}
	return nil
}

func countOpen(n *network.Network) int {
	open := 0
	for _, c := range n.Conns() {
		if c.Open() {
			open++
		}
	}
	return open
}

// killAndRestore checkpoints the fabric to disk, discards it, restores a
// fresh fabric from the file — rotating the worker count and gating mode
// so the snapshot is exercised across execution strategies — and audits
// conservation: clock, open-connection count, delivery counters and the
// full resource invariants.
func (h *harness) killAndRestore(ev int64) error {
	beforeNow := h.n.Now()
	beforeOpen := countOpen(h.n)
	beforeStats := h.n.Stats()

	if err := h.n.SaveCheckpoint(h.ckptPath); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	h.n.Shutdown() // the "kill": the old fabric is gone

	// A real restart builds everything from scratch, including the
	// topology object (whose live link state the old fabric mutated);
	// the checkpoint must carry the link state itself.
	tp2, err := buildTopology(h.o)
	if err != nil {
		return err
	}
	cfg := h.cfg
	cfg.Topology = tp2
	cfg.Workers = []int{1, 2, 4}[h.restores%3]
	cfg.Shards = []int{0, 2, 1, 4}[h.restores%4] // rotate off the workers=shards default too
	cfg.NoIdleSkip = h.restores%2 == 1
	n2, err := network.RestoreCheckpoint(cfg, h.ckptPath)
	if err != nil {
		return fmt.Errorf("restore (workers=%d shards=%d gating=%v): %w", cfg.Workers, cfg.Shards, !cfg.NoIdleSkip, err)
	}
	if n2.Now() != beforeNow {
		return fmt.Errorf("restore lost the clock: %d != %d", n2.Now(), beforeNow)
	}
	if got := countOpen(n2); got != beforeOpen {
		return fmt.Errorf("restore leaked connections: %d open != %d before the kill", got, beforeOpen)
	}
	after := n2.Stats()
	if after.FlitsDelivered != beforeStats.FlitsDelivered ||
		after.FlitsGenerated != beforeStats.FlitsGenerated ||
		after.SetupAccepted != beforeStats.SetupAccepted ||
		after.Closed != beforeStats.Closed ||
		after.ConnsPromoted != beforeStats.ConnsPromoted {
		return fmt.Errorf("restore drifted counters: delivered %d/%d generated %d/%d accepted %d/%d closed %d/%d promoted %d/%d",
			after.FlitsDelivered, beforeStats.FlitsDelivered,
			after.FlitsGenerated, beforeStats.FlitsGenerated,
			after.SetupAccepted, beforeStats.SetupAccepted,
			after.Closed, beforeStats.Closed,
			after.ConnsPromoted, beforeStats.ConnsPromoted)
	}
	if err := n2.CheckInvariants(); err != nil {
		return fmt.Errorf("restored fabric fails the resource audit: %w", err)
	}
	if err := n2.CheckBEFlowOwners(); err != nil {
		return fmt.Errorf("restored fabric fails the fallback-flow audit: %w", err)
	}

	h.n = n2
	h.tp = tp2
	h.restores++
	// The old *Conn pointers died with the old fabric; re-derive the
	// live list from the restored one.
	h.live = h.live[:0]
	for _, c := range n2.Conns() {
		if tracked(c) {
			h.live = append(h.live, c)
		}
	}
	return nil
}
