// Command mmrtrace generates and inspects MPEG frame-size traces for
// VBR workloads — the trace format internal/trace parses and the
// examples replay through the router.
//
// Examples:
//
//	mmrtrace -gen -rate 6 -seconds 60 > movie.trc     # synthesize a trace
//	mmrtrace -stat movie.trc                          # inspect it
//	mmrtrace -gen -rate 4 -seconds 10 -scene 60       # choppier video
package main

import (
	"flag"
	"fmt"
	"os"

	"mmr/internal/sim"
	"mmr/internal/trace"
	"mmr/internal/traffic"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a synthetic trace to stdout")
		rate    = flag.Float64("rate", 6, "target mean bit rate in Mbps")
		seconds = flag.Float64("seconds", 60, "trace length in seconds")
		fps     = flag.Float64("fps", 30, "frame rate")
		scene   = flag.Float64("scene", 120, "mean scene length in frames")
		sigma   = flag.Float64("scenevar", 0.35, "scene activity spread (log-normal sigma)")
		noise   = flag.Float64("noise", 0.12, "per-frame size noise (log-normal sigma)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		stat    = flag.String("stat", "", "trace file to summarize")
	)
	flag.Parse()

	switch {
	case *gen:
		cfg := trace.DefaultGenConfig(traffic.Rate(*rate)*traffic.Mbps, int(*seconds**fps))
		cfg.GoP.FrameRate = *fps
		cfg.SceneLen = *scene
		cfg.SceneVar = *sigma
		cfg.FrameNoise = *noise
		tr, err := trace.Generate(cfg, sim.NewRNG(*seed))
		if err != nil {
			fail(err)
		}
		if err := trace.Format(os.Stdout, tr); err != nil {
			fail(err)
		}
	case *stat != "":
		f, err := os.Open(*stat)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := trace.Parse(f)
		if err != nil {
			fail(err)
		}
		summarize(tr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarize(tr *trace.Trace) {
	fmt.Printf("frames     %d at %g fps (%.1f s)\n", len(tr.Frames), tr.FrameRate, tr.Duration())
	fmt.Printf("mean rate  %v\n", tr.MeanRate())
	fmt.Printf("peak rate  %v (largest frame over one interval)\n", tr.PeakRate())
	names := map[traffic.FrameKind]string{
		traffic.FrameI: "I", traffic.FrameP: "P", traffic.FrameB: "B",
	}
	for kind, st := range tr.Stats() {
		fmt.Printf("  %s frames: %6d, mean %9.0f bits\n", names[kind], st.Count, st.MeanBits)
	}
	// Burstiness: rate of the busiest one-second window vs the mean.
	win := int(tr.FrameRate)
	if win < 1 || win > len(tr.Frames) {
		return
	}
	sum := 0
	for i := 0; i < win; i++ {
		sum += tr.Frames[i].Bits
	}
	max := sum
	for i := win; i < len(tr.Frames); i++ {
		sum += tr.Frames[i].Bits - tr.Frames[i-win].Bits
		if sum > max {
			max = sum
		}
	}
	fmt.Printf("busiest 1 s window: %v (%.2fx mean)\n",
		traffic.Rate(max), float64(max)/(float64(tr.MeanRate())))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmrtrace:", err)
	os.Exit(1)
}
