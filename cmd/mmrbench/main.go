// Command mmrbench regenerates the paper's evaluation: every figure of
// §5.2, the prose spot-checks, and the design-trade-off ablations listed
// in DESIGN.md.
//
// Examples:
//
//	mmrbench -fig 3          # Figure 3 (jitter vs load, fixed/biased, 1-8 candidates)
//	mmrbench -fig 4          # Figure 4 (delay vs load)
//	mmrbench -fig 5          # Figure 5 (four algorithms, delay and jitter)
//	mmrbench -fig all        # everything
//	mmrbench -claims         # §5.2 prose spot checks
//	mmrbench -ablation A4    # round-multiplier trade-off
//	mmrbench -ablation all
//	mmrbench -fig 3 -csv     # machine-readable output
//	mmrbench -fig 3 -quick   # shorter measurement window
package main

import (
	"flag"
	"fmt"
	"os"

	"mmr/internal/exp"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 3, 4, 5, util, vbr, net, all")
		claims   = flag.Bool("claims", false, "run the §5.2 prose spot checks")
		ablation = flag.String("ablation", "", "ablation to run: A1-A11, all")
		quick    = flag.Bool("quick", false, "shorter measurement window (noisier, ~4x faster)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		warmup   = flag.Int64("warmup", 0, "override warmup cycles")
		measure  = flag.Int64("measure", 0, "override measured cycles")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	opts.Seed = *seed

	ran := false
	emit := func(res *exp.FigureResult, err error) {
		if err != nil {
			fail(err)
		}
		for _, f := range res.Figures {
			if *csv {
				fmt.Print(f.FormatCSV())
			} else {
				fmt.Println(f.FormatTable())
			}
		}
		ran = true
	}

	switch *fig {
	case "":
	case "3":
		emit(exp.Figure3(opts))
	case "4":
		emit(exp.Figure4(opts))
	case "5":
		emit(exp.Figure5(opts))
	case "util":
		emit(exp.UtilizationSweep(opts))
	case "vbr":
		emit(exp.FigureVBR(vbrOpts(opts)))
	case "net":
		emit(exp.NetworkSweep(netOpts(opts)))
	case "all":
		emit(exp.Figure3(opts))
		emit(exp.Figure4(opts))
		emit(exp.Figure5(opts))
		emit(exp.UtilizationSweep(opts))
		emit(exp.FigureVBR(vbrOpts(opts)))
		emit(exp.NetworkSweep(netOpts(opts)))
	default:
		fail(fmt.Errorf("unknown figure %q", *fig))
	}

	if *claims {
		cs, err := exp.RunClaims(opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(exp.FormatClaims(cs))
		ran = true
	}

	ablations := map[string]func() (*exp.FigureResult, error){
		"A1":  func() (*exp.FigureResult, error) { return exp.AblationA1(opts) },
		"A2":  func() (*exp.FigureResult, error) { return exp.AblationA2(opts) },
		"A3":  func() (*exp.FigureResult, error) { return exp.AblationA3(opts) },
		"A4":  func() (*exp.FigureResult, error) { return exp.AblationA4(opts) },
		"A5":  func() (*exp.FigureResult, error) { return exp.AblationA5(opts) },
		"A6":  func() (*exp.FigureResult, error) { return exp.AblationA6(opts) },
		"A7":  func() (*exp.FigureResult, error) { return exp.AblationA7(opts) },
		"A8":  func() (*exp.FigureResult, error) { return exp.AblationA8(), nil },
		"A9":  func() (*exp.FigureResult, error) { return exp.AblationA9(opts) },
		"A10": func() (*exp.FigureResult, error) { return exp.AblationA10(opts) },
		"A11": func() (*exp.FigureResult, error) { return exp.AblationA11(opts) },
	}
	switch {
	case *ablation == "":
	case *ablation == "all":
		for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11"} {
			emit(ablations[id]())
		}
	default:
		fn, ok := ablations[*ablation]
		if !ok {
			fail(fmt.Errorf("unknown ablation %q", *ablation))
		}
		emit(fn())
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// vbrOpts narrows the load sweep to the VBR experiment's range unless
// the caller overrode it.
func vbrOpts(o exp.Options) exp.Options {
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.2, 0.4, 0.6, 0.8}
	}
	return o
}

// netOpts narrows the load sweep to per-host injection fractions.
func netOpts(o exp.Options) exp.Options {
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	return o
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmrbench:", err)
	os.Exit(1)
}
