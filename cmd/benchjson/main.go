// Command benchjson converts `go test -bench` output into the repository's
// BENCH_*.json trajectory format and gates regressions against a committed
// baseline. It exists so the benchmark numbers in CI, the Makefile and the
// docs all flow through one parser instead of ad-hoc greps.
//
// Record mode (default) parses benchmark output on stdin and writes it
// into one section of a JSON file, preserving the file's other sections —
// so a historical "pre-pr" baseline survives every refresh of "current":
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_PR2.json -section current
//
// Check mode parses a fresh run on stdin and compares it against a section
// of the committed baseline, printing a benchstat-style delta table. It
// exits non-zero when any benchmark regresses more than -tol in ns/op, or
// when a benchmark whose baseline is allocation-free (0 allocs/op) starts
// allocating:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -check -baseline BENCH_PR2.json -against current
//
// Max mode gates custom metrics against absolute ceilings instead of
// (or in addition to, when combined with -check) relative deltas —
// the right shape for memory-footprint metrics, where the question is
// "does the target fabric fit" rather than "did this run drift":
//
//	go test -run '^$' -bench FabricFootprint . | benchjson -max 'bytes/router=600000,bytes/flow=1200'
//
// Scale mode parses a worker-scaling benchmark family
// (Benchmark<Family>/w=N sub-benchmarks) and gates *parallel
// efficiency* — eff(w) = ns(1) / (ns(w)·w) — instead of raw ns/op.
// Rows whose worker count exceeds the host's CPU count are printed but
// not gated (a 1-CPU container cannot demonstrate scaling, only
// barrier overhead), which keeps the gate honest across host shapes:
//
//	go test -run '^$' -bench 'NetworkStepScaling' -benchmem ./internal/network | benchjson -scale NetworkStepScaling -min-eff 0.35
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result. Metrics holds every
// "<value> <unit>" pair go test printed: ns/op, B/op, allocs/op and the
// custom paper-shape metrics (e.g. jitter-biased8C@0.9).
type Benchmark struct {
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Host records the machine shape a section was measured on. Benchmark
// numbers are only comparable across runs when the shape matches;
// check mode warns when it does not, so a baseline recorded in a
// 1-CPU container cannot silently masquerade as a multi-core number.
type Host struct {
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	CPU        string `json:"cpu,omitempty"`
}

// String renders the shape for diagnostics.
func (h Host) String() string {
	s := fmt.Sprintf("%d CPU, GOMAXPROCS=%d", h.NumCPU, h.GoMaxProcs)
	if h.CPU != "" {
		s += ", " + h.CPU
	}
	return s
}

// currentHost returns the shape of the machine benchjson is running
// on, which is the machine the stdin benchmarks ran on in every
// supported pipeline (`go test ... | benchjson`). cpu is the model
// string from the go test header, when present.
func currentHost(cpu string) Host {
	return Host{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), CPU: cpu}
}

// Section is one named snapshot of the benchmark suite.
type Section struct {
	Note       string               `json:"note,omitempty"`
	Go         string               `json:"go,omitempty"`
	Host       *Host                `json:"host,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// File is the BENCH_*.json schema.
type File struct {
	Schema   string             `json:"schema"`
	Sections map[string]Section `json:"sections"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output and returns the benchmarks
// found plus the CPU model from the "cpu:" header line (empty when go
// test did not print one).
func parse(r *bufio.Scanner) (map[string]Benchmark, string, error) {
	out := map[string]Benchmark{}
	cpu := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if after, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(after)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, cpu, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		out[name] = b
	}
	return out, cpu, r.Err()
}

// load reads an existing BENCH file, tolerating absence.
func load(path string) (File, error) {
	f := File{Schema: "mmr-bench/v1", Sections: map[string]Section{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	if f.Sections == nil {
		f.Sections = map[string]Section{}
	}
	return f, nil
}

func record(benches map[string]Benchmark, host Host, out, section, note string) error {
	f, err := load(out)
	if err != nil {
		return err
	}
	f.Schema = "mmr-bench/v1"
	f.Sections[section] = Section{Note: note, Go: runtime.Version(), Host: &host, Benchmarks: benches}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

func check(w io.Writer, benches map[string]Benchmark, host Host, baseline, against string, tol float64, allowMissing bool) error {
	f, err := load(baseline)
	if err != nil {
		return err
	}
	base, ok := f.Sections[against]
	if !ok {
		return fmt.Errorf("benchjson: section %q not found in %s", against, baseline)
	}
	// Comparing numbers measured on different machine shapes tells you
	// about the hardware, not the code. Warn — don't fail — so the gate
	// stays usable while making the mismatch impossible to miss.
	if b := base.Host; b != nil {
		if b.NumCPU != host.NumCPU || b.GoMaxProcs != host.GoMaxProcs ||
			(b.CPU != "" && host.CPU != "" && b.CPU != host.CPU) {
			fmt.Fprintf(w, "warning: host shape differs from %s[%s]: baseline ran on %s; this run on %s — deltas may reflect hardware, not code\n",
				baseline, against, *b, host)
		}
	}
	// Partition by presence on each side. A baseline benchmark absent
	// from stdin is a gate-integrity problem — the run silently stopped
	// covering it (renamed, filtered out, build-tagged away) and the
	// check would otherwise pass vacuously.
	var names, missing, extra []string
	for name := range benches {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		} else {
			extra = append(extra, name)
		}
	}
	for name := range base.Benchmarks {
		if _, ok := benches[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(names)
	sort.Strings(missing)
	sort.Strings(extra)
	if len(names) == 0 {
		return fmt.Errorf("benchjson: no benchmarks in common with section %q (baseline has %s; stdin has %s)",
			against, nameList(missing), nameList(extra))
	}
	fmt.Fprintf(w, "%-28s %14s %14s %9s %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	failed := false
	for _, name := range names {
		old, new := base.Benchmarks[name], benches[name]
		oldNs, newNs := old.Metrics["ns/op"], new.Metrics["ns/op"]
		oldAllocs, hasOldAllocs := old.Metrics["allocs/op"]
		newAllocs, hasNewAllocs := new.Metrics["allocs/op"]
		delta := 0.0
		if oldNs > 0 {
			delta = (newNs - oldNs) / oldNs
		}
		verdict := ""
		if oldNs > 0 && delta > tol {
			verdict = fmt.Sprintf("  FAIL: ns/op regressed %.1f%% (> %.0f%%)", delta*100, tol*100)
			failed = true
		}
		if hasOldAllocs && hasNewAllocs && oldAllocs == 0 && newAllocs > 0 {
			verdict += fmt.Sprintf("  FAIL: zero-alloc benchmark now allocates (%.0f allocs/op)", newAllocs)
			failed = true
		}
		allocs := ""
		if hasOldAllocs && hasNewAllocs {
			allocs = fmt.Sprintf("%.0f→%.0f", oldAllocs, newAllocs)
		}
		fmt.Fprintf(w, "%-28s %14.1f %14.1f %+8.1f%% %s%s\n", name, oldNs, newNs, delta*100, allocs, verdict)
	}
	if len(extra) > 0 {
		fmt.Fprintf(w, "note: %d benchmark(s) on stdin not in the baseline (ignored): %s\n",
			len(extra), nameList(extra))
	}
	if len(missing) > 0 {
		if allowMissing {
			fmt.Fprintf(w, "warning: %d baseline benchmark(s) missing from this run: %s\n",
				len(missing), nameList(missing))
		} else {
			fmt.Fprintf(w, "FAIL: %d baseline benchmark(s) missing from this run: %s\n",
				len(missing), nameList(missing))
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("benchjson: benchmark regression against %s[%s]", baseline, against)
	}
	fmt.Fprintf(w, "ok: within %.0f%% of %s[%s]\n", tol*100, baseline, against)
	return nil
}

var workerSub = regexp.MustCompile(`^(.+)/w=(\d+)$`)

// checkScale gates the parallel-efficiency rows of a worker-scaling
// benchmark family (sub-benchmarks named <family>/w=N). Efficiency is
// eff(w) = ns(1) / (ns(w)·w): 1.0 is perfect linear scaling, 1/w is
// "parallelism bought nothing". Rows with more workers than the host
// has CPUs are informational — they measure barrier overhead, not
// scaling — so only rows the host can actually exercise are gated.
// Every row must also stay allocation-free when allocs/op was
// measured: the worker pool reuses its shards, so any allocation is a
// steady-state leak the serial gate would miss.
func checkScale(w io.Writer, benches map[string]Benchmark, host Host, family string, minEff float64) error {
	type row struct {
		workers int
		bench   Benchmark
	}
	var rows []row
	for name, b := range benches {
		m := workerSub.FindStringSubmatch(name)
		if m == nil || m[1] != family {
			continue
		}
		wk, err := strconv.Atoi(m[2])
		if err != nil || wk <= 0 {
			continue
		}
		rows = append(rows, row{workers: wk, bench: b})
	}
	if len(rows) == 0 {
		return fmt.Errorf("benchjson: no %s/w=N benchmarks on stdin", family)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].workers < rows[j].workers })
	if rows[0].workers != 1 {
		return fmt.Errorf("benchjson: %s family has no w=1 serial row to normalize against", family)
	}
	serialNs := rows[0].bench.Metrics["ns/op"]
	if serialNs <= 0 {
		return fmt.Errorf("benchjson: %s/w=1 has no ns/op metric", family)
	}
	fmt.Fprintf(w, "scaling: %s on %s\n", family, host)
	fmt.Fprintf(w, "%8s %14s %9s %11s %s\n", "workers", "ns/op", "speedup", "efficiency", "")
	failed := false
	for _, r := range rows {
		ns := r.bench.Metrics["ns/op"]
		note := ""
		if ns <= 0 {
			fmt.Fprintf(w, "%8d %14s %9s %11s  FAIL: no ns/op metric\n", r.workers, "-", "-", "-")
			failed = true
			continue
		}
		speedup := serialNs / ns
		eff := speedup / float64(r.workers)
		switch {
		case r.workers > host.NumCPU:
			note = fmt.Sprintf("  informational: host has only %d CPU(s)", host.NumCPU)
		case r.workers > 1 && eff < minEff:
			note = fmt.Sprintf("  FAIL: efficiency %.2f below floor %.2f", eff, minEff)
			failed = true
		}
		if allocs, ok := r.bench.Metrics["allocs/op"]; ok && allocs > 0 {
			note += fmt.Sprintf("  FAIL: allocates in steady state (%.0f allocs/op)", allocs)
			failed = true
		}
		fmt.Fprintf(w, "%8d %14.1f %8.2fx %11.2f%s\n", r.workers, ns, speedup, eff, note)
	}
	if failed {
		return fmt.Errorf("benchjson: %s parallel-efficiency gate failed", family)
	}
	fmt.Fprintf(w, "ok: gated rows at or above efficiency %.2f\n", minEff)
	return nil
}

// checkMax gates custom metrics against absolute ceilings. Relative
// gating (check mode's -tol) is the wrong shape for footprint metrics:
// what matters for bytes/router or bytes/flow is whether the target
// fabric fits the machine, an absolute budget, not whether this run
// drifted from the last recording. Spec is comma-separated
// metric=ceiling pairs; every benchmark on stdin reporting a gated
// metric must stay at or under its ceiling, and each metric must appear
// on at least one benchmark — a renamed or filtered-out benchmark must
// not let the gate pass vacuously.
func checkMax(w io.Writer, benches map[string]Benchmark, spec string) error {
	type gate struct {
		metric  string
		ceiling float64
	}
	var gates []gate
	for _, part := range strings.Split(spec, ",") {
		metric, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || metric == "" {
			return fmt.Errorf("benchjson: bad -max entry %q (want metric=ceiling)", part)
		}
		c, err := strconv.ParseFloat(val, 64)
		if err != nil || c <= 0 {
			return fmt.Errorf("benchjson: bad -max ceiling in %q", part)
		}
		gates = append(gates, gate{metric, c})
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, g := range gates {
		seen := 0
		for _, name := range names {
			v, ok := benches[name].Metrics[g.metric]
			if !ok {
				continue
			}
			seen++
			verdict := "ok"
			if v > g.ceiling {
				verdict = fmt.Sprintf("FAIL: over budget by %.1f%%", (v/g.ceiling-1)*100)
				failed = true
			}
			fmt.Fprintf(w, "%-28s %18s %14.1f <= %14.1f  %s\n", name, g.metric, v, g.ceiling, verdict)
		}
		if seen == 0 {
			fmt.Fprintf(w, "FAIL: no benchmark on stdin reports %q\n", g.metric)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("benchjson: absolute-budget gate failed")
	}
	fmt.Fprintf(w, "ok: all -max budgets hold\n")
	return nil
}

// nameList renders a benchmark name list for diagnostics.
func nameList(names []string) string {
	if len(names) == 0 {
		return "(none)"
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		out          = flag.String("o", "-", "output JSON path (record mode); - for stdout")
		section      = flag.String("section", "current", "section to write (record) ")
		note         = flag.String("note", "", "free-form note stored with the section")
		doCheck      = flag.Bool("check", false, "compare stdin against a baseline instead of recording")
		baseline     = flag.String("baseline", "BENCH_PR2.json", "baseline file (check mode)")
		against      = flag.String("against", "current", "baseline section to compare against (check mode)")
		tol          = flag.Float64("tol", 0.10, "allowed fractional ns/op regression (check mode)")
		allowMissing = flag.Bool("allow-missing", false,
			"check mode: warn instead of failing when a baseline benchmark is absent from stdin")
		scale  = flag.String("scale", "", "gate parallel efficiency of a <family>/w=N benchmark family instead of recording")
		minEff = flag.Float64("min-eff", 0.35, "minimum parallel efficiency ns(1)/(ns(w)*w) for gated rows (scale mode)")
		maxes  = flag.String("max", "",
			"comma-separated metric=ceiling pairs gated as absolute budgets (e.g. bytes/router=600000); combines with -check, or runs alone")
	)
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	benches, cpu, err := parse(sc)
	if err == nil && len(benches) == 0 {
		err = fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	host := currentHost(cpu)
	if err == nil {
		switch {
		case *scale != "":
			err = checkScale(os.Stdout, benches, host, *scale, *minEff)
		case *doCheck:
			err = check(os.Stdout, benches, host, *baseline, *against, *tol, *allowMissing)
			if err == nil && *maxes != "" {
				err = checkMax(os.Stdout, benches, *maxes)
			}
		case *maxes != "":
			err = checkMax(os.Stdout, benches, *maxes)
		default:
			err = record(benches, host, *out, *section, *note)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
